// Tests for the traffic-oblivious rotor transport (the §3 contrast case).
#include <gtest/gtest.h>

#include <set>
#include <type_traits>
#include <utility>

#include "collective/executor.h"
#include "collective/planner.h"
#include "core/experiment.h"
#include "core/rotor.h"

namespace opus::core {
namespace {

using collective::Algorithm;
using collective::CollectiveExecutor;
using collective::CollectiveType;
using collective::CommGroup;

net::ClusterConfig rotor_cfg(int nodes) {
  net::ClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.gpus_per_node = 2;
  cfg.nic_ports = 2;
  cfg.fabric = net::FabricKind::kRotor;
  // rotor_port_spread stays 1: these tests pin the classic single-matching
  // rotor (every port follows one matching; sends wait for their round).
  cfg.ocs_reconfig_delay = usecs(10);  // RotorNet-class switching
  return cfg;
}

TEST(Rotor, MatchingsEventuallyServeEveryPair) {
  // Behavioral coverage: a send between every node pair completes, because
  // the circle-method matchings connect each pair once per cycle. (The
  // rotor freezes when idle, so coverage is observed through traffic.)
  sim::Simulator sim;
  net::Cluster cluster(sim, rotor_cfg(6));
  RotorTransport::Options opts;
  opts.slot_time = usecs(100);
  RotorTransport rotor(sim, cluster, opts);
  int completed = 0;
  int issued = 0;
  CommGroup g;
  g.id = GroupId{1};
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      ++issued;
      rotor.send(g, cluster.gpu_at(NodeId{a}, 0), cluster.gpu_at(NodeId{b}, 0),
                 1000, [&] { ++completed; });
    }
  }
  sim.run();
  EXPECT_EQ(completed, issued);
  EXPECT_GE(rotor.rotations(), 4) << "needed most of a cycle";
}

TEST(Rotor, OddNodeCountGivesByes) {
  sim::Simulator sim;
  net::Cluster cluster(sim, rotor_cfg(5));
  RotorTransport rotor(sim, cluster);
  // At any instant, exactly 2 of the 5 nodes' pairs are connected (one
  // node idles with the virtual bye).
  int connected = 0;
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      if (cluster.rail_path_available(cluster.gpu_at(NodeId{a}, 0),
                                      cluster.gpu_at(NodeId{b}, 0))) {
        ++connected;
      }
    }
  }
  EXPECT_EQ(connected, 2);
}

TEST(Rotor, SendWaitsForItsMatching) {
  sim::Simulator sim;
  net::Cluster cluster(sim, rotor_cfg(4));
  RotorTransport::Options opts;
  opts.slot_time = msecs(1);
  RotorTransport rotor(sim, cluster, opts);
  // Find a pair NOT in the current (round 0) matching: circle method for 4
  // nodes, round 0: (0,3), (1,2). So (0,1) must wait.
  const GpuId src = cluster.gpu_at(NodeId{0}, 0);
  const GpuId dst = cluster.gpu_at(NodeId{1}, 0);
  ASSERT_FALSE(cluster.rail_path_available(src, dst));
  CommGroup g;
  g.id = GroupId{1};
  g.ranks = {src, dst};
  TimeNs done = -1;
  rotor.send(g, src, dst, 1000, [&] { done = sim.now(); });
  EXPECT_EQ(rotor.deferred_sends(), 1);
  sim.run_until(msecs(10));
  ASSERT_GT(done, 0);
  EXPECT_GT(done, msecs(1)) << "had to wait for at least one rotation";
}

TEST(Rotor, ConnectedPairSendsImmediately) {
  sim::Simulator sim;
  net::Cluster cluster(sim, rotor_cfg(4));
  RotorTransport rotor(sim, cluster);
  const GpuId src = cluster.gpu_at(NodeId{0}, 0);
  const GpuId dst = cluster.gpu_at(NodeId{3}, 0);  // round-0 matching
  ASSERT_TRUE(cluster.rail_path_available(src, dst));
  CommGroup g;
  g.id = GroupId{1};
  g.ranks = {src, dst};
  TimeNs done = -1;
  rotor.send(g, src, dst, 25'000'000, [&] { done = sim.now(); });
  sim.run_until(msecs(5));
  // 25MB at 2x200G striped = 0.5ms + latency, inside the first slot.
  EXPECT_GT(done, 0);
  EXPECT_LT(done, msecs(1));
  EXPECT_EQ(rotor.deferred_sends(), 0);
}

TEST(Rotor, RotationWaitsForInFlightTransfers) {
  sim::Simulator sim;
  net::Cluster cluster(sim, rotor_cfg(4));
  RotorTransport::Options opts;
  opts.slot_time = msecs(1);
  RotorTransport rotor(sim, cluster, opts);
  const GpuId src = cluster.gpu_at(NodeId{0}, 0);
  const GpuId dst = cluster.gpu_at(NodeId{3}, 0);
  CommGroup g;
  g.id = GroupId{1};
  g.ranks = {src, dst};
  // 200 MB at 400G = 4 ms: spans several slots; the rotor must hold the
  // matching (guard band) instead of tearing the live circuit.
  TimeNs done = -1;
  rotor.send(g, src, dst, 200'000'000, [&] { done = sim.now(); });
  sim.run_until(msecs(20));
  EXPECT_GE(done, msecs(4));
  EXPECT_EQ(cluster.bytes_on_route(net::Cluster::Route::kRail), 200'000'000);
}

TEST(Rotor, RingAllReduceCompletesButSlowly) {
  // The §3 claim: oblivious rotation serves ML collectives poorly. A ring
  // AllReduce's neighbour transfers only run when the rotor happens to
  // connect them, so the collective stretches across many slots.
  const auto sched = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 4, mib(8));
  TimeNs rotor_time = -1;
  {
    sim::Simulator sim;
    net::Cluster cluster(sim, rotor_cfg(4));
    RotorTransport::Options opts;
    opts.slot_time = msecs(1);
    RotorTransport rotor(sim, cluster, opts);
    CollectiveExecutor exec(sim, rotor);
    CommGroup g;
    g.id = GroupId{1};
    g.dim = collective::ParallelismDim::kDP;
    for (int n = 0; n < 4; ++n) g.ranks.push_back(cluster.gpu_at(NodeId{n}, 0));
    exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
      rotor_time = r.duration();
    });
    sim.run();
  }
  ASSERT_GT(rotor_time, 0);
  // Each of the 6 pipelined steps needs both ring directions, which live
  // in different matchings: the collective spans multiple full cycles.
  EXPECT_GT(rotor_time, msecs(3));
}

TEST(Rotor, RequiresRotorFabricCluster) {
  // The transport needs the cluster's pre-wired round-0 matchings and port
  // spread, so any other fabric (even photonic) is rejected.
  sim::Simulator sim;
  net::ClusterConfig cfg = rotor_cfg(4);
  cfg.fabric = net::FabricKind::kElectrical;
  net::Cluster electrical(sim, cfg);
  EXPECT_THROW(RotorTransport(sim, electrical), InvariantError);
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  net::Cluster opus(sim, cfg);
  EXPECT_THROW(RotorTransport(sim, opus), InvariantError);
}

TEST(Rotor, PortSpreadEnablesTwoHopForwarding) {
  // RotorNet-style spread: port p follows matching round+p, so the live
  // union of matchings is connected and a non-matched pair forwards over
  // two live hops instead of waiting a rotation.
  sim::Simulator sim;
  net::ClusterConfig cfg = rotor_cfg(4);
  cfg.rotor_port_spread = 2;
  net::Cluster cluster(sim, cfg);
  ASSERT_TRUE(cluster.config().allow_rail_multihop);
  ASSERT_EQ(cluster.config().max_multihop_hops, 2);
  RotorTransport rotor(sim, cluster);
  // Round 0 matchings for 4 nodes: port 0 carries round 0 = (0,3),(1,2)
  // and port 1 carries round 1 = (1,3),(0,2). Every pair is within two
  // live hops of every other.
  int reachable = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      if (cluster.rail_path_available(cluster.gpu_at(NodeId{a}, 0),
                                      cluster.gpu_at(NodeId{b}, 0))) {
        ++reachable;
      }
    }
  }
  EXPECT_EQ(reachable, 6);
  // (0,1) is in neither live matching: the send completes without a single
  // rotation, paying the multi-hop forwarding tax instead.
  CommGroup g;
  g.id = GroupId{1};
  const GpuId src = cluster.gpu_at(NodeId{0}, 0);
  const GpuId dst = cluster.gpu_at(NodeId{1}, 0);
  ASSERT_EQ(cluster.rail_multihop_path(src, dst).size(), 3u);
  TimeNs done = -1;
  rotor.send(g, src, dst, 1000, [&] { done = sim.now(); });
  sim.run_until(usecs(500));
  EXPECT_GT(done, 0);
  EXPECT_EQ(rotor.deferred_sends(), 0);
}

TEST(Rotor, TwoRailRotationTallyMatchesSummedOcsStats) {
  // Aggregation regression: rotations_ counts one per rail rotation, and
  // every counted rotation must be exactly one state-changing OCS
  // reconfiguration — so with 2 rails the summed per-rail OCS stats must
  // equal the transport's tally (no double counting, no missed rail), and
  // the summed dark time must be reconfig_delay x touched ports per
  // reconfiguration.
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::test_tiny();
  cfg.parallelism.tp = 2;  // 2 GPUs/node -> 2 rails
  cfg.parallelism.dp = 6;
  cfg.gpus_per_node = 2;
  cfg.fabric = net::FabricKind::kRotor;
  cfg.ocs_reconfig_delay = usecs(10);
  cfg.rotor_slot_time = usecs(200);
  cfg.iterations = 2;
  const core::ExperimentResult result = core::run_experiment(cfg);
  ASSERT_GT(result.rotor_rotations, 0);
  // run_experiment itself asserts the invariant; pin it here independently
  // so a future refactor of the result plumbing cannot drop it.
  EXPECT_EQ(result.ocs_reconfigurations, result.rotor_rotations);
  EXPECT_GT(result.ocs_dark_time, 0);
  EXPECT_EQ(result.ocs_dark_time % usecs(10), 0)
      << "dark time must be whole reconfigurations' worth";
}

TEST(Rotor, OneRoundSpanNeverCountsPhantomRotations) {
  // A 2-node rotor has a single matching: "rotating" re-requests identical
  // circuits, which the OCS reports as satisfied without counting a
  // reconfiguration. The transport must count nothing either — otherwise
  // rotations_ and the OCS stats diverge (the aggregation bug this pins).
  sim::Simulator sim;
  net::Cluster cluster(sim, rotor_cfg(2));
  RotorTransport::Options opts;
  opts.slot_time = usecs(50);
  RotorTransport rotor(sim, cluster, opts);
  CommGroup g;
  g.id = GroupId{1};
  int done = 0;
  // Enough traffic to outlast several slots.
  for (int i = 0; i < 4; ++i) {
    rotor.send(g, cluster.gpu_at(NodeId{0}, 0), cluster.gpu_at(NodeId{1}, 0),
               25'000'000, [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(rotor.rotations(), 0);
  EXPECT_EQ(cluster.total_ocs_reconfigurations(), 0);
  EXPECT_EQ(cluster.total_ocs_dark_time(), 0);
}

TEST(Rotor, EveryQueuedSendEventuallyLaunches) {
  // Liveness audit of the rail state machine: sends issued in every rail
  // state — live, frozen-idle (the slot clock must re-arm), and
  // mid-rotation/drain — must all launch once their matching comes around.
  // A stranded PendingSend would leave `completed < issued` with the queue
  // drained, which is exactly what this pins against.
  sim::Simulator sim;
  net::Cluster cluster(sim, rotor_cfg(6));
  RotorTransport::Options opts;
  opts.slot_time = usecs(100);
  RotorTransport rotor(sim, cluster, opts);
  CommGroup g;
  g.id = GroupId{1};
  int completed = 0;
  int issued = 0;
  const auto blast = [&] {
    for (int a = 0; a < 6; ++a) {
      for (int b = 0; b < 6; ++b) {
        if (a == b) continue;
        ++issued;
        rotor.send(g, cluster.gpu_at(NodeId{a}, a % 2),
                   cluster.gpu_at(NodeId{b}, a % 2), 50'000,
                   [&] { ++completed; });
      }
    }
  };
  blast();    // live rails: immediate launches mixed with deferrals
  sim.run();  // drain to idle: the rotor freezes on its current matchings
  EXPECT_EQ(completed, issued);
  blast();  // frozen rails must wake up for new work
  // Inject at awkward instants: partway into a slot and inside the dark
  // window right after a slot boundary (slot 100us, reconfig 10us).
  sim.run_until(sim.now() + usecs(30));
  blast();
  sim.run_until(sim.now() + usecs(75));  // lands past the next slot end
  blast();
  sim.run();
  EXPECT_EQ(completed, issued) << "a queued send never launched";
  EXPECT_GT(rotor.deferred_sends(), 0) << "test never exercised the queue";
}

TEST(Rotor, RailDarkAccountingInvariantHoldsAfterRotations) {
  // After a real rotor workload (batched rotations with delta dark
  // accounting), each rail switch's per-port dark tallies must still sum
  // to its aggregate counter.
  sim::Simulator sim;
  net::Cluster cluster(sim, rotor_cfg(6));
  RotorTransport::Options opts;
  opts.slot_time = usecs(100);
  RotorTransport rotor(sim, cluster, opts);
  CommGroup g;
  g.id = GroupId{1};
  int completed = 0;
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      if (a == b) continue;
      rotor.send(g, cluster.gpu_at(NodeId{a}, 0), cluster.gpu_at(NodeId{b}, 0),
                 100'000, [&] { ++completed; });
    }
  }
  sim.run();
  ASSERT_EQ(completed, 30);
  ASSERT_GT(rotor.rotations(), 0);
  for (int rail = 0; rail < cluster.n_rails(); ++rail) {
    const auto& sw = cluster.ocs(RailId{rail});
    TimeNs sum = 0;
    for (int p = 0; p < sw.n_ports(); ++p) {
      sum += sw.port_dark_time(PortId{p});
    }
    EXPECT_EQ(sum, sw.stats().cumulative_port_dark_ns)
        << "per-port dark breakdown diverged on rail " << rail;
  }
}

TEST(Rotor, SixtyFourBitTalliesSurviveResultPlumbing) {
  // 4k-node rotor runs push rotations (and circuits-per-rotation multiples)
  // past 2^31; pin every stage of the reporting chain at 64 bits so a
  // refactor cannot narrow it back to int.
  static_assert(std::is_same_v<decltype(std::declval<const RotorTransport&>()
                                            .rotations()),
                               std::int64_t>);
  static_assert(std::is_same_v<decltype(std::declval<const RotorTransport&>()
                                            .deferred_sends()),
                               std::int64_t>);
  static_assert(std::is_same_v<decltype(std::declval<const net::Cluster&>()
                                            .total_ocs_reconfigurations()),
                               std::int64_t>);
  static_assert(
      std::is_same_v<decltype(net::OpticalCircuitSwitch::Stats::
                                  reconfigurations),
                     std::int64_t>);
  static_assert(
      std::is_same_v<decltype(net::OpticalCircuitSwitch::Stats::
                                  circuits_established),
                     std::int64_t>);
  static_assert(
      std::is_same_v<decltype(net::OpticalCircuitSwitch::Stats::links_retired),
                     std::int64_t>);
  static_assert(std::is_same_v<decltype(ExperimentResult::rotor_rotations),
                               std::int64_t>);
  static_assert(
      std::is_same_v<decltype(ExperimentResult::rotor_deferred_sends),
                     std::int64_t>);
  static_assert(
      std::is_same_v<decltype(ExperimentResult::ocs_reconfigurations),
                     std::int64_t>);
  // Runtime round-trip: a value past the 32-bit range survives the result
  // structs unclipped.
  const std::int64_t big = (std::int64_t{1} << 40) + 7;
  ExperimentResult result;
  result.ocs_reconfigurations = big;
  result.rotor_rotations = big;
  result.rotor_deferred_sends = big + 1;
  EXPECT_EQ(result.ocs_reconfigurations, big);
  EXPECT_EQ(result.rotor_rotations, big);
  EXPECT_EQ(result.rotor_deferred_sends, big + 1);
}

}  // namespace
}  // namespace opus::core
