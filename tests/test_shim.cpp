// Unit tests for the Opus shim: profiling, phase replay, speculative
// provisioning triggers, misprediction handling, and layout merging.
#include <gtest/gtest.h>

#include "core/shim.h"

namespace opus::core {
namespace {

using collective::ParallelismDim;

RailCircuits rc(int rail, std::vector<std::pair<int, int>> ports) {
  RailCircuits out;
  out.rail = RailId{rail};
  for (auto [a, b] : ports) out.circuits.push_back({PortId{a}, PortId{b}});
  return out;
}

struct SpeculationLog {
  std::vector<GroupId> groups;
  std::vector<std::vector<RailCircuits>> layouts;
};

OpusShim make_shim(SpeculationLog& log, bool provisioning = true) {
  OpusShim shim(provisioning);
  shim.set_speculate([&log](GroupId g, const std::vector<RailCircuits>& l) {
    log.groups.push_back(g);
    log.layouts.push_back(l);
  });
  return shim;
}

TEST(Shim, ProfilesPhasesByDimension) {
  SpeculationLog log;
  OpusShim shim = make_shim(log);
  shim.iteration_started(0);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{1, 3}})});
  shim.on_intent(ParallelismDim::kPP, {rc(0, {{0, 4}})});
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  ASSERT_EQ(shim.profile().size(), 3u);
  EXPECT_EQ(shim.profile()[0].dim, ParallelismDim::kDP);
  EXPECT_EQ(shim.profile()[0].n_collectives, 2);
  // Layouts merged across the phase.
  EXPECT_EQ(shim.profile()[0].layout[0].circuits.size(), 2u);
  EXPECT_EQ(shim.profile()[1].dim, ParallelismDim::kPP);
  EXPECT_EQ(shim.profile()[2].n_collectives, 1);
}

TEST(Shim, NoSpeculationDuringProfiling) {
  SpeculationLog log;
  OpusShim shim = make_shim(log);
  shim.iteration_started(0);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_finished(ParallelismDim::kDP);
  EXPECT_TRUE(log.groups.empty());
}

TEST(Shim, SpeculatesNextPhaseWhenCurrentCompletes) {
  SpeculationLog log;
  OpusShim shim = make_shim(log);
  shim.iteration_started(0);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{1, 3}})});
  shim.on_intent(ParallelismDim::kPP, {rc(0, {{0, 4}})});

  shim.iteration_started(1);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_finished(ParallelismDim::kDP);
  EXPECT_TRUE(log.groups.empty()) << "phase has 2 collectives; 1 finished";
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{1, 3}})});
  shim.on_finished(ParallelismDim::kDP);
  ASSERT_EQ(log.groups.size(), 1u);
  EXPECT_EQ(log.groups[0], speculative_group_id(ParallelismDim::kPP));
  ASSERT_EQ(log.layouts[0].size(), 1u);
  EXPECT_EQ(log.layouts[0][0].circuits[0].a.value(), 0);
  EXPECT_EQ(log.layouts[0][0].circuits[0].b.value(), 4);
  EXPECT_EQ(shim.speculative_requests(), 1);
}

TEST(Shim, NoSpeculationPastTheLastPhase) {
  SpeculationLog log;
  OpusShim shim = make_shim(log);
  shim.iteration_started(0);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.iteration_started(1);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_finished(ParallelismDim::kDP);
  EXPECT_TRUE(log.groups.empty());
}

TEST(Shim, ProvisioningDisabledNeverSpeculates) {
  SpeculationLog log;
  OpusShim shim = make_shim(log, /*provisioning=*/false);
  shim.iteration_started(0);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_intent(ParallelismDim::kPP, {rc(0, {{0, 4}})});
  shim.iteration_started(1);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_finished(ParallelismDim::kDP);
  EXPECT_TRUE(log.groups.empty());
  EXPECT_EQ(shim.speculative_requests(), 0);
}

TEST(Shim, ReplayResynchronizesWithWrapAround) {
  SpeculationLog log;
  OpusShim shim = make_shim(log);
  shim.iteration_started(0);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_intent(ParallelismDim::kPP, {rc(0, {{0, 4}})});
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{1, 3}})});

  shim.iteration_started(1);
  // Intents arrive slightly out of the profiled order: PP first.
  shim.on_intent(ParallelismDim::kPP, {rc(0, {{0, 4}})});
  shim.on_finished(ParallelismDim::kPP);
  // The pointer advanced to the PP phase and speculated the DP after it.
  ASSERT_EQ(log.groups.size(), 1u);
  EXPECT_EQ(log.groups[0], speculative_group_id(ParallelismDim::kDP));
  // A DP intent now wraps around the profile instead of mispredicting.
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{1, 3}})});
  EXPECT_EQ(shim.mispredictions(), 0);
}

TEST(Shim, UnknownDimCountsAsMisprediction) {
  SpeculationLog log;
  OpusShim shim = make_shim(log);
  shim.iteration_started(0);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.iteration_started(1);
  shim.on_intent(ParallelismDim::kEP, {rc(0, {{0, 4}})});  // never profiled
  EXPECT_EQ(shim.mispredictions(), 1);
}

TEST(Shim, MergedLayoutStaysConflictFree) {
  SpeculationLog log;
  OpusShim shim = make_shim(log);
  shim.iteration_started(0);
  // Two PP pair groups sharing port 2 (a 3-stage chain through one node):
  // the merged phase layout must keep only one circuit per port.
  shim.on_intent(ParallelismDim::kPP, {rc(0, {{0, 2}})});
  shim.on_intent(ParallelismDim::kPP, {rc(0, {{2, 4}})});
  ASSERT_EQ(shim.profile().size(), 1u);
  const auto& merged = shim.profile()[0].layout[0].circuits;
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].a.value(), 0);
  EXPECT_EQ(merged[0].b.value(), 2);
}

TEST(Shim, MergeAcrossRailsKeepsBothRails) {
  SpeculationLog log;
  OpusShim shim = make_shim(log);
  shim.iteration_started(0);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_intent(ParallelismDim::kDP, {rc(1, {{0, 2}})});
  ASSERT_EQ(shim.profile().size(), 1u);
  EXPECT_EQ(shim.profile()[0].layout.size(), 2u);
}

TEST(Shim, SpeculativeGroupIdsAreDistinctPerDim) {
  EXPECT_NE(speculative_group_id(ParallelismDim::kDP),
            speculative_group_id(ParallelismDim::kPP));
  EXPECT_TRUE(speculative_group_id(ParallelismDim::kEP).valid());
}

TEST(Shim, CountersResetPerIterationButProfilePersists) {
  SpeculationLog log;
  OpusShim shim = make_shim(log);
  shim.iteration_started(0);
  shim.on_intent(ParallelismDim::kDP, {rc(0, {{0, 2}})});
  shim.on_intent(ParallelismDim::kPP, {rc(0, {{0, 4}})});
  const auto profile_size = shim.profile().size();
  shim.iteration_started(1);
  EXPECT_EQ(shim.profile().size(), profile_size);
  shim.iteration_started(2);
  EXPECT_EQ(shim.profile().size(), profile_size);
  EXPECT_FALSE(shim.profiling());
}

}  // namespace
}  // namespace opus::core
