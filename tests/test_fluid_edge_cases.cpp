// Fluid-solver edge cases: near-stalled flows (completion-event overflow
// clamp), zero-byte lifecycle (delivery accounting, abortability while the
// latency pends), dark links stalling and resuming, bottleneck aborts
// redistributing rates, lazy-advance consistency of flow_remaining across
// those transitions, link retirement / id reuse, and the flow registry's
// slot reuse + stale-generation rejection.
#include <gtest/gtest.h>

#include "common/error.h"
#include "net/cluster.h"
#include "net/fluid.h"
#include "sim/simulator.h"

namespace opus::net {
namespace {

constexpr Bandwidth k100G = Bandwidth::gbps(100);

class FluidEdgeTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  FluidNetwork net{sim};
};

// ---------------------------------------------------------------------------
// Near-stalled flows: remaining/rate can exceed 2^63 ns; the completion
// event must clamp instead of overflowing the TimeNs cast.
// ---------------------------------------------------------------------------

TEST_F(FluidEdgeTest, NearStalledFlowClampsCompletionEvent) {
  // 2 GiB over a 1 bps link: remaining/rate ~ 1.7e19 ns, beyond TimeNs
  // range. Without the clamp the cast is UB (and scheduled a garbage time).
  const LinkId slow = net.add_link(Bandwidth::bps(1.0));
  TimeNs done = -1;
  net.start_flow({slow}, gib(2), 0, [&] { done = sim.now(); });
  EXPECT_GT(sim.pending_events(), 0u)
      << "a positive-rate flow must keep a (clamped) completion event";
  sim.run_until(msecs(1));
  EXPECT_EQ(done, -1);
  // The link recovers: the flow must complete at normal speed from here.
  net.set_capacity(slow, k100G);
  sim.run();
  // 2 GiB at 12.5 GB/s from t=1ms (the 1 bps era moved a negligible
  // fraction of a byte).
  EXPECT_NEAR(static_cast<double>(done),
              static_cast<double>(msecs(1)) +
                  static_cast<double>(gib(2)) / 12.5,
              10.0);
}

TEST_F(FluidEdgeTest, NearStalledFlowCanBeAborted) {
  const LinkId slow = net.add_link(Bandwidth::bps(1.0));
  bool fired = false;
  const FlowId f = net.start_flow({slow}, gib(4), 0, [&] { fired = true; });
  sim.run_until(usecs(10));
  EXPECT_TRUE(net.abort_flow(f));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flow_count(), 0u);
}

// ---------------------------------------------------------------------------
// Zero-byte flows: completed_flow_count() must not read ahead of the
// observable completion callbacks.
// ---------------------------------------------------------------------------

TEST_F(FluidEdgeTest, ZeroByteCompletionCountsAtCallbackDelivery) {
  TimeNs done = -1;
  net.start_flow({}, 0, usecs(7), [&] { done = sim.now(); });
  EXPECT_EQ(net.completed_flow_count(), 0u)
      << "completion must not be counted before the callback fires";
  sim.run_until(usecs(6));
  EXPECT_EQ(net.completed_flow_count(), 0u);
  sim.run();
  EXPECT_EQ(done, usecs(7));
  EXPECT_EQ(net.completed_flow_count(), 1u);
}

TEST_F(FluidEdgeTest, DrainedFlowWithLatencyCountsAtCallbackDelivery) {
  const LinkId l = net.add_link(k100G);
  TimeNs done = -1;
  // Drains at 10ms; delivery (and the count) follows 5us later.
  net.start_flow({l}, 125'000'000, usecs(5), [&] { done = sim.now(); });
  sim.run_until(msecs(10));
  EXPECT_EQ(net.active_flow_count(), 0u) << "drained at 10ms";
  EXPECT_EQ(net.completed_flow_count(), 0u)
      << "not yet delivered: must not be counted";
  sim.run();
  EXPECT_EQ(done, msecs(10) + usecs(5));
  EXPECT_EQ(net.completed_flow_count(), 1u);
}

TEST_F(FluidEdgeTest, ZeroByteNullCallbackCountsAtDeliveryTime) {
  net.start_flow({}, 0, usecs(3), nullptr);
  EXPECT_EQ(net.completed_flow_count(), 0u);
  sim.run();
  EXPECT_EQ(net.completed_flow_count(), 1u);
  EXPECT_EQ(sim.now(), usecs(3));
}

TEST_F(FluidEdgeTest, ZeroByteFlowIsActiveUntilDelivery) {
  const FlowId f = net.start_flow({}, 0, usecs(5), nullptr);
  EXPECT_TRUE(net.flow_active(f)) << "in flight while the latency pends";
  EXPECT_EQ(net.active_flow_count(), 1u);
  EXPECT_EQ(net.flow_rate_bps(f), 0.0) << "consumes no bandwidth";
  EXPECT_EQ(net.flow_remaining(f), 0);
  sim.run();
  EXPECT_FALSE(net.flow_active(f));
  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_EQ(net.completed_flow_count(), 1u);
}

TEST_F(FluidEdgeTest, AbortedZeroByteFlowNeverFiresItsCallback) {
  bool fired = false;
  const FlowId f = net.start_flow({}, 0, usecs(5), [&] { fired = true; });
  EXPECT_TRUE(net.abort_flow(f)) << "a pending zero-byte flow is abortable";
  EXPECT_FALSE(net.flow_active(f));
  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_FALSE(net.abort_flow(f)) << "second abort must report already-gone";
  sim.run();
  EXPECT_FALSE(fired) << "an aborted flow's callback must never fire";
  EXPECT_EQ(net.completed_flow_count(), 0u)
      << "an aborted delivery must not be counted as completed";
}

TEST_F(FluidEdgeTest, ZeroByteAbortAfterDeliveryReturnsFalse) {
  const FlowId f = net.start_flow({}, 0, usecs(3), nullptr);
  sim.run();
  EXPECT_EQ(net.completed_flow_count(), 1u);
  EXPECT_FALSE(net.abort_flow(f)) << "already delivered";
}

// ---------------------------------------------------------------------------
// Dark (zero-capacity) links: flows may start stalled and resume later.
// ---------------------------------------------------------------------------

TEST_F(FluidEdgeTest, FlowStartedOnDarkLinkStallsThenResumes) {
  const LinkId dark = net.add_link(Bandwidth::gbps(0));
  TimeNs done = -1;
  const FlowId f =
      net.start_flow({dark}, 125'000'000, 0, [&] { done = sim.now(); });
  EXPECT_EQ(net.flow_rate_bps(f), 0.0);
  sim.run_until(msecs(30));
  EXPECT_EQ(done, -1);
  EXPECT_EQ(net.flow_remaining(f), 125'000'000)
      << "a stalled flow must make no progress";
  net.set_capacity(dark, k100G);
  sim.run();
  EXPECT_EQ(done, msecs(40));  // 30ms dark + 10ms at 12.5 GB/s
}

TEST_F(FluidEdgeTest, OnlyFlowsCrossingTheDarkLinkStall) {
  const LinkId live = net.add_link(k100G);
  const LinkId dark = net.add_link(Bandwidth::gbps(0));
  TimeNs live_done = -1;
  TimeNs dark_done = -1;
  net.start_flow({live}, 125'000'000, 0, [&] { live_done = sim.now(); });
  net.start_flow({live, dark}, 125'000'000, 0,
                 [&] { dark_done = sim.now(); });
  sim.run_until(msecs(20));
  // The dark-path flow holds zero rate, so the live flow gets the whole
  // link and finishes solo.
  EXPECT_EQ(live_done, msecs(10));
  EXPECT_EQ(dark_done, -1);
  net.set_capacity(dark, k100G);
  sim.run();
  EXPECT_EQ(dark_done, msecs(30));
}

// ---------------------------------------------------------------------------
// abort_flow on a bottleneck: survivors re-share immediately.
// ---------------------------------------------------------------------------

TEST_F(FluidEdgeTest, AbortOnBottleneckRedistributesRates) {
  const LinkId l = net.add_link(Bandwidth::gbps(90));
  const FlowId a = net.start_flow({l}, gib(1), 0, nullptr);
  const FlowId b = net.start_flow({l}, gib(1), 0, nullptr);
  const FlowId c = net.start_flow({l}, gib(1), 0, nullptr);
  EXPECT_NEAR(net.flow_rate_bps(a), 30e9, 1e6);
  EXPECT_NEAR(net.flow_rate_bps(b), 30e9, 1e6);
  EXPECT_NEAR(net.flow_rate_bps(c), 30e9, 1e6);
  sim.run_until(msecs(1));
  EXPECT_TRUE(net.abort_flow(a));
  EXPECT_NEAR(net.flow_rate_bps(b), 45e9, 1e6);
  EXPECT_NEAR(net.flow_rate_bps(c), 45e9, 1e6);
  EXPECT_NEAR(net.allocated_bps(l), 90e9, 1e6)
      << "the freed share must be redistributed, not lost";
  EXPECT_EQ(net.active_flows_on(l), 2);
}

// ---------------------------------------------------------------------------
// flow_remaining lazy advance: consistent at arbitrary instants, across
// stalls, aborts, and capacity changes.
// ---------------------------------------------------------------------------

TEST_F(FluidEdgeTest, FlowRemainingIsConsistentAcrossTransitions) {
  const LinkId l = net.add_link(k100G);
  const FlowId a = net.start_flow({l}, 125'000'000, 0, nullptr);
  const FlowId b = net.start_flow({l}, 125'000'000, 0, nullptr);

  // Mid-interval, no event has fired since start: lazily advanced.
  sim.run_until(msecs(2));  // each at 6.25 GB/s for 2ms = 12.5 MB moved
  EXPECT_NEAR(static_cast<double>(net.flow_remaining(a)), 112'500'000.0, 1e4);

  // Abort the sibling: the survivor speeds up, remaining still consistent.
  net.abort_flow(b);
  EXPECT_NEAR(static_cast<double>(net.flow_remaining(a)), 112'500'000.0, 1e4);
  sim.run_until(msecs(4));  // +2ms at 12.5 GB/s = 25 MB
  EXPECT_NEAR(static_cast<double>(net.flow_remaining(a)), 87'500'000.0, 1e4);

  // Stall: remaining must freeze, not drift.
  net.set_capacity(l, Bandwidth::gbps(0));
  sim.run_until(msecs(20));
  EXPECT_NEAR(static_cast<double>(net.flow_remaining(a)), 87'500'000.0, 1e4);

  // Resume at a quarter of the bandwidth: drains at 3.125 GB/s.
  net.set_capacity(l, k100G / 4.0);
  sim.run_until(msecs(24));
  EXPECT_NEAR(static_cast<double>(net.flow_remaining(a)), 75'000'000.0, 1e4);
  sim.run();
  EXPECT_EQ(net.active_flow_count(), 0u);
}

// ---------------------------------------------------------------------------
// Link retirement and id reuse.
// ---------------------------------------------------------------------------

TEST_F(FluidEdgeTest, RetiredLinkIdsAreReused) {
  const LinkId a = net.add_link(k100G, "a");
  const LinkId b = net.add_link(k100G, "b");
  EXPECT_EQ(net.link_count(), 2u);
  EXPECT_EQ(net.live_link_count(), 2u);

  net.retire_link(a);
  EXPECT_EQ(net.link_count(), 2u) << "the table slot stays allocated";
  EXPECT_EQ(net.live_link_count(), 1u);
  EXPECT_EQ(net.retired_link_count(), 1u);
  EXPECT_TRUE(net.link_retired(a));
  EXPECT_FALSE(net.link_retired(b));

  const LinkId c = net.add_link(Bandwidth::gbps(50), "c");
  EXPECT_EQ(c, a) << "retired ids must be reused before the table grows";
  EXPECT_EQ(net.link_count(), 2u);
  EXPECT_EQ(net.live_link_count(), 2u);
  EXPECT_EQ(net.capacity(c), Bandwidth::gbps(50));
  EXPECT_EQ(net.link_name(c), "c");
}

TEST_F(FluidEdgeTest, RetiringALinkWithActiveFlowsThrows) {
  const LinkId l = net.add_link(k100G);
  net.start_flow({l}, gib(1), 0, nullptr);
  EXPECT_THROW(net.retire_link(l), InvariantError);
}

TEST_F(FluidEdgeTest, OperationsOnRetiredLinksThrow) {
  const LinkId l = net.add_link(k100G);
  net.retire_link(l);
  EXPECT_THROW(net.capacity(l), InvariantError);
  EXPECT_THROW(net.set_capacity(l, k100G), InvariantError);
  EXPECT_THROW(net.active_flows_on(l), InvariantError);
  EXPECT_THROW(net.allocated_bps(l), InvariantError);
  EXPECT_THROW(net.start_flow({l}, 100, 0, nullptr), InvariantError);
  EXPECT_THROW(net.retire_link(l), InvariantError);
}

// ---------------------------------------------------------------------------
// Flow-registry slot reuse and stale-generation rejection: a FlowId held
// across the end of its flow must be detected, never alias the slot's next
// occupant.
// ---------------------------------------------------------------------------

TEST_F(FluidEdgeTest, AbortedSlotIsReusedAndStaleIdsAreRejected) {
  const LinkId l = net.add_link(k100G);
  const FlowId a = net.start_flow({l}, gib(1), 0, nullptr);
  EXPECT_TRUE(net.abort_flow(a));
  const FlowId b = net.start_flow({l}, gib(1), 0, nullptr);
  EXPECT_EQ(b.slot(), a.slot()) << "freed slots must be reused (LIFO)";
  EXPECT_NE(a, b) << "the reused slot must carry a fresh generation";
  EXPECT_TRUE(net.flow_active(b));
  EXPECT_FALSE(net.flow_active(a)) << "stale id must not alias the new flow";
  EXPECT_FALSE(net.abort_flow(a)) << "stale abort must not kill the new flow";
  EXPECT_TRUE(net.flow_active(b)) << "the new flow must have survived";
  EXPECT_THROW(net.flow_rate_bps(a), InvariantError);
  EXPECT_THROW(net.flow_remaining(a), InvariantError);
  EXPECT_NEAR(net.flow_rate_bps(b), 100e9, 1e6);
}

TEST_F(FluidEdgeTest, CompletedSlotIsReusedAndStaleIdsAreRejected) {
  const LinkId l = net.add_link(k100G);
  const FlowId a = net.start_flow({l}, 125'000'000, 0, nullptr);
  sim.run();
  EXPECT_FALSE(net.flow_active(a)) << "completed";
  EXPECT_FALSE(net.abort_flow(a));
  const FlowId b = net.start_flow({l}, 125'000'000, 0, nullptr);
  EXPECT_EQ(b.slot(), a.slot());
  EXPECT_NE(a.generation(), b.generation());
  EXPECT_FALSE(net.flow_active(a));
  EXPECT_TRUE(net.flow_active(b));
  sim.run();
  EXPECT_EQ(net.completed_flow_count(), 2u);
}

TEST_F(FluidEdgeTest, RawAndDefaultFlowIdsAreNeverActive) {
  const LinkId l = net.add_link(k100G);
  net.start_flow({l}, gib(1), 0, nullptr);
  // Issued generations are odd; raw integers carry generation 0 and a
  // default id carries no generation at all — none may match a live slot.
  EXPECT_FALSE(net.flow_active(FlowId{}));
  EXPECT_FALSE(net.flow_active(FlowId{0}));
  EXPECT_FALSE(net.flow_active(FlowId{123}));
  EXPECT_FALSE(net.abort_flow(FlowId{0}));
  EXPECT_THROW(net.flow_rate_bps(FlowId{0}), InvariantError);
  EXPECT_EQ(net.active_flow_count(), 1u) << "the live flow must be untouched";
}

TEST_F(FluidEdgeTest, ChurnReusesSlotsInsteadOfGrowingTheRegistry) {
  // Start/complete many flows serially: the registry must stay at peak
  // concurrency (one slot here), not accrete a slot per lifetime flow.
  const LinkId l = net.add_link(k100G);
  std::vector<FlowId> seen;
  for (int i = 0; i < 32; ++i) {
    seen.push_back(net.start_flow({l}, 1'000'000, 0, nullptr));
    sim.run();
  }
  for (const FlowId f : seen) {
    EXPECT_EQ(f.slot(), seen.front().slot()) << "serial churn reuses one slot";
    EXPECT_FALSE(net.flow_active(f));
  }
  EXPECT_EQ(net.completed_flow_count(), 32u);
}

// ---------------------------------------------------------------------------
// Zero-byte flows under fault churn: a zero-byte transfer attaches to no
// link, so per-link failure sweeps cannot see it — only its FlowId can kill
// it. The cluster's fault paths must honour both halves of that contract.
// ---------------------------------------------------------------------------

TEST_F(FluidEdgeTest, ZeroByteTransferRidesOutACircuitFailure) {
  // The control message was already "in flight" (latency only, no capacity
  // needed), so tearing the circuit under it must not lose it.
  Cluster c(sim, [] {
    ClusterConfig cfg;
    cfg.n_nodes = 2;
    cfg.gpus_per_node = 2;
    cfg.nic_ports = 2;
    cfg.fabric = FabricKind::kOpusPhotonic;
    cfg.ocs_reconfig_delay = usecs(10);
    return cfg;
  }());
  c.set_fault_tolerant(true);
  auto& sw = c.ocs(RailId{0});
  sw.force_circuits({{PortId{0}, PortId{2}}});
  int done = 0;
  c.transfer(c.gpu_at(NodeId{0}, 0), c.gpu_at(NodeId{1}, 0), 0,
             [&] { ++done; });
  c.fail_nic_port(NodeId{0}, 0, 0);  // same instant: delivery still pends
  sim.run();
  EXPECT_EQ(done, 1) << "an in-flight zero-byte send survives the failure";
}

TEST_F(FluidEdgeTest, SpanAbortKillsPendingZeroByteTransfers) {
  // Eviction (abort_span_traffic) must catch zero-byte sends through the
  // rescuable-flow registry — the per-link sweep alone would miss them and
  // leak an orphaned completion into the re-placed job's timeline.
  Cluster c(sim, [] {
    ClusterConfig cfg;
    cfg.n_nodes = 2;
    cfg.gpus_per_node = 2;
    cfg.nic_ports = 2;
    cfg.fabric = FabricKind::kOpusPhotonic;
    cfg.ocs_reconfig_delay = usecs(10);
    return cfg;
  }());
  c.set_fault_tolerant(true);
  auto& sw = c.ocs(RailId{0});
  sw.force_circuits({{PortId{0}, PortId{2}}});
  int done = 0;
  c.transfer(c.gpu_at(NodeId{0}, 0), c.gpu_at(NodeId{1}, 0), 0,
             [&] { ++done; });
  c.transfer(c.gpu_at(NodeId{0}, 0), c.gpu_at(NodeId{1}, 0), mib(1),
             [&] { ++done; });
  c.abort_span_traffic({0, 2});
  sim.run();
  EXPECT_EQ(done, 0) << "no aborted transfer may deliver after eviction";
}

TEST_F(FluidEdgeTest, RetiredLinksDoNotAffectActiveSolves) {
  // A pile of retired links must not slow down or perturb the solve for the
  // flows that remain (the churn scenario, in miniature).
  std::vector<LinkId> junk;
  for (int i = 0; i < 64; ++i) junk.push_back(net.add_link(k100G));
  const LinkId live = net.add_link(k100G);
  for (LinkId l : junk) net.retire_link(l);
  const FlowId a = net.start_flow({live}, gib(1), 0, nullptr);
  const FlowId b = net.start_flow({live}, gib(1), 0, nullptr);
  EXPECT_NEAR(net.flow_rate_bps(a), 50e9, 1e6);
  EXPECT_NEAR(net.flow_rate_bps(b), 50e9, 1e6);
  EXPECT_EQ(net.retired_link_count(), 64u);
}

}  // namespace
}  // namespace opus::net
