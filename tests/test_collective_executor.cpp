// Executor tests: simulated collective durations must match the analytic
// alpha-beta model on dedicated circuits, pipelining must beat step barriers,
// and concurrent collectives on disjoint groups must not interfere.
#include <gtest/gtest.h>

#include "collective/analysis.h"
#include "collective/executor.h"
#include "collective/planner.h"
#include "collective/transport.h"
#include "net/cluster.h"

namespace opus::collective {
namespace {

net::ClusterConfig electrical_cfg(int nodes, int gpn) {
  net::ClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.gpus_per_node = gpn;
  cfg.fabric = net::FabricKind::kElectrical;
  cfg.nic_total_bw = Bandwidth::gbps(400);
  cfg.rail_latency = usecs(2);
  cfg.electrical_hop_latency = usecs(1);
  return cfg;
}

CommGroup rail_group(const net::Cluster& c, int local, int n_nodes) {
  CommGroup g;
  g.id = GroupId{1};
  g.dim = ParallelismDim::kDP;
  for (int node = 0; node < n_nodes; ++node) {
    g.ranks.push_back(c.gpu_at(NodeId{node}, local));
  }
  g.name = "test-rail-group";
  return g;
}

TEST(Executor, RingAllReduceMatchesAlphaBetaOnElectricalRail) {
  sim::Simulator sim;
  net::Cluster cluster(sim, electrical_cfg(4, 2));
  DirectTransport transport(cluster);
  CollectiveExecutor exec(sim, transport);

  const CommGroup group = rail_group(cluster, 0, 4);
  const Bytes payload = mib(64);
  const auto sched =
      plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, 4, payload);

  TimeNs duration = -1;
  exec.run(group, sched, [&](const CollectiveExecutor::Result& r) {
    duration = r.duration();
  });
  sim.run();

  // Ring over an uncongested electrical rail: per-step alpha = rail latency
  // + switch hop; beta = 400G.
  const AlphaBeta cost{usecs(3), Bandwidth::gbps(400)};
  const TimeNs expected = predicted_time(sched, cost);
  EXPECT_NEAR(static_cast<double>(duration), static_cast<double>(expected),
              static_cast<double>(expected) * 0.01)
      << "pipelined ring must match the analytic schedule time";
}

TEST(Executor, ScaleUpAllReduceUsesNvlink) {
  sim::Simulator sim;
  net::Cluster cluster(sim, electrical_cfg(1, 4));
  DirectTransport transport(cluster);
  CollectiveExecutor exec(sim, transport);
  CommGroup g;
  g.id = GroupId{2};
  g.dim = ParallelismDim::kTP;
  g.ranks = {GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3}};
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(96));
  TimeNs duration = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    duration = r.duration();
  });
  sim.run();
  const AlphaBeta cost{usecs(2), Bandwidth::gbps(2400)};
  EXPECT_NEAR(static_cast<double>(duration),
              static_cast<double>(predicted_time(sched, cost)),
              static_cast<double>(predicted_time(sched, cost)) * 0.01);
}

TEST(Executor, EmptyGroupCompletesImmediately) {
  sim::Simulator sim;
  net::Cluster cluster(sim, electrical_cfg(1, 2));
  DirectTransport transport(cluster);
  CollectiveExecutor exec(sim, transport);
  CommGroup g;
  g.id = GroupId{3};
  g.ranks = {GpuId{0}};
  const auto sched =
      plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, 1, 100);
  bool done = false;
  exec.run(g, sched, [&](const CollectiveExecutor::Result&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Executor, ConcurrentDisjointGroupsDoNotInterfere) {
  sim::Simulator sim;
  net::Cluster cluster(sim, electrical_cfg(4, 2));
  DirectTransport transport(cluster);
  CollectiveExecutor exec(sim, transport);
  // Two groups on different rails (local rank 0 and 1).
  const CommGroup g0 = rail_group(cluster, 0, 4);
  CommGroup g1 = rail_group(cluster, 1, 4);
  g1.id = GroupId{9};
  const auto sched = plan_collective(CollectiveType::kAllGather,
                                     Algorithm::kRing, 4, mib(64));
  TimeNs d0 = -1, d1 = -1;
  exec.run(g0, sched, [&](const CollectiveExecutor::Result& r) { d0 = r.duration(); });
  exec.run(g1, sched, [&](const CollectiveExecutor::Result& r) { d1 = r.duration(); });
  sim.run();
  EXPECT_EQ(d0, d1);
  // Solo reference.
  sim::Simulator sim2;
  net::Cluster cluster2(sim2, electrical_cfg(4, 2));
  DirectTransport transport2(cluster2);
  CollectiveExecutor exec2(sim2, transport2);
  TimeNs solo = -1;
  exec2.run(rail_group(cluster2, 0, 4), sched,
            [&](const CollectiveExecutor::Result& r) { solo = r.duration(); });
  sim2.run();
  EXPECT_EQ(d0, solo) << "disjoint rails must not share bandwidth";
}

TEST(Executor, GroupSizeMismatchThrows) {
  sim::Simulator sim;
  net::Cluster cluster(sim, electrical_cfg(4, 2));
  DirectTransport transport(cluster);
  CollectiveExecutor exec(sim, transport);
  const CommGroup g = rail_group(cluster, 0, 4);  // 4 ranks
  const auto sched =
      plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, 8, 100);
  EXPECT_THROW(exec.run(g, sched, nullptr), InvariantError);
}

// Step-synchronous transport shim: forces barrier semantics so the test can
// compare pipelined vs step-synchronous execution of the same schedule.
class StepSyncTransport final : public Transport {
 public:
  explicit StepSyncTransport(net::Cluster& c) : cluster_(c) {}
  void prepare_collective(const CommGroup&, const CollectiveSchedule&,
                          std::function<void()> ready) override {
    ready();
  }
  bool needs_per_step_preparation(const CommGroup&,
                                  const CollectiveSchedule&) const override {
    return true;
  }
  void prepare_step(const CommGroup&, const CollectiveSchedule&, int,
                    std::function<void()> ready) override {
    ++steps_prepared;
    ready();
  }
  void send(const CommGroup&, GpuId src, GpuId dst, Bytes bytes,
            std::function<void()> done) override {
    cluster_.transfer(src, dst, bytes, std::move(done));
  }
  int steps_prepared = 0;

 private:
  net::Cluster& cluster_;
};

TEST(Executor, StepSynchronousPreparesEveryStepAndIsSlower) {
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(64));
  TimeNs pipelined = -1, stepped = -1;
  {
    sim::Simulator sim;
    net::Cluster cluster(sim, electrical_cfg(4, 2));
    DirectTransport t(cluster);
    CollectiveExecutor exec(sim, t);
    exec.run(rail_group(cluster, 0, 4), sched,
             [&](const CollectiveExecutor::Result& r) { pipelined = r.duration(); });
    sim.run();
  }
  {
    sim::Simulator sim;
    net::Cluster cluster(sim, electrical_cfg(4, 2));
    StepSyncTransport t(cluster);
    CollectiveExecutor exec(sim, t);
    exec.run(rail_group(cluster, 0, 4), sched,
             [&](const CollectiveExecutor::Result& r) { stepped = r.duration(); });
    sim.run();
    EXPECT_EQ(t.steps_prepared, sched.n_steps);
  }
  // With per-rank pipelining the ring is as fast as the barrier version on
  // a symmetric fabric; it must never be slower.
  EXPECT_LE(pipelined, stepped);
}

// Parameterized: executor completes and matches analytic time for a matrix
// of algorithms and sizes on one rail.
struct ExecCase {
  CollectiveType type;
  Algorithm algo;
  int nodes;
};

class ExecutorSweep : public ::testing::TestWithParam<ExecCase> {};

TEST_P(ExecutorSweep, CompletesWithPositiveDuration) {
  const auto& [type, algo, nodes] = GetParam();
  sim::Simulator sim;
  net::Cluster cluster(sim, electrical_cfg(nodes, 2));
  DirectTransport transport(cluster);
  CollectiveExecutor exec(sim, transport);
  const auto sched = plan_collective(type, algo, nodes, mib(8));
  TimeNs duration = -1;
  exec.run(rail_group(cluster, 0, nodes), sched,
           [&](const CollectiveExecutor::Result& r) { duration = r.duration(); });
  sim.run();
  ASSERT_GE(duration, 0) << "collective did not complete";
  EXPECT_GT(duration, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ExecutorSweep,
    ::testing::Values(ExecCase{CollectiveType::kAllReduce, Algorithm::kRing, 5},
                      ExecCase{CollectiveType::kAllReduce,
                               Algorithm::kRecursiveHalvingDoubling, 8},
                      ExecCase{CollectiveType::kAllReduce,
                               Algorithm::kBinomialTree, 6},
                      ExecCase{CollectiveType::kAllGather, Algorithm::kRing, 7},
                      ExecCase{CollectiveType::kAllGather,
                               Algorithm::kRecursiveDoubling, 8},
                      ExecCase{CollectiveType::kReduceScatter, Algorithm::kRing,
                               6},
                      ExecCase{CollectiveType::kAllToAll, Algorithm::kPairwise,
                               6},
                      ExecCase{CollectiveType::kAllToAll, Algorithm::kDirect,
                               5},
                      ExecCase{CollectiveType::kBroadcast,
                               Algorithm::kBinomialTree, 9}));

}  // namespace
}  // namespace opus::collective
