// Symbolic verification of collective schedules: every planner output must
// satisfy its collective's postcondition, and corrupted schedules must be
// rejected (missing transfers, double-counted reductions, wrong chunks).
#include <gtest/gtest.h>

#include "collective/planner.h"
#include "collective/verifier.h"
#include "common/error.h"

namespace opus::collective {
namespace {

constexpr Bytes kPayload = 1 << 20;

struct VerifyCase {
  CollectiveType type;
  Algorithm algo;
  int n;
};

class VerifierSweep : public ::testing::TestWithParam<VerifyCase> {};

TEST_P(VerifierSweep, PlannedSchedulesVerify) {
  const auto& [type, algo, n] = GetParam();
  const auto s = plan_collective(type, algo, n, kPayload);
  const auto report = verify_schedule(s);
  EXPECT_TRUE(report.ok) << to_string(type) << "/" << to_string(algo) << "/n="
                         << n << ": " << report.error;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, VerifierSweep,
    ::testing::Values(
        VerifyCase{CollectiveType::kAllReduce, Algorithm::kRing, 2},
        VerifyCase{CollectiveType::kAllReduce, Algorithm::kRing, 3},
        VerifyCase{CollectiveType::kAllReduce, Algorithm::kRing, 8},
        VerifyCase{CollectiveType::kAllReduce, Algorithm::kRing, 17},
        VerifyCase{CollectiveType::kAllReduce, Algorithm::kRing, 64},
        VerifyCase{CollectiveType::kAllReduce,
                   Algorithm::kRecursiveHalvingDoubling, 2},
        VerifyCase{CollectiveType::kAllReduce,
                   Algorithm::kRecursiveHalvingDoubling, 8},
        VerifyCase{CollectiveType::kAllReduce,
                   Algorithm::kRecursiveHalvingDoubling, 64},
        VerifyCase{CollectiveType::kAllReduce, Algorithm::kBinomialTree, 2},
        VerifyCase{CollectiveType::kAllReduce, Algorithm::kBinomialTree, 7},
        VerifyCase{CollectiveType::kAllReduce, Algorithm::kBinomialTree, 24},
        VerifyCase{CollectiveType::kAllGather, Algorithm::kRing, 2},
        VerifyCase{CollectiveType::kAllGather, Algorithm::kRing, 9},
        VerifyCase{CollectiveType::kAllGather, Algorithm::kRing, 33},
        VerifyCase{CollectiveType::kAllGather, Algorithm::kRecursiveDoubling,
                   4},
        VerifyCase{CollectiveType::kAllGather, Algorithm::kRecursiveDoubling,
                   32},
        VerifyCase{CollectiveType::kAllGather, Algorithm::kDirect, 6},
        VerifyCase{CollectiveType::kReduceScatter, Algorithm::kRing, 2},
        VerifyCase{CollectiveType::kReduceScatter, Algorithm::kRing, 10},
        VerifyCase{CollectiveType::kReduceScatter, Algorithm::kRing, 31},
        VerifyCase{CollectiveType::kAllToAll, Algorithm::kPairwise, 2},
        VerifyCase{CollectiveType::kAllToAll, Algorithm::kPairwise, 12},
        VerifyCase{CollectiveType::kAllToAll, Algorithm::kDirect, 9},
        VerifyCase{CollectiveType::kBroadcast, Algorithm::kRing, 5},
        VerifyCase{CollectiveType::kBroadcast, Algorithm::kBinomialTree, 11},
        VerifyCase{CollectiveType::kBroadcast, Algorithm::kDirect, 7},
        VerifyCase{CollectiveType::kReduce, Algorithm::kRing, 6},
        VerifyCase{CollectiveType::kReduce, Algorithm::kBinomialTree, 19},
        VerifyCase{CollectiveType::kReduce, Algorithm::kDirect, 5},
        VerifyCase{CollectiveType::kSendRecv, Algorithm::kDirect, 2},
        VerifyCase{CollectiveType::kBarrier, Algorithm::kRing, 6},
        VerifyCase{CollectiveType::kBarrier, Algorithm::kRecursiveDoubling,
                   10}));

// ---- negative cases: the verifier must catch broken schedules -------------

TEST(VerifierNegative, MissingTransferFailsAllReduce) {
  auto s = plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, 4,
                           kPayload);
  s.transfers.pop_back();
  EXPECT_FALSE(verify_schedule(s).ok);
}

TEST(VerifierNegative, DoubleCountedReductionIsCaught) {
  auto s = plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, 4,
                           kPayload);
  // Flip one all-gather-phase copy into a reduce: the receiver now adds an
  // already-complete chunk to its own partial sum -> contribution counted
  // twice. Set semantics would miss this; exact counting must not.
  for (auto& t : s.transfers) {
    if (t.step >= s.n_ranks - 1) {
      t.reduce_op = true;
      break;
    }
  }
  EXPECT_FALSE(verify_schedule(s).ok);
}

TEST(VerifierNegative, WrongChunkFailsAllGather) {
  auto s = plan_collective(CollectiveType::kAllGather, Algorithm::kRing, 4,
                           kPayload);
  s.transfers[0].chunk_lo = (s.transfers[0].chunk_lo + 1) % 4;
  s.transfers[0].chunk_hi = s.transfers[0].chunk_lo + 1;
  EXPECT_FALSE(verify_schedule(s).ok);
}

TEST(VerifierNegative, DroppedBarrierEdgeIsCaught) {
  auto s = plan_collective(CollectiveType::kBarrier,
                           Algorithm::kRecursiveDoubling, 8, 0);
  s.transfers.pop_back();
  EXPECT_FALSE(verify_schedule(s).ok);
}

TEST(VerifierNegative, DuplicateAllToAllSliceIsCaught) {
  auto s = plan_collective(CollectiveType::kAllToAll, Algorithm::kPairwise, 4,
                           kPayload);
  s.transfers.push_back(s.transfers.front());
  EXPECT_FALSE(verify_schedule(s).ok);
}

TEST(VerifierNegative, RewiredReduceTreeStillVerifies) {
  // Rerouting (4 -> 0) to (4 -> 1) keeps the reduction correct: rank 4's
  // contribution reaches the root through rank 1's later send. The verifier
  // is semantic, not structural, so this must PASS.
  auto s = plan_collective(CollectiveType::kReduce, Algorithm::kBinomialTree,
                           8, kPayload);
  ASSERT_EQ(s.transfers[0].src, 4);
  ASSERT_EQ(s.transfers[0].dst, 0);
  s.transfers[0].dst = 1;
  EXPECT_TRUE(verify_schedule(s).ok);
}

TEST(VerifierNegative, WrongSourceFailsReduce) {
  // Replacing sender 4 with sender 5 double-counts rank 5's contribution
  // and drops rank 4's entirely.
  auto s = plan_collective(CollectiveType::kReduce, Algorithm::kBinomialTree,
                           8, kPayload);
  ASSERT_EQ(s.transfers[0].src, 4);
  s.transfers[0].src = 5;
  EXPECT_FALSE(verify_schedule(s).ok);
}

TEST(Verifier, SingleRankAlwaysOk) {
  const auto s =
      plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, 1, 100);
  EXPECT_TRUE(verify_schedule(s).ok);
}

TEST(Verifier, RejectsOversizedGroups) {
  auto s = plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, 4,
                           kPayload);
  s.n_ranks = 10'000;
  EXPECT_THROW(verify_schedule(s), InvariantError);
}

}  // namespace
}  // namespace opus::collective
