// Workload model tests: parameter counts, Table 1/2 reproduction, rank
// mapping & communication-group construction, and the exact traffic volumes
// the paper reports in Fig. 4(b).
#include <gtest/gtest.h>

#include "common/error.h"
#include "workload/comm_volume.h"
#include "workload/compute_model.h"
#include "workload/model_config.h"
#include "workload/parallelism.h"

namespace opus::workload {
namespace {

TEST(ModelConfig, Llama3_8BParameterCount) {
  const auto m = ModelConfig::llama3_8b();
  // ~8.0B parameters (meta reports 8.03B).
  EXPECT_NEAR(static_cast<double>(m.total_params()), 8.0e9, 0.1e9);
  EXPECT_EQ(m.head_dim(), 128);
  EXPECT_EQ(m.kv_dim(), 1024);
}

TEST(ModelConfig, Llama31_405BParameterCount) {
  const auto m = ModelConfig::llama31_405b();
  EXPECT_NEAR(static_cast<double>(m.total_params()), 405e9, 8e9);
}

TEST(ModelConfig, Gpt3ParameterCount) {
  const auto m = ModelConfig::gpt3_175b();
  EXPECT_NEAR(static_cast<double>(m.total_params()), 175e9, 10e9);
}

TEST(ModelConfig, MoeActiveVsTotalParams) {
  const auto m = ModelConfig::mixtral_8x7b();
  EXPECT_TRUE(m.moe());
  EXPECT_GT(m.params_per_layer(), 4 * m.active_params_per_layer() / 2);
  EXPECT_LT(m.active_params_per_layer(), m.params_per_layer());
  // 8 experts, top-2: dense-equivalent active share.
  const double ratio = static_cast<double>(m.params_per_layer()) /
                       static_cast<double>(m.active_params_per_layer());
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 4.0);
}

TEST(ParallelismConfig, ValidationRejectsBadConfigs) {
  ParallelismConfig p;
  p.pp = 4;
  p.n_microbatches = 2;  // 1F1B needs n_microbatches >= pp
  EXPECT_THROW(p.validate(), InvariantError);
  ParallelismConfig q;
  q.dp = 4;
  q.ep = 3;  // must divide dp
  EXPECT_THROW(q.validate(), InvariantError);
}

TEST(RankMapper, PaperWorkloadCoordinates) {
  // TP=4 (intra-node), FSDP=2, PP=2 on 4 nodes x 4 GPUs (§3.1).
  ParallelismConfig p;
  p.tp = 4;
  p.dp = 2;
  p.pp = 2;
  RankMapper m(p, 4);
  EXPECT_EQ(m.n_nodes(), 4);
  // Rank 0 is stage 0; rank 8 hosts stage 1 (the paper's Fig. 3 narrative).
  EXPECT_EQ(m.pp_stage(GpuId{0}), 0);
  EXPECT_EQ(m.pp_stage(GpuId{8}), 1);
  // Coordinates round-trip.
  for (int g = 0; g < 16; ++g) {
    EXPECT_EQ(m.gpu(m.coords(GpuId{g})).value(), g);
  }
}

TEST(RankMapper, ScaleOutGroupsAreRailLocal) {
  ParallelismConfig p;
  p.tp = 4;
  p.dp = 2;
  p.pp = 2;
  RankMapper m(p, 4);
  // Every DP and PP group must connect GPUs of equal local rank (this is
  // the property rail-optimized fabrics exploit, Fig. 1).
  for (const auto& g : m.dp_groups()) EXPECT_TRUE(m.rail_local(g)) << g.name;
  for (const auto& g : m.pp_groups()) EXPECT_TRUE(m.rail_local(g)) << g.name;
  // TP groups live inside one node (scale-up domain).
  for (const auto& g : m.tp_groups()) {
    const int node = g.ranks.front().value() / 4;
    for (GpuId r : g.ranks) EXPECT_EQ(r.value() / 4, node);
  }
}

TEST(RankMapper, GroupSizesAndCounts) {
  ParallelismConfig p;
  p.tp = 2;
  p.cp = 2;
  p.dp = 4;
  p.pp = 2;
  p.ep = 2;
  p.n_microbatches = 4;
  RankMapper m(p, 4);
  EXPECT_EQ(m.world_size(), 32);
  EXPECT_EQ(m.tp_groups().size(), 16u);
  EXPECT_EQ(m.cp_groups().size(), 16u);
  EXPECT_EQ(m.dp_groups().size(), 8u);
  EXPECT_EQ(m.pp_groups().size(), 16u);
  EXPECT_EQ(m.ep_groups().size(), 16u);
  for (const auto& g : m.tp_groups()) EXPECT_EQ(g.size(), 2);
  for (const auto& g : m.dp_groups()) EXPECT_EQ(g.size(), 4);
  for (const auto& g : m.ep_groups()) EXPECT_EQ(g.size(), 2);
  // group_of finds the right group for every rank and dimension.
  for (int g = 0; g < 32; ++g) {
    for (auto dim : {collective::ParallelismDim::kTP,
                     collective::ParallelismDim::kDP,
                     collective::ParallelismDim::kPP,
                     collective::ParallelismDim::kCP,
                     collective::ParallelismDim::kEP}) {
      EXPECT_TRUE(m.group_of(dim, GpuId{g}).contains(GpuId{g}));
    }
  }
}

TEST(CommVolume, PaperFig4TrafficSizes) {
  // The exact volumes behind Fig. 4(b): 64 MiB PP Send/Recv, 957 MiB DP
  // AllGather (per-rank shard input), 3829 MiB DP ReduceScatter input.
  ParallelismConfig p;
  p.tp = 4;
  p.dp = 2;
  p.pp = 2;
  p.microbatch_size = 2;
  CommVolumeModel vol(ModelConfig::llama3_8b(), p);

  EXPECT_EQ(vol.pp_sendrecv_per_microbatch(), 64 * kMiB);

  // Whole-stage FSDP volumes (16 layers + one embedding half per stage).
  const Bytes ag_stage = 16 * vol.fsdp_allgather_per_layer() +
                         vol.embedding_ag_extra(0);
  const Bytes rs_stage = 16 * vol.fsdp_reducescatter_per_layer() +
                         vol.embedding_rs_extra(0);
  // AllGather per-rank input = total / dp.
  EXPECT_NEAR(static_cast<double>(ag_stage / p.dp) / kMiB, 957.0, 5.0);
  EXPECT_NEAR(static_cast<double>(rs_stage) / kMiB, 3829.0, 20.0);
  EXPECT_LT(vol.sync_allreduce(), 1'000'000);  // the "<1MB" category
}

TEST(CommVolume, Table2Structure) {
  const auto rows = parallelism_traits_table();
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[0].name, "DP");
  EXPECT_EQ(rows[1].name, "FSDP");
  EXPECT_EQ(rows[6].name, "EP");
  EXPECT_NE(rows[6].communication.find("AllToAll"), std::string::npos);
}

TEST(CommVolume, ScalesWithDegrees) {
  ParallelismConfig p;
  p.tp = 2;
  p.dp = 4;
  p.pp = 2;
  const auto model = ModelConfig::llama3_8b();
  CommVolumeModel v2(model, p);
  p.tp = 4;
  CommVolumeModel v4(model, p);
  EXPECT_EQ(v2.fsdp_allgather_per_layer(), 2 * v4.fsdp_allgather_per_layer());
  EXPECT_EQ(v2.fsdp_reducescatter_per_layer(),
            2 * v4.fsdp_reducescatter_per_layer());
}

TEST(CommVolume, MoEAllToAllScalesWithTopK) {
  ParallelismConfig p;
  p.dp = 8;
  p.ep = 8;
  const auto moe = ModelConfig::mixtral_8x7b();
  CommVolumeModel vol(moe, p);
  // top-2 routing sends each token's activation twice.
  EXPECT_EQ(vol.ep_alltoall_per_layer(),
            2 * vol.tokens_per_microbatch() * moe.hidden * moe.dtype_bytes);
}

TEST(Table1, AdvisorMatchesPaperRows) {
  const auto rows = parallelism_rule_table();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].practices, "TP or DP");
  EXPECT_EQ(rows[1].practices, "TP & PP, TP & DP, or DP");
  EXPECT_EQ(rows[2].practices, "DP & PP, or DP & TP");
  EXPECT_EQ(rows[3].practices, "TP, DP & PP");
  EXPECT_EQ(advise_parallelism(8'000'000'000, 8).model_size, "Small (<10B)");
  EXPECT_EQ(advise_parallelism(405'000'000'000, 4096).compute, "N > 1024");
}

TEST(ComputeModel, BackwardCostsMoreThanForward) {
  ParallelismConfig p;
  p.tp = 4;
  p.dp = 2;
  p.pp = 2;
  const auto m = ModelConfig::llama3_8b();
  ComputeModel with_recompute(GpuSpec::a100(), 0.35, true);
  ComputeModel without(GpuSpec::a100(), 0.35, false);
  EXPECT_EQ(with_recompute.layer_bwd(m, p), 3 * with_recompute.layer_fwd(m, p));
  EXPECT_EQ(without.layer_bwd(m, p), 2 * without.layer_fwd(m, p));
}

TEST(ComputeModel, TensorParallelismSpeedsUpLayers) {
  const auto m = ModelConfig::llama3_8b();
  ComputeModel cm;
  ParallelismConfig p1;
  ParallelismConfig p4;
  p4.tp = 4;
  EXPECT_GT(cm.layer_fwd(m, p1), 3 * cm.layer_fwd(m, p4));
}

TEST(ComputeModel, CalibratedStageBackwardIsHundredsOfMs) {
  // The calibration target behind Fig. 4: one stage's cool-down backward
  // (16 layers) takes O(100ms..1s) so the window before the ReduceScatter
  // phase lands where the paper reports it.
  ParallelismConfig p;
  p.tp = 4;
  p.dp = 2;
  p.pp = 2;
  p.microbatch_size = 2;
  const auto m = ModelConfig::llama3_8b();
  ComputeModel cm(GpuSpec::a100(), 0.35, true);
  const TimeNs stage_bwd = 16 * cm.layer_bwd(m, p);
  EXPECT_GT(stage_bwd, msecs(100));
  EXPECT_LT(stage_bwd, secs(2));
}

TEST(ComputeModel, FasterGpusShortenCompute) {
  ParallelismConfig p;
  const auto m = ModelConfig::llama3_8b();
  ComputeModel a100(GpuSpec::a100(), 0.4, false);
  ComputeModel h100(GpuSpec::h100(), 0.4, false);
  EXPECT_GT(a100.layer_fwd(m, p), 2 * h100.layer_fwd(m, p));
}

TEST(ComputeModel, HigherMfuIsFaster) {
  ParallelismConfig p;
  const auto m = ModelConfig::llama3_8b();
  ComputeModel lo(GpuSpec::a100(), 0.2, false);
  ComputeModel hi(GpuSpec::a100(), 0.4, false);
  EXPECT_NEAR(static_cast<double>(lo.layer_fwd(m, p)),
              2.0 * static_cast<double>(hi.layer_fwd(m, p)),
              static_cast<double>(hi.layer_fwd(m, p)) * 0.01);
}

}  // namespace
}  // namespace opus::workload
