// Cost/power model tests: Table 3 reproduction and Fig. 7 properties
// (ordering, scaling, headline savings bands).
#include <gtest/gtest.h>

#include "common/error.h"
#include "costmodel/fabric_cost.h"
#include "costmodel/ocs_catalog.h"

namespace opus::costmodel {
namespace {

TEST(OcsCatalog, HasAllSevenTechnologies) {
  const auto& catalog = ocs_catalog();
  ASSERT_EQ(catalog.size(), 7u);
  EXPECT_EQ(catalog[0].technology, "PLZT");
  EXPECT_EQ(catalog[6].technology, "Robotic");
}

TEST(OcsCatalog, Table3GpuCounts) {
  // Every (radix, scale-up) cell of Table 3.
  struct Row {
    const char* tech;
    std::int64_t gb200;
    std::int64_t h200;
  };
  const Row rows[] = {
      {"PLZT", 576, 64},          {"SiP", 1152, 128},
      {"RotorNet", 4608, 512},    {"3D MEMS", 11520, 1280},
      {"Piezo", 20736, 2304},     {"Liquid crystal", 18432, 2048},
      {"Robotic", 36288, 4032},
  };
  for (const Row& row : rows) {
    const OcsSpec& ocs = ocs_by_technology(row.tech);
    EXPECT_EQ(opus_max_gpus(ocs, kGb200ScaleUp), row.gb200) << row.tech;
    EXPECT_EQ(opus_max_gpus(ocs, kH200ScaleUp), row.h200) << row.tech;
  }
}

TEST(OcsCatalog, ReconfigTimesMatchPaper) {
  EXPECT_EQ(ocs_by_technology("Piezo").reconfig_ms, 25.0);
  EXPECT_EQ(ocs_by_technology("3D MEMS").reconfig_ms, 15.0);
  EXPECT_EQ(ocs_by_technology("Liquid crystal").reconfig_ms, 100.0);
  EXPECT_EQ(ocs_by_technology("Robotic").reconfig_ms, 120000.0);
  EXPECT_NEAR(ocs_by_technology("PLZT").reconfig_ms, 1e-5, 1e-12);
}

TEST(OcsCatalog, UnknownTechnologyThrows) {
  EXPECT_THROW(ocs_by_technology("Quantum"), InvariantError);
}

TEST(FabricCost, OrderingMatchesFig7) {
  // At every Fig. 7 scale: Opus < Rail-optimized < Fat-tree for both cost
  // and power.
  for (int n : {1024, 2048, 4096, 8192}) {
    const auto ft = fat_tree_fabric(n);
    const auto rail = rail_optimized_fabric(n);
    const auto opus = opus_fabric(n);
    EXPECT_LT(opus.total_cost(), rail.total_cost()) << n;
    EXPECT_LT(rail.total_cost(), ft.total_cost()) << n;
    EXPECT_LT(opus.total_power_w(), rail.total_power_w()) << n;
    EXPECT_LT(rail.total_power_w(), ft.total_power_w()) << n;
  }
}

TEST(FabricCost, HeadlineSavingsBands) {
  // The paper: up to 70.5% cost and 95.84% power savings. Our calibrated
  // component prices land in the same bands at 8192 GPUs.
  const auto ft = fat_tree_fabric(8192);
  const auto rail = rail_optimized_fabric(8192);
  const auto opus = opus_fabric(8192);
  EXPECT_GT(cost_saving(opus, rail), 0.55);
  EXPECT_GT(cost_saving(opus, ft), 0.70);
  EXPECT_LT(cost_saving(opus, ft), 0.90);
  EXPECT_GT(power_saving(opus, rail), 0.88);
  EXPECT_GT(power_saving(opus, ft), 0.93);
  EXPECT_LT(power_saving(opus, ft), 0.99);
}

TEST(FabricCost, ScalesRoughlyLinearly) {
  for (auto fabric : {fat_tree_fabric, rail_optimized_fabric, opus_fabric}) {
    const auto small = fabric(1024, CostParams{});
    const auto large = fabric(8192, CostParams{});
    const double ratio = large.total_cost() / small.total_cost();
    EXPECT_GT(ratio, 6.0);
    EXPECT_LT(ratio, 10.0);
  }
}

TEST(FabricCost, OpusHasNoPacketSwitches) {
  const auto opus = opus_fabric(4096);
  EXPECT_EQ(opus.n_switches, 0);
  EXPECT_GT(opus.n_ocs, 0);
  EXPECT_EQ(opus.switch_cost, 0.0);
  // End-to-end optical: the only power is NIC optics + the OCS itself.
  EXPECT_GT(opus.transceiver_power_w, 0.0);
  EXPECT_GT(opus.ocs_power_w, 0.0);
  EXPECT_LT(opus.ocs_power_w, opus.transceiver_power_w);
}

TEST(FabricCost, OpusOcsCountMatchesPortMath) {
  // 8192 H200 GPUs: 8 rails x 1024 nodes x 2 ports = 2048 ports per rail;
  // Polatis 576 -> ceil(2048/576) = 4 OCS per rail -> 32 total.
  const auto opus = opus_fabric(8192);
  EXPECT_EQ(opus.n_ocs, 32);
  // Transceivers: 2 per GPU (NIC side only).
  EXPECT_EQ(opus.n_transceivers, 2 * 8192);
}

TEST(FabricCost, FatTreeHasThreeTiersOfSwitches) {
  const auto ft = fat_tree_fabric(8192);
  // ~5N/64 switches for a full-bisection 3-tier Clos.
  EXPECT_NEAR(ft.n_switches, 5.0 * 8192 / 64, 10);
  EXPECT_EQ(ft.n_transceivers, 6 * 8192);
}

TEST(FabricCost, RailOptimizedSitsBetween) {
  const auto rail = rail_optimized_fabric(8192);
  // Leaf per rail + spine: ~3N/64 switches, 4N transceivers.
  EXPECT_NEAR(rail.n_switches, 3.0 * 8192 / 64, 10);
  EXPECT_EQ(rail.n_transceivers, 4 * 8192);
}

TEST(FabricCost, SavingsGrowWithScaleForPower) {
  const double s1 =
      power_saving(opus_fabric(1024), rail_optimized_fabric(1024));
  const double s8 =
      power_saving(opus_fabric(8192), rail_optimized_fabric(8192));
  EXPECT_GE(s8, s1 - 0.02);  // monotone up to step-function wiggle
}

TEST(FabricCost, CustomParamsPropagate) {
  CostParams p;
  p.ocs_cost_per_port = 1000.0;
  const auto cheap = opus_fabric(2048, CostParams{});
  const auto pricey = opus_fabric(2048, p);
  EXPECT_GT(pricey.total_cost(), cheap.total_cost());
  // Per-used-port pricing: 2048 GPUs x 2 ports.
  EXPECT_EQ(pricey.ocs_cost, 2048 * 2 * 1000.0);
}

TEST(FabricCost, RejectsEmptyClusters) {
  EXPECT_THROW(fat_tree_fabric(0), InvariantError);
  EXPECT_THROW(opus_fabric(4), InvariantError);  // less than one node
}

// Sweep: Opus stays cheapest across a wide range of scales.
class ScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScaleSweep, OpusCheapestAtEveryScale) {
  const int n = GetParam();
  EXPECT_LT(opus_fabric(n).total_cost(),
            rail_optimized_fabric(n).total_cost());
  EXPECT_LT(opus_fabric(n).total_power_w(),
            rail_optimized_fabric(n).total_power_w());
}

INSTANTIATE_TEST_SUITE_P(Fig7Range, ScaleSweep,
                         ::testing::Values(512, 1024, 2048, 3072, 4096, 6144,
                                           8192, 16384, 32768));

}  // namespace
}  // namespace opus::costmodel
