// Unit tests for the optical circuit switch: circuit state, reconfiguration
// dark periods, fine-grained (per-port) switching, and safety invariants.
#include <gtest/gtest.h>

#include "common/error.h"
#include "net/ocs.h"
#include "sim/simulator.h"

namespace opus::net {
namespace {

constexpr Bandwidth k200G = Bandwidth::gbps(200);

class OcsTest : public ::testing::Test {
 protected:
  OcsTest() : net(sim), sw(sim, net, 8, k200G, usecs(2), msecs(15), "t") {}
  sim::Simulator sim;
  FluidNetwork net;
  OpticalCircuitSwitch sw;
};

TEST_F(OcsTest, StartsUnconnected) {
  for (int p = 0; p < sw.n_ports(); ++p) {
    EXPECT_FALSE(sw.peer(PortId{p}).has_value());
    EXPECT_FALSE(sw.dark(PortId{p}));
  }
}

TEST_F(OcsTest, ReconfigureEstablishesAfterDelay) {
  bool done = false;
  sw.reconfigure({{PortId{0}, PortId{1}}}, [&] { done = true; });
  EXPECT_TRUE(sw.dark(PortId{0}));
  EXPECT_TRUE(sw.dark(PortId{1}));
  EXPECT_FALSE(sw.connected(PortId{0}, PortId{1}));
  sim.run_until(msecs(14));
  EXPECT_FALSE(done);
  sim.run_until(msecs(15));
  EXPECT_TRUE(done);
  EXPECT_TRUE(sw.connected(PortId{0}, PortId{1}));
  EXPECT_TRUE(sw.connected(PortId{1}, PortId{0}));  // bidirectional
  EXPECT_FALSE(sw.dark(PortId{0}));
}

TEST_F(OcsTest, SatisfiedRequestAcksWithoutReconfiguring) {
  sw.force_circuits({{PortId{0}, PortId{1}}});
  EXPECT_EQ(sw.stats().reconfigurations, 0);
  bool done = false;
  sw.reconfigure({{PortId{0}, PortId{1}}}, [&] { done = true; });
  EXPECT_TRUE(done) << "idempotent request must ack immediately";
  EXPECT_EQ(sw.stats().reconfigurations, 0);
}

TEST_F(OcsTest, RetargetingTearsOldPeerToo) {
  sw.force_circuits({{PortId{0}, PortId{1}}});
  // Retarget port 0 to port 2: the old peer (port 1) must go dark and end
  // up unconnected.
  const auto touched = sw.touched_ports({{PortId{0}, PortId{2}}});
  EXPECT_EQ(touched.size(), 3u);  // ports 0, 1, 2
  sw.reconfigure({{PortId{0}, PortId{2}}}, nullptr);
  EXPECT_TRUE(sw.dark(PortId{1}));
  sim.run();
  EXPECT_TRUE(sw.connected(PortId{0}, PortId{2}));
  EXPECT_FALSE(sw.peer(PortId{1}).has_value());
}

TEST_F(OcsTest, UntouchedCircuitsKeepCarryingTraffic) {
  sw.force_circuits({{PortId{0}, PortId{1}}, {PortId{2}, PortId{3}}});
  TimeNs done = -1;
  // 25 MB at 200 Gb/s = 1 ms.
  net.start_flow({sw.link(PortId{0}, PortId{1})}, 25'000'000, 0,
                 [&] { done = sim.now(); });
  // Fine-grained reconfiguration of the other ports.
  sw.reconfigure({{PortId{4}, PortId{5}}}, nullptr);
  EXPECT_TRUE(sw.connected(PortId{0}, PortId{1}));
  sim.run();
  EXPECT_EQ(done, msecs(1)) << "reconfig of ports 4/5 must not disturb 0/1";
}

TEST_F(OcsTest, ReconfiguringActiveCircuitThrows) {
  sw.force_circuits({{PortId{0}, PortId{1}}});
  net.start_flow({sw.link(PortId{0}, PortId{1})}, 1'000'000'000, 0, nullptr);
  EXPECT_THROW(sw.reconfigure({{PortId{0}, PortId{2}}}, nullptr),
               InvariantError);
}

TEST_F(OcsTest, OverlappingInFlightReconfigThrows) {
  sw.reconfigure({{PortId{0}, PortId{1}}}, nullptr);
  EXPECT_THROW(sw.reconfigure({{PortId{1}, PortId{2}}}, nullptr),
               InvariantError)
      << "callers must serialize overlapping requests";
  // Disjoint reconfig is fine.
  EXPECT_NO_THROW(sw.reconfigure({{PortId{2}, PortId{3}}}, nullptr));
}

TEST_F(OcsTest, PortInTwoCircuitsThrows) {
  EXPECT_THROW(
      sw.reconfigure({{PortId{0}, PortId{1}}, {PortId{1}, PortId{2}}},
                     nullptr),
      InvariantError);
}

TEST_F(OcsTest, SelfLoopThrows) {
  EXPECT_THROW(sw.reconfigure({{PortId{3}, PortId{3}}}, nullptr),
               InvariantError);
}

TEST_F(OcsTest, LinkRequiresLiveCircuit) {
  EXPECT_THROW(sw.link(PortId{0}, PortId{1}), InvariantError);
  sw.reconfigure({{PortId{0}, PortId{1}}}, nullptr);
  EXPECT_THROW(sw.link(PortId{0}, PortId{1}), InvariantError);  // still dark
  sim.run();
  EXPECT_NO_THROW(sw.link(PortId{0}, PortId{1}));
}

TEST_F(OcsTest, DirectionalLinksAreDistinct) {
  sw.force_circuits({{PortId{0}, PortId{1}}});
  const LinkId fwd = sw.link(PortId{0}, PortId{1});
  const LinkId rev = sw.link(PortId{1}, PortId{0});
  EXPECT_NE(fwd, rev);
  EXPECT_EQ(net.capacity(fwd), k200G);
  EXPECT_EQ(net.capacity(rev), k200G);
}

TEST_F(OcsTest, StatsAccumulate) {
  sw.reconfigure({{PortId{0}, PortId{1}}, {PortId{2}, PortId{3}}}, nullptr);
  sim.run();
  sw.reconfigure({{PortId{0}, PortId{2}}}, nullptr);
  sim.run();
  EXPECT_EQ(sw.stats().reconfigurations, 2);
  EXPECT_EQ(sw.stats().circuits_established, 3);
  // First reconfig darkened 4 ports, second 4 (0,1,2,3 via old peers).
  EXPECT_EQ(sw.stats().cumulative_port_dark_ns, 8 * msecs(15));
}

TEST_F(OcsTest, ZeroDelayReconfigCompletesAtSameTimestamp) {
  OpticalCircuitSwitch fast(sim, net, 4, k200G, 0, 0, "fast");
  bool done = false;
  fast.reconfigure({{PortId{0}, PortId{1}}}, [&] { done = true; });
  EXPECT_FALSE(done);  // still event-driven, no synchronous reentrancy
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0);
}

TEST_F(OcsTest, CircuitReuseKeepsLinkIdentity) {
  sw.force_circuits({{PortId{0}, PortId{1}}});
  const LinkId first = sw.link(PortId{0}, PortId{1});
  sw.reconfigure({{PortId{0}, PortId{2}}}, nullptr);
  sim.run();
  sw.reconfigure({{PortId{0}, PortId{1}}}, nullptr);
  sim.run();
  EXPECT_EQ(sw.link(PortId{0}, PortId{1}), first)
      << "re-established circuits reuse their fluid links";
}

TEST_F(OcsTest, MidFlightDelayChangeKeepsAccountingAndDarknessInSync) {
  // The in-flight reconfiguration captured a 15ms delay; changing the knob
  // mid-flight must affect neither its dark-time charge nor when its ports
  // come back up (Fig. 8 accounting == actual dark time).
  TimeNs up_at = -1;
  sw.reconfigure({{PortId{0}, PortId{1}}}, [&] { up_at = sim.now(); });
  EXPECT_EQ(sw.stats().cumulative_port_dark_ns, 2 * msecs(15));
  sim.run_until(msecs(5));
  sw.set_reconfig_delay(msecs(1));
  sim.run_until(msecs(6));
  EXPECT_TRUE(sw.dark(PortId{0}))
      << "shrinking the delay must not resurrect in-flight ports early";
  sim.run();
  EXPECT_EQ(up_at, msecs(15));
  EXPECT_EQ(sw.stats().cumulative_port_dark_ns, 2 * msecs(15));

  // The next reconfiguration picks up the new 1ms delay.
  TimeNs up2 = -1;
  sw.reconfigure({{PortId{2}, PortId{3}}}, [&] { up2 = sim.now(); });
  sim.run();
  EXPECT_EQ(up2, msecs(15) + msecs(1));
  EXPECT_EQ(sw.stats().cumulative_port_dark_ns, 2 * msecs(15) + 2 * msecs(1));
}

TEST_F(OcsTest, ReconfigurationChurnRetiresDeadCircuitLinks) {
  // Rotor-style round-robin matchings on all 8 ports (the same
  // round_robin_circuits schedule the churn bench drives): every round
  // tears down 4 circuits and establishes 4 never-seen pairs (period 7).
  // Two full cycles create 28 distinct pairs; the dead-circuit cache
  // (2x n_ports = 16 pairs) must retire the overflow and reuse the fluid
  // link slots.
  constexpr int kRot = 7;  // n_ports - 1
  for (int r = 0; r < 2 * kRot; ++r) {
    const auto circuits = round_robin_circuits(8, r);
    ASSERT_EQ(circuits.size(), 4u);
    sw.reconfigure(circuits, nullptr);
    sim.run();
    // Push one flow across each live circuit so the churn carries traffic.
    TimeNs done = 0;
    for (const CircuitRequest& c : circuits) {
      net.start_flow({sw.link(c.a, c.b)}, 25'000'000, 0,
                     [&done, this] { done = sim.now(); });
    }
    sim.run();
    EXPECT_GT(done, 0);
  }
  EXPECT_GT(sw.stats().links_retired, 0)
      << "churn beyond the dead-circuit cache must retire links";
  EXPECT_EQ(net.retired_link_count(),
            static_cast<std::uint64_t>(sw.stats().links_retired));
  // Live state stays bounded by the radix (4 live + <=16 cached dead
  // pairs), and id reuse keeps the table itself from growing one slot per
  // lifetime pair (28 pairs would need 56 links without reuse).
  EXPECT_LE(net.live_link_count(), 2u * (4u + 16u));
  EXPECT_LT(net.link_count(), 56u);
}

// ---- batched rotation transactions -----------------------------------------

// The per-port breakdown must always sum to the aggregate counter, whichever
// mix of generic, batched, and forced reconfigurations produced it.
TimeNs summed_port_dark(const OpticalCircuitSwitch& sw) {
  TimeNs sum = 0;
  for (int p = 0; p < sw.n_ports(); ++p) sum += sw.port_dark_time(PortId{p});
  return sum;
}

TEST_F(OcsTest, BatchReconfigureMatchesGenericSemantics) {
  const auto batch = sw.register_batch({{PortId{0}, PortId{1}},
                                        {PortId{2}, PortId{3}}});
  bool done = false;
  sw.reconfigure_batch(batch, [&] { done = true; });
  for (int p : {0, 1, 2, 3}) EXPECT_TRUE(sw.dark(PortId{p}));
  EXPECT_FALSE(sw.dark(PortId{4}));
  EXPECT_FALSE(sw.connected(PortId{0}, PortId{1}));
  sim.run_until(msecs(14));
  EXPECT_FALSE(done);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(sw.connected(PortId{0}, PortId{1}));
  EXPECT_TRUE(sw.connected(PortId{2}, PortId{3}));
  for (int p : {0, 1, 2, 3}) {
    EXPECT_FALSE(sw.dark(PortId{p}));
    EXPECT_EQ(sw.port_dark_time(PortId{p}), msecs(15));
  }
  EXPECT_EQ(sw.stats().reconfigurations, 1);
  EXPECT_EQ(sw.stats().circuits_established, 2);
  EXPECT_EQ(sw.stats().cumulative_port_dark_ns, 4 * msecs(15));
  EXPECT_EQ(summed_port_dark(sw), sw.stats().cumulative_port_dark_ns);
}

TEST_F(OcsTest, BatchRotationsAccrueDeltaDarkAccounting) {
  // Two matchings over the same four ports, replayed rotor-style. Every
  // rotation is one reconfiguration and charges each port exactly one
  // reconfig delay, with the aggregate == per-port invariant held
  // throughout.
  const auto a = sw.register_batch({{PortId{0}, PortId{1}},
                                    {PortId{2}, PortId{3}}});
  const auto b = sw.register_batch({{PortId{0}, PortId{2}},
                                    {PortId{1}, PortId{3}}});
  for (int rotation = 1; rotation <= 6; ++rotation) {
    sw.reconfigure_batch(rotation % 2 == 1 ? a : b, nullptr);
    sim.run();
    EXPECT_EQ(sw.stats().reconfigurations, rotation);
    EXPECT_EQ(sw.stats().cumulative_port_dark_ns, rotation * 4 * msecs(15));
    for (int p : {0, 1, 2, 3}) {
      EXPECT_EQ(sw.port_dark_time(PortId{p}), rotation * msecs(15));
    }
    EXPECT_EQ(summed_port_dark(sw), sw.stats().cumulative_port_dark_ns);
  }
  EXPECT_EQ(sw.stats().links_retired, 0)
      << "batch-pinned circuit pairs must never be retired by churn";
}

TEST_F(OcsTest, BatchReplayKeepsLinkIdentity) {
  const auto a = sw.register_batch({{PortId{0}, PortId{1}},
                                    {PortId{2}, PortId{3}}});
  const auto b = sw.register_batch({{PortId{0}, PortId{2}},
                                    {PortId{1}, PortId{3}}});
  sw.reconfigure_batch(a, nullptr);
  sim.run();
  const LinkId first = sw.link(PortId{0}, PortId{1});
  sw.reconfigure_batch(b, nullptr);
  sim.run();
  sw.reconfigure_batch(a, nullptr);
  sim.run();
  EXPECT_EQ(sw.link(PortId{0}, PortId{1}), first)
      << "replayed matchings reuse their pinned fluid links";
}

TEST_F(OcsTest, BatchAlreadySatisfiedAcksWithoutCounting) {
  const auto a = sw.register_batch({{PortId{0}, PortId{1}}});
  sw.reconfigure_batch(a, nullptr);
  sim.run();
  bool done = false;
  sw.reconfigure_batch(a, [&] { done = true; });
  EXPECT_TRUE(done) << "idempotent batch must ack immediately";
  EXPECT_EQ(sw.stats().reconfigurations, 1);
  EXPECT_EQ(sw.stats().cumulative_port_dark_ns, 2 * msecs(15));
}

TEST_F(OcsTest, BatchFallsBackWhenCurrentPeerLiesOutsideTheBatch) {
  // Port 0 currently pairs with port 4; a batch over {0,1,2,3} must widen
  // its touched set to the displaced peer — the generic-path fallback.
  sw.reconfigure({{PortId{0}, PortId{4}}}, nullptr);
  sim.run();
  const auto batch = sw.register_batch({{PortId{0}, PortId{1}},
                                        {PortId{2}, PortId{3}}});
  sw.reconfigure_batch(batch, nullptr);
  EXPECT_TRUE(sw.dark(PortId{4})) << "displaced peer must go dark too";
  sim.run();
  EXPECT_FALSE(sw.peer(PortId{4}).has_value());
  EXPECT_TRUE(sw.connected(PortId{0}, PortId{1}));
  EXPECT_EQ(sw.stats().reconfigurations, 2);
  // 2 ports dark in the first reconfig, 5 (batch's four + port 4) in the
  // fallback.
  EXPECT_EQ(sw.stats().cumulative_port_dark_ns, 7 * msecs(15));
  EXPECT_EQ(summed_port_dark(sw), sw.stats().cumulative_port_dark_ns);
}

TEST_F(OcsTest, BatchRegistrationMigratesDarkGroupsWithoutLosingTime) {
  // A second batch over a *subset* of an existing group's ports forces the
  // subset into a fresh dark group; the accrued group time must be baked
  // into the per-port tallies, leaving every port_dark_time unchanged.
  const auto a = sw.register_batch({{PortId{0}, PortId{1}},
                                    {PortId{2}, PortId{3}}});
  sw.reconfigure_batch(a, nullptr);
  sim.run();
  const auto b = sw.register_batch({{PortId{0}, PortId{1}}});
  for (int p : {0, 1, 2, 3}) {
    EXPECT_EQ(sw.port_dark_time(PortId{p}), msecs(15))
        << "group migration must not change accrued dark time";
  }
  EXPECT_EQ(summed_port_dark(sw), sw.stats().cumulative_port_dark_ns);
  // The migrated group keeps accounting correctly on its next transaction.
  sw.clear_circuits_on({PortId{0}, PortId{1}});
  sw.reconfigure_batch(b, nullptr);
  sim.run();
  EXPECT_EQ(sw.port_dark_time(PortId{0}), 2 * msecs(15));
  EXPECT_EQ(sw.port_dark_time(PortId{2}), msecs(15));
  EXPECT_EQ(summed_port_dark(sw), sw.stats().cumulative_port_dark_ns);
}

TEST_F(OcsTest, BatchRefusesToDarkenTrafficAndInvalidRequests) {
  EXPECT_THROW(sw.register_batch({{PortId{0}, PortId{0}}}), InvariantError);
  EXPECT_THROW(sw.register_batch({{PortId{0}, PortId{1}},
                                  {PortId{1}, PortId{2}}}),
               InvariantError);
  EXPECT_THROW(sw.register_batch({{PortId{0}, PortId{99}}}), InvariantError);
  const auto batch = sw.register_batch({{PortId{0}, PortId{1}},
                                        {PortId{2}, PortId{3}}});
  sw.force_circuits({{PortId{0}, PortId{1}}});
  net.start_flow({sw.link(PortId{0}, PortId{1})}, 25'000'000, 0, nullptr);
  EXPECT_THROW(sw.reconfigure_batch(batch, nullptr), InvariantError);
  EXPECT_THROW(sw.reconfigure_batch(batch + 99, nullptr), InvariantError);
}

TEST_F(OcsTest, DarkAccountingInvariantHoldsAcrossMixedOperations) {
  // Property check over an interleaving of every reconfiguration flavor:
  // after each step, sum_p port_dark_time(p) == cumulative_port_dark_ns.
  const auto check = [&] {
    EXPECT_EQ(summed_port_dark(sw), sw.stats().cumulative_port_dark_ns);
  };
  sw.force_circuits({{PortId{6}, PortId{7}}});  // forced: no dark, no stats
  check();
  sw.reconfigure({{PortId{0}, PortId{4}}}, nullptr);
  sim.run();
  check();
  const auto a = sw.register_batch({{PortId{0}, PortId{1}},
                                    {PortId{2}, PortId{3}}});
  sw.reconfigure_batch(a, nullptr);  // fallback: peer 4 outside the batch
  sim.run();
  check();
  const auto b = sw.register_batch({{PortId{0}, PortId{2}},
                                    {PortId{1}, PortId{3}}});
  sw.reconfigure_batch(b, nullptr);  // transaction path
  sim.run();
  check();
  sw.reconfigure({{PortId{4}, PortId{5}}}, nullptr);  // generic, disjoint
  sim.run();
  check();
  sw.reconfigure_batch(a, nullptr);  // replay
  sim.run();
  check();
  EXPECT_GT(sw.stats().cumulative_port_dark_ns, 0);
}

// Parameterized: the dark period must equal the configured delay for any
// technology (Table 3 spans 10 ns .. 120 s).
class DarkPeriodSweep : public ::testing::TestWithParam<TimeNs> {};

TEST_P(DarkPeriodSweep, DarknessLastsExactlyTheReconfigDelay) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  OpticalCircuitSwitch sw(sim, net, 4, k200G, 0, GetParam(), "p");
  TimeNs up_at = -1;
  sw.reconfigure({{PortId{0}, PortId{1}}}, [&] { up_at = sim.now(); });
  sim.run();
  EXPECT_EQ(up_at, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Table3Latencies, DarkPeriodSweep,
                         ::testing::Values(usecs(0.01), usecs(7), usecs(10),
                                           msecs(15), msecs(25), msecs(100),
                                           secs(120)));

}  // namespace
}  // namespace opus::net
