// src/obs: metrics registry slot semantics, probe interval sampling,
// chrome-trace JSON parse-back, self-profiler nesting/exception safety, and
// the telemetry config's serde contract.
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json.h"
#include "config/serde.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "obs/selfprof.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace opus {
namespace {

// ---- metrics registry ------------------------------------------------------

TEST(Metrics, CounterWritesThroughStableSlot) {
  obs::MetricsRegistry registry;
  obs::Counter c = registry.add_counter("flows");
  EXPECT_TRUE(c.registered());
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);

  // Handles are copies of the slot pointer: both views see the same cell,
  // and later registrations never invalidate earlier handles.
  obs::Counter copy = c;
  registry.add_counter("other");
  copy.inc(8);
  EXPECT_EQ(c.value(), 50);

  const json::Value snap = registry.snapshot_json();
  EXPECT_EQ(snap.find("flows")->as_int(), 50);
  EXPECT_EQ(snap.find("other")->as_int(), 0);
}

TEST(Metrics, UnregisteredHandlesAreGuardedNoOps) {
  obs::Counter c;
  EXPECT_FALSE(c.registered());
  c.inc();
  c.set(7);
  EXPECT_EQ(c.value(), 0);

  obs::Histogram h;
  EXPECT_FALSE(h.registered());
  h.record(123);
  EXPECT_EQ(h.count(), 0);
}

TEST(Metrics, DuplicateOrEmptyRegistrationThrows) {
  obs::MetricsRegistry registry;
  registry.add_counter("x");
  EXPECT_THROW(registry.add_counter("x"), InvariantError);
  EXPECT_THROW(registry.add_gauge("x", [] { return 0.0; }), InvariantError);
  EXPECT_THROW(registry.add_histogram("x"), InvariantError);
  EXPECT_THROW(registry.add_counter(""), InvariantError);
}

TEST(Metrics, ColumnsAreRegistrationOrderAndSkipHistograms) {
  obs::MetricsRegistry registry;
  obs::Counter a = registry.add_counter("a");
  registry.add_histogram("hist");
  registry.add_gauge("b", [] { return 2.5; });
  a.inc(3);

  const std::vector<std::string> cols = registry.column_names();
  ASSERT_EQ(cols, (std::vector<std::string>{"a", "b"}));
  const std::vector<double> row = registry.sample_columns();
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 2.5);
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  obs::MetricsRegistry registry;
  obs::Histogram h = registry.add_histogram("lat");
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  h.record(-3);  // clamped to 0
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 11);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 5);

  const json::Value snap = registry.snapshot_json();
  const json::Value* lat = snap.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_int(), 5);
  // Buckets: value 0 -> bucket 0 (x2), 1 -> bucket 1, 5 -> bucket 3 (x2).
  const json::Value& buckets = *lat->find("buckets");
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].as_int(), 2);
  EXPECT_EQ(buckets[1].as_int(), 1);
  EXPECT_EQ(buckets[2].as_int(), 0);
  EXPECT_EQ(buckets[3].as_int(), 2);
}

// ---- probe -----------------------------------------------------------------

TEST(Probe, SamplesEveryIntervalPlusAtMostOneTrailing) {
  sim::Simulator sim;
  obs::MetricsRegistry registry;
  obs::Counter events = registry.add_counter("events");
  sim.schedule_at(350, [&events] { events.inc(); });

  obs::Probe probe(sim, registry, 100);
  probe.start();
  sim.run();

  // Samples at 0/100/200/300, then one trailing tick at 400 that finds the
  // queue drained and stops — the probe never keeps the simulation alive.
  const obs::Series& series = probe.series();
  ASSERT_EQ(series.row_count(), 5u);
  for (std::size_t r = 0; r < series.row_count(); ++r) {
    EXPECT_EQ(series.time(r), static_cast<TimeNs>(100 * r));
  }
  EXPECT_DOUBLE_EQ(series.value(3, 0), 0.0);  // t=300: not yet fired
  EXPECT_DOUBLE_EQ(series.value(4, 0), 1.0);  // t=400: the final sample
  EXPECT_EQ(sim.now(), 400);
}

TEST(Probe, EmptySimulationGetsExactlyTwoSamples) {
  sim::Simulator sim;
  obs::MetricsRegistry registry;
  registry.add_counter("c");
  obs::Probe probe(sim, registry, msecs(1));
  probe.start();  // samples at t=0 and schedules one unconditional tick
  sim.run();
  EXPECT_EQ(probe.series().row_count(), 2u);
}

TEST(Probe, SeriesCsvHasTimeColumnFirstAndOneRowPerSample) {
  sim::Simulator sim;
  obs::MetricsRegistry registry;
  registry.add_gauge("g", [&sim] { return static_cast<double>(sim.now()); });
  obs::Probe probe(sim, registry, 50);
  probe.start();
  sim.run();

  const std::string csv = probe.series().to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t_ns,g");
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            probe.series().row_count() + 1);
}

TEST(Probe, RejectsNonPositiveInterval) {
  sim::Simulator sim;
  obs::MetricsRegistry registry;
  EXPECT_THROW(obs::Probe(sim, registry, 0), InvariantError);
}

// ---- chrome trace ----------------------------------------------------------

TEST(ChromeTrace, DumpParsesBackWithExactMicrosecondStamps) {
  obs::ChromeTraceWriter trace;
  trace.set_process_name(0, "fabric");
  trace.set_thread_name(0, 0, "rail0 circuits");
  trace.complete(0, 0, "p1-p2", "circuit", 1500, 1000);
  trace.instant(0, 2, "fail node3 slot0", "fault", 2500);
  EXPECT_EQ(trace.event_count(), 2u);

  const json::Value doc = json::parse(trace.dump());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const json::Value& events = *doc.find("traceEvents");
  ASSERT_EQ(events.size(), 4u);  // 2 metadata + 2 events

  EXPECT_EQ(events[0].find("ph")->as_string(), "M");
  EXPECT_EQ(events[0].find("name")->as_string(), "process_name");

  const json::Value& span = events[2];
  EXPECT_EQ(span.find("ph")->as_string(), "X");
  EXPECT_EQ(span.find("name")->as_string(), "p1-p2");
  EXPECT_EQ(span.find("cat")->as_string(), "circuit");
  EXPECT_DOUBLE_EQ(span.find("ts")->as_double(), 1.5);
  EXPECT_DOUBLE_EQ(span.find("dur")->as_double(), 1.0);
  EXPECT_EQ(span.find("pid")->as_int(), 0);
  EXPECT_EQ(span.find("tid")->as_int(), 0);

  const json::Value& inst = events[3];
  EXPECT_EQ(inst.find("ph")->as_string(), "i");
  EXPECT_EQ(inst.find("s")->as_string(), "g");
  EXPECT_DOUBLE_EQ(inst.find("ts")->as_double(), 2.5);
}

TEST(ChromeTrace, TwoIdenticalBuildsDumpIdenticalBytes) {
  auto build = [] {
    obs::ChromeTraceWriter trace;
    trace.set_process_name(2, "tenant");
    trace.complete(2, 1, "AllGather DP", "comm rail0", 0, 12345);
    trace.instant(1, 0, "place job0", "fleet", 999);
    return trace.dump();
  };
  EXPECT_EQ(build(), build());
}

// ---- self-profiler ---------------------------------------------------------

TEST(SelfProfiler, NestedScopesRecordBothPhases) {
  obs::SelfProfiler prof;
  {
    obs::SelfProfiler::Scope outer(&prof, "outer");
    obs::SelfProfiler::Scope inner(&prof, "inner");
  }
  const int outer = prof.phase("outer");
  const int inner = prof.phase("inner");
  ASSERT_EQ(prof.phase_count(), 2u);
  EXPECT_EQ(prof.calls(outer), 1);
  EXPECT_EQ(prof.calls(inner), 1);
  // Inclusive timing: the outer scope covers the inner one.
  EXPECT_GE(prof.total_ns(outer), prof.total_ns(inner));
}

TEST(SelfProfiler, ScopeRecordsWhenAnExceptionUnwinds) {
  obs::SelfProfiler prof;
  EXPECT_THROW(
      {
        obs::SelfProfiler::Scope scope(&prof, "throwing");
        throw std::runtime_error("boom");
      },
      std::runtime_error);
  EXPECT_EQ(prof.calls(prof.phase("throwing")), 1);
}

TEST(SelfProfiler, NullProfilerScopeIsANoOp) {
  obs::SelfProfiler::Scope scope(nullptr, "ignored");
  ProfileScope raw(nullptr, -1);  // the hot-path flavor, also null-safe
}

TEST(SelfProfiler, ReportListsPhasesInFirstUseOrder) {
  obs::SelfProfiler prof;
  prof.record(prof.phase("b"), 2000);
  prof.record(prof.phase("a"), 1000);
  prof.record(prof.phase("b"), 4000);
  const TextTable table = prof.report();
  ASSERT_EQ(table.row_count(), 2u);
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "phase,calls,total_ms,mean_us");
  EXPECT_LT(csv.find("b,2"), csv.find("a,1"));
}

// ---- telemetry config serde ------------------------------------------------

TEST(TelemetrySerde, RoundTripsExactlyAndDefaultsToEmpty) {
  EXPECT_EQ(json::dump(config::to_json(obs::TelemetryConfig{}), 0), "{}");

  obs::TelemetryConfig tc;
  tc.metrics = true;
  tc.series_path = "/tmp/series.csv";
  tc.chrome_trace_path = "/tmp/trace.json";
  tc.sample_interval = usecs(250);
  tc.self_profile = true;
  obs::TelemetryConfig out;
  config::from_json(json::parse(json::dump(config::to_json(tc))), out);
  EXPECT_EQ(out, tc);

  core::ExperimentConfig cfg;
  cfg.telemetry = tc;
  core::ExperimentConfig cfg_out;
  config::from_json(json::parse(json::dump(config::to_json(cfg))), cfg_out);
  EXPECT_EQ(cfg_out, cfg);
}

TEST(TelemetrySerde, RejectsUnknownKeysWithExactPath) {
  const json::Value j =
      json::parse(R"({"telemetry": {"metricz": true}})");
  core::ExperimentConfig cfg;
  try {
    config::from_json(j, cfg);
    FAIL() << "expected SerdeError";
  } catch (const config::SerdeError& e) {
    EXPECT_EQ(e.path(), "$.telemetry.metricz");
    EXPECT_NE(std::string(e.what()).find("metricz"), std::string::npos);
  }
}

TEST(TelemetrySerde, RejectsNonPositiveSampleInterval) {
  obs::TelemetryConfig tc;
  EXPECT_THROW(config::from_json(
                   json::parse(R"({"sample_interval_ns": 0})"), tc),
               config::SerdeError);
}

TEST(TelemetryConfigFlags, EnabledAndDerivedPredicates) {
  obs::TelemetryConfig tc;
  EXPECT_FALSE(tc.enabled());
  tc.sample_interval = usecs(1);  // an interval alone enables nothing
  EXPECT_FALSE(tc.enabled());
  tc.metrics = true;
  EXPECT_TRUE(tc.enabled());
  EXPECT_TRUE(tc.wants_metrics());
  EXPECT_TRUE(tc.sampling());
  EXPECT_FALSE(tc.tracing());

  obs::TelemetryConfig trace_only;
  trace_only.chrome_trace_path = "/tmp/t.json";
  EXPECT_TRUE(trace_only.enabled());
  EXPECT_TRUE(trace_only.tracing());
  EXPECT_FALSE(trace_only.wants_metrics());
  EXPECT_FALSE(trace_only.sampling());
}

}  // namespace
}  // namespace opus
