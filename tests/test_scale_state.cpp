// Scale-independent state: a 4096-node cluster hosting one 64-node tenant
// must allocate solver-visible state proportional to the tenant's span, not
// the cluster — the refactor that makes multi-pod 4096-node fabrics cheap
// to instantiate. Pinned via the instrumented allocation counters:
// FluidNetwork::link_count() (every materialized link), the cluster's
// span-indexed tenant store, and the placement engine's extent counters.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/experiment.h"
#include "fleet/fleet.h"
#include "fleet/placement.h"
#include "net/cluster.h"
#include "net/fluid.h"
#include "sim/simulator.h"

namespace opus {
namespace {

core::ExperimentConfig span64_job(net::FabricKind fabric) {
  core::ExperimentConfig job;
  job.model = workload::ModelConfig::test_tiny();
  job.parallelism.tp = 2;
  job.parallelism.dp = 64;
  job.gpus_per_node = 2;
  job.fabric = fabric;
  job.iterations = 1;
  job.record_compute_trace = false;
  job.iteration.simulate_tp_comm = false;
  job.ocs_reconfig_delay = usecs(100);
  job.rotor_slot_time = usecs(100);
  job.rotor_port_spread = 2;
  return job;
}

// Runs a 64-node job as the sole tenant of an `n_nodes` cluster and
// reports the fluid links the run materialized plus its iteration times.
struct TenantFootprint {
  std::size_t links = 0;
  std::vector<TimeNs> iteration_times;
};

TenantFootprint run_span64_tenant(const core::ExperimentConfig& job,
                                  int n_nodes) {
  sim::Simulator sim;
  net::Cluster cluster(sim, core::cluster_config_for(job, n_nodes));
  const net::NodeSpan span{0, 64};
  cluster.assign_tenant(0, span);
  core::Tenant tenant = core::build_tenant(sim, cluster, job, span);
  bool done = false;
  tenant.engine->run(tenant.dag, job.iterations, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  return {cluster.network().link_count(), tenant.engine->iteration_times()};
}

TEST(ScaleState, ClusterConstructionMaterializesNoFluidLinks) {
  // 4096 idle nodes on every fabric: id tables exist, links do not. This is
  // the lazy-wiring default end to end — NVLink pairs, electrical rail
  // up/downlinks, and OCS circuits all materialize on first use only.
  for (net::FabricKind fabric : net::kAllFabrics) {
    SCOPED_TRACE(net::fabric_name(fabric));
    const core::ExperimentConfig job = span64_job(fabric);
    sim::Simulator sim;
    net::Cluster cluster(sim, core::cluster_config_for(job, 4096));
    EXPECT_EQ(cluster.n_nodes(), 4096);
    EXPECT_EQ(cluster.network().link_count(), 0u);
    EXPECT_EQ(cluster.tenant_state_entries(), 0u);
  }
}

TEST(ScaleState, TenantFootprintIsSpanProportionalAt4096Nodes) {
  // The same 64-node job, alone on a 64-node cluster and alone on a
  // 4096-node cluster: identical link allocation AND identical timing. The
  // 4032 idle nodes contribute zero solver-visible state — memory is
  // proportional to the active span, not the fabric.
  for (net::FabricKind fabric : net::kAllFabrics) {
    SCOPED_TRACE(net::fabric_name(fabric));
    const core::ExperimentConfig job = span64_job(fabric);
    const TenantFootprint small = run_span64_tenant(job, 64);
    const TenantFootprint big = run_span64_tenant(job, 4096);
    EXPECT_GT(small.links, 0u);
    EXPECT_EQ(big.links, small.links);
    EXPECT_EQ(big.iteration_times, small.iteration_times);
  }
}

TEST(ScaleState, TenantStoreTracksOnlyActiveSpans) {
  core::ExperimentConfig job = span64_job(net::FabricKind::kElectrical);
  sim::Simulator sim;
  net::Cluster cluster(sim, core::cluster_config_for(job, 4096));

  // One 64-node tenant in a 4096-node cluster: exactly one span entry,
  // regardless of where it lands in the node space.
  const net::NodeSpan span{2048, 64};
  cluster.assign_tenant(7, span);
  EXPECT_EQ(cluster.tenant_state_entries(), 1u);
  const std::uint64_t gen_after_assign = cluster.tenant_state_generation();
  EXPECT_GT(gen_after_assign, 0u);
  EXPECT_EQ(cluster.tenant_of(NodeId{2048}), 7);
  EXPECT_EQ(cluster.tenant_of(NodeId{2111}), 7);
  EXPECT_EQ(cluster.tenant_of(NodeId{2047}), net::Cluster::kNoTenant);
  EXPECT_EQ(cluster.tenant_of(NodeId{2112}), net::Cluster::kNoTenant);

  // Release drops the entry and bumps the generation stamp.
  cluster.release_tenant(span);
  EXPECT_EQ(cluster.tenant_state_entries(), 0u);
  EXPECT_GT(cluster.tenant_state_generation(), gen_after_assign);
  EXPECT_EQ(cluster.tenant_of(NodeId{2048}), net::Cluster::kNoTenant);
}

TEST(ScaleState, PlacementStateIsExtentProportional) {
  // A 4096-node placement map with one 64-node job resident: the interval
  // store holds a single free extent (the remainder), the lifetime peak is
  // two, and the allocate scan touched one extent — all independent of the
  // 4096-node span the extents cover.
  fleet::PlacementEngine placement(4096, fleet::PlacementPolicy::kRailAware);
  const auto span = placement.allocate(64);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->count, 64);
  EXPECT_EQ(placement.free_extent_count(), 1);
  EXPECT_EQ(placement.peak_free_extents(), 1);
  EXPECT_EQ(placement.allocations(), 1);
  EXPECT_EQ(placement.extents_scanned(), 1);

  // A second tenant deeper in the map splits the remainder once.
  const auto span2 = placement.allocate(100);
  ASSERT_TRUE(span2.has_value());
  EXPECT_LE(placement.free_extent_count(), 2);
  placement.release(*span2);
  placement.release(*span);
  EXPECT_EQ(placement.free_extent_count(), 1);
  EXPECT_EQ(placement.free_nodes(), 4096);
  EXPECT_EQ(placement.releases(), 2);
  EXPECT_LE(placement.peak_free_extents(), 2);
}

// ---------------------------------------------------------------------------
// 4096-node multi-tenant legs: one decade past the 512-node matrix, on all
// four fabrics. Each leg is a full fleet — arrivals, rail-aware placement,
// interleaved tenants, quiesce/release — on a 4096-node cluster. Sparse
// cluster state and lazy wiring are what make these cells tractable: the
// cost is the tenants' traffic, not the 4096-node fabric. Each fabric is
// its own named CI leg (`-R FourThousandNinetySixNode` in ci.yml) so
// per-leg timing shows which fabric regressed.
// ---------------------------------------------------------------------------

fleet::FleetConfig fleet4096_cfg(net::FabricKind fabric) {
  fleet::FleetConfig cfg;
  cfg.n_nodes = 4096;
  cfg.base.fabric = fabric;
  cfg.base.gpus_per_node = 4;
  cfg.base.ocs_reconfig_delay = usecs(100);
  cfg.base.rotor_slot_time = msecs(1);
  cfg.policy = fleet::PlacementPolicy::kRailAware;
  cfg.arrivals.seed = 2026;
  cfg.arrivals.n_jobs = 24;
  cfg.arrivals.iterations = 2;
  cfg.arrivals.mean_interarrival = msecs(1);
  // dp x8 over the Table-1/2 ladder: 32-128 nodes per job, ~1.5k active
  // nodes at peak — enough concurrency to stress placement and per-span
  // wiring while the idle majority proves the state stays sparse.
  cfg.arrivals.shapes = fleet::table_mix_shapes(cfg.base.gpus_per_node, 8);
  // The leg times the shared 4096-node world; per-job isolated baselines
  // are covered by the fleet tests at small scale.
  cfg.isolated_baselines = false;
  return cfg;
}

void expect_fleet4096_basics(const fleet::FleetResult& result) {
  EXPECT_EQ(result.rejected_jobs, 0);
  for (const fleet::FleetJobResult& jr : result.jobs) {
    EXPECT_GT(jr.service_time(), 0);
    EXPECT_GT(jr.rail_bytes, 0);
  }
  EXPECT_GT(result.makespan, 0);
  // The placement map stayed extent-proportional: a dozen tenants can
  // shear 4096 nodes into at most a handful of free extents.
  EXPECT_LE(result.peak_free_extents,
            static_cast<int>(result.jobs.size()) + 1);
}

TEST(FourKMatrix, FourThousandNinetySixNodeElectrical) {
  expect_fleet4096_basics(
      fleet::run_fleet(fleet4096_cfg(net::FabricKind::kElectrical)));
}

TEST(FourKMatrix, FourThousandNinetySixNodeOpus) {
  expect_fleet4096_basics(
      fleet::run_fleet(fleet4096_cfg(net::FabricKind::kOpusPhotonic)));
}

TEST(FourKMatrix, FourThousandNinetySixNodeStaticRing) {
  expect_fleet4096_basics(
      fleet::run_fleet(fleet4096_cfg(net::FabricKind::kStaticRing)));
}

TEST(FourKMatrix, FourThousandNinetySixNodeRotor) {
  expect_fleet4096_basics(
      fleet::run_fleet(fleet4096_cfg(net::FabricKind::kRotor)));
}

}  // namespace
}  // namespace opus

