// Tests for the §5 "Opportunities" API: application-driven circuit
// allocation (hint_collective) hides reconfiguration latency without any
// profiling — from the very first iteration.
#include <gtest/gtest.h>

#include "collective/executor.h"
#include "collective/planner.h"
#include "core/opus_transport.h"

namespace opus::core {
namespace {

using collective::Algorithm;
using collective::CollectiveExecutor;
using collective::CollectiveType;
using collective::CommGroup;
using collective::ParallelismDim;

struct HintFixture {
  HintFixture() : cluster(sim, cluster_cfg()), transport(sim, cluster) {}

  static net::ClusterConfig cluster_cfg() {
    net::ClusterConfig cfg;
    cfg.n_nodes = 4;
    cfg.gpus_per_node = 2;
    cfg.nic_ports = 2;
    cfg.fabric = net::FabricKind::kOpusPhotonic;
    cfg.ocs_reconfig_delay = msecs(20);
    return cfg;
  }

  CommGroup group(int local) {
    CommGroup g;
    g.id = GroupId{10 + local};
    g.dim = ParallelismDim::kDP;
    for (int n = 0; n < 4; ++n) g.ranks.push_back(cluster.gpu_at(NodeId{n}, local));
    return g;
  }

  sim::Simulator sim;
  net::Cluster cluster;
  OpusTransport transport;
};

TEST(CircuitHints, HintHidesFirstIterationReconfiguration) {
  const auto sched = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 4, mib(25));

  // Without a hint: the collective pays the 20 ms reconfiguration.
  TimeNs cold = -1;
  {
    HintFixture f;
    CollectiveExecutor exec(f.sim, f.transport);
    const CommGroup g = f.group(0);
    exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
      cold = r.duration();
    });
    f.sim.run();
  }
  // With a hint issued during (simulated) preceding compute, the circuits
  // are live before the collective starts.
  TimeNs hinted = -1;
  {
    HintFixture f;
    CollectiveExecutor exec(f.sim, f.transport);
    const CommGroup g = f.group(0);
    ASSERT_TRUE(f.transport.hint_collective(g, sched));
    f.sim.schedule_after(msecs(50), [&] {  // compute happens meanwhile
      exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
        hinted = r.duration();
      });
    });
    f.sim.run();
    EXPECT_EQ(f.transport.controller().stats().satisfied_immediately, 1);
  }
  ASSERT_GT(cold, 0);
  ASSERT_GT(hinted, 0);
  EXPECT_GT(cold, hinted + msecs(19))
      << "the hint must hide nearly the whole reconfiguration delay";
}

TEST(CircuitHints, ScaleUpGroupsNeedNoHint) {
  HintFixture f;
  CommGroup g;
  g.id = GroupId{5};
  g.dim = ParallelismDim::kTP;
  g.ranks = {GpuId{0}, GpuId{1}};  // same node
  const auto sched = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 2, mib(1));
  EXPECT_TRUE(f.transport.hint_collective(g, sched));
  EXPECT_EQ(f.transport.controller().stats().requests, 0);
}

TEST(CircuitHints, PeerChangingSchedulesAreRejected) {
  // Recursive doubling over 8 ranks needs log2(8) = 3 distinct peers —
  // more than a 2-port NIC can hold as a static layout (C1).
  net::ClusterConfig cfg = HintFixture::cluster_cfg();
  cfg.n_nodes = 8;
  sim::Simulator sim;
  net::Cluster cluster(sim, cfg);
  OpusTransport transport(sim, cluster);
  CommGroup big;
  big.id = GroupId{9};
  big.dim = ParallelismDim::kDP;
  for (int n = 0; n < 8; ++n) big.ranks.push_back(cluster.gpu_at(NodeId{n}, 0));
  const auto rd8 = collective::plan_collective(
      CollectiveType::kAllGather, Algorithm::kRecursiveDoubling, 8, mib(1));
  EXPECT_FALSE(transport.hint_collective(big, rd8))
      << "3 distinct peers never fit 2 ports as a static layout (C1)";
}

TEST(CircuitHints, HintedCircuitsYieldToActiveGroups) {
  // A hint must not disturb a group whose kernels are in flight: the
  // controller queues it until the owner goes idle.
  HintFixture f;
  CollectiveExecutor exec(f.sim, f.transport);
  const CommGroup dp = f.group(0);
  const auto big = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 4, gib(1));
  bool dp_done = false;
  exec.run(dp, big, [&](const CollectiveExecutor::Result&) { dp_done = true; });
  f.sim.run_until(msecs(30));  // circuits up, transfers in flight

  CommGroup pp;
  pp.id = GroupId{77};
  pp.dim = ParallelismDim::kPP;
  pp.ranks = {f.cluster.gpu_at(NodeId{0}, 0), f.cluster.gpu_at(NodeId{2}, 0)};
  const auto pair = collective::plan_collective(
      CollectiveType::kSendRecv, Algorithm::kDirect, 2, mib(1));
  EXPECT_TRUE(f.transport.hint_collective(pp, pair));
  f.sim.run_until(msecs(40));
  EXPECT_FALSE(dp_done) << "the big AllReduce is still moving";
  EXPECT_GT(f.transport.controller().stats().queued, 0)
      << "the hint waits behind the active owner";
  f.sim.run();
  EXPECT_TRUE(dp_done);
}

}  // namespace
}  // namespace opus::core
