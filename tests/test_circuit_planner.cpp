// Tests for the circuit planner: ring layouts, bandwidth striping, port
// budgets (C1/C3), PXN lowering, and per-step plans for peer-changing
// algorithms.
#include <gtest/gtest.h>

#include <set>

#include "collective/planner.h"
#include "core/circuit_planner.h"

namespace opus::core {
namespace {

using collective::Algorithm;
using collective::CollectiveType;
using collective::CommGroup;
using collective::ParallelismDim;

net::ClusterConfig photonic_cfg(int nodes, int gpn, int ports) {
  net::ClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.gpus_per_node = gpn;
  cfg.nic_ports = ports;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  return cfg;
}

CommGroup rail_group(const net::Cluster& c, int local,
                     std::vector<int> nodes) {
  CommGroup g;
  g.id = GroupId{1};
  g.dim = ParallelismDim::kDP;
  for (int n : nodes) g.ranks.push_back(c.gpu_at(NodeId{n}, local));
  return g;
}

TEST(CircuitPlanner, PairGroupStripesBothPorts) {
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 4, 2));
  CircuitPlanner planner(cluster);
  const CommGroup g = rail_group(cluster, 0, {0, 1});
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 2, mib(1));
  const auto plan = planner.plan_static(g, sched);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->size(), 1u);
  EXPECT_EQ((*plan)[0].rail.value(), 0);
  // Two striped circuits: full 400G between the pair.
  EXPECT_EQ((*plan)[0].circuits.size(), 2u);
}

TEST(CircuitPlanner, RingUsesTwoPortsPerMember) {
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 4, 2));
  CircuitPlanner planner(cluster);
  const CommGroup g = rail_group(cluster, 1, {0, 1, 2, 3});
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(1));
  const auto plan = planner.plan_static(g, sched);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->size(), 1u);
  EXPECT_EQ((*plan)[0].rail.value(), 1);
  // A 4-ring: 4 circuits, no port used twice.
  EXPECT_EQ((*plan)[0].circuits.size(), 4u);
  std::set<std::int32_t> used;
  for (const auto& c : (*plan)[0].circuits) {
    EXPECT_TRUE(used.insert(c.a.value()).second);
    EXPECT_TRUE(used.insert(c.b.value()).second);
  }
}

TEST(CircuitPlanner, FourPortNicDoublesRingBandwidth) {
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 4, 4));
  CircuitPlanner planner(cluster);
  const CommGroup g = rail_group(cluster, 0, {0, 1, 2, 3});
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(1));
  const auto plan = planner.plan_static(g, sched);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ((*plan)[0].circuits.size(), 8u);  // striped x2
}

TEST(CircuitPlanner, OnePortNicCannotHoldARing) {
  // C1: a >2-member ring needs degree 2; a 1x400G NIC has degree 1.
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 4, 1));
  CircuitPlanner planner(cluster);
  const CommGroup g = rail_group(cluster, 0, {0, 1, 2, 3});
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(1));
  EXPECT_FALSE(planner.plan_static(g, sched).has_value());
  EXPECT_FALSE(planner.static_wirable(g, sched));
  // A pair still works.
  const CommGroup pair = rail_group(cluster, 0, {0, 1});
  const auto pair_sched = plan_collective(CollectiveType::kAllReduce,
                                          Algorithm::kRing, 2, mib(1));
  EXPECT_TRUE(planner.static_wirable(pair, pair_sched));
}

TEST(CircuitPlanner, RecursiveDoublingNotStaticallyWirable) {
  // log2(8) = 3 distinct peers > 2 ports (C1) -> per-step mode.
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(8, 2, 2));
  CircuitPlanner planner(cluster);
  const CommGroup g =
      rail_group(cluster, 0, {0, 1, 2, 3, 4, 5, 6, 7});
  const auto sched = plan_collective(CollectiveType::kAllGather,
                                     Algorithm::kRecursiveDoubling, 8, mib(1));
  EXPECT_FALSE(planner.static_wirable(g, sched));
  // Each individual step IS wirable: one peer per rank.
  for (int step = 0; step < sched.n_steps; ++step) {
    const auto plan = planner.plan_step(g, sched, step);
    ASSERT_EQ(plan.size(), 1u);
    // 4 pairs x 2-port striping.
    EXPECT_EQ(plan[0].circuits.size(), 8u);
  }
  // Steps use different peers: the circuit sets differ.
  const auto s0 = planner.plan_step(g, sched, 0);
  const auto s1 = planner.plan_step(g, sched, 1);
  std::set<std::pair<std::int32_t, std::int32_t>> p0, p1;
  for (const auto& c : s0[0].circuits) p0.insert({c.a.value(), c.b.value()});
  for (const auto& c : s1[0].circuits) p1.insert({c.a.value(), c.b.value()});
  EXPECT_NE(p0, p1);
}

TEST(CircuitPlanner, ScaleUpPairsNeedNoCircuits) {
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(2, 4, 2));
  CircuitPlanner planner(cluster);
  CommGroup g;
  g.id = GroupId{7};
  g.dim = ParallelismDim::kTP;
  g.ranks = {GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3}};  // one node
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(1));
  const auto plan = planner.plan_static(g, sched);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(CircuitPlanner, CrossRankGroupLowersToPxnBridgeCircuits) {
  // Group {GPU0 (node0,local0), GPU5 (node1,local1)}: the rail hop rides
  // rail 1 from the bridge (node0,local1) for 0->5, and rail 0 from
  // (node1,local0) for 5->0.
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(2, 4, 2));
  CircuitPlanner planner(cluster);
  CommGroup g;
  g.id = GroupId{8};
  g.dim = ParallelismDim::kDP;
  g.ranks = {GpuId{0}, GpuId{5}};
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 2, mib(1));
  const auto plan = planner.plan_static(g, sched);
  ASSERT_TRUE(plan.has_value());
  std::set<int> rails;
  for (const auto& rc : *plan) rails.insert(rc.rail.value());
  EXPECT_EQ(rails, (std::set<int>{0, 1}));
}

TEST(CircuitPlanner, PortsOfDeduplicatesEndpoints) {
  RailCircuits rc;
  rc.rail = RailId{0};
  rc.circuits = {{PortId{0}, PortId{2}}, {PortId{1}, PortId{2}}};
  const auto ports = CircuitPlanner::ports_of(rc);
  EXPECT_EQ(ports.size(), 3u);
}

TEST(CircuitPlanner, PlanStepRejectsOverCommittedStep) {
  // Direct AllToAll: one step with n-1 peers per rank; not plannable.
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 2, 2));
  CircuitPlanner planner(cluster);
  const CommGroup g = rail_group(cluster, 0, {0, 1, 2, 3});
  const auto sched = plan_collective(CollectiveType::kAllToAll,
                                     Algorithm::kDirect, 4, mib(1));
  EXPECT_THROW(planner.plan_step(g, sched, 0), InvariantError);
}

// Sweep: ring circuits for every group size and port config that fits.
class RingPlanSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RingPlanSweep, RingLayoutsRespectPortBudgets) {
  const auto [nodes, ports] = GetParam();
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(nodes, 2, ports));
  CircuitPlanner planner(cluster);
  std::vector<int> node_ids(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) node_ids[static_cast<std::size_t>(i)] = i;
  const CommGroup g = rail_group(cluster, 0, node_ids);
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, nodes, mib(1));
  const auto plan = planner.plan_static(g, sched);
  const bool wirable = nodes == 2 || ports >= 2;
  EXPECT_EQ(plan.has_value(), wirable);
  if (plan) {
    // No port appears twice.
    std::set<std::int32_t> used;
    for (const auto& c : (*plan)[0].circuits) {
      EXPECT_TRUE(used.insert(c.a.value()).second);
      EXPECT_TRUE(used.insert(c.b.value()).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NodePortMatrix, RingPlanSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4, 8, 16),
                                            ::testing::Values(1, 2, 4)));

}  // namespace
}  // namespace opus::core
