// Tests for rail multi-hop forwarding (§5) and the static pre-job ring
// topology baseline (TPUv4-style).
#include <gtest/gtest.h>

#include "collective/executor.h"
#include "collective/planner.h"
#include "core/experiment.h"
#include "core/static_ring.h"

namespace opus {
namespace {

net::ClusterConfig multihop_cfg(int nodes) {
  net::ClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.gpus_per_node = 2;
  cfg.nic_ports = 2;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.allow_rail_multihop = true;
  return cfg;
}

void wire_ring(net::Cluster& c, int rail) {
  std::vector<net::CircuitRequest> circuits;
  for (int n = 0; n < c.n_nodes(); ++n) {
    const GpuId a = c.gpu_at(NodeId{n}, rail);
    const GpuId b = c.gpu_at(NodeId{(n + 1) % c.n_nodes()}, rail);
    circuits.push_back({c.ocs_port(a, 0), c.ocs_port(b, 1)});
  }
  c.ocs(RailId{rail}).force_circuits(circuits);
}

TEST(MultiHop, PathFollowsLiveCircuits) {
  sim::Simulator sim;
  net::Cluster c(sim, multihop_cfg(4));
  wire_ring(c, 0);
  // Nodes 0 and 2 are not ring neighbours: shortest path has 2 hops.
  const auto path = c.rail_multihop_path(c.gpu_at(NodeId{0}, 0),
                                         c.gpu_at(NodeId{2}, 0));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), c.gpu_at(NodeId{0}, 0));
  EXPECT_EQ(path.back(), c.gpu_at(NodeId{2}, 0));
  EXPECT_TRUE(c.rail_path_available(c.gpu_at(NodeId{0}, 0),
                                    c.gpu_at(NodeId{2}, 0)));
}

TEST(MultiHop, UnreachableWithoutCircuits) {
  sim::Simulator sim;
  net::Cluster c(sim, multihop_cfg(4));
  EXPECT_TRUE(c.rail_multihop_path(c.gpu_at(NodeId{0}, 0),
                                   c.gpu_at(NodeId{2}, 0))
                  .empty());
  EXPECT_THROW(
      c.transfer(c.gpu_at(NodeId{0}, 0), c.gpu_at(NodeId{2}, 0), 100, nullptr),
      InvariantError);
}

TEST(MultiHop, StoreAndForwardPaysPerHop) {
  sim::Simulator sim;
  net::Cluster c(sim, multihop_cfg(4));
  wire_ring(c, 0);
  const GpuId src = c.gpu_at(NodeId{0}, 0);
  const GpuId dst = c.gpu_at(NodeId{2}, 0);
  TimeNs done = -1;
  // 25 MB at 200 Gb/s = 1 ms per hop, 2 hops store-and-forward.
  c.transfer(src, dst, 25'000'000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 2 * (msecs(1) + usecs(2)));
  // Bandwidth tax: 2x the logical bytes on the wire.
  EXPECT_EQ(c.bytes_on_route(net::Cluster::Route::kRail), 50'000'000);
  EXPECT_EQ(c.bytes_on_route(net::Cluster::Route::kRailMultiHop), 25'000'000);
}

TEST(MultiHop, DirectCircuitBypassesForwarding) {
  sim::Simulator sim;
  net::Cluster c(sim, multihop_cfg(4));
  wire_ring(c, 0);
  const GpuId src = c.gpu_at(NodeId{0}, 0);
  const GpuId dst = c.gpu_at(NodeId{1}, 0);  // ring neighbour
  TimeNs done = -1;
  c.transfer(src, dst, 25'000'000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, msecs(1) + usecs(2));
  EXPECT_EQ(c.bytes_on_route(net::Cluster::Route::kRailMultiHop), 0);
}

TEST(MultiHop, BfsFindsShortestDirection) {
  sim::Simulator sim;
  net::Cluster c(sim, multihop_cfg(8));
  wire_ring(c, 0);
  // 0 -> 6 is 2 hops backwards around the ring, not 6 forwards.
  const auto path = c.rail_multihop_path(c.gpu_at(NodeId{0}, 0),
                                         c.gpu_at(NodeId{6}, 0));
  EXPECT_EQ(path.size(), 3u);
}

TEST(StaticRing, TransportWiresEveryRail) {
  sim::Simulator sim;
  net::Cluster c(sim, multihop_cfg(4));
  core::StaticRingTransport transport(c);
  for (int rail = 0; rail < c.n_rails(); ++rail) {
    for (int n = 0; n < c.n_nodes(); ++n) {
      const GpuId a = c.gpu_at(NodeId{n}, rail);
      const GpuId b = c.gpu_at(NodeId{(n + 1) % c.n_nodes()}, rail);
      EXPECT_TRUE(c.rail_path_available(a, b));
    }
  }
}

TEST(StaticRing, CollectivesRunWithoutReconfiguration) {
  sim::Simulator sim;
  net::Cluster c(sim, multihop_cfg(4));
  core::StaticRingTransport transport(c);
  collective::CollectiveExecutor exec(sim, transport);
  collective::CommGroup g;
  g.id = GroupId{1};
  g.dim = collective::ParallelismDim::kDP;
  for (int n = 0; n < 4; ++n) g.ranks.push_back(c.gpu_at(NodeId{n}, 0));
  const auto sched = collective::plan_collective(
      collective::CollectiveType::kAllReduce, collective::Algorithm::kRing, 4,
      mib(16));
  bool done = false;
  exec.run(g, sched,
           [&](const collective::CollectiveExecutor::Result&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.ocs(RailId{0}).stats().reconfigurations, 0);
}

TEST(StaticRing, NonNeighbourGroupsPayTheTax) {
  // A "pipeline pair" {node0, node2} on the ring: every transfer multi-hops.
  sim::Simulator sim;
  net::Cluster c(sim, multihop_cfg(4));
  core::StaticRingTransport transport(c);
  collective::CollectiveExecutor exec(sim, transport);
  collective::CommGroup g;
  g.id = GroupId{2};
  g.dim = collective::ParallelismDim::kPP;
  g.ranks = {c.gpu_at(NodeId{0}, 0), c.gpu_at(NodeId{2}, 0)};
  const auto sched = collective::plan_collective(
      collective::CollectiveType::kSendRecv, collective::Algorithm::kDirect, 2,
      mib(32));
  bool done = false;
  exec.run(g, sched,
           [&](const collective::CollectiveExecutor::Result&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.bytes_on_route(net::Cluster::Route::kRailMultiHop), mib(32));
  EXPECT_EQ(c.bytes_on_route(net::Cluster::Route::kRail), 2 * mib(32));
}

TEST(StaticRing, RequiresMultihopCluster) {
  sim::Simulator sim;
  net::ClusterConfig cfg = multihop_cfg(4);
  cfg.allow_rail_multihop = false;
  net::Cluster c(sim, cfg);
  EXPECT_THROW(core::StaticRingTransport{c}, InvariantError);
}

TEST(StaticRing, EndToEndExperimentMatchesOpusClosely) {
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::test_tiny();
  cfg.model.n_layers = 8;
  cfg.parallelism.tp = 2;
  cfg.parallelism.dp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.n_microbatches = 4;
  cfg.parallelism.microbatch_size = 1;
  cfg.gpus_per_node = 2;
  cfg.iterations = 3;
  cfg.record_compute_trace = false;
  cfg.fabric = net::FabricKind::kStaticRing;
  const auto ring = core::run_experiment(cfg);
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = msecs(1);
  const auto opus = core::run_experiment(cfg);

  EXPECT_EQ(ring.ocs_reconfigurations, 0);
  EXPECT_GT(opus.ocs_reconfigurations, 0);
  EXPECT_GT(ring.multihop_bytes, 0) << "PP pairs are not ring neighbours";
  EXPECT_EQ(opus.multihop_bytes, 0);
  // Both complete in the same ballpark on this compute-dominated job.
  const double ratio = static_cast<double>(ring.steady_iteration_time) /
                       static_cast<double>(opus.steady_iteration_time);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

}  // namespace
}  // namespace opus
