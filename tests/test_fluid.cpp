// Unit tests for the max-min fair fluid flow network.
#include <gtest/gtest.h>

#include "common/error.h"
#include "net/fluid.h"
#include "sim/simulator.h"

namespace opus::net {
namespace {

constexpr Bandwidth k100G = Bandwidth::gbps(100);

class FluidTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  FluidNetwork net{sim};
};

TEST_F(FluidTest, SingleFlowDrainsAtLinkRate) {
  const LinkId l = net.add_link(k100G);
  TimeNs done = -1;
  // 125 MB at 100 Gb/s = 12.5 GB/s -> 10 ms.
  net.start_flow({l}, 125'000'000, 0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, msecs(10));
}

TEST_F(FluidTest, ExtraLatencyDelaysCompletionOnly) {
  const LinkId l = net.add_link(k100G);
  TimeNs done = -1;
  net.start_flow({l}, 125'000'000, usecs(5), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, msecs(10) + usecs(5));
}

TEST_F(FluidTest, ZeroByteFlowCompletesAfterLatencyOnly) {
  TimeNs done = -1;
  net.start_flow({}, 0, usecs(7), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, usecs(7));
  EXPECT_EQ(net.completed_flow_count(), 1u);
}

TEST_F(FluidTest, TwoFlowsShareALinkFairly) {
  const LinkId l = net.add_link(k100G);
  TimeNs done_a = -1;
  TimeNs done_b = -1;
  net.start_flow({l}, 125'000'000, 0, [&] { done_a = sim.now(); });
  net.start_flow({l}, 125'000'000, 0, [&] { done_b = sim.now(); });
  sim.run();
  // Equal flows sharing equally finish together at 2x the solo time.
  EXPECT_EQ(done_a, msecs(20));
  EXPECT_EQ(done_b, msecs(20));
}

TEST_F(FluidTest, ShortFlowFinishesThenLongFlowSpeedsUp) {
  const LinkId l = net.add_link(k100G);
  TimeNs done_short = -1;
  TimeNs done_long = -1;
  net.start_flow({l}, 62'500'000, 0, [&] { done_short = sim.now(); });   // 5ms solo
  net.start_flow({l}, 125'000'000, 0, [&] { done_long = sim.now(); });  // 10ms solo
  sim.run();
  // Shared till the short one drains at t=10ms (5ms of work at half rate),
  // then the long one runs at full rate: 62.5MB left -> +5ms => 15ms? No:
  // at t=10ms the long flow has moved 62.5MB, 62.5MB left at full rate
  // -> finishes at 15ms.
  EXPECT_EQ(done_short, msecs(10));
  EXPECT_EQ(done_long, msecs(15));
}

TEST_F(FluidTest, ParkingLotGivesMaxMinRates) {
  // Classic parking lot: flow A crosses links 1 and 2; flow B crosses only
  // link 1; flow C crosses only link 2. Max-min: every flow gets 50.
  const LinkId l1 = net.add_link(k100G);
  const LinkId l2 = net.add_link(k100G);
  const FlowId a = net.start_flow({l1, l2}, 1'000'000'000, 0, nullptr);
  const FlowId b = net.start_flow({l1}, 1'000'000'000, 0, nullptr);
  const FlowId c = net.start_flow({l2}, 1'000'000'000, 0, nullptr);
  EXPECT_NEAR(net.flow_rate_bps(a), 50e9, 1e6);
  EXPECT_NEAR(net.flow_rate_bps(b), 50e9, 1e6);
  EXPECT_NEAR(net.flow_rate_bps(c), 50e9, 1e6);
}

TEST_F(FluidTest, UnevenBottlenecksWaterfillCorrectly) {
  // Link 1 at 100G carries flows A,B; link 2 at 30G carries flows B,C...
  // B is bottlenecked by link2: B=C=15G; A then gets the rest of link1: 85G.
  const LinkId l1 = net.add_link(k100G);
  const LinkId l2 = net.add_link(Bandwidth::gbps(30));
  const FlowId a = net.start_flow({l1}, 1'000'000'000, 0, nullptr);
  const FlowId b = net.start_flow({l1, l2}, 1'000'000'000, 0, nullptr);
  const FlowId c = net.start_flow({l2}, 1'000'000'000, 0, nullptr);
  EXPECT_NEAR(net.flow_rate_bps(b), 15e9, 1e6);
  EXPECT_NEAR(net.flow_rate_bps(c), 15e9, 1e6);
  EXPECT_NEAR(net.flow_rate_bps(a), 85e9, 1e6);
}

TEST_F(FluidTest, AbortFlowFreesBandwidth) {
  const LinkId l = net.add_link(k100G);
  TimeNs done = -1;
  bool aborted_fired = false;
  const FlowId victim =
      net.start_flow({l}, 1'000'000'000, 0, [&] { aborted_fired = true; });
  net.start_flow({l}, 125'000'000, 0, [&] { done = sim.now(); });
  sim.run_until(msecs(2));
  EXPECT_TRUE(net.abort_flow(victim));
  sim.run();
  EXPECT_FALSE(aborted_fired);
  // 2ms shared (6.25MB+6.25MB... survivor moved 12.5MB), then full rate for
  // the remaining 112.5MB -> 9ms more => 11ms total.
  EXPECT_EQ(done, msecs(11));
}

TEST_F(FluidTest, AbortUnknownFlowReturnsFalse) {
  EXPECT_FALSE(net.abort_flow(FlowId{123}));
}

TEST_F(FluidTest, CapacityDropStallsAndRestores) {
  const LinkId l = net.add_link(k100G);
  TimeNs done = -1;
  net.start_flow({l}, 125'000'000, 0, [&] { done = sim.now(); });
  sim.run_until(msecs(5));  // half done
  net.set_capacity(l, Bandwidth::gbps(0));  // failure injection: link dark
  sim.run_until(msecs(50));
  EXPECT_EQ(done, -1) << "flow must stall on a zero-capacity link";
  net.set_capacity(l, k100G);
  sim.run();
  // 62.5MB remained; 45ms dark; finishes 5ms after restore at t=55ms.
  EXPECT_EQ(done, msecs(55));
}

TEST_F(FluidTest, FlowRemainingTracksProgress) {
  const LinkId l = net.add_link(k100G);
  const FlowId f = net.start_flow({l}, 125'000'000, 0, nullptr);
  sim.run_until(msecs(4));
  EXPECT_NEAR(static_cast<double>(net.flow_remaining(f)), 75'000'000.0, 1e4);
}

TEST_F(FluidTest, CompletionCallbackCanStartNewFlow) {
  const LinkId l = net.add_link(k100G);
  TimeNs second_done = -1;
  net.start_flow({l}, 125'000'000, 0, [&] {
    net.start_flow({l}, 125'000'000, 0, [&] { second_done = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(second_done, msecs(20));
}

TEST_F(FluidTest, DuplicateLinkInPathThrows) {
  const LinkId l = net.add_link(k100G);
  EXPECT_THROW(net.start_flow({l, l}, 100, 0, nullptr), InvariantError);
}

TEST_F(FluidTest, NegativeBytesThrow) {
  const LinkId l = net.add_link(k100G);
  EXPECT_THROW(net.start_flow({l}, -1, 0, nullptr), InvariantError);
}

TEST_F(FluidTest, ActiveFlowsOnCountsPathMembership) {
  const LinkId l1 = net.add_link(k100G);
  const LinkId l2 = net.add_link(k100G);
  net.start_flow({l1, l2}, 1'000'000'000, 0, nullptr);
  net.start_flow({l1}, 1'000'000'000, 0, nullptr);
  EXPECT_EQ(net.active_flows_on(l1), 2);
  EXPECT_EQ(net.active_flows_on(l2), 1);
}

// Property sweep: N equal flows on one link each get capacity/N and all
// finish at N x solo time.
class FairShareSweep : public ::testing::TestWithParam<int> {};

TEST_P(FairShareSweep, EqualFlowsFinishTogether) {
  const int n = GetParam();
  sim::Simulator sim;
  FluidNetwork net(sim);
  const LinkId l = net.add_link(k100G);
  std::vector<TimeNs> done(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    net.start_flow({l}, 12'500'000, 0,
                   [&done, i, &sim] { done[static_cast<std::size_t>(i)] = sim.now(); });
  }
  const FlowId probe = net.start_flow({l}, 12'500'000, 0, nullptr);
  EXPECT_NEAR(net.flow_rate_bps(probe), 100e9 / (n + 1), 1e6);
  net.abort_flow(probe);
  sim.run();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(done[static_cast<std::size_t>(i)]),
                static_cast<double>(n) * msecs(1), static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Fanout, FairShareSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

}  // namespace
}  // namespace opus::net
