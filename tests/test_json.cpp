// common/json: value model, strict parser (precise line/col + JSON-path
// errors), deterministic writer. Includes a malformed-input corpus and a
// seeded mutation fuzz pass — the parser must reject or accept, never
// crash, hang, or mis-locate its errors.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"

namespace {

using namespace opus;
using json::Kind;
using json::ParseError;
using json::Value;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_EQ(json::parse("42").as_int(), 42);
  EXPECT_EQ(json::parse("-7").as_int(), -7);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(json::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(json::parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(json::parse("-0.125").as_double(), -0.125);
}

TEST(JsonParse, IntVersusDoubleKind) {
  EXPECT_EQ(json::parse("2").kind(), Kind::kInt);
  EXPECT_EQ(json::parse("2.0").kind(), Kind::kDouble);
  EXPECT_EQ(json::parse("2e0").kind(), Kind::kDouble);
  // Kinds are part of equality: serde's int readers reject doubles.
  EXPECT_FALSE(json::parse("2") == json::parse("2.0"));
}

TEST(JsonParse, Int64Boundaries) {
  EXPECT_EQ(json::parse("9223372036854775807").as_int(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(json::parse("-9223372036854775808").as_int(),
            std::numeric_limits<std::int64_t>::min());
  // One past the boundary overflows into a double, not an error.
  EXPECT_EQ(json::parse("9223372036854775808").kind(), Kind::kDouble);
}

TEST(JsonParse, NestedContainers) {
  const Value v = json::parse(R"({"a": [1, {"b": null}], "c": {}})");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ((*v.find("a"))[1].find("b")->kind(), Kind::kNull);
  EXPECT_EQ(v.find("c")->size(), 0u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json::parse(R"("a\"b\\c\/d\b\f\n\r\t")").as_string(),
            "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(json::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(json::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, DuplicateKeysRejected) {
  EXPECT_THROW(json::parse(R"({"a": 1, "a": 2})"), ParseError);
}

TEST(JsonParse, ErrorCarriesLineColAndPath) {
  try {
    json::parse("{\n  \"model\": {\n    \"n_layers\": oops\n  }\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.col(), 17);
    EXPECT_EQ(e.path(), "$.model.n_layers");
  }
}

TEST(JsonParse, ErrorPathIndexesArrays) {
  try {
    json::parse(R"({"cells": [1, 2, }]})");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.path(), "$.cells[2]");
    EXPECT_EQ(e.line(), 1);
  }
}

// The malformed corpus: every entry must throw ParseError (never crash,
// never accept).
TEST(JsonParse, MalformedCorpusRejected) {
  const std::vector<std::string> corpus = {
      "",
      "   ",
      "{",
      "}",
      "[",
      "]",
      "{]",
      "[}",
      "{\"a\"}",
      "{\"a\":}",
      "{\"a\":1,}",
      "{,}",
      "{\"a\" 1}",
      "[1,]",
      "[,1]",
      "[1 2]",
      "nul",
      "tru",
      "falsee",
      "TRUE",
      "None",
      "+1",
      "01",
      "1.",
      ".5",
      "1e",
      "1e+",
      "0x10",
      "1 2",
      "{} {}",
      "\"unterminated",
      "\"bad\\q\"",
      "\"\\u12\"",
      "\"\\ud83d\"",          // lone high surrogate
      "\"\\ude00\"",          // lone low surrogate
      "\"ctrl\x01char\"",     // raw control character in a string
      "NaN",
      "Infinity",
      "-",
      "--1",
      "{\"a\": 1 \"b\": 2}",
      "[[[[",
      "{\"\\u0000\": 1",
      "/* comment */ 1",
      "1 // trailing",
  };
  for (const std::string& text : corpus) {
    EXPECT_THROW(json::parse(text), ParseError) << "accepted: " << text;
  }
}

TEST(JsonDump, DeterministicPretty) {
  Value o = Value::object();
  o.set("b", Value(1));
  o.set("a", Value::array());
  EXPECT_EQ(json::dump(o), "{\n  \"b\": 1,\n  \"a\": []\n}");
  EXPECT_EQ(json::dump(o, 0), R"({"b":1,"a":[]})");
}

TEST(JsonDump, DoubleKindStability) {
  // Integral-looking doubles keep a ".0" so they re-parse as doubles.
  EXPECT_EQ(json::dump(Value(2.0), 0), "2.0");
  EXPECT_EQ(json::dump(Value(-3.0), 0), "-3.0");
  EXPECT_EQ(json::dump(Value(0.125), 0), "0.125");
  EXPECT_EQ(json::dump(Value(static_cast<std::int64_t>(2)), 0), "2");
  EXPECT_EQ(json::parse(json::dump(Value(2.0), 0)).kind(), Kind::kDouble);
}

TEST(JsonDump, StringEscaping) {
  EXPECT_EQ(json::dump(Value("a\"b\\c\n\t\x01"), 0),
            R"("a\"b\\c\n\t\u0001")");
}

TEST(JsonDump, NanInfRejectedAtConstruction) {
  EXPECT_THROW(Value(std::numeric_limits<double>::quiet_NaN()),
               InvariantError);
  EXPECT_THROW(Value(std::numeric_limits<double>::infinity()),
               InvariantError);
}

TEST(JsonValue, ObjectDuplicateSetThrows) {
  Value o = Value::object();
  o.set("a", Value(1));
  EXPECT_THROW(o.set("a", Value(2)), InvariantError);
}

TEST(JsonValue, AccessorKindMismatchThrows) {
  EXPECT_THROW(json::parse("1").as_string(), InvariantError);
  EXPECT_THROW(json::parse("\"s\"").as_int(), InvariantError);
  EXPECT_THROW(json::parse("2.5").as_int(), InvariantError);
  EXPECT_NO_THROW(json::parse("2").as_double());  // int widens to double
}

// Round trip: parse(dump(v)) == v for a tree covering every kind.
TEST(JsonRoundTrip, FullTree) {
  const std::string text =
      R"({"i":-3,"d":2.5,"s":"x\ny","b":true,"n":null,)"
      R"("a":[1,2.0,"three",{"k":false}],"o":{"nested":[[]]}})";
  const Value v = json::parse(text);
  EXPECT_EQ(json::parse(json::dump(v)), v);
  EXPECT_EQ(json::dump(json::parse(json::dump(v, 0)), 0), json::dump(v, 0));
}

// Seeded mutation fuzz: flip/insert/delete bytes of valid documents. The
// parser must either throw ParseError or produce a value that survives a
// dump/parse round trip — anything else (crash, hang, bad accept) fails.
TEST(JsonFuzz, MutatedDocumentsNeverCrash) {
  const std::vector<std::string> seeds = {
      R"({"mode":"experiment","preset":"table3_opus_8"})",
      R"({"a":[1,2.0,"x",null,true],"b":{"c":[{"d":-7e2}]}})",
      R"([",{}[]\\\"",1e-3,{"u":"\u00e9\ud83d\ude00"}])",
  };
  const char mutations[] = {'{', '}', '[', ']', '"', ',', ':', '\\', '0',
                            'e', '.', '-', ' ', '\n', '\x01', '\x7f'};
  Xoshiro256 rng(20260808);
  int accepted = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string doc = seeds[rng.next() % seeds.size()];
    const int edits = 1 + static_cast<int>(rng.next() % 4);
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.next() % (doc.size() + 1);
      const char c = mutations[rng.next() % sizeof(mutations)];
      switch (rng.next() % 3) {
        case 0: doc.insert(doc.begin() + pos, c); break;
        case 1: if (pos < doc.size()) doc[pos] = c; break;
        default: if (pos < doc.size()) doc.erase(doc.begin() + pos); break;
      }
    }
    try {
      const json::Value v = json::parse(doc);
      ++accepted;
      EXPECT_EQ(json::parse(json::dump(v)), v) << "round-trip broke: " << doc;
    } catch (const ParseError&) {
      // rejection is fine — crashing or accepting garbage is not
    }
  }
  // Sanity: the mutator is gentle enough that some documents stay valid.
  EXPECT_GT(accepted, 0);
}

}  // namespace
