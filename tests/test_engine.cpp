// Iteration-engine tests: compute-stream serialization, multi-iteration
// runs, trace recording conventions, and determinism.
#include <gtest/gtest.h>

#include "collective/transport.h"
#include "workload/engine.h"

namespace opus::workload {
namespace {

struct EngineFixture {
  explicit EngineFixture(ParallelismConfig p,
                         ModelConfig m = ModelConfig::test_tiny(),
                         IterationEngine::Options opts = no_dispatch())
      : par(p),
        model(std::move(m)),
        cluster(sim, cluster_cfg(p)),
        mapper(par, cluster.gpus_per_node()),
        compute(GpuSpec::a100(), 0.35, true),
        dag(build_training_iteration(model, par, mapper, compute)),
        transport(cluster),
        engine(sim, cluster, transport, &recorder, opts) {}

  static IterationEngine::Options no_dispatch() {
    IterationEngine::Options o;
    o.dispatch_min = 0;
    o.dispatch_max = 0;
    return o;
  }

  static net::ClusterConfig cluster_cfg(const ParallelismConfig& p) {
    net::ClusterConfig cfg;
    cfg.gpus_per_node = std::min(p.tp * p.cp, p.world_size());
    cfg.n_nodes = p.world_size() / cfg.gpus_per_node;
    cfg.fabric = net::FabricKind::kElectrical;
    return cfg;
  }

  sim::Simulator sim;
  ParallelismConfig par;
  ModelConfig model;
  net::Cluster cluster;
  RankMapper mapper;
  ComputeModel compute;
  IterationDag dag;
  trace::TraceRecorder recorder;
  collective::DirectTransport transport;
  IterationEngine engine;
};

ParallelismConfig small_config() {
  ParallelismConfig p;
  p.tp = 2;
  p.dp = 2;
  p.pp = 2;
  p.n_microbatches = 4;
  p.microbatch_size = 1;
  return p;
}

TEST(Engine, RunsToCompletionAndRecordsIterations) {
  EngineFixture f(small_config());
  const auto times = f.engine.run_to_completion(f.dag, 3);
  ASSERT_EQ(times.size(), 3u);
  for (TimeNs t : times) EXPECT_GT(t, 0);
  ASSERT_EQ(f.recorder.iterations().size(), 3u);
  EXPECT_EQ(f.recorder.iterations()[2].duration(), times[2]);
}

TEST(Engine, IterationsAreIdenticalOnDirectTransport) {
  EngineFixture f(small_config());
  const auto times = f.engine.run_to_completion(f.dag, 3);
  EXPECT_EQ(times[0], times[1]);
  EXPECT_EQ(times[1], times[2]);
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  EngineFixture a(small_config());
  EngineFixture b(small_config());
  EXPECT_EQ(a.engine.run_to_completion(a.dag, 2),
            b.engine.run_to_completion(b.dag, 2));
}

TEST(Engine, ComputeOpsSerializePerGpu) {
  EngineFixture f(small_config());
  f.engine.run_to_completion(f.dag, 1);
  // No two compute spans on one GPU may overlap.
  std::map<int, std::vector<std::pair<TimeNs, TimeNs>>> spans;
  for (const auto& c : f.recorder.compute_records()) {
    spans[c.gpu.value()].emplace_back(c.t_start, c.t_end);
  }
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(f.cluster.n_gpus()));
  for (auto& [gpu, list] : spans) {
    std::sort(list.begin(), list.end());
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_GE(list[i].first, list[i - 1].second)
          << "overlapping compute on GPU " << gpu;
    }
  }
}

TEST(Engine, TraceRecordsScaleOutAndScaleUpSeparately) {
  ParallelismConfig p = small_config();
  IterationOptions opts;
  opts.simulate_tp_comm = true;
  EngineFixture f(p, ModelConfig::test_tiny());
  f.dag = build_training_iteration(f.model, p, f.mapper, f.compute, opts);
  f.engine.run_to_completion(f.dag, 1);
  bool saw_scale_up = false;
  bool saw_scale_out = false;
  for (const auto& r : f.recorder.comm_records()) {
    if (r.scale_out) {
      saw_scale_out = true;
      EXPECT_TRUE(r.rail.valid());
    } else {
      saw_scale_up = true;
      EXPECT_FALSE(r.rail.valid());
    }
  }
  EXPECT_TRUE(saw_scale_up);   // TP ARs
  EXPECT_TRUE(saw_scale_out);  // DP/PP traffic
}

TEST(Engine, AllGatherRecordsPerRankInputConvention) {
  EngineFixture f(small_config());
  f.engine.run_to_completion(f.dag, 1);
  CommVolumeModel vol(f.model, f.par);
  bool found = false;
  for (const auto& r : f.recorder.comm_records()) {
    if (r.type != collective::CollectiveType::kAllGather) continue;
    // Reported = total gathered / dp. Boundary-stage records add the
    // embedding share; interior layers match exactly.
    if (r.payload == vol.fsdp_allgather_per_layer() / f.par.dp) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Engine, DispatchLatencyShiftsIssueTimes) {
  IterationEngine::Options with;
  with.dispatch_min = msecs(1);
  with.dispatch_max = msecs(1);
  EngineFixture f(small_config(), ModelConfig::test_tiny(), with);
  const auto times = f.engine.run_to_completion(f.dag, 1);
  EngineFixture g(small_config());
  const auto base = g.engine.run_to_completion(g.dag, 1);
  EXPECT_GT(times[0], base[0]);
}

TEST(Engine, RejectsConcurrentRuns) {
  EngineFixture f(small_config());
  f.engine.run(f.dag, 1, nullptr);
  EXPECT_THROW(f.engine.run(f.dag, 1, nullptr), InvariantError);
  f.sim.run();
}

TEST(Engine, RejectsZeroIterations) {
  EngineFixture f(small_config());
  EXPECT_THROW(f.engine.run(f.dag, 0, nullptr), InvariantError);
}

// The engine works for a matrix of shapes end to end on electrical rails.
class EngineSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(EngineSweep, CompletesForShape) {
  const auto [tp, dp, pp] = GetParam();
  ParallelismConfig p;
  p.tp = tp;
  p.dp = dp;
  p.pp = pp;
  p.n_microbatches = std::max(2, pp);
  p.microbatch_size = 1;
  ModelConfig m = ModelConfig::test_tiny();
  m.n_layers = 8;
  EngineFixture f(p, m);
  const auto times = f.engine.run_to_completion(f.dag, 2);
  EXPECT_EQ(times.size(), 2u);
  EXPECT_GT(times[0], 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineSweep,
    ::testing::Values(std::tuple{1, 2, 1}, std::tuple{2, 1, 2},
                      std::tuple{2, 2, 2}, std::tuple{4, 2, 2},
                      std::tuple{2, 4, 1}, std::tuple{1, 2, 4},
                      std::tuple{4, 1, 4}));

}  // namespace
}  // namespace opus::workload
