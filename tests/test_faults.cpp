// Fault-injection subsystem tests: the seeded Poisson FaultProcess (trace
// bounds, determinism, full repair), degraded continuation of a single
// tenant under churn on all four fabrics (with byte-accounting invariants
// against a fault-free run), and the fleet-scope reaction — eviction,
// checkpointed re-placement, and the availability / ports-lost / JCT-tail
// columns — on the shared-cluster multi-tenant scenario.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "common/error.h"
#include "core/experiment.h"
#include "core/faults.h"
#include "fleet/fleet.h"
#include "net/cluster.h"
#include "sim/simulator.h"

namespace opus {
namespace {

// ---------------------------------------------------------------------------
// FaultProcess: trace generation and scheduling on a bare cluster
// ---------------------------------------------------------------------------

net::ClusterConfig bare_cfg() {
  net::ClusterConfig cfg;
  cfg.n_nodes = 4;
  cfg.gpus_per_node = 2;
  cfg.nic_ports = 2;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = usecs(10);
  return cfg;
}

core::FaultConfig churn_cfg(std::uint64_t seed, TimeNs mtbf, TimeNs mttr,
                            int max_failures) {
  core::FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = seed;
  cfg.mtbf_per_port = mtbf;
  cfg.mttr = mttr;
  cfg.max_failures = max_failures;
  return cfg;
}

TEST(FaultProcess, RejectsUnusableConfigs) {
  sim::Simulator sim;
  net::Cluster cluster(sim, bare_cfg());
  core::FaultConfig cfg;  // disabled
  EXPECT_THROW(core::FaultProcess(sim, cluster, cfg), InvariantError);
  cfg = churn_cfg(1, 0, msecs(1), 4);  // MTBF zero
  EXPECT_THROW(core::FaultProcess(sim, cluster, cfg), InvariantError);
  cfg = churn_cfg(1, msecs(1), 0, 4);  // MTTR zero
  EXPECT_THROW(core::FaultProcess(sim, cluster, cfg), InvariantError);
  cfg = churn_cfg(1, msecs(1), msecs(1), 0);  // unbounded trace
  cfg.horizon = 0;
  EXPECT_THROW(core::FaultProcess(sim, cluster, cfg), InvariantError);
}

TEST(FaultProcess, TraceIsBoundedAndEveryFailureIsRepaired) {
  sim::Simulator sim;
  net::Cluster cluster(sim, bare_cfg());
  const core::FaultConfig cfg = churn_cfg(17, msecs(1), usecs(100), 16);
  core::FaultProcess faults(sim, cluster, cfg);
  EXPECT_EQ(faults.trace_size(), 16);
  sim.run();
  const auto& stats = faults.stats();
  EXPECT_EQ(stats.failures_injected + stats.failures_skipped,
            faults.trace_size());
  EXPECT_GT(stats.failures_injected, 0);
  // Every injected failure schedules exactly one repair, so once the event
  // queue drains the cluster must be whole again — the property the fleet
  // driver's "queue eventually drains" guarantee rests on.
  EXPECT_EQ(stats.repairs_completed, stats.failures_injected);
  for (int n = 0; n < cluster.n_nodes(); ++n) {
    EXPECT_FALSE(cluster.node_disconnected(NodeId{n}));
    for (int r = 0; r < cluster.n_rails(); ++r) {
      EXPECT_EQ(cluster.live_nic_ports(NodeId{n}, r),
                cluster.config().nic_ports);
    }
  }
}

TEST(FaultProcess, HorizonStopsInjectionButNotRepairs) {
  sim::Simulator sim;
  net::Cluster cluster(sim, bare_cfg());
  core::FaultConfig cfg = churn_cfg(5, usecs(200), msecs(5), 0);
  cfg.horizon = msecs(1);
  core::FaultProcess faults(sim, cluster, cfg);
  ASSERT_GT(faults.trace_size(), 0);
  std::vector<TimeNs> failure_instants;
  cluster.set_fault_listener([&](const net::NicFault& f) {
    if (f.failed) failure_instants.push_back(sim.now());
  });
  sim.run();
  ASSERT_FALSE(failure_instants.empty());
  for (const TimeNs t : failure_instants) EXPECT_LE(t, msecs(1));
  EXPECT_EQ(faults.stats().repairs_completed,
            faults.stats().failures_injected);
}

using ChurnEvent = std::tuple<TimeNs, std::int32_t, int, int, bool>;

std::vector<ChurnEvent> record_churn(const core::FaultConfig& cfg) {
  sim::Simulator sim;
  net::Cluster cluster(sim, bare_cfg());
  std::vector<ChurnEvent> events;
  cluster.set_fault_listener([&](const net::NicFault& f) {
    events.emplace_back(sim.now(), f.node.value(), f.rail, f.slot, f.failed);
  });
  core::FaultProcess faults(sim, cluster, cfg);
  sim.run();
  return events;
}

TEST(FaultProcess, SameSeedInjectsBitIdenticalChurn) {
  const core::FaultConfig cfg = churn_cfg(99, msecs(2), usecs(500), 24);
  const auto a = record_churn(cfg);
  const auto b = record_churn(cfg);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FaultProcess, SeedActuallyMovesTheChurn) {
  core::FaultConfig cfg = churn_cfg(99, msecs(2), usecs(500), 24);
  const auto a = record_churn(cfg);
  cfg.seed = 100;
  const auto b = record_churn(cfg);
  EXPECT_NE(a, b) << "a dead fault seed would make churn replay tests vacuous";
}

// ---------------------------------------------------------------------------
// Degraded continuation: one tenant rides out churn on every fabric
// ---------------------------------------------------------------------------

core::ExperimentConfig churn_experiment_cfg(net::FabricKind kind) {
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::test_tiny();
  cfg.model.n_layers = 8;
  cfg.parallelism.tp = 4;
  cfg.parallelism.dp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.n_microbatches = 4;
  cfg.parallelism.microbatch_size = 1;
  cfg.gpus_per_node = 4;
  cfg.iterations = 3;
  cfg.fabric = kind;
  cfg.ocs_reconfig_delay = usecs(100);
  cfg.rotor_slot_time = msecs(1);
  return cfg;
}

TEST(ChurnExperiment, EveryFabricCompletesDegradedUnderChurn) {
  for (net::FabricKind kind : net::kAllFabrics) {
    SCOPED_TRACE(net::fabric_name(kind));
    core::ExperimentConfig cfg = churn_experiment_cfg(kind);
    const core::ExperimentResult baseline = core::run_experiment(cfg);

    cfg.faults = churn_cfg(7, msecs(5), usecs(500), 24);
    const core::ExperimentResult churned = core::run_experiment(cfg);

    ASSERT_EQ(churned.iteration_times.size(), 3u)
        << "the tenant must complete every iteration degraded";
    EXPECT_GT(churned.fault_stats.failures_injected, 0);
    EXPECT_EQ(churned.fault_stats.failures_injected +
                  churned.fault_stats.failures_skipped,
              churned.fault_trace_size);
    EXPECT_EQ(churned.fault_stats.repairs_completed,
              churned.fault_stats.failures_injected);

    // Intra-node traffic never touches a NIC port, so the scale-up and PXN
    // issue totals are invariant under rail churn.
    EXPECT_EQ(churned.scale_up_bytes, baseline.scale_up_bytes);
    EXPECT_EQ(churned.pxn_bytes, baseline.pxn_bytes);
    // Rail accounting charges the logical payload at issue (rescue resends
    // are never re-counted); a degraded issue can only add forwarding hops,
    // never lose payload.
    EXPECT_GE(churned.rail_bytes, baseline.rail_bytes - baseline.multihop_bytes)
        << "churn must never lose logical rail payload";
    if (kind == net::FabricKind::kElectrical) {
      // Electrical failures only rescale endpoint capacity — routes are
      // unchanged, so the byte ledger is bit-identical to fault-free.
      EXPECT_EQ(churned.rail_bytes, baseline.rail_bytes);
      EXPECT_EQ(churned.multihop_bytes, baseline.multihop_bytes);
    }
    if (cfg.fabric != net::FabricKind::kElectrical) {
      // Dark time is charged up front in whole reconfig-delay units per
      // port; a port failing mid-dark must not claw any of it back.
      EXPECT_EQ(churned.ocs_dark_time % cfg.ocs_reconfig_delay, 0)
          << "sum(port_dark_time) must stay a whole multiple of the delay";
    }
  }
}

TEST(ChurnExperiment, ElectricalChurnOnlyEverSlowsTheJob) {
  core::ExperimentConfig cfg =
      churn_experiment_cfg(net::FabricKind::kElectrical);
  const core::ExperimentResult baseline = core::run_experiment(cfg);
  cfg.faults = churn_cfg(11, msecs(5), msecs(1), 16);
  const core::ExperimentResult churned = core::run_experiment(cfg);
  const TimeNs base_total =
      std::accumulate(baseline.iteration_times.begin(),
                      baseline.iteration_times.end(), static_cast<TimeNs>(0));
  const TimeNs churn_total =
      std::accumulate(churned.iteration_times.begin(),
                      churned.iteration_times.end(), static_cast<TimeNs>(0));
  EXPECT_GE(churn_total, base_total)
      << "losing NIC capacity cannot speed training up";
}

// ---------------------------------------------------------------------------
// Fleet-scope churn: eviction, checkpointed re-placement, availability
// ---------------------------------------------------------------------------

fleet::FleetConfig churn_fleet_cfg(net::FabricKind fabric) {
  fleet::FleetConfig cfg;
  cfg.n_nodes = 16;
  cfg.base.fabric = fabric;
  cfg.base.gpus_per_node = 4;
  cfg.base.ocs_reconfig_delay = usecs(100);
  cfg.base.rotor_slot_time = msecs(1);
  cfg.arrivals.seed = 4242;
  cfg.arrivals.n_jobs = 16;
  cfg.arrivals.iterations = 2;
  cfg.arrivals.mean_interarrival = msecs(1);
  cfg.policy = fleet::PlacementPolicy::kRailAware;
  cfg.base.faults = churn_cfg(7, msecs(40), msecs(2), 24);
  return cfg;
}

void check_churn_fleet(const fleet::FleetResult& result,
                       net::FabricKind fabric) {
  ASSERT_FALSE(result.jobs.empty());
  EXPECT_EQ(result.rejected_jobs, 0);
  int total_ports_lost = 0;
  for (const auto& jr : result.jobs) {
    ASSERT_FALSE(jr.rejected);
    // No stranded sends, no lost jobs: every job finishes every iteration
    // even when it had to be checkpointed and re-placed.
    EXPECT_GE(jr.start, jr.spec.arrival);
    EXPECT_GT(jr.finish, jr.start);
    EXPECT_EQ(jr.iteration_times.size(),
              static_cast<std::size_t>(jr.spec.iterations))
        << "job " << jr.spec.id;
    EXPECT_GT(jr.availability, 0.0);
    EXPECT_LE(jr.availability, 1.0);
    total_ports_lost += jr.ports_lost;
    if (jr.replacements > 0) {
      // Eviction gaps are wall time the job was placed but not training.
      EXPECT_LT(jr.availability, 1.0) << "job " << jr.spec.id;
    }
    // Survivors — jobs churn never touched — keep exact byte conservation
    // against their fault-free isolated baselines.
    if (jr.ports_lost == 0 && jr.replacements == 0) {
      if (fabric == net::FabricKind::kRotor) {
        EXPECT_EQ(jr.rail_bytes - jr.multihop_bytes,
                  jr.isolated_rail_bytes - jr.isolated_multihop_bytes)
            << "job " << jr.spec.id;
      } else {
        EXPECT_EQ(jr.rail_bytes, jr.isolated_rail_bytes)
            << "job " << jr.spec.id;
        EXPECT_EQ(jr.multihop_bytes, jr.isolated_multihop_bytes)
            << "job " << jr.spec.id;
      }
    }
  }
  EXPECT_GT(total_ports_lost, 0)
      << "the churn rate must actually hit running jobs";
}

TEST(ChurnFleet, SixteenJobChurnCompletesOnAllFourFabrics) {
  for (net::FabricKind fabric : net::kAllFabrics) {
    SCOPED_TRACE(net::fabric_name(fabric));
    const fleet::FleetResult result =
        fleet::run_fleet(churn_fleet_cfg(fabric));
    check_churn_fleet(result, fabric);
    // The churn columns render alongside the classic JCT table.
    const TextTable table = fleet::fleet_job_table(result);
    EXPECT_EQ(table.row_count(), result.jobs.size());
    EXPECT_FALSE(table.render().empty());
  }
}

TEST(ChurnFleet, DisconnectingFailuresForceCheckpointedReplacement) {
  // Long repairs pile concurrent failures up until some node loses a whole
  // rail: the driver must checkpoint, evict, and re-place — and the banked
  // iterations must survive the move (no job ever re-runs a finished
  // iteration, so iteration counts stay exact).
  fleet::FleetConfig cfg = churn_fleet_cfg(net::FabricKind::kOpusPhotonic);
  cfg.base.faults = churn_cfg(3, msecs(8), msecs(40), 48);
  const fleet::FleetResult result = fleet::run_fleet(cfg);
  int replacements = 0;
  for (const auto& jr : result.jobs) {
    replacements += jr.replacements;
    EXPECT_EQ(jr.iteration_times.size(),
              static_cast<std::size_t>(jr.spec.iterations));
  }
  EXPECT_GT(replacements, 0)
      << "this churn rate must disconnect at least one placed node";
}

TEST(ChurnFleet, FaultFreeFleetReportsFullAvailability) {
  fleet::FleetConfig cfg = churn_fleet_cfg(net::FabricKind::kElectrical);
  cfg.base.faults = core::FaultConfig{};  // churn off
  const fleet::FleetResult result = fleet::run_fleet(cfg);
  for (const auto& jr : result.jobs) {
    EXPECT_EQ(jr.ports_lost, 0);
    EXPECT_EQ(jr.replacements, 0);
    EXPECT_GT(jr.availability, 0.0);
    EXPECT_LE(jr.availability, 1.0);
  }
}

}  // namespace
}  // namespace opus
