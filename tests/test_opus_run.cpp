// config/runner + the checked-in configs/goldens: run-spec parsing and
// validation, sweep-axis expansion, and the golden-file regression — every
// configs/<name>.json run through the declarative pipeline must reproduce
// goldens/<name>.json byte-exact, and the JSON path must match the
// compiled-in path (same cell builders the benches use) bit-for-bit.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/presets.h"
#include "config/runner.h"
#include "config/serde.h"
#include "core/experiment.h"
#include "fleet/fleet.h"

namespace {

using namespace opus;
using config::RunSpec;
using config::SerdeError;
using json::Value;

RunSpec parse_spec(const std::string& text) {
  return config::parse_run_spec(json::parse(text));
}

template <class Fn>
std::string serde_error_path(Fn&& fn) {
  try {
    fn();
  } catch (const SerdeError& e) {
    return e.path();
  }
  return "<no error>";
}

// ---- run-spec parsing ------------------------------------------------------

TEST(RunSpec, ParsesAllModes) {
  EXPECT_EQ(parse_spec(R"({"mode": "experiment"})").mode,
            RunSpec::Mode::kExperiment);
  EXPECT_EQ(parse_spec(R"({"mode": "sweep"})").mode, RunSpec::Mode::kSweep);
  EXPECT_EQ(parse_spec(R"({"mode": "fleet"})").mode, RunSpec::Mode::kFleet);
}

TEST(RunSpec, RejectsBadModeAndUnknownKeys) {
  EXPECT_EQ(serde_error_path([] { parse_spec(R"({"preset": "x"})"); }),
            "$.mode");
  EXPECT_EQ(serde_error_path([] { parse_spec(R"({"mode": "banana"})"); }),
            "$.mode");
  EXPECT_EQ(serde_error_path([] {
              parse_spec(R"({"mode": "experiment", "outptu": "x"})");
            }),
            "$.outptu");
}

TEST(RunSpec, RejectsKeysThatDoNotApplyToMode) {
  EXPECT_EQ(serde_error_path([] {
              parse_spec(R"({"mode": "fleet", "experiment": {}})");
            }),
            "$.experiment");
  EXPECT_EQ(serde_error_path([] {
              parse_spec(R"({"mode": "experiment", "fleet": {}})");
            }),
            "$.fleet");
  EXPECT_EQ(serde_error_path([] {
              parse_spec(R"({"mode": "experiment", "axes": {}})");
            }),
            "$.axes");
  EXPECT_EQ(serde_error_path([] {
              parse_spec(R"({"mode": "fleet", "sweep": {"threads": 2}})");
            }),
            "$.sweep");
}

TEST(RunSpec, RejectsMalformedAxes) {
  EXPECT_EQ(serde_error_path([] {
              parse_spec(R"({"mode": "sweep", "axes": {"mfu": []}})");
            }),
            "$.axes.mfu");
  EXPECT_EQ(serde_error_path([] {
              parse_spec(R"({"mode": "sweep", "axes": {"mfu": 3}})");
            }),
            "$.axes.mfu");
  EXPECT_EQ(serde_error_path([] {
              parse_spec(R"({"mode": "sweep", "axes": {"a..b": [1]}})");
            }),
            "$.axes.a..b");
}

TEST(RunSpec, UnknownPresetListsKnownNames) {
  const RunSpec spec =
      parse_spec(R"({"mode": "experiment", "preset": "nope"})");
  try {
    config::resolve_experiment(spec);
    FAIL() << "expected SerdeError";
  } catch (const SerdeError& e) {
    EXPECT_EQ(e.path(), "$.preset");
    EXPECT_NE(std::string(e.what()).find("table3_opus_8"), std::string::npos);
  }
}

TEST(RunSpec, PresetPlusOverridesCompose) {
  const RunSpec spec = parse_spec(
      R"({"mode": "experiment", "preset": "table3_opus_8",
          "experiment": {"iterations": 7, "fabric": "rotor"}})");
  const core::ExperimentConfig cfg = config::resolve_experiment(spec);
  core::ExperimentConfig expect = config::table3_cell(8);
  expect.iterations = 7;
  expect.fabric = net::FabricKind::kRotor;
  EXPECT_EQ(cfg, expect);
}

// ---- sweep expansion -------------------------------------------------------

TEST(SweepAxes, CartesianProductLastAxisFastest) {
  const RunSpec spec = parse_spec(
      R"({"mode": "sweep",
          "axes": {"parallelism.dp": [2, 4], "fabric": ["opus", "rotor"]}})");
  const std::vector<Value> combos = config::expand_axes(spec.axes);
  ASSERT_EQ(combos.size(), 4u);
  EXPECT_EQ(json::dump(combos[0], 0),
            R"({"parallelism.dp":2,"fabric":"opus"})");
  EXPECT_EQ(json::dump(combos[1], 0),
            R"({"parallelism.dp":2,"fabric":"rotor"})");
  EXPECT_EQ(json::dump(combos[3], 0),
            R"({"parallelism.dp":4,"fabric":"rotor"})");

  core::ExperimentConfig cfg = config::table3_cell(8);
  config::apply_axis_overrides(combos[3], cfg, "$.axes");
  EXPECT_EQ(cfg.parallelism.dp, 4);
  EXPECT_EQ(cfg.fabric, net::FabricKind::kRotor);
}

TEST(SweepAxes, DottedPathErrorsCarryTheAxisPath) {
  core::ExperimentConfig cfg;
  Value flat = Value::object();
  flat.set("parallelism.dq", Value(4));
  EXPECT_EQ(serde_error_path([&] {
              config::apply_axis_overrides(flat, cfg, "$.axes");
            }),
            "$.axes.parallelism.dq");
}

// ---- the declarative path vs the compiled-in path --------------------------

TEST(OpusRun, JsonPipelineMatchesCompiledTable3Cell) {
  const config::RunOutput out = config::run_file(
      std::string(OPUS_SOURCE_DIR) + "/configs/table3_opus_8.json");
  // The compiled-in path: the same cell builder the bench uses.
  const core::ExperimentResult direct =
      core::run_experiment(config::table3_cell(8));
  ASSERT_TRUE(out.document.find("result") != nullptr);
  EXPECT_EQ(json::dump(*out.document.find("result")),
            json::dump(config::to_json(direct)));
}

TEST(OpusRun, JsonPipelineMatchesCompiledFleetChurnCell) {
  const config::RunOutput out = config::run_file(
      std::string(OPUS_SOURCE_DIR) + "/configs/fleet_churn_opus.json");
  const fleet::FleetResult direct = fleet::run_fleet(config::fleet_churn_cell(
      net::FabricKind::kOpusPhotonic, /*churn=*/true, /*smoke=*/true));
  ASSERT_TRUE(out.document.find("result") != nullptr);
  EXPECT_EQ(json::dump(*out.document.find("result")),
            json::dump(config::to_json(direct)));
}

// ---- golden regression -----------------------------------------------------
// Every checked-in spec reproduces its checked-in golden byte-exact. When a
// deliberate behavior change lands, rerun scripts/update_goldens.sh and
// commit the diff.
TEST(OpusRun, GoldensReproduceByteExact) {
  const std::string root(OPUS_SOURCE_DIR);
  const std::vector<std::string> names = {
      "table3_opus_8", "perlmutter_llama3_8b", "fabric_matrix_tiny",
      "fleet_quickstart_opus", "fleet_churn_opus", "fleet_churn_telemetry",
  };
  for (const std::string& name : names) {
    const config::RunOutput out =
        config::run_file(root + "/configs/" + name + ".json");
    const std::string golden =
        config::read_text_file(root + "/goldens/" + name + ".json");
    EXPECT_EQ(json::dump(out.document) + "\n", golden) << name;
  }
}

// The sweep fans through core::run_sweep: thread count must not change the
// document.
TEST(OpusRun, SweepDocumentThreadInvariant) {
  const RunSpec spec = parse_spec(
      R"({"mode": "sweep", "preset": "table3_opus_8",
          "axes": {"fabric": ["electrical", "opus"]}})");
  RunSpec one = spec;
  one.sweep.threads = 1;
  RunSpec four = spec;
  four.sweep.threads = 4;
  EXPECT_EQ(json::dump(config::run(one).document),
            json::dump(config::run(four).document));
}

}  // namespace
