// Integration tests: full training iterations on electrical and photonic
// rails, reproducing the qualitative claims of the paper end to end.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "trace/windows.h"

namespace opus {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;
using core::perlmutter_llama3_8b_config;

ExperimentConfig small_config(net::FabricKind kind) {
  ExperimentConfig cfg = perlmutter_llama3_8b_config();
  cfg.fabric = kind;
  cfg.iterations = 2;
  return cfg;
}

TEST(Experiment, ElectricalBaselineRuns) {
  ExperimentConfig cfg = small_config(net::FabricKind::kElectrical);
  const ExperimentResult r = core::run_experiment(cfg);
  ASSERT_EQ(r.iteration_times.size(), 2u);
  EXPECT_GT(r.iteration_times[0], 0);
  EXPECT_EQ(r.ocs_reconfigurations, 0);
  EXPECT_GT(r.rail_bytes, 0);
}

TEST(Experiment, PhotonicRunsAndReconfigures) {
  ExperimentConfig cfg = small_config(net::FabricKind::kOpusPhotonic);
  const ExperimentResult r = core::run_experiment(cfg);
  ASSERT_EQ(r.iteration_times.size(), 2u);
  EXPECT_GT(r.ocs_reconfigurations, 0);
  EXPECT_GT(r.controller.requests, 0);
}

TEST(Experiment, ZeroLatencyPhotonicMatchesElectricalClosely) {
  ExperimentConfig e = small_config(net::FabricKind::kElectrical);
  ExperimentConfig p = small_config(net::FabricKind::kOpusPhotonic);
  p.ocs_reconfig_delay = 0;
  const auto re = core::run_experiment(e);
  const auto rp = core::run_experiment(p);
  const double ratio = static_cast<double>(rp.steady_iteration_time) /
                       static_cast<double>(re.steady_iteration_time);
  // The paper's Fig. 8 latency-0 point: photonic == fully-connected baseline
  // (up to control-plane RTTs and the 2x200G port split).
  EXPECT_NEAR(ratio, 1.0, 0.05) << "photonic/electrical = " << ratio;
}

TEST(Experiment, ProvisioningReducesIterationTime) {
  ExperimentConfig with = small_config(net::FabricKind::kOpusPhotonic);
  with.ocs_reconfig_delay = msecs(100);
  with.provisioning = true;
  with.iterations = 3;
  ExperimentConfig without = with;
  without.provisioning = false;
  const auto rw = core::run_experiment(with);
  const auto ro = core::run_experiment(without);
  EXPECT_LE(rw.steady_iteration_time, ro.steady_iteration_time);
  EXPECT_GT(rw.shim_speculative_requests, 0);
}

TEST(Experiment, WindowStructureMatchesPaper) {
  // Fig. 4: >75% of inter-parallelism windows longer than 1 ms; the largest
  // average window precedes the ReduceScatter phase.
  ExperimentConfig cfg = small_config(net::FabricKind::kElectrical);
  cfg.iterations = 3;
  const auto r = core::run_experiment(cfg);
  std::vector<trace::Window> windows;
  for (int iter = 1; iter < cfg.iterations; ++iter) {
    for (int rail = 0; rail < 4; ++rail) {
      const auto comms = r.recorder->rail_comms(iter, RailId{rail});
      ASSERT_FALSE(comms.empty());
      const auto w = trace::extract_windows(comms);
      windows.insert(windows.end(), w.begin(), w.end());
    }
  }
  ASSERT_FALSE(windows.empty());
  int over_1ms = 0;
  TimeNs best_window = 0;
  Bytes best_traffic = 0;
  for (const auto& w : windows) {
    if (w.size > msecs(1)) ++over_1ms;
    if (w.size > best_window) {
      best_window = w.size;
      best_traffic = w.traffic_after;
    }
  }
  EXPECT_GT(static_cast<double>(over_1ms) / windows.size(), 0.5);
  // The biggest window precedes the largest traffic volume (ReduceScatter).
  EXPECT_GT(best_traffic, static_cast<Bytes>(3) * 1000 * 1000 * 1000);
}

}  // namespace
}  // namespace opus
