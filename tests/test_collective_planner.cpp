// Unit tests for collective schedule planners: step counts, transfer counts,
// wire-byte totals, degree metadata (C1), and the algorithm chooser.
#include <gtest/gtest.h>

#include "collective/analysis.h"
#include "collective/planner.h"
#include "common/error.h"

namespace opus::collective {
namespace {

constexpr Bytes kPayload = 1 << 20;  // 1 MiB

TEST(RingAllReduce, StepAndByteCounts) {
  for (int n : {2, 3, 4, 7, 8, 16}) {
    const auto s =
        plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, n,
                        kPayload);
    EXPECT_EQ(s.n_steps, 2 * (n - 1)) << "n=" << n;
    EXPECT_EQ(static_cast<int>(s.transfers.size()), 2 * (n - 1) * n);
    // Per-rank wire bytes = 2 (n-1)/n * payload.
    const Bytes per_rank = s.total_bytes() / n;
    const Bytes expected = 2 * (n - 1) * ((kPayload + n - 1) / n);
    EXPECT_EQ(per_rank, expected);
    EXPECT_EQ(s.max_peers_per_step, n == 2 ? 1 : 2);
    EXPECT_EQ(s.max_distinct_peers, n == 2 ? 1 : 2);
  }
}

TEST(RingAllGatherReduceScatter, HaveNMinus1Steps) {
  for (int n : {2, 3, 5, 8}) {
    for (auto type :
         {CollectiveType::kAllGather, CollectiveType::kReduceScatter}) {
      const auto s = plan_collective(type, Algorithm::kRing, n, kPayload);
      EXPECT_EQ(s.n_steps, n - 1);
      EXPECT_EQ(static_cast<int>(s.transfers.size()), (n - 1) * n);
    }
  }
}

TEST(RecursiveDoubling, LogStepsAndGrowingBlocks) {
  const auto s = plan_collective(CollectiveType::kAllGather,
                                 Algorithm::kRecursiveDoubling, 8, kPayload);
  EXPECT_EQ(s.n_steps, 3);
  EXPECT_EQ(static_cast<int>(s.transfers.size()), 3 * 8);
  // Distinct peer each step => high peer diversity (C1 breaker).
  EXPECT_EQ(s.max_peers_per_step, 1);
  EXPECT_EQ(s.max_distinct_peers, 3);
  // Step s moves 2^s chunks.
  for (const Transfer& t : s.transfers) {
    EXPECT_EQ(t.chunk_hi - t.chunk_lo, 1 << t.step);
  }
}

TEST(RecursiveDoubling, RequiresPowerOfTwo) {
  EXPECT_THROW(plan_collective(CollectiveType::kAllGather,
                               Algorithm::kRecursiveDoubling, 6, kPayload),
               InvariantError);
}

TEST(RecursiveHalvingDoubling, HalvesThenDoubles) {
  const auto s =
      plan_collective(CollectiveType::kAllReduce,
                      Algorithm::kRecursiveHalvingDoubling, 8, kPayload);
  EXPECT_EQ(s.n_steps, 6);  // log + log
  EXPECT_EQ(s.max_distinct_peers, 3);
  // Reduce phase transfers shrink: step 0 moves half the chunks.
  for (const Transfer& t : s.transfers) {
    if (t.step == 0) {
      EXPECT_EQ(t.chunk_hi - t.chunk_lo, 4);
    }
    if (t.step == 2) {
      EXPECT_EQ(t.chunk_hi - t.chunk_lo, 1);
    }
  }
}

TEST(BinomialTree, BroadcastReachesAllInLogSteps) {
  for (int n : {2, 3, 5, 8, 9, 16}) {
    const auto s = plan_collective(CollectiveType::kBroadcast,
                                   Algorithm::kBinomialTree, n, kPayload);
    int steps = 0;
    while ((1 << steps) < n) ++steps;
    EXPECT_EQ(s.n_steps, std::max(steps, 1));
    EXPECT_EQ(static_cast<int>(s.transfers.size()), n - 1);
  }
}

TEST(PairwiseAllToAll, PermutationPerStep) {
  const int n = 6;
  const auto s = plan_collective(CollectiveType::kAllToAll,
                                 Algorithm::kPairwise, n, kPayload);
  EXPECT_EQ(s.n_steps, n - 1);
  EXPECT_EQ(s.max_peers_per_step, 2);  // sends to +d and receives from -d
  EXPECT_EQ(s.max_distinct_peers, n - 1);
  // Every step is a clean permutation: each rank sends exactly once.
  for (const auto& step : s.transfers_by_step()) {
    std::vector<int> sends(n, 0), recvs(n, 0);
    for (int ti : step) {
      ++sends[static_cast<std::size_t>(
          s.transfers[static_cast<std::size_t>(ti)].src)];
      ++recvs[static_cast<std::size_t>(
          s.transfers[static_cast<std::size_t>(ti)].dst)];
    }
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(sends[static_cast<std::size_t>(r)], 1);
      EXPECT_EQ(recvs[static_cast<std::size_t>(r)], 1);
    }
  }
}

TEST(DirectAllToAll, SingleStepFullFanOut) {
  const int n = 5;
  const auto s = plan_collective(CollectiveType::kAllToAll,
                                 Algorithm::kDirect, n, kPayload);
  EXPECT_EQ(s.n_steps, 1);
  EXPECT_EQ(s.max_peers_per_step, n - 1);  // needs full connectivity
}

TEST(SendRecv, SingleTransfer) {
  const auto s = plan_collective(CollectiveType::kSendRecv,
                                 Algorithm::kDirect, 2, kPayload);
  EXPECT_EQ(s.transfers.size(), 1u);
  EXPECT_EQ(s.transfers[0].bytes, kPayload);
}

TEST(Barrier, MovesZeroBytes) {
  for (auto algo : {Algorithm::kRing, Algorithm::kRecursiveDoubling}) {
    const auto s = plan_collective(CollectiveType::kBarrier, algo, 6, 12345);
    EXPECT_EQ(s.total_bytes(), 0);
    EXPECT_FALSE(s.transfers.empty());
  }
}

TEST(SingleRankGroups, ProduceEmptySchedules) {
  const auto s = plan_collective(CollectiveType::kAllReduce, Algorithm::kRing,
                                 1, kPayload);
  EXPECT_TRUE(s.transfers.empty());
  EXPECT_EQ(s.n_steps, 0);
}

TEST(AlgorithmSupports, RejectsInvalidCombos) {
  EXPECT_FALSE(algorithm_supports(CollectiveType::kReduceScatter,
                                  Algorithm::kBinomialTree, 8));
  EXPECT_FALSE(algorithm_supports(CollectiveType::kSendRecv,
                                  Algorithm::kDirect, 3));
  EXPECT_FALSE(algorithm_supports(CollectiveType::kAllReduce,
                                  Algorithm::kRecursiveHalvingDoubling, 6));
  EXPECT_TRUE(algorithm_supports(CollectiveType::kAllReduce,
                                 Algorithm::kRing, 6));
}

TEST(ChooseAlgorithm, DegreeConstraintForcesRing) {
  // Large group, small payload: tree/RD would win on latency, but a 2-port
  // NIC cannot hold log2(64)=6 circuits (C1) -> ring.
  EXPECT_EQ(choose_algorithm(CollectiveType::kAllReduce, 64, 1024, 2),
            Algorithm::kRing);
  // Unconstrained (electrical) picks the logarithmic algorithm.
  EXPECT_EQ(choose_algorithm(CollectiveType::kAllReduce, 64, 1024, 0),
            Algorithm::kRecursiveHalvingDoubling);
  // Large payloads prefer ring everywhere (bandwidth-bound).
  EXPECT_EQ(choose_algorithm(CollectiveType::kAllReduce, 64, gib(1), 0),
            Algorithm::kRing);
}

TEST(ChooseAlgorithm, AllToAllRespectsFabric) {
  EXPECT_EQ(choose_algorithm(CollectiveType::kAllToAll, 8, kPayload, 2),
            Algorithm::kPairwise);
  EXPECT_EQ(choose_algorithm(CollectiveType::kAllToAll, 8, kPayload, 0),
            Algorithm::kDirect);
}

TEST(Analysis, PredictedRingTimeMatchesAlphaBeta) {
  const int n = 4;
  const auto s =
      plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, n,
                      mib(100));
  const AlphaBeta cost{usecs(2), Bandwidth::gbps(200)};
  const TimeNs expected =
      2 * (n - 1) * (usecs(2) + transfer_time(mib(100) / n, cost.bw));
  EXPECT_NEAR(static_cast<double>(predicted_time(s, cost)),
              static_cast<double>(expected), 1e3);
}

TEST(Analysis, PeerChangingStepsCountsReconfigBurden) {
  // Ring: one circuit set forever -> 1 initial configuration.
  const auto ring =
      plan_collective(CollectiveType::kAllReduce, Algorithm::kRing, 8, 1024);
  EXPECT_EQ(peer_changing_steps(ring), 1);
  // Recursive doubling: every step changes peers.
  const auto rd = plan_collective(CollectiveType::kAllGather,
                                  Algorithm::kRecursiveDoubling, 8, 1024);
  EXPECT_EQ(peer_changing_steps(rd), 3);
  // Pairwise AllToAll: every one of the n-1 steps is a new permutation.
  const auto a2a = plan_collective(CollectiveType::kAllToAll,
                                   Algorithm::kPairwise, 8, 1024);
  EXPECT_EQ(peer_changing_steps(a2a), 7);
}

TEST(Analysis, ReconfigPenaltyMakesRingWinOnCircuits) {
  // With a 15 ms reconfiguration (3D MEMS), the "latency-optimized"
  // recursive-doubling AllGather loses to ring for small payloads: C1.
  const AlphaBeta cost{usecs(2), Bandwidth::gbps(200)};
  const TimeNs reconfig = msecs(15);
  const auto ring = plan_collective(CollectiveType::kAllGather,
                                    Algorithm::kRing, 16, kPayload);
  const auto rd = plan_collective(CollectiveType::kAllGather,
                                  Algorithm::kRecursiveDoubling, 16, kPayload);
  EXPECT_LT(predicted_time_with_reconfig(ring, cost, reconfig),
            predicted_time_with_reconfig(rd, cost, reconfig));
  // On a packet fabric (no reconfig), recursive doubling wins for small
  // payloads.
  EXPECT_GT(predicted_time(ring, cost), predicted_time(rd, cost));
}

// Property sweep: every planner produces transfers with valid rank indices,
// positive steps, and consistent metadata.
struct PlanCase {
  CollectiveType type;
  Algorithm algo;
  int n;
};

class PlannerSweep : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlannerSweep, SchedulesAreWellFormed) {
  const auto& [type, algo, n] = GetParam();
  const auto s = plan_collective(type, algo, n, kPayload);
  EXPECT_EQ(s.n_ranks, n);
  for (const Transfer& t : s.transfers) {
    EXPECT_GE(t.src, 0);
    EXPECT_LT(t.src, n);
    EXPECT_GE(t.dst, 0);
    EXPECT_LT(t.dst, n);
    EXPECT_NE(t.src, t.dst);
    EXPECT_GE(t.step, 0);
    EXPECT_LT(t.step, s.n_steps);
    EXPECT_GE(t.bytes, 0);
  }
  EXPECT_GE(s.max_distinct_peers, s.max_peers_per_step);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PlannerSweep,
    ::testing::Values(
        PlanCase{CollectiveType::kAllReduce, Algorithm::kRing, 5},
        PlanCase{CollectiveType::kAllReduce, Algorithm::kRing, 16},
        PlanCase{CollectiveType::kAllReduce,
                 Algorithm::kRecursiveHalvingDoubling, 16},
        PlanCase{CollectiveType::kAllReduce, Algorithm::kBinomialTree, 11},
        PlanCase{CollectiveType::kAllGather, Algorithm::kRing, 9},
        PlanCase{CollectiveType::kAllGather, Algorithm::kRecursiveDoubling,
                 32},
        PlanCase{CollectiveType::kAllGather, Algorithm::kDirect, 7},
        PlanCase{CollectiveType::kReduceScatter, Algorithm::kRing, 12},
        PlanCase{CollectiveType::kAllToAll, Algorithm::kPairwise, 10},
        PlanCase{CollectiveType::kAllToAll, Algorithm::kDirect, 6},
        PlanCase{CollectiveType::kBroadcast, Algorithm::kRing, 6},
        PlanCase{CollectiveType::kBroadcast, Algorithm::kBinomialTree, 13},
        PlanCase{CollectiveType::kReduce, Algorithm::kBinomialTree, 13},
        PlanCase{CollectiveType::kReduce, Algorithm::kRing, 4},
        PlanCase{CollectiveType::kSendRecv, Algorithm::kDirect, 2},
        PlanCase{CollectiveType::kBarrier, Algorithm::kRing, 7},
        PlanCase{CollectiveType::kBarrier, Algorithm::kRecursiveDoubling,
                 9}));

}  // namespace
}  // namespace opus::collective
