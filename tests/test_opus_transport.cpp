// End-to-end tests of the Opus transport: circuits established before data
// moves, idempotent phases, step-synchronous peer-changing algorithms,
// management-network offload, and provisioning behaviour.
#include <gtest/gtest.h>

#include "collective/executor.h"
#include "collective/planner.h"
#include "collective/verifier.h"
#include "core/opus_transport.h"

namespace opus::core {
namespace {

using collective::Algorithm;
using collective::CollectiveExecutor;
using collective::CollectiveType;
using collective::CommGroup;
using collective::ParallelismDim;

net::ClusterConfig photonic_cfg(int nodes, int gpn, int ports,
                                TimeNs reconfig = msecs(10)) {
  net::ClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.gpus_per_node = gpn;
  cfg.nic_ports = ports;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = reconfig;
  return cfg;
}

CommGroup rail_group(const net::Cluster& c, int local, int n_nodes,
                     ParallelismDim dim = ParallelismDim::kDP) {
  CommGroup g;
  g.id = GroupId{local + 100};
  g.dim = dim;
  for (int n = 0; n < n_nodes; ++n) g.ranks.push_back(c.gpu_at(NodeId{n}, local));
  g.name = "grp";
  return g;
}

TEST(OpusTransport, RingCollectiveWaitsForCircuitsThenRuns) {
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 2, 2));
  OpusTransport transport(sim, cluster);
  CollectiveExecutor exec(sim, transport);
  const CommGroup g = rail_group(cluster, 0, 4);
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(50));
  TimeNs start = -1, end = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    start = r.start;
    end = r.end;
  });
  sim.run();
  ASSERT_GE(end, 0);
  // Duration includes one reconfiguration (10ms) + control RTT + transfers.
  EXPECT_GT(end - start, msecs(10));
  EXPECT_EQ(transport.total_ocs_reconfigurations(), 1);
  EXPECT_EQ(transport.controller().stats().reconfigurations, 1);
}

TEST(OpusTransport, SecondSameGroupCollectiveHitsTheCircuitCache) {
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 2, 2));
  OpusTransport transport(sim, cluster);
  CollectiveExecutor exec(sim, transport);
  const CommGroup g = rail_group(cluster, 0, 4);
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(50));
  TimeNs first = -1, second = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    first = r.duration();
    exec.run(g, sched, [&](const CollectiveExecutor::Result& r2) {
      second = r2.duration();
    });
  });
  sim.run();
  EXPECT_GT(first, second);
  EXPECT_EQ(transport.total_ocs_reconfigurations(), 1)
      << "same-group repeat must not reconfigure (Objective 2)";
  EXPECT_EQ(transport.controller().stats().satisfied_immediately, 1);
}

TEST(OpusTransport, ScaleUpCollectiveBypassesControlPlane) {
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(2, 4, 2));
  OpusTransport transport(sim, cluster);
  CollectiveExecutor exec(sim, transport);
  CommGroup g;
  g.id = GroupId{1};
  g.dim = ParallelismDim::kTP;
  g.ranks = {GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3}};
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(10));
  bool done = false;
  exec.run(g, sched, [&](const CollectiveExecutor::Result&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport.controller().stats().requests, 0);
  EXPECT_EQ(transport.total_ocs_reconfigurations(), 0);
}

TEST(OpusTransport, PeerChangingAlgorithmReconfiguresPerStep) {
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(8, 2, 2));
  OpusTransport transport(sim, cluster);
  CollectiveExecutor exec(sim, transport);
  const CommGroup g = rail_group(cluster, 0, 8);
  // Recursive doubling on 8 nodes: 3 steps, 3 distinct peers > 2 ports (C1).
  const auto sched = plan_collective(CollectiveType::kAllGather,
                                     Algorithm::kRecursiveDoubling, 8, mib(8));
  EXPECT_TRUE(transport.needs_per_step_preparation(g, sched));
  bool done = false;
  CollectiveExecutor::Result result;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    done = true;
    result = r;
  });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.step_synchronous);
  EXPECT_EQ(transport.total_ocs_reconfigurations(), sched.n_steps)
      << "every peer change pays a reconfiguration on circuits (C1)";
  EXPECT_GT(result.duration(), 3 * msecs(10));
}

TEST(OpusTransport, RingBeatsRecursiveDoublingOnCircuits) {
  // The C1 tradeoff, end to end: for a small payload the logarithmic
  // algorithm's per-step reconfigurations dwarf its latency advantage.
  auto run_with = [](Algorithm algo) {
    sim::Simulator sim;
    net::Cluster cluster(sim, photonic_cfg(8, 2, 2));
    OpusTransport transport(sim, cluster);
    CollectiveExecutor exec(sim, transport);
    const CommGroup g = rail_group(cluster, 0, 8);
    const auto sched =
        plan_collective(CollectiveType::kAllGather, algo, 8, mib(1));
    TimeNs duration = -1;
    exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
      duration = r.duration();
    });
    sim.run();
    return duration;
  };
  EXPECT_LT(run_with(Algorithm::kRing),
            run_with(Algorithm::kRecursiveDoubling));
}

TEST(OpusTransport, MgmtOffloadSkipsCircuitsForSmallCollectives) {
  sim::Simulator sim;
  net::ClusterConfig ncfg = photonic_cfg(4, 2, 2);
  ncfg.mgmt_bw = Bandwidth::gbps(50);
  net::Cluster cluster(sim, ncfg);
  OpusTransport::Options opts;
  opts.mgmt_offload_threshold = kib(64);
  OpusTransport transport(sim, cluster, opts);
  CollectiveExecutor exec(sim, transport);
  const CommGroup g = rail_group(cluster, 0, 4);
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, kib(4));
  bool done = false;
  exec.run(g, sched, [&](const CollectiveExecutor::Result&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport.controller().stats().requests, 0);
  EXPECT_GT(cluster.bytes_on_route(net::Cluster::Route::kMgmt), 0);
  EXPECT_EQ(cluster.bytes_on_route(net::Cluster::Route::kRail), 0);
}

TEST(OpusTransport, DifferentGroupsTimeMultiplexTheSamePorts) {
  // DP pair {node0,node1} then PP pair {node0,node2}: the second collective
  // must reconfigure node0's ports after the first finishes.
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 2, 2));
  OpusTransport transport(sim, cluster);
  CollectiveExecutor exec(sim, transport);
  CommGroup dp;
  dp.id = GroupId{1};
  dp.dim = ParallelismDim::kDP;
  dp.ranks = {cluster.gpu_at(NodeId{0}, 0), cluster.gpu_at(NodeId{1}, 0)};
  CommGroup pp;
  pp.id = GroupId{2};
  pp.dim = ParallelismDim::kPP;
  pp.ranks = {cluster.gpu_at(NodeId{0}, 0), cluster.gpu_at(NodeId{2}, 0)};
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 2, mib(25));
  int completions = 0;
  exec.run(dp, sched, [&](const CollectiveExecutor::Result&) {
    ++completions;
    exec.run(pp, sched,
             [&](const CollectiveExecutor::Result&) { ++completions; });
  });
  sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(transport.total_ocs_reconfigurations(), 2);
}

TEST(OpusTransport, ProvisioningSpeculatesAfterProfiledPhase) {
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 2, 2));
  OpusTransport::Options opts;
  opts.provisioning = true;
  OpusTransport transport(sim, cluster, opts);
  CollectiveExecutor exec(sim, transport);
  CommGroup dp = rail_group(cluster, 0, 4, ParallelismDim::kDP);
  CommGroup pp = rail_group(cluster, 1, 4, ParallelismDim::kPP);
  pp.id = GroupId{200};
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(25));

  auto run_iteration = [&](int index, std::function<void()> next) {
    transport.iteration_started(index);
    exec.run(dp, sched, [&, next](const CollectiveExecutor::Result&) {
      exec.run(pp, sched,
               [next](const CollectiveExecutor::Result&) { next(); });
    });
  };
  bool all_done = false;
  run_iteration(0, [&] { run_iteration(1, [&] { all_done = true; }); });
  sim.run();
  ASSERT_TRUE(all_done);
  EXPECT_EQ(transport.shim().profile().size(), 2u);  // DP phase, PP phase
  EXPECT_GT(transport.shim().speculative_requests(), 0);
  EXPECT_EQ(transport.shim().mispredictions(), 0);
}

TEST(OpusTransport, CollectiveDataIsVerifiableEndToEnd) {
  // The schedule that actually ran on circuits satisfies its postcondition.
  const auto sched = plan_collective(CollectiveType::kAllReduce,
                                     Algorithm::kRing, 4, mib(16));
  EXPECT_TRUE(collective::verify_schedule(sched).ok);
}

TEST(OpusTransport, RequiresPhotonicCluster) {
  sim::Simulator sim;
  net::ClusterConfig cfg = photonic_cfg(2, 2, 2);
  cfg.fabric = net::FabricKind::kElectrical;
  net::Cluster cluster(sim, cfg);
  EXPECT_THROW(OpusTransport(sim, cluster), InvariantError);
}

}  // namespace
}  // namespace opus::core
