// Tests for the §3.1 window analysis: phase extraction, the T_window
// formula, Fig. 4(b) categorization, Eq. 1, and the Gantt exporter.
#include <gtest/gtest.h>

#include "trace/gantt.h"
#include "trace/recorder.h"
#include "trace/windows.h"

namespace opus::trace {
namespace {

using collective::CollectiveType;
using collective::ParallelismDim;

CommRecord rec(ParallelismDim dim, GroupId group, TimeNs issue, TimeNs end,
               Bytes payload, CollectiveType type = CollectiveType::kAllReduce) {
  CommRecord r;
  r.dim = dim;
  r.group = group;
  r.type = type;
  r.payload = payload;
  r.t_issue = issue;
  r.t_end = end;
  r.scale_out = true;
  r.rail = RailId{0};
  return r;
}

TEST(Phases, ConsecutiveSameDimMerge) {
  std::vector<CommRecord> comms = {
      rec(ParallelismDim::kDP, GroupId{1}, 0, 10, 100),
      rec(ParallelismDim::kDP, GroupId{1}, 5, 20, 200),
      rec(ParallelismDim::kPP, GroupId{2}, 30, 40, 50),
  };
  const auto phases = extract_phases(comms);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].n_comms, 2);
  EXPECT_EQ(phases[0].total_payload, 300);
  EXPECT_EQ(phases[0].t_last_end, 20);
  EXPECT_EQ(phases[1].dim, ParallelismDim::kPP);
}

TEST(Phases, SameDimDifferentGroupAfterGapSplits) {
  // Stage 1's RS chain, a long idle gap, then stage 0's RS chain: two
  // distinct phases even though both are DP.
  std::vector<CommRecord> comms = {
      rec(ParallelismDim::kDP, GroupId{1}, 0, 10, 100),
      rec(ParallelismDim::kDP, GroupId{2}, 500, 510, 100),
  };
  const auto phases = extract_phases(comms);
  ASSERT_EQ(phases.size(), 2u);
}

TEST(Phases, SameGroupAfterGapDoesNotSplit) {
  // Quiet gaps inside one group's chain stay one phase (same parallelism).
  std::vector<CommRecord> comms = {
      rec(ParallelismDim::kPP, GroupId{1}, 0, 10, 100),
      rec(ParallelismDim::kPP, GroupId{1}, 500, 510, 100),
  };
  EXPECT_EQ(extract_phases(comms).size(), 1u);
}

TEST(Phases, OverlappingDifferentGroupSameDimMerges) {
  // Concurrent per-stage chains of the same dimension form one phase.
  std::vector<CommRecord> comms = {
      rec(ParallelismDim::kDP, GroupId{1}, 0, 100, 10),
      rec(ParallelismDim::kDP, GroupId{2}, 50, 150, 10),
  };
  EXPECT_EQ(extract_phases(comms).size(), 1u);
}

TEST(Windows, FormulaMatchesPaperDefinition) {
  // T_window = min issue of P2 - max end of P1.
  std::vector<CommRecord> comms = {
      rec(ParallelismDim::kDP, GroupId{1}, 0, msecs(10), 100),
      rec(ParallelismDim::kDP, GroupId{1}, msecs(2), msecs(14), 100),
      rec(ParallelismDim::kPP, GroupId{2}, msecs(20), msecs(25), 64),
  };
  const auto windows = extract_windows(comms);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].size, msecs(6));  // 20 - 14
  EXPECT_EQ(windows[0].before_dim, ParallelismDim::kDP);
  EXPECT_EQ(windows[0].after_dim, ParallelismDim::kPP);
  EXPECT_EQ(windows[0].traffic_after, 64);
}

TEST(Windows, OverlappingPhasesGiveNegativeWindow) {
  std::vector<CommRecord> comms = {
      rec(ParallelismDim::kDP, GroupId{1}, 0, msecs(10), 100),
      rec(ParallelismDim::kPP, GroupId{2}, msecs(8), msecs(12), 100),
  };
  const auto windows = extract_windows(comms);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].size, -msecs(2));
}

TEST(Windows, EmptyAndSinglePhaseTracesHaveNoWindows) {
  EXPECT_TRUE(extract_windows({}).empty());
  std::vector<CommRecord> one = {
      rec(ParallelismDim::kDP, GroupId{1}, 0, 10, 100)};
  EXPECT_TRUE(extract_windows(one).empty());
}

TEST(WindowCategories, GroupsByVolumeAndAverages) {
  std::vector<Window> windows;
  for (int i = 0; i < 4; ++i) {
    Window w;
    w.size = msecs(2 * (i + 1));
    w.traffic_after = 64 * kMiB;
    windows.push_back(w);
  }
  Window big;
  big.size = msecs(1000);
  big.traffic_after = 3829 * kMiB;
  windows.push_back(big);
  const auto cats = categorize_windows(windows, 2);
  ASSERT_EQ(cats.size(), 2u);
  EXPECT_EQ(cats[0].traffic_after, 64 * kMiB);
  EXPECT_NEAR(cats[0].count_per_iteration, 2.0, 1e-9);
  EXPECT_NEAR(cats[0].avg_window_ms, 5.0, 1e-9);
  EXPECT_NEAR(cats[1].avg_window_ms, 1000.0, 1e-9);
}

TEST(WindowCategories, NearbyVolumesMergeWithinOnePercent) {
  std::vector<Window> windows;
  Window a;
  a.traffic_after = 1'000'000'000;
  a.size = msecs(1);
  Window b;
  b.traffic_after = 1'004'000'000;  // +0.4%
  b.size = msecs(3);
  windows = {a, b};
  const auto cats = categorize_windows(windows, 1);
  ASSERT_EQ(cats.size(), 1u);
  EXPECT_NEAR(cats[0].avg_window_ms, 2.0, 1e-9);
}

TEST(Eq1, PaperWorkloadWindowCount) {
  // 3D-parallel job (no CP/EP): only the PP/FSDP interleave and the four
  // pipeline state transitions remain: 4(PP-1) + 4.
  EXPECT_EQ(window_count_estimate(2, 32, 8, false, false), 8);
  EXPECT_EQ(window_count_estimate(3, 32, 8, false, false), 12);
  EXPECT_EQ(window_count_estimate(1, 32, 8, false, false), 4);
}

TEST(Eq1, FiveDimensionalJobCountsAllTerms) {
  // Full formula: 4(PP-1) + 2(L/PP - 1) + 4M + 2M(2L/PP - 1) + 4.
  const int pp = 4;
  const int layers = 32;  // 8 per stage
  const int mb = 8;
  const std::int64_t expected =
      4 * 3 + 2 * (8 - 1) + 4 * 8 + 2 * 8 * (2 * 8 - 1) + 4;
  EXPECT_EQ(window_count_estimate(pp, layers, mb, true, true), expected);
}

TEST(Eq1, CpOnlyJobDropsTheCpEpCrossTerm) {
  const std::int64_t expected = 4 * 3 + 2 * (8 - 1) + 4 * 8 + 4;
  EXPECT_EQ(window_count_estimate(4, 32, 8, true, false), expected);
  EXPECT_EQ(window_count_estimate(4, 32, 8, false, true), expected);
}

TEST(Eq1, Llama405BMatchesPaperFigure) {
  // The paper reports ~127 windows over a ~20s iteration (~6/s) for
  // Llama3.1-405B. With the published recipe (126 layers, PP=9, 16
  // microbatches, CP but no EP) the formula yields 126.
  const std::int64_t count = window_count_estimate(9, 126, 16, true, false);
  EXPECT_EQ(count, 126);
  EXPECT_NEAR(static_cast<double>(count) / 20.0, 6.0, 0.5);  // windows/s
}

TEST(Recorder, RailFilteringAndIterationSpans) {
  TraceRecorder r;
  r.begin_iteration(0);
  CommRecord a = rec(ParallelismDim::kDP, GroupId{1}, 10, 20, 100);
  a.rail = RailId{0};
  r.record_comm(a);
  CommRecord b = rec(ParallelismDim::kDP, GroupId{2}, 5, 15, 100);
  b.rail = RailId{1};
  r.record_comm(b);
  CommRecord scale_up = rec(ParallelismDim::kTP, GroupId{3}, 0, 5, 100);
  scale_up.scale_out = false;
  r.record_comm(scale_up);
  r.end_iteration(msecs(1));
  r.begin_iteration(msecs(1));
  CommRecord c = rec(ParallelismDim::kPP, GroupId{4}, msecs(2), msecs(3), 50);
  r.record_comm(c);
  r.end_iteration(msecs(4));

  EXPECT_EQ(r.rail_comms(0, RailId{0}).size(), 1u);
  EXPECT_EQ(r.rail_comms(0, RailId{1}).size(), 1u);
  EXPECT_EQ(r.rail_comms(1, RailId{0}).size(), 1u);
  EXPECT_EQ(r.scale_out_comms(0).size(), 2u);
  ASSERT_EQ(r.iterations().size(), 2u);
  EXPECT_EQ(r.iterations()[1].duration(), msecs(3));
}

TEST(Recorder, ScaleOutCommsSortedByIssue) {
  TraceRecorder r;
  r.begin_iteration(0);
  r.record_comm(rec(ParallelismDim::kDP, GroupId{1}, 30, 40, 1));
  r.record_comm(rec(ParallelismDim::kDP, GroupId{1}, 10, 20, 1));
  r.end_iteration(100);
  const auto out = r.scale_out_comms(0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_LT(out[0].t_issue, out[1].t_issue);
}

TEST(Recorder, ComputeRecordingCanBeDisabled) {
  TraceRecorder r(false);
  r.begin_iteration(0);
  r.record_compute(ComputeRecord{});
  EXPECT_TRUE(r.compute_records().empty());
}

TEST(Gantt, RendersGlyphsAndPhases) {
  std::vector<CommRecord> comms = {
      rec(ParallelismDim::kDP, GroupId{1}, 0, msecs(10), 100,
          CollectiveType::kAllGather),
      rec(ParallelismDim::kPP, GroupId{2}, msecs(50), msecs(60), 100,
          CollectiveType::kSendRecv),
      rec(ParallelismDim::kDP, GroupId{3}, msecs(80), msecs(90), 100,
          CollectiveType::kReduceScatter),
  };
  const std::string chart = render_rail_gantt(
      comms, {GpuId{0}, GpuId{4}, GpuId{8}, GpuId{12}}, 0, msecs(100));
  EXPECT_NE(chart.find("rank 0"), std::string::npos);
  EXPECT_NE(chart.find("rank 12"), std::string::npos);
  EXPECT_NE(chart.find('G'), std::string::npos);
  EXPECT_NE(chart.find('S'), std::string::npos);
  EXPECT_NE(chart.find('R'), std::string::npos);
  EXPECT_NE(chart.find("config 0: DP"), std::string::npos);
  EXPECT_NE(chart.find("config 1: PP"), std::string::npos);
  EXPECT_NE(chart.find("config 2: DP"), std::string::npos);
}

TEST(Gantt, GlyphCoverage) {
  EXPECT_EQ(gantt_glyph(CollectiveType::kAllGather), 'G');
  EXPECT_EQ(gantt_glyph(CollectiveType::kReduceScatter), 'R');
  EXPECT_EQ(gantt_glyph(CollectiveType::kAllReduce), 'A');
  EXPECT_EQ(gantt_glyph(CollectiveType::kSendRecv), 'S');
  EXPECT_EQ(gantt_glyph(CollectiveType::kAllToAll), 'X');
}

}  // namespace
}  // namespace opus::trace
