// Property-based tests of the fluid network under randomized workloads:
// capacity is never oversubscribed, work is conserved, every flow on a
// positive-capacity path completes, and allocations are max-min fair.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/fluid.h"
#include "sim/simulator.h"

namespace opus::net {
namespace {

struct RandomWorkload {
  int n_links;
  int n_flows;
  std::uint64_t seed;
};

class FluidPropertySweep : public ::testing::TestWithParam<RandomWorkload> {};

TEST_P(FluidPropertySweep, NoLinkOversubscribedAndAllFlowsComplete) {
  const auto& [n_links, n_flows, seed] = GetParam();
  sim::Simulator sim;
  FluidNetwork net(sim);
  Xoshiro256 rng(seed);

  std::vector<LinkId> links;
  for (int l = 0; l < n_links; ++l) {
    links.push_back(
        net.add_link(Bandwidth::gbps(50.0 + rng.uniform(0.0, 400.0))));
  }

  int completed = 0;
  Bytes total_started = 0;
  // Launch flows at staggered times over random duplicate-free paths.
  for (int f = 0; f < n_flows; ++f) {
    const TimeNs start = static_cast<TimeNs>(rng.below(5) * usecs(50));
    const Bytes bytes = static_cast<Bytes>(1 + rng.below(50)) * 1'000'000;
    total_started += bytes;
    const int hops = 1 + static_cast<int>(rng.below(3));
    std::vector<LinkId> path;
    std::size_t first = rng.below(static_cast<std::uint64_t>(n_links));
    for (int h = 0; h < hops; ++h) {
      const LinkId link{static_cast<std::int32_t>((first + h) % n_links)};
      path.push_back(link);
    }
    sim.schedule_at(start, [&net, path, bytes, &completed] {
      net.start_flow(path, bytes, 0, [&completed] { ++completed; });
    });
  }

  // Interleave invariant checks with execution.
  std::uint64_t safety = 0;
  while (sim.pending_events() > 0 && safety++ < 1'000'000) {
    sim.run_steps(1);
    for (int l = 0; l < n_links; ++l) {
      const LinkId link{l};
      // Exact bound, no epsilon: allocated_bps documents "never exceeds the
      // link capacity", and the implementation clamps so bottleneck-set
      // freezing cannot overshoot by floating-point slack.
      EXPECT_LE(net.allocated_bps(link), net.capacity(link).bits_per_sec)
          << "link " << l << " oversubscribed";
    }
  }
  EXPECT_EQ(completed, n_flows) << "every flow must complete";
  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_EQ(net.completed_flow_count(),
            static_cast<std::uint64_t>(n_flows));
}

INSTANTIATE_TEST_SUITE_P(
    Random, FluidPropertySweep,
    ::testing::Values(RandomWorkload{4, 10, 1}, RandomWorkload{8, 25, 2},
                      RandomWorkload{16, 50, 3}, RandomWorkload{8, 25, 42},
                      RandomWorkload{32, 80, 7}, RandomWorkload{4, 40, 99}));

TEST(FluidProperties, MaxMinFairnessNoFlowCanGainWithoutHurtingSmaller) {
  // Canonical max-min check: in any allocation, a flow's rate can only be
  // below its bottleneck fair share if some other flow on one of its links
  // has an even smaller rate. Verify on a random instance.
  sim::Simulator sim;
  FluidNetwork net(sim);
  Xoshiro256 rng(1234);
  std::vector<LinkId> links;
  for (int l = 0; l < 6; ++l) {
    links.push_back(net.add_link(Bandwidth::gbps(100)));
  }
  std::vector<FlowId> flows;
  for (int f = 0; f < 12; ++f) {
    std::vector<LinkId> path{links[rng.below(6)]};
    const LinkId second = links[rng.below(6)];
    if (second != path[0]) path.push_back(second);
    flows.push_back(net.start_flow(path, gib(1), 0, nullptr));
  }
  for (FlowId f : flows) {
    const double rate = net.flow_rate_bps(f);
    EXPECT_GT(rate, 0.0);
    // The flow saturates at least one of its links (otherwise max-min
    // would raise it): some link on its path has ~zero headroom.
    // We check the aggregate invariant instead of reconstructing paths:
    // total allocation equals total capacity on every saturated link and
    // never exceeds capacity anywhere (checked in the sweep above).
  }
  // Stronger check: equal flows on one shared link get equal rates.
  sim::Simulator sim2;
  FluidNetwork net2(sim2);
  const LinkId shared = net2.add_link(Bandwidth::gbps(90));
  std::vector<FlowId> equal;
  for (int i = 0; i < 3; ++i) {
    equal.push_back(net2.start_flow({shared}, gib(1), 0, nullptr));
  }
  for (FlowId f : equal) {
    EXPECT_NEAR(net2.flow_rate_bps(f), 30e9, 1e6);
  }
}

TEST(FluidProperties, AllocatedBpsNeverExceedsCapacityUnderSharedBottlenecks) {
  // Shares like capacity/3 and capacity/7 are not representable in binary
  // floating point, so summing per-flow rates can drift above the capacity
  // by a few ULPs; the documented invariant is a hard "never exceeds", which
  // the clamp must uphold for every mix of frozen bottleneck sets.
  sim::Simulator sim;
  FluidNetwork net(sim);
  Xoshiro256 rng(20260730);
  std::vector<LinkId> links;
  for (int l = 0; l < 12; ++l) {
    // Deliberately awkward capacities (odd divisors, non-round gbps).
    links.push_back(net.add_link(Bandwidth::gbps(10.0 + 0.3 * l)));
  }
  std::vector<FlowId> flows;
  for (int f = 0; f < 64; ++f) {
    const std::size_t first = rng.below(links.size());
    std::vector<LinkId> path{links[first]};
    if (rng.below(2) == 0) {
      path.push_back(links[(first + 1 + rng.below(links.size() - 1)) %
                           links.size()]);
    }
    flows.push_back(net.start_flow(path, gib(1), 0, nullptr));
  }
  for (int round = 0; round < 8; ++round) {
    for (const LinkId l : links) {
      EXPECT_LE(net.allocated_bps(l), net.capacity(l).bits_per_sec);
    }
    // Churn a few flows and re-check: every abort re-freezes the sets.
    for (int k = 0; k < 4 && !flows.empty(); ++k) {
      net.abort_flow(flows.back());
      flows.pop_back();
    }
  }
}

TEST(FluidProperties, WorkConservationOnSaturatedLink) {
  // A link with waiting flows is never left idle.
  sim::Simulator sim;
  FluidNetwork net(sim);
  const LinkId l = net.add_link(Bandwidth::gbps(100));
  net.start_flow({l}, 50'000'000, 0, nullptr);
  net.start_flow({l}, 25'000'000, 0, nullptr);
  EXPECT_NEAR(net.allocated_bps(l), 100e9, 1e6) << "fully utilized";
  sim.run_until(msecs(3));  // the smaller flow (25MB at 50G -> 4ms) is live
  EXPECT_NEAR(net.allocated_bps(l), 100e9, 1e6);
  sim.run();
  EXPECT_EQ(net.active_flow_count(), 0u);
}

}  // namespace
}  // namespace opus::net
