// Determinism guard: the whole library's stochastic behaviour flows through
// common/rng.h, so two runs of the same experiment with the same seed must
// produce bit-identical traces and statistics — the contract every
// regression bench and sweep relies on. A different seed must actually
// change the host-dispatch jitter (i.e. the seed is not ignored).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "fleet/fleet.h"
#include "net/fluid.h"
#include "sim/simulator.h"

namespace opus {
namespace {

core::ExperimentConfig tiny_config(net::FabricKind kind) {
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::test_tiny();
  cfg.model.n_layers = 8;
  cfg.parallelism.tp = 4;
  cfg.parallelism.dp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.n_microbatches = 4;
  cfg.parallelism.microbatch_size = 1;
  cfg.gpus_per_node = 4;
  cfg.iterations = 3;
  cfg.fabric = kind;
  cfg.ocs_reconfig_delay = msecs(1);
  return cfg;
}

void expect_bit_identical(const core::ExperimentResult& a,
                          const core::ExperimentResult& b) {
  EXPECT_EQ(a.iteration_times, b.iteration_times);
  EXPECT_EQ(a.steady_iteration_time, b.steady_iteration_time);
  EXPECT_EQ(a.ocs_reconfigurations, b.ocs_reconfigurations);
  EXPECT_EQ(a.ocs_dark_time, b.ocs_dark_time);
  EXPECT_EQ(a.controller.requests, b.controller.requests);
  EXPECT_EQ(a.controller.satisfied_immediately,
            b.controller.satisfied_immediately);
  EXPECT_EQ(a.controller.reconfigurations, b.controller.reconfigurations);
  EXPECT_EQ(a.controller.queued, b.controller.queued);
  EXPECT_EQ(a.controller.total_wait, b.controller.total_wait);
  EXPECT_EQ(a.controller.max_wait, b.controller.max_wait);
  EXPECT_EQ(a.shim_speculative_requests, b.shim_speculative_requests);
  EXPECT_EQ(a.shim_mispredictions, b.shim_mispredictions);
  EXPECT_EQ(a.rotor_rotations, b.rotor_rotations);
  EXPECT_EQ(a.rotor_deferred_sends, b.rotor_deferred_sends);
  EXPECT_EQ(a.rail_bytes, b.rail_bytes);
  EXPECT_EQ(a.scale_up_bytes, b.scale_up_bytes);
  EXPECT_EQ(a.pxn_bytes, b.pxn_bytes);
  EXPECT_EQ(a.mgmt_bytes, b.mgmt_bytes);
  EXPECT_EQ(a.multihop_bytes, b.multihop_bytes);

  // Full trace comparison: every comm record, field by field.
  const auto& ca = a.recorder->comm_records();
  const auto& cb = b.recorder->comm_records();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].iteration, cb[i].iteration);
    EXPECT_EQ(ca[i].rail, cb[i].rail);
    EXPECT_EQ(ca[i].group, cb[i].group);
    EXPECT_EQ(ca[i].group_name, cb[i].group_name);
    EXPECT_EQ(ca[i].dim, cb[i].dim);
    EXPECT_EQ(ca[i].type, cb[i].type);
    EXPECT_EQ(ca[i].payload, cb[i].payload);
    EXPECT_EQ(ca[i].t_issue, cb[i].t_issue);
    EXPECT_EQ(ca[i].t_end, cb[i].t_end);
    EXPECT_EQ(ca[i].scale_out, cb[i].scale_out);
  }

  // Compute spans too (same GPU, same instants, same labels).
  const auto& pa = a.recorder->compute_records();
  const auto& pb = b.recorder->compute_records();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].gpu, pb[i].gpu);
    EXPECT_EQ(pa[i].t_start, pb[i].t_start);
    EXPECT_EQ(pa[i].t_end, pb[i].t_end);
    EXPECT_EQ(pa[i].label, pb[i].label);
    EXPECT_EQ(pa[i].microbatch, pb[i].microbatch);
  }

  const auto& sa = a.recorder->iterations();
  const auto& sb = b.recorder->iterations();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].t_start, sb[i].t_start);
    EXPECT_EQ(sa[i].t_end, sb[i].t_end);
  }
}

TEST(Determinism, PhotonicExperimentIsBitIdentical) {
  const core::ExperimentConfig cfg = tiny_config(net::FabricKind::kOpusPhotonic);
  expect_bit_identical(core::run_experiment(cfg), core::run_experiment(cfg));
}

TEST(Determinism, ElectricalExperimentIsBitIdentical) {
  const core::ExperimentConfig cfg = tiny_config(net::FabricKind::kElectrical);
  expect_bit_identical(core::run_experiment(cfg), core::run_experiment(cfg));
}

TEST(Determinism, StaticRingExperimentIsBitIdentical) {
  const core::ExperimentConfig cfg = tiny_config(net::FabricKind::kStaticRing);
  expect_bit_identical(core::run_experiment(cfg), core::run_experiment(cfg));
}

TEST(Determinism, RotorExperimentIsBitIdentical) {
  // The rotor's slot clock, drain guard bands, and two-hop forwarding all
  // ride the simulator's FIFO tie-break, so the fabric must replay exactly.
  const core::ExperimentConfig cfg = tiny_config(net::FabricKind::kRotor);
  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  expect_bit_identical(a, b);
  EXPECT_EQ(a.rotor_rotations, b.rotor_rotations);
  EXPECT_EQ(a.rotor_deferred_sends, b.rotor_deferred_sends);
  EXPECT_GT(a.rotor_rotations, 0) << "the workload must exercise rotation";
}

TEST(Determinism, LazyWiringMatchesEagerWiringOnEveryFabric) {
  // Lazy fabric wiring (the default) permutes LinkId allocation order
  // relative to the legacy eager pre-wiring, but the fluid solver never
  // orders by id value — flows iterate in start order and links in touch
  // order — so the full trace must be bit-identical either way. This pins
  // the defer_fabric_wiring default flip as a pure representation change.
  for (net::FabricKind kind : net::kAllFabrics) {
    SCOPED_TRACE(net::fabric_name(kind));
    core::ExperimentConfig lazy = tiny_config(kind);
    core::ExperimentConfig eager = tiny_config(kind);
    eager.eager_fabric_wiring = true;
    expect_bit_identical(core::run_experiment(lazy),
                         core::run_experiment(eager));
  }
}

TEST(Determinism, TelemetryOnMatchesTelemetryOff) {
  // The obs subsystem's core contract: full telemetry (metrics gauges, the
  // periodic probe, chrome tracing, self-profiling) is pure observation —
  // it changes NO simulation result field on any fabric, and two
  // telemetry-on runs emit byte-identical series and trace documents.
  for (net::FabricKind kind : net::kAllFabrics) {
    SCOPED_TRACE(net::fabric_name(kind));
    const core::ExperimentConfig off = tiny_config(kind);
    core::ExperimentConfig on = tiny_config(kind);
    on.telemetry.metrics = true;
    // run_experiment never writes files (the config runner does), so these
    // paths act purely as sampling/tracing enable flags here.
    on.telemetry.series_path = "unused.csv";
    on.telemetry.chrome_trace_path = "unused.json";
    on.telemetry.sample_interval = usecs(200);
    on.telemetry.self_profile = true;

    const auto a = core::run_experiment(off);
    const auto b = core::run_experiment(on);
    expect_bit_identical(a, b);
    EXPECT_EQ(a.telemetry, nullptr);
    ASSERT_NE(b.telemetry, nullptr);
    ASSERT_NE(b.telemetry->series(), nullptr);
    EXPECT_GT(b.telemetry->series()->row_count(), 1u);
    EXPECT_GT(b.telemetry->trace().event_count(), 0u);

    const auto c = core::run_experiment(on);
    ASSERT_NE(c.telemetry, nullptr);
    EXPECT_EQ(b.telemetry->series()->to_csv(), c.telemetry->series()->to_csv());
    EXPECT_EQ(b.telemetry->trace().dump(), c.telemetry->trace().dump());
    EXPECT_EQ(json::dump(b.telemetry->final_metrics()),
              json::dump(c.telemetry->final_metrics()));
  }
}

TEST(Determinism, SweepThreadCountDoesNotChangeAnyTrace) {
  // Each sweep cell owns its Simulator, so fanning cells across threads
  // must leave every per-cell trace bit-identical to a serial run — the
  // contract that makes the parallel sweep runner safe for regression use.
  std::vector<core::ExperimentConfig> cells;
  cells.push_back(tiny_config(net::FabricKind::kOpusPhotonic));
  cells.push_back(tiny_config(net::FabricKind::kElectrical));
  cells.push_back(tiny_config(net::FabricKind::kStaticRing));
  cells.push_back(tiny_config(net::FabricKind::kRotor));

  core::SweepOptions serial;
  serial.threads = 1;
  core::SweepOptions threaded;
  threaded.threads = 3;
  const auto a = core::run_sweep(cells, serial);
  const auto b = core::run_sweep(cells, threaded);
  ASSERT_EQ(a.size(), cells.size());
  ASSERT_EQ(b.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_bit_identical(a[i], b[i]);
  }
}

TEST(Determinism, DispatchSeedActuallyChangesTheJitter) {
  core::ExperimentConfig cfg = tiny_config(net::FabricKind::kElectrical);
  const auto a = core::run_experiment(cfg);
  cfg.engine.seed = 43;
  const auto b = core::run_experiment(cfg);
  // Same workload, different host-jitter stream: the traces must diverge
  // somewhere (otherwise the seed is dead and determinism tests prove
  // nothing).
  const auto& ca = a.recorder->comm_records();
  const auto& cb = b.recorder->comm_records();
  ASSERT_EQ(ca.size(), cb.size());
  bool diverged = a.iteration_times != b.iteration_times;
  for (std::size_t i = 0; !diverged && i < ca.size(); ++i)
    diverged = ca[i].t_issue != cb[i].t_issue || ca[i].t_end != cb[i].t_end;
  EXPECT_TRUE(diverged);
}

TEST(Determinism, DisablingJitterMakesSeedIrrelevant) {
  core::ExperimentConfig cfg = tiny_config(net::FabricKind::kElectrical);
  cfg.engine.dispatch_min = 0;
  cfg.engine.dispatch_max = 0;
  const auto a = core::run_experiment(cfg);
  cfg.engine.seed = 1234567;
  const auto b = core::run_experiment(cfg);
  expect_bit_identical(a, b);
}

// ---------------------------------------------------------------------------
// Fleet determinism: a multi-tenant run interleaves many engines on one
// simulator, so the whole per-job JCT table (and every per-tenant byte
// counter) must replay bit-identically — across reruns with the same
// arrival seed AND across the isolated-baseline sweep's thread widths (the
// only threading anywhere near the fleet).
// ---------------------------------------------------------------------------

fleet::FleetConfig fleet_determinism_config(net::FabricKind fabric) {
  fleet::FleetConfig cfg;
  cfg.n_nodes = 12;
  cfg.base.fabric = fabric;
  cfg.base.gpus_per_node = 4;
  cfg.base.ocs_reconfig_delay = usecs(100);
  cfg.arrivals.seed = 31337;
  cfg.arrivals.n_jobs = 10;
  cfg.arrivals.iterations = 2;
  cfg.arrivals.mean_interarrival = msecs(1);
  cfg.policy = fleet::PlacementPolicy::kRailAware;
  return cfg;
}

void expect_fleets_bit_identical(const fleet::FleetResult& a,
                                 const fleet::FleetResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& ja = a.jobs[i];
    const auto& jb = b.jobs[i];
    EXPECT_EQ(ja.rejected, jb.rejected);
    EXPECT_EQ(ja.placement.first, jb.placement.first);
    EXPECT_EQ(ja.placement.count, jb.placement.count);
    EXPECT_EQ(ja.start, jb.start);
    EXPECT_EQ(ja.finish, jb.finish);
    EXPECT_EQ(ja.iteration_times, jb.iteration_times);
    EXPECT_EQ(ja.isolated_time, jb.isolated_time);
    EXPECT_EQ(ja.rail_bytes, jb.rail_bytes);
    EXPECT_EQ(ja.scale_up_bytes, jb.scale_up_bytes);
    EXPECT_EQ(ja.pxn_bytes, jb.pxn_bytes);
    EXPECT_EQ(ja.multihop_bytes, jb.multihop_bytes);
    EXPECT_EQ(ja.rotor_rotations, jb.rotor_rotations);
    EXPECT_EQ(ja.rotor_deferred_sends, jb.rotor_deferred_sends);
    EXPECT_EQ(ja.dark_time, jb.dark_time);
    EXPECT_DOUBLE_EQ(ja.slowdown, jb.slowdown);
    EXPECT_EQ(ja.ports_lost, jb.ports_lost);
    EXPECT_EQ(ja.replacements, jb.replacements);
    EXPECT_DOUBLE_EQ(ja.availability, jb.availability);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_DOUBLE_EQ(a.peak_fragmentation, b.peak_fragmentation);
}

TEST(Determinism, FleetRunReplaysBitIdenticallyOnEveryFabric) {
  for (net::FabricKind fabric :
       {net::FabricKind::kOpusPhotonic, net::FabricKind::kRotor}) {
    SCOPED_TRACE(net::fabric_name(fabric));
    const fleet::FleetConfig cfg = fleet_determinism_config(fabric);
    expect_fleets_bit_identical(fleet::run_fleet(cfg), fleet::run_fleet(cfg));
  }
}

TEST(Determinism, FleetBaselineSweepWidthDoesNotChangeTheJctTable) {
  fleet::FleetConfig serial =
      fleet_determinism_config(net::FabricKind::kOpusPhotonic);
  serial.baseline_sweep.threads = 1;
  fleet::FleetConfig threaded = serial;
  threaded.baseline_sweep.threads = 3;
  expect_fleets_bit_identical(fleet::run_fleet(serial),
                              fleet::run_fleet(threaded));
}

TEST(Determinism, ChurnFleetReplaysBitIdentically) {
  // Failure churn adds a second stochastic process (the fault trace) on top
  // of arrivals and dispatch jitter; rescue resends, evictions, and
  // re-placements all ride the simulator's FIFO tie-break — so a churned
  // fleet must still replay its whole JCT/availability table bit for bit.
  for (net::FabricKind fabric :
       {net::FabricKind::kOpusPhotonic, net::FabricKind::kRotor}) {
    SCOPED_TRACE(net::fabric_name(fabric));
    fleet::FleetConfig cfg = fleet_determinism_config(fabric);
    cfg.base.faults.enabled = true;
    cfg.base.faults.seed = 7;
    cfg.base.faults.mtbf_per_port = msecs(40);
    cfg.base.faults.mttr = msecs(2);
    cfg.base.faults.max_failures = 24;
    const auto a = fleet::run_fleet(cfg);
    const auto b = fleet::run_fleet(cfg);
    expect_fleets_bit_identical(a, b);
    int ports_lost = 0;
    for (const auto& jr : a.jobs) ports_lost += jr.ports_lost;
    EXPECT_GT(ports_lost, 0) << "the replay must actually contain churn";
  }
}

TEST(Determinism, FaultSeedActuallyChangesTheChurn) {
  core::ExperimentConfig cfg = tiny_config(net::FabricKind::kOpusPhotonic);
  cfg.faults.enabled = true;
  cfg.faults.seed = 1;
  cfg.faults.mtbf_per_port = msecs(5);
  cfg.faults.mttr = usecs(500);
  cfg.faults.max_failures = 24;
  const auto a = core::run_experiment(cfg);
  cfg.faults.seed = 2;
  const auto b = core::run_experiment(cfg);
  ASSERT_GT(a.fault_stats.failures_injected, 0);
  // Same workload, different fault stream: some observable must move —
  // otherwise the fault seed is dead and the replay test above is vacuous.
  bool diverged =
      a.iteration_times != b.iteration_times ||
      a.fault_stats.failures_injected != b.fault_stats.failures_injected ||
      a.fault_stats.failures_skipped != b.fault_stats.failures_skipped ||
      a.ocs_dark_time != b.ocs_dark_time ||
      a.rail_bytes != b.rail_bytes;
  EXPECT_TRUE(diverged);
}

TEST(Determinism, FleetArrivalSeedActuallyChangesTheSchedule) {
  const fleet::FleetConfig a =
      fleet_determinism_config(net::FabricKind::kElectrical);
  fleet::FleetConfig b = a;
  b.arrivals.seed = 31338;
  const auto ra = fleet::run_fleet(a);
  const auto rb = fleet::run_fleet(b);
  bool diverged = ra.makespan != rb.makespan;
  for (std::size_t i = 0; i < ra.jobs.size() && !diverged; ++i) {
    diverged = ra.jobs[i].spec.arrival != rb.jobs[i].spec.arrival ||
               ra.jobs[i].finish != rb.jobs[i].finish;
  }
  EXPECT_TRUE(diverged);
}

// ---------------------------------------------------------------------------
// The fluid flow registry itself: the dense slot store recycles slots and
// the completion heap breaks equal-instant ties by slot, so a scripted churn
// of starts, aborts, simultaneous completions, and zero-byte deliveries must
// replay with a bit-identical completion log — the registry-level contract
// under the experiment-level legs above.
// ---------------------------------------------------------------------------

TEST(Determinism, FluidRegistryChurnReplayIsBitIdentical) {
  auto run = [] {
    sim::Simulator sim;
    net::FluidNetwork fluid(sim);
    std::vector<std::pair<TimeNs, int>> log;  // (completion instant, tag)
    std::vector<LinkId> links;
    for (int l = 0; l < 8; ++l) {
      links.push_back(fluid.add_link(Bandwidth::gbps(100)));
    }
    std::vector<FlowId> flows;
    // Waves of equal-size flows over overlapping two-link paths: whole
    // cohorts drain at the same instant, exercising equal-time heap pops.
    for (int wave = 0; wave < 6; ++wave) {
      sim.schedule_at(wave * usecs(10), [&, wave] {
        for (int f = 0; f < 16; ++f) {
          const int tag = wave * 100 + f;
          flows.push_back(fluid.start_flow(
              {links[static_cast<std::size_t>(f % 8)],
               links[static_cast<std::size_t>((f + 3) % 8)]},
              1'000'000, 0, [&log, tag, &sim] {
                log.emplace_back(sim.now(), tag);
              }));
        }
        // Zero-byte control messages interleave with the draining flows.
        flows.push_back(fluid.start_flow({}, 0, usecs(7), [&log, wave, &sim] {
          log.emplace_back(sim.now(), 1000 + wave);
        }));
        // Abort a handful mid-flight: slots recycle between waves.
        for (int k = 0; k < 5 && !flows.empty(); ++k) {
          fluid.abort_flow(flows[flows.size() - 1 - k * 2 % flows.size()]);
        }
      });
    }
    sim.run();
    EXPECT_EQ(fluid.active_flow_count(), 0u);
    return log;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "registry churn must replay bit-identically";
}

// ---------------------------------------------------------------------------
// The RNG contract itself (common/rng.h): identical seeds give identical
// streams, distinct seeds give distinct streams, uniforms stay in range.
// ---------------------------------------------------------------------------

TEST(Determinism, XoshiroStreamsAreSeedStable) {
  Xoshiro256 a(2026), b(2026), c(2027);
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Determinism, XoshiroUniformStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Determinism, SplitMixIsSeedStable) {
  SplitMix64 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace opus
