// Fleet subsystem tests: arrival generation, the placement engine
// (fragmentation, rejection, policy divergence), OCS port-ownership
// isolation between tenants, per-tenant byte accounting, and the
// end-to-end multi-tenant acceptance scenario — 16 mixed-shape jobs on all
// four fabrics with exact per-tenant byte conservation against isolated
// runs (up to the rotor's timing-dependent multi-hop accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "core/static_ring.h"
#include "fleet/fleet.h"
#include "net/cluster.h"
#include "sim/simulator.h"

namespace opus {
namespace {

using fleet::PlacementEngine;
using fleet::PlacementPolicy;

// ---------------------------------------------------------------------------
// Placement engine
// ---------------------------------------------------------------------------

TEST(Placement, FirstFitTakesTheLowestFittingExtent) {
  PlacementEngine p(16, PlacementPolicy::kFirstFit);
  const auto a = p.allocate(4);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first, 0);
  EXPECT_EQ(a->count, 4);
  const auto b = p.allocate(2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first, 4);
  p.release(*a);
  // The freed low hole is first again.
  const auto c = p.allocate(3);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->first, 0);
}

TEST(Placement, RejectsWhenNoExtentFits) {
  PlacementEngine p(8, PlacementPolicy::kFirstFit);
  const auto a = p.allocate(3);  // [0,3)
  const auto b = p.allocate(3);  // [3,6)
  ASSERT_TRUE(a && b);
  // 2 nodes free at the top, and 3 after releasing a — but never 4
  // contiguous+aligned... release a: holes [0,3) and [6,8): 5 free nodes,
  // largest extent 3.
  p.release(*a);
  EXPECT_EQ(p.free_nodes(), 5);
  EXPECT_EQ(p.largest_free_extent(), 3);
  EXPECT_FALSE(p.allocate(4).has_value()) << "fragmented: no extent holds 4";
  EXPECT_TRUE(p.allocate(3).has_value());
  // Larger than the whole cluster is always rejected.
  EXPECT_FALSE(p.allocate(9).has_value());
}

TEST(Placement, ReleaseCoalescesNeighbours) {
  PlacementEngine p(12, PlacementPolicy::kFirstFit);
  const auto a = p.allocate(4);
  const auto b = p.allocate(4);
  const auto c = p.allocate(4);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(p.free_extent_count(), 0);
  p.release(*a);
  p.release(*c);
  EXPECT_EQ(p.free_extent_count(), 2);
  EXPECT_DOUBLE_EQ(p.fragmentation(), 0.5);
  p.release(*b);  // merges both neighbours into one full extent
  EXPECT_EQ(p.free_extent_count(), 1);
  EXPECT_EQ(p.largest_free_extent(), 12);
  EXPECT_DOUBLE_EQ(p.fragmentation(), 0.0);
}

TEST(Placement, DoubleReleaseThrows) {
  PlacementEngine p(8, PlacementPolicy::kFirstFit);
  const auto a = p.allocate(4);
  ASSERT_TRUE(a.has_value());
  p.release(*a);
  EXPECT_THROW(p.release(*a), InvariantError);
}

TEST(Placement, RailAwareDivergesFromFirstFitOnAlignment) {
  PlacementEngine ff(16, PlacementPolicy::kFirstFit);
  PlacementEngine ra(16, PlacementPolicy::kRailAware);
  // Both place a 1-node job at 0.
  ASSERT_EQ(ff.allocate(1)->first, 0);
  ASSERT_EQ(ra.allocate(1)->first, 0);
  // A 4-node job: first-fit shears it against the singleton; rail-aware
  // keeps its block aligned to the next multiple of 4.
  const auto ff4 = ff.allocate(4);
  const auto ra4 = ra.allocate(4);
  ASSERT_TRUE(ff4 && ra4);
  EXPECT_EQ(ff4->first, 1);
  EXPECT_EQ(ra4->first, 4) << "rail-aware aligns the block";
  // Rail-aware falls back to best-fit when no aligned start exists.
  PlacementEngine tight(10, PlacementPolicy::kRailAware);
  ASSERT_TRUE(tight.allocate(7).has_value());  // [0,7): no aligned 4 left
  const auto fallback = tight.allocate(3);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->first, 7);
}

// ---------------------------------------------------------------------------
// Arrival generation
// ---------------------------------------------------------------------------

TEST(Arrivals, DeterministicSortedAndDense) {
  fleet::ArrivalConfig cfg;
  cfg.seed = 99;
  cfg.n_jobs = 32;
  const auto a = fleet::generate_arrivals(cfg, 4);
  const auto b = fleet::generate_arrivals(cfg, 4);
  ASSERT_EQ(a.size(), 32u);
  std::set<int> shapes_seen;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].shape_index, b[i].shape_index);
    EXPECT_EQ(a[i].engine_seed, b[i].engine_seed);
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
    shapes_seen.insert(a[i].shape_index);
  }
  EXPECT_GT(shapes_seen.size(), 1u) << "the mix must actually mix";
  // A different seed must change the trace.
  cfg.seed = 100;
  const auto c = fleet::generate_arrivals(cfg, 4);
  bool diverged = false;
  for (std::size_t i = 0; i < a.size() && !diverged; ++i) {
    diverged = a[i].arrival != c[i].arrival ||
               a[i].shape_index != c[i].shape_index;
  }
  EXPECT_TRUE(diverged);
}

TEST(Arrivals, ShapeMustFillWholeNodes) {
  fleet::ArrivalConfig cfg;
  fleet::JobShape odd;
  odd.name = "odd";
  odd.model = workload::ModelConfig::test_tiny();
  odd.parallelism.tp = 2;  // world 2 on 4-GPU nodes: half a node
  cfg.shapes = {odd};
  EXPECT_THROW(fleet::generate_arrivals(cfg, 4), InvariantError);
}

// ---------------------------------------------------------------------------
// Tenant isolation on the shared cluster
// ---------------------------------------------------------------------------

net::ClusterConfig fleet_cluster_cfg(net::FabricKind fabric, int nodes) {
  net::ClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.gpus_per_node = 2;
  cfg.nic_ports = 2;
  cfg.fabric = fabric;
  cfg.ocs_reconfig_delay = usecs(10);
  return cfg;
}

TEST(TenantIsolation, CircuitsMayNotCrossTenantPorts) {
  sim::Simulator sim;
  net::Cluster cluster(
      sim, fleet_cluster_cfg(net::FabricKind::kOpusPhotonic, 8));
  cluster.assign_tenant(0, {0, 4});
  cluster.assign_tenant(1, {4, 4});
  auto& sw = cluster.ocs(RailId{0});
  const GpuId a = cluster.gpu_at(NodeId{0}, 0);
  const GpuId b = cluster.gpu_at(NodeId{3}, 0);
  const GpuId c = cluster.gpu_at(NodeId{4}, 0);
  // Within tenant 0: fine (both force and timed reconfigure).
  sw.force_circuits({{cluster.ocs_port(a, 0), cluster.ocs_port(b, 0)}});
  EXPECT_TRUE(sw.connected(cluster.ocs_port(a, 0), cluster.ocs_port(b, 0)));
  // Crossing the boundary: rejected before any state changes.
  EXPECT_THROW(sw.force_circuits(
                   {{cluster.ocs_port(a, 1), cluster.ocs_port(c, 1)}}),
               InvariantError);
  EXPECT_THROW(
      sw.reconfigure({{cluster.ocs_port(b, 1), cluster.ocs_port(c, 1)}}, {}),
      InvariantError);
  // Unowned ports may still pair with each other after release.
  cluster.release_tenant({0, 4});
  cluster.release_tenant({4, 4});
  EXPECT_FALSE(
      sw.peer(cluster.ocs_port(a, 0)).has_value())
      << "release tears tenant circuits down";
  sw.force_circuits({{cluster.ocs_port(a, 0), cluster.ocs_port(c, 0)}});
  EXPECT_TRUE(sw.connected(cluster.ocs_port(a, 0), cluster.ocs_port(c, 0)));
}

TEST(TenantIsolation, ReleaseRecyclesPortsForTheNextTenant) {
  sim::Simulator sim;
  net::Cluster cluster(sim,
                       fleet_cluster_cfg(net::FabricKind::kStaticRing, 8));
  cluster.assign_tenant(7, {2, 4});
  { core::StaticRingTransport ring(cluster, {2, 4}); }
  EXPECT_TRUE(cluster.rail_path_available(cluster.gpu_at(NodeId{2}, 0),
                                          cluster.gpu_at(NodeId{3}, 0)));
  cluster.release_tenant({2, 4});
  // A shifted tenant reuses part of the range; its ring wires cleanly.
  cluster.assign_tenant(8, {4, 4});
  core::StaticRingTransport ring(cluster, {4, 4});
  EXPECT_TRUE(cluster.rail_path_available(cluster.gpu_at(NodeId{4}, 0),
                                          cluster.gpu_at(NodeId{7}, 0)));
  for (int nic = 0; nic < 2; ++nic) {
    EXPECT_FALSE(cluster.ocs(RailId{0})
                     .peer(cluster.ocs_port(cluster.gpu_at(NodeId{2}, 0), nic))
                     .has_value())
        << "released, un-reused ports stay unwired";
  }
}

TEST(TenantIsolation, PerTenantByteAccountingSumsToClusterTotals) {
  sim::Simulator sim;
  net::Cluster cluster(sim,
                       fleet_cluster_cfg(net::FabricKind::kElectrical, 4));
  cluster.assign_tenant(0, {0, 2});
  cluster.assign_tenant(1, {2, 2});
  int done = 0;
  // Tenant 0: a rail transfer + a scale-up transfer; tenant 1: a rail one.
  cluster.transfer(cluster.gpu_at(NodeId{0}, 0), cluster.gpu_at(NodeId{1}, 0),
                   1000, [&] { ++done; });
  cluster.transfer(cluster.gpu_at(NodeId{0}, 0), cluster.gpu_at(NodeId{0}, 1),
                   500, [&] { ++done; });
  cluster.transfer(cluster.gpu_at(NodeId{2}, 0), cluster.gpu_at(NodeId{3}, 0),
                   2000, [&] { ++done; });
  sim.run();
  EXPECT_EQ(done, 3);
  using Route = net::Cluster::Route;
  EXPECT_EQ(cluster.tenant_bytes_on_route(0, Route::kRail), 1000);
  EXPECT_EQ(cluster.tenant_bytes_on_route(0, Route::kScaleUp), 500);
  EXPECT_EQ(cluster.tenant_bytes_on_route(1, Route::kRail), 2000);
  EXPECT_EQ(cluster.bytes_on_route(Route::kRail),
            cluster.tenant_bytes_on_route(0, Route::kRail) +
                cluster.tenant_bytes_on_route(1, Route::kRail));
}

// ---------------------------------------------------------------------------
// End-to-end fleet scenarios
// ---------------------------------------------------------------------------

fleet::FleetConfig scenario_config(net::FabricKind fabric, int jobs,
                                   int nodes) {
  fleet::FleetConfig cfg;
  cfg.n_nodes = nodes;
  cfg.base.fabric = fabric;
  cfg.base.gpus_per_node = 4;
  cfg.base.ocs_reconfig_delay = usecs(100);
  cfg.base.rotor_slot_time = msecs(1);
  cfg.arrivals.seed = 4242;
  cfg.arrivals.n_jobs = jobs;
  cfg.arrivals.iterations = 2;
  cfg.arrivals.mean_interarrival = msecs(1);  // bursty: forces queueing
  cfg.policy = fleet::PlacementPolicy::kRailAware;
  return cfg;
}

void check_fleet_invariants(const fleet::FleetResult& result,
                            net::FabricKind fabric) {
  ASSERT_FALSE(result.jobs.empty());
  EXPECT_EQ(result.rejected_jobs, 0);
  EXPECT_GT(result.makespan, 0);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0);
  bool queued = false;
  for (const auto& jr : result.jobs) {
    ASSERT_FALSE(jr.rejected);
    EXPECT_GE(jr.start, jr.spec.arrival);
    EXPECT_GT(jr.finish, jr.start);
    EXPECT_EQ(jr.iteration_times.size(),
              static_cast<std::size_t>(jr.spec.iterations));
    queued = queued || jr.queueing_delay() > 0;

    // Exact per-tenant byte conservation versus the isolated run. On the
    // contention-oblivious fabrics the rail totals match exactly (circuit
    // layouts and ring distances are span-isomorphic); the rotor's
    // direct-vs-two-hop split is timing-dependent, so conservation holds on
    // the logical payload: rail - multihop (each forwarded byte crosses
    // exactly two rail hops).
    EXPECT_GT(jr.rail_bytes, 0);
    if (fabric == net::FabricKind::kRotor) {
      EXPECT_EQ(jr.rail_bytes - jr.multihop_bytes,
                jr.isolated_rail_bytes - jr.isolated_multihop_bytes)
          << "job " << jr.spec.id;
    } else {
      EXPECT_EQ(jr.rail_bytes, jr.isolated_rail_bytes)
          << "job " << jr.spec.id;
      EXPECT_EQ(jr.multihop_bytes, jr.isolated_multihop_bytes)
          << "job " << jr.spec.id;
    }
    EXPECT_GE(jr.slowdown, 1.0) << "isolated is the best case";
    if (fabric == net::FabricKind::kElectrical ||
        fabric == net::FabricKind::kStaticRing) {
      EXPECT_EQ(jr.dark_time, 0) << "no in-job reconfiguration";
    }
  }
  EXPECT_TRUE(queued)
      << "the scenario must actually oversubscribe the cluster";
}

TEST(FleetScenario, SixteenJobMixedShapeConservationOnAllFourFabrics) {
  for (net::FabricKind fabric : net::kAllFabrics) {
    SCOPED_TRACE(net::fabric_name(fabric));
    const fleet::FleetResult result =
        fleet::run_fleet(scenario_config(fabric, 16, 16));
    check_fleet_invariants(result, fabric);
    if (fabric == net::FabricKind::kRotor) {
      int rotations = 0;
      for (const auto& jr : result.jobs) rotations += jr.rotor_rotations;
      EXPECT_GT(rotations, 0) << "multi-node tenants must rotate";
    }
  }
}

// The CI fleet smoke leg: a small trace on every fabric, exercising
// queueing, placement recycling, and the per-job table rendering.
TEST(FleetScenario, SmallTraceAllFourFabrics) {
  for (net::FabricKind fabric : net::kAllFabrics) {
    SCOPED_TRACE(net::fabric_name(fabric));
    const fleet::FleetResult result =
        fleet::run_fleet(scenario_config(fabric, 6, 8));
    check_fleet_invariants(result, fabric);
    const TextTable table = fleet::fleet_job_table(result);
    EXPECT_EQ(table.row_count(), result.jobs.size());
    EXPECT_FALSE(table.render().empty());
  }
}

TEST(FleetScenario, OversizedJobIsRejectedAndTheRestComplete) {
  fleet::FleetConfig cfg = scenario_config(net::FabricKind::kElectrical, 4, 4);
  fleet::JobShape giant;
  giant.name = "giant";
  giant.model = workload::ModelConfig::test_tiny();
  giant.parallelism.tp = 4;
  giant.parallelism.dp = 8;  // 8 nodes > 4-node cluster
  giant.weight = 1.0;
  auto shapes = fleet::table_mix_shapes(cfg.base.gpus_per_node);
  // Keep only 2-node shapes so everything else fits, then add the giant.
  shapes.resize(1);
  shapes.push_back(giant);
  cfg.arrivals.shapes = shapes;
  cfg.arrivals.n_jobs = 12;
  const fleet::FleetResult result = fleet::run_fleet(cfg);
  int rejected = 0;
  for (const auto& jr : result.jobs) {
    if (jr.rejected) {
      ++rejected;
      continue;
    }
    EXPECT_GT(jr.finish, jr.start);
  }
  EXPECT_EQ(rejected, result.rejected_jobs);
  EXPECT_GT(result.rejected_jobs, 0) << "the giant shape must appear";
  EXPECT_LT(result.rejected_jobs, 12);
}

TEST(FleetScenario, SlowdownStatsAndPolicyDivergence) {
  // Same trace under both placement policies: results are well-formed and
  // the policies actually place jobs differently somewhere.
  fleet::FleetConfig ff = scenario_config(net::FabricKind::kElectrical, 12, 12);
  ff.policy = fleet::PlacementPolicy::kFirstFit;
  fleet::FleetConfig ra = ff;
  ra.policy = fleet::PlacementPolicy::kRailAware;
  const auto r_ff = fleet::run_fleet(ff);
  const auto r_ra = fleet::run_fleet(ra);
  const auto s_ff = fleet::fleet_slowdown_stats(r_ff);
  ASSERT_GT(s_ff.mean, 0.0);
  EXPECT_GE(s_ff.p99, 1.0);
  // With fewer than 100 samples, nearest-rank p99 is exactly the maximum.
  double max_slowdown = 0.0;
  for (const auto& jr : r_ff.jobs) {
    max_slowdown = std::max(max_slowdown, jr.slowdown);
  }
  EXPECT_DOUBLE_EQ(s_ff.p99, max_slowdown);
  EXPECT_LE(s_ff.mean, s_ff.p99);
  bool diverged = false;
  for (std::size_t i = 0; i < r_ff.jobs.size() && !diverged; ++i) {
    diverged = !(r_ff.jobs[i].placement == r_ra.jobs[i].placement);
  }
  EXPECT_TRUE(diverged) << "policies must not be observationally identical";
}

}  // namespace
}  // namespace opus
