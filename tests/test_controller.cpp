// Tests for the Opus controller: FC-FS scheduling, the circuit lookup table
// (idempotent acks), conflict deferral behind busy owners, fine- vs
// coarse-grained reconfiguration, and port-ownership bookkeeping.
#include <gtest/gtest.h>

#include "core/controller.h"

namespace opus::core {
namespace {

net::ClusterConfig photonic_cfg() {
  net::ClusterConfig cfg;
  cfg.n_nodes = 4;
  cfg.gpus_per_node = 2;
  cfg.nic_ports = 2;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = msecs(10);
  return cfg;
}

RailCircuits pair_circuits(const net::Cluster& c, int rail, int node_a,
                           int node_b) {
  RailCircuits rc;
  rc.rail = RailId{rail};
  const GpuId a = c.gpu_at(NodeId{node_a}, rail);
  const GpuId b = c.gpu_at(NodeId{node_b}, rail);
  rc.circuits = {{c.ocs_port(a, 0), c.ocs_port(b, 1)},
                 {c.ocs_port(b, 0), c.ocs_port(a, 1)}};
  return rc;
}

struct ControllerFixture {
  ControllerFixture(OpusController::Config cfg = {})
      : cluster(sim, photonic_cfg()), ctrl(sim, cluster, cfg) {}
  sim::Simulator sim;
  net::Cluster cluster;
  OpusController ctrl;
};

TEST(Controller, FirstRequestReconfiguresAfterRttAndDelay) {
  ControllerFixture f;
  TimeNs acked = -1;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)},
                 [&] { acked = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(acked, usecs(30) + msecs(10));  // control RTT + OCS delay
  EXPECT_EQ(f.ctrl.stats().requests, 1);
  EXPECT_EQ(f.ctrl.stats().reconfigurations, 1);
  EXPECT_EQ(f.ctrl.stats().satisfied_immediately, 0);
}

TEST(Controller, CachedConfigurationAcksWithoutReconfiguring) {
  ControllerFixture f;
  const auto layout = pair_circuits(f.cluster, 0, 0, 1);
  f.ctrl.request(GroupId{1}, {layout}, nullptr);
  f.sim.run();
  TimeNs acked = -1;
  const TimeNs t0 = f.sim.now();
  f.ctrl.request(GroupId{1}, {layout}, [&] { acked = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(acked - t0, usecs(30)) << "lookup-table hit pays only the RTT";
  EXPECT_EQ(f.ctrl.stats().reconfigurations, 1);
  EXPECT_EQ(f.ctrl.stats().satisfied_immediately, 1);
}

TEST(Controller, BusyOwnerDefersPreemption) {
  ControllerFixture f;
  bool pp_acked = false;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)},
                 [&] { pp_acked = true; });
  f.sim.run();
  ASSERT_TRUE(pp_acked);
  // Group 1 has a kernel in flight.
  f.ctrl.group_activity(GroupId{1}, +1);
  bool dp_acked = false;
  f.ctrl.request(GroupId{2}, {pair_circuits(f.cluster, 0, 1, 2)},
                 [&] { dp_acked = true; });
  f.sim.run();
  EXPECT_FALSE(dp_acked) << "node 1's ports belong to the busy group 1";
  EXPECT_EQ(f.ctrl.stats().queued, 1);
  // Kernel finishes: the queued reconfiguration proceeds.
  f.ctrl.group_activity(GroupId{1}, -1);
  f.sim.run();
  EXPECT_TRUE(dp_acked);
}

TEST(Controller, IdleOwnerIsPreemptedImmediately) {
  ControllerFixture f;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)}, nullptr);
  f.sim.run();
  bool acked = false;
  f.ctrl.request(GroupId{2}, {pair_circuits(f.cluster, 0, 1, 2)},
                 [&] { acked = true; });
  f.sim.run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(f.ctrl.stats().queued, 0);
}

TEST(Controller, DisjointPortDomainsProceedConcurrently) {
  ControllerFixture f;
  TimeNs ack_a = -1;
  TimeNs ack_b = -1;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)},
                 [&] { ack_a = f.sim.now(); });
  f.ctrl.request(GroupId{2}, {pair_circuits(f.cluster, 0, 2, 3)},
                 [&] { ack_b = f.sim.now(); });
  f.sim.run();
  // Fine-grained: both complete after one RTT + one OCS delay (in parallel).
  EXPECT_EQ(ack_a, usecs(30) + msecs(10));
  EXPECT_EQ(ack_b, usecs(30) + msecs(10));
}

TEST(Controller, CoarseGrainedSerializesWholeRail) {
  OpusController::Config cfg;
  cfg.fine_grained = false;
  ControllerFixture f(cfg);
  TimeNs ack_a = -1;
  TimeNs ack_b = -1;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)},
                 [&] { ack_a = f.sim.now(); });
  f.ctrl.request(GroupId{2}, {pair_circuits(f.cluster, 0, 2, 3)},
                 [&] { ack_b = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(ack_a, usecs(30) + msecs(10));
  // The second waits for the first's dark period even on disjoint ports.
  EXPECT_EQ(ack_b, usecs(30) + 2 * msecs(10));
}

TEST(Controller, SameGroupStepReconfigBypassesActivityCheck) {
  ControllerFixture f;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)}, nullptr);
  f.sim.run();
  f.ctrl.group_activity(GroupId{1}, +1);  // its own collective in flight
  bool acked = false;
  // Step-synchronous schedules retarget their own ports mid-collective.
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 2)},
                 [&] { acked = true; });
  f.sim.run();
  EXPECT_TRUE(acked);
  f.ctrl.group_activity(GroupId{1}, -1);
}

TEST(Controller, FcfsWithinPortDomain) {
  ControllerFixture f;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)}, nullptr);
  f.sim.run();
  f.ctrl.group_activity(GroupId{1}, +1);
  std::vector<int> order;
  // Both later requests want node 1's ports; they must be served FCFS.
  f.ctrl.request(GroupId{2}, {pair_circuits(f.cluster, 0, 1, 2)},
                 [&] { order.push_back(2); });
  f.ctrl.request(GroupId{3}, {pair_circuits(f.cluster, 0, 1, 3)},
                 [&] { order.push_back(3); });
  f.sim.run();
  EXPECT_TRUE(order.empty());
  f.ctrl.group_activity(GroupId{1}, -1);
  f.sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 3);
}

TEST(Controller, LaterNonConflictingRequestMayOvertake) {
  ControllerFixture f;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)}, nullptr);
  f.sim.run();
  f.ctrl.group_activity(GroupId{1}, +1);
  bool blocked_acked = false;
  bool free_acked = false;
  f.ctrl.request(GroupId{2}, {pair_circuits(f.cluster, 0, 1, 2)},
                 [&] { blocked_acked = true; });
  // Rail 1 is untouched: this must not wait behind the rail-0 queue.
  f.ctrl.request(GroupId{3}, {pair_circuits(f.cluster, 1, 0, 1)},
                 [&] { free_acked = true; });
  f.sim.run();
  EXPECT_FALSE(blocked_acked);
  EXPECT_TRUE(free_acked);
  f.ctrl.group_activity(GroupId{1}, -1);
  f.sim.run();
  EXPECT_TRUE(blocked_acked);
}

TEST(Controller, PortOwnershipTransfersOnReconfiguration) {
  ControllerFixture f;
  const auto layout1 = pair_circuits(f.cluster, 0, 0, 1);
  f.ctrl.request(GroupId{1}, {layout1}, nullptr);
  f.sim.run();
  const GpuId g0 = f.cluster.gpu_at(NodeId{0}, 0);
  EXPECT_EQ(f.ctrl.port_owner(RailId{0}, f.cluster.ocs_port(g0, 0)),
            GroupId{1});
  f.ctrl.request(GroupId{2}, {pair_circuits(f.cluster, 0, 0, 2)}, nullptr);
  f.sim.run();
  EXPECT_EQ(f.ctrl.port_owner(RailId{0}, f.cluster.ocs_port(g0, 0)),
            GroupId{2});
  // Node 1's ports were stolen from group 1 and are now unowned.
  const GpuId g1 = f.cluster.gpu_at(NodeId{1}, 0);
  EXPECT_FALSE(f.ctrl.port_owner(RailId{0}, f.cluster.ocs_port(g1, 1)).valid());
}

TEST(Controller, WaitStatisticsAccumulate) {
  ControllerFixture f;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)}, nullptr);
  f.sim.run();
  EXPECT_EQ(f.ctrl.stats().total_wait, usecs(30) + msecs(10));
  EXPECT_EQ(f.ctrl.stats().max_wait, usecs(30) + msecs(10));
}

TEST(Controller, ZeroRttConfigSkipsControlDelay) {
  OpusController::Config cfg;
  cfg.control_rtt = 0;
  ControllerFixture f(cfg);
  TimeNs acked = -1;
  f.ctrl.request(GroupId{1}, {pair_circuits(f.cluster, 0, 0, 1)},
                 [&] { acked = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(acked, msecs(10));
}

TEST(Controller, EmptyLayoutAcksImmediately) {
  ControllerFixture f;
  bool acked = false;
  f.ctrl.request(GroupId{5}, {}, [&] { acked = true; });
  f.sim.run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(f.ctrl.stats().satisfied_immediately, 1);
}

}  // namespace
}  // namespace opus::core
