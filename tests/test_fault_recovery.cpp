// Fault-recovery tests (the LUMION direction the paper cites): OCS port
// failures tear their circuits, the planner re-routes onto surviving ports,
// and training continues when spare port capacity exists.
#include <gtest/gtest.h>

#include "collective/executor.h"
#include "collective/planner.h"
#include "core/opus_transport.h"

namespace opus::core {
namespace {

using collective::Algorithm;
using collective::CollectiveExecutor;
using collective::CollectiveType;
using collective::CommGroup;

net::ClusterConfig photonic_cfg(int nodes, int ports) {
  net::ClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.gpus_per_node = 2;
  cfg.nic_ports = ports;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = msecs(1);
  return cfg;
}

TEST(FaultRecovery, FailPortTearsCircuitAndBlocksReuse) {
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 2));
  auto& sw = c.ocs(RailId{0});
  sw.force_circuits({{PortId{0}, PortId{2}}});
  ASSERT_TRUE(sw.connected(PortId{0}, PortId{2}));
  sw.fail_port(PortId{0});
  EXPECT_TRUE(sw.failed(PortId{0}));
  EXPECT_FALSE(sw.connected(PortId{0}, PortId{2}));
  EXPECT_FALSE(sw.peer(PortId{2}).has_value());
  EXPECT_EQ(sw.failed_port_count(), 1);
  EXPECT_THROW(sw.reconfigure({{PortId{0}, PortId{2}}}, nullptr),
               InvariantError);
  // The surviving ports still work.
  sw.reconfigure({{PortId{1}, PortId{3}}}, nullptr);
  sim.run();
  EXPECT_TRUE(sw.connected(PortId{1}, PortId{3}));
}

TEST(FaultRecovery, FailBusyPortRequiresForce) {
  // force=false keeps the legacy LUMION-style contract: failure injection
  // between kernels only, so a busy port trips the precondition.
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 2));
  auto& sw = c.ocs(RailId{0});
  sw.force_circuits({{PortId{0}, PortId{2}}});
  c.network().start_flow({sw.link(PortId{0}, PortId{2})}, gib(1), 0, nullptr);
  EXPECT_THROW(sw.fail_port(PortId{0}, /*force=*/false), InvariantError);
}

TEST(FaultRecovery, ForcedFailAbortsLiveTrafficAndTearsCircuit) {
  // The (default) forced path models a mid-run failure: without a rescuer
  // installed the circuit's flows are aborted outright and the circuit torn.
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 2));
  auto& sw = c.ocs(RailId{0});
  sw.force_circuits({{PortId{0}, PortId{2}}});
  const LinkId l = sw.link(PortId{0}, PortId{2});
  bool delivered = false;
  c.network().start_flow({l}, gib(1), 0, [&] { delivered = true; });
  sw.fail_port(PortId{0});
  EXPECT_TRUE(sw.failed(PortId{0}));
  EXPECT_FALSE(sw.connected(PortId{0}, PortId{2}));
  EXPECT_EQ(c.network().active_flows_on(l), 0);
  sim.run();
  EXPECT_FALSE(delivered) << "aborted flows must not deliver";
}

TEST(FaultRecovery, PlannerRoutesAroundFailedPorts) {
  // 4-port NICs, pair group: normally striped over 4 circuits; after two
  // port failures on one node, the plan uses the 2 survivors.
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 4));
  CircuitPlanner planner(c);
  CommGroup g;
  g.id = GroupId{1};
  g.dim = collective::ParallelismDim::kDP;
  g.ranks = {c.gpu_at(NodeId{0}, 0), c.gpu_at(NodeId{1}, 0)};
  const auto sched = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 2, mib(1));
  const auto before = planner.plan_static(g, sched);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ((*before)[0].circuits.size(), 4u);

  auto& sw = c.ocs(RailId{0});
  sw.fail_port(c.ocs_port(g.ranks[0], 0));
  sw.fail_port(c.ocs_port(g.ranks[0], 2));
  const auto after = planner.plan_static(g, sched);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ((*after)[0].circuits.size(), 2u);
  for (const auto& circuit : (*after)[0].circuits) {
    EXPECT_FALSE(sw.failed(circuit.a));
    EXPECT_FALSE(sw.failed(circuit.b));
  }
}

TEST(FaultRecovery, RingBecomesUnwirableWithoutSparePorts) {
  // A 4-node ring needs degree 2; failing one of a node's two ports makes
  // the static ring impossible (the physical reality the spare ports of
  // LUMION-style designs exist to avoid).
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(4, 2));
  CircuitPlanner planner(c);
  CommGroup g;
  g.id = GroupId{1};
  g.dim = collective::ParallelismDim::kDP;
  for (int n = 0; n < 4; ++n) g.ranks.push_back(c.gpu_at(NodeId{n}, 0));
  const auto sched = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 4, mib(1));
  ASSERT_TRUE(planner.static_wirable(g, sched));
  c.ocs(RailId{0}).fail_port(c.ocs_port(g.ranks[1], 0));
  EXPECT_FALSE(planner.static_wirable(g, sched));
}

TEST(FaultRecovery, FailureMidReconfigurationSkipsTheDeadEstablish) {
  // A port dying while dark must not derail the in-flight reconfiguration:
  // the completion still fires (surviving circuits come up; the dead one is
  // skipped), and the dark time charged up front stays charged — the
  // sum(port_dark_time) ledger never loses a failed-while-dark port.
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 2));
  auto& sw = c.ocs(RailId{0});
  const TimeNs delay = sw.reconfig_delay();
  bool acked = false;
  sw.reconfigure({{PortId{0}, PortId{2}}, {PortId{1}, PortId{3}}},
                 [&] { acked = true; });
  sim.schedule_at(delay / 2, [&] { sw.fail_port(PortId{0}); });
  sim.run();
  EXPECT_TRUE(acked) << "the reconfiguration ack must survive the failure";
  EXPECT_TRUE(sw.connected(PortId{1}, PortId{3}));
  EXPECT_FALSE(sw.peer(PortId{0}).has_value());
  EXPECT_FALSE(sw.peer(PortId{2}).has_value())
      << "the dead circuit's establish must be skipped, not half-wired";
  TimeNs total_dark = 0;
  for (int p = 0; p < sw.n_ports(); ++p) {
    total_dark += sw.port_dark_time(PortId{p});
  }
  EXPECT_EQ(total_dark, 4 * delay)
      << "failing mid-dark must not claw back the up-front dark charge";
  // Repair makes the pair usable again via a fresh reconfiguration.
  sw.repair_port(PortId{0});
  sw.reconfigure({{PortId{0}, PortId{2}}}, nullptr);
  sim.run();
  EXPECT_TRUE(sw.connected(PortId{0}, PortId{2}));
}

TEST(FaultRecovery, BatchRotationWithFailedPortFallsBackToSurvivors) {
  // A pinned (batched) rotor matching whose port died since registration
  // must widen to the generic reconfigure path and bring up the surviving
  // circuits only; once the port is repaired the same batch applies whole.
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 2));
  auto& sw = c.ocs(RailId{0});
  const auto batch =
      sw.register_batch({{PortId{0}, PortId{2}}, {PortId{1}, PortId{3}}});
  sw.fail_port(PortId{1});
  bool acked = false;
  sw.reconfigure_batch(batch, [&] { acked = true; });
  sim.run();
  EXPECT_TRUE(acked);
  EXPECT_TRUE(sw.connected(PortId{0}, PortId{2}));
  EXPECT_FALSE(sw.peer(PortId{3}).has_value());

  sw.repair_port(PortId{1});
  bool again = false;
  sw.reconfigure_batch(batch, [&] { again = true; });
  sim.run();
  EXPECT_TRUE(again);
  EXPECT_TRUE(sw.connected(PortId{0}, PortId{2}));
  EXPECT_TRUE(sw.connected(PortId{1}, PortId{3}))
      << "a repaired batch port rejoins the pinned matching";
}

TEST(FaultRecovery, RepairRacingTheReplanRevivesParkedTraffic) {
  // Failure cuts every live path mid-transfer -> the rescued flow parks;
  // the repair's topology event retries it (here via the emergency spare
  // circuit) and the transfer still delivers exactly once, with the payload
  // charged only at the original issue.
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 2));
  c.set_fault_tolerant(true);
  auto& sw = c.ocs(RailId{0});
  sw.force_circuits({{PortId{0}, PortId{2}}});
  int done = 0;
  c.transfer(c.gpu_at(NodeId{0}, 0), c.gpu_at(NodeId{1}, 0), gib(1),
             [&] { ++done; });
  // Kill the spare first, then the carrying port: no surviving path.
  sim.schedule_at(usecs(1), [&] { c.fail_nic_port(NodeId{0}, 0, 1); });
  sim.schedule_at(usecs(2), [&] {
    c.fail_nic_port(NodeId{0}, 0, 0);
    EXPECT_EQ(c.parked_transfer_count(), 1)
        << "with no live path the rescued transfer must park, not vanish";
  });
  sim.schedule_at(msecs(1), [&] { c.repair_nic_port(NodeId{0}, 0, 0); });
  sim.run();
  EXPECT_EQ(done, 1) << "the parked transfer must deliver after repair";
  EXPECT_EQ(c.parked_transfer_count(), 0);
  EXPECT_EQ(c.bytes_on_route(net::Cluster::Route::kRail), gib(1))
      << "rescue resends must never double-count the payload";
}

TEST(FaultRecovery, CollectiveSurvivesFailureBetweenRuns) {
  // End to end: run a collective, fail one port, run again — Opus re-plans
  // onto the surviving ports (4-port NIC leaves spares).
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 4));
  OpusTransport transport(sim, cluster);
  CollectiveExecutor exec(sim, transport);
  CommGroup g;
  g.id = GroupId{1};
  g.dim = collective::ParallelismDim::kDP;
  for (int n = 0; n < 4; ++n) g.ranks.push_back(cluster.gpu_at(NodeId{n}, 0));
  const auto sched = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 4, mib(16));

  TimeNs first = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    first = r.duration();
  });
  sim.run();
  ASSERT_GT(first, 0);

  // Fail one port used by the ring.
  cluster.ocs(RailId{0}).fail_port(cluster.ocs_port(g.ranks[0], 0));

  TimeNs second = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    second = r.duration();
  });
  sim.run();
  ASSERT_GT(second, 0) << "the collective must recover onto spare ports";
  // Recovery pays a reconfiguration; afterwards a third run is cached.
  TimeNs third = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    third = r.duration();
  });
  sim.run();
  EXPECT_LT(third, second);
}

}  // namespace
}  // namespace opus::core
