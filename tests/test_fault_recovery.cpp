// Fault-recovery tests (the LUMION direction the paper cites): OCS port
// failures tear their circuits, the planner re-routes onto surviving ports,
// and training continues when spare port capacity exists.
#include <gtest/gtest.h>

#include "collective/executor.h"
#include "collective/planner.h"
#include "core/opus_transport.h"

namespace opus::core {
namespace {

using collective::Algorithm;
using collective::CollectiveExecutor;
using collective::CollectiveType;
using collective::CommGroup;

net::ClusterConfig photonic_cfg(int nodes, int ports) {
  net::ClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.gpus_per_node = 2;
  cfg.nic_ports = ports;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = msecs(1);
  return cfg;
}

TEST(FaultRecovery, FailPortTearsCircuitAndBlocksReuse) {
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 2));
  auto& sw = c.ocs(RailId{0});
  sw.force_circuits({{PortId{0}, PortId{2}}});
  ASSERT_TRUE(sw.connected(PortId{0}, PortId{2}));
  sw.fail_port(PortId{0});
  EXPECT_TRUE(sw.failed(PortId{0}));
  EXPECT_FALSE(sw.connected(PortId{0}, PortId{2}));
  EXPECT_FALSE(sw.peer(PortId{2}).has_value());
  EXPECT_EQ(sw.failed_port_count(), 1);
  EXPECT_THROW(sw.reconfigure({{PortId{0}, PortId{2}}}, nullptr),
               InvariantError);
  // The surviving ports still work.
  sw.reconfigure({{PortId{1}, PortId{3}}}, nullptr);
  sim.run();
  EXPECT_TRUE(sw.connected(PortId{1}, PortId{3}));
}

TEST(FaultRecovery, FailBusyPortThrows) {
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 2));
  auto& sw = c.ocs(RailId{0});
  sw.force_circuits({{PortId{0}, PortId{2}}});
  c.network().start_flow({sw.link(PortId{0}, PortId{2})}, gib(1), 0, nullptr);
  EXPECT_THROW(sw.fail_port(PortId{0}), InvariantError);
}

TEST(FaultRecovery, PlannerRoutesAroundFailedPorts) {
  // 4-port NICs, pair group: normally striped over 4 circuits; after two
  // port failures on one node, the plan uses the 2 survivors.
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(2, 4));
  CircuitPlanner planner(c);
  CommGroup g;
  g.id = GroupId{1};
  g.dim = collective::ParallelismDim::kDP;
  g.ranks = {c.gpu_at(NodeId{0}, 0), c.gpu_at(NodeId{1}, 0)};
  const auto sched = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 2, mib(1));
  const auto before = planner.plan_static(g, sched);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ((*before)[0].circuits.size(), 4u);

  auto& sw = c.ocs(RailId{0});
  sw.fail_port(c.ocs_port(g.ranks[0], 0));
  sw.fail_port(c.ocs_port(g.ranks[0], 2));
  const auto after = planner.plan_static(g, sched);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ((*after)[0].circuits.size(), 2u);
  for (const auto& circuit : (*after)[0].circuits) {
    EXPECT_FALSE(sw.failed(circuit.a));
    EXPECT_FALSE(sw.failed(circuit.b));
  }
}

TEST(FaultRecovery, RingBecomesUnwirableWithoutSparePorts) {
  // A 4-node ring needs degree 2; failing one of a node's two ports makes
  // the static ring impossible (the physical reality the spare ports of
  // LUMION-style designs exist to avoid).
  sim::Simulator sim;
  net::Cluster c(sim, photonic_cfg(4, 2));
  CircuitPlanner planner(c);
  CommGroup g;
  g.id = GroupId{1};
  g.dim = collective::ParallelismDim::kDP;
  for (int n = 0; n < 4; ++n) g.ranks.push_back(c.gpu_at(NodeId{n}, 0));
  const auto sched = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 4, mib(1));
  ASSERT_TRUE(planner.static_wirable(g, sched));
  c.ocs(RailId{0}).fail_port(c.ocs_port(g.ranks[1], 0));
  EXPECT_FALSE(planner.static_wirable(g, sched));
}

TEST(FaultRecovery, CollectiveSurvivesFailureBetweenRuns) {
  // End to end: run a collective, fail one port, run again — Opus re-plans
  // onto the surviving ports (4-port NIC leaves spares).
  sim::Simulator sim;
  net::Cluster cluster(sim, photonic_cfg(4, 4));
  OpusTransport transport(sim, cluster);
  CollectiveExecutor exec(sim, transport);
  CommGroup g;
  g.id = GroupId{1};
  g.dim = collective::ParallelismDim::kDP;
  for (int n = 0; n < 4; ++n) g.ranks.push_back(cluster.gpu_at(NodeId{n}, 0));
  const auto sched = collective::plan_collective(
      CollectiveType::kAllReduce, Algorithm::kRing, 4, mib(16));

  TimeNs first = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    first = r.duration();
  });
  sim.run();
  ASSERT_GT(first, 0);

  // Fail one port used by the ring.
  cluster.ocs(RailId{0}).fail_port(cluster.ocs_port(g.ranks[0], 0));

  TimeNs second = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    second = r.duration();
  });
  sim.run();
  ASSERT_GT(second, 0) << "the collective must recover onto spare ports";
  // Recovery pays a reconfiguration; afterwards a third run is cached.
  TimeNs third = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    third = r.duration();
  });
  sim.run();
  EXPECT_LT(third, second);
}

}  // namespace
}  // namespace opus::core
