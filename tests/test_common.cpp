// Tests for the common utilities: units, ids, stats/CDF, tables, RNG.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace opus {
namespace {

TEST(Units, TimeConversions) {
  EXPECT_EQ(usecs(1), 1'000);
  EXPECT_EQ(msecs(1.5), 1'500'000);
  EXPECT_EQ(secs(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_ms(msecs(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_sec(secs(3)), 3.0);
}

TEST(Units, BandwidthAndTransferTime) {
  const Bandwidth bw = Bandwidth::gbps(400);
  EXPECT_DOUBLE_EQ(bw.gbps_value(), 400.0);
  EXPECT_DOUBLE_EQ(bw.bytes_per_ns(), 50.0);
  // 50 GB at 50 B/ns = 1 s.
  EXPECT_EQ(transfer_time(50'000'000'000, bw), secs(1));
  EXPECT_EQ(transfer_time(0, bw), 0);
  // Rounds up: 1 byte never takes 0 ns.
  EXPECT_EQ(transfer_time(1, bw), 1);
}

TEST(Units, BandwidthArithmetic) {
  const Bandwidth bw = Bandwidth::gbps(400);
  EXPECT_EQ((bw / 2).gbps_value(), 200.0);
  EXPECT_EQ((bw * 2).gbps_value(), 800.0);
  EXPECT_LT(Bandwidth::gbps(100), bw);
  EXPECT_TRUE(bw.positive());
  EXPECT_FALSE(Bandwidth::gbps(0).positive());
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_time(msecs(12.5)), "12.500ms");
  EXPECT_EQ(format_time(secs(1.25)), "1.250s");
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_bytes(957'000'000), "957.0MB");
  EXPECT_EQ(format_bytes(64), "64B");
}

TEST(Ids, StrongTypingAndValidity) {
  GpuId g{3};
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(GpuId{}.valid());
  EXPECT_EQ(g, GpuId{3});
  EXPECT_NE(g, GpuId{4});
  EXPECT_LT(GpuId{1}, GpuId{2});
  // Distinct tags do not compare/convert (compile-time property; here we
  // just check hashing works for maps).
  std::hash<GpuId> h;
  EXPECT_EQ(h(GpuId{5}), h(GpuId{5}));
}

TEST(Stats, SummaryStatsMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(Stats, EmptyStatsThrow) {
  SummaryStats s;
  EXPECT_THROW(s.mean(), InvariantError);
  EXPECT_THROW(s.min(), InvariantError);
}

TEST(Cdf, FractionsAndQuantiles) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(50), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1000), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100);
  EXPECT_DOUBLE_EQ(cdf.median(), 50);
  const auto pts = cdf.evaluate({25.0, 75.0});
  EXPECT_DOUBLE_EQ(pts[0].second, 0.25);
  EXPECT_DOUBLE_EQ(pts[1].second, 0.75);
}

TEST(Cdf, UnsortedInsertionOrderIrrelevant) {
  Cdf a, b;
  a.add_all({3, 1, 2});
  b.add_all({1, 2, 3});
  EXPECT_EQ(a.sorted_samples(), b.sorted_samples());
}

TEST(Cdf, EmptyQuantileThrows) {
  Cdf cdf;
  EXPECT_THROW(cdf.quantile(0.5), InvariantError);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.0);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  TextTable t({"fabric", "cost"});
  t.add_row({"Opus", "$1"});
  t.add_row({"Fat-tree", "$3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("fabric"), std::string::npos);
  EXPECT_NE(out.find("Fat-tree"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "fabric,cost\nOpus,$1\nFat-tree,$3\n");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

// RFC-4180: cells containing a comma, a double quote, or a line break are
// quoted with embedded quotes doubled — `llama3, 8b` must stay one column.
TEST(Table, CsvQuotesDelimitersAndQuotes) {
  TextTable t({"model", "note"});
  t.add_row({"llama3, 8b", "plain"});
  t.add_row({"says \"hi\"", "multi\nline"});
  t.add_row({"crlf\r\n", "trailing,"});
  EXPECT_EQ(t.to_csv(),
            "model,note\n"
            "\"llama3, 8b\",plain\n"
            "\"says \"\"hi\"\"\",\"multi\nline\"\n"
            "\"crlf\r\n\",\"trailing,\"\n");
}

TEST(Table, CsvPlainCellsStayUnquoted) {
  TextTable t({"n", "v"});
  t.add_row({"1", "2.5"});
  EXPECT_EQ(t.to_csv(), "n,v\n1,2.5\n");
}

TEST(Table, ToJsonMirrorsHeadersAndRows) {
  TextTable t({"fabric", "cost"});
  t.add_row({"Opus", "$1"});
  const json::Value j = t.to_json();
  EXPECT_EQ(json::dump(j, 0),
            R"({"headers":["fabric","cost"],"rows":[["Opus","$1"]]})");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(fmt_count(20736), "20,736");
  EXPECT_EQ(fmt_count(-1234567), "-1,234,567");
  EXPECT_EQ(fmt_count(7), "7");
  EXPECT_EQ(fmt_dollars(12500000.4), "$12,500,000");
  EXPECT_EQ(fmt_double(0.70549, 3), "0.705");
}

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Xoshiro256 c(54321);
  bool differs = false;
  Xoshiro256 d(12345);
  for (int i = 0; i < 10; ++i) {
    if (c.next() != d.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  SummaryStats s;
  Xoshiro256 rng2(11);
  for (int i = 0; i < 100'000; ++i) s.add(rng2.uniform(10.0, 20.0));
  EXPECT_NEAR(s.mean(), 15.0, 0.05);
  EXPECT_GE(s.min(), 10.0);
  EXPECT_LT(s.max(), 20.0);
}

TEST(Ensure, ThrowsWithMessage) {
  EXPECT_NO_THROW(ensure(true, "fine"));
  try {
    ensure(false, "boom");
    FAIL() << "ensure(false) must throw";
  } catch (const InvariantError& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

}  // namespace
}  // namespace opus
