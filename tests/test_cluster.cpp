// Unit tests for cluster topology, addressing, routing, and transfers over
// scale-up, electrical rails, photonic rails, PXN, and the host network.
#include <gtest/gtest.h>

#include "common/error.h"
#include "net/cluster.h"

namespace opus::net {
namespace {

ClusterConfig base_config(FabricKind kind) {
  ClusterConfig cfg;
  cfg.n_nodes = 4;
  cfg.gpus_per_node = 4;
  cfg.nic_ports = 2;
  cfg.nic_total_bw = Bandwidth::gbps(400);
  cfg.nvlink_bw = Bandwidth::gbps(2400);
  cfg.fabric = kind;
  cfg.ocs_reconfig_delay = msecs(1);
  return cfg;
}

TEST(ClusterAddressing, NodeLocalRailMapping) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kElectrical));
  EXPECT_EQ(c.n_gpus(), 16);
  EXPECT_EQ(c.n_rails(), 4);
  EXPECT_EQ(c.node_of(GpuId{0}).value(), 0);
  EXPECT_EQ(c.node_of(GpuId{7}).value(), 1);
  EXPECT_EQ(c.local_rank(GpuId{7}), 3);
  EXPECT_EQ(c.rail_of(GpuId{9}).value(), 1);
  EXPECT_EQ(c.gpu_at(NodeId{2}, 3).value(), 11);
  EXPECT_TRUE(c.same_node(GpuId{4}, GpuId{7}));
  EXPECT_FALSE(c.same_node(GpuId{3}, GpuId{4}));
}

TEST(ClusterAddressing, OcsPortMappingRoundTrips) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kOpusPhotonic));
  for (int node = 0; node < 4; ++node) {
    for (int local = 0; local < 4; ++local) {
      const GpuId g = c.gpu_at(NodeId{node}, local);
      for (int p = 0; p < 2; ++p) {
        const PortId port = c.ocs_port(g, p);
        EXPECT_EQ(c.gpu_of_ocs_port(RailId{local}, port), g);
        EXPECT_EQ(c.nic_port_of_ocs_port(port), p);
      }
    }
  }
}

TEST(ClusterAddressing, InvalidConfigsThrow) {
  sim::Simulator sim;
  ClusterConfig bad = base_config(FabricKind::kElectrical);
  bad.nic_ports = 3;  // only 1/2/4 supported by ConnectX-7-style NICs
  EXPECT_THROW(Cluster(sim, bad), InvariantError);
}

TEST(ClusterRouting, RouteClassesMatchTopology) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kElectrical));
  EXPECT_EQ(c.route_for(GpuId{3}, GpuId{3}), Cluster::Route::kLoopback);
  EXPECT_EQ(c.route_for(GpuId{0}, GpuId{3}), Cluster::Route::kScaleUp);
  EXPECT_EQ(c.route_for(GpuId{1}, GpuId{5}), Cluster::Route::kRail);
  EXPECT_EQ(c.route_for(GpuId{0}, GpuId{5}), Cluster::Route::kPxn);
}

TEST(ClusterTransfer, ScaleUpUsesNvlinkBandwidth) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kElectrical));
  TimeNs done = -1;
  // 300 MB at 2400 Gb/s (300 GB/s) = 1 ms, plus 2 us NVLink latency.
  c.transfer(GpuId{0}, GpuId{1}, 300'000'000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, msecs(1) + usecs(2));
  EXPECT_EQ(c.bytes_on_route(Cluster::Route::kScaleUp), 300'000'000);
}

TEST(ClusterTransfer, ElectricalRailAlwaysAvailable) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kElectrical));
  EXPECT_TRUE(c.rail_path_available(GpuId{1}, GpuId{13}));
  TimeNs done = -1;
  // 50 MB at 400 Gb/s = 1 ms + rail latency 2us + hop 1us.
  c.transfer(GpuId{1}, GpuId{13}, 50'000'000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, msecs(1) + usecs(3));
  EXPECT_EQ(c.bytes_on_route(Cluster::Route::kRail), 50'000'000);
}

TEST(ClusterTransfer, PhotonicRailRequiresCircuit) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kOpusPhotonic));
  EXPECT_FALSE(c.rail_path_available(GpuId{0}, GpuId{4}));
  EXPECT_THROW(c.transfer(GpuId{0}, GpuId{4}, 1000, nullptr), InvariantError);
  // Establish a circuit: node0.port0 <-> node1.port1 on rail 0.
  c.ocs(RailId{0}).force_circuits(
      {{c.ocs_port(GpuId{0}, 0), c.ocs_port(GpuId{4}, 1)}});
  EXPECT_TRUE(c.rail_path_available(GpuId{0}, GpuId{4}));
  TimeNs done = -1;
  // One 200G circuit: 25 MB -> 1 ms (+2us rail latency, no OEO hop).
  c.transfer(GpuId{0}, GpuId{4}, 25'000'000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, msecs(1) + usecs(2));
}

TEST(ClusterTransfer, PhotonicStripesAcrossParallelCircuits) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kOpusPhotonic));
  auto& sw = c.ocs(RailId{0});
  sw.force_circuits({{c.ocs_port(GpuId{0}, 0), c.ocs_port(GpuId{4}, 0)},
                     {c.ocs_port(GpuId{0}, 1), c.ocs_port(GpuId{4}, 1)}});
  TimeNs done = -1;
  // Two 200G circuits striped = 400G: 50 MB -> 1 ms.
  c.transfer(GpuId{0}, GpuId{4}, 50'000'000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, msecs(1) + usecs(2));
}

TEST(ClusterTransfer, PxnForwardsThroughBridgeGpu) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kOpusPhotonic));
  // dst = GPU 5 (node 1, local 1); src = GPU 0 (node 0, local 0).
  // Bridge = node 0, local 1 = GPU 1. Circuit on rail 1: node0 <-> node1.
  c.ocs(RailId{1}).force_circuits(
      {{c.ocs_port(GpuId{1}, 0), c.ocs_port(GpuId{5}, 1)}});
  TimeNs done = -1;
  // Store-and-forward: NVLink hop (25MB at 300GB/s = 83.3us + 2us) then
  // rail hop (25MB at 200G = 1ms + 2us).
  c.transfer(GpuId{0}, GpuId{5}, 25'000'000, [&] { done = sim.now(); });
  sim.run();
  const TimeNs nvlink_time = transfer_time(25'000'000, Bandwidth::gbps(2400));
  EXPECT_EQ(done, nvlink_time + usecs(2) + msecs(1) + usecs(2));
  EXPECT_EQ(c.bytes_on_route(Cluster::Route::kPxn), 25'000'000);
}

TEST(ClusterTransfer, LoopbackCompletesImmediately) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kElectrical));
  TimeNs done = -1;
  c.transfer(GpuId{3}, GpuId{3}, 1'000'000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 0);
}

TEST(ClusterTransfer, MgmtNetworkRequiresEnablement) {
  sim::Simulator sim;
  Cluster without(sim, base_config(FabricKind::kElectrical));
  EXPECT_FALSE(without.has_mgmt_network());
  EXPECT_THROW(without.transfer_mgmt(GpuId{0}, GpuId{4}, 100, nullptr),
               InvariantError);

  ClusterConfig cfg = base_config(FabricKind::kElectrical);
  cfg.mgmt_bw = Bandwidth::gbps(50);
  Cluster with(sim, cfg);
  EXPECT_TRUE(with.has_mgmt_network());
  TimeNs done = -1;
  with.transfer_mgmt(GpuId{0}, GpuId{4}, 6'250'000, [&] { done = sim.now(); });
  sim.run();
  // 6.25 MB at 50 Gb/s = 1 ms, plus the 10us end-to-end mgmt latency.
  EXPECT_EQ(done, msecs(1) + usecs(10));
  EXPECT_EQ(with.bytes_on_route(Cluster::Route::kMgmt), 6'250'000);
}

TEST(ClusterTransfer, ElectricalIncastSharesDownlink) {
  sim::Simulator sim;
  Cluster c(sim, base_config(FabricKind::kElectrical));
  // GPUs 1, 5, 9 all send to GPU 13 over rail 1: the destination downlink
  // is the bottleneck, so each gets ~133 Gb/s.
  int completions = 0;
  TimeNs last = 0;
  for (int src : {1, 5, 9}) {
    c.transfer(GpuId{src}, GpuId{13}, 50'000'000, [&] {
      ++completions;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(completions, 3);
  // 3 x 50MB through one 400G downlink = 3 ms (+latencies).
  EXPECT_GE(last, msecs(3));
  EXPECT_LE(last, msecs(3) + usecs(10));
}

}  // namespace
}  // namespace opus::net
