// Parameterized end-to-end sweeps: the full photonic stack must run
// correctly (and deterministically) across parallelism shapes, OCS
// technologies, NIC port configurations, and workload options.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "costmodel/ocs_catalog.h"

namespace opus {
namespace {

core::ExperimentConfig tiny_config(int tp, int dp, int pp) {
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::test_tiny();
  cfg.model.n_layers = 8;
  cfg.parallelism.tp = tp;
  cfg.parallelism.dp = dp;
  cfg.parallelism.pp = pp;
  cfg.parallelism.n_microbatches = std::max(2, pp);
  cfg.parallelism.microbatch_size = 1;
  cfg.gpus_per_node = std::min(tp, tp * dp * pp);
  cfg.iterations = 3;
  cfg.record_compute_trace = false;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = msecs(1);
  return cfg;
}

class ShapeSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(ShapeSweep, PhotonicEndToEnd) {
  const auto [tp, dp, pp] = GetParam();
  core::ExperimentConfig cfg = tiny_config(tp, dp, pp);
  const auto r = core::run_experiment(cfg);
  ASSERT_EQ(r.iteration_times.size(), 3u);
  for (TimeNs t : r.iteration_times) EXPECT_GT(t, 0);
  EXPECT_EQ(r.shim_mispredictions, 0)
      << "deterministic loops must replay their profile exactly";
  if (dp > 1 || pp > 1) {
    EXPECT_GT(r.rail_bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(std::tuple{2, 2, 2}, std::tuple{4, 2, 2},
                      std::tuple{4, 4, 1}, std::tuple{4, 1, 4},
                      std::tuple{2, 4, 2}, std::tuple{2, 2, 4},
                      std::tuple{4, 2, 3}, std::tuple{1, 4, 2}));

TEST(ExperimentSweeps, DeterministicAcrossRuns) {
  core::ExperimentConfig cfg = tiny_config(4, 2, 2);
  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  EXPECT_EQ(a.iteration_times, b.iteration_times);
  EXPECT_EQ(a.ocs_reconfigurations, b.ocs_reconfigurations);
  EXPECT_EQ(a.controller.requests, b.controller.requests);
}

TEST(ExperimentSweeps, SteadyIterationsAreStable) {
  core::ExperimentConfig cfg = tiny_config(4, 2, 2);
  cfg.iterations = 5;
  // Disable the host dispatch jitter (it varies per iteration by design).
  cfg.engine.dispatch_min = 0;
  cfg.engine.dispatch_max = 0;
  const auto r = core::run_experiment(cfg);
  // Iterations 1..4 replay the same profiled schedule; their durations
  // must agree to within a couple of reconfiguration delays.
  for (std::size_t i = 2; i < r.iteration_times.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(r.iteration_times[i]),
                static_cast<double>(r.iteration_times[1]),
                static_cast<double>(msecs(2)));
  }
}

class OcsTechnologySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(OcsTechnologySweep, RunsAtEveryTable3Latency) {
  const auto& ocs = costmodel::ocs_by_technology(GetParam());
  core::ExperimentConfig cfg = tiny_config(4, 2, 2);
  cfg.ocs_reconfig_delay = ocs.reconfig_time();
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.steady_iteration_time, 0);
  EXPECT_GT(r.ocs_reconfigurations, 0);
}

INSTANTIATE_TEST_SUITE_P(Table3, OcsTechnologySweep,
                         ::testing::Values("PLZT", "SiP", "RotorNet",
                                           "3D MEMS", "Piezo",
                                           "Liquid crystal"));

class PortSweep : public ::testing::TestWithParam<int> {};

TEST_P(PortSweep, AllNicConfigurationsComplete) {
  core::ExperimentConfig cfg = tiny_config(4, 2, 2);
  cfg.nic_ports = GetParam();
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.steady_iteration_time, 0);
}

INSTANTIATE_TEST_SUITE_P(NicPorts, PortSweep, ::testing::Values(1, 2, 4));

TEST(ExperimentSweeps, LargerRingsNeedTwoPorts) {
  // dp=4 ring groups cannot be wired on a 1-port NIC (C1): the planner
  // falls back to per-step mode, whose single steps still need degree 2.
  core::ExperimentConfig cfg = tiny_config(4, 4, 1);
  cfg.nic_ports = 1;
  EXPECT_THROW(core::run_experiment(cfg), InvariantError);
  cfg.nic_ports = 2;
  EXPECT_GT(core::run_experiment(cfg).steady_iteration_time, 0);
}

TEST(ExperimentSweeps, PlainDpAllReducePath) {
  core::ExperimentConfig cfg = tiny_config(4, 2, 2);
  cfg.parallelism.fsdp = false;
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.rail_bytes, 0);
  EXPECT_EQ(r.shim_mispredictions, 0);
}

TEST(ExperimentSweeps, BackwardRegatherRuns) {
  core::ExperimentConfig cfg = tiny_config(4, 2, 2);
  cfg.iteration.bwd_regather = true;
  const auto with = core::run_experiment(cfg);
  cfg.iteration.bwd_regather = false;
  const auto without = core::run_experiment(cfg);
  EXPECT_GT(with.rail_bytes, without.rail_bytes);
}

TEST(ExperimentSweeps, SimulatedTpUsesScaleUpOnly) {
  core::ExperimentConfig cfg = tiny_config(4, 2, 2);
  cfg.iteration.simulate_tp_comm = true;
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.scale_up_bytes, 0);
  // TP never touches the rails: rail traffic equals the folded-TP run's.
  cfg.iteration.simulate_tp_comm = false;
  const auto folded = core::run_experiment(cfg);
  EXPECT_EQ(r.rail_bytes, folded.rail_bytes);
}

TEST(ExperimentSweeps, MoEWithExpertParallelism) {
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::mixtral_8x7b();
  cfg.model.n_layers = 4;
  cfg.parallelism.tp = 2;
  cfg.parallelism.dp = 4;
  cfg.parallelism.ep = 4;
  cfg.parallelism.pp = 1;
  cfg.parallelism.n_microbatches = 2;
  cfg.parallelism.microbatch_size = 1;
  cfg.gpus_per_node = 2;
  cfg.iterations = 2;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = msecs(1);
  cfg.record_compute_trace = false;
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.steady_iteration_time, 0);
  EXPECT_GT(r.ocs_reconfigurations, 0);
  // The pairwise AllToAll reconfigures per step: far more reconfigurations
  // than the ring-only dense workload.
  EXPECT_GT(r.ocs_reconfigurations, 50);
}

TEST(ExperimentSweeps, MgmtOffloadReducesRailBytes) {
  core::ExperimentConfig cfg = tiny_config(4, 2, 2);
  cfg.mgmt_bw = Bandwidth::gbps(50);
  cfg.mgmt_offload_threshold = kib(64);
  const auto with = core::run_experiment(cfg);
  EXPECT_GT(with.mgmt_bytes, 0);
  cfg.mgmt_offload_threshold = 0;
  const auto without = core::run_experiment(cfg);
  EXPECT_EQ(without.mgmt_bytes, 0);
  EXPECT_LT(with.rail_bytes, without.rail_bytes);
}

TEST(ExperimentSweeps, HigherReconfigLatencyNeverFaster) {
  core::ExperimentConfig cfg = tiny_config(4, 2, 2);
  TimeNs prev = 0;
  for (double ms : {0.0, 1.0, 10.0, 100.0}) {
    cfg.ocs_reconfig_delay = msecs(ms);
    const auto r = core::run_experiment(cfg);
    EXPECT_GE(r.steady_iteration_time + msecs(1), prev)
        << "latency " << ms << "ms";
    prev = r.steady_iteration_time;
  }
}

}  // namespace
}  // namespace opus
