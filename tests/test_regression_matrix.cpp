// Cross-topology regression matrix.
//
// Drives the end-to-end Experiment/Simulator pipeline across the full
// fabric axis the paper evaluates — net::FabricKind: electrical packet
// rails, Opus's demand-driven OCS circuit planner, the TPUv4-style static
// photonic ring, and the RotorNet-style traffic-oblivious rotor — crossed
// with the parallelism mixes of Tables 1/2 (DP/TP/PP traced shape,
// FSDP-only, pipeline-heavy, context parallelism, MoE expert parallelism).
//
// Every cell asserts deterministic, seed-stable invariants:
//   * completion and strictly positive iteration times;
//   * monotone virtual time (iteration spans ordered, comm records causal
//     and contained within their iteration);
//   * conservation of communicated bytes (logical scale-out payload is a
//     property of the workload, not the fabric; physical rail bytes match
//     between electrical and Opus photonic; static rings and the rotor's
//     two-hop forwarding pay a multi-hop tax, never a discount);
//   * reconfiguration-latency accounting per Fig. 8 (dark time bracketed by
//     per-port bounds, zero-latency photonic == electrical, monotone in the
//     OCS delay);
//   * inter-parallelism window counts bounded by Eq. 1.
//
// All standard cells execute once, up front, through core::run_sweep's
// thread pool (each cell owns its own Simulator, so the fan-out is safe);
// the per-cell TESTs then assert against the cached results. The
// SeedStableAcrossRuns leg re-runs its cell serially and requires the
// threaded and serial results to be bit-identical — the sweep-runner
// determinism contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "collective/executor.h"
#include "collective/planner.h"
#include "common/error.h"
#include "core/experiment.h"
#include "core/opus_transport.h"
#include "core/rotor.h"
#include "core/sweep.h"
#include "trace/windows.h"

namespace opus {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;

// ---------------------------------------------------------------------------
// The matrix axes.
// ---------------------------------------------------------------------------

using net::FabricKind;
using net::fabric_name;

struct Mix {
  const char* name;
  int tp, cp, dp, pp, ep;
  int n_microbatches;
  int gpus_per_node;
  bool moe;  ///< Mixtral-style expert-parallel workload
};

// Parallelism mixes following Tables 1/2: the §3.1 traced DP/TP/PP shape,
// small-model FSDP, pipeline-heavy, context parallelism, and MoE with EP.
const Mix kMixes[] = {
    {"TracedTp4Dp2Pp2", 4, 1, 2, 2, 1, 4, 4, false},
    {"FsdpDp4Tp2", 2, 1, 4, 1, 1, 2, 2, false},
    {"PipelineTp2Dp2Pp4", 2, 1, 2, 4, 1, 4, 2, false},
    {"ContextTp2Cp2Dp2", 2, 2, 2, 1, 1, 2, 4, false},
    {"MoeEp4Dp4Tp2", 2, 1, 4, 1, 4, 2, 2, true},
};

ExperimentConfig matrix_config(const Mix& mix, FabricKind fabric) {
  ExperimentConfig cfg;
  cfg.model = mix.moe ? workload::ModelConfig::mixtral_8x7b()
                      : workload::ModelConfig::test_tiny();
  cfg.model.n_layers = mix.moe ? 4 : 8;
  cfg.parallelism.tp = mix.tp;
  cfg.parallelism.cp = mix.cp;
  cfg.parallelism.dp = mix.dp;
  cfg.parallelism.pp = mix.pp;
  cfg.parallelism.ep = mix.ep;
  cfg.parallelism.n_microbatches = mix.n_microbatches;
  cfg.parallelism.microbatch_size = 1;
  cfg.gpus_per_node = mix.gpus_per_node;
  cfg.iterations = 3;
  cfg.record_compute_trace = false;
  // Simulate TP traffic on the scale-up fabric (instead of folding it into
  // compute) so the matrix exercises the NVLink path as well.
  cfg.iteration.simulate_tp_comm = true;
  cfg.ocs_reconfig_delay = msecs(1);
  cfg.fabric = fabric;
  // Rotor defaults: 1 ms slots, RotorNet-style port spread 2 (direct or
  // two-hop forwarding) — the ExperimentConfig defaults, restated so a
  // default change cannot silently reshape the matrix.
  cfg.rotor_slot_time = msecs(1);
  cfg.rotor_port_spread = 2;
  return cfg;
}

constexpr FabricKind kFabrics[] = {FabricKind::kElectrical,
                                   FabricKind::kOpusPhotonic,
                                   FabricKind::kStaticRing, FabricKind::kRotor};

/// The cached result of one standard matrix cell. All cells run exactly once,
/// in parallel, on first access.
const ExperimentResult& matrix_result(FabricKind fabric, int mix) {
  static const std::vector<ExperimentResult> results = [] {
    std::vector<ExperimentConfig> cells;
    for (FabricKind f : kFabrics) {
      for (const Mix& m : kMixes) cells.push_back(matrix_config(m, f));
    }
    return core::run_sweep(cells);
  }();
  // Index by position in kFabrics (the cell-construction order), not by the
  // enum's numeric value, so reordering either stays correct.
  std::size_t fi = 0;
  while (fi < std::size(kFabrics) && kFabrics[fi] != fabric) ++fi;
  ensure(fi < std::size(kFabrics), "fabric missing from kFabrics");
  return results[fi * std::size(kMixes) + static_cast<std::size_t>(mix)];
}

bool has_scale_out(const Mix& mix) {
  const int nodes =
      mix.tp * mix.cp * mix.dp * mix.pp / mix.gpus_per_node;
  return nodes > 1 && (mix.dp > 1 || mix.pp > 1 || mix.cp > 1 || mix.ep > 1);
}

/// Total logical payload of the scale-out collectives of one iteration —
/// a fabric-independent property of the workload.
Bytes scale_out_payload(const ExperimentResult& r, int iteration) {
  Bytes total = 0;
  for (const auto& rec : r.recorder->scale_out_comms(iteration))
    total += rec.payload;
  return total;
}

// ---------------------------------------------------------------------------
// Per-cell invariants: fabric x parallelism mix.
// ---------------------------------------------------------------------------

class TopologyMatrix
    : public ::testing::TestWithParam<std::tuple<FabricKind, int>> {
 protected:
  FabricKind fabric() const { return std::get<0>(GetParam()); }
  int mix_index() const { return std::get<1>(GetParam()); }
  const Mix& mix() const { return kMixes[mix_index()]; }
  const ExperimentResult& result() const {
    return matrix_result(fabric(), mix_index());
  }
};

std::string matrix_param_name(
    const ::testing::TestParamInfo<TopologyMatrix::ParamType>& info) {
  return std::string(fabric_name(std::get<0>(info.param))) +
         kMixes[std::get<1>(info.param)].name;
}

TEST_P(TopologyMatrix, CompletesWithMonotoneVirtualTime) {
  const ExperimentConfig cfg = matrix_config(mix(), fabric());
  const ExperimentResult& r = result();

  ASSERT_EQ(r.iteration_times.size(),
            static_cast<std::size_t>(cfg.iterations));
  for (TimeNs t : r.iteration_times) EXPECT_GT(t, 0);
  EXPECT_GT(r.steady_iteration_time, 0);

  // Iteration spans are ordered, non-overlapping, and match the reported
  // per-iteration durations.
  const auto& spans = r.recorder->iterations();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(cfg.iterations));
  TimeNs prev_end = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].index, static_cast<int>(i));
    EXPECT_GE(spans[i].t_start, prev_end);
    EXPECT_GT(spans[i].t_end, spans[i].t_start);
    EXPECT_EQ(spans[i].duration(), r.iteration_times[i]);
    prev_end = spans[i].t_end;
  }

  // Every comm record is causal and contained in its iteration's span.
  for (const auto& rec : r.recorder->comm_records()) {
    ASSERT_GE(rec.iteration, 0);
    ASSERT_LT(rec.iteration, cfg.iterations);
    const auto& span = spans[static_cast<std::size_t>(rec.iteration)];
    EXPECT_GE(rec.t_issue, span.t_start) << rec.group_name;
    EXPECT_LE(rec.t_end, span.t_end) << rec.group_name;
    EXPECT_GE(rec.t_end, rec.t_issue) << rec.group_name;
    EXPECT_GT(rec.payload, 0) << rec.group_name;
  }
}

TEST_P(TopologyMatrix, ByteAccountingIsConsistent) {
  const ExperimentConfig cfg = matrix_config(mix(), fabric());
  const ExperimentResult& r = result();

  EXPECT_GE(r.rail_bytes, 0);
  EXPECT_GE(r.scale_up_bytes, 0);
  EXPECT_GE(r.pxn_bytes, 0);
  EXPECT_EQ(r.mgmt_bytes, 0) << "mgmt network is disabled in the matrix";
  if (has_scale_out(mix())) {
    EXPECT_GT(r.rail_bytes, 0);
    for (int iter = 0; iter < cfg.iterations; ++iter)
      EXPECT_GT(scale_out_payload(r, iter), 0);
  }
  if (mix().tp > 1) {
    EXPECT_GT(r.scale_up_bytes, 0);
  }
  // Only fabrics with static or oblivious topologies forward traffic
  // through intermediate GPUs; electrical rails are fully connected and
  // Opus reconfigures instead of forwarding.
  if (fabric() == FabricKind::kElectrical ||
      fabric() == FabricKind::kOpusPhotonic) {
    EXPECT_EQ(r.multihop_bytes, 0);
  }
}

TEST_P(TopologyMatrix, ReconfigurationAccountingMatchesFabric) {
  const ExperimentConfig cfg = matrix_config(mix(), fabric());
  const ExperimentResult& r = result();

  const int ports_per_rail =
      (cfg.parallelism.world_size() / cfg.gpus_per_node) * cfg.nic_ports;
  const TimeNs delay = cfg.ocs_reconfig_delay;

  if (fabric() == FabricKind::kRotor) {
    // The rotor reconfigures without a control plane: every rotation that
    // changed circuits darkens the touched ports for the OCS delay, through
    // exactly the same Fig. 8 accounting as Opus. (A cell whose pairs are
    // all within two live hops never needs to rotate.)
    EXPECT_EQ(r.controller.requests, 0);
    EXPECT_GE(r.rotor_rotations, r.ocs_reconfigurations);
    if (r.ocs_reconfigurations == 0) {
      EXPECT_EQ(r.ocs_dark_time, 0);
    } else {
      EXPECT_GE(r.ocs_dark_time, 2 * delay);
      EXPECT_LE(r.ocs_dark_time,
                static_cast<TimeNs>(r.ocs_reconfigurations) * ports_per_rail *
                    delay);
    }
    return;
  }
  if (fabric() != FabricKind::kOpusPhotonic) {
    // Packet switches never reconfigure; the static ring is wired pre-job
    // and held for the whole run.
    EXPECT_EQ(r.ocs_reconfigurations, 0);
    EXPECT_EQ(r.ocs_dark_time, 0);
    EXPECT_EQ(r.controller.requests, 0);
    return;
  }
  if (!has_scale_out(mix())) return;

  EXPECT_GT(r.ocs_reconfigurations, 0);
  EXPECT_GE(r.controller.requests, r.controller.reconfigurations);
  EXPECT_LE(r.controller.satisfied_immediately, r.controller.requests);
  EXPECT_GE(r.controller.total_wait, r.controller.max_wait);
  EXPECT_GE(r.controller.max_wait, 0);

  // Fig. 8 accounting: every reconfiguration darkens the touched port set
  // (>= 2 ports, one circuit) for exactly the OCS delay; no reconfiguration
  // can darken more than a whole rail.
  EXPECT_GE(r.ocs_dark_time, 2 * delay);
  EXPECT_LE(r.ocs_dark_time,
            static_cast<TimeNs>(r.ocs_reconfigurations) * ports_per_rail *
                delay);
}

TEST_P(TopologyMatrix, SeedStableAcrossRuns) {
  // `a` ran inside the threaded sweep; `b` runs serially here. Bit-identical
  // traces regardless of sweep thread count is the determinism contract.
  const ExperimentConfig cfg = matrix_config(mix(), fabric());
  const ExperimentResult& a = result();
  const ExperimentResult b = core::run_experiment(cfg);

  EXPECT_EQ(a.iteration_times, b.iteration_times);
  EXPECT_EQ(a.steady_iteration_time, b.steady_iteration_time);
  EXPECT_EQ(a.ocs_reconfigurations, b.ocs_reconfigurations);
  EXPECT_EQ(a.ocs_dark_time, b.ocs_dark_time);
  EXPECT_EQ(a.controller.requests, b.controller.requests);
  EXPECT_EQ(a.rail_bytes, b.rail_bytes);
  EXPECT_EQ(a.scale_up_bytes, b.scale_up_bytes);
  EXPECT_EQ(a.pxn_bytes, b.pxn_bytes);
  EXPECT_EQ(a.multihop_bytes, b.multihop_bytes);
  ASSERT_EQ(a.recorder->comm_records().size(),
            b.recorder->comm_records().size());
  for (std::size_t i = 0; i < a.recorder->comm_records().size(); ++i) {
    const auto& ra = a.recorder->comm_records()[i];
    const auto& rb = b.recorder->comm_records()[i];
    EXPECT_EQ(ra.t_issue, rb.t_issue) << ra.group_name;
    EXPECT_EQ(ra.t_end, rb.t_end) << ra.group_name;
    EXPECT_EQ(ra.payload, rb.payload) << ra.group_name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TopologyMatrix,
    ::testing::Combine(::testing::Values(FabricKind::kElectrical,
                                         FabricKind::kOpusPhotonic,
                                         FabricKind::kStaticRing,
                                         FabricKind::kRotor),
                       ::testing::Range(0, static_cast<int>(std::size(kMixes)))),
    matrix_param_name);

// ---------------------------------------------------------------------------
// Cross-fabric conservation: the workload's logical traffic is invariant.
// ---------------------------------------------------------------------------

class CrossFabricConservation : public ::testing::TestWithParam<int> {};

TEST_P(CrossFabricConservation, LogicalPayloadIndependentOfFabric) {
  const Mix& mix = kMixes[GetParam()];
  if (!has_scale_out(mix)) GTEST_SKIP() << "no scale-out traffic";

  const auto& electrical = matrix_result(FabricKind::kElectrical, GetParam());
  const auto& photonic = matrix_result(FabricKind::kOpusPhotonic, GetParam());
  const auto& ring = matrix_result(FabricKind::kStaticRing, GetParam());
  const auto& rotor = matrix_result(FabricKind::kRotor, GetParam());

  // Logical bytes communicated per steady iteration are a property of the
  // workload, not of the switching technology underneath.
  const Bytes expected = scale_out_payload(electrical, 1);
  ASSERT_GT(expected, 0);
  EXPECT_EQ(scale_out_payload(photonic, 1), expected);
  EXPECT_EQ(scale_out_payload(ring, 1), expected);
  EXPECT_EQ(scale_out_payload(rotor, 1), expected);

  // Physically, electrical and Opus move the same bytes over the rails
  // (circuits change connectivity, not volume) ...
  EXPECT_EQ(photonic.rail_bytes, electrical.rail_bytes);
  EXPECT_EQ(photonic.pxn_bytes, electrical.pxn_bytes);
  EXPECT_EQ(photonic.scale_up_bytes, electrical.scale_up_bytes);
  // ... while the static ring pays the §5 multi-hop forwarding tax: every
  // non-neighbour hop re-sends bytes, so rails never carry less.
  EXPECT_GE(ring.rail_bytes + ring.multihop_bytes, electrical.rail_bytes);

  // Rotor conservation: logical rail sends are identical to the other
  // fabrics, and a forwarded send traverses exactly two live hops (the
  // RotorNet direct-or-two-hop cap), so the physical rail bytes are the
  // electrical baseline plus exactly one resend of every multi-hopped byte.
  EXPECT_EQ(rotor.pxn_bytes, electrical.pxn_bytes);
  EXPECT_EQ(rotor.scale_up_bytes, electrical.scale_up_bytes);
  EXPECT_EQ(rotor.rail_bytes, electrical.rail_bytes + rotor.multihop_bytes);
}

INSTANTIATE_TEST_SUITE_P(Mixes, CrossFabricConservation,
                         ::testing::Range(0,
                                          static_cast<int>(std::size(kMixes))),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kMixes[info.param].name;
                         });

TEST(CrossFabricConservation, TracedShapeMultihopsOnStaticRing) {
  // In the traced shape the PP groups connect nodes two ring positions
  // apart, which a fixed ring can only serve by forwarding.
  const auto& ring = matrix_result(FabricKind::kStaticRing, 0);
  EXPECT_GT(ring.multihop_bytes, 0);
}

TEST(CrossFabricConservation, RotorForwardsTrafficAndConservesBytes) {
  // With port spread 2 the rotor's live topology is a union of two
  // matchings: collectives whose peers are in neither matching forward over
  // two hops. Across the matrix some traffic must take that path (the
  // forwarding tax is what distinguishes the rotor cells from Opus), and no
  // mix may forward more than its own logical rail traffic (each logical
  // send is forwarded at most once end to end).
  Bytes total_forwarded = 0;
  for (std::size_t m = 0; m < std::size(kMixes); ++m) {
    if (!has_scale_out(kMixes[m])) continue;
    const auto& rotor = matrix_result(FabricKind::kRotor, static_cast<int>(m));
    const auto& electrical =
        matrix_result(FabricKind::kElectrical, static_cast<int>(m));
    EXPECT_LE(rotor.multihop_bytes, electrical.rail_bytes) << kMixes[m].name;
    total_forwarded += rotor.multihop_bytes;
  }
  EXPECT_GT(total_forwarded, 0);
}

// ---------------------------------------------------------------------------
// Fig. 8: reconfiguration-latency accounting on the Opus fabric.
// ---------------------------------------------------------------------------

TEST(ReconfigLatencyAccounting, DarkTimeScalesWithOcsDelay) {
  // The three delay points are independent cells: sweep them in parallel.
  std::vector<ExperimentConfig> cells;
  for (double ms : {0.0, 1.0, 5.0}) {
    ExperimentConfig cfg = matrix_config(kMixes[0], FabricKind::kOpusPhotonic);
    cfg.ocs_reconfig_delay = msecs(ms);
    cells.push_back(cfg);
  }
  const auto results = core::run_sweep(cells);

  const auto& instant = results[0];
  EXPECT_EQ(instant.ocs_dark_time, 0);
  EXPECT_GT(instant.ocs_reconfigurations, 0);

  TimeNs prev_time = 0;
  TimeNs prev_dark = 0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto& r = results[i];
    EXPECT_GE(r.steady_iteration_time + msecs(1), prev_time)
        << "iteration time must be monotone in OCS delay (cell " << i << ")";
    EXPECT_GT(r.ocs_dark_time, prev_dark)
        << "dark time must grow with OCS delay (cell " << i << ")";
    prev_time = r.steady_iteration_time;
    prev_dark = r.ocs_dark_time;
  }
}

TEST(ReconfigLatencyAccounting, ZeroLatencyPhotonicMatchesElectrical) {
  // Fig. 8's latency-0 bar: an instantly reconfigurable OCS fabric is the
  // fully-connected baseline (up to control-plane round trips).
  ExperimentConfig p = matrix_config(kMixes[0], FabricKind::kOpusPhotonic);
  p.ocs_reconfig_delay = 0;
  const auto photonic = core::run_experiment(p);
  const auto& electrical = matrix_result(FabricKind::kElectrical, 0);
  const double ratio =
      static_cast<double>(photonic.steady_iteration_time) /
      static_cast<double>(electrical.steady_iteration_time);
  EXPECT_NEAR(ratio, 1.0, 0.1) << "photonic/electrical = " << ratio;
}

// ---------------------------------------------------------------------------
// Eq. 1: inter-parallelism window counts.
// ---------------------------------------------------------------------------

class WindowCountBound : public ::testing::TestWithParam<int> {};

TEST_P(WindowCountBound, InterParallelismWindowsRespectEq1) {
  const Mix& mix = kMixes[GetParam()];
  if (!has_scale_out(mix)) GTEST_SKIP() << "no scale-out traffic";
  const ExperimentConfig cfg = matrix_config(mix, FabricKind::kElectrical);
  const auto& r = matrix_result(FabricKind::kElectrical, GetParam());

  const std::int64_t bound = trace::window_count_estimate(
      mix.pp, cfg.model.n_layers, mix.n_microbatches, mix.cp > 1, mix.ep > 1);
  ASSERT_GT(bound, 0);

  // Eq. 1 counts steady-state 1F1B windows; the simulated schedule adds a
  // handful of warmup/cool-down phase transitions at iteration boundaries,
  // so the observed count may exceed the estimate — but never by 2x (and a
  // deep pipeline must produce at least some inter-parallelism windows).
  for (int rail = 0; rail < cfg.gpus_per_node; ++rail) {
    const auto comms = r.recorder->rail_comms(1, RailId{rail});
    if (comms.empty()) continue;
    const auto windows = trace::extract_windows(comms);
    std::int64_t inter = 0;
    for (const auto& w : windows)
      if (w.before_dim != w.after_dim) ++inter;
    EXPECT_LE(inter, 2 * bound) << "rail " << rail << ": Eq. 1 band violated";
    if (mix.pp > 1) {
      EXPECT_GT(inter, 0) << "rail " << rail
                          << ": pipeline mixes must interleave dimensions";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Mixes, WindowCountBound,
                         ::testing::Range(0,
                                          static_cast<int>(std::size(kMixes))),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kMixes[info.param].name;
                         });

// ---------------------------------------------------------------------------
// Large-scale leg: 128 nodes (Table-3 OCS radix territory), electrical and
// Opus fabrics, swept at 1 and N threads — the active-state fluid solver is
// what makes this tractable, and the traces must not depend on thread count.
// ---------------------------------------------------------------------------

TEST(LargeScaleMatrix, OneHundredTwentyEightNodeCellsAreThreadInvariant) {
  Mix big{"Dp64Pp2At128Nodes", /*tp=*/1, /*cp=*/1, /*dp=*/64, /*pp=*/2,
          /*ep=*/1, /*n_microbatches=*/4, /*gpus_per_node=*/1, /*moe=*/false};
  std::vector<ExperimentConfig> cells;
  for (FabricKind f : {FabricKind::kElectrical, FabricKind::kOpusPhotonic}) {
    ExperimentConfig cfg = matrix_config(big, f);
    cfg.model.n_layers = 4;
    cfg.iterations = 2;
    cells.push_back(cfg);
  }
  ASSERT_EQ(cells[0].parallelism.world_size() / cells[0].gpus_per_node, 128);

  core::SweepOptions serial;
  serial.threads = 1;
  core::SweepOptions threaded;
  threaded.threads = 4;
  const auto a = core::run_sweep(cells, serial);
  const auto b = core::run_sweep(cells, threaded);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (TimeNs t : a[i].iteration_times) EXPECT_GT(t, 0);
    EXPECT_GT(a[i].rail_bytes, 0);
    EXPECT_EQ(a[i].multihop_bytes, 0);
    // Bit-identical per-cell traces at 1 and 4 sweep threads.
    EXPECT_EQ(a[i].iteration_times, b[i].iteration_times);
    EXPECT_EQ(a[i].steady_iteration_time, b[i].steady_iteration_time);
    EXPECT_EQ(a[i].ocs_reconfigurations, b[i].ocs_reconfigurations);
    EXPECT_EQ(a[i].ocs_dark_time, b[i].ocs_dark_time);
    EXPECT_EQ(a[i].rail_bytes, b[i].rail_bytes);
    EXPECT_EQ(a[i].scale_up_bytes, b[i].scale_up_bytes);
    EXPECT_EQ(a[i].pxn_bytes, b[i].pxn_bytes);
    const auto& ca = a[i].recorder->comm_records();
    const auto& cb = b[i].recorder->comm_records();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t k = 0; k < ca.size(); ++k) {
      EXPECT_EQ(ca[k].t_issue, cb[k].t_issue) << ca[k].group_name;
      EXPECT_EQ(ca[k].t_end, cb[k].t_end) << ca[k].group_name;
      EXPECT_EQ(ca[k].payload, cb[k].payload) << ca[k].group_name;
    }
  }
  // The Opus cell at 128 nodes must actually exercise the OCS control plane.
  EXPECT_GT(a[1].ocs_reconfigurations, 0);
}

// ---------------------------------------------------------------------------
// Rotor collective-level leg: traffic-oblivious rotation versus demand-driven
// circuits on a single collective, isolating the fabric from the workload
// (the end-to-end rotor cells run in the TopologyMatrix above). Uses the
// classic single-matching rotor (spread 1) so the penalty measured is pure
// waiting, not forwarding.
// ---------------------------------------------------------------------------

struct RotorCase {
  collective::CollectiveType type;
  const char* name;
};

const RotorCase kRotorCases[] = {
    {collective::CollectiveType::kAllReduce, "AllReduce"},
    {collective::CollectiveType::kAllGather, "AllGather"},
    {collective::CollectiveType::kReduceScatter, "ReduceScatter"},
    {collective::CollectiveType::kAllToAll, "AllToAll"},
};

struct RotorRun {
  TimeNs duration = -1;
  int rotations = 0;
  int deferred = 0;
};

RotorRun run_rail_collective(bool rotor, collective::CollectiveType type,
                             Bytes payload) {
  const int nodes = 8;
  sim::Simulator sim;
  net::ClusterConfig ncfg;
  ncfg.fabric =
      rotor ? net::FabricKind::kRotor : net::FabricKind::kOpusPhotonic;
  ncfg.n_nodes = nodes;
  ncfg.gpus_per_node = 2;
  ncfg.nic_ports = 2;
  ncfg.ocs_reconfig_delay = usecs(10);
  net::Cluster cluster(sim, ncfg);

  std::unique_ptr<collective::Transport> transport;
  core::RotorTransport* rt = nullptr;
  if (rotor) {
    core::RotorTransport::Options opts;
    opts.slot_time = usecs(100);
    auto t = std::make_unique<core::RotorTransport>(sim, cluster, opts);
    rt = t.get();
    transport = std::move(t);
  } else {
    transport = std::make_unique<core::OpusTransport>(sim, cluster);
  }

  collective::CollectiveExecutor exec(sim, *transport);
  collective::CommGroup g;
  g.id = GroupId{1};
  g.dim = collective::ParallelismDim::kDP;
  for (int n = 0; n < nodes; ++n)
    g.ranks.push_back(cluster.gpu_at(NodeId{n}, 0));
  const auto algo = collective::choose_algorithm(type, nodes, payload, 2);
  const auto sched = collective::plan_collective(type, algo, nodes, payload);

  RotorRun out;
  exec.run(g, sched, [&](const collective::CollectiveExecutor::Result& res) {
    out.duration = res.duration();
  });
  sim.run();
  if (rt != nullptr) {
    out.rotations = rt->rotations();
    out.deferred = rt->deferred_sends();
  }
  return out;
}

class RotorVsOpus : public ::testing::TestWithParam<int> {};

TEST_P(RotorVsOpus, BothFabricsCompleteAndRotorNeverWins) {
  const RotorCase& c = kRotorCases[GetParam()];
  const Bytes payload = mib(8);
  const RotorRun opus = run_rail_collective(false, c.type, payload);
  const RotorRun rotor = run_rail_collective(true, c.type, payload);

  ASSERT_GT(opus.duration, 0) << c.name;
  ASSERT_GT(rotor.duration, 0) << c.name;
  // Demand-driven circuits hold exactly what the collective needs; a rotor
  // connects each ring edge only 1/(n-1) of the time. It can tie on its
  // native AllToAll pattern but never beat Opus.
  EXPECT_GE(rotor.duration, opus.duration) << c.name;
  EXPECT_GT(rotor.rotations, 0) << c.name;
}

TEST_P(RotorVsOpus, RotorIsDeterministic) {
  const RotorCase& c = kRotorCases[GetParam()];
  const RotorRun a = run_rail_collective(true, c.type, mib(8));
  const RotorRun b = run_rail_collective(true, c.type, mib(8));
  EXPECT_EQ(a.duration, b.duration) << c.name;
  EXPECT_EQ(a.rotations, b.rotations) << c.name;
  EXPECT_EQ(a.deferred, b.deferred) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Collectives, RotorVsOpus,
                         ::testing::Range(0,
                                          static_cast<int>(
                                              std::size(kRotorCases))),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kRotorCases[info.param].name;
                         });

// ---------------------------------------------------------------------------
// 512-node multi-rail legs: all four fabrics at Table-3 radix scale (a
// 1024-port rail OCS at 2 NIC ports per GPU). The engine's cohort-coalesced
// completion events and the active-state fluid solver are what make this
// tractable. Each fabric is its own named CI leg (`-R FiveHundredTwelveNode`
// in ci.yml runs them all) so per-leg timing shows which fabric regressed;
// ctest runs every TEST in its own process, so each leg simulates only its
// own cell (memoized per process). Conservation cross-checks ride the
// photonic legs against the cheap electrical cell instead of a fifth leg
// that would re-simulate everything.
// ---------------------------------------------------------------------------

ExperimentConfig large_scale_config(FabricKind fabric) {
  // 512 nodes x 2 GPUs: TP=2 inside the scale-up domain, DP=64 x PP=8
  // across the two rails.
  const Mix big{"Tp2Dp64Pp8At512Nodes", /*tp=*/2, /*cp=*/1, /*dp=*/64,
                /*pp=*/8, /*ep=*/1, /*n_microbatches=*/8,
                /*gpus_per_node=*/2, /*moe=*/false};
  ExperimentConfig cfg = matrix_config(big, fabric);
  cfg.model.n_layers = 8;
  // One iteration keeps the slowest cells (static ring's ~64-hop
  // forwarding, the rotor's ~50k rotations) inside a CI-friendly minute;
  // every invariant asserted is per-run, not per-steady-iteration.
  cfg.iterations = 1;
  cfg.iteration.simulate_tp_comm = false;  // keep the giant cells lean
  cfg.rotor_slot_time = usecs(100);
  return cfg;
}

const ExperimentResult& large_scale_result(FabricKind fabric) {
  static std::map<FabricKind, ExperimentResult> cache;
  const auto it = cache.find(fabric);
  if (it != cache.end()) return it->second;
  const ExperimentConfig cfg = large_scale_config(fabric);
  EXPECT_EQ(cfg.parallelism.world_size() / cfg.gpus_per_node, 512);
  return cache.emplace(fabric, core::run_experiment(cfg)).first->second;
}

/// Invariants every 512-node cell satisfies regardless of fabric.
void expect_large_scale_basics(const ExperimentResult& r) {
  for (TimeNs t : r.iteration_times) EXPECT_GT(t, 0);
  EXPECT_GT(r.rail_bytes, 0);
  // TP communication is folded into compute in these lean cells, so the
  // scale-up fabric carries only PXN bridging — which this rail-aligned
  // shape never needs.
  EXPECT_EQ(r.pxn_bytes, 0);
}

int large_scale_ports_per_rail() {
  const ExperimentConfig cfg = large_scale_config(FabricKind::kElectrical);
  return (cfg.parallelism.world_size() / cfg.gpus_per_node) * cfg.nic_ports;
}

TEST(LargeScaleMatrix, FiveHundredTwelveNodeElectrical) {
  const auto& electrical = large_scale_result(FabricKind::kElectrical);
  expect_large_scale_basics(electrical);
  EXPECT_EQ(electrical.multihop_bytes, 0);
  EXPECT_EQ(electrical.ocs_reconfigurations, 0);
}

TEST(LargeScaleMatrix, FiveHundredTwelveNodeOpus) {
  const auto& opus = large_scale_result(FabricKind::kOpusPhotonic);
  expect_large_scale_basics(opus);
  EXPECT_EQ(opus.multihop_bytes, 0) << "Opus reconfigures, never forwards";
  EXPECT_GT(opus.ocs_reconfigurations, 0);
  const ExperimentConfig cfg = large_scale_config(FabricKind::kOpusPhotonic);
  EXPECT_GE(opus.ocs_dark_time, 2 * cfg.ocs_reconfig_delay);
  EXPECT_LE(opus.ocs_dark_time,
            static_cast<TimeNs>(opus.ocs_reconfigurations) *
                large_scale_ports_per_rail() * cfg.ocs_reconfig_delay);
  // Conservation: demand-driven circuits carry exactly the electrical
  // fabric's logical traffic — no forwarding tax, no discount.
  const auto& electrical = large_scale_result(FabricKind::kElectrical);
  EXPECT_EQ(opus.rail_bytes, electrical.rail_bytes);
}

TEST(LargeScaleMatrix, FiveHundredTwelveNodeStaticRing) {
  // The fluid-registry stress leg: ~64-hop store-and-forward chains drive
  // millions of max-min re-solves (the dense slot-indexed registry and the
  // completion heap are what keep this cell inside the CI budget).
  const auto& ring = large_scale_result(FabricKind::kStaticRing);
  expect_large_scale_basics(ring);
  EXPECT_GT(ring.multihop_bytes, 0) << "a fixed ring must forward";
  EXPECT_EQ(ring.ocs_reconfigurations, 0) << "wired once, never again";
  // Conservation: the ring pays (only) its forwarding tax on top of the
  // logical traffic the electrical fabric carries.
  const auto& electrical = large_scale_result(FabricKind::kElectrical);
  EXPECT_GE(ring.rail_bytes + ring.multihop_bytes, electrical.rail_bytes);
}

TEST(LargeScaleMatrix, FiveHundredTwelveNodeRotor) {
  const auto& rotor = large_scale_result(FabricKind::kRotor);
  expect_large_scale_basics(rotor);
  EXPECT_GT(rotor.multihop_bytes, 0);
  EXPECT_GE(rotor.rotor_rotations, rotor.ocs_reconfigurations);
  if (rotor.ocs_reconfigurations > 0) {
    const ExperimentConfig cfg = large_scale_config(FabricKind::kRotor);
    EXPECT_GE(rotor.ocs_dark_time, 2 * cfg.ocs_reconfig_delay);
    EXPECT_LE(rotor.ocs_dark_time,
              static_cast<TimeNs>(rotor.ocs_reconfigurations) *
                  large_scale_ports_per_rail() * cfg.ocs_reconfig_delay);
  }
  // Rotor conservation is exact: every forwarded byte crosses the rail
  // twice, so rail bytes equal the electrical fabric's plus the multi-hop
  // bytes.
  const auto& electrical = large_scale_result(FabricKind::kElectrical);
  EXPECT_EQ(rotor.rail_bytes, electrical.rail_bytes + rotor.multihop_bytes);
}

}  // namespace
}  // namespace opus
