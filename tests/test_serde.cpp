// config/serde: bidirectional JSON serde for every config struct.
// Pins: exact-value round trips (fixed and randomized), unknown-key /
// wrong-type / out-of-range errors carrying the exact JSON path, the
// compile-time field counts behind the orphan-knob guard, and — the core
// contract of the declarative layer — run_experiment(parse(serialize(cfg)))
// bit-identical to run_experiment(cfg) on all four fabrics.
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "config/presets.h"
#include "config/serde.h"
#include "core/experiment.h"

namespace {

using namespace opus;
using config::field_count;
using config::SerdeError;
using json::Value;

// ---- field-count pins (the compile-time orphan-knob audit) -----------------
// These mirror serde.cpp's static_asserts; a failure here means a struct
// gained/lost a field and BOTH the serializer and these pins must move.
static_assert(field_count<workload::ModelConfig> == 13);
static_assert(field_count<workload::ParallelismConfig> == 8);
static_assert(field_count<workload::GpuSpec> == 3);
static_assert(field_count<workload::IterationOptions> == 5);
static_assert(field_count<workload::IterationEngine::Options> == 3);
static_assert(field_count<core::FaultConfig> == 6);
static_assert(field_count<obs::TelemetryConfig> == 5);
static_assert(field_count<core::SweepOptions> == 2);
static_assert(field_count<core::ExperimentConfig> == 23);
static_assert(field_count<fleet::JobShape> == 4);
static_assert(field_count<fleet::ArrivalConfig> == 5);
static_assert(field_count<fleet::FleetConfig> == 7);
static_assert(field_count<core::ExperimentResult> == 18);
static_assert(field_count<fleet::FleetJobResult> == 22);
static_assert(field_count<fleet::FleetResult> == 9);

template <class T>
T round_trip(const T& v) {
  T out;
  config::from_json(json::parse(json::dump(config::to_json(v))), out);
  return out;
}

// ---- round trips -----------------------------------------------------------

TEST(Serde, DefaultConfigsSerializeEmptyAndRoundTrip) {
  EXPECT_EQ(json::dump(config::to_json(core::ExperimentConfig{}), 0), "{}");
  EXPECT_EQ(json::dump(config::to_json(fleet::FleetConfig{}), 0), "{}");
  EXPECT_EQ(round_trip(core::ExperimentConfig{}), core::ExperimentConfig{});
  EXPECT_EQ(round_trip(fleet::FleetConfig{}), fleet::FleetConfig{});
}

TEST(Serde, PresetConfigsRoundTripExactly) {
  for (const config::ExperimentPreset& p : config::experiment_presets()) {
    EXPECT_EQ(round_trip(p.config), p.config) << p.name;
  }
  for (const config::FleetPreset& p : config::fleet_presets()) {
    EXPECT_EQ(round_trip(p.config), p.config) << p.name;
  }
}

TEST(Serde, ModelPresetStringsResolve) {
  workload::ModelConfig m;
  config::from_json(json::parse("\"llama3_8b\""), m);
  EXPECT_EQ(m, workload::ModelConfig::llama3_8b());
  // An exact preset match serializes back to the bare name.
  EXPECT_EQ(json::dump(config::to_json(m), 0), "\"llama3_8b\"");
}

TEST(Serde, ModelPresetKeyAppliesFirstRegardlessOfPosition) {
  // "preset" listed AFTER the override still applies first.
  workload::ModelConfig m;
  config::from_json(json::parse(R"({"n_layers": 99, "preset": "test_tiny"})"),
                    m);
  workload::ModelConfig expect = workload::ModelConfig::test_tiny();
  expect.n_layers = 99;
  EXPECT_EQ(m, expect);
}

TEST(Serde, GpuPresetStringsResolve) {
  workload::GpuSpec g;
  config::from_json(json::parse("\"h100\""), g);
  EXPECT_EQ(g, workload::GpuSpec::h100());
  EXPECT_EQ(json::dump(config::to_json(g), 0), "\"h100\"");
}

TEST(Serde, OverrideSemanticsKeepUnmentionedFields) {
  core::ExperimentConfig cfg = config::table3_cell(64);
  const core::ExperimentConfig before = cfg;
  config::from_json(json::parse(R"({"iterations": 9})"), cfg);
  EXPECT_EQ(cfg.iterations, 9);
  cfg.iterations = before.iterations;
  EXPECT_EQ(cfg, before);  // nothing else moved
}

TEST(Serde, EnumTokensCoverAllFabrics) {
  for (net::FabricKind f :
       {net::FabricKind::kElectrical, net::FabricKind::kOpusPhotonic,
        net::FabricKind::kStaticRing, net::FabricKind::kRotor}) {
    EXPECT_EQ(config::fabric_kind_from_token(config::to_token(f), "$"), f);
  }
}

// Randomized property test: draw configs from serde-exact value pools and
// require parse(serialize(cfg)) == cfg for every one of them.
TEST(Serde, RandomizedExperimentConfigsRoundTrip) {
  Xoshiro256 rng(424242);
  const auto pick_int = [&](int lo, int hi) {
    return lo + static_cast<int>(rng.next() % (hi - lo + 1));
  };
  for (int i = 0; i < 200; ++i) {
    core::ExperimentConfig cfg;
    cfg.model = workload::ModelConfig::test_tiny();
    cfg.model.n_layers = pick_int(1, 12);
    cfg.model.hidden = 64 * pick_int(1, 8);
    cfg.parallelism.tp = 1 << (rng.next() % 3);
    cfg.parallelism.dp = pick_int(1, 16);
    cfg.parallelism.pp = pick_int(1, 4);
    cfg.parallelism.n_microbatches = pick_int(1, 8);
    cfg.gpus_per_node = pick_int(1, 8);
    cfg.fabric = static_cast<net::FabricKind>(rng.next() % 4);
    cfg.rotor_slot_time = msecs(pick_int(1, 20));
    cfg.rotor_port_spread = pick_int(1, 4);
    cfg.nic_ports = pick_int(1, 4);
    // Quarter-gbps grid: exact through the gbps <-> bits/s double round
    // trip (the serde key is *_gbps).
    cfg.nic_total_bw = Bandwidth::gbps(pick_int(1, 3200) * 0.25);
    cfg.nvlink_bw = Bandwidth::gbps(pick_int(1, 9600) * 0.25);
    cfg.mgmt_bw = Bandwidth::gbps(pick_int(0, 400) * 0.25);
    cfg.ocs_reconfig_delay = usecs(pick_int(0, 50000));
    cfg.gpu = (rng.next() & 1) ? workload::GpuSpec::h100()
                               : workload::GpuSpec::a100();
    cfg.mfu = pick_int(1, 64) / 64.0;
    cfg.activation_recompute = (rng.next() & 1) != 0;
    cfg.iteration.pipeline_schedule = (rng.next() & 1)
                                          ? workload::PipelineSchedule::k1F1B
                                          : workload::PipelineSchedule::kGpipe;
    cfg.engine.seed = rng.next() >> 1;  // keep within the JSON int range
    cfg.provisioning = (rng.next() & 1) != 0;
    cfg.mgmt_offload_threshold = static_cast<Bytes>(rng.next() % (1 << 20));
    cfg.iterations = pick_int(1, 5);
    cfg.record_compute_trace = (rng.next() & 1) != 0;
    cfg.eager_fabric_wiring = (rng.next() & 1) != 0;
    cfg.faults.enabled = (rng.next() & 1) != 0;
    cfg.faults.mtbf_per_port = msecs(pick_int(1, 100));
    cfg.faults.seed = rng.next() >> 1;
    cfg.faults.max_failures = pick_int(0, 128);
    EXPECT_EQ(round_trip(cfg), cfg) << "draw " << i;
  }
}

TEST(Serde, RandomizedFleetConfigsRoundTrip) {
  Xoshiro256 rng(777);
  for (int i = 0; i < 100; ++i) {
    fleet::FleetConfig cfg;
    cfg.n_nodes = 1 + static_cast<int>(rng.next() % 512);
    cfg.base.fabric = static_cast<net::FabricKind>(rng.next() % 4);
    cfg.policy = (rng.next() & 1) ? fleet::PlacementPolicy::kRailAware
                                  : fleet::PlacementPolicy::kFirstFit;
    cfg.isolated_baselines = (rng.next() & 1) != 0;
    cfg.arrivals.seed = rng.next() >> 1;
    cfg.arrivals.n_jobs = static_cast<int>(rng.next() % 64);
    cfg.arrivals.mean_interarrival = msecs(1 + rng.next() % 50);
    if (rng.next() & 1) {
      fleet::JobShape shape;
      shape.name = "shape_" + std::to_string(i);
      shape.model = workload::ModelConfig::test_tiny();
      shape.parallelism.dp = 2;
      shape.weight = (1 + static_cast<int>(rng.next() % 8)) * 0.5;
      cfg.arrivals.shapes.push_back(shape);
    }
    cfg.baseline_sweep.threads = static_cast<int>(rng.next() % 8);
    EXPECT_EQ(round_trip(cfg), cfg) << "draw " << i;
  }
}

// ---- error paths -----------------------------------------------------------

template <class Fn>
std::string serde_error_path(Fn&& fn) {
  try {
    fn();
  } catch (const SerdeError& e) {
    return e.path();
  }
  return "<no error>";
}

TEST(SerdeErrors, UnknownKeyReportsExactPath) {
  EXPECT_EQ(serde_error_path([] {
              config::experiment_from_json(
                  json::parse(R"({"model": {"n_layrs": 4}})"));
            }),
            "$.model.n_layrs");
  EXPECT_EQ(serde_error_path([] {
              config::fleet_from_json(json::parse(
                  R"({"arrivals": {"shapes": [{"wieght": 2}]}})"));
            }),
            "$.arrivals.shapes[0].wieght");
}

TEST(SerdeErrors, WrongTypeReportsExactPath) {
  EXPECT_EQ(serde_error_path([] {
              config::experiment_from_json(
                  json::parse(R"({"parallelism": {"dp": "four"}})"));
            }),
            "$.parallelism.dp");
  // A double literal is not an integer field value.
  EXPECT_EQ(serde_error_path([] {
              config::experiment_from_json(
                  json::parse(R"({"iterations": 2.0})"));
            }),
            "$.iterations");
  // But an integer literal IS a valid double field value.
  core::ExperimentConfig cfg =
      config::experiment_from_json(json::parse(R"({"mfu": 1})"));
  EXPECT_DOUBLE_EQ(cfg.mfu, 1.0);
}

TEST(SerdeErrors, OutOfRangeReportsExactPath) {
  EXPECT_EQ(serde_error_path([] {
              config::experiment_from_json(json::parse(R"({"mfu": 1.5})"));
            }),
            "$.mfu");
  EXPECT_EQ(serde_error_path([] {
              config::experiment_from_json(
                  json::parse(R"({"parallelism": {"tp": 0}})"));
            }),
            "$.parallelism.tp");
  EXPECT_EQ(serde_error_path([] {
              config::experiment_from_json(
                  json::parse(R"({"nic_total_bw_gbps": -1})"));
            }),
            "$.nic_total_bw_gbps");
  EXPECT_EQ(serde_error_path([] {
              config::experiment_from_json(
                  json::parse(R"({"engine": {"seed": -1}})"));
            }),
            "$.engine.seed");
}

TEST(SerdeErrors, UnknownEnumTokenAndPresetNamed) {
  EXPECT_EQ(serde_error_path([] {
              config::experiment_from_json(
                  json::parse(R"({"fabric": "warp"})"));
            }),
            "$.fabric");
  EXPECT_EQ(serde_error_path([] {
              config::experiment_from_json(
                  json::parse(R"({"model": "llama9000"})"));
            }),
            "$.model");
}

// ---- the core contract: the JSON path IS the compiled-in path --------------

TEST(SerdeEndToEnd, RunExperimentBitIdenticalThroughJsonOnAllFabrics) {
  for (net::FabricKind fabric :
       {net::FabricKind::kElectrical, net::FabricKind::kOpusPhotonic,
        net::FabricKind::kStaticRing, net::FabricKind::kRotor}) {
    core::ExperimentConfig cfg = config::table3_cell(8);
    cfg.fabric = fabric;
    core::ExperimentConfig from_json_cfg;
    config::from_json(json::parse(json::dump(config::to_json(cfg))),
                      from_json_cfg);
    ASSERT_EQ(from_json_cfg, cfg) << config::to_token(fabric);

    const core::ExperimentResult direct = core::run_experiment(cfg);
    const core::ExperimentResult via_json =
        core::run_experiment(from_json_cfg);
    // Bit-identical result documents (covers every serialized field).
    EXPECT_EQ(json::dump(config::to_json(direct)),
              json::dump(config::to_json(via_json)))
        << config::to_token(fabric);
  }
}

}  // namespace
