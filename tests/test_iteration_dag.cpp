// Tests for the 1F1B training-iteration DAG builder: structure, dependency
// correctness, phase ordering, and option handling.
#include <gtest/gtest.h>

#include <set>

#include "workload/iteration.h"

namespace opus::workload {
namespace {

using collective::CollectiveType;
using collective::ParallelismDim;

struct DagFixture {
  DagFixture(ParallelismConfig p, ModelConfig m = ModelConfig::llama3_8b(),
             IterationOptions opts = {})
      : par(p),
        model(std::move(m)),
        mapper(par, gpn(p)),
        compute(GpuSpec::a100(), 0.35, true),
        dag(build_training_iteration(model, par, mapper, compute, opts)) {}

  static int gpn(const ParallelismConfig& p) {
    return std::min(p.tp * p.cp, p.world_size());
  }

  int count_collectives(CollectiveType type) const {
    int n = 0;
    for (const auto& op : dag.ops) {
      if (op.kind == OpKind::kCollective && op.ctype == type) ++n;
    }
    return n;
  }
  int count_computes() const {
    int n = 0;
    for (const auto& op : dag.ops)
      if (op.kind == OpKind::kCompute) ++n;
    return n;
  }

  ParallelismConfig par;
  ModelConfig model;
  RankMapper mapper;
  ComputeModel compute;
  IterationDag dag;
};

ParallelismConfig paper_config() {
  ParallelismConfig p;
  p.tp = 4;
  p.dp = 2;
  p.pp = 2;
  p.n_microbatches = 8;
  p.microbatch_size = 2;
  return p;
}

TEST(IterationDag, ValidatesAndHasExpectedShape) {
  DagFixture f(paper_config());
  f.dag.validate();
  // Per (d,s): 16 layers x 8 microbatches x fwd+bwd = 256 compute ops, plus
  // one optimizer per (d,s): 4 x 256 + 4 = 1028.
  EXPECT_EQ(f.count_computes(), 1028);
  // FSDP: one AllGather per layer per stage.
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllGather), 32);
  EXPECT_EQ(f.count_collectives(CollectiveType::kReduceScatter), 32);
  // PP: (pp-1) boundaries x 8 microbatches x dp 2 x 2 directions = 32.
  EXPECT_EQ(f.count_collectives(CollectiveType::kSendRecv), 32);
  // Sync ARs: one DP + one PP.
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllReduce), 2);
}

TEST(IterationDag, FirstMicrobatchForwardDependsOnAllGather) {
  DagFixture f(paper_config());
  for (const auto& op : f.dag.ops) {
    if (op.kind != OpKind::kCompute || op.label.rfind("F[", 0) != 0) continue;
    if (op.microbatch != 0) continue;
    bool depends_on_ag = false;
    for (OpId d : op.deps) {
      if (f.dag.op(d).ctype == CollectiveType::kAllGather &&
          f.dag.op(d).kind == OpKind::kCollective &&
          f.dag.op(d).layer == op.layer &&
          f.dag.op(d).pp_stage == op.pp_stage) {
        depends_on_ag = true;
      }
    }
    EXPECT_TRUE(depends_on_ag) << op.label;
  }
}

TEST(IterationDag, LazyAllGatherForLaterStages) {
  DagFixture f(paper_config());
  // Stage 1's first AllGather depends on a pipeline Send/Recv (lazy DTensor,
  // §3.1); stage 0's does not.
  for (const auto& op : f.dag.ops) {
    if (op.kind != OpKind::kCollective ||
        op.ctype != CollectiveType::kAllGather || op.layer != 0) {
      continue;
    }
    bool dep_on_sr = false;
    for (OpId d : op.deps) {
      if (f.dag.op(d).ctype == CollectiveType::kSendRecv) dep_on_sr = true;
    }
    EXPECT_EQ(dep_on_sr, op.pp_stage > 0) << op.label;
  }
}

TEST(IterationDag, ReduceScatterWaitsForStageBackward) {
  DagFixture f(paper_config());
  const int M = f.par.n_microbatches;
  for (const auto& op : f.dag.ops) {
    if (op.kind != OpKind::kCollective ||
        op.ctype != CollectiveType::kReduceScatter) {
      continue;
    }
    if (op.layer != 15) continue;  // chain heads
    int bwd_deps = 0;
    for (OpId d : op.deps) {
      const auto& dep_op = f.dag.op(d);
      if (dep_op.kind == OpKind::kCompute && dep_op.microbatch == M - 1) {
        ++bwd_deps;
      }
    }
    EXPECT_EQ(bwd_deps, f.par.dp) << op.label
                                  << ": RS head must wait for every "
                                     "replica's last-microbatch backward";
  }
}

TEST(IterationDag, PayloadsIncludeEmbeddingOnBoundaryStages) {
  DagFixture f(paper_config());
  CommVolumeModel vol(f.model, f.par);
  Bytes ag_stage0 = 0;
  Bytes rs_stage0 = 0;
  for (const auto& op : f.dag.ops) {
    if (op.kind != OpKind::kCollective || op.pp_stage != 0) continue;
    if (op.ctype == CollectiveType::kAllGather) ag_stage0 += op.payload;
    if (op.ctype == CollectiveType::kReduceScatter) rs_stage0 += op.payload;
  }
  EXPECT_EQ(ag_stage0, 16 * vol.fsdp_allgather_per_layer() +
                           vol.embedding_half_ag());
  EXPECT_EQ(rs_stage0, 16 * vol.fsdp_reducescatter_per_layer() +
                           vol.embedding_half_rs());
}

TEST(IterationDag, UnevenStagesSplitLikeTorchTitan) {
  EXPECT_EQ(layers_of_stage(32, 3, 0), 11);
  EXPECT_EQ(layers_of_stage(32, 3, 1), 11);
  EXPECT_EQ(layers_of_stage(32, 3, 2), 10);
  EXPECT_EQ(layers_of_stage(32, 1, 0), 32);
  // PP=3 config builds and validates (Fig. 3b).
  ParallelismConfig p = paper_config();
  p.pp = 3;
  DagFixture f(p);
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllGather), 32);
}

TEST(IterationDag, PlainDpUsesAllReduceInsteadOfFsdp) {
  ParallelismConfig p = paper_config();
  p.fsdp = false;
  DagFixture f(p);
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllGather), 0);
  EXPECT_EQ(f.count_collectives(CollectiveType::kReduceScatter), 0);
  // 32 per-layer gradient ARs + 2 sync ARs.
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllReduce), 34);
}

TEST(IterationDag, NoDpMeansNoDataParallelTraffic) {
  ParallelismConfig p;
  p.tp = 4;
  p.pp = 4;
  p.n_microbatches = 4;
  DagFixture f(p);
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllGather), 0);
  EXPECT_EQ(f.count_collectives(CollectiveType::kReduceScatter), 0);
  // Only the PP sync AllReduce remains.
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllReduce), 1);
}

TEST(IterationDag, SimulatedTpEmitsPerLayerAllReduces) {
  ParallelismConfig p = paper_config();
  p.n_microbatches = 2;
  IterationOptions opts;
  opts.simulate_tp_comm = true;
  DagFixture f(p, ModelConfig::llama3_8b(), opts);
  // 2 TP ARs per (d,s,m,l) pair of passes: dp2 x pp2(16 layers) x mb2 x 2.
  const int tp_ars = 2 * 2 * 16 * 2 * 2;
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllReduce), tp_ars + 2);
}

TEST(IterationDag, FoldedTpInflatesComputeDurations) {
  ParallelismConfig p = paper_config();
  IterationOptions folded;
  folded.simulate_tp_comm = false;
  IterationOptions simulated;
  simulated.simulate_tp_comm = true;
  DagFixture ff(p, ModelConfig::llama3_8b(), folded);
  DagFixture fs(p, ModelConfig::llama3_8b(), simulated);
  TimeNs folded_fwd = 0;
  TimeNs simulated_fwd = 0;
  for (const auto& op : ff.dag.ops) {
    if (op.label == "F[d0,s0,m0,l1]") folded_fwd = op.duration;
  }
  for (const auto& op : fs.dag.ops) {
    if (op.label == "F[d0,s0,m0,l1]") simulated_fwd = op.duration;
  }
  EXPECT_GT(folded_fwd, simulated_fwd);
}

TEST(IterationDag, MoeExpertParallelEmitsAllToAll) {
  ParallelismConfig p;
  p.tp = 4;
  p.dp = 4;
  p.ep = 4;
  p.pp = 1;
  p.n_microbatches = 2;
  DagFixture f(p, ModelConfig::mixtral_8x7b());
  // Per layer per microbatch, forward + backward: 32 x 2 x 2 = 128.
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllToAll), 128);
}

TEST(IterationDag, DenseModelIgnoresEpFlag) {
  ParallelismConfig p;
  p.tp = 4;
  p.dp = 4;
  p.ep = 4;
  p.pp = 1;
  p.n_microbatches = 2;
  DagFixture f(p, ModelConfig::llama3_8b());
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllToAll), 0);
}

TEST(IterationDag, PipelinePairGroupsShareIdAcrossDirections) {
  DagFixture f(paper_config());
  // For each unordered pipeline pair, both orientations share one GroupId.
  std::map<GroupId, std::set<std::pair<int, int>>> by_id;
  for (const auto& g : f.dag.groups) {
    if (g.dim != ParallelismDim::kPP) continue;
    by_id[g.id].insert({g.ranks[0].value(), g.ranks[1].value()});
  }
  for (const auto& [id, pairs] : by_id) {
    EXPECT_LE(pairs.size(), 2u);
    if (pairs.size() == 2) {
      const auto a = *pairs.begin();
      const auto b = *std::next(pairs.begin());
      EXPECT_EQ(a.first, b.second);
      EXPECT_EQ(a.second, b.first);
    }
  }
}

TEST(IterationDag, BackwardRegatherOptionAddsAllGathers) {
  ParallelismConfig p = paper_config();
  IterationOptions opts;
  opts.bwd_regather = true;
  DagFixture f(p, ModelConfig::llama3_8b(), opts);
  EXPECT_EQ(f.count_collectives(CollectiveType::kAllGather), 64);  // fwd+bwd
}


TEST(IterationDag, GpipeScheduleBuildsAndHasSameOpCount) {
  ParallelismConfig p = paper_config();
  IterationOptions opts;
  opts.pipeline_schedule = PipelineSchedule::kGpipe;
  DagFixture gpipe(p, ModelConfig::llama3_8b(), opts);
  DagFixture fifb(p);
  gpipe.dag.validate();
  EXPECT_EQ(gpipe.count_computes(), fifb.count_computes());
  EXPECT_EQ(gpipe.count_collectives(CollectiveType::kSendRecv),
            fifb.count_collectives(CollectiveType::kSendRecv));
}

TEST(IterationDag, GpipeRunsForwardsBeforeBackwards) {
  ParallelismConfig p = paper_config();
  p.n_microbatches = 4;
  IterationOptions opts;
  opts.pipeline_schedule = PipelineSchedule::kGpipe;
  DagFixture f(p, ModelConfig::llama3_8b(), opts);
  // In GPipe, no backward of stage 0 may be a (transitive) prerequisite of
  // a forward: check directly that B[m0] depends on F[m3] via the program
  // chain (the last fwd precedes the first bwd).
  OpId first_bwd{};
  OpId last_fwd{};
  for (const auto& op : f.dag.ops) {
    if (op.label == "B[d0,s0,m0,l15]") first_bwd = op.id;
    if (op.label == "F[d0,s0,m3,l15]") last_fwd = op.id;
  }
  ASSERT_TRUE(first_bwd.valid());
  ASSERT_TRUE(last_fwd.valid());
  bool chained = false;
  for (OpId d : f.dag.op(first_bwd).deps) {
    // B[m0,l15] is the first bwd op; its program-prev is the last op of the
    // final fwd slot, F[m3,l15].
    if (d == last_fwd) chained = true;
  }
  EXPECT_TRUE(chained);
}

// Parameterized structural sweep across parallelism shapes.
class DagSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DagSweep, BuildsValidDag) {
  const auto [tp, dp, pp] = GetParam();
  ParallelismConfig p;
  p.tp = tp;
  p.dp = dp;
  p.pp = pp;
  p.n_microbatches = std::max(4, pp);
  ModelConfig m = ModelConfig::test_tiny();
  m.n_layers = 12;
  DagFixture f(p, m);
  f.dag.validate();
  EXPECT_GT(f.dag.size(), 0u);
  const int total_layers = 12;
  const int expected_computes =
      dp * p.n_microbatches * total_layers * 2 + dp * pp;
  EXPECT_EQ(f.count_computes(), expected_computes);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DagSweep,
    ::testing::Values(std::tuple{1, 2, 2}, std::tuple{2, 2, 2},
                      std::tuple{4, 2, 3}, std::tuple{4, 4, 1},
                      std::tuple{2, 1, 4}, std::tuple{1, 1, 2},
                      std::tuple{4, 2, 4}, std::tuple{8, 2, 2}));

}  // namespace
}  // namespace opus::workload
