// CSV export tests and failure-injection integration tests (link
// degradation mid-training on the fluid substrate).
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "trace/export.h"
#include "trace/windows.h"

namespace opus {
namespace {

trace::CommRecord make_rec(TimeNs issue, TimeNs end, Bytes payload) {
  trace::CommRecord r;
  r.iteration = 1;
  r.rail = RailId{0};
  r.group = GroupId{7};
  r.dim = collective::ParallelismDim::kDP;
  r.type = collective::CollectiveType::kAllGather;
  r.payload = payload;
  r.t_issue = issue;
  r.t_end = end;
  r.scale_out = true;
  return r;
}

TEST(Export, CommsCsvHasHeaderAndRows) {
  const std::string csv =
      trace::comms_to_csv({make_rec(10, 20, 100), make_rec(30, 40, 200)});
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line,
            "iteration,rail,group,dim,type,payload_bytes,issue_ns,end_ns,"
            "scale_out");
  std::getline(is, line);
  EXPECT_EQ(line, "1,0,7,DP,AllGather,100,10,20,1");
  std::getline(is, line);
  EXPECT_EQ(line, "1,0,7,DP,AllGather,200,30,40,1");
}

TEST(Export, WindowsCsvRoundTripsAnalysis) {
  std::vector<trace::CommRecord> comms = {make_rec(0, msecs(1), 100)};
  trace::CommRecord pp = make_rec(msecs(5), msecs(6), 64);
  pp.dim = collective::ParallelismDim::kPP;
  pp.group = GroupId{8};
  comms.push_back(pp);
  const auto windows = trace::extract_windows(comms);
  const std::string csv = trace::windows_to_csv(windows);
  EXPECT_NE(csv.find("size_ms"), std::string::npos);
  EXPECT_NE(csv.find("DP,PP,64"), std::string::npos);
}

TEST(Export, CdfCsvIsMonotone) {
  Cdf cdf;
  cdf.add_all({3.0, 1.0, 2.0});
  const std::string csv = trace::cdf_to_csv(cdf);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);  // header
  double prev_value = -1;
  double prev_frac = 0;
  while (std::getline(is, line)) {
    const auto comma = line.find(',');
    const double value = std::stod(line.substr(0, comma));
    const double frac = std::stod(line.substr(comma + 1));
    EXPECT_GE(value, prev_value);
    EXPECT_GT(frac, prev_frac);
    prev_value = value;
    prev_frac = frac;
  }
  EXPECT_DOUBLE_EQ(prev_frac, 1.0);
}

TEST(FailureInjection, DegradedNvlinkSlowsScaleUpTransfers) {
  sim::Simulator sim;
  net::ClusterConfig cfg;
  cfg.n_nodes = 1;
  cfg.gpus_per_node = 2;
  cfg.fabric = net::FabricKind::kElectrical;
  net::Cluster c(sim, cfg);
  TimeNs healthy = -1;
  c.transfer(GpuId{0}, GpuId{1}, 300'000'000, [&] { healthy = sim.now(); });
  sim.run();
  // Degrade every NVLink to half bandwidth and repeat: twice as slow.
  for (std::size_t l = 0; l < c.network().link_count(); ++l) {
    const LinkId link{static_cast<std::int32_t>(l)};
    c.network().set_capacity(link, c.network().capacity(link) / 2.0);
  }
  const TimeNs t0 = sim.now();
  TimeNs degraded = -1;
  c.transfer(GpuId{0}, GpuId{1}, 300'000'000, [&] { degraded = sim.now(); });
  sim.run();
  EXPECT_NEAR(static_cast<double>(degraded - t0),
              2.0 * static_cast<double>(healthy), 1e4);
}

TEST(FailureInjection, DarkRailCircuitStallsUntilRestored) {
  // A circuit whose fiber degrades to zero capacity stalls its flow; the
  // flow resumes when capacity returns (e.g. after re-splicing) without
  // losing progress.
  sim::Simulator sim;
  net::ClusterConfig cfg;
  cfg.n_nodes = 2;
  cfg.gpus_per_node = 1;
  cfg.nic_ports = 2;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  net::Cluster c(sim, cfg);
  c.ocs(RailId{0}).force_circuits(
      {{c.ocs_port(GpuId{0}, 0), c.ocs_port(GpuId{1}, 1)}});
  const LinkId circuit =
      c.ocs(RailId{0}).link(c.ocs_port(GpuId{0}, 0), c.ocs_port(GpuId{1}, 1));
  TimeNs done = -1;
  // 50 MB at 200 Gb/s = 2 ms.
  c.transfer(GpuId{0}, GpuId{1}, 50'000'000, [&] { done = sim.now(); });
  sim.run_until(msecs(1));  // half transferred
  c.network().set_capacity(circuit, Bandwidth::gbps(0));
  sim.run_until(msecs(100));
  EXPECT_EQ(done, -1);
  c.network().set_capacity(circuit, Bandwidth::gbps(200));
  sim.run();
  EXPECT_EQ(done, msecs(100) + msecs(1) + usecs(2));
}

TEST(FailureInjection, TrainingSurvivesRailDegradation) {
  // Degrade one rail's circuits to quarter bandwidth mid-run: iterations
  // complete, later iterations are slower (comm less hideable).
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::test_tiny();
  cfg.model.n_layers = 8;
  cfg.parallelism.tp = 2;
  cfg.parallelism.dp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.n_microbatches = 4;
  cfg.parallelism.microbatch_size = 1;
  cfg.gpus_per_node = 2;
  cfg.iterations = 3;
  cfg.fabric = net::FabricKind::kElectrical;
  cfg.record_compute_trace = false;
  const auto healthy = core::run_experiment(cfg);

  // The experiment harness owns its cluster, so emulate degradation by
  // quartering the NIC bandwidth instead (equivalent fluid effect).
  cfg.nic_total_bw = Bandwidth::gbps(100);
  const auto degraded = core::run_experiment(cfg);
  EXPECT_GT(degraded.steady_iteration_time, healthy.steady_iteration_time);
}

}  // namespace
}  // namespace opus
