// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, and the run_until / run_steps contracts.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "sim/simulator.h"

namespace opus::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimestampFiresInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimeNs inner_fired = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { inner_fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fired, 150);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(50, [] {}), InvariantError);
}

TEST(Simulator, EmptyCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1, Simulator::Callback{}), InvariantError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelledEventDoesNotBlockQueue) {
  Simulator sim;
  std::vector<int> order;
  sim.cancel(sim.schedule_at(5, [&] { order.push_back(0); }));
  sim.schedule_at(10, [&] { order.push_back(1); });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  std::vector<TimeNs> fired;
  for (TimeNs t : {10, 20, 30, 40}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.run_until(25), 2u);
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 20}));
  EXPECT_EQ(sim.now(), 25);  // clock advanced to the limit
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilIncludesEventsAtLimit) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(25, [&] { fired = true; });
  sim.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunStepsExecutesBoundedCount) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(i + 1, [&] { ++count; });
  }
  EXPECT_EQ(sim.run_steps(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
  EXPECT_EQ(sim.events_fired(), 100u);
}

// ---- Calendar-queue specifics ----------------------------------------------
// The engine files events into hierarchical 64-wide wheels; the tests below
// pin the behaviors the structure must preserve: same-instant FIFO even when
// the entries were filed into different wheels, overflow clamping at the
// deepest wheel, and re-filing when an insert lands before the calendar's
// settled origin (the run_until peek-then-schedule pattern).

TEST(Simulator, SameInstantFifoAcrossWheelLevels) {
  Simulator sim;
  std::vector<int> order;
  // Filed far ahead (a high wheel relative to base 0)...
  sim.schedule_at(1'000'000, [&] { order.push_back(0); });
  sim.schedule_at(1'000'000, [&] { order.push_back(1); });
  // ...then fire an intermediate event so later same-instant schedules are
  // filed much closer to the target (a lower wheel).
  sim.schedule_at(999'999, [&] {
    sim.schedule_at(1'000'000, [&] { order.push_back(2); });
    sim.schedule_at(1'000'000, [&] { order.push_back(3); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, ScheduleAfterClampsOverflowToMaxTime) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  ASSERT_EQ(sim.now(), 10);
  TimeNs fired_at = -1;
  // now() + kMaxTime overflows TimeNs; the event must land exactly at the
  // clamp, in the calendar's deepest wheel, and still fire.
  const EventId id = sim.schedule_after(Simulator::kMaxTime,
                                        [&] { fired_at = sim.now(); });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired_at, Simulator::kMaxTime);
  EXPECT_EQ(sim.now(), Simulator::kMaxTime);
}

TEST(Simulator, ScheduleAfterExactHorizonDoesNotClamp) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  TimeNs fired_at = -1;
  sim.schedule_after(Simulator::kMaxTime - sim.now(),
                     [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, Simulator::kMaxTime);
}

TEST(Simulator, EventIdsAreDistinctAndUnknownIdsAreNotPending) {
  Simulator sim;
  EXPECT_FALSE(sim.pending(EventId{}));        // invalid id
  EXPECT_FALSE(sim.pending(EventId{12345}));   // never issued
  EXPECT_FALSE(sim.cancel(EventId{12345}));
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(sim.schedule_at(i, [] {}));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_TRUE(ids[i].valid());
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]);
    }
  }
  sim.run();
  // Ids issued after a drain do not collide with already-fired ones.
  const EventId later = sim.schedule_at(1000, [] {});
  for (const EventId id : ids) EXPECT_NE(later, id);
}

TEST(Simulator, ScheduleBeforeSettledOriginAfterRunUntilPeek) {
  Simulator sim;
  std::vector<TimeNs> fired;
  // Park a far-future event, then peek with run_until: settling walks the
  // calendar origin up toward the pending event (past 50).
  sim.schedule_at(1'000'000, [&] { fired.push_back(sim.now()); });
  EXPECT_EQ(sim.run_until(50), 0u);
  EXPECT_EQ(sim.now(), 50);
  // Now schedule between now() and the settled origin — the calendar must
  // re-file (rebase) rather than mis-bucket or drop the entry.
  sim.schedule_at(100, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(1'000'000, [&] { fired.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<TimeNs>{100, 1'000'000, 1'000'000}));
}

TEST(Simulator, SameInstantFifoSurvivesRebase) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1'000'000, [&] { order.push_back(0); });
  sim.run_until(50);  // peek: origin settles near the pending event
  sim.schedule_at(100, [&] { order.push_back(-1); });  // forces the rebase
  sim.schedule_at(1'000'000, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1}));
}

TEST(Simulator, CancelWithinSameInstantBucketSkipsTombstone) {
  Simulator sim;
  std::vector<int> order;
  EventId victim{};
  sim.schedule_at(5, [&] {
    order.push_back(0);
    sim.cancel(victim);  // tombstones a later entry of the firing bucket
  });
  victim = sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Simulator, MidDrainSameInstantAppendFiresLast) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(sim.run_steps(1), 1u);
  EXPECT_EQ(sim.now(), 5);
  // Appending at the instant currently being drained: FIFO puts it after the
  // bucket's remaining entries.
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(i % 7, [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace opus::sim
