// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, and the run_until / run_steps contracts.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "sim/simulator.h"

namespace opus::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimestampFiresInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimeNs inner_fired = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { inner_fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fired, 150);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(50, [] {}), InvariantError);
}

TEST(Simulator, EmptyCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1, Simulator::Callback{}), InvariantError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelledEventDoesNotBlockQueue) {
  Simulator sim;
  std::vector<int> order;
  sim.cancel(sim.schedule_at(5, [&] { order.push_back(0); }));
  sim.schedule_at(10, [&] { order.push_back(1); });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  std::vector<TimeNs> fired;
  for (TimeNs t : {10, 20, 30, 40}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.run_until(25), 2u);
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 20}));
  EXPECT_EQ(sim.now(), 25);  // clock advanced to the limit
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilIncludesEventsAtLimit) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(25, [&] { fired = true; });
  sim.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunStepsExecutesBoundedCount) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(i + 1, [&] { ++count; });
  }
  EXPECT_EQ(sim.run_steps(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
  EXPECT_EQ(sim.events_fired(), 100u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(i % 7, [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace opus::sim
