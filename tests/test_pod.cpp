// Tests for the multi-pod fabric layer: several rail-optimized pods on one
// simulator + one fluid network, stitched by lazily materialized trunks.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/experiment.h"
#include "net/pod.h"

namespace opus {
namespace {

net::MultiPodConfig pod_cfg(int n_pods, int nodes_per_pod,
                            net::FabricKind fabric) {
  net::MultiPodConfig cfg;
  cfg.n_pods = n_pods;
  cfg.pod.n_nodes = nodes_per_pod;
  cfg.pod.gpus_per_node = 2;
  cfg.pod.nic_ports = 2;
  cfg.pod.fabric = fabric;
  cfg.trunk_bw = Bandwidth::gbps(800);
  cfg.trunk_latency = usecs(5);
  return cfg;
}

TEST(MultiPod, IdlePodsMaterializeNoFluidLinks) {
  sim::Simulator sim;
  net::MultiPodFabric fabric(
      sim, pod_cfg(4, 64, net::FabricKind::kElectrical));
  // Lazy wiring end to end: 4 pods x 64 nodes of NVLink, rail, and trunk
  // plumbing exist as id tables only — not one solver-visible link.
  EXPECT_EQ(fabric.network().link_count(), 0u);
  EXPECT_EQ(fabric.trunk_link_count(), 0u);
  // Every pod shares the fabric's data plane.
  for (int p = 0; p < fabric.n_pods(); ++p) {
    EXPECT_EQ(&fabric.pod(PodId{p}).network(), &fabric.network());
  }
}

TEST(MultiPod, CrossPodTransferMovesBytesOverLazyTrunks) {
  sim::Simulator sim;
  net::MultiPodFabric fabric(sim,
                             pod_cfg(2, 4, net::FabricKind::kElectrical));
  const GpuId src = fabric.pod(PodId{0}).gpu_at(NodeId{0}, 0);
  const GpuId dst = fabric.pod(PodId{1}).gpu_at(NodeId{2}, 0);
  const Bytes bytes = 4000;
  TimeNs done = -1;
  fabric.transfer(PodId{0}, src, PodId{1}, dst, bytes,
                  [&] { done = sim.now(); });
  sim.run();
  // 800 Gb/s = 100 B/ns: 40 ns of serialization + 5 us of trunk latency.
  EXPECT_EQ(done, 40 + usecs(5));
  EXPECT_EQ(fabric.cross_pod_bytes(), bytes);
  // Exactly the two trunk directions the flow crossed materialized.
  EXPECT_EQ(fabric.trunk_link_count(), 2u);
  EXPECT_EQ(fabric.network().link_count(), 2u);
}

TEST(MultiPod, SharedTrunkDirectionHalvesThroughput) {
  sim::Simulator sim;
  net::MultiPodFabric fabric(sim,
                             pod_cfg(2, 4, net::FabricKind::kElectrical));
  net::Cluster& p0 = fabric.pod(PodId{0});
  net::Cluster& p1 = fabric.pod(PodId{1});
  const Bytes bytes = 4000;
  TimeNs done_a = -1;
  TimeNs done_b = -1;
  // Two flows out of pod 0 on rail 0 share pod 0's egress trunk (and pod
  // 1's ingress): each runs at half rate.
  fabric.transfer(PodId{0}, p0.gpu_at(NodeId{0}, 0), PodId{1},
                  p1.gpu_at(NodeId{0}, 0), bytes, [&] { done_a = sim.now(); });
  fabric.transfer(PodId{0}, p0.gpu_at(NodeId{1}, 0), PodId{1},
                  p1.gpu_at(NodeId{1}, 0), bytes, [&] { done_b = sim.now(); });
  sim.run();
  EXPECT_EQ(done_a, 80 + usecs(5));
  EXPECT_EQ(done_b, 80 + usecs(5));
  EXPECT_EQ(fabric.trunk_link_count(), 2u);
}

TEST(MultiPod, CrossRankCrossPodBridgesOverScaleUp) {
  sim::Simulator sim;
  net::MultiPodFabric fabric(sim,
                             pod_cfg(2, 4, net::FabricKind::kElectrical));
  net::Cluster& p0 = fabric.pod(PodId{0});
  net::Cluster& p1 = fabric.pod(PodId{1});
  const GpuId src = p0.gpu_at(NodeId{0}, 0);   // rank 0
  const GpuId dst = p1.gpu_at(NodeId{1}, 1);   // rank 1: needs a bridge
  const Bytes bytes = 1 << 20;
  bool done = false;
  fabric.transfer(PodId{0}, src, PodId{1}, dst, bytes, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  // The PXN-style bridge hop is charged to the source pod's scale-up domain.
  EXPECT_EQ(p0.bytes_on_route(net::Cluster::Route::kScaleUp), bytes);
  EXPECT_EQ(fabric.cross_pod_bytes(), bytes);
}

TEST(MultiPod, SamePodTransferDelegatesToTheCluster) {
  sim::Simulator sim;
  net::MultiPodFabric fabric(sim,
                             pod_cfg(2, 4, net::FabricKind::kElectrical));
  net::Cluster& p0 = fabric.pod(PodId{0});
  const Bytes bytes = 1 << 16;
  bool done = false;
  fabric.transfer(PodId{0}, p0.gpu_at(NodeId{0}, 0), PodId{0},
                  p0.gpu_at(NodeId{1}, 0), bytes, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(p0.bytes_on_route(net::Cluster::Route::kRail), bytes);
  EXPECT_EQ(fabric.cross_pod_bytes(), 0);
  EXPECT_EQ(fabric.trunk_link_count(), 0u);
}

TEST(MultiPod, InvalidPodIdThrows) {
  sim::Simulator sim;
  net::MultiPodFabric fabric(sim,
                             pod_cfg(2, 4, net::FabricKind::kElectrical));
  EXPECT_THROW(fabric.pod(PodId{2}), InvariantError);
  EXPECT_THROW(fabric.pod(PodId{}), InvariantError);
}

// One experiment, several pods: two tenants running the same job on two
// pods of one fabric (one simulator, one fluid network) finish in exactly
// the isolated single-cluster time — pods share the data plane object but
// no links, so neither perturbs the other.
TEST(MultiPod, TenantsOnSeparatePodsMatchIsolatedRuns) {
  core::ExperimentConfig job;
  job.model = workload::ModelConfig::test_tiny();
  job.parallelism.tp = 2;
  job.parallelism.dp = 4;
  job.gpus_per_node = 2;
  job.fabric = net::FabricKind::kElectrical;
  job.iterations = 2;
  job.record_compute_trace = false;
  const std::vector<TimeNs> isolated =
      core::run_experiment(job).iteration_times;

  sim::Simulator sim;
  net::MultiPodConfig cfg;
  cfg.n_pods = 2;
  cfg.pod = core::cluster_config_for(job);
  net::MultiPodFabric fabric(sim, cfg);
  std::vector<core::Tenant> tenants;
  for (int p = 0; p < 2; ++p) {
    tenants.push_back(core::build_tenant(
        sim, fabric.pod(PodId{p}), job,
        net::NodeSpan{0, fabric.pod(PodId{p}).n_nodes()}));
  }
  int completed = 0;
  for (core::Tenant& t : tenants) {
    t.engine->run(t.dag, job.iterations, [&] { ++completed; });
  }
  sim.run();
  ASSERT_EQ(completed, 2);
  for (const core::Tenant& t : tenants) {
    EXPECT_EQ(t.engine->iteration_times(), isolated);
  }
}

}  // namespace
}  // namespace opus
