#!/usr/bin/env bash
# Fails if docs/ARCHITECTURE.md or docs/FIGURES.md references a repository
# path (src/..., tests/..., bench/..., examples/..., scripts/..., *.md) that
# no longer exists, so the architecture docs cannot silently rot as the
# tree moves underneath them. Pure grep + filesystem checks; no build
# needed. Run from anywhere inside the repo.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

docs=(docs/ARCHITECTURE.md docs/FIGURES.md)
status=0

for doc in "${docs[@]}"; do
  if [[ ! -f "$doc" ]]; then
    echo "MISSING DOC: $doc" >&2
    status=1
    continue
  fi
  # Candidate references: path-shaped tokens rooted at a known top-level
  # directory, plus bare markdown files like README.md / ROADMAP.md.
  # Trailing punctuation from prose is stripped.
  refs=$(grep -oE '(src|tests|bench|examples|scripts|docs)/[A-Za-z0-9_./-]+|[A-Z]+[A-Z_]*\.md' "$doc" \
    | sed -e 's/[).,:;]*$//' | sort -u)
  docdir="$(dirname "$doc")"
  while IFS= read -r ref; do
    [[ -z "$ref" ]] && continue
    # Accept: the path itself (file or directory), the path relative to the
    # doc's own directory (intra-docs links), or — for extensionless bench/
    # example binaries quoted as build-tree paths — the source file that
    # produces them.
    if [[ -e "$ref" || -e "${ref%/}" || -e "$docdir/$ref" ||
          -e "$ref.cpp" ]]; then
      continue
    fi
    echo "$doc: stale reference '$ref'" >&2
    status=1
  done <<< "$refs"
done

if [[ $status -eq 0 ]]; then
  echo "doc links OK (${docs[*]})"
fi
exit $status
