#!/usr/bin/env python3
"""Merge the tables emitted by sharded sweep runs into one.

Process-level sweep sharding (OPUS_SWEEP_SHARD=i/N, see core/sweep.h) lets
N processes each run every N-th cell of a bench sweep and print only their
own table rows. This script stitches the per-shard outputs back into a
single output, so figure regeneration can fan out across machines:

    OPUS_SWEEP_SHARD=0/2 ./build/bench/bench_fleet_multitenant > shard0.txt
    OPUS_SWEEP_SHARD=1/2 ./build/bench/bench_fleet_multitenant > shard1.txt
    scripts/merge_sweep_tables.py shard0.txt shard1.txt

Handles both formats the benches emit:
  - aligned text tables (common/table TextTable::render(): a header line, a
    dashed separator, then rows) — EVERY table in the file is merged with
    its counterpart from the other shards (bench_table3 prints a static
    catalog table before its sharded scaling table), and columns are
    re-aligned after merging;
  - CSV (TextTable::to_csv()) with --csv: the first file's header, then
    every file's data rows, interleaved like the text mode.

Because shard i owns cells i, i+N, i+2N, …, each shard's rows appear in
increasing cell order; with the shard files passed in index order, a
round-robin interleave of their rows reconstructs the unsharded cell
order. Tables some shards print identically (unsharded preambles like the
Table-3 catalog) are detected by identical rows and passed through once.
Non-table text (banners, narrative) is taken from the first file only.
"""

import argparse
import re
import sys

SEPARATOR = re.compile(r"^-{3,}\s*$")


def split_columns(line):
    """Columns of one aligned-table line (2+ spaces between columns)."""
    return re.split(r"\s{2,}", line.rstrip())


def parse_text_tables(lines):
    """All aligned tables in the file: [(start, end, header, rows)]."""
    tables = []
    i = 0
    while i < len(lines):
        if i + 1 < len(lines) and SEPARATOR.match(lines[i + 1]) and \
                lines[i].strip():
            header = split_columns(lines[i])
            rows = []
            j = i + 2
            while j < len(lines) and lines[j].strip():
                rows.append(split_columns(lines[j]))
                j += 1
            tables.append((i, j, header, rows))
            i = j
        else:
            i += 1
    return tables


def interleave(row_lists):
    """Round-robin across the shards: cell order for stride ownership."""
    out = []
    for k in range(max(len(r) for r in row_lists)):
        for rows in row_lists:
            if k < len(rows):
                out.append(rows[k])
    return out


def render(header, rows):
    widths = [len(c) for c in header]
    for row in rows:
        for k, cell in enumerate(row):
            if k < len(widths):
                widths[k] = max(widths[k], len(cell))
            else:
                widths.append(len(cell))

    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [fmt(header), "-" * (sum(widths) + 2 * (len(widths) - 1))]
    out.extend(fmt(r) for r in rows)
    return out


def merge_text(files):
    per_file = [parse_text_tables(lines) for lines in files]
    n_tables = len(per_file[0])
    for path_tables in per_file[1:]:
        if len(path_tables) != n_tables:
            raise SystemExit(
                f"shard outputs disagree on table count: "
                f"{len(path_tables)} vs {n_tables}")

    out = []
    cursor = 0  # position in files[0]; non-table text comes from it alone
    for t in range(n_tables):
        start, end, header, _ = per_file[0][t]
        out.extend(files[0][cursor:start])
        cursor = end
        row_lists = []
        for tables in per_file:
            if tables[t][2] != header:
                raise SystemExit(
                    f"header mismatch in table {t}: {tables[t][2]} vs "
                    f"{header}")
            row_lists.append(tables[t][3])
        if all(rows == row_lists[0] for rows in row_lists[1:]):
            merged = row_lists[0]  # unsharded preamble table: pass through
        else:
            merged = interleave(row_lists)
        out.extend(render(header, merged))
    out.extend(files[0][cursor:])
    return out


def merge_csv(files):
    header = files[0][0] if files[0] else ""
    for lines in files:
        if lines and lines[0] != header:
            raise SystemExit(f"CSV header mismatch: {lines[0]!r}")
    row_lists = [[l for l in lines[1:] if l.strip()] for lines in files]
    return [header] + interleave(row_lists)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("shards", nargs="+", help="per-shard output files, "
                    "in shard-index order")
    ap.add_argument("--csv", action="store_true",
                    help="inputs are CSV (TextTable::to_csv()) instead of "
                    "aligned text tables")
    args = ap.parse_args()

    files = []
    for path in args.shards:
        with open(path, encoding="utf-8") as f:
            files.append(f.read().splitlines())

    merged = merge_csv(files) if args.csv else merge_text(files)
    sys.stdout.write("\n".join(merged) + "\n")


if __name__ == "__main__":
    main()
