#!/usr/bin/env bash
# Regenerates goldens/<name>.json from configs/<name>.json through opus_run.
#
#   scripts/update_goldens.sh [build_dir] [output_dir]
#
# Defaults: build_dir=build, output_dir=goldens. Every configs/*.json is a
# run spec; its result document lands in output_dir under the same stem.
# The documents are deterministic (no wall-clock content, insertion-ordered
# keys, shortest-round-trip doubles), so CI regenerates them into a temp
# directory and byte-diffs against the checked-in goldens/ — any behavior
# change must re-run this script and commit the diff deliberately.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-goldens}"
OPUS_RUN="$BUILD_DIR/tools/opus_run"

if [[ ! -x "$OPUS_RUN" ]]; then
  echo "error: $OPUS_RUN not built (cmake --build $BUILD_DIR --target opus_run)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
for spec in configs/*.json; do
  name="$(basename "$spec" .json)"
  # Unset sweep sharding/thread knobs: goldens are the unsharded documents.
  env -u OPUS_SWEEP_SHARD -u OPUS_SWEEP_THREADS \
    "$OPUS_RUN" "$spec" -o "$OUT_DIR/$name.json" > /dev/null
  echo "updated $OUT_DIR/$name.json"
done
