#!/usr/bin/env python3
"""Structural validator for telemetry artifacts (stdlib only).

    scripts/check_trace.py <chrome_trace.json> [<series.csv>]

Chrome trace checks: the file is a `{"traceEvents": [...]}` object; every
event is one of the phases this writer emits (M metadata, X complete,
i instant) with the keys Perfetto requires (name/ph/pid/tid, ts on X/i,
dur >= 0 on X, scoped instants); and the fabric/fleet content CI runs this
on is actually present — circuit spans, dark intervals or fault instants,
and fleet lifecycle instants.

Series CSV checks: header starts with t_ns, every row has the header's
column count, timestamps are strictly increasing from 0, and at least two
samples landed. Used by the CI telemetry step against the artifacts the
fleet-churn cell exports; exits non-zero with a message on any violation.
"""

import csv
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: expected an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")

    categories = set()
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"{where}: missing required key {key!r}")
        ph = ev["ph"]
        if ph not in ("M", "X", "i"):
            fail(f"{where}: unexpected phase {ph!r} (writer emits M/X/i)")
        if ph in ("X", "i"):
            if not isinstance(ev.get("ts"), (int, float)):
                fail(f"{where}: {ph} event needs a numeric ts")
            categories.add(ev.get("cat"))
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: X event needs a numeric dur >= 0, got {dur!r}")
        if ph == "i" and ev.get("s") != "g":
            fail(f"{where}: instants must be global scope (s == 'g')")

    for expected in ("circuit", "fleet"):
        if expected not in categories:
            fail(f"{path}: no '{expected}' events — the fleet-churn cell "
                 f"must emit them (got categories: {sorted(map(str, categories))})")
    if "dark" not in categories and "fault" not in categories:
        fail(f"{path}: neither dark intervals nor fault instants present")
    print(f"check_trace: {path} OK "
          f"({len(events)} events, categories {sorted(map(str, categories))})")


def check_series(path: str) -> None:
    with open(path, newline="", encoding="utf-8") as f:
        rows = list(csv.reader(f))
    if not rows:
        fail(f"{path}: empty file")
    header = rows[0]
    if not header or header[0] != "t_ns":
        fail(f"{path}: first column must be t_ns, got {header[:1]!r}")
    if len(header) < 2:
        fail(f"{path}: no metric columns besides t_ns")
    samples = rows[1:]
    if len(samples) < 2:
        fail(f"{path}: expected at least two samples, got {len(samples)}")
    prev_t = -1
    for i, row in enumerate(samples):
        if len(row) != len(header):
            fail(f"{path}: row {i + 1} has {len(row)} fields, "
                 f"header has {len(header)}")
        try:
            t = int(row[0])
            for v in row[1:]:
                float(v)
        except ValueError as e:
            fail(f"{path}: row {i + 1}: non-numeric field ({e})")
        if t <= prev_t:
            fail(f"{path}: t_ns not strictly increasing at row {i + 1} "
                 f"({prev_t} -> {t})")
        prev_t = t
    if int(samples[0][0]) != 0:
        fail(f"{path}: first sample must be at t_ns=0, got {samples[0][0]}")
    print(f"check_trace: {path} OK "
          f"({len(samples)} samples x {len(header) - 1} metrics)")


def main(argv: list[str]) -> None:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(argv[1])
    if len(argv) == 3:
        check_series(argv[2])


if __name__ == "__main__":
    main(sys.argv)
