// Ablation: in-job reconfiguration (Opus) versus a pre-job static ring
// (TPUv4-style, reconfigure once before the job, multi-hop for everything
// else) versus electrical rails — the §3 argument quantified. The static
// ring pays a per-hop latency and bandwidth tax on non-neighbour traffic;
// Opus pays reconfiguration delays at phase shifts.
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"

int main() {
  using namespace opus;

  std::printf("== Ablation: in-job reconfiguration vs pre-job static ring ==\n");
  std::printf("(Llama3-8B, TP=4, FSDP=2, PP=2; 15 ms 3D-MEMS OCS)\n\n");

  TextTable table({"Fabric policy", "Iter time", "vs electrical",
                   "Reconfigs/iter", "Rail wire bytes/iter",
                   "Multi-hop logical bytes"});

  auto run = [&](const char* name, auto mutate) {
    core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
    cfg.iterations = 3;
    cfg.record_compute_trace = false;
    mutate(cfg);
    const auto r = core::run_experiment(cfg);
    return std::make_pair(name, r);
  };

  const auto electrical = run("Electrical rails", [](auto& cfg) {
    cfg.fabric = net::FabricKind::kElectrical;
  });
  const auto opus = run("Opus (in-job reconfig)", [](auto& cfg) {
    cfg.fabric = net::FabricKind::kOpusPhotonic;
    cfg.ocs_reconfig_delay = msecs(15);
  });
  const auto ring = run("Static ring + multi-hop", [](auto& cfg) {
    cfg.fabric = net::FabricKind::kStaticRing;
  });

  const double base = static_cast<double>(electrical.second.steady_iteration_time);
  for (const auto& [name, r] :
       {electrical, opus, ring}) {
    table.add_row(
        {name, format_time(r.steady_iteration_time),
         fmt_double(static_cast<double>(r.steady_iteration_time) / base, 3) +
             "x",
         fmt_double(static_cast<double>(r.ocs_reconfigurations) /
                        static_cast<double>(r.iteration_times.size()),
                    1),
         format_bytes(r.rail_bytes / 3), format_bytes(r.multihop_bytes / 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The static ring never reconfigures but forwards non-neighbour\n"
      "traffic (PP hops, in this placement) through intermediate GPUs:\n"
      "its rail wire bytes exceed the logical traffic (the bandwidth tax).\n"
      "Opus keeps wire bytes equal to logical traffic and hides its\n"
      "reconfigurations inside inter-parallelism windows.\n");
  return 0;
}
