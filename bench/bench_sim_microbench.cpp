// Google-benchmark microbenchmarks of the simulation substrates: event
// engine throughput, fluid max-min re-solve cost, OCS reconfiguration,
// iteration-engine event scaling, and collective planning/verification.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "collective/planner.h"
#include "core/experiment.h"
#include "obs/metrics.h"
#include "collective/transport.h"
#include "collective/verifier.h"
#include "net/cluster.h"
#include "net/fluid.h"
#include "net/ocs.h"
#include "sim/simulator.h"
#include "workload/engine.h"
#include "workload/iteration.h"

namespace {

using namespace opus;

void BM_EventEngineScheduleFire(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(i % 1000, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventEngineScheduleFire)->Arg(1000)->Arg(10000)->Arg(100000);

// Calendar-queue scaling: cost of one schedule+fire while P unrelated
// events sit parked in the future (the rotor's pending rotations, fleet
// arrivals, and fluid completion horizons). The binary heap this engine
// replaced paid O(log P) per operation — visibly slower at each step of
// this sweep — while the hierarchical calendar files and fires in O(1), so
// ns/op must stay flat from 1k to 1M parked events. items/s = events fired.
void BM_EventQueuePendingScaling(benchmark::State& state) {
  const auto pending = static_cast<int>(state.range(0));
  sim::Simulator sim;
  for (int i = 0; i < pending; ++i) {
    sim.schedule_at(secs(10'000) + i, [] {});
  }
  for (auto _ : state) {
    sim.schedule_after(100, [] {});
    sim.run_steps(1);
    benchmark::DoNotOptimize(sim.events_fired());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePendingScaling)
    ->Arg(1'000)
    ->Arg(100'000)
    ->Arg(1'000'000);

// Scale-independent cluster state: the cost of hosting one 64-node tenant
// (construction, span assignment, and a round of rail + NVLink transfers)
// as the cluster around it grows from 64 to 4096 nodes. With lazy wiring
// and span-indexed tenant state, the idle remainder contributes only id
// tables — ns/op must stay flat across the sweep. Before the refactor this
// curve rose with n_nodes (eager per-node link construction).
void BM_ClusterActiveSpanScaling(benchmark::State& state) {
  const auto n_nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::ClusterConfig cfg;
    cfg.n_nodes = n_nodes;
    cfg.gpus_per_node = 2;
    cfg.fabric = net::FabricKind::kElectrical;
    net::Cluster cluster(sim, cfg);
    cluster.assign_tenant(0, net::NodeSpan{0, 64});
    for (int i = 0; i < 64; ++i) {
      const GpuId a = cluster.gpu_at(NodeId{i}, 0);
      const GpuId b = cluster.gpu_at(NodeId{(i + 1) % 64}, 0);
      cluster.transfer(a, b, 1 << 20, [] {});
      cluster.transfer(a, cluster.gpu_at(NodeId{i}, 1), 1 << 20, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(cluster.network().link_count());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ClusterActiveSpanScaling)->Arg(64)->Arg(512)->Arg(4096);

void BM_FluidMaxMinResolve(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::FluidNetwork net(sim);
    std::vector<LinkId> links;
    for (int i = 0; i < 64; ++i) links.push_back(net.add_link(Bandwidth::gbps(400)));
    for (int f = 0; f < flows; ++f) {
      // Each start_flow re-solves max-min over all active flows.
      net.start_flow({links[static_cast<std::size_t>(f % 64)],
                      links[static_cast<std::size_t>((f + 7) % 64)]},
                     mib(1), 0, nullptr);
    }
    sim.run();
    benchmark::DoNotOptimize(net.completed_flow_count());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidMaxMinResolve)->Arg(16)->Arg(64)->Arg(256);

// Flow-registry iteration cost: N long-lived flows held active while a
// link's capacity flaps, so every tick is one full max-min re-solve over the
// registry (the static-ring hot path in miniature: the 512-node cell does
// 2.87M such solves). With the hash-map registry each re-solve iterated an
// unordered_map and hashed a FlowId per per-link lookup; the dense
// slot-indexed registry walks a contiguous active-slot index and resolves
// every id with an array index. items/s = flow re-rates per second.
void BM_FluidRegistryIteration(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  sim::Simulator sim;
  net::FluidNetwork net(sim);
  std::vector<LinkId> links;
  for (int i = 0; i < 64; ++i) {
    links.push_back(net.add_link(Bandwidth::gbps(400)));
  }
  for (int f = 0; f < flows; ++f) {
    // Large enough that nothing drains while the clock stands still.
    net.start_flow({links[static_cast<std::size_t>(f % 64)],
                    links[static_cast<std::size_t>((f + 7) % 64)]},
                   gib(64), 0, nullptr);
  }
  bool wide = false;
  for (auto _ : state) {
    wide = !wide;
    net.set_capacity(links[0],
                     wide ? Bandwidth::gbps(800) : Bandwidth::gbps(400));
    benchmark::DoNotOptimize(net.active_flow_count());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidRegistryIteration)->Arg(64)->Arg(256)->Arg(1024);

// Rotor-style reconfiguration churn: every round retargets a 64-port OCS to
// a fresh perfect matching (net::round_robin_circuits — the rotor's own
// rotation schedule), pushes one flow through each direction of every
// circuit, and drains to quiescence. Each round introduces 32
// never-before-seen port pairs, so a solver that iterates lifetime links
// slows down linearly in the round count, while an active-set solver with
// link retirement stays flat (the acceptance bar for the fluid hot-path
// work: re-solve cost independent of retired links).
void BM_FluidChurnResolve(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  constexpr int kPorts = 64;
  double lifetime_links = 0.0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::FluidNetwork net(sim);
    net::OpticalCircuitSwitch sw(sim, net, kPorts, Bandwidth::gbps(400), 0,
                                 usecs(1), "churn");
    for (int r = 0; r < rounds; ++r) {
      const auto circuits = net::round_robin_circuits(kPorts, r);
      sw.reconfigure(circuits, nullptr);
      sim.run();
      for (const auto& c : circuits) {
        net.start_flow({sw.link(c.a, c.b)}, mib(4), 0, nullptr);
        net.start_flow({sw.link(c.b, c.a)}, mib(4), 0, nullptr);
      }
      sim.run();
    }
    lifetime_links = static_cast<double>(net.link_count());
    benchmark::DoNotOptimize(net.completed_flow_count());
  }
  state.counters["links"] = lifetime_links;
  state.SetItemsProcessed(state.iterations() * rounds * kPorts);
}
BENCHMARK(BM_FluidChurnResolve)->Arg(4)->Arg(16)->Arg(63);

// Iteration-engine event scaling: K compute spans chained back to back,
// each spanning every GPU of an N-node world (the data-parallel
// per-microbatch shape). The engine coalesces the parts of a span that
// start together into ONE completion event, so the per-iteration event
// count must track the number of active spans (K), not world size (N) —
// the scaling ceiling the 512-node matrix leg leans on. The reported
// `events_per_iter` counter is the acceptance metric: flat in N.
void BM_EngineEventScaling(benchmark::State& state) {
  const auto nodes = static_cast<int>(state.range(0));
  constexpr int kSpans = 16;
  double events_per_iter = 0.0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::ClusterConfig ncfg;
    ncfg.fabric = net::FabricKind::kElectrical;
    ncfg.n_nodes = nodes;
    ncfg.gpus_per_node = 1;
    net::Cluster cluster(sim, ncfg);
    collective::DirectTransport transport(cluster);

    workload::IterationDag dag;
    for (int k = 0; k < kSpans; ++k) {
      workload::Op op;
      op.id = OpId{k};
      op.kind = workload::OpKind::kCompute;
      op.label = "span";
      op.duration = usecs(100);
      for (int g = 0; g < cluster.n_gpus(); ++g) op.gpus.push_back(GpuId{g});
      if (k > 0) op.deps.push_back(OpId{k - 1});
      dag.ops.push_back(std::move(op));
    }

    workload::IterationEngine::Options opts;
    opts.dispatch_min = 0;
    opts.dispatch_max = 0;
    workload::IterationEngine engine(sim, cluster, transport, nullptr, opts);
    engine.run_to_completion(dag, 1);
    events_per_iter = static_cast<double>(sim.events_fired());
    benchmark::DoNotOptimize(events_per_iter);
  }
  state.counters["events_per_iter"] = events_per_iter;
  state.counters["spans"] = kSpans;
  state.SetItemsProcessed(state.iterations() * kSpans);
}
BENCHMARK(BM_EngineEventScaling)->Arg(64)->Arg(256)->Arg(512);

// Batched rotor rotation on a 512-port OCS: every iteration replays a
// pre-registered perfect matching as one transaction — one dark interval,
// one completion event, O(ports) array work on pinned fluid links, no
// per-port hash-map churn and no link retirement. Per-rotation cost must
// stay flat however many rotations have already run (the rotor perf
// ceiling: the generic per-port path made the 512-node matrix cell scale
// with lifetime circuit churn). items/s = circuits established.
void BM_OcsBatchRotation(benchmark::State& state) {
  constexpr int kPorts = 512;
  constexpr int kRounds = 64;
  sim::Simulator sim;
  net::FluidNetwork net(sim);
  net::OpticalCircuitSwitch sw(sim, net, kPorts, Bandwidth::gbps(400), 0,
                               usecs(1), "rot");
  std::vector<net::OpticalCircuitSwitch::BatchId> rounds;
  for (int r = 0; r < kRounds; ++r) {
    rounds.push_back(sw.register_batch(net::round_robin_circuits(kPorts, r)));
  }
  int r = 0;
  for (auto _ : state) {
    sw.reconfigure_batch(rounds[static_cast<std::size_t>(r)], nullptr);
    sim.run();
    r = (r + 1) % kRounds;
  }
  state.SetItemsProcessed(state.iterations() * (kPorts / 2));
}
BENCHMARK(BM_OcsBatchRotation);

void BM_OcsReconfigure(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::FluidNetwork net(sim);
    net::OpticalCircuitSwitch sw(sim, net, 576, Bandwidth::gbps(200),
                                 usecs(2), msecs(25), "bench");
    std::vector<net::CircuitRequest> circuits;
    for (int p = 0; p + 1 < 576; p += 2) {
      circuits.push_back({PortId{p}, PortId{p + 1}});
    }
    sw.reconfigure(circuits, nullptr);
    sim.run();
    benchmark::DoNotOptimize(sw.stats().circuits_established);
  }
}
BENCHMARK(BM_OcsReconfigure);

// Telemetry overhead guard: the multi-rail static-ring matrix cell with the
// telemetry hub off (arg 0 — the default-config path every perf-sensitive
// run takes) and on (arg 1: metrics registry + 1 ms probe, in-memory only,
// no file exports). The ring is the instrumentation-hottest fabric — its
// ~64-hop forwarding chains drive millions of max-min re-solves, each
// bumping the always-on solver tallies that telemetry polls as pull-gauges
// — so disabled-mode overhead would surface here first. Acceptance: arg-0
// wall time within 2% of the pre-instrumentation history for this cell
// (telemetry off compiles down to a handful of null-pointer branches); the
// arg-0 -> arg-1 delta is the measured cost of turning metrics on.
// OPUS_BENCH_SMOKE=1 shrinks 512 nodes -> 64 so the smoke pass stays fast;
// the full-size cell matches the FiveHundredTwelveNodeStaticRing CI leg.
void BM_MetricsOverhead(benchmark::State& state) {
  const bool telemetry_on = state.range(0) != 0;
  const int nodes = bench::smoke_mode() ? 64 : 512;
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::test_tiny();
  cfg.model.n_layers = 8;
  cfg.gpus_per_node = 2;
  cfg.parallelism.tp = 2;
  cfg.parallelism.dp = nodes / 8;
  cfg.parallelism.pp = 8;
  cfg.parallelism.n_microbatches = 8;
  cfg.parallelism.microbatch_size = 1;
  cfg.fabric = net::FabricKind::kStaticRing;
  cfg.iterations = 1;
  cfg.iteration.simulate_tp_comm = false;
  cfg.record_compute_trace = false;
  if (telemetry_on) {
    cfg.telemetry.metrics = true;
    cfg.telemetry.sample_interval = msecs(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_experiment(cfg));
  }
  state.counters["nodes"] = nodes;
  state.counters["telemetry"] = telemetry_on ? 1 : 0;
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Registry hot path in isolation: one Counter::inc is an add through a raw
// int64 slot resolved at registration — no hashing, no lookup, no virtual
// call — and an unregistered handle is a single null check. Both must stay
// within a few ns/op or the "instrument freely" contract breaks.
void BM_MetricsCounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter live = registry.add_counter("bench.live");
  obs::Counter null_handle;  // default-constructed: the disabled path
  const bool registered = state.range(0) != 0;
  obs::Counter& c = registered ? live : null_handle;
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterIncrement)->Arg(0)->Arg(1);

void BM_PlanRingAllReduce(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(collective::plan_collective(
        collective::CollectiveType::kAllReduce, collective::Algorithm::kRing,
        n, gib(1)));
  }
}
BENCHMARK(BM_PlanRingAllReduce)->Arg(8)->Arg(64)->Arg(512);

void BM_VerifyRingAllReduce(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto sched = collective::plan_collective(
      collective::CollectiveType::kAllReduce, collective::Algorithm::kRing, n,
      gib(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(collective::verify_schedule(sched));
  }
}
BENCHMARK(BM_VerifyRingAllReduce)->Arg(8)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
