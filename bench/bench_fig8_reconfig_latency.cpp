// Regenerates Fig. 8: normalized iteration time of the Llama3-8B workload
// (TP=4, DP=PP=2) on photonic rails as the OCS reconfiguration latency
// sweeps 0..1000 ms, with and without provisioning. Latency 0 doubles as
// the fully-connected baseline.
#include <cstdio>

#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/experiment.h"

int main() {
  using namespace opus;

  const std::vector<double> latencies_ms =
      bench::smoke_mode()
          ? std::vector<double>{0, 10.0, 100.0}
          : std::vector<double>{0,     0.1,   1.0,   5.0,  10.0, 20.0,
                                50.0,  100.0, 200.0, 500.0, 1000.0};

  std::printf("== Fig. 8: iteration time vs reconfiguration latency ==\n");
  std::printf("(Llama3-8B with TorchTitan, TP=4, DP=PP=2; normalized to the\n");
  std::printf(" fully-connected baseline = reconfiguration latency 0)\n\n");

  auto run = [&](double latency_ms, bool provisioning) {
    core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
    cfg.fabric = net::FabricKind::kOpusPhotonic;
    cfg.ocs_reconfig_delay = msecs(latency_ms);
    cfg.provisioning = provisioning;
    cfg.iterations = 4;  // iteration 0 profiles; report steady state
    cfg.record_compute_trace = false;
    const auto r = core::run_experiment(cfg);
    return r;
  };

  const auto baseline = run(0.0, false);
  const double base =
      static_cast<double>(baseline.steady_iteration_time);

  TextTable table({"Reconfig. latency (ms)", "Without provisioning",
                   "With provisioning", "Reconfigs/iter", "Spec. requests"});
  for (double latency : latencies_ms) {
    const auto without = run(latency, false);
    const auto with = run(latency, true);
    table.add_row(
        {fmt_double(latency, 1),
         fmt_double(static_cast<double>(without.steady_iteration_time) / base,
                    2),
         fmt_double(static_cast<double>(with.steady_iteration_time) / base, 2),
         fmt_double(static_cast<double>(without.ocs_reconfigurations) /
                        without.iteration_times.size(),
                    1),
         fmt_count(with.shim_speculative_requests)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper: 1.06 / 1.03 at 100 ms; 1.65 / 1.47 at 1000 ms. The latency-0\n"
      "photonic point matches the electrical baseline (Fig. 8's '0' bar).\n");
  return 0;
}
