// Regenerates Fig. 7: GPU-backend network cost and power for fat-tree,
// rail-optimized, and Opus fabrics at 1024..8192 DGX H200 GPUs (400G optics
// and switches; NICs, fiber, and cabling excluded, as in the paper).
#include <cstdio>

#include "common/table.h"
#include "costmodel/fabric_cost.h"

int main() {
  using namespace opus;
  using namespace opus::costmodel;

  std::printf("== Fig. 7: GPU-backend network cost and power ==\n\n");
  TextTable cost({"# GPUs", "Fat-tree ($)", "Rail-optimized ($)", "Opus ($)",
                  "Opus saving vs rail", "vs fat-tree"});
  TextTable power({"# GPUs", "Fat-tree (W)", "Rail-optimized (W)", "Opus (W)",
                   "Opus saving vs rail", "vs fat-tree"});
  for (int n : {1024, 2048, 4096, 8192}) {
    const FabricCost ft = fat_tree_fabric(n);
    const FabricCost rail = rail_optimized_fabric(n);
    const FabricCost opus = opus_fabric(n);
    cost.add_row({fmt_count(n), fmt_dollars(ft.total_cost()),
                  fmt_dollars(rail.total_cost()),
                  fmt_dollars(opus.total_cost()),
                  fmt_double(100 * cost_saving(opus, rail), 1) + "%",
                  fmt_double(100 * cost_saving(opus, ft), 1) + "%"});
    power.add_row(
        {fmt_count(n),
         fmt_count(static_cast<std::int64_t>(ft.total_power_w())),
         fmt_count(static_cast<std::int64_t>(rail.total_power_w())),
         fmt_count(static_cast<std::int64_t>(opus.total_power_w())),
         fmt_double(100 * power_saving(opus, rail), 2) + "%",
         fmt_double(100 * power_saving(opus, ft), 2) + "%"});
  }
  std::printf("Cost:\n%s\n", cost.render().c_str());
  std::printf("Power:\n%s\n", power.render().c_str());

  const FabricCost opus8k = opus_fabric(8192);
  const FabricCost rail8k = rail_optimized_fabric(8192);
  const FabricCost ft8k = fat_tree_fabric(8192);
  std::printf("Component breakdown at 8192 GPUs:\n");
  TextTable parts({"Fabric", "Switches", "OCS", "Transceivers",
                   "Switch $", "OCS $", "Optics $"});
  for (const FabricCost* fc : {&ft8k, &rail8k, &opus8k}) {
    parts.add_row({fc->fabric, fmt_count(fc->n_switches), fmt_count(fc->n_ocs),
                   fmt_count(fc->n_transceivers), fmt_dollars(fc->switch_cost),
                   fmt_dollars(fc->ocs_cost),
                   fmt_dollars(fc->transceiver_cost)});
  }
  std::printf("%s\n", parts.render().c_str());
  std::printf(
      "Paper headline: up to 70.5%% cost and 95.84%% power savings.\n"
      "Reproduced: %.1f%% cost / %.2f%% power vs fat-tree, %.1f%% / %.2f%%\n"
      "vs rail-optimized, at 8192 GPUs.\n",
      100 * cost_saving(opus8k, ft8k), 100 * power_saving(opus8k, ft8k),
      100 * cost_saving(opus8k, rail8k), 100 * power_saving(opus8k, rail8k));
  return 0;
}
