// Shared helpers for the figure/table benches.
#pragma once

#include <cstdlib>

namespace opus::bench {

/// True when the bench runs under the `bench_smoke` CTest label
/// (OPUS_BENCH_SMOKE=1): shrink sweeps to a tiny configuration so the smoke
/// pass only checks that the bench still builds, runs, and exits 0.
inline bool smoke_mode() {
  const char* v = std::getenv("OPUS_BENCH_SMOKE");
  return v != nullptr && v[0] == '1';
}

}  // namespace opus::bench
