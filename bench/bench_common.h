// Shared helpers for the figure/table benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace opus::bench {

/// True when the bench runs under the `bench_smoke` CTest label
/// (OPUS_BENCH_SMOKE=1): shrink sweeps to a tiny configuration so the smoke
/// pass only checks that the bench still builds, runs, and exits 0.
inline bool smoke_mode() {
  const char* v = std::getenv("OPUS_BENCH_SMOKE");
  return v != nullptr && v[0] == '1';
}

/// Runs `fn`, prints "[bench] <name>: <ms> ms" to stderr (stdout carries the
/// tables), and returns fn's result — a named timed step so CI logs show
/// where a bench cell's wall time goes.
template <typename Fn>
auto timed(const std::string& name, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = std::forward<Fn>(fn)();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::fprintf(stderr, "[bench] %s: %lld ms\n", name.c_str(),
               static_cast<long long>(ms));
  return result;
}

}  // namespace opus::bench
