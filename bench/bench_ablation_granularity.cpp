// Ablation: reconfiguration granularity (§5). Fine-grained per-group
// switching lets disjoint port sets reconfigure concurrently; coarse-grained
// (whole-rail lock) serializes every change, inflating iteration time when
// per-stage phases interleave (e.g. stage 2's AllGather concurrent with
// other stages' Send/Recv in Fig. 3b).
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"

int main() {
  using namespace opus;

  std::printf("== Ablation: reconfiguration granularity ==\n\n");
  TextTable table({"PP", "Granularity", "Iter time", "Reconfigs/iter",
                   "Queued requests", "Max ack wait"});
  for (int pp : {2, 3}) {
    for (bool fine : {true, false}) {
      core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
      cfg.parallelism.pp = pp;
      cfg.fabric = net::FabricKind::kOpusPhotonic;
      cfg.ocs_reconfig_delay = msecs(25);
      cfg.iterations = 3;
      cfg.record_compute_trace = false;
      // Granularity is a controller property; plumb it through the
      // transport options via the experiment's engine path.
      cfg.provisioning = true;
      // Note: run_experiment always uses fine_grained; for this ablation we
      // construct the stack manually.
      sim::Simulator sim;
      net::ClusterConfig ncfg;
      ncfg.n_nodes = cfg.parallelism.world_size() / cfg.gpus_per_node;
      ncfg.gpus_per_node = cfg.gpus_per_node;
      ncfg.nic_ports = cfg.nic_ports;
      ncfg.fabric = net::FabricKind::kOpusPhotonic;
      ncfg.ocs_reconfig_delay = cfg.ocs_reconfig_delay;
      net::Cluster cluster(sim, ncfg);
      workload::RankMapper mapper(cfg.parallelism, cfg.gpus_per_node);
      workload::ComputeModel compute(cfg.gpu, cfg.mfu,
                                     cfg.activation_recompute);
      const auto dag = workload::build_training_iteration(
          cfg.model, cfg.parallelism, mapper, compute);
      core::OpusTransport::Options topts;
      topts.provisioning = true;
      topts.controller.fine_grained = fine;
      topts.pipeline_stages = pp;
      core::OpusTransport transport(sim, cluster, topts);
      workload::IterationEngine engine(sim, cluster, transport, nullptr);
      const auto times = engine.run_to_completion(dag, cfg.iterations);
      TimeNs steady = 0;
      for (std::size_t i = 1; i < times.size(); ++i) steady += times[i];
      steady /= static_cast<TimeNs>(times.size() - 1);
      table.add_row(
          {fmt_count(pp), fine ? "per-group (fine)" : "whole-rail (coarse)",
           format_time(steady),
           fmt_double(static_cast<double>(
                          transport.total_ocs_reconfigurations()) /
                          static_cast<double>(times.size()),
                      1),
           fmt_count(transport.controller().stats().queued),
           format_time(transport.controller().stats().max_wait)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Coarse-grained reconfiguration conflicts with the ML framework's\n"
      "communication schedule exactly as §5 warns: requests queue behind\n"
      "unrelated port domains and ack waits grow.\n");
  return 0;
}
