// Regenerates Table 3: the Opus scalability-latency tradeoff across OCS
// technologies. #GPUs = scale-up size x radix / 2 (2-port NIC configuration
// with bidirectional transceivers).
//
// Part 2 backs the table with simulation: end-to-end Opus experiment cells
// at growing node counts (up to the 512-node leg of the regression matrix),
// fanned across a thread pool by core::run_sweep — each cell owns its own
// Simulator, so the sweep parallelizes embarrassingly. Thread count comes
// from OPUS_SWEEP_THREADS (default: hardware concurrency). Smoke mode
// (OPUS_BENCH_SMOKE=1) keeps the 8-node warm-up AND the 512-node leg, so
// CI's bench-smoke pass exercises paper scale on every run.
// OPUS_SWEEP_SHARD=i/N fans the scaling cells across processes (each prints
// its own rows; merge with scripts/merge_sweep_tables.py).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "config/presets.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "costmodel/ocs_catalog.h"

int main() {
  using namespace opus;
  using namespace opus::costmodel;

  std::printf("== Table 3: Opus scalability-latency tradeoff ==\n\n");
  TextTable table({"OCS Tech", "Vendor", "Reconfig. time (ms)",
                   "Radix (ports)", "# GPUs (GB200)", "# GPUs (H200)"});
  for (const OcsSpec& ocs : ocs_catalog()) {
    table.add_row({
        ocs.technology,
        ocs.vendor,
        ocs.reconfig_ms < 0.001 ? fmt_double(ocs.reconfig_ms, 5)
                                : fmt_double(ocs.reconfig_ms, 3),
        fmt_count(ocs.radix),
        fmt_count(opus_max_gpus(ocs, kGb200ScaleUp)),
        fmt_count(opus_max_gpus(ocs, kH200ScaleUp)),
    });
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The paper picks Piezo (Polatis) or 3D MEMS (Calient) as the sweet\n"
      "spot: >10k GPUs with GB200 scale-ups at 15-25 ms reconfiguration,\n"
      "which in-job provisioning can hide inside inter-parallelism windows.\n");

  // Part 2: simulated scalability — one Opus cell per node count, swept in
  // parallel across the thread pool.
  // Full mode runs one decade past the 512-node regression leg. Cluster
  // state is scale-independent now, but the big cells' *traffic* is not:
  // a 4096-node Opus cell rings 2048 DP ranks, so the 1024..4096 tail
  // costs minutes-to-hours of wall time. Fan it across processes with
  // OPUS_SWEEP_SHARD=i/N and merge_sweep_tables.py (see FIGURES.md).
  // Smoke keeps {8, 512}; CI's 4096-node coverage is the cheap
  // multi-tenant FourKMatrix leg, where only the tenants' spans pay.
  const std::vector<int> node_counts =
      opus::bench::smoke_mode()
          ? std::vector<int>{8, 512}
          : std::vector<int>{8,   16,   32,   64,  128,
                             256, 512, 1024, 2048, 4096};
  // The cell builder is the config layer's — the same configs the named
  // presets ("table3_opus_8" etc.) and configs/*.json goldens run, so this
  // bench and the declarative path can never drift apart.
  std::vector<core::ExperimentConfig> cells;
  cells.reserve(node_counts.size());
  for (int n : node_counts) cells.push_back(config::table3_cell(n));

  const int threads = core::sweep_thread_count();
  const core::SweepShard shard = core::sweep_shard();
  core::SweepOptions sweep_opts;
  sweep_opts.use_shard = true;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto results = core::run_sweep(cells, sweep_opts);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  std::printf("\n== Simulated Opus scaling (DPx2-stage pipeline, %d sweep "
              "threads) ==\n\n",
              threads);
  TextTable sim_table({"Nodes", "Steady iter", "OCS reconfigs", "Dark time"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!shard.owns(i)) continue;  // another process's cell
    sim_table.add_row({fmt_count(node_counts[i]),
                       format_time(results[i].steady_iteration_time),
                       fmt_count(results[i].ocs_reconfigurations),
                       format_time(results[i].ocs_dark_time)});
  }
  std::printf("%s\n", sim_table.render().c_str());
  std::size_t owned = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (shard.owns(i)) ++owned;
  }
  std::printf("sweep wall time: %.1f ms for %zu of %zu cells\n", wall_ms,
              owned, cells.size());
  return 0;
}
