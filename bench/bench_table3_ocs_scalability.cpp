// Regenerates Table 3: the Opus scalability-latency tradeoff across OCS
// technologies. #GPUs = scale-up size x radix / 2 (2-port NIC configuration
// with bidirectional transceivers).
#include <cstdio>

#include "common/table.h"
#include "costmodel/ocs_catalog.h"

int main() {
  using namespace opus;
  using namespace opus::costmodel;

  std::printf("== Table 3: Opus scalability-latency tradeoff ==\n\n");
  TextTable table({"OCS Tech", "Vendor", "Reconfig. time (ms)",
                   "Radix (ports)", "# GPUs (GB200)", "# GPUs (H200)"});
  for (const OcsSpec& ocs : ocs_catalog()) {
    table.add_row({
        ocs.technology,
        ocs.vendor,
        ocs.reconfig_ms < 0.001 ? fmt_double(ocs.reconfig_ms, 5)
                                : fmt_double(ocs.reconfig_ms, 3),
        fmt_count(ocs.radix),
        fmt_count(opus_max_gpus(ocs, kGb200ScaleUp)),
        fmt_count(opus_max_gpus(ocs, kH200ScaleUp)),
    });
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The paper picks Piezo (Polatis) or 3D MEMS (Calient) as the sweet\n"
      "spot: >10k GPUs with GB200 scale-ups at 15-25 ms reconfiguration,\n"
      "which in-job provisioning can hide inside inter-parallelism windows.\n");
  return 0;
}
