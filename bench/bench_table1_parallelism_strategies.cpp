// Regenerates Table 1: rule-of-thumb LLM parallelism strategies by model
// size and GPU count, plus the advisor's answer for a few concrete models.
#include <cstdio>

#include "common/table.h"
#include "workload/model_config.h"
#include "workload/parallelism.h"

int main() {
  using namespace opus;
  using namespace opus::workload;

  std::printf("== Table 1: rule-of-thumb LLM parallelism strategies ==\n\n");
  TextTable table({"Model size", "Compute (N GPUs)", "Practices"});
  for (const ParallelismAdvice& row : parallelism_rule_table()) {
    table.add_row({row.model_size, row.compute, row.practices});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Advisor spot checks:\n");
  TextTable spot({"Model", "Params", "GPUs", "Advice"});
  struct Probe {
    ModelConfig model;
    int gpus;
  };
  const Probe probes[] = {
      {ModelConfig::llama3_8b(), 8},
      {ModelConfig::llama3_8b(), 16},
      {ModelConfig::mixtral_8x7b(), 256},
      {ModelConfig::gpt3_175b(), 1024},
      {ModelConfig::llama31_405b(), 8192},
  };
  for (const Probe& p : probes) {
    const auto advice = advise_parallelism(p.model.total_params(), p.gpus);
    spot.add_row({p.model.name,
                  fmt_double(static_cast<double>(p.model.total_params()) / 1e9,
                             1) +
                      "B",
                  fmt_count(p.gpus), advice.practices});
  }
  std::printf("%s", spot.render().c_str());
  return 0;
}
