// Ablation: collective algorithm choice under the circuit degree constraint
// (C1). Ring vs recursive doubling vs binomial tree for an 8-node rail
// group, on electrical rails (full connectivity) and on photonic rails
// (2-port NICs, per-step reconfiguration for peer-changing algorithms).
#include <cstdio>

#include "collective/executor.h"
#include "collective/planner.h"
#include "common/table.h"
#include "core/opus_transport.h"

namespace {

using namespace opus;
using namespace opus::collective;

TimeNs run_collective(net::FabricKind kind, CollectiveType type, Algorithm algo,
                      Bytes payload, TimeNs reconfig) {
  sim::Simulator sim;
  net::ClusterConfig cfg;
  cfg.n_nodes = 8;
  cfg.gpus_per_node = 2;
  cfg.nic_ports = 2;
  cfg.fabric = kind;
  cfg.ocs_reconfig_delay = reconfig;
  net::Cluster cluster(sim, cfg);

  std::unique_ptr<Transport> transport;
  if (kind == net::FabricKind::kOpusPhotonic) {
    transport = std::make_unique<core::OpusTransport>(sim, cluster);
  } else {
    transport = std::make_unique<DirectTransport>(cluster);
  }
  CollectiveExecutor exec(sim, *transport);
  CommGroup group;
  group.id = GroupId{1};
  group.dim = ParallelismDim::kDP;
  for (int n = 0; n < 8; ++n) group.ranks.push_back(cluster.gpu_at(NodeId{n}, 0));
  const auto sched = plan_collective(type, algo, 8, payload);
  TimeNs duration = -1;
  exec.run(group, sched,
           [&](const CollectiveExecutor::Result& r) { duration = r.duration(); });
  sim.run();
  return duration;
}

}  // namespace

int main() {
  std::printf("== Ablation: collective algorithms on circuits (C1) ==\n\n");
  struct Algo {
    CollectiveType type;
    Algorithm algo;
    const char* name;
  };
  const Algo algos[] = {
      {CollectiveType::kAllGather, Algorithm::kRing, "AllGather/Ring"},
      {CollectiveType::kAllGather, Algorithm::kRecursiveDoubling,
       "AllGather/RecursiveDoubling"},
      {CollectiveType::kAllReduce, Algorithm::kRing, "AllReduce/Ring"},
      {CollectiveType::kAllReduce, Algorithm::kRecursiveHalvingDoubling,
       "AllReduce/RecHalvingDoubling"},
      {CollectiveType::kAllReduce, Algorithm::kBinomialTree,
       "AllReduce/BinomialTree"},
      {CollectiveType::kAllToAll, Algorithm::kPairwise, "AllToAll/Pairwise"},
  };

  for (Bytes payload : {kib(256), mib(64)}) {
    std::printf("payload = %s, 8 ranks, 15 ms OCS (3D MEMS):\n",
                format_bytes(payload).c_str());
    TextTable table({"Algorithm", "Electrical rail", "Photonic rail",
                     "Photonic penalty"});
    for (const Algo& a : algos) {
      const TimeNs e = run_collective(net::FabricKind::kElectrical, a.type,
                                      a.algo, payload, 0);
      const TimeNs p = run_collective(net::FabricKind::kOpusPhotonic, a.type, a.algo,
                                      payload, msecs(15));
      table.add_row({a.name, format_time(e), format_time(p),
                     fmt_double(static_cast<double>(p) /
                                    static_cast<double>(e),
                                1) +
                         "x"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "Ring holds its circuits for the whole collective (one\n"
      "reconfiguration); recursive doubling and pairwise AllToAll pay one\n"
      "reconfiguration per peer change, which is why C1 restricts photonic\n"
      "rails to ring algorithms.\n");
  return 0;
}
