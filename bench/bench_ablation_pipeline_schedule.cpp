// Ablation: pipeline schedule vs reconfiguration pressure. 1F1B (the
// paper's traced schedule) interleaves PP and DP phases; GPipe runs all
// forwards then all backwards, which concentrates the phases and changes
// the inter-parallelism window structure Opus exploits.
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"
#include "trace/windows.h"

int main() {
  using namespace opus;

  std::printf("== Ablation: pipeline schedule (1F1B vs GPipe) ==\n");
  std::printf("(Llama3-8B, TP=4 FSDP=2 PP=4; photonic rails, 25 ms OCS)\n\n");

  TextTable table({"Schedule", "Iter time", "Reconfigs/iter",
                   "Windows/iter (rail 0)", "Median window"});
  for (auto schedule : {workload::PipelineSchedule::k1F1B,
                        workload::PipelineSchedule::kGpipe}) {
    core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
    cfg.parallelism.pp = 4;  // deeper pipeline: the schedules diverge
    cfg.fabric = net::FabricKind::kOpusPhotonic;
    cfg.ocs_reconfig_delay = msecs(25);
    cfg.iteration.pipeline_schedule = schedule;
    cfg.iterations = 3;
    cfg.record_compute_trace = false;
    const auto r = core::run_experiment(cfg);
    const auto windows =
        trace::extract_windows(r.recorder->rail_comms(1, RailId{0}));
    Cdf cdf;
    for (const auto& w : windows) cdf.add(to_ms(w.size));
    table.add_row(
        {schedule == workload::PipelineSchedule::k1F1B ? "1F1B" : "GPipe",
         format_time(r.steady_iteration_time),
         fmt_double(static_cast<double>(r.ocs_reconfigurations) /
                        static_cast<double>(r.iteration_times.size()),
                    1),
         fmt_count(static_cast<std::int64_t>(windows.size())),
         windows.empty() ? "-" : fmt_double(cdf.median(), 2) + "ms"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "With a deeper pipeline the schedules diverge: GPipe concentrates\n"
      "the Send/Recv traffic into bulk-synchronous phases while 1F1B\n"
      "spreads it through the steady state — the schedule/reconfiguration\n"
      "co-design opportunity of §5. (At PP=2 the two schedules have\n"
      "identical critical paths and window structure.)\n");
  return 0;
}
