// Ablation: demand-driven (Opus) versus traffic-oblivious (RotorNet-style)
// reconfiguration for ML collectives — the §3 "Key Insight" argument that
// prior microsecond-scale oblivious designs are "poorly suited to the
// repetitive and high-volume collective communication patterns of ML
// workloads", quantified on identical hardware assumptions.
#include <cstdio>

#include <memory>
#include <vector>

#include "collective/executor.h"
#include "collective/planner.h"
#include "common/table.h"
#include "core/opus_transport.h"
#include "core/rotor.h"
#include "core/sweep.h"

namespace {

using namespace opus;
using namespace opus::collective;

net::ClusterConfig cluster_cfg(net::FabricKind fabric, int nodes,
                               TimeNs ocs_delay) {
  net::ClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.gpus_per_node = 2;
  cfg.nic_ports = 2;
  cfg.fabric = fabric;
  // Classic single-matching rotor (spread 1): the ablation isolates the
  // oblivious-rotation penalty, not RotorNet's two-hop routing.
  cfg.ocs_reconfig_delay = ocs_delay;
  return cfg;
}

TimeNs run_collective(bool rotor, int nodes, TimeNs ocs_delay,
                      TimeNs slot_time, CollectiveType type, Bytes payload) {
  sim::Simulator sim;
  net::Cluster cluster(
      sim, cluster_cfg(rotor ? net::FabricKind::kRotor
                             : net::FabricKind::kOpusPhotonic,
                       nodes, ocs_delay));
  std::unique_ptr<Transport> transport;
  if (rotor) {
    core::RotorTransport::Options opts;
    opts.slot_time = slot_time;
    transport = std::make_unique<core::RotorTransport>(sim, cluster, opts);
  } else {
    transport = std::make_unique<core::OpusTransport>(sim, cluster);
  }
  CollectiveExecutor exec(sim, *transport);
  CommGroup g;
  g.id = GroupId{1};
  g.dim = ParallelismDim::kDP;
  for (int n = 0; n < nodes; ++n) g.ranks.push_back(cluster.gpu_at(NodeId{n}, 0));
  const auto algo = choose_algorithm(type, nodes, payload, 2);
  const auto sched = plan_collective(type, algo, nodes, payload);
  TimeNs duration = -1;
  exec.run(g, sched, [&](const CollectiveExecutor::Result& r) {
    duration = r.duration();
  });
  sim.run();
  return duration;
}

}  // namespace

int main() {
  std::printf(
      "== Ablation: demand-driven (Opus) vs traffic-oblivious (rotor) ==\n");
  std::printf(
      "(8-node rail group, 10us OCS for both; rotor slot = 10x OCS delay)\n\n");

  TextTable table({"Collective", "Payload", "Opus", "Rotor", "Rotor/Opus"});
  const TimeNs ocs = usecs(10);
  const TimeNs slot = usecs(100);
  struct Case {
    CollectiveType type;
    Bytes payload;
    const char* name;
  };
  const Case cases[] = {
      {CollectiveType::kAllReduce, mib(1), "AllReduce"},
      {CollectiveType::kAllReduce, mib(64), "AllReduce"},
      {CollectiveType::kAllGather, mib(64), "AllGather"},
      {CollectiveType::kReduceScatter, mib(64), "ReduceScatter"},
      {CollectiveType::kAllToAll, mib(64), "AllToAll"},
  };
  // Every (case, fabric) run owns its own Simulator: fan the 2x grid across
  // the sweep runner's thread pool (OPUS_SWEEP_THREADS overrides the width).
  constexpr std::size_t n_cases = std::size(cases);
  std::vector<TimeNs> opus_times(n_cases);
  std::vector<TimeNs> rotor_times(n_cases);
  core::parallel_for(2 * n_cases, core::sweep_thread_count(),
                     [&](std::size_t i) {
                       const Case& c = cases[i % n_cases];
                       const bool rotor = i >= n_cases;
                       const TimeNs t = run_collective(rotor, 8, ocs, slot,
                                                       c.type, c.payload);
                       (rotor ? rotor_times : opus_times)[i % n_cases] = t;
                     });
  for (std::size_t i = 0; i < n_cases; ++i) {
    const Case& c = cases[i];
    table.add_row({c.name, format_bytes(c.payload), format_time(opus_times[i]),
                   format_time(rotor_times[i]),
                   fmt_double(static_cast<double>(rotor_times[i]) /
                                  static_cast<double>(opus_times[i]),
                              1) +
                       "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The rotor's matchings connect each ring edge only 1/(n-1) of the\n"
      "time, so pipelined collective steps idle between slots; Opus holds\n"
      "exactly the circuits the collective needs for its whole duration.\n"
      "AllToAll narrows the gap (the rotor's native traffic pattern), as\n"
      "RotorNet's designers intended — but ML traffic is rings, not\n"
      "uniform random, which is the paper's point.\n");
  return 0;
}
