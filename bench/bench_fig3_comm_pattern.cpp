// Regenerates Fig. 3: the rail-0 communication pattern for the Llama3-8B
// workload under (a) PP=2/FSDP=2 and (b) PP=3/FSDP=2, rendered as an ASCII
// Gantt with the circuit configurations (parallelism phases) listed below
// each chart.
#include <cstdio>

#include "core/experiment.h"
#include "trace/gantt.h"

namespace {

void run_case(const char* title, int pp, int dp) {
  using namespace opus;
  core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
  cfg.parallelism.pp = pp;
  cfg.parallelism.dp = dp;
  cfg.fabric = net::FabricKind::kElectrical;  // trace the traffic pattern
  cfg.iterations = 2;
  cfg.record_compute_trace = false;

  const auto result = core::run_experiment(cfg);
  const auto& spans = result.recorder->iterations();
  const auto comms = result.recorder->rail_comms(1, RailId{0});

  std::printf("-- Fig. 3%s --\n", title);
  std::vector<GpuId> rail_gpus;
  for (int node = 0; node < pp * dp; ++node) {
    rail_gpus.push_back(GpuId{node * cfg.gpus_per_node});
  }
  std::printf("%s\n",
              trace::render_rail_gantt(comms, rail_gpus, spans[1].t_start,
                                       spans[1].t_end)
                  .c_str());
}

}  // namespace

int main() {
  std::printf("== Fig. 3: communication pattern for PP and FSDP ==\n");
  std::printf("(rail 0 of the Llama3-8B TorchTitan workload; TP hidden)\n\n");
  run_case("(a): PP=2, FSDP=2", 2, 2);
  run_case("(b): PP=3, FSDP=2", 3, 2);
  return 0;
}
