// Multi-tenant fleet comparison: electrical packet rails vs Opus's
// demand-driven OCS vs the traffic-oblivious rotor when 8–64 concurrent
// mixed-shape jobs share one cluster (up to 512 nodes) — the datacenter
// setting of the paper's pitch, where tenants contend for rail bandwidth
// and OCS ports instead of owning the fabric. Reports per-fabric mean and
// p99 job slowdown (JCT over an isolated run of the same job), mean
// queueing delay, node utilization, and mean dark-time share.
//
// OPUS_BENCH_SMOKE=1 shrinks the sweep to one 8-job cell per fabric.
// OPUS_SWEEP_SHARD=i/N splits the cells across processes (each prints only
// its own rows; merge with scripts/merge_sweep_tables.py).
#include <cstdio>

#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "config/presets.h"
#include "core/sweep.h"
#include "fleet/fleet.h"

int main() {
  using namespace opus;
  const bool smoke = bench::smoke_mode();

  const std::vector<int> job_counts =
      smoke ? std::vector<int>{8} : std::vector<int>{8, 16, 32, 64};
  const net::FabricKind fabrics[] = {net::FabricKind::kElectrical,
                                     net::FabricKind::kOpusPhotonic,
                                     net::FabricKind::kRotor};
  const core::SweepShard shard = core::sweep_shard();

  std::printf(
      "== Multi-tenant fleet: shared rails under %d-%d concurrent jobs ==\n"
      "(mixed Table-1/2 shape ladder, Poisson arrivals, rail-aware "
      "placement)\n\n",
      job_counts.front(), job_counts.back());

  TextTable table({"Fabric", "Jobs", "Nodes", "Mean slowdown", "p99 slowdown",
                   "Mean queue", "Utilization", "Mean dark%"});
  std::size_t cell = 0;
  for (net::FabricKind fabric : fabrics) {
    for (int jobs : job_counts) {
      if (!shard.owns(cell++)) continue;
      fleet::FleetConfig cfg;
      // Shapes: the Table-1/2 ladder, doubled in DP for the full run so the
      // 64-job cell genuinely fills 512 nodes (4-16 nodes per job). The
      // cluster is sized slightly below the mix's aggregate demand, so
      // bursty arrivals queue — slowdown folds that queueing together with
      // the shared-fabric contention while resident.
      const int dp_scale = smoke ? 1 : 2;
      cfg.n_nodes = std::min(512, (smoke ? 4 : 8) * jobs);
      cfg.base.fabric = fabric;
      cfg.base.gpus_per_node = 4;
      cfg.base.ocs_reconfig_delay = usecs(100);
      cfg.base.rotor_slot_time = msecs(1);
      cfg.policy = fleet::PlacementPolicy::kRailAware;
      cfg.arrivals.seed = 2026;
      cfg.arrivals.n_jobs = jobs;
      cfg.arrivals.iterations = 2;
      // Hold the arrival window (jobs x mean) constant as the cell grows,
      // so offered load — aggregate node-time over capacity x window —
      // stays comparable across job counts instead of diluting.
      cfg.arrivals.mean_interarrival = msecs(8) / jobs;
      cfg.arrivals.shapes =
          fleet::table_mix_shapes(cfg.base.gpus_per_node, dp_scale);

      const fleet::FleetResult result = fleet::run_fleet(cfg);
      const fleet::SlowdownStats slow = fleet::fleet_slowdown_stats(result);
      double queue_sum = 0.0;
      double dark_sum = 0.0;
      int placed = 0;
      for (const fleet::FleetJobResult& jr : result.jobs) {
        if (jr.rejected) continue;
        queue_sum += static_cast<double>(jr.queueing_delay());
        dark_sum += jr.dark_share;
        ++placed;
      }
      table.add_row(
          {net::fabric_name(fabric), std::to_string(jobs),
           std::to_string(cfg.n_nodes), fmt_double(slow.mean, 2) + "x",
           fmt_double(slow.p99, 2) + "x",
           format_time(static_cast<TimeNs>(
               placed > 0 ? queue_sum / placed : 0.0)),
           fmt_double(100.0 * result.utilization, 1) + "%",
           fmt_double(placed > 0 ? 100.0 * dark_sum / placed : 0.0, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Slowdown = JCT / isolated-run time (queueing + contention). The\n"
      "electrical rails share bandwidth but never go dark; Opus tenants\n"
      "reconfigure only their own port blocks; the rotor pays rotation\n"
      "dark time per tenant on top of contention. Per-tenant byte\n"
      "conservation against isolated runs is pinned by tests/test_fleet.cpp.\n");

  // Per-job fleet timelines, timeline-sharded: unlike the summary cells
  // above (each owned whole by one shard), every process simulates these
  // fleets but computes isolated baselines — the node-count-proportional
  // cost — only for its own jobs, and prints only their rows. The merge
  // script interleaves the rows back into the full per-job table,
  // bit-identically (the shared timeline is deterministic, so shards agree
  // on every column they both could print).
  // Failure/repair churn ablation: the same trace with and without a seeded
  // Poisson port-failure process, across all four fabrics. Churn adds the
  // paper-adjacent reliability axis — availability (productive fraction of
  // wall presence), ports lost inside running spans, eviction/re-placement
  // cycles, and the JCT tail (p99 slowdown) under churn versus fault-free.
  std::printf("\n== Failure churn ablation (availability / JCT tail) ==\n\n");
  {
    TextTable churn_table({"Fabric", "Jobs", "p99 slowdn (clean)",
                           "p99 slowdn (churn)", "Mean avail", "PortsLost",
                           "Replacements"});
    const net::FabricKind all_fabrics[] = {
        net::FabricKind::kElectrical, net::FabricKind::kOpusPhotonic,
        net::FabricKind::kStaticRing, net::FabricKind::kRotor};
    for (net::FabricKind fabric : all_fabrics) {
      // The cells come from the config layer's shared builder — the same
      // configs the "fleet_churn_*" presets and goldens run, so this bench
      // and the declarative path can never drift apart. Churn is tuned hot
      // enough that repairs overlap new failures and availability actually
      // separates from 1.0 (see config::fleet_churn_cell).
      const auto clean = bench::timed(
          std::string("fleet churn ablation (clean) ") +
              net::fabric_name(fabric),
          [&] {
            return fleet::run_fleet(
                config::fleet_churn_cell(fabric, /*churn=*/false, smoke));
          });

      const fleet::FleetConfig churn_cfg =
          config::fleet_churn_cell(fabric, /*churn=*/true, smoke);
      const auto churned = bench::timed(
          std::string("fleet churn ablation (churn) ") +
              net::fabric_name(fabric),
          [&] { return fleet::run_fleet(churn_cfg); });

      double avail_sum = 0.0;
      int ports_lost = 0;
      int replacements = 0;
      int placed = 0;
      for (const fleet::FleetJobResult& jr : churned.jobs) {
        if (jr.rejected) continue;
        avail_sum += jr.availability;
        ports_lost += jr.ports_lost;
        replacements += jr.replacements;
        ++placed;
      }
      churn_table.add_row(
          {net::fabric_name(fabric),
           std::to_string(churn_cfg.arrivals.n_jobs),
           fmt_double(fleet::fleet_slowdown_stats(clean).p99, 2) + "x",
           fmt_double(fleet::fleet_slowdown_stats(churned).p99, 2) + "x",
           fmt_double(placed > 0 ? avail_sum / placed : 0.0, 3),
           std::to_string(ports_lost), std::to_string(replacements)});
    }
    std::printf("%s\n", churn_table.render().c_str());
    std::printf(
        "Availability = completed-iteration time / placed wall time; < 1\n"
        "under churn captures degraded stalls, eviction gaps, and re-queue\n"
        "waits. A job is evicted (checkpoint -> re-place) only when a\n"
        "failure disconnects a whole node-rail; lesser failures continue\n"
        "degraded (Opus re-plans, the ring resplices on repair, the rotor\n"
        "widens around dead matchings, electrical rails just lose\n"
        "bandwidth). Byte conservation for untouched jobs is pinned by\n"
        "tests/test_faults.cpp.\n");

    // Time-series view of the Opus churn cell: the same run with the
    // telemetry probe on (in-memory metrics only, no file exports — the
    // determinism suite pins that this changes no result field). Shows the
    // fabric availability dip and dark-port churn over the fleet timeline.
    std::printf("\n-- Opus churn cell over time (telemetry probe) --\n");
    fleet::FleetConfig probe_cfg =
        config::fleet_churn_cell(net::FabricKind::kOpusPhotonic,
                                 /*churn=*/true, smoke);
    probe_cfg.base.telemetry.metrics = true;
    probe_cfg.base.telemetry.sample_interval = usecs(250);
    const fleet::FleetResult probed = fleet::run_fleet(probe_cfg);
    const obs::Series* series = probed.telemetry->series();
    const std::vector<std::string>& cols = series->column_names();
    auto col_index = [&cols](const std::string& name) {
      for (std::size_t c = 0; c < cols.size(); ++c) {
        if (cols[c] == name) return c;
      }
      return cols.size();
    };
    const std::size_t avail_col = col_index("fabric.availability");
    const std::size_t dark_col = col_index("fabric.dark_ports");
    const std::size_t queue_col = col_index("fleet.queue_depth");
    TextTable series_table({"t", "Availability", "Dark ports", "Queue"});
    // Subsample to ~12 rows so the table stays readable at any makespan.
    const std::size_t rows = series->row_count();
    const std::size_t stride = rows > 12 ? (rows + 11) / 12 : 1;
    for (std::size_t r = 0; r < rows; r += stride) {
      series_table.add_row({format_time(series->time(r)),
                            fmt_double(series->value(r, avail_col), 3),
                            fmt_double(series->value(r, dark_col), 0),
                            fmt_double(series->value(r, queue_col), 0)});
    }
    std::printf("%s(%zu samples at %s cadence; availability = live ports /\n"
                "total ports, dark ports = ports mid-reconfiguration)\n",
                series_table.render().c_str(), rows,
                format_time(probe_cfg.base.telemetry.sample_interval).c_str());
  }

  std::printf("\n== Fleet timelines (per-job, timeline-sharded) ==\n\n");
  for (net::FabricKind fabric : fabrics) {
    fleet::FleetConfig cfg;
    cfg.n_nodes = smoke ? 32 : 128;
    cfg.base.fabric = fabric;
    cfg.base.gpus_per_node = 4;
    cfg.base.ocs_reconfig_delay = usecs(100);
    cfg.base.rotor_slot_time = msecs(1);
    cfg.policy = fleet::PlacementPolicy::kRailAware;
    cfg.arrivals.seed = 2026;
    cfg.arrivals.n_jobs = smoke ? 8 : 16;
    cfg.arrivals.iterations = 2;
    cfg.arrivals.mean_interarrival = msecs(1);
    cfg.use_shard = true;
    const fleet::FleetResult result = fleet::run_fleet(cfg);
    std::printf("-- %s, %d jobs on %d nodes --\n%s\n",
                net::fabric_name(fabric), cfg.arrivals.n_jobs, cfg.n_nodes,
                fleet::fleet_job_table(result).render().c_str());
  }
  return 0;
}
