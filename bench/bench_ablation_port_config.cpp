// Ablation: NIC port configuration (C3, bandwidth fragmentation). The same
// workload on 1x400G / 2x200G / 4x100G logical port configurations: one port
// cannot hold ring circuits for groups > 2; four ports halve per-circuit
// bandwidth but can hold two dimensions' rings at once.
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"

int main() {
  using namespace opus;

  std::printf("== Ablation: NIC port configuration (constraint C3) ==\n\n");
  TextTable table({"Ports", "Per-port bw", "Iter time", "Reconfigs/iter",
                   "Ctrl queued", "Notes"});
  for (int ports : {1, 2, 4}) {
    core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
    cfg.fabric = net::FabricKind::kOpusPhotonic;
    cfg.nic_ports = ports;
    cfg.ocs_reconfig_delay = msecs(25);  // Piezo
    cfg.iterations = 3;
    cfg.record_compute_trace = false;
    // dp=2 pair groups wire on any port count; pp pairs likewise. The
    // difference shows in striping bandwidth and coexistence.
    const auto r = core::run_experiment(cfg);
    const double per_port = 400.0 / ports;
    std::string note;
    if (ports == 1) {
      note = "pairs only; DP+PP cannot coexist";
    } else if (ports == 2) {
      note = "paper's configuration";
    } else {
      note = "two dims can hold circuits at once";
    }
    table.add_row({fmt_count(ports), fmt_double(per_port, 0) + "G",
                   format_time(r.steady_iteration_time),
                   fmt_double(static_cast<double>(r.ocs_reconfigurations) /
                                  static_cast<double>(r.iteration_times.size()),
                              1),
                   fmt_count(r.controller.queued), note});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "With dp=pp=2 every scale-out group is a pair, so even 1 port works —\n"
      "but larger rings (dp>2) are impossible on one port; see the\n"
      "collective-algorithm ablation for the degree constraint (C1).\n");
  return 0;
}
