// Regenerates Table 2: characteristics of parallelism strategies, plus the
// concrete per-call volumes our CommVolumeModel derives for the paper's
// Llama3-8B workload (the numbers behind Fig. 4b).
#include <cstdio>

#include "common/table.h"
#include "workload/comm_volume.h"

int main() {
  using namespace opus;
  using namespace opus::workload;

  std::printf("== Table 2: characteristics of parallelism strategies ==\n\n");
  TextTable table(
      {"Parallelism", "Memory reduction", "Compute reduction",
       "Communication type and frequency"});
  for (const ParallelismTraits& row : parallelism_traits_table()) {
    table.add_row({row.name, row.memory_reduction, row.compute_reduction,
                   row.communication});
  }
  std::printf("%s\n", table.render().c_str());

  // Instantiate the volume formulas for the traced workload (§3.1).
  ParallelismConfig par;
  par.tp = 4;
  par.dp = 2;
  par.pp = 2;
  par.microbatch_size = 2;
  const ModelConfig model = ModelConfig::llama3_8b();
  const CommVolumeModel vol(model, par);

  std::printf(
      "Concrete per-call volumes (Llama3-8B, TP=4 FSDP=2 PP=2, mbs=2):\n");
  TextTable v({"Collective", "Axis", "Volume", "Notes"});
  v.add_row({"AllGather (params)", "DP",
             format_bytes(vol.fsdp_allgather_per_layer()),
             "per layer, bf16, TP-sharded"});
  v.add_row({"ReduceScatter (grads)", "DP",
             format_bytes(vol.fsdp_reducescatter_per_layer()),
             "per layer, fp32 input"});
  v.add_row({"AllReduce (activations)", "TP",
             format_bytes(vol.tp_allreduce_per_op()), "per operator"});
  v.add_row({"Send/Recv (activations)", "PP",
             format_bytes(vol.pp_sendrecv_per_microbatch()),
             "per microbatch (the paper's 64MB)"});
  v.add_row({"AllGather (KV)", "CP", format_bytes(vol.cp_allgather_per_layer()),
             "per layer"});
  v.add_row({"AllToAll (tokens)", "EP",
             format_bytes(vol.ep_alltoall_per_layer()),
             "per MoE layer (dense model: top-1)"});
  v.add_row({"AllReduce (grad norm)", "DP+PP",
             format_bytes(vol.sync_allreduce()), "optimizer sync, <1MB"});
  std::printf("%s\n", v.render().c_str());

  const Bytes ag_stage =
      16 * vol.fsdp_allgather_per_layer() + vol.embedding_ag_extra(0);
  const Bytes rs_stage =
      16 * vol.fsdp_reducescatter_per_layer() + vol.embedding_rs_extra(0);
  std::printf("Whole-stage FSDP phases (16 layers + embedding):\n");
  std::printf("  AllGather per-rank input  : %.0f MiB (paper: 957MB)\n",
              static_cast<double>(ag_stage / par.dp) / kMiB);
  std::printf("  ReduceScatter input       : %.0f MiB (paper: 3829MB)\n",
              static_cast<double>(rs_stage) / kMiB);
  return 0;
}
