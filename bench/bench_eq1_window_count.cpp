// Regenerates the Eq. 1 analysis: the number of inter-parallelism windows
// per training iteration, including the paper's Llama3.1-405B estimate
// (~127 windows over a ~20 s iteration => ~6 windows/second).
#include <cstdio>

#include "common/table.h"
#include "trace/windows.h"

int main() {
  using namespace opus;
  using namespace opus::trace;

  std::printf("== Eq. 1: windows per training iteration ==\n\n");

  TextTable table({"Workload", "PP", "Layers", "Microbatches", "CP", "EP",
                   "Windows/iter"});
  struct Case {
    const char* name;
    int pp;
    int layers;
    int mb;
    bool cp;
    bool ep;
  };
  const Case cases[] = {
      {"Llama3-8B (3D, traced in Fig. 3a)", 2, 32, 8, false, false},
      {"Llama3-8B (PP=3, Fig. 3b)", 3, 32, 8, false, false},
      {"Llama3-70B (4D, +CP)", 4, 80, 16, true, false},
      {"Llama3.1-405B (4D, CP, ~1k H100)", 9, 126, 16, true, false},
      {"MoE 5D (CP+EP)", 4, 32, 8, true, true},
  };
  for (const Case& c : cases) {
    table.add_row({c.name, fmt_count(c.pp), fmt_count(c.layers),
                   fmt_count(c.mb), c.cp ? "yes" : "no", c.ep ? "yes" : "no",
                   fmt_count(window_count_estimate(c.pp, c.layers, c.mb, c.cp,
                                                   c.ep))});
  }
  std::printf("%s\n", table.render().c_str());

  const std::int64_t w405 = window_count_estimate(9, 126, 16, true, false);
  std::printf(
      "Llama3.1-405B (126 layers, PP=9 per the NVIDIA DGXC recipe, CP, no\n"
      "EP): %lld windows over a ~20 s iteration = %.1f windows/s.\n"
      "Paper: 127 windows, ~6 windows/second.\n",
      static_cast<long long>(w405), static_cast<double>(w405) / 20.0);
  return 0;
}
