// Ablation: what provisioning actually buys (Fig. 5's mechanism). Breaks the
// reconfiguration cost into controller wait time, OCS reconfiguration count,
// and speculative-request effectiveness across latencies.
#include <cstdio>

#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/experiment.h"

int main() {
  using namespace opus;

  std::printf("== Ablation: provisioning (speculative reconfiguration) ==\n\n");
  TextTable table({"Latency (ms)", "Provisioning", "Iter time", "Reconfigs",
                   "Ctrl cache hits", "Max ack wait", "Spec. req",
                   "Mispredictions"});
  const std::vector<double> latencies =
      bench::smoke_mode() ? std::vector<double>{15.0}
                          : std::vector<double>{15.0, 25.0, 100.0, 500.0};
  for (double latency : latencies) {
    for (bool provisioning : {false, true}) {
      core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
      cfg.fabric = net::FabricKind::kOpusPhotonic;
      cfg.ocs_reconfig_delay = msecs(latency);
      cfg.provisioning = provisioning;
      cfg.iterations = 4;
      cfg.record_compute_trace = false;
      const auto r = core::run_experiment(cfg);
      table.add_row({fmt_double(latency, 0), provisioning ? "yes" : "no",
                     format_time(r.steady_iteration_time),
                     fmt_count(r.ocs_reconfigurations),
                     fmt_count(r.controller.satisfied_immediately),
                     format_time(r.controller.max_wait),
                     fmt_count(r.shim_speculative_requests),
                     fmt_count(r.shim_mispredictions)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Provisioning moves reconfigurations off the critical path: the ack\n"
      "wait the application observes shrinks because circuits are already\n"
      "switching (or switched) when the next phase's collectives arrive.\n");
  return 0;
}
