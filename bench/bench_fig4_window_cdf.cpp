// Regenerates Fig. 4: (a) the CDF of inter-parallelism window sizes over 10
// iterations for each rail, and (b) the rail-0 window breakdown by the
// traffic volume that follows each window.
#include <cstdio>

#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/experiment.h"
#include "trace/windows.h"

int main() {
  using namespace opus;

  core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
  cfg.fabric = net::FabricKind::kElectrical;  // measure application windows
  cfg.iterations = 11;                          // 10 measured + warmup
  cfg.record_compute_trace = false;
  const auto result = core::run_experiment(cfg);

  std::printf("== Fig. 4(a): CDF of window sizes (10 iterations) ==\n\n");
  const std::vector<double> probes_ms = {0.01, 0.1, 0.5, 1, 2, 5,
                                         10,   50,  100, 200, 500, 1000};
  TextTable cdf_table({"Window size (ms)", "rail1", "rail2", "rail3",
                       "rail4"});
  std::vector<Cdf> cdfs(4);
  for (int rail = 0; rail < 4; ++rail) {
    for (int iter = 1; iter <= 10; ++iter) {
      for (const auto& w :
           trace::extract_windows(result.recorder->rail_comms(iter, RailId{rail}))) {
        cdfs[static_cast<std::size_t>(rail)].add(to_ms(w.size));
      }
    }
  }
  for (double p : probes_ms) {
    std::vector<std::string> row{fmt_double(p, 2)};
    for (auto& cdf : cdfs) {
      row.push_back(fmt_double(cdf.fraction_at_or_below(p), 2));
    }
    cdf_table.add_row(row);
  }
  std::printf("%s\n", cdf_table.render().c_str());
  double over_1ms = 0.0;
  for (auto& cdf : cdfs) over_1ms += 1.0 - cdf.fraction_at_or_below(1.0);
  std::printf("fraction of windows over 1 ms: %.0f%% (paper: >75%%)\n\n",
              25.0 * over_1ms);

  std::printf("== Fig. 4(b): rail 0 window breakdown by traffic volume ==\n\n");
  std::vector<trace::Window> rail0;
  for (int iter = 1; iter <= 10; ++iter) {
    const auto w =
        trace::extract_windows(result.recorder->rail_comms(iter, RailId{0}));
    rail0.insert(rail0.end(), w.begin(), w.end());
  }
  TextTable breakdown({"Traffic after window", "Count / iter",
                       "Avg window (ms)", "Category"});
  for (const auto& cat : trace::categorize_windows(rail0, 10)) {
    std::string label;
    const double mib_v = static_cast<double>(cat.traffic_after) / kMiB;
    if (mib_v < 1) {
      label = "sync AllReduce (<1MB)";
    } else if (mib_v < 300) {
      label = "PP Send/Recv";
    } else if (mib_v < 1500) {
      label = "DP AllGather";
    } else if (mib_v < 3000) {
      label = "PP steady phase";
    } else {
      label = "DP ReduceScatter";
    }
    breakdown.add_row({format_bytes(cat.traffic_after),
                       fmt_double(cat.count_per_iteration, 1),
                       fmt_double(cat.avg_window_ms, 2), label});
  }
  std::printf("%s\n", breakdown.render().c_str());
  std::printf(
      "(paper categories: <1MB sync AR, 64MB PP Send/Recv, 957MB DP\n"
      " AllGather, 3829MB DP ReduceScatter; the ReduceScatter phase is\n"
      " preceded by the largest window)\n");
  return 0;
}
