// opus_run: the declarative experiment driver. Loads a JSON run spec,
// dispatches single-experiment / sweep / fleet mode, prints the human
// table, and writes the deterministic JSON result document.
//
//   opus_run <spec.json> [-o <out.json>]   run a spec file
//   opus_run --list-presets               show the preset registries
//
// The output path comes from -o, else the spec's "output" key, else only
// stdout gets the document. Exit codes: 0 ok, 1 runtime failure, 2 bad
// usage or a config error (parse/schema errors print file:line:col and the
// JSON path).
//
// Golden regression: scripts/update_goldens.sh runs every configs/*.json
// through this binary and diffs goldens/*.json byte-exact (CI's
// golden-regression step; tests/test_opus_run.cpp pins the same property
// in-process).
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "common/json.h"
#include "config/presets.h"
#include "config/runner.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <spec.json> [-o <out.json>]\n"
               "       %s --list-presets\n",
               argv0, argv0);
  return 2;
}

void list_presets() {
  std::printf("experiment presets (mode \"experiment\"/\"sweep\"):\n");
  for (const auto& p : opus::config::experiment_presets()) {
    std::printf("  %-22s %s\n", p.name.c_str(), p.description.c_str());
  }
  std::printf("\nfleet presets (mode \"fleet\"):\n");
  for (const auto& p : opus::config::fleet_presets()) {
    std::printf("  %-22s %s\n", p.name.c_str(), p.description.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opus;

  std::string spec_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-presets") == 0) {
      list_presets();
      return 0;
    } else if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      out_path = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (spec_path.empty()) {
      spec_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  try {
    const std::string text = config::read_text_file(spec_path);
    config::RunSpec spec;
    try {
      spec = config::parse_run_spec(json::parse(text));
    } catch (const json::ParseError& e) {
      std::fprintf(stderr, "%s:%d:%d: %s\n", spec_path.c_str(), e.line(),
                   e.col(), e.what());
      return 2;
    } catch (const config::SerdeError& e) {
      std::fprintf(stderr, "%s: %s\n", spec_path.c_str(), e.what());
      return 2;
    }

    const config::RunOutput out = [&] {
      try {
        return config::run(spec);
      } catch (const config::SerdeError& e) {
        std::fprintf(stderr, "%s: %s\n", spec_path.c_str(), e.what());
        std::exit(2);
      }
    }();

    std::printf("%s\n", out.table_text.c_str());
    const std::string document = json::dump(out.document) + "\n";
    const std::string target = !out_path.empty() ? out_path : spec.output;
    if (!target.empty()) {
      config::write_text_file(target, document);
      std::fprintf(stderr, "wrote %s\n", target.c_str());
    } else {
      std::printf("%s", document.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
