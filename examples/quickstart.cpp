// Quickstart: build a photonic rail-optimized cluster, run a 3D-parallel
// training job through the Opus control plane, and compare against the
// electrical rail baseline.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.h"

int main() {
  using namespace opus;

  // 1. Describe the workload: Llama3-8B with TP=4 (inside the scale-up
  //    domain), FSDP=2, PP=2, 1F1B with 8 microbatches of 2 sequences.
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::llama3_8b();
  cfg.parallelism.tp = 4;
  cfg.parallelism.dp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.n_microbatches = 8;
  cfg.parallelism.microbatch_size = 2;
  cfg.gpus_per_node = 4;  // 16 GPUs on 4 nodes; 4 rails
  cfg.gpu = workload::GpuSpec::a100();
  cfg.mfu = 0.20;
  cfg.iterations = 3;
  // Simulate the TP AllReduces over NVLink too (the default folds their
  // cost into compute time since they never touch the rails).
  cfg.iteration.simulate_tp_comm = true;

  // 2. Photonic rails: each rail is an optical circuit switch with 15 ms
  //    (3D MEMS) reconfiguration; Opus provisions circuits between
  //    parallelism phases.
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = msecs(15);
  cfg.provisioning = true;
  const auto photonic = core::run_experiment(cfg);

  // 3. Baseline: electrical packet-switched rails (full connectivity).
  cfg.fabric = net::FabricKind::kElectrical;
  const auto electrical = core::run_experiment(cfg);

  std::printf("workload           : %s, %s\n", cfg.model.name.c_str(),
              cfg.parallelism.to_string().c_str());
  std::printf("electrical rails   : %s per iteration\n",
              format_time(electrical.steady_iteration_time).c_str());
  std::printf("photonic rails     : %s per iteration (%.1f%% overhead)\n",
              format_time(photonic.steady_iteration_time).c_str(),
              100.0 * (static_cast<double>(photonic.steady_iteration_time) /
                           static_cast<double>(electrical.steady_iteration_time) -
                       1.0));
  std::printf("OCS reconfigs      : %lld across %d rails (%d from cache)\n",
              static_cast<long long>(photonic.ocs_reconfigurations), 4,
              photonic.controller.satisfied_immediately);
  std::printf("speculative reqs   : %d (provisioning hides the switch time)\n",
              photonic.shim_speculative_requests);
  std::printf("rail traffic       : %s/iteration\n",
              format_bytes(photonic.rail_bytes / cfg.iterations).c_str());
  std::printf("scale-up traffic   : %s (TP stays on NVLink)\n",
              format_bytes(photonic.scale_up_bytes).c_str());
  std::printf(
      "\nThe photonic fabric replaces every rail packet switch with a\n"
      "passive optical circuit switch; Opus reconfigures circuits only\n"
      "when the traffic pattern shifts between parallelism dimensions.\n");
  return 0;
}
