// Reproduces the paper's §3.1 measurement study as a runnable example:
// trace a Llama3-8B 3D-parallel iteration, render the rail-0 Gantt chart
// (Fig. 3), extract inter-parallelism windows, and print the window CDF and
// traffic categories (Fig. 4).
//
//   ./build/examples/llama3_training_trace [pp] [dp]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "trace/gantt.h"
#include "trace/windows.h"

int main(int argc, char** argv) {
  using namespace opus;

  const int pp = argc > 1 ? std::atoi(argv[1]) : 2;
  const int dp = argc > 2 ? std::atoi(argv[2]) : 2;

  core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
  cfg.parallelism.pp = pp;
  cfg.parallelism.dp = dp;
  cfg.fabric = net::FabricKind::kElectrical;
  cfg.iterations = 4;
  cfg.record_compute_trace = false;
  std::printf("tracing %s, %s on %d nodes of %d A100s...\n\n",
              cfg.model.name.c_str(), cfg.parallelism.to_string().c_str(),
              cfg.parallelism.world_size() / cfg.gpus_per_node,
              cfg.gpus_per_node);
  const auto r = core::run_experiment(cfg);

  // Fig. 3-style Gantt of rail 0 for a steady-state iteration.
  const auto& span = r.recorder->iterations()[2];
  const auto comms = r.recorder->rail_comms(2, RailId{0});
  std::vector<GpuId> rail_gpus;
  for (int node = 0; node < pp * dp; ++node) {
    rail_gpus.push_back(GpuId{node * cfg.gpus_per_node});
  }
  std::printf("%s\n", trace::render_rail_gantt(comms, rail_gpus, span.t_start,
                                               span.t_end)
                          .c_str());

  // Window analysis over the steady iterations.
  std::vector<trace::Window> windows;
  for (int iter = 1; iter < cfg.iterations; ++iter) {
    for (int rail = 0; rail < cfg.gpus_per_node; ++rail) {
      const auto w = trace::extract_windows(
          r.recorder->rail_comms(iter, RailId{rail}));
      windows.insert(windows.end(), w.begin(), w.end());
    }
  }
  Cdf cdf;
  for (const auto& w : windows) cdf.add(to_ms(w.size));
  std::printf("windows: %zu total, median %.2f ms, p90 %.2f ms, max %.0f ms\n",
              windows.size(), cdf.median(), cdf.quantile(0.9),
              cdf.quantile(1.0));
  std::printf("over 1 ms: %.0f%% (paper: >75%%)\n\n",
              100.0 * (1.0 - cdf.fraction_at_or_below(1.0)));

  std::printf("window categories by following traffic (Fig. 4b):\n");
  for (const auto& cat :
       trace::categorize_windows(windows, cfg.iterations - 1)) {
    std::printf("  %-10s -> %4.1f windows/iter, avg %8.2f ms\n",
                format_bytes(cat.traffic_after).c_str(),
                cat.count_per_iteration, cat.avg_window_ms);
  }
  std::printf(
      "\nEvery parallelism shift is a circuit-reconfiguration opportunity:\n"
      "Eq. 1 predicts %lld windows/iteration for this configuration.\n",
      static_cast<long long>(trace::window_count_estimate(
          pp, cfg.model.n_layers, cfg.parallelism.n_microbatches, false,
          false)));
  return 0;
}
