// Domain example: size and price a GPU-backend network. Covers every
// net::FabricKind in the simulator's comparison set — electrical
// rail-optimized packet rails, Opus's demand-driven OCS, the static pre-job
// ring (robotic patch-panel OCS), and the RotorNet-style rotor (fast OCS) —
// plus the classic fat-tree reference, and prints the full bill of
// materials with power draw (the Fig. 7 methodology as an interactive
// tool). --json appends the machine-readable document (TextTable::to_json)
// for downstream plotting, mirroring opus_run's table+JSON convention.
//
//   ./build/examples/fabric_cost_planner [n_gpus] [gpus_per_node] [--json]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/json.h"
#include "common/table.h"
#include "costmodel/fabric_cost.h"
#include "net/cluster.h"

namespace {

opus::costmodel::FabricCost cost_of(opus::net::FabricKind kind, int n_gpus,
                                    const opus::costmodel::CostParams& p) {
  using namespace opus::costmodel;
  switch (kind) {
    case opus::net::FabricKind::kElectrical:
      return rail_optimized_fabric(n_gpus, p);
    case opus::net::FabricKind::kOpusPhotonic:
      return opus_fabric(n_gpus, p);
    case opus::net::FabricKind::kStaticRing:
      return static_ring_fabric(n_gpus, p);
    case opus::net::FabricKind::kRotor:
      return rotor_fabric(n_gpus, p);
  }
  return rail_optimized_fabric(n_gpus, p);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opus;
  using namespace opus::costmodel;

  bool emit_json = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int n_gpus = positional.size() > 0 ? std::atoi(positional[0]) : 4096;
  CostParams params;
  params.gpus_per_node = positional.size() > 1 ? std::atoi(positional[1]) : 8;

  std::printf("== Fabric planner: %d GPUs, %d per scale-up domain ==\n\n",
              n_gpus, params.gpus_per_node);

  // The fat-tree reference plus all four simulator fabrics (FabricKind).
  std::vector<FabricCost> fabrics;
  fabrics.push_back(fat_tree_fabric(n_gpus, params));
  for (net::FabricKind kind : net::kAllFabrics) {
    fabrics.push_back(cost_of(kind, n_gpus, params));
  }

  TextTable table({"Fabric", "Switches", "OCS", "Optics", "Capex",
                   "Power", "$/GPU", "W/GPU"});
  for (const FabricCost& f : fabrics) {
    table.add_row({f.fabric, fmt_count(f.n_switches), fmt_count(f.n_ocs),
                   fmt_count(f.n_transceivers), fmt_dollars(f.total_cost()),
                   fmt_count(static_cast<std::int64_t>(f.total_power_w())) +
                       " W",
                   fmt_dollars(f.total_cost() / n_gpus),
                   fmt_double(f.total_power_w() / n_gpus, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  if (emit_json) {
    json::Value doc = json::Value::object();
    doc.set("n_gpus", json::Value(n_gpus));
    doc.set("gpus_per_node", json::Value(params.gpus_per_node));
    doc.set("table", table.to_json());
    std::printf("%s\n\n", json::dump(doc).c_str());
  }

  const FabricCost rail_electrical =
      cost_of(net::FabricKind::kElectrical, n_gpus, params);
  const FabricCost opus_rails =
      cost_of(net::FabricKind::kOpusPhotonic, n_gpus, params);
  const double cost_save = cost_saving(opus_rails, rail_electrical);
  const double power_save = power_saving(opus_rails, rail_electrical);
  std::printf(
      "Opus saves %.1f%% capex and %.1f%% power versus the rail-optimized\n"
      "electrical fabric at this scale. The static ring and rotor share\n"
      "Opus's passive rail hardware (no switch ASICs, no OEO) but differ in\n"
      "OCS technology: robotic patching for the never-reconfigured ring,\n"
      "microsecond-class switching for the rotor — their capex gap is the\n"
      "price of reconfiguration speed; their performance gap is what\n"
      "bench_ablation_rotor, bench_ablation_static_topology, and\n"
      "bench_fleet_multitenant measure.\n",
      100 * cost_save, 100 * power_save);

  // Check the scale limit of each photonic fabric's OCS (Table 3). The
  // priced technology rides in FabricCost::ocs_technology, so no fabric
  // needs its spec re-derived here.
  for (const FabricCost& f : fabrics) {
    if (f.n_ocs == 0) continue;
    const OcsSpec& ocs = ocs_by_technology(f.ocs_technology);
    const std::int64_t max_gpus = opus_max_gpus(ocs, params.gpus_per_node);
    if (n_gpus > max_gpus) {
      std::printf(
          "\nNOTE: %s — %d GPUs exceeds one %s OCS per rail (max %lld "
          "GPUs);\nthe model provisions %d OCS chassis per rail instead.\n",
          f.fabric.c_str(), n_gpus, ocs.technology.c_str(),
          static_cast<long long>(max_gpus),
          f.n_ocs / params.gpus_per_node);
    }
  }
  return 0;
}
