// Domain example: size and price a GPU-backend network. Compares fat-tree,
// rail-optimized, and Opus photonic rails for a target cluster and prints
// the full bill of materials with power draw (the Fig. 7 methodology as an
// interactive tool).
//
//   ./build/examples/fabric_cost_planner [n_gpus] [gpus_per_node]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "costmodel/fabric_cost.h"

int main(int argc, char** argv) {
  using namespace opus;
  using namespace opus::costmodel;

  const int n_gpus = argc > 1 ? std::atoi(argv[1]) : 4096;
  CostParams params;
  params.gpus_per_node = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("== Fabric planner: %d GPUs, %d per scale-up domain ==\n\n",
              n_gpus, params.gpus_per_node);

  const FabricCost fabrics[] = {
      fat_tree_fabric(n_gpus, params),
      rail_optimized_fabric(n_gpus, params),
      opus_fabric(n_gpus, params),
  };

  TextTable table({"Fabric", "Switches", "OCS", "Optics", "Capex",
                   "Power", "$/GPU", "W/GPU"});
  for (const FabricCost& f : fabrics) {
    table.add_row({f.fabric, fmt_count(f.n_switches), fmt_count(f.n_ocs),
                   fmt_count(f.n_transceivers), fmt_dollars(f.total_cost()),
                   fmt_count(static_cast<std::int64_t>(f.total_power_w())) +
                       " W",
                   fmt_dollars(f.total_cost() / n_gpus),
                   fmt_double(f.total_power_w() / n_gpus, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  const double cost_save = cost_saving(fabrics[2], fabrics[1]);
  const double power_save = power_saving(fabrics[2], fabrics[1]);
  std::printf(
      "Opus saves %.1f%% capex and %.1f%% power versus the rail-optimized\n"
      "fabric at this scale. Yearly energy at $0.10/kWh: fat-tree %s,\n"
      "rail-optimized %s, Opus %s.\n",
      100 * cost_save, 100 * power_save,
      fmt_dollars(fabrics[0].total_power_w() / 1000 * 24 * 365 * 0.10).c_str(),
      fmt_dollars(fabrics[1].total_power_w() / 1000 * 24 * 365 * 0.10).c_str(),
      fmt_dollars(fabrics[2].total_power_w() / 1000 * 24 * 365 * 0.10).c_str());

  // Check the scale limit of the chosen OCS (Table 3).
  const std::int64_t max_gpus = opus_max_gpus(params.ocs, params.gpus_per_node);
  if (n_gpus > max_gpus) {
    std::printf(
        "\nWARNING: %d GPUs exceeds one %s OCS per rail (max %lld GPUs);\n"
        "the model provisions %d OCS chassis per rail instead.\n",
        n_gpus, params.ocs.technology.c_str(),
        static_cast<long long>(max_gpus), fabrics[2].n_ocs / params.gpus_per_node);
  }
  return 0;
}
