// Domain example: a Mixtral-style MoE job with expert parallelism — the
// hardest case for photonic rails (§5 "Supporting any communication
// patterns"): EP AllToAll has no efficient ring implementation, so on
// circuits it runs as pairwise permutation steps with one reconfiguration
// per step, or gets offloaded to the host packet network when small.
//
//   ./build/examples/moe_expert_parallel
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"

int main() {
  using namespace opus;

  core::ExperimentConfig base;
  base.model = workload::ModelConfig::mixtral_8x7b();
  base.model.n_layers = 8;  // keep the example quick
  base.parallelism.tp = 4;
  base.parallelism.dp = 4;
  base.parallelism.ep = 4;
  base.parallelism.pp = 1;
  base.parallelism.n_microbatches = 2;
  base.parallelism.microbatch_size = 1;
  base.gpus_per_node = 4;
  base.mfu = 0.25;
  base.iterations = 3;
  base.record_compute_trace = false;
  base.iteration.simulate_ep_comm = true;

  std::printf("== MoE expert parallelism on photonic rails ==\n");
  std::printf("workload: %s, %s (16 GPUs, EP AllToAll per layer)\n\n",
              base.model.name.c_str(), base.parallelism.to_string().c_str());

  TextTable table({"Fabric", "Iter time", "Reconfigs/iter", "Rail bytes/iter",
                   "Mgmt bytes/iter"});

  auto row = [&](const char* name, const core::ExperimentResult& r,
                 int iters) {
    table.add_row({name, format_time(r.steady_iteration_time),
                   fmt_double(static_cast<double>(r.ocs_reconfigurations) /
                                  iters, 1),
                   format_bytes(r.rail_bytes / iters),
                   format_bytes(r.mgmt_bytes / iters)});
  };

  {
    core::ExperimentConfig cfg = base;
    cfg.fabric = net::FabricKind::kElectrical;
    row("Electrical rails", core::run_experiment(cfg), cfg.iterations);
  }
  {
    core::ExperimentConfig cfg = base;
    cfg.fabric = net::FabricKind::kOpusPhotonic;
    cfg.ocs_reconfig_delay = msecs(0.01);  // RotorNet-class fast OCS
    row("Photonic, 10us OCS", core::run_experiment(cfg), cfg.iterations);
  }
  {
    core::ExperimentConfig cfg = base;
    cfg.fabric = net::FabricKind::kOpusPhotonic;
    cfg.ocs_reconfig_delay = msecs(15);  // 3D MEMS
    row("Photonic, 15ms OCS", core::run_experiment(cfg), cfg.iterations);
  }
  {
    // §5's escape hatch: offload the small, high-incast AllToAll slices to
    // the host packet-switched network.
    core::ExperimentConfig cfg = base;
    cfg.fabric = net::FabricKind::kOpusPhotonic;
    cfg.ocs_reconfig_delay = msecs(15);
    cfg.mgmt_bw = Bandwidth::gbps(100);
    cfg.mgmt_offload_threshold = mib(512);  // take the whole AllToAll
    row("Photonic + host offload", core::run_experiment(cfg), cfg.iterations);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Pairwise AllToAll reconfigures per permutation step, so slow OCSes\n"
      "hurt badly (C1); a fast OCS or host-network offload for small\n"
      "AllToAll payloads recovers most of the gap — the hybrid escape the\n"
      "paper sketches in §5.\n");
  return 0;
}
