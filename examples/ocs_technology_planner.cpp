// Domain example: pick an OCS technology for a photonic rail deployment.
// For each Table 3 technology this tool checks the radix against the target
// cluster, then simulates the training workload at that technology's
// reconfiguration latency to report the expected iteration-time overhead —
// the scalability/latency tradeoff of Table 3 made concrete.
//
//   ./build/examples/ocs_technology_planner [n_gpus]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "core/experiment.h"
#include "costmodel/ocs_catalog.h"

int main(int argc, char** argv) {
  using namespace opus;

  const int target_gpus = argc > 1 ? std::atoi(argv[1]) : 1024;
  const int scale_up = 8;  // DGX H200

  std::printf("== OCS technology planner: %d H200 GPUs ==\n\n", target_gpus);

  // Baseline iteration time: fully-connected electrical rails on the
  // evaluation workload.
  core::ExperimentConfig cfg = core::perlmutter_llama3_8b_config();
  cfg.fabric = net::FabricKind::kElectrical;
  cfg.iterations = 3;
  cfg.record_compute_trace = false;
  const double base =
      static_cast<double>(core::run_experiment(cfg).steady_iteration_time);

  TextTable table({"Technology", "Reconfig", "Max GPUs", "Fits?",
                   "Iter overhead (no prov.)", "Iter overhead (prov.)"});
  for (const auto& ocs : costmodel::ocs_catalog()) {
    const std::int64_t max_gpus = costmodel::opus_max_gpus(ocs, scale_up);
    const bool fits = max_gpus >= target_gpus;
    std::string over_np = "-";
    std::string over_p = "-";
    if (ocs.reconfig_ms <= 1000.0) {  // robotic switches are not in-job
      for (bool provisioning : {false, true}) {
        core::ExperimentConfig pcfg = core::perlmutter_llama3_8b_config();
        pcfg.fabric = net::FabricKind::kOpusPhotonic;
        pcfg.ocs_reconfig_delay = ocs.reconfig_time();
        pcfg.provisioning = provisioning;
        pcfg.iterations = 3;
        pcfg.record_compute_trace = false;
        const auto r = core::run_experiment(pcfg);
        const double overhead =
            100.0 * (static_cast<double>(r.steady_iteration_time) / base - 1.0);
        (provisioning ? over_p : over_np) = fmt_double(overhead, 1) + "%";
      }
    }
    table.add_row({ocs.technology, fmt_double(ocs.reconfig_ms, 3) + "ms",
                   fmt_count(max_gpus), fits ? "yes" : "NO", over_np, over_p});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Pick the slowest (cheapest, highest-radix) technology whose\n"
      "provisioned overhead is acceptable: reconfiguration hides inside\n"
      "the inter-parallelism windows, so even 15-25 ms MEMS/piezo switches\n"
      "cost almost nothing in iteration time (the paper's conclusion).\n");
  return 0;
}
