// The paper's provocative question made runnable: "can we reconfigure the
// OCSes during a job to enable 5D parallelisms?" (§3, Key Insight).
//
// This example trains a Mixtral-style MoE with TP + CP inside the scale-up
// domain and FSDP + PP + EP across the photonic rails — five parallelism
// dimensions whose scale-out groups time-multiplex two NIC ports per GPU
// through Opus reconfiguration. A static port partition could not even hold
// the three scale-out dimensions' rings at once (C2/C3).
//
//   ./build/examples/five_d_parallelism
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"
#include "trace/windows.h"

int main() {
  using namespace opus;

  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::mixtral_8x7b();
  cfg.model.n_layers = 8;  // keep the example quick
  cfg.parallelism.tp = 2;
  cfg.parallelism.cp = 2;
  cfg.parallelism.dp = 4;
  cfg.parallelism.ep = 2;  // EP nests inside DP
  cfg.parallelism.pp = 2;
  cfg.parallelism.n_microbatches = 4;
  cfg.parallelism.microbatch_size = 1;
  cfg.gpus_per_node = 4;  // TP x CP fills the scale-up domain
  cfg.mfu = 0.25;
  cfg.iterations = 3;
  cfg.record_compute_trace = false;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = msecs(15);

  std::printf("== 5D parallelism on photonic rails ==\n");
  std::printf("model: %s (%.1fB params, %d experts)\n", cfg.model.name.c_str(),
              static_cast<double>(cfg.model.total_params()) / 1e9,
              cfg.model.n_experts);
  std::printf("parallelism: %s on %d GPUs (%d nodes x %d)\n\n",
              cfg.parallelism.to_string().c_str(),
              cfg.parallelism.world_size(),
              cfg.parallelism.world_size() / cfg.gpus_per_node,
              cfg.gpus_per_node);

  const auto mems = core::run_experiment(cfg);
  cfg.ocs_reconfig_delay = msecs(0.01);  // RotorNet-class fast OCS
  const auto fast = core::run_experiment(cfg);
  cfg.fabric = net::FabricKind::kElectrical;
  const auto electrical = core::run_experiment(cfg);

  TextTable table({"Metric", "Electrical", "Opus, 15ms MEMS",
                   "Opus, 10us OCS"});
  table.add_row({"iteration time",
                 format_time(electrical.steady_iteration_time),
                 format_time(mems.steady_iteration_time),
                 format_time(fast.steady_iteration_time)});
  table.add_row(
      {"OCS reconfigs/iter", "0",
       fmt_double(static_cast<double>(mems.ocs_reconfigurations) /
                      static_cast<double>(cfg.iterations),
                  1),
       fmt_double(static_cast<double>(fast.ocs_reconfigurations) /
                      static_cast<double>(cfg.iterations),
                  1)});
  table.add_row({"circuit-cache hits", "-",
                 fmt_count(mems.controller.satisfied_immediately),
                 fmt_count(fast.controller.satisfied_immediately)});
  table.add_row({"rail traffic/iter",
                 format_bytes(electrical.rail_bytes / cfg.iterations),
                 format_bytes(mems.rail_bytes / cfg.iterations),
                 format_bytes(fast.rail_bytes / cfg.iterations)});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "5D hybrid parallelism runs on two NIC ports per GPU: three scale-out\n"
      "dimensions (FSDP rings, PP pairs, EP AllToAll) time-multiplex the\n"
      "rail circuits at parallelism shifts — a static partition would need\n"
      "six ports for the rings alone (C2/C3). The cost is reconfiguration\n"
      "frequency: per-layer EP switching makes slow MEMS expensive\n"
      "(+%.0f%%), while a microsecond-class OCS brings the overhead down to\n"
      "+%.0f%% (the paper's §5 \"frequent switching\" caveat, quantified).\n\n",
      100.0 * (static_cast<double>(mems.steady_iteration_time) /
                   static_cast<double>(electrical.steady_iteration_time) -
               1.0),
      100.0 * (static_cast<double>(fast.steady_iteration_time) /
                   static_cast<double>(electrical.steady_iteration_time) -
               1.0));

  // Eq. 1 for this 5D configuration (CP and EP both present).
  std::printf("Eq. 1 windows/iteration for this job: %lld\n",
              static_cast<long long>(trace::window_count_estimate(
                  cfg.parallelism.pp, cfg.model.n_layers,
                  cfg.parallelism.n_microbatches, true, true)));
  return 0;
}
