// Fleet-scenario quickstart: a multi-tenant datacenter in ~40 lines.
//
// Eight mixed-shape training jobs arrive on a Poisson trace and share one
// 16-node Opus photonic cluster: the placement engine carves node spans,
// per-tenant transports own disjoint OCS port blocks, and the jobs contend
// for rail bandwidth on one shared fluid network. Prints the per-job table
// (JCT, queueing, slowdown versus an isolated run, dark-time share) and the
// fleet-level aggregates.
//
//   ./build/examples/fleet_quickstart [fabric: electrical|opus|ring|rotor]
#include <cstdio>
#include <cstring>

#include "fleet/fleet.h"

int main(int argc, char** argv) {
  using namespace opus;

  net::FabricKind fabric = net::FabricKind::kOpusPhotonic;
  if (argc > 1) {
    if (std::strcmp(argv[1], "electrical") == 0) {
      fabric = net::FabricKind::kElectrical;
    } else if (std::strcmp(argv[1], "ring") == 0) {
      fabric = net::FabricKind::kStaticRing;
    } else if (std::strcmp(argv[1], "rotor") == 0) {
      fabric = net::FabricKind::kRotor;
    }
  }

  fleet::FleetConfig cfg;
  cfg.n_nodes = 16;
  cfg.base.fabric = fabric;
  cfg.base.gpus_per_node = 4;
  cfg.base.ocs_reconfig_delay = usecs(100);
  cfg.arrivals.seed = 7;
  cfg.arrivals.n_jobs = 8;
  cfg.arrivals.iterations = 2;
  cfg.arrivals.mean_interarrival = msecs(20);
  cfg.policy = fleet::PlacementPolicy::kRailAware;

  std::printf("== Fleet quickstart: %d jobs on %d nodes, %s rails ==\n\n",
              cfg.arrivals.n_jobs, cfg.n_nodes, net::fabric_name(fabric));

  const fleet::FleetResult result = fleet::run_fleet(cfg);
  std::printf("%s\n", fleet::fleet_job_table(result).render().c_str());

  const fleet::SlowdownStats slow = fleet::fleet_slowdown_stats(result);
  std::printf(
      "makespan %s | node utilization %.1f%% | mean slowdown %.2fx | p99 "
      "%.2fx | peak fragmentation %.2f\n",
      format_time(result.makespan).c_str(), 100.0 * result.utilization,
      slow.mean, slow.p99, result.peak_fragmentation);
  std::printf(
      "\nSlowdown folds queueing and rail contention together; rerun with\n"
      "electrical/ring/rotor to see how each fabric shares (or fails to\n"
      "share) the rails. bench_fleet_multitenant sweeps this comparison.\n");
  return 0;
}
