// Fleet-scenario quickstart: a multi-tenant datacenter in ~40 lines.
//
// Eight mixed-shape training jobs arrive on a Poisson trace and share one
// 16-node cluster: the placement engine carves node spans, per-tenant
// transports own disjoint OCS port blocks, and the jobs contend for rail
// bandwidth on one shared fluid network. The scenario is the config layer's
// "fleet_quickstart_opus" preset — the same cell `opus_run
// configs/fleet_quickstart_opus.json` runs and goldens/ pins — with the
// fabric swapped from the command line. Prints the per-job table (JCT,
// queueing, slowdown versus an isolated run, dark-time share), the
// fleet-level aggregates, and optionally the JSON result document.
//
//   ./build/examples/fleet_quickstart [fabric: electrical|opus|ring|rotor]
//                                     [--json]
#include <cstdio>
#include <cstring>

#include "config/presets.h"
#include "config/serde.h"
#include "fleet/fleet.h"

int main(int argc, char** argv) {
  using namespace opus;

  net::FabricKind fabric = net::FabricKind::kOpusPhotonic;
  bool emit_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else {
      // The serde token set ("electrical"|"opus"|"ring"|"rotor").
      fabric = config::fabric_kind_from_token(argv[i], "$.argv");
    }
  }

  fleet::FleetConfig cfg = config::fleet_quickstart_cell(fabric);

  std::printf("== Fleet quickstart: %d jobs on %d nodes, %s rails ==\n\n",
              cfg.arrivals.n_jobs, cfg.n_nodes, net::fabric_name(fabric));

  const fleet::FleetResult result = fleet::run_fleet(cfg);
  std::printf("%s\n", fleet::fleet_job_table(result).render().c_str());

  const fleet::SlowdownStats slow = fleet::fleet_slowdown_stats(result);
  std::printf(
      "makespan %s | node utilization %.1f%% | mean slowdown %.2fx | p99 "
      "%.2fx | peak fragmentation %.2f\n",
      format_time(result.makespan).c_str(), 100.0 * result.utilization,
      slow.mean, slow.p99, result.peak_fragmentation);
  if (emit_json) {
    std::printf("\n%s\n", json::dump(config::to_json(result)).c_str());
  }
  std::printf(
      "\nSlowdown folds queueing and rail contention together; rerun with\n"
      "electrical/ring/rotor to see how each fabric shares (or fails to\n"
      "share) the rails. bench_fleet_multitenant sweeps this comparison;\n"
      "opus_run configs/fleet_quickstart_opus.json runs this exact cell\n"
      "declaratively (goldens/ pins its document byte-for-byte).\n");
  return 0;
}
