// Job-arrival generation for the multi-tenant fleet simulator.
//
// A datacenter fleet is a stream of training jobs of different shapes
// sharing one cluster (the paper's "millions of users" setting; Morphlux
// frames the same multi-tenant reshaping problem for photonic fabrics).
// This module turns a seeded RNG + a weighted shape mix — drawn from the
// Table 1/2 parallelism practices — into a deterministic arrival trace:
// Poisson arrivals (exponential inter-arrival times), weighted shape picks,
// and a per-job engine-jitter seed, all reproducible bit-for-bit from
// ArrivalConfig::seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "workload/model_config.h"
#include "workload/parallelism.h"

namespace opus::fleet {

/// One job shape in the mix: a model plus its parallelism layout. The node
/// footprint follows from world_size / gpus_per_node.
struct JobShape {
  std::string name;
  workload::ModelConfig model;
  workload::ParallelismConfig parallelism;
  /// Relative arrival frequency within the mix.
  double weight = 1.0;

  int n_nodes(int gpus_per_node) const {
    return parallelism.world_size() / gpus_per_node;
  }

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const JobShape&, const JobShape&) = default;
};

/// The Table 1/2-style default mix: small DP-only jobs through DP x PP
/// hybrids, all with TP filling the scale-up domain so every scale-out
/// group is rail-local (the property the photonic fabrics exploit).
/// `dp_scale` multiplies each shape's DP degree (1 = the 2..8-node test
/// mix; larger values grow footprints for paper-scale fleets). Models are
/// test_tiny-sized so fleet sweeps stay tractable.
std::vector<JobShape> table_mix_shapes(int gpus_per_node, int dp_scale = 1);

struct ArrivalConfig {
  std::uint64_t seed = 2026;
  int n_jobs = 16;
  /// Mean of the exponential inter-arrival distribution.
  TimeNs mean_interarrival = msecs(50);
  /// Training iterations per job.
  int iterations = 2;
  /// Weighted shape mix; empty defers to table_mix_shapes(gpus_per_node).
  std::vector<JobShape> shapes;

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const ArrivalConfig&, const ArrivalConfig&) = default;
};

/// One generated arrival.
struct JobSpec {
  int id = 0;                ///< dense 0..n_jobs-1, in arrival order
  TimeNs arrival = 0;
  int shape_index = 0;       ///< into the resolved shape mix
  JobShape shape;
  int iterations = 1;
  /// Per-job host-dispatch jitter seed (decorrelates tenants' dispatch
  /// streams; derived deterministically from the arrival seed and job id).
  std::uint64_t engine_seed = 0;
};

/// Generates the arrival trace: jobs in non-decreasing arrival order,
/// deterministic in `cfg.seed`. Throws when a shape's world size does not
/// fill whole nodes of `gpus_per_node`.
std::vector<JobSpec> generate_arrivals(const ArrivalConfig& cfg,
                                       int gpus_per_node);

}  // namespace opus::fleet
