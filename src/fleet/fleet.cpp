#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <numeric>

#include "common/error.h"
#include "common/units.h"
#include "core/rotor.h"

namespace opus::fleet {

namespace {

core::ExperimentConfig job_experiment_config(const FleetConfig& cfg,
                                             const JobSpec& spec) {
  core::ExperimentConfig c = cfg.base;
  c.model = spec.shape.model;
  c.parallelism = spec.shape.parallelism;
  c.iterations = spec.iterations;
  c.engine.seed = spec.engine_seed;
  // Isolated baselines (this config's only consumer besides the per-tenant
  // build, which ignores the field) are the fault-free yardstick: churn is a
  // property of the shared fleet, not of the job.
  c.faults = core::FaultConfig{};
  // Telemetry belongs to the shared fleet run: baselines stay instrumentation
  // -free (also keeps the single-threaded SelfProfiler off the sweep pool).
  c.telemetry = obs::TelemetryConfig{};
  return c;
}

/// The event-driven fleet state machine: arrival -> place-or-queue -> run ->
/// shutdown -> quiesce -> wipe/release -> place queued. Under failure churn
/// a second loop closes over it: fault -> degrade (or evict + checkpoint ->
/// re-queue -> re-place) -> repair -> pump. All members are plain references
/// into run_fleet's stack frame; the driver outlives the simulation loop.
struct Driver {
  const FleetConfig& cfg;
  sim::Simulator& sim;
  net::Cluster& cluster;
  PlacementEngine& placement;
  FleetResult& result;
  std::vector<std::unique_ptr<core::Tenant>>& tenants;
  std::deque<int> queue;               // FCFS job indices awaiting nodes
  std::vector<TimeNs> dark_at_start;   // per-job span dark-time snapshot
  /// Evicted tenants parked until end of run: their aborted engines and
  /// transports may still be named by in-flight simulator events, so they
  /// must outlive the simulation even after the job re-placed into a fresh
  /// tenant object.
  std::vector<std::unique_ptr<core::Tenant>> graveyard = {};
  /// Telemetry hub (null when disabled): lifecycle instants + fleet gauges.
  obs::Telemetry* tel = nullptr;

  void lifecycle(const char* kind, int job) const {
    if (tel != nullptr) tel->on_fleet_event(kind, job, sim.now());
  }

  void on_arrival(int i) {
    FleetJobResult& jr = result.jobs[static_cast<std::size_t>(i)];
    const int nodes = jr.spec.shape.n_nodes(cfg.base.gpus_per_node);
    lifecycle("arrive", i);
    if (nodes > cfg.n_nodes) {
      jr.rejected = true;
      ++result.rejected_jobs;
      lifecycle("reject", i);
      return;
    }
    // Strict FCFS: an arrival may not overtake already-queued jobs.
    if (!queue.empty() || !try_place(i)) queue.push_back(i);
  }

  bool span_healthy(net::NodeSpan span) const {
    for (int n = span.first; n < span.end(); ++n) {
      if (cluster.node_disconnected(NodeId{n})) return false;
    }
    return true;
  }

  bool try_place(int i) {
    FleetJobResult& jr = result.jobs[static_cast<std::size_t>(i)];
    const int nodes = jr.spec.shape.n_nodes(cfg.base.gpus_per_node);
    const auto span = placement.allocate(nodes);
    if (!span.has_value()) return false;
    // Never place onto a span with a fully disconnected node — the job
    // would be evicted at its first send. Give the extent back and wait;
    // the repair that reconnects the node pumps the queue again.
    if (!span_healthy(*span)) {
      placement.release(*span);
      return false;
    }
    result.peak_fragmentation =
        std::max(result.peak_fragmentation, placement.fragmentation());
    result.peak_free_extents =
        std::max(result.peak_free_extents, placement.free_extent_count());

    jr.placement = *span;
    lifecycle(jr.replacements > 0 ? "re-place" : "place", i);
    // A re-placement after eviction keeps the original start: queueing
    // delay measures the first wait, availability absorbs the gaps.
    if (jr.start == 0 && jr.replacements == 0) jr.start = sim.now();
    cluster.assign_tenant(jr.spec.id, *span);
    dark_at_start[static_cast<std::size_t>(i)] =
        cluster.photonic() ? cluster.ocs_dark_time_in_span(*span) : 0;

    auto& tenant = tenants[static_cast<std::size_t>(i)];
    tenant = std::make_unique<core::Tenant>(core::build_tenant(
        sim, cluster, job_experiment_config(cfg, jr.spec), *span));
    // Checkpoint semantics: iterations completed before an eviction are
    // banked in jr.iteration_times; the fresh tenant runs only the rest.
    const int remaining =
        jr.spec.iterations - static_cast<int>(jr.iteration_times.size());
    tenant->engine->run(tenant->dag, remaining, [this, i] { on_job_done(i); });
    return true;
  }

  void on_job_done(int i) {
    FleetJobResult& jr = result.jobs[static_cast<std::size_t>(i)];
    core::Tenant& tenant = *tenants[static_cast<std::size_t>(i)];
    jr.finish = sim.now();
    lifecycle("finish", i);
    for (const TimeNs t : tenant.engine->iteration_times()) {
      jr.iteration_times.push_back(t);
    }
    if (tenant.rotor != nullptr) {
      jr.rotor_rotations += tenant.rotor->rotations();
      jr.rotor_deferred_sends += tenant.rotor->deferred_sends();
    }
    // Stop the tenant's control plane FIRST (synchronously): the very event
    // that completed the job may still trigger a trailing rotor rotation or
    // a speculative Opus request once this callback returns.
    tenant.shutdown_transport();
    cluster.quiesce_span_ports(tenant.span, [this, i] { recycle(i); });
  }

  void recycle(int i) {
    FleetJobResult& jr = result.jobs[static_cast<std::size_t>(i)];
    const net::NodeSpan span = jr.placement;
    if (cluster.photonic()) {
      jr.dark_time += cluster.ocs_dark_time_in_span(span) -
                      dark_at_start[static_cast<std::size_t>(i)];
    }
    cluster.release_tenant(span);
    placement.release(span);
    pump_queue();
  }

  void pump_queue() {
    // Head-of-line jobs that now fit start immediately (same instant).
    while (!queue.empty() && try_place(queue.front())) queue.pop_front();
  }

  /// True while job `i` owns a span and its engine is live (between
  /// try_place and on_job_done/evict).
  bool running(int i) const {
    const auto& tenant = tenants[static_cast<std::size_t>(i)];
    return tenant != nullptr && !tenant->engine->aborted() &&
           result.jobs[static_cast<std::size_t>(i)].finish == 0;
  }

  void on_fault(const net::NicFault& fault) {
    const int id = cluster.tenant_of(fault.node);
    if (id != net::Cluster::kNoTenant && running(id)) {
      FleetJobResult& jr = result.jobs[static_cast<std::size_t>(id)];
      core::Tenant& tenant = *tenants[static_cast<std::size_t>(id)];
      if (fault.failed) {
        ++jr.ports_lost;
        tenant.react_to_fault(fault);
        // Kill criterion: a node that lost ALL ports of some rail cannot
        // carry its collectives even degraded — checkpoint and re-place.
        if (cluster.node_disconnected(fault.node)) evict(id);
      } else {
        tenant.react_to_fault(fault);  // resplice rings, poke the rotor
      }
      return;
    }
    // Repaired capacity on unowned (or draining) nodes: a queued job that
    // was blocked on an unhealthy span may fit now.
    if (!fault.failed) pump_queue();
  }

  void evict(int i) {
    FleetJobResult& jr = result.jobs[static_cast<std::size_t>(i)];
    core::Tenant& tenant = *tenants[static_cast<std::size_t>(i)];
    ++jr.replacements;
    lifecycle("evict", i);
    // Bank completed iterations (the checkpoint), then hard-stop the tenant:
    // engine callbacks become no-ops, the control plane stops, and every
    // flow touching the span is aborted so no orphaned completion fires.
    for (const TimeNs t : tenant.engine->iteration_times()) {
      jr.iteration_times.push_back(t);
    }
    if (tenant.rotor != nullptr) {
      jr.rotor_rotations += tenant.rotor->rotations();
      jr.rotor_deferred_sends += tenant.rotor->deferred_sends();
    }
    tenant.abort(cluster);
    const net::NodeSpan span = jr.placement;
    if (cluster.photonic()) {
      jr.dark_time += cluster.ocs_dark_time_in_span(span) -
                      dark_at_start[static_cast<std::size_t>(i)];
    }
    graveyard.push_back(std::move(tenants[static_cast<std::size_t>(i)]));
    cluster.quiesce_span_ports(span, [this, i, span] {
      cluster.release_tenant(span);
      placement.release(span);
      // Strict FCFS would let the evicted job jump ahead of jobs that
      // queued while it ran; it re-queues at the back instead — it already
      // had its turn on the nodes it lost.
      queue.push_back(i);
      pump_queue();
    });
  }
};

}  // namespace

FleetResult run_fleet(const FleetConfig& cfg) {
  ensure(cfg.n_nodes >= 1, "fleet: cluster needs at least one node");
  const std::vector<JobSpec> specs =
      generate_arrivals(cfg.arrivals, cfg.base.gpus_per_node);

  FleetResult result;
  result.config = cfg;
  result.shard = cfg.use_shard ? core::sweep_shard() : core::SweepShard{};
  result.jobs.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    result.jobs[i].spec = specs[i];
  }

  // Isolated baselines: each job alone on a cluster of its own footprint,
  // fanned across the sweep pool (independent simulators — deterministic at
  // any width). Jobs too big for the fleet's cluster will be rejected at
  // arrival and their baselines never read, so don't simulate them. Under
  // timeline sharding only the shard's own jobs get baselines — the shared
  // simulation below still runs in full (tenants interact), but this sweep
  // is the node-count-proportional part, so N shards split the heavy work.
  // The telemetry hub exists before the baseline sweep so the sweep's wall
  // time lands in the self-profile; it attaches to the shared fabric below.
  std::shared_ptr<obs::Telemetry> telemetry;
  if (cfg.base.telemetry.enabled()) {
    telemetry = std::make_shared<obs::Telemetry>(cfg.base.telemetry);
  }

  if (cfg.isolated_baselines) {
    obs::SelfProfiler::Scope sweep_prof(
        telemetry != nullptr ? telemetry->profiler() : nullptr,
        "fleet.baseline_sweep");
    std::vector<core::ExperimentConfig> cells;
    std::vector<std::size_t> cell_jobs;
    for (const JobSpec& spec : specs) {
      if (!result.shard.owns(static_cast<std::size_t>(spec.id))) continue;
      if (spec.shape.n_nodes(cfg.base.gpus_per_node) > cfg.n_nodes) continue;
      cells.push_back(job_experiment_config(cfg, spec));
      cell_jobs.push_back(static_cast<std::size_t>(spec.id));
    }
    const std::vector<core::ExperimentResult> isolated =
        core::run_sweep(cells, cfg.baseline_sweep);
    for (std::size_t k = 0; k < cell_jobs.size(); ++k) {
      FleetJobResult& jr = result.jobs[cell_jobs[k]];
      jr.isolated_time =
          std::accumulate(isolated[k].iteration_times.begin(),
                          isolated[k].iteration_times.end(),
                          static_cast<TimeNs>(0));
      jr.isolated_rail_bytes = isolated[k].rail_bytes;
      jr.isolated_multihop_bytes = isolated[k].multihop_bytes;
    }
  }

  // The shared world: one simulator, one cluster, one fluid network. Fabric
  // wiring is lazy by default — tenant transports wire their own spans, so
  // nothing pre-connects ports across future tenant boundaries.
  sim::Simulator sim;
  net::Cluster cluster(sim, core::cluster_config_for(cfg.base, cfg.n_nodes));
  PlacementEngine placement(cfg.n_nodes, cfg.policy);
  std::vector<std::unique_ptr<core::Tenant>> tenants(specs.size());

  Driver driver{cfg,    sim,     cluster, placement,
                result, tenants, {},      std::vector<TimeNs>(specs.size(), 0)};
  if (telemetry != nullptr) {
    driver.tel = telemetry.get();
    telemetry->attach_fabric(sim, cluster);
    if (telemetry->config().wants_metrics()) {
      obs::MetricsRegistry& m = telemetry->metrics();
      m.add_gauge("fleet.queue_depth", [&driver] {
        return static_cast<double>(driver.queue.size());
      });
      m.add_gauge("fleet.running_jobs", [&driver, n = specs.size()] {
        int running = 0;
        for (std::size_t j = 0; j < n; ++j) {
          if (driver.running(static_cast<int>(j))) ++running;
        }
        return static_cast<double>(running);
      });
      m.add_gauge("fleet.free_extents", [&placement] {
        return static_cast<double>(placement.free_extent_count());
      });
      m.add_gauge("fleet.fragmentation",
                  [&placement] { return placement.fragmentation(); });
    }
  }
  // Failure/repair churn: schedule the seeded fault trace against the
  // shared cluster and route every event through the driver's reaction
  // (degrade, evict + re-place, or pump the queue on repairs).
  std::unique_ptr<core::FaultProcess> faults;
  if (cfg.base.faults.enabled) {
    faults = std::make_unique<core::FaultProcess>(sim, cluster,
                                                  cfg.base.faults);
    cluster.set_fault_listener(
        [&driver, &sim, tel = telemetry.get()](const net::NicFault& f) {
          if (tel != nullptr) tel->on_fault(f, sim.now());
          driver.on_fault(f);
        });
  }
  for (const JobSpec& spec : specs) {
    sim.schedule_at(spec.arrival,
                    [&driver, i = spec.id] { driver.on_arrival(i); });
  }
  if (telemetry != nullptr) telemetry->start_probe(sim);
  sim.run();
  ensure(driver.queue.empty(),
         "fleet: simulation drained with jobs still queued");

  // Post-run bookkeeping: per-tenant bytes, slowdowns, fleet aggregates.
  std::int64_t node_time = 0;
  for (FleetJobResult& jr : result.jobs) {
    if (jr.rejected) continue;
    ensure(jr.finish >= jr.start && jr.start >= jr.spec.arrival,
           "fleet: job did not complete");
    using Route = net::Cluster::Route;
    const int id = jr.spec.id;
    jr.rail_bytes = cluster.tenant_bytes_on_route(id, Route::kRail);
    jr.scale_up_bytes = cluster.tenant_bytes_on_route(id, Route::kScaleUp);
    jr.pxn_bytes = cluster.tenant_bytes_on_route(id, Route::kPxn);
    jr.mgmt_bytes = cluster.tenant_bytes_on_route(id, Route::kMgmt);
    jr.multihop_bytes =
        cluster.tenant_bytes_on_route(id, Route::kRailMultiHop);
    if (jr.isolated_time > 0) {
      jr.slowdown = static_cast<double>(jr.jct()) /
                    static_cast<double>(jr.isolated_time);
    }
    if (jr.service_time() > 0) {
      const TimeNs productive =
          std::accumulate(jr.iteration_times.begin(),
                          jr.iteration_times.end(), static_cast<TimeNs>(0));
      jr.availability = static_cast<double>(productive) /
                        static_cast<double>(jr.service_time());
    }
    const std::int64_t port_time =
        static_cast<std::int64_t>(jr.placement.count) *
        cluster.config().nic_ports * cluster.n_rails() * jr.service_time();
    if (port_time > 0) {
      jr.dark_share =
          static_cast<double>(jr.dark_time) / static_cast<double>(port_time);
    }
    result.makespan = std::max(result.makespan, jr.finish);
    node_time += static_cast<std::int64_t>(jr.placement.count) *
                 jr.service_time();
  }
  if (result.makespan > 0) {
    result.utilization =
        static_cast<double>(node_time) /
        (static_cast<double>(cfg.n_nodes) *
         static_cast<double>(result.makespan));
  }
  if (telemetry != nullptr) {
    if (telemetry->config().tracing()) {
      // One tenant process per job (pid 2 + id). An evicted-then-re-placed
      // job's track shows its last placement's tenant; iterations banked
      // before the eviction live only in jr.iteration_times.
      for (std::size_t i = 0; i < tenants.size(); ++i) {
        if (tenants[i] == nullptr || tenants[i]->recorder == nullptr) continue;
        std::string name = "job";
        name += std::to_string(result.jobs[i].spec.id);
        name += " ";
        name += result.jobs[i].spec.shape.name;
        telemetry->trace().add_recorder(
            obs::Telemetry::kTenantPidBase + result.jobs[i].spec.id, name,
            *tenants[i]->recorder);
      }
    }
    // Must happen while sim/cluster/placement are alive: snapshots the
    // gauges and closes open circuit spans at end-of-run.
    telemetry->finalize(sim.now());
    result.telemetry = telemetry;
  }
  return result;
}

TextTable fleet_job_table(const FleetResult& result) {
  TextTable table({"Job", "Shape", "Nodes", "Span", "Arrival", "Queue",
                   "JCT", "Slowdown", "Dark%", "Rail bytes", "Multihop",
                   "Avail", "PortsLost", "Repl"});
  for (const FleetJobResult& jr : result.jobs) {
    if (!result.shard.owns(static_cast<std::size_t>(jr.spec.id))) continue;
    if (jr.rejected) {
      table.add_row({std::to_string(jr.spec.id), jr.spec.shape.name,
                     std::to_string(jr.spec.shape.n_nodes(
                         result.config.base.gpus_per_node)),
                     "-", format_time(jr.spec.arrival), "-", "rejected", "-",
                     "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.add_row(
        {std::to_string(jr.spec.id), jr.spec.shape.name,
         std::to_string(jr.placement.count),
         std::to_string(jr.placement.first) + ".." +
             std::to_string(jr.placement.end() - 1),
         format_time(jr.spec.arrival), format_time(jr.queueing_delay()),
         format_time(jr.jct()),
         jr.slowdown > 0 ? fmt_double(jr.slowdown, 2) + "x" : "-",
         fmt_double(100.0 * jr.dark_share, 2), format_bytes(jr.rail_bytes),
         format_bytes(jr.multihop_bytes),
         jr.availability > 0 ? fmt_double(jr.availability, 3) : "-",
         std::to_string(jr.ports_lost), std::to_string(jr.replacements)});
  }
  return table;
}

SlowdownStats fleet_slowdown_stats(const FleetResult& result) {
  std::vector<double> slowdowns;
  for (const FleetJobResult& jr : result.jobs) {
    if (!jr.rejected && jr.slowdown > 0) slowdowns.push_back(jr.slowdown);
  }
  SlowdownStats stats;
  if (slowdowns.empty()) return stats;
  stats.mean = std::accumulate(slowdowns.begin(), slowdowns.end(), 0.0) /
               static_cast<double>(slowdowns.size());
  std::sort(slowdowns.begin(), slowdowns.end());
  // Nearest-rank p99: the ceil(0.99 n)-th smallest.
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(slowdowns.size())));
  stats.p99 = slowdowns[std::min(rank, slowdowns.size()) - 1];
  return stats;
}

}  // namespace opus::fleet
