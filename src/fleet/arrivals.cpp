#include "fleet/arrivals.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace opus::fleet {

std::vector<JobShape> table_mix_shapes(int gpus_per_node, int dp_scale) {
  ensure(gpus_per_node >= 1, "shape mix: gpus_per_node must be positive");
  ensure(dp_scale >= 1, "shape mix: dp_scale must be positive");
  auto shape = [&](std::string name, int dp, int pp, double weight) {
    JobShape s;
    s.name = std::move(name);
    s.model = workload::ModelConfig::test_tiny();
    s.model.n_layers = 4 * pp;  // a few layers per pipeline stage
    s.parallelism.tp = gpus_per_node;  // TP fills the scale-up domain
    s.parallelism.dp = dp * dp_scale;
    s.parallelism.pp = pp;
    s.parallelism.n_microbatches = 2 * pp;
    s.parallelism.microbatch_size = 1;
    s.weight = weight;
    return s;
  };
  // Table 1's ladder: small jobs run DP-only; larger ones add PP. Weights
  // skew toward the small end, like real cluster job-size distributions.
  return {
      shape("dp2", 2, 1, 4.0),
      shape("dp4", 4, 1, 3.0),
      shape("dp2pp2", 2, 2, 2.0),
      shape("dp4pp2", 4, 2, 1.5),
      shape("dp2pp4", 2, 4, 0.5),
  };
}

std::vector<JobSpec> generate_arrivals(const ArrivalConfig& cfg,
                                       int gpus_per_node) {
  ensure(cfg.n_jobs >= 1, "arrivals: need at least one job");
  ensure(cfg.mean_interarrival >= 0, "arrivals: negative inter-arrival mean");
  ensure(cfg.iterations >= 1, "arrivals: each job needs >= 1 iteration");
  const std::vector<JobShape> shapes =
      cfg.shapes.empty() ? table_mix_shapes(gpus_per_node) : cfg.shapes;
  ensure(!shapes.empty(), "arrivals: shape mix is empty");
  double total_weight = 0.0;
  for (const JobShape& s : shapes) {
    ensure(s.weight > 0, "arrivals: shape weights must be positive");
    s.parallelism.validate();
    ensure(s.parallelism.world_size() % gpus_per_node == 0,
           "arrivals: shape world size must fill whole nodes");
    total_weight += s.weight;
  }

  Xoshiro256 rng(cfg.seed);
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(cfg.n_jobs));
  TimeNs clock = 0;
  for (int id = 0; id < cfg.n_jobs; ++id) {
    if (cfg.mean_interarrival > 0) {
      // Exponential inter-arrival (Poisson process). 1 - u keeps the
      // argument strictly positive; llround keeps the trace integral.
      const double u = rng.uniform();
      clock += static_cast<TimeNs>(std::llround(
          -std::log(1.0 - u) * static_cast<double>(cfg.mean_interarrival)));
    }
    double pick = rng.uniform() * total_weight;
    // Default to the last shape: FP rounding can leave pick non-negative
    // after subtracting every weight, and that tail draw belongs to the
    // last bucket, not the first.
    std::size_t shape_index = shapes.size() - 1;
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      pick -= shapes[s].weight;
      if (pick < 0) {
        shape_index = s;
        break;
      }
    }
    JobSpec spec;
    spec.id = id;
    spec.arrival = clock;
    spec.shape_index = static_cast<int>(shape_index);
    spec.shape = shapes[shape_index];
    spec.iterations = cfg.iterations;
    spec.engine_seed =
        SplitMix64(cfg.seed ^ (static_cast<std::uint64_t>(id) << 20)).next();
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

}  // namespace opus::fleet
