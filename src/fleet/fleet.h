// Multi-tenant fleet driver: many training jobs sharing one cluster.
//
// Jobs arrive on a seeded trace (fleet/arrivals), get a contiguous node
// span from the placement engine (fleet/placement) or queue FCFS, and run
// as interleaved per-tenant iteration engines (core::build_tenant) on ONE
// simulator and ONE FluidNetwork — so tenants genuinely contend for rail
// bandwidth, and on photonic fabrics each tenant's transport reconfigures
// only its own OCS port block (enforced by the switches' port-ownership
// guard). When a job finishes, its control plane is shut down, its ports
// quiesce and are wiped, its span is released, and queued jobs are placed.
//
// Per job the driver reports JCT, queueing delay, slowdown versus an
// isolated run of the same job (computed as a parallel run_sweep of
// single-tenant cells), per-route byte totals (conservation: a tenant's
// rail bytes match its isolated run exactly on contention-oblivious
// fabrics, and up to multi-hop accounting on the rotor), and its dark-time
// share; fleet-wide it reports makespan, node utilization, and peak
// fragmentation. run_experiment is the one-tenant special case of this
// driver.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "fleet/arrivals.h"
#include "fleet/placement.h"

namespace opus::fleet {

struct FleetConfig {
  /// Shared cluster size; every other cluster knob (fabric, NIC, bandwidth,
  /// OCS delay, engine options) comes from `base`. base.model/parallelism/
  /// iterations are overridden per job by the arrival trace. base.faults
  /// drives fleet-wide failure/repair churn: the driver evicts, checkpoints,
  /// and re-places jobs whose span loses a node's whole rail connectivity
  /// (isolated baselines always run fault-free).
  int n_nodes = 32;
  core::ExperimentConfig base;
  ArrivalConfig arrivals;
  PlacementPolicy policy = PlacementPolicy::kFirstFit;
  /// Run each job alone (same shape, own cluster) to compute slowdowns and
  /// byte-conservation baselines. Off: slowdown/isolated fields stay 0.
  bool isolated_baselines = true;
  /// Thread pool for the isolated-baseline sweep (the fleet run itself is
  /// one simulator and always single-threaded).
  core::SweepOptions baseline_sweep;
  /// Opt into process-level *timeline* sharding (OPUS_SWEEP_SHARD=i/N):
  /// every shard simulates the full shared-cluster timeline (tenants
  /// interact, so the simulation itself cannot split), but isolated
  /// baselines — the per-job independent sweep that dominates cost at
  /// 4096-node scale — run only for jobs with id % N == i, and
  /// fleet_job_table() emits only those jobs' rows. N processes regenerate
  /// one fleet table cooperatively; scripts/merge_sweep_tables.py
  /// interleaves their rows back into the unsharded table, bit-identically
  /// (the simulated timeline is deterministic, so shards agree on every
  /// shared column). Unowned jobs' isolated/slowdown fields stay 0.
  /// Tests leave this off — a shard variable must never skip their jobs.
  bool use_shard = false;

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const FleetConfig&, const FleetConfig&) = default;
};

struct FleetJobResult {
  JobSpec spec;
  bool rejected = false;       ///< footprint exceeds the whole cluster
  net::NodeSpan placement;
  TimeNs start = 0;            ///< placement instant
  TimeNs finish = 0;
  std::vector<TimeNs> iteration_times;

  TimeNs queueing_delay() const { return start - spec.arrival; }
  TimeNs jct() const { return finish - spec.arrival; }
  TimeNs service_time() const { return finish - start; }

  /// Isolated-run totals (zero when baselines are disabled).
  TimeNs isolated_time = 0;
  /// jct / isolated_time (1.0 = no queueing and no contention; 0 when
  /// baselines are disabled).
  double slowdown = 0.0;

  /// Per-tenant byte accounting over the shared cluster.
  Bytes rail_bytes = 0;
  Bytes scale_up_bytes = 0;
  Bytes pxn_bytes = 0;
  Bytes mgmt_bytes = 0;
  Bytes multihop_bytes = 0;
  /// Isolated-run byte totals for conservation checks.
  Bytes isolated_rail_bytes = 0;
  Bytes isolated_multihop_bytes = 0;

  /// kRotor tenants: this tenant's sub-rotor counters.
  std::int64_t rotor_rotations = 0;
  std::int64_t rotor_deferred_sends = 0;

  /// Dark time accumulated on the tenant's OCS ports while it ran, and its
  /// share of the tenant's port-time (ports x rails x service time).
  TimeNs dark_time = 0;
  double dark_share = 0.0;

  // ---- failure-churn accounting (all zero on a fault-free run) ------------
  /// NIC-port failures that landed inside the job's span while it ran.
  int ports_lost = 0;
  /// Eviction -> checkpoint -> re-queue -> re-place cycles the job survived
  /// (a job is evicted when a failure disconnects one of its nodes).
  int replacements = 0;
  /// Productive fraction of the job's wall presence: completed-iteration
  /// time / service_time(). 1.0 means no time lost to degraded stalls,
  /// eviction gaps, or re-placement queueing; 0 when never placed.
  double availability = 0.0;
};

struct FleetResult {
  FleetConfig config;
  /// The timeline shard this run computed baselines for ({0, 1} — whole
  /// timeline — unless config.use_shard resolved an active
  /// OPUS_SWEEP_SHARD). fleet_job_table() scopes its rows to this.
  core::SweepShard shard;
  std::vector<FleetJobResult> jobs;  ///< in arrival (job id) order
  TimeNs makespan = 0;               ///< last finish instant
  /// Node-time actually occupied / (n_nodes x makespan).
  double utilization = 0.0;
  /// Max over placement events of the allocator's fragmentation metric.
  double peak_fragmentation = 0.0;
  int peak_free_extents = 0;
  int rejected_jobs = 0;
  /// Telemetry hub (null unless config.base.telemetry.enabled()): finalized
  /// metrics snapshot, sampled fleet/fabric series, chrome trace with
  /// lifecycle instants and per-job tenant tracks, self-profiler.
  std::shared_ptr<obs::Telemetry> telemetry;
};

/// Runs the fleet to completion (deterministic: bit-identical across reruns
/// and baseline-sweep thread counts).
FleetResult run_fleet(const FleetConfig& cfg);

/// Per-job results as a common/table TextTable (the fleet analogue of the
/// figure benches' paper-style tables). A timeline-sharded result emits
/// only its own shard's rows (job id % N == i) so per-shard outputs
/// interleave back into the full table.
TextTable fleet_job_table(const FleetResult& result);

/// Mean and p99 (nearest-rank) of the placed jobs' slowdowns.
struct SlowdownStats {
  double mean = 0.0;
  double p99 = 0.0;
};
SlowdownStats fleet_slowdown_stats(const FleetResult& result);

}  // namespace opus::fleet
