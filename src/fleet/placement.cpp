#include "fleet/placement.h"

#include <algorithm>

#include "common/error.h"

namespace opus::fleet {

const char* placement_policy_name(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kFirstFit: return "FirstFit";
    case PlacementPolicy::kRailAware: return "RailAware";
  }
  return "?";
}

PlacementEngine::PlacementEngine(int n_nodes, PlacementPolicy policy)
    : n_nodes_(n_nodes), policy_(policy) {
  ensure(n_nodes >= 1, "placement: cluster needs at least one node");
  free_.push_back({0, n_nodes});
}

namespace {
int next_pow2(int v) {
  int p = 1;
  while (p < v) p *= 2;
  return p;
}
}  // namespace

std::optional<net::NodeSpan> PlacementEngine::take(std::size_t extent_index,
                                                   int start, int count) {
  Extent& e = free_[extent_index];
  ensure(start >= e.first && start + count <= e.end(),
         "placement: allocation outside its extent");
  const Extent before{e.first, start - e.first};
  const Extent after{start + count, e.end() - (start + count)};
  // Replace the extent with the non-empty remainders, keeping sort order.
  auto it = free_.begin() + static_cast<std::ptrdiff_t>(extent_index);
  it = free_.erase(it);
  if (after.count > 0) it = free_.insert(it, after);
  if (before.count > 0) free_.insert(it, before);
  ++allocations_;
  peak_free_extents_ =
      std::max(peak_free_extents_, static_cast<int>(free_.size()));
  return net::NodeSpan{start, count};
}

std::optional<net::NodeSpan> PlacementEngine::allocate(int count) {
  ensure(count >= 1, "placement: job needs at least one node");
  if (count > n_nodes_) return std::nullopt;

  if (policy_ == PlacementPolicy::kFirstFit) {
    for (std::size_t i = 0; i < free_.size(); ++i) {
      ++extents_scanned_;
      if (free_[i].count >= count) {
        return take(i, free_[i].first, count);
      }
    }
    return std::nullopt;
  }

  // kRailAware: the lowest start aligned to the buddy block of `count`
  // within any extent; otherwise best-fit.
  const int align = next_pow2(count);
  for (std::size_t i = 0; i < free_.size(); ++i) {
    const Extent& e = free_[i];
    ++extents_scanned_;
    const int aligned = ((e.first + align - 1) / align) * align;
    if (aligned + count <= e.end()) {
      return take(i, aligned, count);
    }
  }
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    ++extents_scanned_;
    if (free_[i].count < count) continue;
    if (best == free_.size() || free_[i].count < free_[best].count) {
      best = i;
    }
  }
  if (best == free_.size()) return std::nullopt;
  return take(best, free_[best].first, count);
}

void PlacementEngine::release(net::NodeSpan span) {
  ensure(span.first >= 0 && span.count >= 1 && span.end() <= n_nodes_,
         "placement: released span out of range");
  const auto it = std::lower_bound(
      free_.begin(), free_.end(), span.first,
      [](const Extent& e, int first) { return e.first < first; });
  // No overlap with the neighbours (double release would corrupt the map).
  if (it != free_.end()) {
    ensure(span.end() <= it->first, "placement: double release (overlap)");
  }
  if (it != free_.begin()) {
    ensure(std::prev(it)->end() <= span.first,
           "placement: double release (overlap)");
  }
  ++releases_;
  auto inserted = free_.insert(it, {span.first, span.count});
  // Coalesce with the successor, then the predecessor.
  const auto next = std::next(inserted);
  if (next != free_.end() && inserted->end() == next->first) {
    inserted->count += next->count;
    inserted = std::prev(free_.erase(next));
  }
  if (inserted != free_.begin()) {
    const auto prev = std::prev(inserted);
    if (prev->end() == inserted->first) {
      prev->count += inserted->count;
      free_.erase(inserted);
    }
  }
  // Peak is measured post-coalesce: it tracks resident interval state, not
  // the transient extra extent inside this call.
  peak_free_extents_ =
      std::max(peak_free_extents_, static_cast<int>(free_.size()));
}

int PlacementEngine::free_nodes() const {
  int total = 0;
  for (const Extent& e : free_) total += e.count;
  return total;
}

int PlacementEngine::largest_free_extent() const {
  int largest = 0;
  for (const Extent& e : free_) largest = std::max(largest, e.count);
  return largest;
}

double PlacementEngine::fragmentation() const {
  const int total = free_nodes();
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_extent()) /
                   static_cast<double>(total);
}

}  // namespace opus::fleet
