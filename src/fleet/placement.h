// Placement engine: carves contiguous node ranges out of one shared
// cluster for arriving jobs and tracks the fragmentation this induces.
//
// Contiguity is a physical constraint worth modelling, not a
// simplification: a tenant's rail sub-fabric (its static ring, its rotor
// matchings, its Opus circuit block) lives on the OCS ports of its nodes,
// and scattering a job across the port space strands ports between tenants
// (Morphlux's motivation). Two policies:
//
//  - kFirstFit: lowest-addressed free extent that fits, taken at its start
//    (the classic baseline).
//  - kRailAware: prefer a start aligned to the job's footprint rounded up
//    to a power of two — buddy-style alignment keeps each tenant's OCS port
//    block aligned so departures coalesce into reusable aligned holes
//    instead of shearing the port space; falls back to best-fit (smallest
//    adequate extent) when no aligned start exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/cluster.h"

namespace opus::fleet {

enum class PlacementPolicy { kFirstFit, kRailAware };

const char* placement_policy_name(PlacementPolicy p);

class PlacementEngine {
 public:
  PlacementEngine(int n_nodes, PlacementPolicy policy);

  int n_nodes() const { return n_nodes_; }
  PlacementPolicy policy() const { return policy_; }

  /// Allocates a contiguous span of `count` nodes, or nullopt when no free
  /// extent fits (the caller queues the job).
  std::optional<net::NodeSpan> allocate(int count);

  /// Returns a span allocated earlier; adjacent free extents coalesce.
  void release(net::NodeSpan span);

  // ---- fragmentation metrics ----------------------------------------------
  int free_nodes() const;
  int largest_free_extent() const;
  int free_extent_count() const { return static_cast<int>(free_.size()); }
  /// External fragmentation in [0, 1]: 1 - largest_free_extent/free_nodes
  /// (0 when fully free or fully packed — nothing is stranded).
  double fragmentation() const;

  // ---- scale-independence instrumentation ---------------------------------
  // The engine's state is the free-extent interval list — at most one
  // extent per live-tenant boundary plus one, never proportional to
  // n_nodes. These counters let tests pin that: peak_free_extents bounds
  // resident state, extents_scanned bounds per-allocate work. Pure
  // observation; they never influence placement decisions.
  std::int64_t allocations() const { return allocations_; }
  std::int64_t releases() const { return releases_; }
  /// Total extents examined across all allocate() calls (scan work).
  std::int64_t extents_scanned() const { return extents_scanned_; }
  /// High-water mark of the interval list length over the engine's life.
  int peak_free_extents() const { return peak_free_extents_; }

 private:
  struct Extent {
    int first = 0;
    int count = 0;
    int end() const { return first + count; }
  };

  std::optional<net::NodeSpan> take(std::size_t extent_index, int start,
                                    int count);

  int n_nodes_;
  PlacementPolicy policy_;
  std::vector<Extent> free_;  // sorted by first, pairwise disjoint

  std::int64_t allocations_ = 0;
  std::int64_t releases_ = 0;
  std::int64_t extents_scanned_ = 0;
  int peak_free_extents_ = 1;  // the initial all-free extent
};

}  // namespace opus::fleet
