#include "obs/probe.h"

#include <charconv>

#include "common/error.h"

namespace opus::obs {
namespace {

// Shortest round-trip formatting (the common/json writer's convention), so
// series CSV bytes depend only on the sampled values.
std::string fmt_value(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

Series::Series(std::vector<std::string> columns)
    : columns_(std::move(columns)), data_(columns_.size()) {}

void Series::append(TimeNs t, const std::vector<double>& values) {
  ensure(values.size() == columns_.size(),
         "series: row arity does not match columns");
  ensure(times_.empty() || t >= times_.back(),
         "series: non-monotone sample time");
  times_.push_back(t);
  for (std::size_t c = 0; c < values.size(); ++c) data_[c].push_back(values[c]);
}

TextTable Series::to_table() const {
  std::vector<std::string> headers;
  headers.reserve(columns_.size() + 1);
  headers.push_back("t_ns");
  for (const std::string& c : columns_) headers.push_back(c);
  TextTable table(std::move(headers));
  for (std::size_t r = 0; r < times_.size(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size() + 1);
    cells.push_back(std::to_string(times_[r]));
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      cells.push_back(fmt_value(data_[c][r]));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

std::string Series::to_csv() const { return to_table().to_csv(); }

json::Value Series::to_json() const {
  json::Value out = json::Value::object();
  json::Value t = json::Value::array();
  for (const TimeNs v : times_) t.push_back(json::Value(v));
  out.set("t_ns", std::move(t));
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    json::Value col = json::Value::array();
    for (const double v : data_[c]) col.push_back(json::Value(v));
    out.set(columns_[c], std::move(col));
  }
  return out;
}

Probe::Probe(sim::Simulator& sim, const MetricsRegistry& registry,
             TimeNs interval)
    : sim_(sim),
      registry_(registry),
      interval_(interval),
      series_(registry.column_names()) {
  ensure(interval_ > 0, "probe: sample interval must be positive");
}

void Probe::start() {
  series_.append(sim_.now(), registry_.sample_columns());
  // Unconditional first reschedule: start() typically runs before the
  // workload schedules anything (run_experiment starts the probe ahead of
  // the engine), so an empty queue here does not mean the run is over.
  sim_.schedule_after(interval_, [this] { tick(); });
}

void Probe::tick() {
  series_.append(sim_.now(), registry_.sample_columns());
  // The simulator pops an event before firing it, so pending_events() here
  // counts everything except this tick: rescheduling only while other
  // events remain pending guarantees the probe never keeps an otherwise
  // drained simulation alive (at most one trailing sample lands past the
  // final workload event).
  if (sim_.pending_events() > 0) {
    sim_.schedule_after(interval_, [this] { tick(); });
  }
}

}  // namespace opus::obs
