// Chrome trace_events export: builds a `traceEvents` JSON document loadable
// by Perfetto / chrome://tracing. Tracks are (pid, tid) pairs; the
// Telemetry hub assigns pid 0 to the fabric (per-rail circuit / dark /
// fault tracks), pid 1 to fleet lifecycle instants, and pid 2+job to each
// tenant's compute/comm phases (mirrored from the workload recorder).
//
// Timestamps are sim-time nanoseconds converted to the format's
// microsecond unit as exact doubles (ns / 1000.0), so the emitted bytes
// are deterministic — no wall-clock content ever enters a trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/units.h"
#include "trace/recorder.h"

namespace opus::obs {

class ChromeTraceWriter {
 public:
  /// Process/thread metadata (track names); emitted ahead of events.
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  /// Complete ("X") event: a span [start, start + duration].
  void complete(int pid, int tid, const std::string& name,
                const std::string& category, TimeNs start, TimeNs duration);

  /// Instant ("i") event with global scope.
  void instant(int pid, int tid, const std::string& name,
               const std::string& category, TimeNs t);

  /// Mirrors a workload recorder under `pid`: tid 0 iteration spans, tid 1
  /// comm phases (collective type/dimension, rail in the category), tid
  /// 2+gpu per-GPU compute phases.
  void add_recorder(int pid, const std::string& process_name,
                    const trace::TraceRecorder& recorder);

  std::size_t event_count() const { return events_.size(); }

  /// {"traceEvents": [...], "displayTimeUnit": "ms"}
  json::Value to_json() const;
  std::string dump() const;

 private:
  json::Value event(int pid, int tid, const std::string& name,
                    const std::string& category, const char* ph,
                    TimeNs t) const;

  std::vector<json::Value> metadata_;
  std::vector<json::Value> events_;
};

}  // namespace opus::obs
