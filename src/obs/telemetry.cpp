#include "obs/telemetry.h"

#include <map>
#include <utility>

#include "common/error.h"
#include "net/cluster.h"
#include "net/ocs.h"
#include "sim/simulator.h"

namespace opus::obs {

// Per-rail OCS observer: mirrors circuit lifecycle and dark intervals onto
// the fabric process's per-rail trace tracks. Open spans are keyed by the
// unordered port pair in a sorted map so finalize() closes them in a
// deterministic order.
struct Telemetry::RailObserver : net::OcsObserver {
  Telemetry* hub;
  int rail;
  std::map<std::pair<std::int32_t, std::int32_t>, TimeNs> open;

  RailObserver(Telemetry* h, int r) : hub(h), rail(r) {}

  static std::pair<std::int32_t, std::int32_t> key(PortId a, PortId b) {
    return {std::min(a.value(), b.value()), std::max(a.value(), b.value())};
  }
  static std::string circuit_name(std::pair<std::int32_t, std::int32_t> k) {
    // Built by append: GCC 12's -Wrestrict misfires on nested operator+
    // chains that mix literals with std::to_string temporaries.
    std::string name = "p";
    name += std::to_string(k.first);
    name += "-p";
    name += std::to_string(k.second);
    return name;
  }

  void on_circuit_up(PortId a, PortId b, TimeNs now) override {
    open.emplace(key(a, b), now);
  }

  void on_circuit_down(PortId a, PortId b, TimeNs now) override {
    const auto k = key(a, b);
    const auto it = open.find(k);
    if (it == open.end()) return;  // established before telemetry attached
    hub->circuit_lifetime_.record(now - it->second);
    if (hub->config_.tracing()) {
      hub->trace_.complete(kFabricPid, 3 * rail, circuit_name(k), "circuit",
                           it->second, now - it->second);
    }
    open.erase(it);
  }

  void on_dark_interval(int ports, TimeNs start, TimeNs duration) override {
    if (!hub->config_.tracing()) return;
    hub->trace_.complete(kFabricPid, 3 * rail + 1,
                         "dark " + std::to_string(ports) + " ports", "dark",
                         start, duration);
  }

  void close_open_spans(TimeNs end) {
    for (const auto& [k, start] : open) {
      hub->circuit_lifetime_.record(end - start);
      if (hub->config_.tracing()) {
        hub->trace_.complete(kFabricPid, 3 * rail, circuit_name(k), "circuit",
                             start, end - start);
      }
    }
    open.clear();
  }
};

Telemetry::Telemetry(TelemetryConfig config) : config_(std::move(config)) {
  if (config_.self_profile) profiler_ = std::make_unique<SelfProfiler>();
}

Telemetry::~Telemetry() = default;

void Telemetry::attach_fabric(sim::Simulator& sim, net::Cluster& cluster) {
  if (profiler_ != nullptr) {
    sim.set_profile_sink(profiler_.get());
    cluster.network().set_profile_sink(profiler_.get());
    if (cluster.photonic()) {
      for (int r = 0; r < cluster.n_rails(); ++r) {
        cluster.ocs(RailId{r}).set_profile_sink(profiler_.get());
      }
    }
  }

  if (config_.tracing()) trace_.set_process_name(kFabricPid, "fabric");
  // Rail observers feed both the trace (circuit/dark spans) and the
  // circuit-lifetime histogram, so they attach whenever either consumer is
  // on; each emission re-checks its own config flag.
  if ((config_.tracing() || config_.wants_metrics()) && cluster.photonic()) {
    for (int r = 0; r < cluster.n_rails(); ++r) {
      auto obs = std::make_unique<RailObserver>(this, r);
      cluster.ocs(RailId{r}).set_observer(obs.get());
      if (config_.tracing()) {
        trace_.set_thread_name(kFabricPid, 3 * r,
                               "rail" + std::to_string(r) + " circuits");
        trace_.set_thread_name(kFabricPid, 3 * r + 1,
                               "rail" + std::to_string(r) + " dark");
        trace_.set_thread_name(kFabricPid, 3 * r + 2,
                               "rail" + std::to_string(r) + " faults");
      }
      rail_observers_.push_back(std::move(obs));
    }
  }

  if (!config_.wants_metrics()) return;

  const net::FluidNetwork& net = cluster.network();
  metrics_.add_gauge("fluid.active_flows", [&net] {
    return static_cast<double>(net.active_flow_count());
  });
  metrics_.add_gauge("fluid.solves", [&net] {
    return static_cast<double>(net.solve_count());
  });
  metrics_.add_gauge("fluid.solve_rounds", [&net] {
    return static_cast<double>(net.solve_rounds());
  });
  metrics_.add_gauge("fluid.frozen_links", [&net] {
    return static_cast<double>(net.frozen_bottleneck_links());
  });
  metrics_.add_gauge("fluid.live_links", [&net] {
    return static_cast<double>(net.live_link_count());
  });
  metrics_.add_gauge("cluster.rescued_flows", [&cluster] {
    return static_cast<double>(cluster.rescued_flow_count());
  });
  metrics_.add_gauge("cluster.parked_transfers", [&cluster] {
    return static_cast<double>(cluster.parked_transfer_count());
  });

  if (!cluster.photonic()) return;

  circuit_lifetime_ = metrics_.add_histogram("ocs.circuit_lifetime_ns");
  metrics_.add_gauge("ocs.reconfigurations", [&cluster] {
    return static_cast<double>(cluster.total_ocs_reconfigurations());
  });
  metrics_.add_gauge("ocs.dark_ns", [&cluster] {
    return static_cast<double>(cluster.total_ocs_dark_time());
  });
  metrics_.add_gauge("ocs.batch_fallbacks", [&cluster] {
    std::int64_t total = 0;
    for (int r = 0; r < cluster.n_rails(); ++r) {
      total += cluster.ocs(RailId{r}).stats().batch_fallbacks;
    }
    return static_cast<double>(total);
  });
  metrics_.add_gauge("fabric.dark_ports", [&cluster] {
    int total = 0;
    for (int r = 0; r < cluster.n_rails(); ++r) {
      total += cluster.ocs(RailId{r}).dark_port_count();
    }
    return static_cast<double>(total);
  });
  metrics_.add_gauge("fabric.failed_ports", [&cluster] {
    int total = 0;
    for (int r = 0; r < cluster.n_rails(); ++r) {
      total += cluster.ocs(RailId{r}).failed_port_count();
    }
    return static_cast<double>(total);
  });
  metrics_.add_gauge("fabric.availability", [&cluster] {
    std::int64_t failed = 0;
    std::int64_t total = 0;
    for (int r = 0; r < cluster.n_rails(); ++r) {
      failed += cluster.ocs(RailId{r}).failed_port_count();
      total += cluster.ocs(RailId{r}).n_ports();
    }
    if (total == 0) return 1.0;
    return 1.0 - static_cast<double>(failed) / static_cast<double>(total);
  });
  for (int r = 0; r < cluster.n_rails(); ++r) {
    const net::OpticalCircuitSwitch& ocs = cluster.ocs(RailId{r});
    metrics_.add_gauge("rail" + std::to_string(r) + ".utilization", [&ocs] {
      // Fraction of ports carrying a live circuit. O(ports); the probe
      // samples on a cold path at the configured interval.
      const int n = ocs.n_ports();
      if (n == 0) return 0.0;
      int live = 0;
      for (int p = 0; p < n; ++p) {
        if (ocs.live_peer(p) >= 0) ++live;
      }
      return static_cast<double>(live) / static_cast<double>(n);
    });
    metrics_.add_gauge("rail" + std::to_string(r) + ".dark_ports", [&ocs] {
      return static_cast<double>(ocs.dark_port_count());
    });
  }
}

void Telemetry::start_probe(sim::Simulator& sim) {
  if (!config_.sampling()) return;
  ensure(probe_ == nullptr, "telemetry: start_probe called twice");
  probe_ = std::make_unique<Probe>(sim, metrics_, config_.sample_interval);
  probe_->start();
}

void Telemetry::on_fault(const net::NicFault& fault, TimeNs now) {
  if (!config_.tracing()) return;
  const std::string name =
      std::string(fault.failed ? "fail" : "repair") + " node" +
      std::to_string(fault.node.value()) + " slot" +
      std::to_string(fault.slot);
  trace_.instant(kFabricPid, 3 * fault.rail + 2, name, "fault", now);
}

void Telemetry::on_fleet_event(const std::string& kind, int job, TimeNs now) {
  if (!config_.tracing()) return;
  if (!fleet_process_named_) {
    trace_.set_process_name(kFleetPid, "fleet");
    trace_.set_thread_name(kFleetPid, 0, "lifecycle");
    fleet_process_named_ = true;
  }
  trace_.instant(kFleetPid, 0, kind + " job" + std::to_string(job), "fleet",
                 now);
}

void Telemetry::finalize(TimeNs end) {
  if (finalized_) return;
  finalized_ = true;
  for (const auto& obs : rail_observers_) obs->close_open_spans(end);
  final_metrics_ = metrics_.snapshot_json();
}

}  // namespace opus::obs
