#include "obs/metrics.h"

#include <bit>
#include <limits>

#include "common/error.h"

namespace opus::obs {

void Histogram::record(std::int64_t v) {
  if (data_ == nullptr) return;
  if (v < 0) v = 0;
  const int bucket = std::bit_width(static_cast<std::uint64_t>(v));
  ++data_->buckets[static_cast<std::size_t>(bucket)];
  if (data_->count == 0) {
    data_->min = v;
    data_->max = v;
  } else {
    if (v < data_->min) data_->min = v;
    if (v > data_->max) data_->max = v;
  }
  ++data_->count;
  data_->sum += v;
}

void MetricsRegistry::check_new_name(const std::string& name) const {
  ensure(!name.empty(), "metrics: empty metric name");
  for (const Entry& e : entries_) {
    ensure(e.name != name, "metrics: duplicate registration of '" + name + "'");
  }
}

Counter MetricsRegistry::add_counter(const std::string& name) {
  check_new_name(name);
  counters_.push_back(0);
  entries_.push_back({Kind::kCounter, name, counters_.size() - 1});
  return Counter{&counters_.back()};
}

void MetricsRegistry::add_gauge(const std::string& name,
                                std::function<double()> sample) {
  check_new_name(name);
  ensure(static_cast<bool>(sample), "metrics: null gauge sampler");
  gauges_.push_back(std::move(sample));
  entries_.push_back({Kind::kGauge, name, gauges_.size() - 1});
}

Histogram MetricsRegistry::add_histogram(const std::string& name) {
  check_new_name(name);
  histograms_.emplace_back();
  entries_.push_back({Kind::kHistogram, name, histograms_.size() - 1});
  return Histogram{&histograms_.back()};
}

std::vector<std::string> MetricsRegistry::column_names() const {
  std::vector<std::string> names;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::kHistogram) names.push_back(e.name);
  }
  return names;
}

std::vector<double> MetricsRegistry::sample_columns() const {
  std::vector<double> values;
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        values.push_back(static_cast<double>(counters_[e.index]));
        break;
      case Kind::kGauge:
        values.push_back(gauges_[e.index]());
        break;
      case Kind::kHistogram:
        break;
    }
  }
  return values;
}

json::Value MetricsRegistry::snapshot_json() const {
  json::Value out = json::Value::object();
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.set(e.name, json::Value(counters_[e.index]));
        break;
      case Kind::kGauge:
        out.set(e.name, json::Value(gauges_[e.index]()));
        break;
      case Kind::kHistogram: {
        const Histogram::Data& h = histograms_[e.index];
        json::Value obj = json::Value::object();
        obj.set("count", json::Value(h.count));
        obj.set("sum", json::Value(h.sum));
        obj.set("min", json::Value(h.min));
        obj.set("max", json::Value(h.max));
        // Trailing all-zero buckets carry no information; trimming them
        // keeps result documents proportional to the observed range.
        std::size_t last = 0;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          if (h.buckets[i] != 0) last = i + 1;
        }
        json::Value buckets = json::Value::array();
        for (std::size_t i = 0; i < last; ++i) {
          buckets.push_back(json::Value(h.buckets[i]));
        }
        obj.set("buckets", std::move(buckets));
        out.set(e.name, std::move(obj));
        break;
      }
    }
  }
  return out;
}

}  // namespace opus::obs
