// Telemetry hub: owns the four observability pillars (metrics registry,
// time-series probe, chrome-trace writer, self-profiler) and wires them
// into a live simulation.
//
// Lifecycle: construct from a TelemetryConfig, attach_fabric() after the
// cluster exists (registers the standard fabric gauges and, when tracing,
// the per-rail OCS observers), register any layer-specific metrics (the
// fleet driver adds its own gauges/counters), start_probe() just before the
// run, and finalize() after the run but BEFORE the simulator/cluster are
// destroyed — finalize captures the final metrics snapshot and closes open
// trace spans, after which the hub is self-contained and may outlive the
// simulation inside an ExperimentResult/FleetResult.
//
// Determinism contract: everything emitted (series rows, trace events,
// metrics snapshots) is derived from sim-time and simulation state only —
// wall-clock readings exist solely inside the opt-in SelfProfiler, whose
// report is table text, never JSON payload.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "obs/selfprof.h"

namespace opus::net {
class Cluster;
struct NicFault;
class OpticalCircuitSwitch;
}  // namespace opus::net
namespace opus::sim {
class Simulator;
}

namespace opus::obs {

/// The `"telemetry"` config block (serde: config/serde.cpp, strict keys
/// {metrics, series_path, chrome_trace_path, sample_interval_ns,
/// self_profile}). Default-constructed == fully disabled.
struct TelemetryConfig {
  /// Register fabric metrics and append their final snapshot to the result
  /// document's "telemetry" section.
  bool metrics = false;
  /// When non-empty, the sampled time-series is written here as CSV (by the
  /// config runner; the series itself is always available in memory).
  std::string series_path;
  /// When non-empty, chrome trace_events JSON is collected (and written
  /// here by the config runner).
  std::string chrome_trace_path;
  /// Probe period (serde key "sample_interval_ns"). Sampling runs only when
  /// metrics or a series path ask for it.
  TimeNs sample_interval = msecs(1);
  /// Wall-clock self-profiling of solver/OCS/event-loop/sweep phases,
  /// reported as a text table appended to the run's table output.
  bool self_profile = false;

  bool enabled() const {
    return metrics || !series_path.empty() || !chrome_trace_path.empty() ||
           self_profile;
  }
  /// Metrics wanted, either for the snapshot or as series columns.
  bool wants_metrics() const { return metrics || !series_path.empty(); }
  bool sampling() const { return sample_interval > 0 && wants_metrics(); }
  bool tracing() const { return !chrome_trace_path.empty(); }

  friend bool operator==(const TelemetryConfig&,
                         const TelemetryConfig&) = default;
};

class Telemetry {
 public:
  /// Trace track layout: the fabric owns pid 0 (per rail r: tid 3r circuit
  /// lifetimes, 3r+1 dark intervals, 3r+2 fault instants), fleet lifecycle
  /// instants live on pid 1, and tenant pids start at 2 (pid 2 + job id).
  static constexpr int kFabricPid = 0;
  static constexpr int kFleetPid = 1;
  static constexpr int kTenantPidBase = 2;

  explicit Telemetry(TelemetryConfig config);
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryConfig& config() const { return config_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  ChromeTraceWriter& trace() { return trace_; }
  const ChromeTraceWriter& trace() const { return trace_; }
  /// Non-null iff self-profiling is enabled.
  SelfProfiler* profiler() { return profiler_.get(); }
  /// The sampled series; null until start_probe() ran.
  const Series* series() const {
    return probe_ ? &probe_->series() : nullptr;
  }
  /// Metrics snapshot captured by finalize() (safe to read after the
  /// simulation is gone, unlike the live gauges).
  const json::Value& final_metrics() const { return final_metrics_; }
  bool finalized() const { return finalized_; }

  /// Registers the standard fabric gauges (fluid solver, per-rail OCS,
  /// cluster fault tolerance), installs per-rail OCS observers when
  /// tracing, and installs profile sinks when self-profiling.
  void attach_fabric(sim::Simulator& sim, net::Cluster& cluster);

  /// Starts the periodic sampler at sim.now(). Call after every metric is
  /// registered (the series columns are fixed here). No-op unless
  /// config().sampling().
  void start_probe(sim::Simulator& sim);

  /// Fault/repair instant on the fabric's per-rail fault track.
  void on_fault(const net::NicFault& fault, TimeNs now);

  /// Fleet lifecycle instant (admit/evict/re-place/finish/reject).
  void on_fleet_event(const std::string& kind, int job, TimeNs now);

  /// Captures the final metrics snapshot, closes open circuit spans at
  /// `end`, and emits track metadata. Idempotent; must run before the
  /// simulator/cluster die.
  void finalize(TimeNs end);

 private:
  struct RailObserver;

  TelemetryConfig config_;
  MetricsRegistry metrics_;
  ChromeTraceWriter trace_;
  std::unique_ptr<SelfProfiler> profiler_;
  std::unique_ptr<Probe> probe_;
  std::vector<std::unique_ptr<RailObserver>> rail_observers_;
  /// Circuit hold times ("ocs.circuit_lifetime_ns"), recorded by the rail
  /// observers on tear-down. Null handle unless metrics are wanted, so
  /// trace-only runs skip the recording for free.
  Histogram circuit_lifetime_;
  json::Value final_metrics_;
  bool fleet_process_named_ = false;
  bool finalized_ = false;
};

}  // namespace opus::obs
