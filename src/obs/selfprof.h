// Self-profiling: opt-in wall-clock scoped timers accumulated per named
// phase (fluid re-solve, OCS batch replay, event-loop drain, fleet
// baseline sweep, ...), reported as a per-phase wall-time table.
//
// Wall-clock readings stay inside this class and its table report — they
// never reach simulation state, result JSON, or any golden-checked output.
// Not thread-safe: attach one profiler to one simulation's hot paths (the
// fleet's isolated-baseline cells run with telemetry reset, so sweep
// worker threads never touch the fleet profiler).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/profile.h"
#include "common/table.h"

namespace opus::obs {

class SelfProfiler : public ProfileSink {
 public:
  /// Finds or creates the phase, returning its stable id.
  int phase(const char* name) override;

  /// Accumulates one invocation's inclusive wall time.
  void record(int phase_id, std::int64_t wall_ns) override;

  /// RAII scope for call sites that hold the profiler itself (core/fleet
  /// layers). A null profiler makes the scope a no-op; the destructor
  /// records, so timing survives exceptions thrown inside the scope.
  class Scope {
   public:
    Scope(SelfProfiler* profiler, const char* name);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SelfProfiler* profiler_;
    int phase_ = -1;
    std::chrono::steady_clock::time_point start_;
  };

  std::size_t phase_count() const { return phases_.size(); }
  std::int64_t calls(int phase_id) const;
  std::int64_t total_ns(int phase_id) const;

  /// Per-phase wall-time table (phase | calls | total ms | mean us), rows
  /// in first-use order.
  TextTable report() const;

 private:
  struct Phase {
    std::string name;
    std::int64_t calls = 0;
    std::int64_t total_ns = 0;
  };
  std::vector<Phase> phases_;
};

}  // namespace opus::obs
