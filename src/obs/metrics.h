// Metrics registry: named counters, pull-gauges, and power-of-two
// histograms registered once per simulation, sampled by the probe and
// snapshotted into the result document.
//
// Hot-path contract: a Counter update is one add through a raw int64 slot
// resolved at registration — no hashing, no lookup, no virtual call. Slots
// live in a deque owned by the registry so handles stay valid for the
// registry's lifetime. A default-constructed (unregistered) handle is a
// null slot and every operation on it is a guarded no-op, which is how
// call sites stay zero-overhead when telemetry is disabled.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"

namespace opus::obs {

/// Handle to a registered counter. Copyable; null until registered.
class Counter {
 public:
  Counter() = default;
  void inc(std::int64_t delta = 1) {
    if (slot_ != nullptr) *slot_ += delta;
  }
  void set(std::int64_t v) {
    if (slot_ != nullptr) *slot_ = v;
  }
  std::int64_t value() const { return slot_ == nullptr ? 0 : *slot_; }
  bool registered() const { return slot_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::int64_t* slot) : slot_(slot) {}
  std::int64_t* slot_ = nullptr;
};

/// Handle to a registered histogram of non-negative int64 samples. O(1)
/// record: the bucket index is the sample's bit width, so bucket i holds
/// values in [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  Histogram() = default;
  void record(std::int64_t v);
  std::int64_t count() const { return data_ == nullptr ? 0 : data_->count; }
  std::int64_t sum() const { return data_ == nullptr ? 0 : data_->sum; }
  std::int64_t min() const { return data_ == nullptr ? 0 : data_->min; }
  std::int64_t max() const { return data_ == nullptr ? 0 : data_->max; }
  bool registered() const { return data_ != nullptr; }

 private:
  friend class MetricsRegistry;
  struct Data {
    std::array<std::int64_t, kBuckets> buckets{};
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
  };
  explicit Histogram(Data* data) : data_(data) {}
  Data* data_ = nullptr;
};

/// Registry of named metrics. Registration (cold path) rejects duplicate
/// names; iteration order everywhere is registration order, so snapshots
/// and series columns are deterministic.
class MetricsRegistry {
 public:
  /// Registers a counter; throws common/error on a duplicate name.
  Counter add_counter(const std::string& name);
  /// Registers a pull-gauge sampled at snapshot/probe time.
  void add_gauge(const std::string& name, std::function<double()> sample);
  /// Registers a histogram; reported in the JSON snapshot only (a
  /// histogram is not a single series column).
  Histogram add_histogram(const std::string& name);

  /// Counter + gauge names, registration order: the probe's series columns.
  std::vector<std::string> column_names() const;
  /// Current counter values and gauge samples, matching column_names().
  std::vector<double> sample_columns() const;

  /// Full snapshot: counters as ints, gauges as doubles, histograms as
  /// {count, sum, min, max, buckets} objects. Key order = registration.
  json::Value snapshot_json() const;

  std::size_t metric_count() const { return entries_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::size_t index;  // into the per-kind storage below
  };

  void check_new_name(const std::string& name) const;

  std::vector<Entry> entries_;  // registration order
  std::deque<std::int64_t> counters_;
  std::vector<std::function<double()>> gauges_;
  std::deque<Histogram::Data> histograms_;
};

}  // namespace opus::obs
