// Time-series probes: a periodic sim-time sampler driven off the calendar
// event queue. Each tick snapshots the metrics registry (counters and
// gauges, including the derived fabric gauges Telemetry registers) into a
// columnar in-memory series exportable as CSV/JSON through common/table.
//
// Determinism: samples are sim-time-stamped and read-only, and the probe
// stops rescheduling itself once it is the only pending event, so enabling
// it never extends the simulation or perturbs workload event order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace opus::obs {

/// Columnar sim-time series: one row per probe tick.
class Series {
 public:
  explicit Series(std::vector<std::string> columns);

  void append(TimeNs t, const std::vector<double>& values);

  std::size_t row_count() const { return times_.size(); }
  const std::vector<std::string>& column_names() const { return columns_; }
  TimeNs time(std::size_t row) const { return times_[row]; }
  double value(std::size_t row, std::size_t col) const {
    return data_[col][row];
  }

  /// "t_ns" + metric columns; numeric cells in shortest-round-trip form so
  /// the rendered bytes are deterministic.
  TextTable to_table() const;
  std::string to_csv() const;
  json::Value to_json() const;  ///< columnar: {"t_ns": [...], "<col>": [...]}

 private:
  std::vector<std::string> columns_;
  std::vector<TimeNs> times_;
  std::vector<std::vector<double>> data_;  // column-major, data_[col][row]
};

/// Periodic sampler. start() takes the first sample at sim.now(),
/// unconditionally schedules one tick (the workload usually schedules after
/// the probe starts), and from then on reschedules every `interval` for as
/// long as other events remain pending.
class Probe {
 public:
  Probe(sim::Simulator& sim, const MetricsRegistry& registry, TimeNs interval);

  void start();
  const Series& series() const { return series_; }
  std::size_t samples_taken() const { return series_.row_count(); }

 private:
  void tick();

  sim::Simulator& sim_;
  const MetricsRegistry& registry_;
  TimeNs interval_;
  Series series_;
};

}  // namespace opus::obs
