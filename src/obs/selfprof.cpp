#include "obs/selfprof.h"

#include <cstring>

#include "common/error.h"

namespace opus::obs {

int SelfProfiler::phase(const char* name) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) return static_cast<int>(i);
  }
  phases_.push_back({name, 0, 0});
  return static_cast<int>(phases_.size() - 1);
}

void SelfProfiler::record(int phase_id, std::int64_t wall_ns) {
  ensure(phase_id >= 0 && static_cast<std::size_t>(phase_id) < phases_.size(),
         "selfprof: record on unregistered phase id");
  Phase& p = phases_[static_cast<std::size_t>(phase_id)];
  ++p.calls;
  p.total_ns += wall_ns;
}

SelfProfiler::Scope::Scope(SelfProfiler* profiler, const char* name)
    : profiler_(profiler) {
  if (profiler_ != nullptr) {
    phase_ = profiler_->phase(name);
    start_ = std::chrono::steady_clock::now();
  }
}

SelfProfiler::Scope::~Scope() {
  if (profiler_ != nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    profiler_->record(
        phase_,
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }
}

std::int64_t SelfProfiler::calls(int phase_id) const {
  ensure(phase_id >= 0 && static_cast<std::size_t>(phase_id) < phases_.size(),
         "selfprof: unknown phase id");
  return phases_[static_cast<std::size_t>(phase_id)].calls;
}

std::int64_t SelfProfiler::total_ns(int phase_id) const {
  ensure(phase_id >= 0 && static_cast<std::size_t>(phase_id) < phases_.size(),
         "selfprof: unknown phase id");
  return phases_[static_cast<std::size_t>(phase_id)].total_ns;
}

TextTable SelfProfiler::report() const {
  TextTable table({"phase", "calls", "total_ms", "mean_us"});
  for (const Phase& p : phases_) {
    const double total_ms = static_cast<double>(p.total_ns) / 1e6;
    const double mean_us =
        p.calls == 0 ? 0.0
                     : static_cast<double>(p.total_ns) /
                           (1e3 * static_cast<double>(p.calls));
    table.add_row({p.name, std::to_string(p.calls), fmt_double(total_ms, 3),
                   fmt_double(mean_us, 3)});
  }
  return table;
}

}  // namespace opus::obs
