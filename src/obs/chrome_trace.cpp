#include "obs/chrome_trace.h"

#include <utility>

namespace opus::obs {
namespace {

// trace_events timestamps are microseconds; an exact double division keeps
// the JSON bytes deterministic for any sim-time input.
double to_us(TimeNs t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

void ChromeTraceWriter::set_process_name(int pid, const std::string& name) {
  json::Value e = json::Value::object();
  e.set("name", json::Value("process_name"));
  e.set("ph", json::Value("M"));
  e.set("pid", json::Value(pid));
  e.set("tid", json::Value(0));
  json::Value args = json::Value::object();
  args.set("name", json::Value(name));
  e.set("args", std::move(args));
  metadata_.push_back(std::move(e));
}

void ChromeTraceWriter::set_thread_name(int pid, int tid,
                                        const std::string& name) {
  json::Value e = json::Value::object();
  e.set("name", json::Value("thread_name"));
  e.set("ph", json::Value("M"));
  e.set("pid", json::Value(pid));
  e.set("tid", json::Value(tid));
  json::Value args = json::Value::object();
  args.set("name", json::Value(name));
  e.set("args", std::move(args));
  metadata_.push_back(std::move(e));
}

json::Value ChromeTraceWriter::event(int pid, int tid, const std::string& name,
                                     const std::string& category,
                                     const char* ph, TimeNs t) const {
  json::Value e = json::Value::object();
  e.set("name", json::Value(name));
  if (!category.empty()) e.set("cat", json::Value(category));
  e.set("ph", json::Value(ph));
  e.set("ts", json::Value(to_us(t)));
  e.set("pid", json::Value(pid));
  e.set("tid", json::Value(tid));
  return e;
}

void ChromeTraceWriter::complete(int pid, int tid, const std::string& name,
                                 const std::string& category, TimeNs start,
                                 TimeNs duration) {
  json::Value e = event(pid, tid, name, category, "X", start);
  e.set("dur", json::Value(to_us(duration)));
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::instant(int pid, int tid, const std::string& name,
                                const std::string& category, TimeNs t) {
  json::Value e = event(pid, tid, name, category, "i", t);
  e.set("s", json::Value("g"));
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::add_recorder(int pid, const std::string& process_name,
                                     const trace::TraceRecorder& recorder) {
  set_process_name(pid, process_name);
  set_thread_name(pid, 0, "iterations");
  set_thread_name(pid, 1, "comm");
  for (const trace::IterationSpan& s : recorder.iterations()) {
    complete(pid, 0, "iter " + std::to_string(s.index), "iteration", s.t_start,
             s.duration());
  }
  for (const trace::CommRecord& c : recorder.comm_records()) {
    const std::string name = std::string(collective::to_string(c.type)) + " " +
                             collective::to_string(c.dim) +
                             (c.group_name.empty() ? "" : " " + c.group_name);
    const std::string cat =
        c.rail.valid() ? "comm rail" + std::to_string(c.rail.value())
                       : "comm scale-up";
    complete(pid, 1, name, cat, c.t_issue, c.duration());
  }
  // One thread per GPU keeps overlapping per-GPU compute spans (pipeline
  // stages, microbatches) on separate lines in the viewer.
  int last_gpu_tid = -1;
  for (const trace::ComputeRecord& c : recorder.compute_records()) {
    const int tid = 2 + c.gpu.value();
    if (tid > last_gpu_tid) last_gpu_tid = tid;
    complete(pid, tid, c.label, "compute", c.t_start, c.t_end - c.t_start);
  }
  for (int tid = 2; tid <= last_gpu_tid; ++tid) {
    set_thread_name(pid, tid, "gpu " + std::to_string(tid - 2));
  }
}

json::Value ChromeTraceWriter::to_json() const {
  json::Value events = json::Value::array();
  for (const json::Value& m : metadata_) events.push_back(m);
  for (const json::Value& e : events_) events.push_back(e);
  json::Value out = json::Value::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", json::Value("ms"));
  return out;
}

std::string ChromeTraceWriter::dump() const {
  // Compact form: traces are event-per-line-free bulk data for Perfetto,
  // not for human diffing.
  return json::dump(to_json(), 0);
}

}  // namespace opus::obs
