// ASCII Gantt rendering of a rail's communication pattern (Fig. 3).
//
// Rows are the GPUs attached to the rail; columns are time bins. Each comm
// is drawn with a per-type glyph; phase boundaries (where the parallelism
// dimension changes, i.e. where Opus would reconfigure circuits) are listed
// below the chart as the "circuit configurations" of Fig. 3.
#pragma once

#include <string>
#include <vector>

#include "trace/recorder.h"

namespace opus::trace {

struct GanttOptions {
  int width = 100;  ///< number of time-bin columns
  bool show_phase_list = true;
};

/// Renders the comm records of one rail/iteration (as returned by
/// TraceRecorder::rail_comms) into an ASCII chart. `gpus` lists the global
/// ranks attached to the rail, in row order.
std::string render_rail_gantt(const std::vector<CommRecord>& comms,
                              const std::vector<GpuId>& gpus,
                              TimeNs t_begin, TimeNs t_end,
                              const GanttOptions& options = {});

/// Glyph used for a collective type in the chart.
char gantt_glyph(collective::CollectiveType type);

}  // namespace opus::trace
