#include "trace/windows.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.h"

namespace opus::trace {

std::vector<Phase> extract_phases(const std::vector<CommRecord>& comms) {
  std::vector<Phase> phases;
  for (const CommRecord& c : comms) {
    bool start_new = phases.empty();
    if (!start_new) {
      const Phase& p = phases.back();
      if (p.dim != c.dim) {
        start_new = true;
      } else if (c.t_issue > p.t_last_end && !p.contains_group(c.group)) {
        // Same dimension but a *different* group set after an idle gap:
        // a distinct phase (e.g. per-stage ReduceScatter bursts).
        start_new = true;
      }
    }
    if (start_new) {
      Phase p;
      p.dim = c.dim;
      p.groups = {c.group};
      p.t_first_issue = c.t_issue;
      p.t_last_end = c.t_end;
      p.first_comm_payload = c.payload;
      p.total_payload = c.payload;
      p.n_comms = 1;
      phases.push_back(std::move(p));
    } else {
      Phase& p = phases.back();
      if (!p.contains_group(c.group)) p.groups.push_back(c.group);
      p.t_first_issue = std::min(p.t_first_issue, c.t_issue);
      p.t_last_end = std::max(p.t_last_end, c.t_end);
      p.total_payload += c.payload;
      ++p.n_comms;
    }
  }
  return phases;
}

std::vector<Window> extract_windows(const std::vector<CommRecord>& comms) {
  std::vector<Window> windows;
  const std::vector<Phase> phases = extract_phases(comms);
  for (std::size_t i = 1; i < phases.size(); ++i) {
    Window w;
    w.size = phases[i].t_first_issue - phases[i - 1].t_last_end;
    w.before_dim = phases[i - 1].dim;
    w.after_dim = phases[i].dim;
    // Fig. 4(b): windows are categorized by the *total* traffic between this
    // window and the next one, i.e. the following phase's payload sum.
    w.traffic_after = phases[i].total_payload;
    if (!comms.empty()) w.iteration = comms.front().iteration;
    windows.push_back(w);
  }
  return windows;
}

std::vector<WindowCategory> categorize_windows(
    const std::vector<Window>& windows, int n_iterations) {
  ensure(n_iterations >= 1, "categorize_windows: need >= 1 iteration");
  // Bucket by volume, merging volumes within 1% of an existing bucket.
  std::map<Bytes, std::pair<int, double>> buckets;  // volume -> (count, sum ms)
  for (const Window& w : windows) {
    Bytes key = w.traffic_after;
    for (const auto& [v, agg] : buckets) {
      const double rel = std::abs(static_cast<double>(v - key)) /
                         std::max<double>(1.0, static_cast<double>(v));
      if (rel < 0.01) {
        key = v;
        break;
      }
    }
    auto& [count, sum_ms] = buckets[key];
    ++count;
    sum_ms += to_ms(w.size);
  }
  std::vector<WindowCategory> out;
  for (const auto& [volume, agg] : buckets) {
    WindowCategory c;
    c.traffic_after = volume;
    c.count_per_iteration =
        static_cast<double>(agg.first) / static_cast<double>(n_iterations);
    c.avg_window_ms = agg.second / agg.first;
    out.push_back(c);
  }
  return out;
}

std::int64_t window_count_estimate(int pp, int n_layers, int n_microbatches,
                                   bool cp_present, bool ep_present) {
  ensure(pp >= 1 && n_layers >= 1 && n_microbatches >= 1,
         "window_count_estimate: invalid configuration");
  const std::int64_t layers_per_stage =
      (n_layers + pp - 1) / pp;  // ceil, matching uneven stage splits
  std::int64_t count = 0;
  // PP and FSDP forward/backward interleave.
  count += 4LL * (pp - 1);
  if (cp_present || ep_present) {
    // CP/EP and FSDP first-microbatch forward interleave.
    count += 2LL * (layers_per_stage - 1);
    // CP/EP and PP forward/backward interleave.
    count += 4LL * n_microbatches;
  }
  if (cp_present && ep_present) {
    // CP and EP forward/backward interleave (per layer, both passes).
    count += 2LL * n_microbatches * (2 * layers_per_stage - 1);
  }
  // PP warm-up, steady, cool-down, and sync state transitions.
  count += 4;
  return count;
}

}  // namespace opus::trace
