#include "trace/gantt.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "trace/windows.h"

namespace opus::trace {

char gantt_glyph(collective::CollectiveType type) {
  using collective::CollectiveType;
  switch (type) {
    case CollectiveType::kAllGather: return 'G';
    case CollectiveType::kReduceScatter: return 'R';
    case CollectiveType::kAllReduce: return 'A';
    case CollectiveType::kSendRecv: return 'S';
    case CollectiveType::kAllToAll: return 'X';
    case CollectiveType::kBroadcast: return 'B';
    case CollectiveType::kReduce: return 'r';
    case CollectiveType::kBarrier: return '|';
  }
  return '?';
}

std::string render_rail_gantt(const std::vector<CommRecord>& comms,
                              const std::vector<GpuId>& gpus, TimeNs t_begin,
                              TimeNs t_end, const GanttOptions& options) {
  ensure(t_end > t_begin, "gantt: empty time range");
  ensure(options.width > 0, "gantt: width must be positive");
  const int w = options.width;
  const double span = static_cast<double>(t_end - t_begin);

  auto column = [&](TimeNs t) {
    const double f = static_cast<double>(t - t_begin) / span;
    return std::clamp(static_cast<int>(f * w), 0, w - 1);
  };

  std::vector<std::string> rows(gpus.size(), std::string(w, '.'));
  for (const CommRecord& c : comms) {
    const int c0 = column(std::max(c.t_issue, t_begin));
    const int c1 = column(std::min(c.t_end, t_end));
    const char glyph = gantt_glyph(c.type);
    // A comm record covers its whole group; the rail view draws it across
    // every row, matching the rail-wide presentation of Fig. 3.
    for (auto& r : rows) {
      for (int x = c0; x <= c1; ++x) {
        if (r[static_cast<std::size_t>(x)] == '.') {
          r[static_cast<std::size_t>(x)] = glyph;
        }
      }
    }
  }

  std::ostringstream os;
  os << "time: " << format_time(t_begin) << " .. " << format_time(t_end)
     << "  (G=AllGather R=ReduceScatter A=AllReduce S=Send/Recv X=AllToAll)\n";
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    os << "rank " << gpus[i].value() << "\t" << rows[i] << '\n';
  }

  if (options.show_phase_list) {
    const auto phases = extract_phases(comms);
    os << "phases (each dimension shift = one circuit configuration):\n";
    int cfg = 0;
    for (const Phase& p : phases) {
      os << "  config " << cfg++ << ": " << collective::to_string(p.dim)
         << "  [" << format_time(p.t_first_issue - t_begin) << " .. "
         << format_time(p.t_last_end - t_begin) << "]  " << p.n_comms
         << " comms, " << format_bytes(p.total_payload) << '\n';
    }
  }
  return os.str();
}

}  // namespace opus::trace
