// Inter-parallelism window analysis (§3.1 of the paper).
//
// A *phase* is a maximal run of consecutive (by issue time) scale-out
// communications on one rail that belong to the same parallelism dimension.
// The window between consecutive phases P1 and P2 is
//
//   T_window = min_{comm_j in P2} T_start(comm_j)
//            - max_{comm_i in P1} T_end(comm_i)
//
// where T_start is the moment the slowest participating rank joined — which
// in the simulator is exactly the collective's issue time (all DAG
// dependencies satisfied). Windows can be negative when phases overlap.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "trace/recorder.h"

namespace opus::trace {

/// One contiguous run of communications on a rail belonging to the same
/// parallelism phase. Phase identity follows the paper's "distinctive sets
/// of communication groups": a new phase starts when the dimension changes,
/// or when a communication from a group outside the running phase's group
/// set arrives after an idle gap (e.g. stage 1's ReduceScatter chain versus
/// stage 0's later one).
struct Phase {
  collective::ParallelismDim dim = collective::ParallelismDim::kOther;
  std::vector<GroupId> groups;   ///< distinct groups seen in the phase
  TimeNs t_first_issue = 0;      ///< min issue over the phase's comms
  TimeNs t_last_end = 0;         ///< max end over the phase's comms
  Bytes first_comm_payload = 0;  ///< payload of the earliest comm
  Bytes total_payload = 0;       ///< Fig. 4(b)'s traffic categories
  int n_comms = 0;

  bool contains_group(GroupId g) const {
    for (GroupId x : groups)
      if (x == g) return true;
    return false;
  }
};

/// The gap between two consecutive phases.
struct Window {
  TimeNs size = 0;  ///< may be negative when phases overlap
  collective::ParallelismDim before_dim = collective::ParallelismDim::kOther;
  collective::ParallelismDim after_dim = collective::ParallelismDim::kOther;
  /// Volume of the communication following the window (its category in
  /// Fig. 4b).
  Bytes traffic_after = 0;
  int iteration = 0;
};

/// Splits a rail's comm records (one iteration, sorted by issue) into phases.
std::vector<Phase> extract_phases(const std::vector<CommRecord>& comms);

/// Windows between consecutive phases of one iteration on one rail.
std::vector<Window> extract_windows(const std::vector<CommRecord>& comms);

/// Aggregated Fig. 4(b) row: windows grouped by following-traffic volume.
struct WindowCategory {
  Bytes traffic_after = 0;  ///< representative volume of the category
  double count_per_iteration = 0.0;
  double avg_window_ms = 0.0;
};

/// Groups windows into volume categories (volumes equal within 1%) and
/// averages over `n_iterations`.
std::vector<WindowCategory> categorize_windows(
    const std::vector<Window>& windows, int n_iterations);

/// Eq. 1 of the paper: upper bound on the number of inter-parallelism
/// windows in one training iteration (FSDP assumed; TP confined to the
/// scale-up domain). Terms vanish with the absent dimensions: the CP/EP-vs-
/// FSDP and CP/EP-vs-PP interleaves need at least one of CP/EP; the CP-vs-
/// EP interleave needs both. For the paper's Llama3.1-405B setting
/// (126 layers, PP=9, 16 microbatches, CP but no EP) this gives 126,
/// matching the reported ~127 windows (~6/s over a ~20 s iteration).
std::int64_t window_count_estimate(int pp, int n_layers, int n_microbatches,
                                   bool cp_present, bool ep_present);

}  // namespace opus::trace
