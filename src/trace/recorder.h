// Communication/compute trace recording.
//
// The engine records one CommRecord per communication-group execution and
// one ComputeRecord per per-GPU compute span. The window analyzer (Fig. 4),
// the Gantt exporter (Fig. 3), and the Opus shim's profiling pass all consume
// this trace.
#pragma once

#include <string>
#include <vector>

#include "collective/comm_group.h"
#include "collective/schedule.h"
#include "common/ids.h"
#include "common/units.h"

namespace opus::trace {

struct CommRecord {
  int iteration = 0;
  /// Rail carrying the traffic; invalid for scale-up-only collectives.
  RailId rail;
  GroupId group;
  std::string group_name;
  collective::ParallelismDim dim = collective::ParallelismDim::kOther;
  collective::CollectiveType type = collective::CollectiveType::kAllReduce;
  Bytes payload = 0;
  /// When the slowest participating rank joined (the paper's T_comm_start).
  TimeNs t_issue = 0;
  /// When data finished moving on every rank (the paper's T_comm_end).
  TimeNs t_end = 0;
  /// True when the group crosses scale-up domains (uses the rails).
  bool scale_out = false;

  TimeNs duration() const { return t_end - t_issue; }
};

struct ComputeRecord {
  int iteration = 0;
  GpuId gpu;
  TimeNs t_start = 0;
  TimeNs t_end = 0;
  std::string label;
  int pp_stage = -1;
  int microbatch = -1;
};

struct IterationSpan {
  int index = 0;
  TimeNs t_start = 0;
  TimeNs t_end = 0;
  TimeNs duration() const { return t_end - t_start; }
};

class TraceRecorder {
 public:
  /// When false, compute records are dropped (comm records always kept).
  explicit TraceRecorder(bool record_compute = true)
      : record_compute_(record_compute) {}

  void begin_iteration(TimeNs now);
  void end_iteration(TimeNs now);
  int current_iteration() const { return current_iteration_; }

  void record_comm(CommRecord rec);
  void record_compute(ComputeRecord rec);

  const std::vector<CommRecord>& comm_records() const { return comm_; }
  const std::vector<ComputeRecord>& compute_records() const {
    return compute_;
  }
  const std::vector<IterationSpan>& iterations() const { return spans_; }

  /// Comm records of one iteration restricted to one rail (scale-out only),
  /// sorted by issue time — the unit of the paper's window analysis.
  std::vector<CommRecord> rail_comms(int iteration, RailId rail) const;

  /// Scale-out comm records of one iteration on any rail, sorted by issue.
  std::vector<CommRecord> scale_out_comms(int iteration) const;

  void clear();

 private:
  bool record_compute_;
  int current_iteration_ = -1;
  std::vector<CommRecord> comm_;
  std::vector<ComputeRecord> compute_;
  std::vector<IterationSpan> spans_;
};

}  // namespace opus::trace
