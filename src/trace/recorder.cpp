#include "trace/recorder.h"

#include <algorithm>

#include "common/error.h"

namespace opus::trace {

void TraceRecorder::begin_iteration(TimeNs now) {
  ++current_iteration_;
  spans_.push_back(IterationSpan{current_iteration_, now, now});
}

void TraceRecorder::end_iteration(TimeNs now) {
  ensure(!spans_.empty(), "end_iteration without begin_iteration");
  spans_.back().t_end = now;
}

void TraceRecorder::record_comm(CommRecord rec) {
  rec.iteration = current_iteration_;
  comm_.push_back(std::move(rec));
}

void TraceRecorder::record_compute(ComputeRecord rec) {
  if (!record_compute_) return;
  rec.iteration = current_iteration_;
  compute_.push_back(std::move(rec));
}

std::vector<CommRecord> TraceRecorder::rail_comms(int iteration,
                                                  RailId rail) const {
  std::vector<CommRecord> out;
  for (const CommRecord& r : comm_) {
    if (r.iteration == iteration && r.scale_out && r.rail == rail) {
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CommRecord& a, const CommRecord& b) {
              return a.t_issue < b.t_issue;
            });
  return out;
}

std::vector<CommRecord> TraceRecorder::scale_out_comms(int iteration) const {
  std::vector<CommRecord> out;
  for (const CommRecord& r : comm_) {
    if (r.iteration == iteration && r.scale_out) out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const CommRecord& a, const CommRecord& b) {
              return a.t_issue < b.t_issue;
            });
  return out;
}

void TraceRecorder::clear() {
  comm_.clear();
  compute_.clear();
  spans_.clear();
  current_iteration_ = -1;
}

}  // namespace opus::trace
