#include "trace/export.h"

#include <sstream>

#include "common/table.h"

namespace opus::trace {
namespace {

// Default ostream formatting (up to 6 significant digits) — byte-compatible
// with the hand-rolled writer this file used before moving to common/table.
std::string fmt_stream_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string comms_to_csv(const std::vector<CommRecord>& comms) {
  TextTable table({"iteration", "rail", "group", "dim", "type",
                   "payload_bytes", "issue_ns", "end_ns", "scale_out"});
  for (const CommRecord& c : comms) {
    table.add_row({std::to_string(c.iteration),
                   std::to_string(c.rail.valid() ? c.rail.value() : -1),
                   std::to_string(c.group.value()),
                   collective::to_string(c.dim),
                   collective::to_string(c.type), std::to_string(c.payload),
                   std::to_string(c.t_issue), std::to_string(c.t_end),
                   c.scale_out ? "1" : "0"});
  }
  return table.to_csv();
}

std::string windows_to_csv(const std::vector<Window>& windows) {
  TextTable table({"iteration", "size_ms", "before_dim", "after_dim",
                   "traffic_after_bytes"});
  for (const Window& w : windows) {
    table.add_row({std::to_string(w.iteration),
                   fmt_stream_double(to_ms(w.size)),
                   collective::to_string(w.before_dim),
                   collective::to_string(w.after_dim),
                   std::to_string(w.traffic_after)});
  }
  return table.to_csv();
}

std::string cdf_to_csv(const Cdf& cdf) {
  TextTable table({"value", "fraction"});
  const auto& samples = cdf.sorted_samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    table.add_row({fmt_stream_double(samples[i]),
                   fmt_stream_double(static_cast<double>(i + 1) /
                                     static_cast<double>(samples.size()))});
  }
  return table.to_csv();
}

}  // namespace opus::trace
