#include "trace/export.h"

#include <sstream>

namespace opus::trace {

std::string comms_to_csv(const std::vector<CommRecord>& comms) {
  std::ostringstream os;
  os << "iteration,rail,group,dim,type,payload_bytes,issue_ns,end_ns,"
        "scale_out\n";
  for (const CommRecord& c : comms) {
    os << c.iteration << ',' << (c.rail.valid() ? c.rail.value() : -1) << ','
       << c.group.value() << ',' << collective::to_string(c.dim) << ','
       << collective::to_string(c.type) << ',' << c.payload << ','
       << c.t_issue << ',' << c.t_end << ',' << (c.scale_out ? 1 : 0) << '\n';
  }
  return os.str();
}

std::string windows_to_csv(const std::vector<Window>& windows) {
  std::ostringstream os;
  os << "iteration,size_ms,before_dim,after_dim,traffic_after_bytes\n";
  for (const Window& w : windows) {
    os << w.iteration << ',' << to_ms(w.size) << ','
       << collective::to_string(w.before_dim) << ','
       << collective::to_string(w.after_dim) << ',' << w.traffic_after
       << '\n';
  }
  return os.str();
}

std::string cdf_to_csv(const Cdf& cdf) {
  std::ostringstream os;
  os << "value,fraction\n";
  const auto& samples = cdf.sorted_samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    os << samples[i] << ','
       << static_cast<double>(i + 1) / static_cast<double>(samples.size())
       << '\n';
  }
  return os.str();
}

}  // namespace opus::trace
