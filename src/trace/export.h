// CSV export of traces and analysis results, for plotting Fig. 3/4-style
// artifacts outside the simulator.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "trace/recorder.h"
#include "trace/windows.h"

namespace opus::trace {

/// Comm records as CSV: iteration,rail,group,dim,type,payload,issue_ns,
/// end_ns,scale_out.
std::string comms_to_csv(const std::vector<CommRecord>& comms);

/// Windows as CSV: iteration,size_ms,before_dim,after_dim,traffic_after.
std::string windows_to_csv(const std::vector<Window>& windows);

/// A CDF as CSV: value,fraction — one row per sample (step function).
std::string cdf_to_csv(const Cdf& cdf);

}  // namespace opus::trace
