// Optical circuit switch (OCS) model.
//
// An OCS is a passive crossbar: at any instant each port is cross-connected
// to at most one peer port (a bidirectional circuit), or to nothing. A
// reconfiguration atomically retargets a *set* of ports; exactly the touched
// ports (including the old peers of retargeted ports) are "dark" — unable to
// carry traffic — for the technology's reconfiguration latency. Untouched
// circuits keep carrying traffic throughout, modelling the fine-grained
// per-port switching the paper requires for per-communication-group
// reconfiguration (§5 "Reconfiguration granularity").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/profile.h"
#include "common/units.h"
#include "net/fluid.h"
#include "sim/simulator.h"

namespace opus::net {

/// One bidirectional cross-connect request: connect ports `a` and `b`.
struct CircuitRequest {
  PortId a;
  PortId b;
};

/// Circle-method round-robin tournament matching over ids 0..n-1: round `r`
/// pairs every id exactly once (odd n: one id sits the round out). Shared by
/// the rotor transport's rotation schedule and the churn benchmarks/tests,
/// so they all exercise the same matching sequence.
std::vector<std::pair<int, int>> round_robin_matching(int n, int round);

/// The same matching expressed as OCS circuit requests (even `n_ports`).
std::vector<CircuitRequest> round_robin_circuits(int n_ports, int round);

/// Observer of circuit lifecycle and dark intervals (telemetry's
/// chrome-trace tracks). Notifications are read-only and fire on the cold
/// reconfiguration paths; a null observer costs one branch per event. Both
/// the generic and the batched reconfiguration paths emit: circuit up/down
/// once per unordered port pair, and one dark interval per reconfiguration
/// with its full touched-port count.
class OcsObserver {
 public:
  virtual ~OcsObserver() = default;
  /// A circuit between `a` and `b` became live at `now`.
  virtual void on_circuit_up(PortId a, PortId b, TimeNs now) = 0;
  /// The circuit between `a` and `b` was torn down at `now`.
  virtual void on_circuit_down(PortId a, PortId b, TimeNs now) = 0;
  /// `ports` ports are dark for [start, start + duration).
  virtual void on_dark_interval(int ports, TimeNs start, TimeNs duration) = 0;
};

/// MEMS/piezo/liquid-crystal-style optical circuit switch.
class OpticalCircuitSwitch {
 public:
  struct Stats {
    /// Number of reconfigure() operations that actually changed state.
    /// 64-bit: a 4k-node rotor performs enough rotations that the derived
    /// counters (circuits_established grows ~2k per rotation) overflow 32
    /// bits well inside one run.
    std::int64_t reconfigurations = 0;
    /// Circuits established across all reconfigurations.
    std::int64_t circuits_established = 0;
    /// Sum over ports of time spent dark.
    TimeNs cumulative_port_dark_ns = 0;
    /// Fluid links retired because their circuit stayed dead (churn cleanup).
    std::int64_t links_retired = 0;
    /// reconfigure_batch calls that fell back to the generic path (an
    /// out-of-set peer after a rewire, or batch ports lost to failure).
    std::int64_t batch_fallbacks = 0;
  };

  /// `port_bw` is the per-direction bandwidth of a circuit (the NIC port
  /// rate); `circuit_latency` is the end-to-end propagation latency of an
  /// established circuit (fiber + transceivers, no OEO in the middle).
  OpticalCircuitSwitch(sim::Simulator& sim, FluidNetwork& net, int n_ports,
                       Bandwidth port_bw, TimeNs circuit_latency,
                       TimeNs reconfig_delay, std::string name = {});

  int n_ports() const { return static_cast<int>(peer_.size()); }
  Bandwidth port_bandwidth() const { return port_bw_; }
  TimeNs circuit_latency() const { return circuit_latency_; }
  TimeNs reconfig_delay() const { return reconfig_delay_; }
  void set_reconfig_delay(TimeNs d);

  /// Owner tag for multi-tenant fabrics (-1 = unowned). Every circuit must
  /// connect two ports of the same owner, so one tenant's reconfiguration
  /// can never retarget — and thereby darken — a port carved out for
  /// another tenant (the fleet driver assigns owners per placed job).
  /// Because circuits never cross owners, the ports a reconfiguration
  /// touches (endpoints plus their displaced peers) stay within one owner
  /// by induction.
  static constexpr int kUnowned = -1;
  void set_port_owner(PortId p, int owner);
  int port_owner(PortId p) const;

  /// Cumulative dark time of one port (the per-port breakdown of
  /// Stats::cumulative_port_dark_ns; lets a fleet attribute darkness to the
  /// tenant owning the port).
  TimeNs port_dark_time(PortId p) const;

  /// Instantly tears down any circuit on each listed port (tenant teardown
  /// when a job's node range is recycled). Every affected port — including
  /// peers outside `ports` — must be quiescent: not dark and not carrying
  /// traffic. No dark period, no stats.
  void clear_circuits_on(const std::vector<PortId>& ports);

  /// Invokes `cb` once none of `ports` is dark — immediately (synchronously)
  /// when that already holds, otherwise right after the reconfiguration
  /// holding the last dark port completes. Waiters fire in registration
  /// order (deterministic).
  void call_when_undark(std::vector<PortId> ports, std::function<void()> cb);

  /// The port currently cross-connected to `p` (regardless of darkness).
  std::optional<PortId> peer(PortId p) const;
  /// True while `p` is being retargeted by an in-flight reconfiguration.
  bool dark(PortId p) const;
  /// True iff a live (non-dark) circuit connects `a` and `b`.
  bool connected(PortId a, PortId b) const;

  /// Hot-path fusion of peer() + connected(): the peer of `port` when a
  /// live circuit carries it (same predicate as connected()), else -1.
  /// Pure array reads with no bounds ensure — `port` must be a valid index.
  /// The rotor's per-send reachability scans call this tens of millions of
  /// times per run; the wrapped accessors were the profile's top entries.
  std::int32_t live_peer(std::int32_t port) const {
    const auto i = static_cast<std::size_t>(port);
    const std::int32_t q = peer_[i];
    if (q < 0) return -1;
    const auto j = static_cast<std::size_t>(q);
    if (is_dark(i) || is_dark(j) || failed_[i] || failed_[j]) return -1;
    return q;
  }
  /// The fluid link carrying `port` -> its peer. Requires a live circuit on
  /// `port` (live_peer(port) >= 0); equals link(port, peer) without the
  /// precondition ensures.
  LinkId live_tx_link(std::int32_t port) const {
    return port_tx_link_[static_cast<std::size_t>(port)];
  }

  /// Fails a port (fiber cut / transceiver death): its circuit is torn down
  /// and no future circuit may use it until repair_port. The default
  /// (`force = true`) models a mid-run failure — traffic on the dying
  /// circuit is handed to the flow rescuer (set_flow_rescuer) or aborted
  /// outright, and a failure mid-reconfiguration simply marks the port so
  /// the completion skips re-establishing its circuit. `force = false`
  /// keeps the legacy between-kernels precondition (quiescent, not dark) —
  /// the recovery model of LUMION, the paper's fault-recovery companion
  /// work. Idempotent on an already-failed port.
  void fail_port(PortId p, bool force = true);
  /// Repairs a failed port: future circuits may use it again. The old
  /// circuit is NOT restored — owners re-wire on their own schedule (rotor
  /// next rotation, ring re-splice, Opus next plan); the topology listener
  /// fires so parked traffic retries. Idempotent.
  void repair_port(PortId p);
  bool failed(PortId p) const;
  int failed_port_count() const;

  /// Ports currently dark (generic per-port flags plus the members of any
  /// mid-transaction batch group) — the telemetry probe's dark-port gauge.
  /// O(dark groups), which is O(registered batches), not O(ports).
  int dark_port_count() const {
    int n = dark_ports_;
    for (const DarkGroup& g : dark_groups_) {
      if (g.dark) n += g.members;
    }
    return n;
  }

  /// Telemetry observer (null = disabled, the default).
  void set_observer(OcsObserver* observer) { observer_ = observer; }

  /// Opt-in wall-clock sink timing each batch replay (obs self-profiling).
  void set_profile_sink(ProfileSink* sink);

  /// Called whenever port-level connectivity changes outside a caller's own
  /// request — reconfiguration completions, force_circuits, repair_port —
  /// so the owning layer can retry traffic parked on a dead topology.
  void set_topology_listener(std::function<void()> cb) {
    topology_listener_ = std::move(cb);
  }
  /// When set, a forced fail_port hands each flow on the dying circuit to
  /// this callback (which must abort and re-route or park it) instead of
  /// aborting it silently.
  void set_flow_rescuer(std::function<void(FlowId)> cb) {
    flow_rescuer_ = std::move(cb);
  }

  /// True iff every requested circuit is already established and live —
  /// the idempotence fast-path used by the Opus controller's config cache.
  bool satisfied(const std::vector<CircuitRequest>& circuits) const;

  /// Requests a reconfiguration establishing every circuit in `circuits`.
  /// Existing circuits on touched ports are torn down; the touched port set
  /// (new ports plus their old peers) is dark for reconfig_delay, after which
  /// the new circuits are live and `on_done` fires.
  ///
  /// Preconditions (enforced): no touched port is already dark (callers must
  /// serialize overlapping requests — the Opus controller does), no port
  /// appears twice in `circuits`, and no touched circuit is carrying traffic.
  /// If `circuits` is already satisfied, `on_done` fires immediately (same
  /// timestamp) and no reconfiguration is counted.
  void reconfigure(const std::vector<CircuitRequest>& circuits,
                   std::function<void()> on_done);

  // ---- batched rotation transactions ---------------------------------------
  /// Handle to a pre-registered reconfiguration (a rotor matching). -1 is
  /// never returned.
  using BatchId = int;

  /// Pre-validates `circuits` (same rules as reconfigure) and pins their
  /// fluid link pairs: the links are created now, kept for the switch's
  /// lifetime, and never retired by the dead-circuit cache — a rotor replays
  /// each matching every cycle, so retiring its links only to recreate them
  /// one rotation later dominated large runs. All endpoints of the batch
  /// join one *dark group* (shared with any other batch over the identical
  /// port set), which carries the per-rotation delta dark accounting.
  BatchId register_batch(const std::vector<CircuitRequest>& circuits);

  /// Applies a registered batch as one transaction: tears down the current
  /// circuits of every batch port, darkens the whole port set for
  /// reconfig_delay (one dark interval, one completion event), then brings
  /// all circuits up together and fires `on_done`. Dark time is charged as
  /// a single O(1) delta on the batch's dark group instead of per port.
  /// Equivalent to reconfigure(...) whenever every batch port's current
  /// peer lies inside the batch's port set (a rotor rotation by
  /// construction); otherwise it falls back to the generic path, whose
  /// touched set may be wider. Same preconditions as reconfigure; if the
  /// batch is already satisfied, `on_done` fires immediately and nothing is
  /// counted.
  void reconfigure_batch(BatchId batch, std::function<void()> on_done);

  /// Instantly establishes circuits with no dark period. Intended for t=0
  /// initial topology (e.g. a pre-job configuration); counts no stats.
  void force_circuits(const std::vector<CircuitRequest>& circuits);

  /// Overrides the dead-circuit cache bound (in circuits; 0 restores the
  /// default of 2x the port count). A rotor fabric sets this to its whole
  /// rotation cycle so every matching's fluid links are created exactly
  /// once and reused each cycle — with the default bound, every rotation
  /// would retire and recreate ~n_ports links, which profiling shows
  /// dominates large-rotor runs. The active-state fluid solver's cost is
  /// unaffected by cached-but-idle links; only memory is spent.
  void set_dead_circuit_cache(std::size_t circuits);

  /// Set of ports a reconfiguration request would touch (new + old peers).
  std::vector<PortId> touched_ports(
      const std::vector<CircuitRequest>& circuits) const;

  /// Fluid link carrying traffic in the direction `from` -> `to`.
  /// Requires connected(from, to).
  LinkId link(PortId from, PortId to) const;

  const Stats& stats() const { return stats_; }

 private:
  /// One pre-resolved cross-connect of a registered batch: the port pair and
  /// the directional fluid links carrying it (a -> b, b -> a).
  struct BatchCircuit {
    std::int32_t a;
    std::int32_t b;
    LinkId ab;
    LinkId ba;
  };
  struct Batch {
    std::vector<BatchCircuit> circuits;
    std::vector<std::int32_t> ports;  ///< all endpoints, sorted
    int group = -1;                   ///< index into dark_groups_
  };
  /// Shared dark-accounting bucket for every batch over one port set. A
  /// member port's dark time is port_dark_ns_[p] + accrued: a batch
  /// transaction charges its delay once here (O(1)) instead of walking the
  /// ports, and `dark` flags the whole set mid-transaction.
  struct DarkGroup {
    TimeNs accrued = 0;
    bool dark = false;
    std::int32_t members = 0;
  };

  void check_port(PortId p) const;
  /// dark(p) without the port-validity check (hot paths index directly).
  bool is_dark(std::size_t i) const {
    if (dark_[i]) return true;
    const auto g = port_dark_group_[i];
    return g >= 0 && dark_groups_[static_cast<std::size_t>(g)].dark;
  }
  /// Finds the dark group covering exactly `ports`, migrating ports out of
  /// stale groups (their accrued time is baked into port_dark_ns_) when the
  /// set does not match an existing group verbatim.
  int dark_group_for(const std::vector<std::int32_t>& ports);
  /// Fires every registered waiter whose port set is now fully undark.
  void pump_undark_waiters();
  /// Cross-connects a<->b in the state tables (no timing).
  void establish(PortId a, PortId b);
  /// Clears the circuit on `p` (and its peer), if any, and queues the pair's
  /// fluid links for retirement once the dead-circuit cache overflows.
  void tear_down(PortId p);
  /// Lazily creates (or fetches) the fluid link pair for an unordered pair.
  std::pair<LinkId, LinkId> link_pair(PortId a, PortId b);
  /// Retires the fluid links of the oldest dead circuits beyond the cache
  /// bound, so rotor-style reconfiguration churn cannot grow the fluid
  /// network's solve set (or this switch's pair map) without bound.
  void prune_dead_circuits();

  /// Packed key for an unordered port pair (requires lo <= hi).
  static constexpr std::uint64_t pair_key(std::int32_t lo, std::int32_t hi) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 32) |
           static_cast<std::uint32_t>(hi);
  }

  sim::Simulator& sim_;
  FluidNetwork& net_;
  Bandwidth port_bw_;
  TimeNs circuit_latency_;
  TimeNs reconfig_delay_;
  std::string name_;
  std::vector<std::int32_t> peer_;  // -1 = unconnected
  std::vector<bool> dark_;
  std::vector<bool> failed_;
  std::vector<std::int32_t> owner_;     // kUnowned = free
  std::vector<TimeNs> port_dark_ns_;    // per-port share of the Stats sum
                                        // (plus the port's group accrual)
  /// Fluid link carrying traffic from port i to its current peer (invalid
  /// when unconnected) — the allocation- and hash-free way to answer the
  /// per-port traffic and link() queries on the reconfiguration hot path.
  std::vector<LinkId> port_tx_link_;
  std::vector<std::int32_t> port_dark_group_;  // -1 = no group
  std::vector<DarkGroup> dark_groups_;
  std::vector<Batch> batches_;
  /// Pair keys whose fluid links are pinned by a registered batch (exempt
  /// from dead-circuit retirement).
  std::unordered_set<std::uint64_t> pinned_pairs_;
  /// Ports with dark_ set (the generic path's flags; group darkness is not
  /// counted here). Zero lets reconfigure_batch skip the per-port scan.
  int dark_ports_ = 0;
  int failed_ports_ = 0;
  int owned_ports_ = 0;
  /// Pending call_when_undark registrations, in arrival order.
  std::vector<std::pair<std::vector<PortId>, std::function<void()>>>
      undark_waiters_;
  std::function<void()> topology_listener_;
  std::function<void(FlowId)> flow_rescuer_;
  OcsObserver* observer_ = nullptr;
  ProfileSink* profile_sink_ = nullptr;
  int profile_phase_batch_ = -1;
  // Unordered port pair -> (link low->high, link high->low). Hashed on the
  // packed pair: whole-rail reconfiguration (the rotor) performs ~1e8
  // lookups per large run, where an ordered map's log-factor dominated.
  std::unordered_map<std::uint64_t, std::pair<LinkId, LinkId>> links_;
  // Recently torn-down pairs, oldest first, at most one entry per pair
  // (queued_dead_ is the membership index — duplicate entries would let a
  // pair be retired by its stalest entry while a fresher one still queues).
  // Keeping a bounded number of dead circuits cached preserves link
  // identity for the common Opus pattern of re-establishing the same
  // circuit a moment later; beyond the bound the oldest dead pairs lose
  // their fluid links to FluidNetwork's free list.
  std::deque<std::pair<std::int32_t, std::int32_t>> dead_pairs_;
  std::unordered_set<std::uint64_t> queued_dead_;
  /// Cache bound override in circuits (0 = default 2x n_ports).
  std::size_t dead_cache_circuits_ = 0;
  Stats stats_;
};

}  // namespace opus::net
