// Optical circuit switch (OCS) model.
//
// An OCS is a passive crossbar: at any instant each port is cross-connected
// to at most one peer port (a bidirectional circuit), or to nothing. A
// reconfiguration atomically retargets a *set* of ports; exactly the touched
// ports (including the old peers of retargeted ports) are "dark" — unable to
// carry traffic — for the technology's reconfiguration latency. Untouched
// circuits keep carrying traffic throughout, modelling the fine-grained
// per-port switching the paper requires for per-communication-group
// reconfiguration (§5 "Reconfiguration granularity").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "net/fluid.h"
#include "sim/simulator.h"

namespace opus::net {

/// One bidirectional cross-connect request: connect ports `a` and `b`.
struct CircuitRequest {
  PortId a;
  PortId b;
};

/// Circle-method round-robin tournament matching over ids 0..n-1: round `r`
/// pairs every id exactly once (odd n: one id sits the round out). Shared by
/// the rotor transport's rotation schedule and the churn benchmarks/tests,
/// so they all exercise the same matching sequence.
std::vector<std::pair<int, int>> round_robin_matching(int n, int round);

/// The same matching expressed as OCS circuit requests (even `n_ports`).
std::vector<CircuitRequest> round_robin_circuits(int n_ports, int round);

/// MEMS/piezo/liquid-crystal-style optical circuit switch.
class OpticalCircuitSwitch {
 public:
  struct Stats {
    /// Number of reconfigure() operations that actually changed state.
    int reconfigurations = 0;
    /// Circuits established across all reconfigurations.
    int circuits_established = 0;
    /// Sum over ports of time spent dark.
    TimeNs cumulative_port_dark_ns = 0;
    /// Fluid links retired because their circuit stayed dead (churn cleanup).
    int links_retired = 0;
  };

  /// `port_bw` is the per-direction bandwidth of a circuit (the NIC port
  /// rate); `circuit_latency` is the end-to-end propagation latency of an
  /// established circuit (fiber + transceivers, no OEO in the middle).
  OpticalCircuitSwitch(sim::Simulator& sim, FluidNetwork& net, int n_ports,
                       Bandwidth port_bw, TimeNs circuit_latency,
                       TimeNs reconfig_delay, std::string name = {});

  int n_ports() const { return static_cast<int>(peer_.size()); }
  Bandwidth port_bandwidth() const { return port_bw_; }
  TimeNs circuit_latency() const { return circuit_latency_; }
  TimeNs reconfig_delay() const { return reconfig_delay_; }
  void set_reconfig_delay(TimeNs d);

  /// Owner tag for multi-tenant fabrics (-1 = unowned). Every circuit must
  /// connect two ports of the same owner, so one tenant's reconfiguration
  /// can never retarget — and thereby darken — a port carved out for
  /// another tenant (the fleet driver assigns owners per placed job).
  /// Because circuits never cross owners, the ports a reconfiguration
  /// touches (endpoints plus their displaced peers) stay within one owner
  /// by induction.
  static constexpr int kUnowned = -1;
  void set_port_owner(PortId p, int owner);
  int port_owner(PortId p) const;

  /// Cumulative dark time of one port (the per-port breakdown of
  /// Stats::cumulative_port_dark_ns; lets a fleet attribute darkness to the
  /// tenant owning the port).
  TimeNs port_dark_time(PortId p) const;

  /// Instantly tears down any circuit on each listed port (tenant teardown
  /// when a job's node range is recycled). Every affected port — including
  /// peers outside `ports` — must be quiescent: not dark and not carrying
  /// traffic. No dark period, no stats.
  void clear_circuits_on(const std::vector<PortId>& ports);

  /// Invokes `cb` once none of `ports` is dark — immediately (synchronously)
  /// when that already holds, otherwise right after the reconfiguration
  /// holding the last dark port completes. Waiters fire in registration
  /// order (deterministic).
  void call_when_undark(std::vector<PortId> ports, std::function<void()> cb);

  /// The port currently cross-connected to `p` (regardless of darkness).
  std::optional<PortId> peer(PortId p) const;
  /// True while `p` is being retargeted by an in-flight reconfiguration.
  bool dark(PortId p) const;
  /// True iff a live (non-dark) circuit connects `a` and `b`.
  bool connected(PortId a, PortId b) const;

  /// Permanently fails a port (fiber cut / transceiver death): its circuit
  /// is torn down and no future circuit may use it. The port must be
  /// quiescent (no in-flight traffic, not mid-reconfiguration) — fail
  /// injection between kernels, matching the recovery model of LUMION
  /// (the paper's fault-recovery companion work).
  void fail_port(PortId p);
  bool failed(PortId p) const;
  int failed_port_count() const;

  /// True iff every requested circuit is already established and live —
  /// the idempotence fast-path used by the Opus controller's config cache.
  bool satisfied(const std::vector<CircuitRequest>& circuits) const;

  /// Requests a reconfiguration establishing every circuit in `circuits`.
  /// Existing circuits on touched ports are torn down; the touched port set
  /// (new ports plus their old peers) is dark for reconfig_delay, after which
  /// the new circuits are live and `on_done` fires.
  ///
  /// Preconditions (enforced): no touched port is already dark (callers must
  /// serialize overlapping requests — the Opus controller does), no port
  /// appears twice in `circuits`, and no touched circuit is carrying traffic.
  /// If `circuits` is already satisfied, `on_done` fires immediately (same
  /// timestamp) and no reconfiguration is counted.
  void reconfigure(const std::vector<CircuitRequest>& circuits,
                   std::function<void()> on_done);

  /// Instantly establishes circuits with no dark period. Intended for t=0
  /// initial topology (e.g. a pre-job configuration); counts no stats.
  void force_circuits(const std::vector<CircuitRequest>& circuits);

  /// Overrides the dead-circuit cache bound (in circuits; 0 restores the
  /// default of 2x the port count). A rotor fabric sets this to its whole
  /// rotation cycle so every matching's fluid links are created exactly
  /// once and reused each cycle — with the default bound, every rotation
  /// would retire and recreate ~n_ports links, which profiling shows
  /// dominates large-rotor runs. The active-state fluid solver's cost is
  /// unaffected by cached-but-idle links; only memory is spent.
  void set_dead_circuit_cache(std::size_t circuits);

  /// Set of ports a reconfiguration request would touch (new + old peers).
  std::vector<PortId> touched_ports(
      const std::vector<CircuitRequest>& circuits) const;

  /// Fluid link carrying traffic in the direction `from` -> `to`.
  /// Requires connected(from, to).
  LinkId link(PortId from, PortId to) const;

  const Stats& stats() const { return stats_; }

 private:
  void check_port(PortId p) const;
  /// Fires every registered waiter whose port set is now fully undark.
  void pump_undark_waiters();
  /// Cross-connects a<->b in the state tables (no timing).
  void establish(PortId a, PortId b);
  /// Clears the circuit on `p` (and its peer), if any, and queues the pair's
  /// fluid links for retirement once the dead-circuit cache overflows.
  void tear_down(PortId p);
  /// Lazily creates (or fetches) the fluid link pair for an unordered pair.
  std::pair<LinkId, LinkId> link_pair(PortId a, PortId b);
  /// Retires the fluid links of the oldest dead circuits beyond the cache
  /// bound, so rotor-style reconfiguration churn cannot grow the fluid
  /// network's solve set (or this switch's pair map) without bound.
  void prune_dead_circuits();

  /// Packed key for an unordered port pair (requires lo <= hi).
  static constexpr std::uint64_t pair_key(std::int32_t lo, std::int32_t hi) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 32) |
           static_cast<std::uint32_t>(hi);
  }

  sim::Simulator& sim_;
  FluidNetwork& net_;
  Bandwidth port_bw_;
  TimeNs circuit_latency_;
  TimeNs reconfig_delay_;
  std::string name_;
  std::vector<std::int32_t> peer_;  // -1 = unconnected
  std::vector<bool> dark_;
  std::vector<bool> failed_;
  std::vector<std::int32_t> owner_;     // kUnowned = free
  std::vector<TimeNs> port_dark_ns_;    // per-port share of the Stats sum
  /// Pending call_when_undark registrations, in arrival order.
  std::vector<std::pair<std::vector<PortId>, std::function<void()>>>
      undark_waiters_;
  // Unordered port pair -> (link low->high, link high->low). Hashed on the
  // packed pair: whole-rail reconfiguration (the rotor) performs ~1e8
  // lookups per large run, where an ordered map's log-factor dominated.
  std::unordered_map<std::uint64_t, std::pair<LinkId, LinkId>> links_;
  // Recently torn-down pairs, oldest first, at most one entry per pair
  // (queued_dead_ is the membership index — duplicate entries would let a
  // pair be retired by its stalest entry while a fresher one still queues).
  // Keeping a bounded number of dead circuits cached preserves link
  // identity for the common Opus pattern of re-establishing the same
  // circuit a moment later; beyond the bound the oldest dead pairs lose
  // their fluid links to FluidNetwork's free list.
  std::deque<std::pair<std::int32_t, std::int32_t>> dead_pairs_;
  std::unordered_set<std::uint64_t> queued_dead_;
  /// Cache bound override in circuits (0 = default 2x n_ports).
  std::size_t dead_cache_circuits_ = 0;
  Stats stats_;
};

}  // namespace opus::net
