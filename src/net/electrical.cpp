#include "net/electrical.h"

#include "common/error.h"

namespace opus::net {

ElectricalSwitch::ElectricalSwitch(FluidNetwork& net, int n_endpoints,
                                   Bandwidth port_bw, TimeNs hop_latency,
                                   std::string name)
    : net_(net),
      n_endpoints_(n_endpoints),
      port_bw_(port_bw),
      hop_latency_(hop_latency),
      name_(std::move(name)),
      uplinks_(static_cast<std::size_t>(n_endpoints > 0 ? n_endpoints : 0),
               LinkId{}),
      downlinks_(static_cast<std::size_t>(n_endpoints > 0 ? n_endpoints : 0),
                 LinkId{}) {
  ensure(n_endpoints > 0, "electrical switch requires endpoints");
  ensure(port_bw.positive(), "electrical switch port bandwidth must be > 0");
  ensure(hop_latency >= 0, "hop latency must be non-negative");
}

Bandwidth ElectricalSwitch::scaled_bw(int i) const {
  const auto it = capacity_scale_.find(i);
  return it == capacity_scale_.end() ? port_bw_ : port_bw_ * it->second;
}

LinkId ElectricalSwitch::uplink(int i) const {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  LinkId& id = uplinks_[static_cast<std::size_t>(i)];
  if (!id.valid()) {
    id = net_.add_link(scaled_bw(i), name_ + ":up" + std::to_string(i));
  }
  return id;
}

LinkId ElectricalSwitch::downlink(int i) const {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  LinkId& id = downlinks_[static_cast<std::size_t>(i)];
  if (!id.valid()) {
    id = net_.add_link(scaled_bw(i), name_ + ":down" + std::to_string(i));
  }
  return id;
}

void ElectricalSwitch::set_endpoint_capacity_scale(int i, double scale) {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  ensure(scale >= 0.0 && scale <= 1.0,
         "electrical capacity scale must lie in [0, 1]");
  if (scale == 1.0) {
    capacity_scale_.erase(i);
  } else {
    capacity_scale_[i] = scale;
  }
  // Apply to already-materialized links; untouched links pick up the scale
  // lazily at creation via scaled_bw.
  const LinkId up = uplinks_[static_cast<std::size_t>(i)];
  const LinkId down = downlinks_[static_cast<std::size_t>(i)];
  if (up.valid()) net_.set_capacity(up, scaled_bw(i));
  if (down.valid()) net_.set_capacity(down, scaled_bw(i));
}

double ElectricalSwitch::endpoint_capacity_scale(int i) const {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  const auto it = capacity_scale_.find(i);
  return it == capacity_scale_.end() ? 1.0 : it->second;
}

LinkId ElectricalSwitch::peek_uplink(int i) const {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  return uplinks_[static_cast<std::size_t>(i)];
}

LinkId ElectricalSwitch::peek_downlink(int i) const {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  return downlinks_[static_cast<std::size_t>(i)];
}

int ElectricalSwitch::touched_endpoints() const {
  int touched = 0;
  for (int i = 0; i < n_endpoints_; ++i) {
    if (uplinks_[static_cast<std::size_t>(i)].valid() ||
        downlinks_[static_cast<std::size_t>(i)].valid()) {
      ++touched;
    }
  }
  return touched;
}

}  // namespace opus::net
