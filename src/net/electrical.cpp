#include "net/electrical.h"

#include "common/error.h"

namespace opus::net {

ElectricalSwitch::ElectricalSwitch(FluidNetwork& net, int n_endpoints,
                                   Bandwidth port_bw, TimeNs hop_latency,
                                   std::string name)
    : port_bw_(port_bw), hop_latency_(hop_latency) {
  ensure(n_endpoints > 0, "electrical switch requires endpoints");
  ensure(port_bw.positive(), "electrical switch port bandwidth must be > 0");
  ensure(hop_latency >= 0, "hop latency must be non-negative");
  uplinks_.reserve(static_cast<std::size_t>(n_endpoints));
  downlinks_.reserve(static_cast<std::size_t>(n_endpoints));
  for (int i = 0; i < n_endpoints; ++i) {
    uplinks_.push_back(
        net.add_link(port_bw, name + ":up" + std::to_string(i)));
    downlinks_.push_back(
        net.add_link(port_bw, name + ":down" + std::to_string(i)));
  }
}

LinkId ElectricalSwitch::uplink(int i) const {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  return uplinks_[static_cast<std::size_t>(i)];
}

LinkId ElectricalSwitch::downlink(int i) const {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  return downlinks_[static_cast<std::size_t>(i)];
}

}  // namespace opus::net
