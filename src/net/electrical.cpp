#include "net/electrical.h"

#include "common/error.h"

namespace opus::net {

ElectricalSwitch::ElectricalSwitch(FluidNetwork& net, int n_endpoints,
                                   Bandwidth port_bw, TimeNs hop_latency,
                                   std::string name)
    : net_(net),
      n_endpoints_(n_endpoints),
      port_bw_(port_bw),
      hop_latency_(hop_latency),
      name_(std::move(name)),
      uplinks_(static_cast<std::size_t>(n_endpoints > 0 ? n_endpoints : 0),
               LinkId{}),
      downlinks_(static_cast<std::size_t>(n_endpoints > 0 ? n_endpoints : 0),
                 LinkId{}) {
  ensure(n_endpoints > 0, "electrical switch requires endpoints");
  ensure(port_bw.positive(), "electrical switch port bandwidth must be > 0");
  ensure(hop_latency >= 0, "hop latency must be non-negative");
}

LinkId ElectricalSwitch::uplink(int i) const {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  LinkId& id = uplinks_[static_cast<std::size_t>(i)];
  if (!id.valid()) {
    id = net_.add_link(port_bw_, name_ + ":up" + std::to_string(i));
  }
  return id;
}

LinkId ElectricalSwitch::downlink(int i) const {
  ensure(i >= 0 && i < n_endpoints(), "invalid switch endpoint");
  LinkId& id = downlinks_[static_cast<std::size_t>(i)];
  if (!id.valid()) {
    id = net_.add_link(port_bw_, name_ + ":down" + std::to_string(i));
  }
  return id;
}

int ElectricalSwitch::touched_endpoints() const {
  int touched = 0;
  for (int i = 0; i < n_endpoints_; ++i) {
    if (uplinks_[static_cast<std::size_t>(i)].valid() ||
        downlinks_[static_cast<std::size_t>(i)].valid()) {
      ++touched;
    }
  }
  return touched;
}

}  // namespace opus::net
