#include "net/pod.h"

#include <string>

#include "common/error.h"

namespace opus::net {

MultiPodFabric::MultiPodFabric(sim::Simulator& sim, MultiPodConfig cfg)
    : sim_(sim), cfg_(cfg), net_(sim) {
  ensure(cfg_.n_pods >= 1, "multi-pod fabric needs at least one pod");
  ensure(cfg_.trunk_bw.positive(), "trunk bandwidth must be positive");
  ensure(cfg_.trunk_latency >= 0, "trunk latency must be non-negative");
  pods_.reserve(static_cast<std::size_t>(cfg_.n_pods));
  for (int p = 0; p < cfg_.n_pods; ++p) {
    pods_.push_back(std::make_unique<Cluster>(sim_, net_, cfg_.pod));
  }
}

Cluster& MultiPodFabric::pod(PodId p) {
  ensure(p.valid() && p.value() < cfg_.n_pods, "invalid pod id");
  return *pods_[static_cast<std::size_t>(p.value())];
}

const Cluster& MultiPodFabric::pod(PodId p) const {
  ensure(p.valid() && p.value() < cfg_.n_pods, "invalid pod id");
  return *pods_[static_cast<std::size_t>(p.value())];
}

LinkId MultiPodFabric::trunk_egress(PodId p, RailId r) {
  const auto [it, inserted] = trunk_egress_.try_emplace(trunk_key(p, r));
  if (inserted) {
    it->second = net_.add_link(cfg_.trunk_bw,
                               "trunk_egress:pod" + std::to_string(p.value()) +
                                   ":rail" + std::to_string(r.value()));
  }
  return it->second;
}

LinkId MultiPodFabric::trunk_ingress(PodId p, RailId r) {
  const auto [it, inserted] = trunk_ingress_.try_emplace(trunk_key(p, r));
  if (inserted) {
    it->second = net_.add_link(
        cfg_.trunk_bw, "trunk_ingress:pod" + std::to_string(p.value()) +
                           ":rail" + std::to_string(r.value()));
  }
  return it->second;
}

void MultiPodFabric::transfer(PodId src_pod, GpuId src, PodId dst_pod,
                              GpuId dst, Bytes bytes,
                              std::function<void()> on_complete) {
  ensure(bytes >= 0, "transfer size must be non-negative");
  if (src_pod == dst_pod) {
    pod(src_pod).transfer(src, dst, bytes, std::move(on_complete));
    return;
  }
  Cluster& sp = pod(src_pod);
  Cluster& dp = pod(dst_pod);
  const RailId rail = dp.rail_of(dst);
  cross_pod_bytes_ += bytes;
  auto trunk_hop = [this, src_pod, dst_pod, rail, bytes,
                    cb = std::move(on_complete)]() mutable {
    net_.start_flow(
        {trunk_egress(src_pod, rail), trunk_ingress(dst_pod, rail)}, bytes,
        cfg_.trunk_latency, std::move(cb));
  };
  const GpuId bridge = sp.gpu_at(sp.node_of(src), rail.value());
  if (bridge == src) {
    trunk_hop();
    return;
  }
  // PXN at the pod boundary: NVLink to the bridge GPU holding the
  // destination's rail, store-and-forward, then the trunk.
  sp.transfer(src, bridge, bytes, std::move(trunk_hop));
}

}  // namespace opus::net
