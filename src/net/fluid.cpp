#include "net/fluid.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.h"

namespace opus::net {
namespace {
/// A flow is considered drained when fewer than this many bytes remain
/// (absorbs floating-point error from rate integration).
constexpr double kDrainEpsilonBytes = 1e-3;

/// Cap on how far ahead a completion event may be scheduled. A near-stalled
/// flow (huge remaining / tiny rate) would otherwise overflow the TimeNs
/// cast — remaining/rate can exceed 2^63 ns long before the rate underflows
/// to an exactly-zero "stalled" rate. ~29 simulated years: far beyond any
/// training job, and small enough that one hop past kMaxSchedulableNs below
/// cannot overflow.
constexpr double kMaxCompletionHorizonNs = 9.0e17;

/// Past this instant (~263 simulated years) no completion event is scheduled
/// at all — every per-flow delta is capped at the horizon above, so this
/// bound keeps now() + dt overflow-free even when a clamped event fires and
/// re-projects repeatedly; flows simply count as stalled from here on.
constexpr TimeNs kMaxSchedulableNs =
    std::numeric_limits<TimeNs>::max() -
    2 * static_cast<TimeNs>(kMaxCompletionHorizonNs);
}  // namespace

LinkId FluidNetwork::add_link(Bandwidth capacity, std::string name) {
  ensure(capacity.bits_per_sec >= 0.0, "link capacity must be non-negative");
  if (!free_.empty()) {
    const std::int32_t id = free_.back();
    free_.pop_back();
    const auto li = static_cast<std::size_t>(id);
    links_[li] = Link{capacity, std::move(name)};
    cap_bytes_per_ns_[li] = capacity.bytes_per_ns();
    link_state_[li].retired = false;
    return LinkId{id};
  }
  links_.push_back(Link{capacity, std::move(name)});
  cap_bytes_per_ns_.push_back(capacity.bytes_per_ns());
  link_state_.emplace_back();
  link_epoch_.push_back(0);
  cap_left_.push_back(0.0);
  unfrozen_on_.push_back(0);
  return LinkId{static_cast<std::int32_t>(links_.size() - 1)};
}

void FluidNetwork::retire_link(LinkId link) {
  check_live_link(link);
  const auto li = static_cast<std::size_t>(link.value());
  ensure(link_state_[li].flows.empty(),
         "retire_link: link still carries active flows");
  links_[li] = Link{};
  cap_bytes_per_ns_[li] = 0.0;
  link_state_[li].retired = true;
  free_.push_back(link.value());
  ++retired_total_;
}

bool FluidNetwork::link_retired(LinkId link) const {
  ensure(link.valid() && static_cast<std::size_t>(link.value()) < links_.size(),
         "invalid link id");
  return link_state_[static_cast<std::size_t>(link.value())].retired;
}

Bandwidth FluidNetwork::capacity(LinkId link) const {
  check_live_link(link);
  return links_[static_cast<std::size_t>(link.value())].capacity;
}

const std::string& FluidNetwork::link_name(LinkId link) const {
  check_live_link(link);
  return links_[static_cast<std::size_t>(link.value())].name;
}

void FluidNetwork::set_capacity(LinkId link, Bandwidth capacity) {
  check_live_link(link);
  ensure(capacity.bits_per_sec >= 0.0, "link capacity must be non-negative");
  const auto li = static_cast<std::size_t>(link.value());
  links_[li].capacity = capacity;
  cap_bytes_per_ns_[li] = capacity.bytes_per_ns();
  recompute();
}

FluidNetwork::Flow* FluidNetwork::find_flow(FlowId flow) {
  // Issued generations are odd; even means default-constructed, integer-cast,
  // or a slot observed free — never a live flow.
  if ((flow.generation() & 1u) == 0u) return nullptr;
  const std::uint32_t slot = flow.slot();
  if (slot >= flows_.size()) return nullptr;
  Flow& f = flows_[slot];
  return f.generation == flow.generation() ? &f : nullptr;
}

const FluidNetwork::Flow* FluidNetwork::find_flow(FlowId flow) const {
  return const_cast<FluidNetwork*>(this)->find_flow(flow);
}

std::uint32_t FluidNetwork::alloc_slot() {
  std::uint32_t slot;
  if (!flow_free_.empty()) {
    slot = flow_free_.back();
    flow_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
  }
  flows_[slot].generation += 1;  // even (free) -> odd (occupied)
  ++active_count_;
  return slot;
}

void FluidNetwork::release_slot(std::uint32_t slot) {
  Flow& f = flows_[slot];
  f.generation += 1;  // odd (occupied) -> even (free)
  f.path.clear();     // keeps the buffer for the slot's next occupant
  f.remaining_bytes = 0.0;
  f.rate_bytes_per_ns = 0.0;
  f.extra_latency = 0;
  f.on_complete = nullptr;
  f.frozen_epoch = 0;
  f.projected_done = kNever;
  f.latency_event = EventId{};
  flow_free_.push_back(slot);
  --active_count_;
}

FlowId FluidNetwork::start_flow(std::vector<LinkId> path, Bytes bytes,
                                TimeNs extra_latency,
                                std::function<void()> on_complete) {
  ensure(bytes >= 0, "flow size must be non-negative");
  ensure(extra_latency >= 0, "flow latency must be non-negative");
  // Duplicate-link check on the solver's epoch-stamped link scratch: a fresh
  // epoch makes every stamp stale, so there is nothing to clear and nothing
  // to allocate (the next solve bumps the epoch again for its own use).
  const std::uint64_t epoch = ++solve_epoch_;
  for (LinkId l : path) {
    check_live_link(l);
    const auto li = static_cast<std::size_t>(l.value());
    ensure(link_epoch_[li] != epoch, "flow path contains a duplicate link");
    link_epoch_[li] = epoch;
  }
  const std::uint32_t slot = alloc_slot();
  Flow& f = flows_[slot];
  const FlowId id = FlowId::from_parts(slot, f.generation);
  f.extra_latency = extra_latency;
  f.on_complete = std::move(on_complete);
  f.last_charged = sim_.now();
  if (bytes == 0) {
    // Pure-latency message (e.g. a control ack): no bandwidth consumed. The
    // completion is counted when it is *delivered*, not here — otherwise
    // completed_flow_count() reads ahead of the observable callbacks. The
    // delivery event is kept on the slot so abort_flow can cancel it; only
    // this callback or an abort ever release the slot, so the slot still
    // belongs to this flow whenever the event fires.
    f.latency_event = sim_.schedule_after(extra_latency, [this, slot] {
      auto cb = std::move(flows_[slot].on_complete);
      release_slot(slot);
      ++completed_;
      if (cb) cb();
    });
    return id;
  }
  ensure(!path.empty(), "non-empty flow requires a non-empty path");
  f.path = std::move(path);
  f.remaining_bytes = static_cast<double>(bytes);
  attach_to_links(id, f);
  f.draining_pos = static_cast<std::uint32_t>(draining_.size());
  draining_.push_back(slot);
  recompute();
  return id;
}

bool FluidNetwork::abort_flow(FlowId flow) {
  Flow* f = find_flow(flow);
  if (f == nullptr) return false;
  if (f->latency_event.valid()) {
    // Pending zero-byte flow: cancel the delivery so the callback never
    // fires (and the completion is never counted).
    sim_.cancel(f->latency_event);
    release_slot(flow.slot());
    return true;
  }
  detach_from_links(flow, *f);
  remove_from_draining(*f);
  release_slot(flow.slot());
  recompute();
  return true;
}

int FluidNetwork::abort_flows_on(LinkId link) {
  check_live_link(link);
  const auto li = static_cast<std::size_t>(link.value());
  // abort_flow mutates the per-link index (swap-with-last), so iterate a
  // snapshot. Stale ids (a multi-link flow already aborted via an earlier
  // link in some caller's loop) are rejected by generation, so double
  // aborts are harmless here.
  const std::vector<FlowId> doomed = link_state_[li].flows;
  int aborted = 0;
  for (const FlowId f : doomed) {
    if (abort_flow(f)) ++aborted;
  }
  return aborted;
}

void FluidNetwork::remove_from_draining(Flow& f) {
  const std::uint32_t last_slot = draining_.back();
  draining_[f.draining_pos] = last_slot;
  flows_[last_slot].draining_pos = f.draining_pos;
  draining_.pop_back();
}

bool FluidNetwork::flow_active(FlowId flow) const {
  return find_flow(flow) != nullptr;
}

double FluidNetwork::flow_rate_bps(FlowId flow) const {
  const Flow* f = find_flow(flow);
  ensure(f != nullptr, "flow_rate_bps: flow not active");
  return f->rate_bytes_per_ns * 8e9;
}

Bytes FluidNetwork::flow_remaining(FlowId flow) const {
  const Flow* f = find_flow(flow);
  ensure(f != nullptr, "flow_remaining: flow not active");
  // Progress is charged lazily; account for time since the last charge.
  const double elapsed = static_cast<double>(sim_.now() - f->last_charged);
  const double rem = f->remaining_bytes - f->rate_bytes_per_ns * elapsed;
  return static_cast<Bytes>(std::max(rem, 0.0));
}

double FluidNetwork::allocated_bps(LinkId link) const {
  check_live_link(link);
  const auto li = static_cast<std::size_t>(link.value());
  double bps = 0.0;
  for (FlowId id : link_state_[li].flows) {
    bps += flows_[id.slot()].rate_bytes_per_ns * 8e9;
  }
  // Bottleneck-set freezing recomputes each link's share independently, so
  // the sum can overshoot capacity by floating-point slack; the documented
  // invariant is "never exceeds capacity", so clamp.
  return std::min(bps, links_[li].capacity.bits_per_sec);
}

void FluidNetwork::attach_to_links(FlowId id, const Flow& f) {
  for (LinkId l : f.path) {
    link_state_[static_cast<std::size_t>(l.value())].flows.push_back(id);
  }
}

void FluidNetwork::detach_from_links(FlowId id, const Flow& f) {
  for (LinkId l : f.path) {
    auto& on_link = link_state_[static_cast<std::size_t>(l.value())].flows;
    const auto it = std::find(on_link.begin(), on_link.end(), id);
    ensure(it != on_link.end(), "fluid: per-link flow index out of sync");
    *it = on_link.back();
    on_link.pop_back();
  }
}

void FluidNetwork::charge_progress(Flow& f, TimeNs now) {
  const double elapsed = static_cast<double>(now - f.last_charged);
  if (elapsed > 0.0) {
    f.remaining_bytes =
        std::max(0.0, f.remaining_bytes - f.rate_bytes_per_ns * elapsed);
  }
  f.last_charged = now;
}

TimeNs FluidNetwork::project_completion(const Flow& f, TimeNs now) const {
  if (f.rate_bytes_per_ns <= 0.0) return kNever;  // stalled (dark link)
  if (now >= kMaxSchedulableNs) return kNever;    // beyond the modelled era
  const double ns = f.remaining_bytes / f.rate_bytes_per_ns;
  TimeNs dt;
  if (ns >= kMaxCompletionHorizonNs) {
    // Near-stalled: clamp instead of overflowing the cast. If the event
    // ever fires this far out, the flow is still undrained and simply
    // re-projects; in practice a capacity restore or abort re-solves first.
    dt = static_cast<TimeNs>(kMaxCompletionHorizonNs);
  } else {
    dt = static_cast<TimeNs>(ns);
    if (static_cast<double>(dt) < ns) ++dt;  // round up
  }
  return now + dt;
}

void FluidNetwork::push_completion(TimeNs time, std::uint32_t slot,
                                   std::uint32_t generation) {
  completion_heap_.push_back({time, slot, generation});
  std::push_heap(completion_heap_.begin(), completion_heap_.end(),
                 std::greater<>{});
}

void FluidNetwork::pop_completion_top() {
  std::pop_heap(completion_heap_.begin(), completion_heap_.end(),
                std::greater<>{});
  completion_heap_.pop_back();
}

void FluidNetwork::solve_max_min() {
  // Progressive filling: repeatedly saturate the most constrained link and
  // freeze the flows crossing it at that link's fair share. Only links
  // crossed by at least one active flow participate; everything else —
  // including the unbounded set of retired circuit links a reconfigurable
  // fabric accretes — is never touched.
  const std::uint64_t epoch = ++solve_epoch_;
  const TimeNs now = sim_.now();
  touched_links_.clear();
  // draining_ indexes exactly the byte-moving flows, so this scan touches no
  // free slots and no pending zero-byte flows. Its order (insertion order,
  // compacted by swap-with-last) is fully determined by the simulated event
  // sequence, so the bottleneck sweep below needs no canonicalizing sort —
  // with the hash-map registry this order depended on hashing and had to be
  // sorted every solve, which profiled at ~30% of the 512-node ring cell.
  for (const std::uint32_t slot : draining_) {
    for (LinkId l : flows_[slot].path) {
      const auto li = static_cast<std::size_t>(l.value());
      if (link_epoch_[li] != epoch) {
        link_epoch_[li] = epoch;
        cap_left_[li] = cap_bytes_per_ns_[li];
        unfrozen_on_[li] = 0;
        touched_links_.push_back(li);
      }
      ++unfrozen_on_[li];
    }
  }

  std::size_t remaining = draining_.size();
  while (remaining > 0) {
    ++solve_rounds_;
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t li : touched_links_) {
      if (unfrozen_on_[li] <= 0) continue;
      const double share = std::max(cap_left_[li], 0.0) / unfrozen_on_[li];
      best_share = std::min(best_share, share);
    }
    ensure(best_share < std::numeric_limits<double>::infinity(),
           "max-min solve: unfrozen flow without a constraining link");
    // Freeze the whole bottleneck set this round, not one link per round:
    // independent circuits at one identical fair share are the common case
    // at scale (a 512-node collective puts ~1000 links there), and a
    // one-link-per-round loop rescans every touched link each time —
    // quadratic in active links. After freezing a minimum-share link no
    // remaining link can sit below this round's minimum (freezing removes
    // share*k capacity and k flows, which cannot lower a fair share), so a
    // single sweep freezing every link still at the minimum — at the link's
    // own recomputed share, keeping cap_left_ non-negative under floating
    // point — yields the same max-min allocation in any sweep order; the
    // deterministic touched order makes ties replay-stable.
    for (std::size_t li : touched_links_) {
      if (unfrozen_on_[li] <= 0) continue;
      const double share = std::max(cap_left_[li], 0.0) / unfrozen_on_[li];
      if (share > best_share) continue;
      ++frozen_bottleneck_links_;
      for (FlowId fid : link_state_[li].flows) {
        Flow& f = flows_[fid.slot()];
        if (f.frozen_epoch == epoch) continue;
        f.frozen_epoch = epoch;
        // Integrate progress at the outgoing rate before freezing the new
        // one (per-flow lazy charging, fused into the solve's single pass).
        charge_progress(f, now);
        if (f.rate_bytes_per_ns != share) {
          f.rate_bytes_per_ns = share;
          // The projected drain instant moved: record it and feed the
          // completion heap. An unchanged rate keeps an unchanged absolute
          // projection, so steady flows push nothing and their existing
          // heap entries stay valid.
          f.projected_done = project_completion(f, now);
          if (f.projected_done != kNever) {
            push_completion(f.projected_done, fid.slot(), f.generation);
          }
        }
        --remaining;
        for (LinkId l : f.path) {
          const auto lj = static_cast<std::size_t>(l.value());
          cap_left_[lj] -= share;
          --unfrozen_on_[lj];
        }
      }
    }
  }
}

void FluidNetwork::reschedule_completion_event() {
  // Lazy deletion: drop entries whose flow died (generation moved on) or
  // whose projection was superseded by a rate change.
  while (!completion_heap_.empty()) {
    const CompletionEntry& top = completion_heap_.front();
    const Flow& f = flows_[top.slot];
    if (f.generation == top.generation && f.projected_done == top.time) break;
    pop_completion_top();
  }
  // Churn bound: when stale entries dominate (rate flapping without event
  // firings), rebuild the heap from the valid survivors.
  if (completion_heap_.size() > 64 &&
      completion_heap_.size() > 4 * draining_.size()) {
    std::erase_if(completion_heap_, [this](const CompletionEntry& e) {
      const Flow& f = flows_[e.slot];
      return f.generation != e.generation || f.projected_done != e.time;
    });
    std::make_heap(completion_heap_.begin(), completion_heap_.end(),
                   std::greater<>{});
  }
  const TimeNs earliest =
      completion_heap_.empty() ? kNever : completion_heap_.front().time;
  if (earliest == completion_event_time_) return;  // already pinned there
  if (completion_event_.valid()) {
    sim_.cancel(completion_event_);
    completion_event_ = EventId{};
  }
  completion_event_time_ = earliest;
  if (earliest == kNever) return;
  completion_event_ =
      sim_.schedule_at(earliest, [this] { on_completion_event(); });
}

void FluidNetwork::recompute() {
  ProfileScope prof(profile_sink_, profile_phase_recompute_);
  ++solve_count_;
  solve_max_min();
  reschedule_completion_event();
}

void FluidNetwork::set_profile_sink(ProfileSink* sink) {
  profile_sink_ = sink;
  if (sink != nullptr) {
    profile_phase_recompute_ = sink->phase("fluid.recompute");
  }
}

void FluidNetwork::on_completion_event() {
  completion_event_ = EventId{};
  completion_event_time_ = kNever;
  const TimeNs now = sim_.now();
  std::vector<std::pair<TimeNs, std::function<void()>>> done;
  // Pop every due entry; equal-instant completions leave the min-heap in
  // slot order, so callback delivery is deterministic.
  while (!completion_heap_.empty()) {
    const CompletionEntry top = completion_heap_.front();
    Flow& f = flows_[top.slot];
    if (f.generation != top.generation || f.projected_done != top.time) {
      pop_completion_top();  // stale (lazy deletion)
      continue;
    }
    if (top.time > now) break;
    pop_completion_top();
    charge_progress(f, now);
    if (f.remaining_bytes <= kDrainEpsilonBytes) {
      done.emplace_back(f.extra_latency, std::move(f.on_complete));
      detach_from_links(FlowId::from_parts(top.slot, f.generation), f);
      remove_from_draining(f);
      release_slot(top.slot);
    } else {
      // Horizon-clamped (near-stalled) or rounding-edge firing: not drained
      // yet. Re-project from the charged state so the flow keeps a live
      // completion entry (project_completion never returns `now` for an
      // undrained flow, so this cannot loop).
      f.projected_done = project_completion(f, now);
      if (f.projected_done != kNever) {
        push_completion(f.projected_done, top.slot, f.generation);
      }
    }
  }
  recompute();
  // completed_flow_count() counts at delivery (drain + extra_latency), like
  // the zero-byte path — never ahead of the observable callbacks.
  for (auto& [latency, cb] : done) {
    if (latency > 0) {
      sim_.schedule_after(latency, [this, cb = std::move(cb)] {
        ++completed_;
        if (cb) cb();
      });
    } else {
      ++completed_;
      if (cb) cb();  // may start new flows; recompute happens in start_flow
    }
  }
}

}  // namespace opus::net
