#include "net/fluid.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/error.h"

namespace opus::net {
namespace {
/// A flow is considered drained when fewer than this many bytes remain
/// (absorbs floating-point error from rate integration).
constexpr double kDrainEpsilonBytes = 1e-3;
}  // namespace

LinkId FluidNetwork::add_link(Bandwidth capacity, std::string name) {
  ensure(capacity.bits_per_sec >= 0.0, "link capacity must be non-negative");
  links_.push_back(Link{capacity, std::move(name)});
  return LinkId{static_cast<std::int32_t>(links_.size() - 1)};
}

Bandwidth FluidNetwork::capacity(LinkId link) const {
  ensure(link.valid() && static_cast<std::size_t>(link.value()) < links_.size(),
         "invalid link id");
  return links_[static_cast<std::size_t>(link.value())].capacity;
}

const std::string& FluidNetwork::link_name(LinkId link) const {
  ensure(link.valid() && static_cast<std::size_t>(link.value()) < links_.size(),
         "invalid link id");
  return links_[static_cast<std::size_t>(link.value())].name;
}

void FluidNetwork::set_capacity(LinkId link, Bandwidth capacity) {
  ensure(link.valid() && static_cast<std::size_t>(link.value()) < links_.size(),
         "invalid link id");
  ensure(capacity.bits_per_sec >= 0.0, "link capacity must be non-negative");
  advance_progress();
  links_[static_cast<std::size_t>(link.value())].capacity = capacity;
  recompute();
}

FlowId FluidNetwork::start_flow(std::vector<LinkId> path, Bytes bytes,
                                TimeNs extra_latency,
                                std::function<void()> on_complete) {
  ensure(bytes >= 0, "flow size must be non-negative");
  ensure(extra_latency >= 0, "flow latency must be non-negative");
  std::unordered_set<LinkId> seen;
  for (LinkId l : path) {
    ensure(l.valid() && static_cast<std::size_t>(l.value()) < links_.size(),
           "flow path contains invalid link");
    ensure(seen.insert(l).second, "flow path contains a duplicate link");
  }
  const FlowId id{next_flow_++};
  if (bytes == 0) {
    // Pure-latency message (e.g. a control ack): no bandwidth consumed.
    ++completed_;
    if (on_complete) sim_.schedule_after(extra_latency, std::move(on_complete));
    return id;
  }
  ensure(!path.empty(), "non-empty flow requires a non-empty path");
  advance_progress();
  flows_.emplace(id, Flow{std::move(path), static_cast<double>(bytes), 0.0,
                          extra_latency, std::move(on_complete)});
  recompute();
  return id;
}

bool FluidNetwork::abort_flow(FlowId flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return false;
  advance_progress();
  flows_.erase(it);
  recompute();
  return true;
}

double FluidNetwork::flow_rate_bps(FlowId flow) const {
  auto it = flows_.find(flow);
  ensure(it != flows_.end(), "flow_rate_bps: flow not active");
  return it->second.rate_bytes_per_ns * 8e9;
}

Bytes FluidNetwork::flow_remaining(FlowId flow) const {
  auto it = flows_.find(flow);
  ensure(it != flows_.end(), "flow_remaining: flow not active");
  // Remaining is advanced lazily; account for time since last update.
  const double elapsed = static_cast<double>(sim_.now() - last_update_);
  const double rem =
      it->second.remaining_bytes - it->second.rate_bytes_per_ns * elapsed;
  return static_cast<Bytes>(std::max(rem, 0.0));
}

int FluidNetwork::active_flows_on(LinkId link) const {
  int n = 0;
  for (const auto& [id, f] : flows_) {
    if (std::find(f.path.begin(), f.path.end(), link) != f.path.end()) ++n;
  }
  return n;
}

double FluidNetwork::allocated_bps(LinkId link) const {
  double bps = 0.0;
  for (const auto& [id, f] : flows_) {
    if (std::find(f.path.begin(), f.path.end(), link) != f.path.end()) {
      bps += f.rate_bytes_per_ns * 8e9;
    }
  }
  return bps;
}

void FluidNetwork::advance_progress() {
  const TimeNs now = sim_.now();
  const double elapsed = static_cast<double>(now - last_update_);
  if (elapsed > 0.0) {
    for (auto& [id, f] : flows_) {
      f.remaining_bytes =
          std::max(0.0, f.remaining_bytes - f.rate_bytes_per_ns * elapsed);
    }
  }
  last_update_ = now;
}

void FluidNetwork::solve_max_min() {
  // Progressive filling: repeatedly saturate the most constrained link and
  // freeze the flows crossing it at that link's fair share.
  const std::size_t n_links = links_.size();
  std::vector<double> cap_left(n_links);
  std::vector<int> unfrozen_on(n_links, 0);
  for (std::size_t l = 0; l < n_links; ++l) {
    cap_left[l] = links_[l].capacity.bytes_per_ns();
  }

  std::vector<Flow*> active;
  active.reserve(flows_.size());
  for (auto& [id, f] : flows_) active.push_back(&f);
  std::vector<bool> frozen(active.size(), false);
  for (const Flow* f : active) {
    for (LinkId l : f->path) ++unfrozen_on[static_cast<std::size_t>(l.value())];
  }

  std::size_t remaining = active.size();
  while (remaining > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = n_links;
    for (std::size_t l = 0; l < n_links; ++l) {
      if (unfrozen_on[l] <= 0) continue;
      const double share = std::max(cap_left[l], 0.0) / unfrozen_on[l];
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    ensure(best_link < n_links,
           "max-min solve: unfrozen flow without a constraining link");
    const LinkId bottleneck{static_cast<std::int32_t>(best_link)};
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      Flow* f = active[i];
      if (std::find(f->path.begin(), f->path.end(), bottleneck) ==
          f->path.end()) {
        continue;
      }
      f->rate_bytes_per_ns = best_share;
      frozen[i] = true;
      --remaining;
      for (LinkId l : f->path) {
        const auto li = static_cast<std::size_t>(l.value());
        cap_left[li] -= best_share;
        --unfrozen_on[li];
      }
    }
  }
}

void FluidNetwork::reschedule_completion_event() {
  if (completion_event_.valid()) {
    sim_.cancel(completion_event_);
    completion_event_ = EventId{};
  }
  TimeNs earliest = std::numeric_limits<TimeNs>::max();
  for (const auto& [id, f] : flows_) {
    if (f.rate_bytes_per_ns <= 0.0) continue;  // stalled (dark / zero-cap link)
    const double ns = f.remaining_bytes / f.rate_bytes_per_ns;
    TimeNs t = sim_.now() + static_cast<TimeNs>(ns);
    if (static_cast<double>(t - sim_.now()) < ns) ++t;  // round up
    earliest = std::min(earliest, t);
  }
  if (earliest != std::numeric_limits<TimeNs>::max()) {
    completion_event_ =
        sim_.schedule_at(earliest, [this] { on_completion_event(); });
  }
}

void FluidNetwork::recompute() {
  solve_max_min();
  reschedule_completion_event();
}

void FluidNetwork::on_completion_event() {
  completion_event_ = EventId{};
  advance_progress();
  std::vector<std::pair<TimeNs, std::function<void()>>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bytes <= kDrainEpsilonBytes) {
      done.emplace_back(it->second.extra_latency,
                        std::move(it->second.on_complete));
      it = flows_.erase(it);
      ++completed_;
    } else {
      ++it;
    }
  }
  recompute();
  for (auto& [latency, cb] : done) {
    if (!cb) continue;
    if (latency > 0) {
      sim_.schedule_after(latency, std::move(cb));
    } else {
      cb();  // may start new flows; recompute happens inside start_flow
    }
  }
}

}  // namespace opus::net
