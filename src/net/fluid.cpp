#include "net/fluid.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/error.h"

namespace opus::net {
namespace {
/// A flow is considered drained when fewer than this many bytes remain
/// (absorbs floating-point error from rate integration).
constexpr double kDrainEpsilonBytes = 1e-3;

/// Cap on how far ahead a completion event may be scheduled. A near-stalled
/// flow (huge remaining / tiny rate) would otherwise overflow the TimeNs
/// cast — remaining/rate can exceed 2^63 ns long before the rate underflows
/// to an exactly-zero "stalled" rate. ~29 simulated years: far beyond any
/// training job, and small enough that one hop past kMaxSchedulableNs below
/// cannot overflow.
constexpr double kMaxCompletionHorizonNs = 9.0e17;

/// Past this instant (~263 simulated years) no completion event is scheduled
/// at all — every per-flow delta is capped at the horizon above, so this
/// bound keeps now() + dt overflow-free even when a clamped event fires and
/// reschedules repeatedly; flows simply count as stalled from here on.
constexpr TimeNs kMaxSchedulableNs =
    std::numeric_limits<TimeNs>::max() -
    2 * static_cast<TimeNs>(kMaxCompletionHorizonNs);
}  // namespace

LinkId FluidNetwork::add_link(Bandwidth capacity, std::string name) {
  ensure(capacity.bits_per_sec >= 0.0, "link capacity must be non-negative");
  if (!free_.empty()) {
    const std::int32_t id = free_.back();
    free_.pop_back();
    const auto li = static_cast<std::size_t>(id);
    links_[li] = Link{capacity, std::move(name)};
    link_state_[li].retired = false;
    return LinkId{id};
  }
  links_.push_back(Link{capacity, std::move(name)});
  link_state_.emplace_back();
  link_epoch_.push_back(0);
  cap_left_.push_back(0.0);
  unfrozen_on_.push_back(0);
  return LinkId{static_cast<std::int32_t>(links_.size() - 1)};
}

void FluidNetwork::retire_link(LinkId link) {
  check_live_link(link);
  const auto li = static_cast<std::size_t>(link.value());
  ensure(link_state_[li].flows.empty(),
         "retire_link: link still carries active flows");
  links_[li] = Link{};
  link_state_[li].retired = true;
  free_.push_back(link.value());
  ++retired_total_;
}

void FluidNetwork::check_live_link(LinkId link) const {
  ensure(link.valid() && static_cast<std::size_t>(link.value()) < links_.size(),
         "invalid link id");
  ensure(!link_state_[static_cast<std::size_t>(link.value())].retired,
         "link id is retired");
}

bool FluidNetwork::link_retired(LinkId link) const {
  ensure(link.valid() && static_cast<std::size_t>(link.value()) < links_.size(),
         "invalid link id");
  return link_state_[static_cast<std::size_t>(link.value())].retired;
}

Bandwidth FluidNetwork::capacity(LinkId link) const {
  check_live_link(link);
  return links_[static_cast<std::size_t>(link.value())].capacity;
}

const std::string& FluidNetwork::link_name(LinkId link) const {
  check_live_link(link);
  return links_[static_cast<std::size_t>(link.value())].name;
}

void FluidNetwork::set_capacity(LinkId link, Bandwidth capacity) {
  check_live_link(link);
  ensure(capacity.bits_per_sec >= 0.0, "link capacity must be non-negative");
  advance_progress();
  links_[static_cast<std::size_t>(link.value())].capacity = capacity;
  recompute();
}

FlowId FluidNetwork::start_flow(std::vector<LinkId> path, Bytes bytes,
                                TimeNs extra_latency,
                                std::function<void()> on_complete) {
  ensure(bytes >= 0, "flow size must be non-negative");
  ensure(extra_latency >= 0, "flow latency must be non-negative");
  std::unordered_set<LinkId> seen;
  for (LinkId l : path) {
    check_live_link(l);
    ensure(seen.insert(l).second, "flow path contains a duplicate link");
  }
  const FlowId id{next_flow_++};
  if (bytes == 0) {
    // Pure-latency message (e.g. a control ack): no bandwidth consumed. The
    // completion is counted when it is *delivered*, not here — otherwise
    // completed_flow_count() reads ahead of the observable callbacks.
    sim_.schedule_after(extra_latency,
                        [this, cb = std::move(on_complete)] {
                          ++completed_;
                          if (cb) cb();
                        });
    return id;
  }
  ensure(!path.empty(), "non-empty flow requires a non-empty path");
  advance_progress();
  const auto [it, inserted] = flows_.emplace(
      id, Flow{std::move(path), static_cast<double>(bytes), 0.0, extra_latency,
               std::move(on_complete)});
  attach_to_links(id, it->second);
  recompute();
  return id;
}

bool FluidNetwork::abort_flow(FlowId flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return false;
  advance_progress();
  detach_from_links(flow, it->second);
  flows_.erase(it);
  recompute();
  return true;
}

double FluidNetwork::flow_rate_bps(FlowId flow) const {
  auto it = flows_.find(flow);
  ensure(it != flows_.end(), "flow_rate_bps: flow not active");
  return it->second.rate_bytes_per_ns * 8e9;
}

Bytes FluidNetwork::flow_remaining(FlowId flow) const {
  auto it = flows_.find(flow);
  ensure(it != flows_.end(), "flow_remaining: flow not active");
  // Remaining is advanced lazily; account for time since last update.
  const double elapsed = static_cast<double>(sim_.now() - last_update_);
  const double rem =
      it->second.remaining_bytes - it->second.rate_bytes_per_ns * elapsed;
  return static_cast<Bytes>(std::max(rem, 0.0));
}

int FluidNetwork::active_flows_on(LinkId link) const {
  check_live_link(link);
  return static_cast<int>(
      link_state_[static_cast<std::size_t>(link.value())].flows.size());
}

double FluidNetwork::allocated_bps(LinkId link) const {
  check_live_link(link);
  double bps = 0.0;
  for (FlowId id :
       link_state_[static_cast<std::size_t>(link.value())].flows) {
    bps += flows_.at(id).rate_bytes_per_ns * 8e9;
  }
  return bps;
}

void FluidNetwork::attach_to_links(FlowId id, const Flow& f) {
  for (LinkId l : f.path) {
    link_state_[static_cast<std::size_t>(l.value())].flows.push_back(id);
  }
}

void FluidNetwork::detach_from_links(FlowId id, const Flow& f) {
  for (LinkId l : f.path) {
    auto& on_link = link_state_[static_cast<std::size_t>(l.value())].flows;
    const auto it = std::find(on_link.begin(), on_link.end(), id);
    ensure(it != on_link.end(), "fluid: per-link flow index out of sync");
    *it = on_link.back();
    on_link.pop_back();
  }
}

void FluidNetwork::advance_progress() {
  const TimeNs now = sim_.now();
  const double elapsed = static_cast<double>(now - last_update_);
  if (elapsed > 0.0) {
    for (auto& [id, f] : flows_) {
      f.remaining_bytes =
          std::max(0.0, f.remaining_bytes - f.rate_bytes_per_ns * elapsed);
    }
  }
  last_update_ = now;
}

void FluidNetwork::solve_max_min() {
  // Progressive filling: repeatedly saturate the most constrained link and
  // freeze the flows crossing it at that link's fair share. Only links
  // crossed by at least one active flow participate; everything else —
  // including the unbounded set of retired circuit links a reconfigurable
  // fabric accretes — is never touched.
  const std::uint64_t epoch = ++solve_epoch_;
  touched_links_.clear();
  for (auto& [id, f] : flows_) {
    for (LinkId l : f.path) {
      const auto li = static_cast<std::size_t>(l.value());
      if (link_epoch_[li] != epoch) {
        link_epoch_[li] = epoch;
        cap_left_[li] = links_[li].capacity.bytes_per_ns();
        unfrozen_on_[li] = 0;
        touched_links_.push_back(li);
      }
      ++unfrozen_on_[li];
    }
  }
  // Lowest-index-first bottleneck tie-break, independent of flow hash order.
  std::sort(touched_links_.begin(), touched_links_.end());

  std::size_t remaining = flows_.size();
  while (remaining > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t li : touched_links_) {
      if (unfrozen_on_[li] <= 0) continue;
      const double share = std::max(cap_left_[li], 0.0) / unfrozen_on_[li];
      best_share = std::min(best_share, share);
    }
    ensure(best_share < std::numeric_limits<double>::infinity(),
           "max-min solve: unfrozen flow without a constraining link");
    // Freeze the whole bottleneck set this round, not one link per round:
    // independent circuits at one identical fair share are the common case
    // at scale (a 512-node collective puts ~1000 links there), and a
    // one-link-per-round loop rescans every touched link each time —
    // quadratic in active links. After freezing a minimum-share link no
    // remaining link can sit below this round's minimum (freezing removes
    // share*k capacity and k flows, which cannot lower a fair share), so a
    // single sorted sweep freezing every link still at the minimum — at the
    // link's own recomputed share, keeping cap_left_ non-negative under
    // floating point — yields the same max-min allocation.
    for (std::size_t li : touched_links_) {
      if (unfrozen_on_[li] <= 0) continue;
      const double share = std::max(cap_left_[li], 0.0) / unfrozen_on_[li];
      if (share > best_share) continue;
      for (FlowId fid : link_state_[li].flows) {
        Flow& f = flows_.at(fid);
        if (f.frozen_epoch == epoch) continue;
        f.frozen_epoch = epoch;
        f.rate_bytes_per_ns = share;
        --remaining;
        for (LinkId l : f.path) {
          const auto lj = static_cast<std::size_t>(l.value());
          cap_left_[lj] -= share;
          --unfrozen_on_[lj];
        }
      }
    }
  }
}

void FluidNetwork::reschedule_completion_event() {
  if (completion_event_.valid()) {
    sim_.cancel(completion_event_);
    completion_event_ = EventId{};
  }
  if (sim_.now() >= kMaxSchedulableNs) return;  // beyond the modelled era
  TimeNs earliest = std::numeric_limits<TimeNs>::max();
  for (const auto& [id, f] : flows_) {
    if (f.rate_bytes_per_ns <= 0.0) continue;  // stalled (dark / zero-cap link)
    const double ns = f.remaining_bytes / f.rate_bytes_per_ns;
    TimeNs dt;
    if (ns >= kMaxCompletionHorizonNs) {
      // Near-stalled: clamp instead of overflowing the cast. If the event
      // ever fires this far out, the flow is still undrained and simply
      // reschedules; in practice a capacity restore or abort re-solves first.
      dt = static_cast<TimeNs>(kMaxCompletionHorizonNs);
    } else {
      dt = static_cast<TimeNs>(ns);
      if (static_cast<double>(dt) < ns) ++dt;  // round up
    }
    earliest = std::min(earliest, sim_.now() + dt);
  }
  if (earliest != std::numeric_limits<TimeNs>::max()) {
    completion_event_ =
        sim_.schedule_at(earliest, [this] { on_completion_event(); });
  }
}

void FluidNetwork::recompute() {
  solve_max_min();
  reschedule_completion_event();
}

void FluidNetwork::on_completion_event() {
  completion_event_ = EventId{};
  advance_progress();
  std::vector<std::pair<TimeNs, std::function<void()>>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bytes <= kDrainEpsilonBytes) {
      done.emplace_back(it->second.extra_latency,
                        std::move(it->second.on_complete));
      detach_from_links(it->first, it->second);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute();
  // completed_flow_count() counts at delivery (drain + extra_latency), like
  // the zero-byte path — never ahead of the observable callbacks.
  for (auto& [latency, cb] : done) {
    if (latency > 0) {
      sim_.schedule_after(latency, [this, cb = std::move(cb)] {
        ++completed_;
        if (cb) cb();
      });
    } else {
      ++completed_;
      if (cb) cb();  // may start new flows; recompute happens in start_flow
    }
  }
}

}  // namespace opus::net
