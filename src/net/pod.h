// Multi-pod fabric: several rail-optimized pods sharing one simulator and
// one fluid data plane, stitched by per-(pod, rail) trunk links.
//
// The paper sizes photonic rails at pod scale; datacenter deployments are
// multiple rail-connected pods (Opus's multi-pod setting). This layer keeps
// each pod a self-contained net::Cluster — its own rails, OCS/electrical
// switches, tenant table — while cross-pod rail-r traffic exits through the
// source pod's rail-r trunk and enters through the destination pod's, both
// capacity-limited fluid links. Because every pod Cluster is constructed on
// the fabric's shared FluidNetwork, intra-pod and cross-pod flows genuinely
// contend for bandwidth in one max-min solve.
//
// All trunk state is lazy: a trunk direction materializes on the first
// cross-pod transfer that needs it, so an idle 8-pod fabric holds zero
// trunk links (and, with lazy cluster wiring, zero fluid links overall) —
// the multi-pod analogue of the span-proportional cluster state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "net/cluster.h"
#include "net/fluid.h"
#include "sim/simulator.h"

namespace opus::net {

struct MultiPodConfig {
  int n_pods = 2;
  /// Per-pod cluster shape; every pod is identical (the deployment grain).
  ClusterConfig pod;
  /// Capacity of one trunk direction (one pod's rail-r egress or ingress).
  /// All cross-pod traffic leaving pod p on rail r shares p's rail-r egress
  /// trunk; traffic entering pod q on rail r shares q's rail-r ingress.
  Bandwidth trunk_bw = Bandwidth::gbps(800);
  /// One-way latency of a trunk traversal (inter-pod fiber + aggregation).
  TimeNs trunk_latency = usecs(5);
};

/// N pods on one simulator + one fluid network, rail-connected by lazily
/// materialized trunk links.
class MultiPodFabric {
 public:
  MultiPodFabric(sim::Simulator& sim, MultiPodConfig cfg);
  MultiPodFabric(const MultiPodFabric&) = delete;
  MultiPodFabric& operator=(const MultiPodFabric&) = delete;

  const MultiPodConfig& config() const { return cfg_; }
  int n_pods() const { return cfg_.n_pods; }
  Cluster& pod(PodId p);
  const Cluster& pod(PodId p) const;
  /// The shared data plane every pod Cluster and every trunk link lives on.
  FluidNetwork& network() { return net_; }
  const FluidNetwork& network() const { return net_; }

  /// Moves `bytes` from (src_pod, src) to (dst_pod, dst). Same pod defers
  /// to Cluster::transfer. Cross-pod traffic rides the destination's rail:
  /// when src is on a different local rank it first bridges over NVLink to
  /// its node's GPU of dst's rank (PXN at the pod boundary,
  /// store-and-forward), then crosses the source pod's egress trunk and the
  /// destination pod's ingress trunk as one fluid flow — the ingress trunk
  /// models the destination pod's rail-r aggregation, so incast onto one
  /// pod contends there.
  void transfer(PodId src_pod, GpuId src, PodId dst_pod, GpuId dst,
                Bytes bytes, std::function<void()> on_complete);

  /// Total bytes that crossed pod boundaries (trunk traffic).
  Bytes cross_pod_bytes() const { return cross_pod_bytes_; }
  /// Trunk links materialized so far (2 per active (pod, rail) direction
  /// pair in use; 0 on an idle fabric).
  std::size_t trunk_link_count() const {
    return trunk_egress_.size() + trunk_ingress_.size();
  }

 private:
  /// Lazy trunk accessors: the fluid link carrying cross-pod traffic out of
  /// (into) pod `p` on rail `r`, created on first use.
  LinkId trunk_egress(PodId p, RailId r);
  LinkId trunk_ingress(PodId p, RailId r);
  static std::int64_t trunk_key(PodId p, RailId r) {
    return (static_cast<std::int64_t>(p.value()) << 32) | r.value();
  }

  sim::Simulator& sim_;
  MultiPodConfig cfg_;
  FluidNetwork net_;
  std::vector<std::unique_ptr<Cluster>> pods_;
  // Sparse trunk registries: one entry per (pod, rail) direction that has
  // carried traffic.
  std::unordered_map<std::int64_t, LinkId> trunk_egress_;
  std::unordered_map<std::int64_t, LinkId> trunk_ingress_;
  Bytes cross_pod_bytes_ = 0;
};

}  // namespace opus::net
