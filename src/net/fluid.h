// Flow-level ("fluid") network model.
//
// Long-lived transfers are modelled as fluid flows over paths of
// capacity-limited unidirectional links. Whenever the set of flows (or a link
// capacity) changes, rates are re-solved with progressive filling (max-min
// fairness) and the single earliest-completion event is rescheduled. This is
// the standard first-order approximation used by flow-level datacenter
// simulators and is exact for the dedicated point-to-point circuits of a
// photonic rail.
//
// The solver scales with *active* state, not lifetime state: each re-solve
// touches only the links crossed by at least one active flow (epoch-stamped
// scratch arrays avoid per-solve clearing), per-link flow indices make
// active_flows_on / allocated_bps O(1) / O(flows-on-link), and retired links
// (dead circuits from OCS reconfiguration churn) go on a free list for id
// reuse so the link table stays bounded under rotor-style fabrics. Each
// progressive-filling round freezes the whole bottleneck set (every link at
// the round's minimum fair share), so N independent circuits at one
// identical share — the shape of a large collective on photonic rails —
// cost one round, not N.
//
// Flows live in a dense slot-indexed registry: a contiguous std::vector with
// a LIFO free list, addressed by generation-stamped FlowIds (slot index +
// reuse generation packed into 64 bits). Every hot-path lookup is an array
// index, the solve iterates a contiguous vector, and a stale id — held
// across the completion or abort of its flow — is detected by its generation
// instead of silently aliasing the slot's next occupant. Progress charging
// is per-flow and lazy (each flow integrates its previous rate exactly when
// the solve freezes its next one), and the earliest completion is tracked by
// a lazy-deletion min-heap of projected drain instants: entries are
// invalidated by generation/projection mismatch and only flows whose rate
// actually changed push new entries, so rescheduling after churn no longer
// rescans the registry.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/profile.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace opus::net {

/// A unidirectional capacity-limited link.
struct Link {
  Bandwidth capacity;
  std::string name;
};

/// The fluid-flow engine. One instance models the whole cluster's data plane.
class FluidNetwork {
 public:
  explicit FluidNetwork(sim::Simulator& sim) : sim_(sim) {}
  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Adds a link with the given capacity; returns its id. Retired ids are
  /// reused (most recently retired first), so callers must not hold a LinkId
  /// across retire_link of that link.
  LinkId add_link(Bandwidth capacity, std::string name = {});

  /// Retires an idle link: its id goes on the free list for reuse by a later
  /// add_link. The link must carry no active flows.
  void retire_link(LinkId link);

  Bandwidth capacity(LinkId link) const;
  const std::string& link_name(LinkId link) const;
  /// Size of the link table, retired slots included (stable upper bound for
  /// iterating link ids; retired slots reject all other operations).
  std::size_t link_count() const { return links_.size(); }
  /// Links currently usable (link_count() minus retired slots).
  std::size_t live_link_count() const { return links_.size() - free_.size(); }
  /// Links retired over the network's lifetime (monotone; id reuse does not
  /// decrement it).
  std::uint64_t retired_link_count() const { return retired_total_; }
  bool link_retired(LinkId link) const;

  /// Changes a link's capacity (used for failure injection / degradation
  /// tests). Active flows immediately re-share.
  void set_capacity(LinkId link, Bandwidth capacity);

  /// Starts a flow of `bytes` over `path` (ordered, duplicate-free link ids).
  /// `on_complete` fires once the flow has drained and `extra_latency` has
  /// elapsed (propagation + per-hop fixed latency, applied once).
  /// A zero-byte flow completes after `extra_latency` alone; it stays
  /// flow_active (and abortable) until that delivery.
  FlowId start_flow(std::vector<LinkId> path, Bytes bytes, TimeNs extra_latency,
                    std::function<void()> on_complete);

  /// Aborts an in-flight flow; its completion callback never fires. Pending
  /// zero-byte (pure-latency) flows are in flight until delivery and abort
  /// like any other. Returns false if the flow already completed (a drained
  /// flow counts as completed even while its extra_latency delivery is
  /// pending), was already aborted, or never existed — stale ids whose slot
  /// was since reused are rejected by their generation stamp.
  bool abort_flow(FlowId flow);

  /// Aborts every active flow whose path crosses `link` (failure injection:
  /// a failed port kills the traffic on its circuit). Completion callbacks
  /// never fire. Returns the number of flows aborted.
  int abort_flows_on(LinkId link);

  /// Snapshot of the active flows whose path crosses `link` (failure
  /// injection enumerates a dying circuit's flows to rescue or abort them).
  /// Pending zero-byte flows hold no links and never appear here.
  std::vector<FlowId> flows_on(LinkId link) const {
    check_live_link(link);
    return link_state_[static_cast<std::size_t>(link.value())].flows;
  }

  /// Current rate of an active flow in bits/sec (0 for stalled flows and
  /// pending zero-byte flows).
  double flow_rate_bps(FlowId flow) const;
  /// Bytes not yet drained for an active flow.
  Bytes flow_remaining(FlowId flow) const;
  /// True while the flow occupies a registry slot: draining, or a zero-byte
  /// flow whose latency has not yet elapsed. Stale and foreign ids are false.
  bool flow_active(FlowId flow) const;

  /// Flows currently occupying registry slots (draining + pending zero-byte).
  std::size_t active_flow_count() const { return active_count_; }
  /// Number of active flows whose path crosses `link`. O(1). Inline: the
  /// OCS's pre-reconfiguration traffic checks call this once per touched
  /// port, which on a large rotor fabric is tens of millions of calls.
  int active_flows_on(LinkId link) const {
    check_live_link(link);
    return static_cast<int>(
        link_state_[static_cast<std::size_t>(link.value())].flows.size());
  }
  /// Sum of the current rates (bits/sec) of the flows crossing `link`.
  /// Never exceeds the link capacity (a max-min allocation invariant; the
  /// sum is clamped so bottleneck-set freezing cannot overshoot by
  /// floating-point slack). O(flows on the link).
  double allocated_bps(LinkId link) const;
  /// Flows whose drain completed *and* whose completion was delivered
  /// (zero-byte flows count when their latency elapses, not at start_flow).
  std::uint64_t completed_flow_count() const { return completed_; }

  /// Max-min re-solves performed (recompute calls). Telemetry gauge.
  std::int64_t solve_count() const { return solve_count_; }
  /// Progressive-filling rounds across all solves: each round freezes one
  /// bottleneck set. Telemetry gauge.
  std::int64_t solve_rounds() const { return solve_rounds_; }
  /// Links frozen as bottleneck-set members across all solves.
  std::int64_t frozen_bottleneck_links() const {
    return frozen_bottleneck_links_;
  }

  /// Opt-in wall-clock sink timing each re-solve (obs self-profiling).
  /// Null (the default) costs one branch per recompute.
  void set_profile_sink(ProfileSink* sink);

 private:
  /// Sentinel projection for flows with no completion in sight (stalled on a
  /// dark link, or beyond the schedulable era).
  static constexpr TimeNs kNever = std::numeric_limits<TimeNs>::max();

  /// One registry slot. `generation` is odd while the slot is occupied and
  /// even while it sits on the free list; a FlowId is live iff it carries
  /// the slot's current (odd) generation.
  struct Flow {
    std::vector<LinkId> path;
    double remaining_bytes = 0.0;
    double rate_bytes_per_ns = 0.0;
    TimeNs extra_latency = 0;
    std::function<void()> on_complete;
    /// Solve epoch in which this flow's rate was frozen (solver scratch).
    std::uint64_t frozen_epoch = 0;
    std::uint32_t generation = 0;
    /// Position of this slot in draining_ while the flow moves bytes
    /// (swap-with-last removal keeps the index dense).
    std::uint32_t draining_pos = 0;
    /// Instant up to which remaining_bytes is integrated (per-flow lazy
    /// progress: charged when the solve freezes a new rate, at completion
    /// processing, and — without mutation — on flow_remaining queries).
    TimeNs last_charged = 0;
    /// Projected drain instant at the current rate (kNever when stalled).
    /// The completion heap's validity check compares against this.
    TimeNs projected_done = kNever;
    /// Zero-byte flows: the scheduled delivery event, cancellable by abort.
    EventId latency_event{};
  };

  /// Lazy-deletion min-heap entry: valid iff the slot still holds generation
  /// `generation` and still projects completion at exactly `time`.
  struct CompletionEntry {
    TimeNs time;
    std::uint32_t slot;
    std::uint32_t generation;
    /// Min-heap on (time, slot): equal-instant completions pop in slot
    /// order, keeping callback delivery deterministic.
    friend bool operator>(const CompletionEntry& a, const CompletionEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.slot > b.slot;
    }
  };

  /// Per-link bookkeeping kept parallel to links_.
  struct LinkState {
    /// Ids of the active flows whose path crosses this link (unordered;
    /// removal is swap-with-last).
    std::vector<FlowId> flows;
    bool retired = false;
  };

  /// Bounds- and liveness-check a link id (inline: rides every hot-path
  /// link accessor).
  void check_live_link(LinkId link) const {
    ensure(link.valid() &&
               static_cast<std::size_t>(link.value()) < links_.size(),
           "invalid link id");
    ensure(!link_state_[static_cast<std::size_t>(link.value())].retired,
           "link id is retired");
  }
  /// The slot behind a live id; nullptr for stale, foreign, or invalid ids.
  Flow* find_flow(FlowId flow);
  const Flow* find_flow(FlowId flow) const;
  /// Pops a slot off the free list (or grows the registry) and stamps its
  /// occupied generation. The returned slot's Flow is in released state.
  std::uint32_t alloc_slot();
  /// Stamps the slot free (generation becomes even) and drops its payload.
  void release_slot(std::uint32_t slot);
  /// Registers `id` on every link of its path.
  void attach_to_links(FlowId id, const Flow& f);
  /// Removes `id` from every link of its path.
  void detach_from_links(FlowId id, const Flow& f);
  /// Integrates progress at the current rate since last_charged.
  void charge_progress(Flow& f, TimeNs now);
  /// Absolute drain instant of `f` at its current rate, rounded up and
  /// clamped to the completion horizon; kNever when stalled.
  TimeNs project_completion(const Flow& f, TimeNs now) const;
  /// Pushes a completion-heap entry / pops the heap's top entry.
  void push_completion(TimeNs time, std::uint32_t slot,
                       std::uint32_t generation);
  void pop_completion_top();
  /// Re-solves max-min fair rates and reschedules the completion event.
  void recompute();
  void solve_max_min();
  /// Drops stale heap entries, compacts a bloated heap, and (re)schedules
  /// the single completion event at the heap's earliest valid instant.
  void reschedule_completion_event();
  void on_completion_event();

  /// Removes a slot from draining_ (swap-with-last).
  void remove_from_draining(Flow& f);

  sim::Simulator& sim_;
  std::vector<Link> links_;
  std::vector<LinkState> link_state_;
  /// links_[i].capacity.bytes_per_ns(), cached so the solve's per-touched-
  /// link reset skips the division.
  std::vector<double> cap_bytes_per_ns_;
  /// Retired link ids available for reuse (LIFO for cache locality).
  std::vector<std::int32_t> free_;
  std::uint64_t retired_total_ = 0;

  /// The flow registry: dense slot array + LIFO free list. Slots are never
  /// removed, so peak concurrency bounds the vector; holes wait on the free
  /// list with an even generation.
  std::vector<Flow> flows_;
  std::vector<std::uint32_t> flow_free_;
  std::size_t active_count_ = 0;  ///< occupied slots
  /// Slots of the flows currently moving bytes (zero-byte flows excluded) —
  /// the exact set the solve iterates, order maintained by swap-with-last.
  std::vector<std::uint32_t> draining_;

  /// Earliest-completion tracking: lazy-deletion min-heap over projected
  /// drain instants (see CompletionEntry).
  std::vector<CompletionEntry> completion_heap_;
  EventId completion_event_{};
  TimeNs completion_event_time_ = kNever;
  std::uint64_t completed_ = 0;

  // Solver scratch, persistent across solves so a re-solve costs O(active
  // path footprint), not O(lifetime links). A slot is valid only when its
  // epoch stamp matches the current solve's epoch. start_flow borrows the
  // same epoch counter + link stamps for its duplicate-link check.
  std::uint64_t solve_epoch_ = 0;
  std::vector<std::uint64_t> link_epoch_;
  std::vector<double> cap_left_;
  std::vector<int> unfrozen_on_;
  std::vector<std::size_t> touched_links_;

  // Solver telemetry counters: one add per solve / per freezing round on
  // already-cold bookkeeping, always on (cheaper than a guard).
  std::int64_t solve_count_ = 0;
  std::int64_t solve_rounds_ = 0;
  std::int64_t frozen_bottleneck_links_ = 0;

  // Opt-in wall-clock profiling of the re-solve (null = off).
  ProfileSink* profile_sink_ = nullptr;
  int profile_phase_recompute_ = -1;
};

}  // namespace opus::net
