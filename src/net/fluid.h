// Flow-level ("fluid") network model.
//
// Long-lived transfers are modelled as fluid flows over paths of
// capacity-limited unidirectional links. Whenever the set of flows (or a link
// capacity) changes, rates are re-solved with progressive filling (max-min
// fairness) and the single earliest-completion event is rescheduled. This is
// the standard first-order approximation used by flow-level datacenter
// simulators and is exact for the dedicated point-to-point circuits of a
// photonic rail.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace opus::net {

/// A unidirectional capacity-limited link.
struct Link {
  Bandwidth capacity;
  std::string name;
};

/// The fluid-flow engine. One instance models the whole cluster's data plane.
class FluidNetwork {
 public:
  explicit FluidNetwork(sim::Simulator& sim) : sim_(sim) {}
  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Adds a link with the given capacity; returns its id.
  LinkId add_link(Bandwidth capacity, std::string name = {});

  Bandwidth capacity(LinkId link) const;
  const std::string& link_name(LinkId link) const;
  std::size_t link_count() const { return links_.size(); }

  /// Changes a link's capacity (used for failure injection / degradation
  /// tests). Active flows immediately re-share.
  void set_capacity(LinkId link, Bandwidth capacity);

  /// Starts a flow of `bytes` over `path` (ordered, duplicate-free link ids).
  /// `on_complete` fires once the flow has drained and `extra_latency` has
  /// elapsed (propagation + per-hop fixed latency, applied once).
  /// A zero-byte flow completes after `extra_latency` alone.
  FlowId start_flow(std::vector<LinkId> path, Bytes bytes, TimeNs extra_latency,
                    std::function<void()> on_complete);

  /// Aborts an in-flight flow; its completion callback never fires.
  /// Returns false if the flow already completed or never existed.
  bool abort_flow(FlowId flow);

  /// Current rate of an active flow in bits/sec (0 for stalled flows).
  double flow_rate_bps(FlowId flow) const;
  /// Bytes not yet drained for an active flow.
  Bytes flow_remaining(FlowId flow) const;
  bool flow_active(FlowId flow) const { return flows_.contains(flow); }

  std::size_t active_flow_count() const { return flows_.size(); }
  /// Number of active flows whose path crosses `link`.
  int active_flows_on(LinkId link) const;
  /// Sum of the current rates (bits/sec) of the flows crossing `link`.
  /// Never exceeds the link capacity (a max-min allocation invariant).
  double allocated_bps(LinkId link) const;
  std::uint64_t completed_flow_count() const { return completed_; }

 private:
  struct Flow {
    std::vector<LinkId> path;
    double remaining_bytes = 0.0;
    double rate_bytes_per_ns = 0.0;
    TimeNs extra_latency = 0;
    std::function<void()> on_complete;
  };

  /// Charges progress for elapsed time since the last update.
  void advance_progress();
  /// Re-solves max-min fair rates and reschedules the completion event.
  void recompute();
  void solve_max_min();
  void reschedule_completion_event();
  void on_completion_event();

  sim::Simulator& sim_;
  std::vector<Link> links_;
  std::unordered_map<FlowId, Flow> flows_;
  TimeNs last_update_ = 0;
  EventId completion_event_{};
  std::int32_t next_flow_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace opus::net
