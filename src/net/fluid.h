// Flow-level ("fluid") network model.
//
// Long-lived transfers are modelled as fluid flows over paths of
// capacity-limited unidirectional links. Whenever the set of flows (or a link
// capacity) changes, rates are re-solved with progressive filling (max-min
// fairness) and the single earliest-completion event is rescheduled. This is
// the standard first-order approximation used by flow-level datacenter
// simulators and is exact for the dedicated point-to-point circuits of a
// photonic rail.
//
// The solver scales with *active* state, not lifetime state: each re-solve
// touches only the links crossed by at least one active flow (epoch-stamped
// scratch arrays avoid per-solve clearing), per-link flow indices make
// active_flows_on / allocated_bps O(1) / O(flows-on-link), and retired links
// (dead circuits from OCS reconfiguration churn) go on a free list for id
// reuse so the link table stays bounded under rotor-style fabrics. Each
// progressive-filling round freezes the whole bottleneck set (every link at
// the round's minimum fair share), so N independent circuits at one
// identical share — the shape of a large collective on photonic rails —
// cost one round, not N.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace opus::net {

/// A unidirectional capacity-limited link.
struct Link {
  Bandwidth capacity;
  std::string name;
};

/// The fluid-flow engine. One instance models the whole cluster's data plane.
class FluidNetwork {
 public:
  explicit FluidNetwork(sim::Simulator& sim) : sim_(sim) {}
  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Adds a link with the given capacity; returns its id. Retired ids are
  /// reused (most recently retired first), so callers must not hold a LinkId
  /// across retire_link of that link.
  LinkId add_link(Bandwidth capacity, std::string name = {});

  /// Retires an idle link: its id goes on the free list for reuse by a later
  /// add_link. The link must carry no active flows.
  void retire_link(LinkId link);

  Bandwidth capacity(LinkId link) const;
  const std::string& link_name(LinkId link) const;
  /// Size of the link table, retired slots included (stable upper bound for
  /// iterating link ids; retired slots reject all other operations).
  std::size_t link_count() const { return links_.size(); }
  /// Links currently usable (link_count() minus retired slots).
  std::size_t live_link_count() const { return links_.size() - free_.size(); }
  /// Links retired over the network's lifetime (monotone; id reuse does not
  /// decrement it).
  std::uint64_t retired_link_count() const { return retired_total_; }
  bool link_retired(LinkId link) const;

  /// Changes a link's capacity (used for failure injection / degradation
  /// tests). Active flows immediately re-share.
  void set_capacity(LinkId link, Bandwidth capacity);

  /// Starts a flow of `bytes` over `path` (ordered, duplicate-free link ids).
  /// `on_complete` fires once the flow has drained and `extra_latency` has
  /// elapsed (propagation + per-hop fixed latency, applied once).
  /// A zero-byte flow completes after `extra_latency` alone.
  FlowId start_flow(std::vector<LinkId> path, Bytes bytes, TimeNs extra_latency,
                    std::function<void()> on_complete);

  /// Aborts an in-flight flow; its completion callback never fires.
  /// Returns false if the flow already completed or never existed.
  bool abort_flow(FlowId flow);

  /// Current rate of an active flow in bits/sec (0 for stalled flows).
  double flow_rate_bps(FlowId flow) const;
  /// Bytes not yet drained for an active flow.
  Bytes flow_remaining(FlowId flow) const;
  bool flow_active(FlowId flow) const { return flows_.contains(flow); }

  std::size_t active_flow_count() const { return flows_.size(); }
  /// Number of active flows whose path crosses `link`. O(1).
  int active_flows_on(LinkId link) const;
  /// Sum of the current rates (bits/sec) of the flows crossing `link`.
  /// Never exceeds the link capacity (a max-min allocation invariant).
  /// O(flows on the link).
  double allocated_bps(LinkId link) const;
  /// Flows whose drain completed *and* whose completion was delivered
  /// (zero-byte flows count when their latency elapses, not at start_flow).
  std::uint64_t completed_flow_count() const { return completed_; }

 private:
  struct Flow {
    std::vector<LinkId> path;
    double remaining_bytes = 0.0;
    double rate_bytes_per_ns = 0.0;
    TimeNs extra_latency = 0;
    std::function<void()> on_complete;
    /// Solve epoch in which this flow's rate was frozen (solver scratch).
    std::uint64_t frozen_epoch = 0;
  };

  /// Per-link bookkeeping kept parallel to links_.
  struct LinkState {
    /// Ids of the active flows whose path crosses this link (unordered;
    /// removal is swap-with-last).
    std::vector<FlowId> flows;
    bool retired = false;
  };

  void check_live_link(LinkId link) const;
  /// Registers `id` on every link of its path.
  void attach_to_links(FlowId id, const Flow& f);
  /// Removes `id` from every link of its path.
  void detach_from_links(FlowId id, const Flow& f);
  /// Charges progress for elapsed time since the last update.
  void advance_progress();
  /// Re-solves max-min fair rates and reschedules the completion event.
  void recompute();
  void solve_max_min();
  void reschedule_completion_event();
  void on_completion_event();

  sim::Simulator& sim_;
  std::vector<Link> links_;
  std::vector<LinkState> link_state_;
  /// Retired link ids available for reuse (LIFO for cache locality).
  std::vector<std::int32_t> free_;
  std::uint64_t retired_total_ = 0;
  std::unordered_map<FlowId, Flow> flows_;
  TimeNs last_update_ = 0;
  EventId completion_event_{};
  std::int32_t next_flow_ = 0;
  std::uint64_t completed_ = 0;

  // Solver scratch, persistent across solves so a re-solve costs O(active
  // path footprint), not O(lifetime links). A slot is valid only when its
  // epoch stamp matches the current solve's epoch.
  std::uint64_t solve_epoch_ = 0;
  std::vector<std::uint64_t> link_epoch_;
  std::vector<double> cap_left_;
  std::vector<int> unfrozen_on_;
  std::vector<std::size_t> touched_links_;
};

}  // namespace opus::net
