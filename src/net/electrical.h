// Electrical packet rail switch (the baseline the paper replaces).
//
// Modelled as a non-blocking crossbar: every attached endpoint owns an uplink
// (endpoint -> switch) and a downlink (switch -> endpoint), each at the full
// NIC bandwidth. Any-to-any connectivity is always available; contention
// appears on uplinks (fan-out) and downlinks (incast) through fluid sharing.
// Each traversal adds one switch hop latency (OEO conversion + ASIC
// processing), which an optical circuit does not pay.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "net/fluid.h"

namespace opus::net {

class ElectricalSwitch {
 public:
  ElectricalSwitch(FluidNetwork& net, int n_endpoints, Bandwidth port_bw,
                   TimeNs hop_latency, std::string name = {});

  int n_endpoints() const { return n_endpoints_; }
  TimeNs hop_latency() const { return hop_latency_; }
  Bandwidth port_bandwidth() const { return port_bw_; }

  /// Link carrying traffic from endpoint `i` into the switch. Created on
  /// first use: an idle endpoint contributes no fluid-network state, so a
  /// 4096-node rail whose tenants touch 64 nodes materializes 64 nodes'
  /// worth of links (the memory-proportionality tests pin this).
  LinkId uplink(int i) const;
  /// Link carrying traffic from the switch to endpoint `i` (lazy, as above).
  LinkId downlink(int i) const;

  /// Endpoints whose uplink or downlink has been materialized so far.
  int touched_endpoints() const;

  /// The endpoint's uplink if it has been materialized, an invalid id
  /// otherwise. Failure teardown uses these: aborting traffic on a node that
  /// never touched the switch must not allocate links just to find nothing.
  LinkId peek_uplink(int i) const;
  LinkId peek_downlink(int i) const;

  /// Degrades (or restores) endpoint `i`'s up/down capacity to
  /// `scale` x port bandwidth — failure injection: a node that lost k of
  /// its n NIC-port lanes keeps (n-k)/n of its electrical bandwidth.
  /// Active flows immediately re-share; scale 1.0 restores full rate and
  /// drops the (sparse) override. Scale 0 leaves the links stalled rather
  /// than retiring them — the fabric stays wired, just dark.
  void set_endpoint_capacity_scale(int i, double scale);
  double endpoint_capacity_scale(int i) const;

 private:
  Bandwidth scaled_bw(int i) const;

  FluidNetwork& net_;
  int n_endpoints_;
  Bandwidth port_bw_;
  TimeNs hop_latency_;
  std::string name_;
  // Lazy link caches (4 bytes per endpoint until touched; the heavy
  // per-link state lives in the FluidNetwork and is allocated on demand).
  mutable std::vector<LinkId> uplinks_;
  mutable std::vector<LinkId> downlinks_;
  /// Sparse capacity overrides (endpoint -> scale in (0, 1]); absent = 1.0.
  /// Sparse so a 4096-node rail with three degraded nodes stays O(3).
  std::unordered_map<int, double> capacity_scale_;
};

}  // namespace opus::net
