// Electrical packet rail switch (the baseline the paper replaces).
//
// Modelled as a non-blocking crossbar: every attached endpoint owns an uplink
// (endpoint -> switch) and a downlink (switch -> endpoint), each at the full
// NIC bandwidth. Any-to-any connectivity is always available; contention
// appears on uplinks (fan-out) and downlinks (incast) through fluid sharing.
// Each traversal adds one switch hop latency (OEO conversion + ASIC
// processing), which an optical circuit does not pay.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "net/fluid.h"

namespace opus::net {

class ElectricalSwitch {
 public:
  ElectricalSwitch(FluidNetwork& net, int n_endpoints, Bandwidth port_bw,
                   TimeNs hop_latency, std::string name = {});

  int n_endpoints() const { return n_endpoints_; }
  TimeNs hop_latency() const { return hop_latency_; }
  Bandwidth port_bandwidth() const { return port_bw_; }

  /// Link carrying traffic from endpoint `i` into the switch. Created on
  /// first use: an idle endpoint contributes no fluid-network state, so a
  /// 4096-node rail whose tenants touch 64 nodes materializes 64 nodes'
  /// worth of links (the memory-proportionality tests pin this).
  LinkId uplink(int i) const;
  /// Link carrying traffic from the switch to endpoint `i` (lazy, as above).
  LinkId downlink(int i) const;

  /// Endpoints whose uplink or downlink has been materialized so far.
  int touched_endpoints() const;

 private:
  FluidNetwork& net_;
  int n_endpoints_;
  Bandwidth port_bw_;
  TimeNs hop_latency_;
  std::string name_;
  // Lazy link caches (4 bytes per endpoint until touched; the heavy
  // per-link state lives in the FluidNetwork and is allocated on demand).
  mutable std::vector<LinkId> uplinks_;
  mutable std::vector<LinkId> downlinks_;
};

}  // namespace opus::net
