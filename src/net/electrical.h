// Electrical packet rail switch (the baseline the paper replaces).
//
// Modelled as a non-blocking crossbar: every attached endpoint owns an uplink
// (endpoint -> switch) and a downlink (switch -> endpoint), each at the full
// NIC bandwidth. Any-to-any connectivity is always available; contention
// appears on uplinks (fan-out) and downlinks (incast) through fluid sharing.
// Each traversal adds one switch hop latency (OEO conversion + ASIC
// processing), which an optical circuit does not pay.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "net/fluid.h"

namespace opus::net {

class ElectricalSwitch {
 public:
  ElectricalSwitch(FluidNetwork& net, int n_endpoints, Bandwidth port_bw,
                   TimeNs hop_latency, std::string name = {});

  int n_endpoints() const { return static_cast<int>(uplinks_.size()); }
  TimeNs hop_latency() const { return hop_latency_; }
  Bandwidth port_bandwidth() const { return port_bw_; }

  /// Link carrying traffic from endpoint `i` into the switch.
  LinkId uplink(int i) const;
  /// Link carrying traffic from the switch to endpoint `i`.
  LinkId downlink(int i) const;

 private:
  Bandwidth port_bw_;
  TimeNs hop_latency_;
  std::vector<LinkId> uplinks_;
  std::vector<LinkId> downlinks_;
};

}  // namespace opus::net
