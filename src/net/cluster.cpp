#include "net/cluster.h"

#include <algorithm>
#include <string>

#include "common/error.h"

namespace opus::net {

const char* fabric_name(FabricKind f) {
  switch (f) {
    case FabricKind::kElectrical: return "Electrical";
    case FabricKind::kOpusPhotonic: return "Opus";
    case FabricKind::kStaticRing: return "StaticRing";
    case FabricKind::kRotor: return "Rotor";
  }
  return "?";
}

RailKind rail_kind_of(FabricKind f) {
  return f == FabricKind::kElectrical ? RailKind::kElectrical
                                      : RailKind::kPhotonic;
}

int rotor_rounds_for(int n_nodes) {
  ensure(n_nodes >= 2, "a rotor needs at least two nodes");
  const int m = n_nodes % 2 == 0 ? n_nodes : n_nodes + 1;
  return m - 1;
}

Cluster::Cluster(sim::Simulator& sim, ClusterConfig cfg)
    : Cluster(sim, nullptr, std::move(cfg)) {}

Cluster::Cluster(sim::Simulator& sim, FluidNetwork& net, ClusterConfig cfg)
    : Cluster(sim, &net, std::move(cfg)) {}

Cluster::Cluster(sim::Simulator& sim, FluidNetwork* net, ClusterConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      owned_net_(net == nullptr ? std::make_unique<FluidNetwork>(sim)
                                : nullptr),
      net_(net == nullptr ? *owned_net_ : *net),
      route_bytes_(6, 0) {
  ensure(cfg_.n_nodes > 0, "cluster requires nodes");
  ensure(cfg_.gpus_per_node > 0, "cluster requires GPUs per node");
  ensure(cfg_.nic_ports == 1 || cfg_.nic_ports == 2 || cfg_.nic_ports == 4,
         "NIC supports 1, 2, or 4 logical ports (ConnectX-7 configurations)");
  ensure(cfg_.nic_total_bw.positive(), "NIC bandwidth must be positive");
  ensure(cfg_.nvlink_bw.positive(), "NVLink bandwidth must be positive");
  ensure(cfg_.max_multihop_hops >= 0, "multi-hop cap must be non-negative");

  // Fabric normalization: a fixed ring can only serve non-neighbours by
  // forwarding, and a rotor whose ports spread across matchings forwards
  // over the connected union instead of waiting (capped at RotorNet's
  // direct-or-two-hop routing unless the caller chose otherwise).
  if (cfg_.fabric == FabricKind::kStaticRing) {
    cfg_.allow_rail_multihop = true;
  }
  if (cfg_.fabric == FabricKind::kRotor) {
    ensure(cfg_.n_nodes >= 2, "a rotor fabric needs at least two nodes");
    ensure(cfg_.rotor_port_spread >= 1, "rotor port spread must be >= 1");
    cfg_.rotor_port_spread =
        std::min({cfg_.rotor_port_spread, cfg_.nic_ports, rotor_rounds()});
    if (cfg_.rotor_port_spread > 1) {
      cfg_.allow_rail_multihop = true;
      if (cfg_.max_multihop_hops == 0) cfg_.max_multihop_hops = 2;
    }
  } else {
    cfg_.rotor_port_spread = 1;
  }

  // Scale-up links are created on first use (nvl_in/nvl_out): only the id
  // tables are sized here, so idle nodes cost 8 bytes of ids each instead
  // of two solver-visible fluid links.
  const int n = n_gpus();
  nvl_in_.assign(static_cast<std::size_t>(n), LinkId{});
  nvl_out_.assign(static_cast<std::size_t>(n), LinkId{});

  const int rails = n_rails();
  if (photonic()) {
    rail_ocs_.reserve(static_cast<std::size_t>(rails));
    for (int r = 0; r < rails; ++r) {
      rail_ocs_.push_back(std::make_unique<OpticalCircuitSwitch>(
          sim_, net_, cfg_.n_nodes * cfg_.nic_ports, cfg_.port_bw(),
          cfg_.rail_latency, cfg_.ocs_reconfig_delay,
          "rail" + std::to_string(r)));
      // Fault plumbing: traffic on a circuit killed mid-run is rescued here
      // (no-op abort when fault tolerance is off), and every topology change
      // re-attempts parked transfers (immediate return while none exist).
      OpticalCircuitSwitch* sw = rail_ocs_.back().get();
      sw->set_flow_rescuer([this](FlowId f) { rescue_flow(f); });
      sw->set_topology_listener([this] { retry_parked(); });
    }
    if (cfg_.fabric == FabricKind::kRotor) {
      ensure(cfg_.n_nodes >= 2, "a rotor fabric needs at least two nodes");
      if (!cfg_.defer_fabric_wiring) {
        // Legacy eager pre-wiring (compat flag): every rail starts on
        // rotation round 0 before any transport exists. The default lazy
        // path skips this — the RotorTransport wires its own span's round-0
        // matchings at construction (and skips the force when they are
        // already live), so eager and lazy runs are bit-identical.
        for (int r = 0; r < rails; ++r) {
          rail_ocs_[static_cast<std::size_t>(r)]->force_circuits(
              rotor_matching_circuits(RailId{r}, 0));
        }
      }
    }
  } else {
    rail_electrical_.reserve(static_cast<std::size_t>(rails));
    for (int r = 0; r < rails; ++r) {
      rail_electrical_.push_back(std::make_unique<ElectricalSwitch>(
          net_, cfg_.n_nodes, cfg_.nic_total_bw,
          cfg_.electrical_hop_latency, "rail" + std::to_string(r)));
    }
  }

  if (cfg_.mgmt_bw.positive()) {
    mgmt_ = std::make_unique<ElectricalSwitch>(net_, n, cfg_.mgmt_bw,
                                               cfg_.mgmt_latency, "mgmt");
  }
}

NodeId Cluster::node_of(GpuId g) const {
  ensure(g.valid() && g.value() < n_gpus(), "invalid GPU id");
  return NodeId{g.value() / cfg_.gpus_per_node};
}

int Cluster::local_rank(GpuId g) const {
  ensure(g.valid() && g.value() < n_gpus(), "invalid GPU id");
  return g.value() % cfg_.gpus_per_node;
}

GpuId Cluster::gpu_at(NodeId n, int local) const {
  ensure(n.valid() && n.value() < cfg_.n_nodes, "invalid node id");
  ensure(local >= 0 && local < cfg_.gpus_per_node, "invalid local rank");
  return GpuId{n.value() * cfg_.gpus_per_node + local};
}

PortId Cluster::ocs_port(GpuId g, int nic_port) const {
  ensure(nic_port >= 0 && nic_port < cfg_.nic_ports, "invalid NIC port");
  return PortId{node_of(g).value() * cfg_.nic_ports + nic_port};
}

GpuId Cluster::gpu_of_ocs_port(RailId rail, PortId port) const {
  ensure(rail.valid() && rail.value() < n_rails(), "invalid rail");
  ensure(port.valid() && port.value() < cfg_.n_nodes * cfg_.nic_ports,
         "invalid OCS port");
  return gpu_at(NodeId{port.value() / cfg_.nic_ports}, rail.value());
}

int Cluster::nic_port_of_ocs_port(PortId port) const {
  ensure(port.valid() && port.value() < cfg_.n_nodes * cfg_.nic_ports,
         "invalid OCS port");
  return port.value() % cfg_.nic_ports;
}

OpticalCircuitSwitch& Cluster::ocs(RailId rail) {
  ensure(photonic(), "ocs(): cluster has electrical rails");
  ensure(rail.valid() && rail.value() < n_rails(), "invalid rail");
  return *rail_ocs_[static_cast<std::size_t>(rail.value())];
}

const OpticalCircuitSwitch& Cluster::ocs(RailId rail) const {
  ensure(photonic(), "ocs(): cluster has electrical rails");
  ensure(rail.valid() && rail.value() < n_rails(), "invalid rail");
  return *rail_ocs_[static_cast<std::size_t>(rail.value())];
}

std::int64_t Cluster::total_ocs_reconfigurations() const {
  std::int64_t total = 0;
  for (int r = 0; r < n_rails(); ++r) {
    total += ocs(RailId{r}).stats().reconfigurations;
  }
  return total;
}

TimeNs Cluster::total_ocs_dark_time() const {
  TimeNs total = 0;
  for (int r = 0; r < n_rails(); ++r) {
    total += ocs(RailId{r}).stats().cumulative_port_dark_ns;
  }
  return total;
}

int Cluster::rotor_rounds() const {
  ensure(cfg_.fabric == FabricKind::kRotor, "rotor_rounds: not a rotor fabric");
  return rotor_rounds_for(cfg_.n_nodes);
}

std::vector<CircuitRequest> Cluster::rotor_matching_circuits(RailId rail,
                                                             int round) const {
  return rotor_matching_circuits(rail, round, NodeSpan{0, cfg_.n_nodes});
}

std::vector<CircuitRequest> Cluster::rotor_matching_circuits(
    RailId rail, int round, NodeSpan span) const {
  ensure(cfg_.fabric == FabricKind::kRotor,
         "rotor_matching_circuits: not a rotor fabric");
  ensure(rail.valid() && rail.value() < n_rails(), "invalid rail");
  check_span(span);
  ensure(span.count >= 2, "a rotor span needs at least two nodes");
  const int rounds = rotor_rounds_for(span.count);
  ensure(round >= 0 && round < rounds, "invalid rotor round");
  // A small span's cycle may be shorter than the fleet-wide spread.
  const int spread = std::min(cfg_.rotor_port_spread, rounds);
  std::vector<CircuitRequest> circuits;
  for (int p = 0; p < cfg_.nic_ports; ++p) {
    const int m = (round + p % spread) % rounds;
    for (const auto& [a, b] : round_robin_matching(span.count, m)) {
      const GpuId ga = gpu_at(NodeId{span.first + a}, rail.value());
      const GpuId gb = gpu_at(NodeId{span.first + b}, rail.value());
      circuits.push_back({ocs_port(ga, p), ocs_port(gb, p)});
    }
  }
  return circuits;
}

void Cluster::check_span(NodeSpan span) const {
  ensure(span.first >= 0 && span.count >= 1 && span.end() <= cfg_.n_nodes,
         "node span out of cluster range");
}

std::vector<PortId> Cluster::span_ports(NodeSpan span) const {
  check_span(span);
  std::vector<PortId> ports;
  ports.reserve(static_cast<std::size_t>(span.count * cfg_.nic_ports));
  for (int node = span.first; node < span.end(); ++node) {
    for (int p = 0; p < cfg_.nic_ports; ++p) {
      ports.push_back(PortId{node * cfg_.nic_ports + p});
    }
  }
  return ports;
}

const Cluster::TenantSpan* Cluster::find_tenant_span(int node) const {
  // Sorted, non-overlapping store: the candidate is the last entry starting
  // at or before `node`.
  const auto it = std::upper_bound(
      tenant_spans_.begin(), tenant_spans_.end(), node,
      [](int n, const TenantSpan& t) { return n < t.span.first; });
  if (it == tenant_spans_.begin()) return nullptr;
  const TenantSpan& cand = *std::prev(it);
  return cand.span.contains(node) ? &cand : nullptr;
}

void Cluster::assign_tenant(int tenant, NodeSpan span) {
  check_span(span);
  ensure(tenant >= 0, "tenant id must be non-negative");
  tenant_accounting_ = true;
  const auto it = std::lower_bound(
      tenant_spans_.begin(), tenant_spans_.end(), span.first,
      [](const TenantSpan& t, int first) { return t.span.first < first; });
  ensure(it == tenant_spans_.end() || span.end() <= it->span.first,
         "assign_tenant: node already owned by another tenant");
  ensure(it == tenant_spans_.begin() ||
             std::prev(it)->span.end() <= span.first,
         "assign_tenant: node already owned by another tenant");
  tenant_spans_.insert(it, TenantSpan{span, tenant, ++tenant_generation_});
  if (photonic()) {
    const std::vector<PortId> ports = span_ports(span);
    for (int r = 0; r < n_rails(); ++r) {
      for (PortId p : ports) ocs(RailId{r}).set_port_owner(p, tenant);
    }
  }
}

void Cluster::release_tenant(NodeSpan span) {
  check_span(span);
  ensure(!tenant_spans_.empty(), "release_tenant: no tenants assigned");
  // The released range must tile exactly onto whole assigned spans (one or
  // several, back to back): partial releases would shear a tenant's span.
  const auto first = std::lower_bound(
      tenant_spans_.begin(), tenant_spans_.end(), span.first,
      [](const TenantSpan& t, int f) { return t.span.first < f; });
  ensure(first != tenant_spans_.end() && first->span.first == span.first,
         "release_tenant: node is not tenanted");
  auto last = first;
  int cursor = span.first;
  while (last != tenant_spans_.end() && last->span.first == cursor &&
         last->span.end() <= span.end()) {
    cursor = last->span.end();
    ++last;
  }
  ensure(cursor == span.end(),
         "release_tenant: span does not tile onto assigned tenant spans");
  tenant_spans_.erase(first, last);
  ++tenant_generation_;
  if (photonic()) {
    const std::vector<PortId> ports = span_ports(span);
    for (int r = 0; r < n_rails(); ++r) {
      auto& sw = ocs(RailId{r});
      // Tear down the tenant's leftover circuits (the rotor's last matching,
      // the static ring, Opus's final layout) so the next occupant starts on
      // virgin ports and no later establish can touch a foreign port.
      sw.clear_circuits_on(ports);
      for (PortId p : ports) {
        sw.set_port_owner(p, OpticalCircuitSwitch::kUnowned);
      }
    }
  }
}

int Cluster::tenant_of(NodeId node) const {
  ensure(node.valid() && node.value() < cfg_.n_nodes, "invalid node id");
  const TenantSpan* t = find_tenant_span(node.value());
  return t == nullptr ? kNoTenant : t->tenant;
}

Bytes Cluster::tenant_bytes_on_route(int tenant, Route r) const {
  const auto it = tenant_route_bytes_.find(tenant);
  if (it == tenant_route_bytes_.end()) return 0;
  return it->second[static_cast<std::size_t>(r)];
}

TimeNs Cluster::ocs_dark_time_in_span(NodeSpan span) const {
  ensure(photonic(), "ocs_dark_time_in_span: cluster has electrical rails");
  TimeNs total = 0;
  const std::vector<PortId> ports = span_ports(span);
  for (int r = 0; r < n_rails(); ++r) {
    for (PortId p : ports) total += ocs(RailId{r}).port_dark_time(p);
  }
  return total;
}

void Cluster::quiesce_span_ports(NodeSpan span, std::function<void()> cb) {
  check_span(span);
  if (!photonic()) {
    if (cb) cb();
    return;
  }
  // One waiter per rail with a shared countdown. A span port can only go
  // dark again through its owner's control plane, which the caller has shut
  // down, so the countdown is monotone.
  const std::vector<PortId> ports = span_ports(span);
  auto remaining = std::make_shared<int>(n_rails());
  auto done = std::make_shared<std::function<void()>>(std::move(cb));
  for (int r = 0; r < n_rails(); ++r) {
    ocs(RailId{r}).call_when_undark(ports, [remaining, done] {
      if (--*remaining == 0 && *done) (*done)();
    });
  }
}

Cluster::Route Cluster::route_for(GpuId src, GpuId dst) const {
  if (src == dst) return Route::kLoopback;
  if (same_node(src, dst)) return Route::kScaleUp;
  if (local_rank(src) == local_rank(dst)) return Route::kRail;
  return Route::kPxn;
}

// The three circuit-reachability scans below are the rotor transport's inner
// loop (every send and every post-rotation flush walks them per NIC port),
// so they run on raw index arithmetic and the OCS's check-free live_peer()
// instead of the PortId/GpuId wrapper accessors — same predicate, no
// per-port ensure or optional traffic.

std::vector<LinkId> Cluster::live_circuit_links(GpuId src, GpuId dst) const {
  ensure(photonic(), "live_circuit_links: cluster has electrical rails");
  const auto& sw = ocs(rail_of(src));
  const int rank = src.value() % cfg_.gpus_per_node;
  const int base = (src.value() / cfg_.gpus_per_node) * cfg_.nic_ports;
  std::vector<LinkId> out;
  for (int p = 0; p < cfg_.nic_ports; ++p) {
    const std::int32_t q = sw.live_peer(base + p);
    if (q < 0) continue;
    if (q / cfg_.nic_ports * cfg_.gpus_per_node + rank != dst.value()) continue;
    out.push_back(sw.live_tx_link(base + p));
  }
  return out;
}

bool Cluster::has_live_circuit(GpuId src, GpuId dst) const {
  const auto& sw = ocs(rail_of(src));
  const int rank = src.value() % cfg_.gpus_per_node;
  const int base = (src.value() / cfg_.gpus_per_node) * cfg_.nic_ports;
  for (int p = 0; p < cfg_.nic_ports; ++p) {
    const std::int32_t q = sw.live_peer(base + p);
    if (q >= 0 &&
        q / cfg_.nic_ports * cfg_.gpus_per_node + rank == dst.value()) {
      return true;
    }
  }
  return false;
}

GpuId Cluster::two_hop_via(GpuId src, GpuId dst) const {
  const auto& sw = ocs(rail_of(src));
  const int rank = src.value() % cfg_.gpus_per_node;
  const int base = (src.value() / cfg_.gpus_per_node) * cfg_.nic_ports;
  for (int p = 0; p < cfg_.nic_ports; ++p) {
    const std::int32_t q = sw.live_peer(base + p);
    if (q < 0) continue;
    const GpuId via{q / cfg_.nic_ports * cfg_.gpus_per_node + rank};
    if (via == dst || via == src) continue;
    if (has_live_circuit(via, dst)) return via;
  }
  return GpuId{};
}

bool Cluster::rail_path_available(GpuId src, GpuId dst) const {
  ensure(local_rank(src) == local_rank(dst),
         "rail_path_available: GPUs are on different rails");
  if (!photonic()) return true;
  if (has_live_circuit(src, dst)) return true;
  if (!cfg_.allow_rail_multihop) return false;
  if (cfg_.max_multihop_hops == 2) return two_hop_via(src, dst).valid();
  return rail_multihop_path(src, dst).size() >= 2;
}

void Cluster::account(Route r, GpuId src, Bytes bytes) {
  route_bytes_[static_cast<std::size_t>(r)] += bytes;
  if (!tenant_accounting_) return;
  const TenantSpan* t = find_tenant_span(src.value() / cfg_.gpus_per_node);
  if (t == nullptr) return;
  tenant_route_bytes_[t->tenant][static_cast<std::size_t>(r)] += bytes;
}

Bytes Cluster::bytes_on_route(Route r) const {
  return route_bytes_[static_cast<std::size_t>(r)];
}

LinkId Cluster::nvl_in(GpuId g) {
  LinkId& id = nvl_in_[static_cast<std::size_t>(g.value())];
  if (!id.valid()) {
    id = net_.add_link(cfg_.nvlink_bw,
                       "nvl_in:" + std::to_string(g.value()));
  }
  return id;
}

LinkId Cluster::nvl_out(GpuId g) {
  LinkId& id = nvl_out_[static_cast<std::size_t>(g.value())];
  if (!id.valid()) {
    id = net_.add_link(cfg_.nvlink_bw,
                       "nvl_out:" + std::to_string(g.value()));
  }
  return id;
}

void Cluster::transfer_scale_up(GpuId src, GpuId dst, Bytes bytes,
                                std::function<void()> on_complete) {
  account(Route::kScaleUp, src, bytes);
  net_.start_flow({nvl_out(src), nvl_in(dst)}, bytes, cfg_.nvlink_latency,
                  std::move(on_complete));
}

std::vector<GpuId> Cluster::rail_multihop_path(GpuId src, GpuId dst) const {
  ensure(photonic(), "rail_multihop_path: cluster has electrical rails");
  ensure(local_rank(src) == local_rank(dst),
         "rail_multihop_path: GPUs are on different rails");
  if (cfg_.max_multihop_hops == 2) {
    // Capped-forwarding fast path (the rotor): no O(n_nodes) BFS state.
    if (has_live_circuit(src, dst)) return {src, dst};
    const GpuId via = two_hop_via(src, dst);
    if (via.valid()) return {src, via, dst};
    return {};
  }
  const RailId rail = rail_of(src);
  const auto& sw = ocs(rail);
  // BFS over nodes through live circuits, depth-limited when the fabric
  // caps forwarding. Visited state lives in epoch-stamped scratch arrays
  // (allocated on the first BFS, so fabrics that never take this path pay
  // nothing) — per query the search touches only reached nodes, not O(n).
  const int n = cfg_.n_nodes;
  if (bfs_prev_.size() != static_cast<std::size_t>(n)) {
    bfs_prev_.assign(static_cast<std::size_t>(n), -2);
    bfs_epoch_.assign(static_cast<std::size_t>(n), 0);
  }
  const std::uint64_t epoch = ++bfs_epoch_counter_;
  const auto visited = [&](int node) {
    return bfs_epoch_[static_cast<std::size_t>(node)] == epoch;
  };
  const auto visit = [&](int node, int from) {
    bfs_epoch_[static_cast<std::size_t>(node)] = epoch;
    bfs_prev_[static_cast<std::size_t>(node)] = from;
  };
  std::vector<int> frontier{node_of(src).value()};
  visit(node_of(src).value(), -1);
  const int target = node_of(dst).value();
  int depth = 0;
  while (!frontier.empty() && !visited(target)) {
    if (cfg_.max_multihop_hops > 0 && ++depth > cfg_.max_multihop_hops) {
      return {};
    }
    std::vector<int> next;
    for (int node : frontier) {
      const GpuId g = gpu_at(NodeId{node}, rail.value());
      for (int p = 0; p < cfg_.nic_ports; ++p) {
        const PortId port = ocs_port(g, p);
        const auto peer = sw.peer(port);
        if (!peer || !sw.connected(port, *peer)) continue;
        const int peer_node = peer->value() / cfg_.nic_ports;
        if (visited(peer_node)) continue;
        visit(peer_node, node);
        next.push_back(peer_node);
      }
    }
    frontier = std::move(next);
  }
  if (!visited(target)) return {};
  std::vector<GpuId> path;
  for (int node = target; node != -1;
       node = bfs_prev_[static_cast<std::size_t>(node)]) {
    path.push_back(gpu_at(NodeId{node}, rail.value()));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void Cluster::transfer_rail(GpuId src, GpuId dst, Bytes bytes,
                            std::function<void()> on_complete) {
  if (photonic() && cfg_.allow_rail_multihop &&
      live_circuit_links(src, dst).empty()) {
    // No direct circuit: forward store-and-forward through intermediate
    // same-rail GPUs over live circuits (§5). The per-hop accounting below
    // exposes the bandwidth tax.
    const std::vector<GpuId> path = rail_multihop_path(src, dst);
    if (path.size() < 2) {
      if (fault_tolerant_) {
        // Destination currently unreachable (failure cut every live path):
        // charge the logical payload once and park — a repair or the next
        // reconfiguration retries it.
        account(Route::kRailMultiHop, src, bytes);
        account(Route::kRail, src, bytes);
        parked_.push_back({src, dst, bytes,
                           std::make_shared<std::function<void()>>(
                               std::move(on_complete))});
        return;
      }
      ensure(false,
             "photonic rail transfer: destination unreachable through live "
             "circuits even with multi-hop forwarding");
    }
    account(Route::kRailMultiHop, src, bytes);
    // Chain the hops back to front so each callback launches the next.
    std::function<void()> chain = std::move(on_complete);
    for (std::size_t i = path.size() - 1; i >= 1; --i) {
      const GpuId hop_src = path[i - 1];
      const GpuId hop_dst = path[i];
      chain = [this, hop_src, hop_dst, bytes, next = std::move(chain)] {
        transfer_rail_hop(hop_src, hop_dst, bytes, next);
      };
    }
    chain();
    return;
  }
  transfer_rail_hop(src, dst, bytes, std::move(on_complete));
}

void Cluster::transfer_rail_hop(GpuId src, GpuId dst, Bytes bytes,
                                std::function<void()> on_complete) {
  account(Route::kRail, src, bytes);
  if (!photonic()) {
    const auto& sw =
        *rail_electrical_[static_cast<std::size_t>(local_rank(src))];
    net_.start_flow({sw.uplink(node_of(src).value()),
                     sw.downlink(node_of(dst).value())},
                    bytes, cfg_.rail_latency + sw.hop_latency(),
                    std::move(on_complete));
    return;
  }
  start_rail_circuit_flows(src, dst, bytes, std::move(on_complete));
}

void Cluster::start_rail_circuit_flows(GpuId src, GpuId dst, Bytes bytes,
                                       std::function<void()> on_complete) {
  const std::vector<LinkId> circuits = live_circuit_links(src, dst);
  if (circuits.empty()) {
    if (fault_tolerant_) {
      // The circuit died between path selection and issue (or a rescue
      // raced a second failure): park until the topology changes.
      parked_.push_back({src, dst, bytes,
                         std::make_shared<std::function<void()>>(
                             std::move(on_complete))});
      return;
    }
    ensure(false,
           "photonic rail transfer without a live circuit: the control plane "
           "must reconfigure the rail before communication starts");
  }
  if (!fault_tolerant_) {
    if (circuits.size() == 1) {
      net_.start_flow({circuits[0]}, bytes, cfg_.rail_latency,
                      std::move(on_complete));
      return;
    }
    // Stripe across parallel circuits; complete when every stripe lands.
    const auto n = static_cast<Bytes>(circuits.size());
    auto pending = std::make_shared<int>(static_cast<int>(n));
    auto done = std::make_shared<std::function<void()>>(std::move(on_complete));
    for (std::size_t i = 0; i < circuits.size(); ++i) {
      const Bytes stripe =
          bytes / n + (static_cast<Bytes>(i) < bytes % n ? 1 : 0);
      net_.start_flow({circuits[i]}, stripe, cfg_.rail_latency,
                      [pending, done] {
                        if (--*pending == 0 && *done) (*done)();
                      });
    }
    return;
  }
  // Fault-tolerant: the same single/striped flows, but each one registered
  // so a mid-flight circuit failure can rescue its remaining bytes. Identical
  // flow shapes and timing — the registry is bookkeeping, not a data path.
  if (circuits.size() == 1) {
    track_rail_flow(circuits[0], src, dst, bytes,
                    std::make_shared<std::function<void()>>(
                        std::move(on_complete)));
    return;
  }
  const auto n = static_cast<Bytes>(circuits.size());
  auto pending = std::make_shared<int>(static_cast<int>(n));
  auto done = std::make_shared<std::function<void()>>(std::move(on_complete));
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const Bytes stripe =
        bytes / n + (static_cast<Bytes>(i) < bytes % n ? 1 : 0);
    track_rail_flow(circuits[i], src, dst, stripe,
                    std::make_shared<std::function<void()>>([pending, done] {
                      if (--*pending == 0 && *done) (*done)();
                    }));
  }
}

void Cluster::track_rail_flow(LinkId link, GpuId src, GpuId dst, Bytes bytes,
                              std::shared_ptr<std::function<void()>> done) {
  // The completion learns its own registry key through a shared cell written
  // after start_flow returns — safe because flows never complete
  // synchronously (even zero-byte flows deliver via a scheduled event).
  auto key = std::make_shared<std::uint64_t>(0);
  const FlowId f =
      net_.start_flow({link}, bytes, cfg_.rail_latency, [this, key, done] {
        rescuable_.erase(*key);
        if (*done) (*done)();
        // A completed flow frees its circuit: that is exactly the moment a
        // parked transfer's emergency-steal escalation can find an idle
        // port pair, so give stranded traffic another chance (no-op while
        // nothing is parked).
        retry_parked();
      });
  *key = f.value();
  rescuable_.emplace(f.value(), RescuableFlow{src, dst, std::move(done)});
}

void Cluster::rescue_flow(FlowId f) {
  const auto it = rescuable_.find(f.value());
  if (it == rescuable_.end()) {
    // Untracked (the owner opted out of fault tolerance): abort outright.
    net_.abort_flow(f);
    return;
  }
  const RescuableFlow ctx = it->second;
  const Bytes remaining = net_.flow_remaining(f);
  net_.abort_flow(f);
  rescuable_.erase(it);
  ++rescued_flows_;
  resend_rescued(ctx.src, ctx.dst, remaining, ctx.done);
}

void Cluster::resend_rescued(GpuId src, GpuId dst, Bytes bytes,
                             std::shared_ptr<std::function<void()>> done) {
  // The logical payload was charged at original issue; every rescue path
  // below is unaccounted so conservation sees each byte exactly once.
  if (has_live_circuit(src, dst)) {
    start_rail_circuit_flows(src, dst, bytes,
                             [done] { if (*done) (*done)(); });
    return;
  }
  // Degraded continuation: forward over surviving circuits even on fabrics
  // that normally forbid multi-hop (Opus re-plans future collectives, but
  // in-flight bytes cannot wait for the next layout).
  const std::vector<GpuId> path = rail_multihop_path(src, dst);
  if (path.size() >= 2) {
    std::function<void()> chain = [done] { if (*done) (*done)(); };
    for (std::size_t i = path.size() - 1; i >= 1; --i) {
      const GpuId hop_src = path[i - 1];
      const GpuId hop_dst = path[i];
      chain = [this, hop_src, hop_dst, bytes, next = std::move(chain)] {
        start_rail_circuit_flows(hop_src, hop_dst, bytes, next);
      };
    }
    chain();
    return;
  }
  if (try_emergency_circuit(src, dst) && has_live_circuit(src, dst)) {
    start_rail_circuit_flows(src, dst, bytes,
                             [done] { if (*done) (*done)(); });
    return;
  }
  parked_.push_back({src, dst, bytes, std::move(done)});
}

bool Cluster::try_emergency_circuit(GpuId src, GpuId dst) {
  if (cfg_.fabric != FabricKind::kOpusPhotonic) return false;
  auto& sw = ocs(rail_of(src));
  // First choice: a completely unused (peerless) port on each endpoint.
  // Escalation: steal a healthy port whose circuit is established but
  // carries no active flows in either direction. Under churn a node's whole
  // port budget can end up wired into stale circuits that no longer serve
  // the parked transfer; without the steal it would strand forever. The
  // owner is unharmed — its next controller request re-establishes whatever
  // it still needs (the satisfied() check sees the stolen pair).
  const auto spare = [&](GpuId g, bool allow_steal) -> PortId {
    const int base = node_of(g).value() * cfg_.nic_ports;
    for (int p = 0; p < cfg_.nic_ports; ++p) {
      const PortId port{base + p};
      if (sw.failed(port) || sw.dark(port) || sw.peer(port)) continue;
      return port;
    }
    if (!allow_steal) return PortId{};
    for (int p = 0; p < cfg_.nic_ports; ++p) {
      const PortId port{base + p};
      if (sw.failed(port) || sw.dark(port)) continue;
      const auto peer = sw.peer(port);
      if (!peer || sw.failed(*peer) || sw.dark(*peer)) continue;
      if (net_.active_flows_on(sw.link(port, *peer)) == 0 &&
          net_.active_flows_on(sw.link(*peer, port)) == 0) {
        return port;
      }
    }
    return PortId{};
  };
  for (const bool steal : {false, true}) {
    const PortId sp = spare(src, steal);
    const PortId dp = spare(dst, steal);
    if (!sp.valid() || !dp.valid() || sp == dp) continue;
    if (sw.port_owner(sp) != sw.port_owner(dp)) continue;
    // Fires the topology listener; retry_parked is reentrancy-guarded.
    sw.force_circuits({{sp, dp}});
    return true;
  }
  return false;
}

void Cluster::retry_parked() {
  if (retrying_parked_ || parked_.empty()) return;
  retrying_parked_ = true;
  std::vector<ParkedTransfer> waiting;
  waiting.swap(parked_);
  for (ParkedTransfer& t : waiting) {
    resend_rescued(t.src, t.dst, t.bytes, std::move(t.done));
  }
  retrying_parked_ = false;
}

int Cluster::parked_rail_transfers(int rail, NodeSpan span) const {
  int n = 0;
  for (const ParkedTransfer& t : parked_) {
    if (t.src.value() % cfg_.gpus_per_node != rail) continue;
    if (!span.contains(t.src.value() / cfg_.gpus_per_node)) continue;
    ++n;
  }
  return n;
}

int Cluster::rail_span_active_flows(RailId rail, NodeSpan span) const {
  ensure(photonic(), "rail_span_active_flows: cluster has electrical rails");
  check_span(span);
  const auto& sw = ocs(rail);
  int n = 0;
  for (int node = span.first; node < span.end(); ++node) {
    for (int p = 0; p < cfg_.nic_ports; ++p) {
      const LinkId l = sw.live_tx_link(node * cfg_.nic_ports + p);
      if (l.valid()) n += net_.active_flows_on(l);
    }
  }
  return n;
}

void Cluster::fail_nic_port(NodeId node, int rail, int slot) {
  ensure(node.valid() && node.value() < cfg_.n_nodes, "invalid node id");
  ensure(rail >= 0 && rail < n_rails(), "invalid rail");
  ensure(slot >= 0 && slot < cfg_.nic_ports, "invalid NIC port slot");
  if (nic_port_failed(node, rail, slot)) return;  // idempotent
  if (photonic()) {
    ocs(RailId{rail}).fail_port(PortId{node.value() * cfg_.nic_ports + slot},
                                /*force=*/true);
  } else {
    const auto key =
        static_cast<std::int64_t>(node.value()) * n_rails() + rail;
    electrical_failed_[key] |= 1u << slot;
    apply_electrical_degrade(node, rail);
  }
  if (fault_listener_) fault_listener_({node, rail, slot, true});
}

void Cluster::repair_nic_port(NodeId node, int rail, int slot) {
  ensure(node.valid() && node.value() < cfg_.n_nodes, "invalid node id");
  ensure(rail >= 0 && rail < n_rails(), "invalid rail");
  ensure(slot >= 0 && slot < cfg_.nic_ports, "invalid NIC port slot");
  if (!nic_port_failed(node, rail, slot)) return;  // idempotent
  if (photonic()) {
    // repair_port fires the topology listener, so parked traffic retries
    // before the fault listener reacts at fleet scope.
    ocs(RailId{rail}).repair_port(
        PortId{node.value() * cfg_.nic_ports + slot});
  } else {
    const auto key =
        static_cast<std::int64_t>(node.value()) * n_rails() + rail;
    const auto it = electrical_failed_.find(key);
    it->second &= ~(1u << slot);
    if (it->second == 0) electrical_failed_.erase(it);
    apply_electrical_degrade(node, rail);
  }
  if (fault_listener_) fault_listener_({node, rail, slot, false});
}

void Cluster::fail_rail(NodeId node, int rail) {
  for (int p = 0; p < cfg_.nic_ports; ++p) fail_nic_port(node, rail, p);
}

bool Cluster::nic_port_failed(NodeId node, int rail, int slot) const {
  ensure(node.valid() && node.value() < cfg_.n_nodes, "invalid node id");
  ensure(rail >= 0 && rail < n_rails(), "invalid rail");
  ensure(slot >= 0 && slot < cfg_.nic_ports, "invalid NIC port slot");
  if (photonic()) {
    return ocs(RailId{rail}).failed(
        PortId{node.value() * cfg_.nic_ports + slot});
  }
  const auto it = electrical_failed_.find(
      static_cast<std::int64_t>(node.value()) * n_rails() + rail);
  return it != electrical_failed_.end() && ((it->second >> slot) & 1u) != 0;
}

int Cluster::live_nic_ports(NodeId node, int rail) const {
  int live = 0;
  for (int p = 0; p < cfg_.nic_ports; ++p) {
    if (!nic_port_failed(node, rail, p)) ++live;
  }
  return live;
}

bool Cluster::node_disconnected(NodeId node) const {
  for (int r = 0; r < n_rails(); ++r) {
    if (live_nic_ports(node, r) == 0) return true;
  }
  return false;
}

void Cluster::apply_electrical_degrade(NodeId node, int rail) {
  auto& sw = *rail_electrical_[static_cast<std::size_t>(rail)];
  const double scale =
      static_cast<double>(live_nic_ports(node, rail)) / cfg_.nic_ports;
  sw.set_endpoint_capacity_scale(node.value(), scale);
}

void Cluster::abort_span_traffic(NodeSpan span) {
  check_span(span);
  // Tracked rescuable flows touching the span first: this covers zero-byte
  // flows, which never attach to links and are invisible to per-link sweeps.
  if (!rescuable_.empty()) {
    std::vector<std::uint64_t> doomed;
    for (const auto& [key, ctx] : rescuable_) {
      if (span.contains(ctx.src.value() / cfg_.gpus_per_node) ||
          span.contains(ctx.dst.value() / cfg_.gpus_per_node)) {
        doomed.push_back(key);
      }
    }
    for (const std::uint64_t key : doomed) {
      net_.abort_flow(FlowId{key});
      rescuable_.erase(key);
    }
  }
  // Link-attached traffic. Tenant isolation keeps a span's circuits inside
  // the span, so sweeping each span node's tx direction covers both ends.
  for (int node = span.first; node < span.end(); ++node) {
    if (photonic()) {
      for (int r = 0; r < n_rails(); ++r) {
        const auto& sw = ocs(RailId{r});
        for (int p = 0; p < cfg_.nic_ports; ++p) {
          const LinkId l = sw.live_tx_link(node * cfg_.nic_ports + p);
          if (l.valid()) net_.abort_flows_on(l);
        }
      }
    } else {
      for (int r = 0; r < n_rails(); ++r) {
        const auto& sw = *rail_electrical_[static_cast<std::size_t>(r)];
        const LinkId up = sw.peek_uplink(node);
        const LinkId down = sw.peek_downlink(node);
        if (up.valid()) net_.abort_flows_on(up);
        if (down.valid()) net_.abort_flows_on(down);
      }
    }
    for (int local = 0; local < cfg_.gpus_per_node; ++local) {
      const GpuId g = gpu_at(NodeId{node}, local);
      const LinkId in = nvl_in_[static_cast<std::size_t>(g.value())];
      const LinkId out = nvl_out_[static_cast<std::size_t>(g.value())];
      if (in.valid()) net_.abort_flows_on(in);
      if (out.valid()) net_.abort_flows_on(out);
      if (mgmt_ != nullptr) {
        const LinkId mu = mgmt_->peek_uplink(g.value());
        const LinkId md = mgmt_->peek_downlink(g.value());
        if (mu.valid()) net_.abort_flows_on(mu);
        if (md.valid()) net_.abort_flows_on(md);
      }
    }
  }
  // Parked transfers touching the span never restart.
  std::erase_if(parked_, [&](const ParkedTransfer& t) {
    return span.contains(t.src.value() / cfg_.gpus_per_node) ||
           span.contains(t.dst.value() / cfg_.gpus_per_node);
  });
}

void Cluster::transfer(GpuId src, GpuId dst, Bytes bytes,
                       std::function<void()> on_complete) {
  ensure(bytes >= 0, "transfer size must be non-negative");
  switch (route_for(src, dst)) {
    case Route::kLoopback:
      if (on_complete) sim_.schedule_after(0, std::move(on_complete));
      return;
    case Route::kScaleUp:
      transfer_scale_up(src, dst, bytes, std::move(on_complete));
      return;
    case Route::kRail:
      transfer_rail(src, dst, bytes, std::move(on_complete));
      return;
    case Route::kPxn: {
      // PXN: forward over NVLink to the bridge GPU that shares the
      // destination's rail, then ride that rail. Store-and-forward at the
      // bridge: the rail hop starts when the NVLink hop delivered (this is
      // the latency + bandwidth tax the paper attributes to multiplexing
      // parallelisms over shared links).
      account(Route::kPxn, src, bytes);
      const GpuId bridge = gpu_at(node_of(src), local_rank(dst));
      transfer_scale_up(src, bridge, bytes,
                        [this, bridge, dst, bytes,
                         cb = std::move(on_complete)]() mutable {
                          transfer_rail(bridge, dst, bytes, std::move(cb));
                        });
      return;
    }
    case Route::kMgmt:
    case Route::kRailMultiHop:
      break;  // unreachable: route_for never returns these classes
  }
  ensure(false, "transfer: unhandled route");
}

void Cluster::transfer_mgmt(GpuId src, GpuId dst, Bytes bytes,
                            std::function<void()> on_complete) {
  ensure(mgmt_ != nullptr, "management network is not enabled");
  ensure(src != dst, "mgmt transfer requires distinct endpoints");
  account(Route::kMgmt, src, bytes);
  // mgmt_latency is the end-to-end host-network latency (stored as the
  // switch's hop latency at construction).
  net_.start_flow({mgmt_->uplink(src.value()), mgmt_->downlink(dst.value())},
                  bytes, mgmt_->hop_latency(), std::move(on_complete));
}

}  // namespace opus::net
