// Cluster topology: scale-up (NVLink) domains wired into a rail-optimized
// scale-out fabric, with the rails realized either by electrical packet
// switches (baseline) or by optical circuit switches (the paper's proposal).
//
// Addressing: GPU global rank = node * gpus_per_node + local_rank.
// Rail r connects the local-rank-r GPU of every node (Fig. 1 of the paper).
// Each GPU's NIC exposes `nic_ports` ports of nic_total_bw / nic_ports each
// (ConnectX-7 style 1x400G / 2x200G / 4x100G logical port configurations).
//
// Fabric contract (FabricKind): the fabric names both the switching hardware
// of the rails and the circuit discipline layered on top. kElectrical rails
// are packet switches (always fully connected); the three photonic fabrics
// share the same OCS hardware but differ in who reconfigures it and when:
// Opus reconfigures on demand (the control plane in src/core), a static ring
// is wired once pre-job and never again, and a rotor cycles through the
// round-robin matchings obliviously. The Cluster wires any pre-job topology
// the fabric requires (rotor round-0 matchings here; the static ring's
// circuits are wired by core::StaticRingTransport) and normalizes the
// multi-hop forwarding settings each fabric depends on — callers select a
// FabricKind and get a consistent cluster.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "net/electrical.h"
#include "net/fluid.h"
#include "net/ocs.h"
#include "sim/simulator.h"

namespace opus::net {

/// How the scale-out rails are physically switched (derived from the
/// fabric; see rail_kind_of).
enum class RailKind {
  kElectrical,  ///< packet switches: full any-to-any within a rail
  kPhotonic,    ///< OCS: one-to-one circuits, reconfigurable
};

/// The end-to-end scale-out fabric: switching hardware plus the circuit
/// discipline that decides which connections exist when. This is the single
/// topology selector that flows from ExperimentConfig down to the cluster —
/// one axis of the paper's comparison set (§3).
enum class FabricKind {
  kElectrical,    ///< packet-switched rails, no circuits (baseline)
  kOpusPhotonic,  ///< OCS rails, demand-driven reconfiguration (the paper)
  kStaticRing,    ///< OCS rails wired pre-job into a fixed ring; non-
                  ///< neighbour traffic multi-hops (TPUv4-style, §3)
  kRotor,         ///< OCS rails rotating through round-robin matchings,
                  ///< traffic-oblivious (RotorNet-style, §3)
};

/// Stable display name ("Electrical", "Opus", "StaticRing", "Rotor").
const char* fabric_name(FabricKind f);

/// The switching hardware a fabric runs on: kElectrical for packet rails,
/// kPhotonic for the three circuit-switched fabrics.
RailKind rail_kind_of(FabricKind f);

/// All four fabrics, in the paper's comparison order (for sweeps/benches).
inline constexpr FabricKind kAllFabrics[] = {
    FabricKind::kElectrical, FabricKind::kOpusPhotonic,
    FabricKind::kStaticRing, FabricKind::kRotor};

/// A contiguous run of nodes — the unit the fleet's placement engine carves
/// out of a shared cluster for one tenant job. {0, n_nodes} is the whole
/// cluster (the single-job special case).
struct NodeSpan {
  int first = 0;
  int count = 0;

  int end() const { return first + count; }
  bool contains(int node) const { return node >= first && node < end(); }
  friend bool operator==(const NodeSpan&, const NodeSpan&) = default;
};

/// Rotation-cycle length of a rotor over `n_nodes` nodes: the n-1 (even n)
/// or n (odd n) circle-method rounds that together connect every node pair
/// once. Span-independent helper so per-tenant sub-rotors can size their own
/// cycles.
int rotor_rounds_for(int n_nodes);

/// One NIC-port-level fault event, as reported to the fault listener: NIC
/// port `slot` of `node` on `rail` failed (or was repaired). On photonic
/// rails this is an OCS port; on electrical rails one lane of the node's
/// rail NIC (its bandwidth degrades proportionally).
struct NicFault {
  NodeId node;
  int rail = 0;
  int slot = 0;
  bool failed = true;  ///< false = repair
};

struct ClusterConfig {
  int n_nodes = 4;
  int gpus_per_node = 4;  ///< size of the scale-up domain == number of rails

  /// NIC logical port configuration facing the rail (C3 in the paper).
  int nic_ports = 2;
  Bandwidth nic_total_bw = Bandwidth::gbps(400);

  /// Scale-up interconnect: per-GPU injection/ejection bandwidth.
  Bandwidth nvlink_bw = Bandwidth::gbps(2400);  // NVLink3 ~300 GB/s per GPU
  TimeNs nvlink_latency = usecs(2);

  /// Propagation + transceiver latency of a rail path (no OEO for photonic).
  TimeNs rail_latency = usecs(2);
  /// Extra per-traversal latency of an electrical rail switch (OEO + ASIC).
  TimeNs electrical_hop_latency = usecs(1);

  FabricKind fabric = FabricKind::kOpusPhotonic;
  /// OCS technology reconfiguration latency (Table 3).
  TimeNs ocs_reconfig_delay = msecs(15);

  /// Optional host-based packet network for small/bursty traffic offload
  /// (paper §5). Zero bandwidth disables it.
  Bandwidth mgmt_bw = Bandwidth::gbps(0);
  TimeNs mgmt_latency = usecs(10);

  /// Photonic rails only: when no direct circuit exists, forward through
  /// intermediate GPUs of the same rail over live circuits (§5
  /// "multi-hopping through connected GPUs in the same rail"). Each hop is
  /// store-and-forward — the latency and bandwidth tax the paper warns
  /// about. Off by default for Opus (it reconfigures instead); the Cluster
  /// constructor force-enables it for kStaticRing (a fixed ring cannot
  /// serve non-neighbours any other way) and for kRotor when the port
  /// spread makes forwarding paths exist (see rotor_port_spread).
  bool allow_rail_multihop = false;

  /// Longest multi-hop forwarding path, in rail hops (0 = unbounded). The
  /// rotor caps this at 2 (RotorNet-style direct-or-two-hop routing); the
  /// static ring forwards arbitrarily far around the ring.
  int max_multihop_hops = 0;

  /// Lazy fabric wiring (the default): the constructor performs no pre-job
  /// wiring — each transport wires its own node span when it is built (the
  /// rotor's round-0 matchings, the static ring's circuits), so rails light
  /// up on first traffic and a whole-fabric matching never pre-connects
  /// ports across future tenant boundaries. Set to false to restore the
  /// legacy eager pre-wiring (the rotor's round-0 matchings forced at
  /// construction) — a compat flag kept so tests can pin lazy == eager.
  /// Fabric normalization (multi-hop settings) happens either way.
  bool defer_fabric_wiring = true;

  /// kRotor only: how many consecutive round-robin matchings are striped
  /// across the NIC ports. 1 (classic) points every port of a node at the
  /// same peer, so the live topology is a perfect matching and traffic
  /// waits for its round. 2+ puts matching `round + p` on port `p`, so the
  /// live topology is a union of matchings — connected — and non-matched
  /// pairs can forward over at most max_multihop_hops hops instead of
  /// waiting (RotorNet's direct-or-Valiant routing). Clamped to nic_ports
  /// and to the number of rotor rounds.
  int rotor_port_spread = 1;

  Bandwidth port_bw() const { return nic_total_bw / nic_ports; }
  int n_gpus() const { return n_nodes * gpus_per_node; }
};

/// The assembled cluster: topology queries plus a byte-transfer API used by
/// the collective executor. Routing policy (paper §2.1):
///  - same scale-up domain        -> NVLink
///  - same local rank (same rail) -> that rail (circuit or packet switch)
///  - cross-rank, cross-node      -> PXN: NVLink to the bridge GPU holding
///                                   the destination's local rank, then rail
class Cluster {
 public:
  /// Owns its FluidNetwork (the single-pod case).
  Cluster(sim::Simulator& sim, ClusterConfig cfg);
  /// Shares an externally owned FluidNetwork — the multi-pod case: several
  /// pod Clusters plus inter-pod trunks live on one data plane so cross-pod
  /// and intra-pod traffic genuinely contend (see net::MultiPodFabric).
  Cluster(sim::Simulator& sim, FluidNetwork& net, ClusterConfig cfg);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return cfg_; }
  int n_gpus() const { return cfg_.n_gpus(); }
  int n_nodes() const { return cfg_.n_nodes; }
  int gpus_per_node() const { return cfg_.gpus_per_node; }
  int n_rails() const { return cfg_.gpus_per_node; }

  NodeId node_of(GpuId g) const;
  int local_rank(GpuId g) const;
  RailId rail_of(GpuId g) const { return RailId{local_rank(g)}; }
  GpuId gpu_at(NodeId n, int local) const;
  bool same_node(GpuId a, GpuId b) const { return node_of(a) == node_of(b); }

  /// The OCS port of `g`'s NIC port `p` on g's rail OCS.
  PortId ocs_port(GpuId g, int nic_port) const;
  /// Inverse mapping: which GPU and NIC port sit behind an OCS port.
  GpuId gpu_of_ocs_port(RailId rail, PortId port) const;
  int nic_port_of_ocs_port(PortId port) const;

  sim::Simulator& sim() { return sim_; }
  FluidNetwork& network() { return net_; }
  const FluidNetwork& network() const { return net_; }

  /// Photonic only: the rail's OCS.
  OpticalCircuitSwitch& ocs(RailId rail);
  const OpticalCircuitSwitch& ocs(RailId rail) const;
  /// Fig. 8 aggregates over all rails (photonic only): reconfigurations
  /// that changed state, and the summed per-port darkness time. The same
  /// accounting serves demand-driven (Opus) and oblivious (rotor) fabrics.
  std::int64_t total_ocs_reconfigurations() const;
  TimeNs total_ocs_dark_time() const;
  FabricKind fabric() const { return cfg_.fabric; }
  bool photonic() const {
    return rail_kind_of(cfg_.fabric) == RailKind::kPhotonic;
  }
  bool has_mgmt_network() const { return mgmt_ != nullptr; }

  /// kRotor: length of the rotation cycle — the n-1 (even n) or n (odd n)
  /// circle-method rounds that together connect every node pair once.
  int rotor_rounds() const;
  /// kRotor: the circuit layout of rotation round `round` on `rail`. NIC
  /// port p carries matching `round + (p % rotor_port_spread)`, so a spread
  /// of 1 reproduces the classic single-matching rotor and a spread of 2+
  /// keeps the rail connected for bounded multi-hop forwarding. The Cluster
  /// constructor wires round 0; the RotorTransport drives the rotation.
  std::vector<CircuitRequest> rotor_matching_circuits(RailId rail,
                                                      int round) const;
  /// Span-scoped variant: the matchings of rotation round `round` over just
  /// the nodes of `span` (a tenant sub-rotor; matching ids are relative to
  /// span.first). The port spread is re-clamped to the span's own cycle
  /// length, so a 2-node tenant degrades to the classic single-matching
  /// rotor even when the fleet-wide spread is 2.
  std::vector<CircuitRequest> rotor_matching_circuits(RailId rail, int round,
                                                      NodeSpan span) const;

  // ---- multi-tenant node ownership (the fleet layer) ----------------------
  /// Tags every node of `span` (and its OCS ports on every rail) as owned by
  /// `tenant` (>= 0). The nodes must be untenanted. From then on transfer
  /// bytes sourced at those nodes are attributed to the tenant, and OCS
  /// circuits may never connect the tenant's ports to another tenant's.
  void assign_tenant(int tenant, NodeSpan span);
  /// Releases the span: clears node tags and OCS port owners, and tears
  /// down any remaining circuits on the span's ports (which must be
  /// quiescent — use quiesce_span_ports first). Per-tenant byte totals
  /// remain readable afterwards.
  void release_tenant(NodeSpan span);
  /// Tenant owning `node` (kNoTenant when unassigned).
  static constexpr int kNoTenant = -1;
  int tenant_of(NodeId node) const;
  /// Occupied entries in the span-indexed tenant store — proportional to
  /// *live tenants*, never to cluster size (the memory-proportionality tests
  /// pin this).
  std::size_t tenant_state_entries() const { return tenant_spans_.size(); }
  /// Generation stamp of the tenant store, bumped by every assign/release.
  /// A caller holding derived per-span state (cached reachability, port
  /// sets) revalidates against this instead of subscribing to callbacks.
  std::uint64_t tenant_state_generation() const { return tenant_generation_; }
  /// Photonic: cumulative dark time summed over the span's OCS ports on all
  /// rails (snapshot before/after a job to get its dark-time share).
  TimeNs ocs_dark_time_in_span(NodeSpan span) const;
  /// Photonic: fires `cb` once no OCS port of the span is dark on any rail
  /// (immediately when that already holds). Electrical: immediate.
  void quiesce_span_ports(NodeSpan span, std::function<void()> cb);
  /// The OCS ports of the span's nodes (identical set on every rail).
  std::vector<PortId> span_ports(NodeSpan span) const;

  enum class Route { kLoopback, kScaleUp, kRail, kPxn, kMgmt, kRailMultiHop };

  /// Bytes moved on route `r` whose source GPU sat on one of `tenant`'s
  /// nodes (attribution is per transfer hop, so a tenant's multi-hop
  /// forwarding charges the tenant itself).
  Bytes tenant_bytes_on_route(int tenant, Route r) const;
  /// The route class transfer() would use for src -> dst.
  Route route_for(GpuId src, GpuId dst) const;

  /// True iff a rail hop src -> dst can currently carry traffic: always for
  /// electrical rails; for photonic, some circuit from src to dst is live.
  bool rail_path_available(GpuId src, GpuId dst) const;

  /// Photonic: shortest path of same-rail GPUs from src to dst over live
  /// circuits (src and dst included). Empty when unreachable within
  /// max_multihop_hops rail hops (0 = unbounded).
  std::vector<GpuId> rail_multihop_path(GpuId src, GpuId dst) const;

  /// Moves `bytes` from src to dst; `on_complete` fires at delivery.
  /// Photonic rail hops require a live circuit (InvariantError otherwise) —
  /// the Opus control plane is responsible for establishing circuits first.
  /// Rail transfers stripe across all live circuits between src and dst.
  void transfer(GpuId src, GpuId dst, Bytes bytes,
                std::function<void()> on_complete);

  /// Sends over the host management network (must be enabled).
  void transfer_mgmt(GpuId src, GpuId dst, Bytes bytes,
                     std::function<void()> on_complete);

  /// Total bytes moved per route class (diagnostics / bandwidth-tax studies).
  Bytes bytes_on_route(Route r) const;

  // ---- runtime fault injection (failure/repair churn) ---------------------
  /// Fault-tolerant transfer mode: a photonic rail transfer that finds no
  /// live circuit parks instead of throwing, flows on a circuit killed by
  /// fail_nic_port are rescued (re-routed over surviving circuits, multi-hop
  /// if needed, else parked), and parked traffic retries on every topology
  /// change. Off by default — the legacy InvariantError contract stands, so
  /// fabrics without a fault process pay nothing.
  void set_fault_tolerant(bool on) { fault_tolerant_ = on; }
  bool fault_tolerant() const { return fault_tolerant_; }

  /// Fails NIC port `slot` of `node` on `rail`, mid-run: photonic rails tear
  /// the port's circuit and rescue/abort its flows (OCS fail_port, forced);
  /// electrical rails degrade the node's rail bandwidth to the surviving
  /// lane fraction. Fires the fault listener. Idempotent.
  void fail_nic_port(NodeId node, int rail, int slot);
  /// Repairs a failed NIC port: the port may carry circuits again (photonic;
  /// the old circuit is NOT restored — owners re-wire on their own schedule)
  /// or the lane's bandwidth returns (electrical). Fires the fault listener.
  void repair_nic_port(NodeId node, int rail, int slot);
  /// Fails every NIC port of `node` on `rail` (a whole-NIC/rail cut).
  void fail_rail(NodeId node, int rail);
  bool nic_port_failed(NodeId node, int rail, int slot) const;
  /// NIC ports of (node, rail) currently not failed.
  int live_nic_ports(NodeId node, int rail) const;
  /// True iff some rail of `node` has lost every NIC port — the node cannot
  /// reach that rail's fabric at all (the fleet's kill/re-place criterion).
  bool node_disconnected(NodeId node) const;

  /// Observer for fail/repair events (the fleet's reaction hook). One
  /// listener; called after the fabric state change has been applied.
  void set_fault_listener(std::function<void(const NicFault&)> cb) {
    fault_listener_ = std::move(cb);
  }

  /// Transfers parked by fault tolerance, fleet-wide / on one rail within
  /// `span` (the rotor's drain guard must not wait on parked traffic).
  int parked_transfer_count() const { return static_cast<int>(parked_.size()); }
  /// Flows rescued off dying circuits so far (re-routed or parked, not
  /// aborted). Telemetry gauge.
  std::int64_t rescued_flow_count() const { return rescued_flows_; }
  int parked_rail_transfers(int rail, NodeSpan span) const;
  /// Active fluid flows on the span's OCS circuits of `rail` (photonic).
  int rail_span_active_flows(RailId rail, NodeSpan span) const;
  /// Re-attempts every parked transfer against the current topology (also
  /// invoked automatically on every OCS topology change and repair).
  void retry_parked();

  /// Kills a churned tenant's in-flight traffic (fleet checkpoint/kill):
  /// aborts every flow on the span's OCS circuits, NVLink endpoints,
  /// electrical rail lanes, and mgmt ports; drops the span's rescue-registry
  /// entries and parked transfers. No completion callbacks fire — abort the
  /// tenant's engine first.
  void abort_span_traffic(NodeSpan span);

 private:
  Cluster(sim::Simulator& sim, FluidNetwork* net, ClusterConfig cfg);

  /// Lazy scale-up plumbing: the fluid link behind a GPU's NVSwitch
  /// injection/ejection port, created on first use. A 4096-node pod whose
  /// only tenant spans 64 nodes materializes 128 nodes' worth of NVLink
  /// state, not 4096 (the id tables stay dense — 4 bytes per GPU — but the
  /// heavy per-link solver state lives in the FluidNetwork and is
  /// allocated here, on demand).
  LinkId nvl_in(GpuId g);
  LinkId nvl_out(GpuId g);

  void transfer_scale_up(GpuId src, GpuId dst, Bytes bytes,
                         std::function<void()> on_complete);
  void transfer_rail(GpuId src, GpuId dst, Bytes bytes,
                     std::function<void()> on_complete);
  /// One circuit hop between same-rail neighbours (requires live circuits).
  void transfer_rail_hop(GpuId src, GpuId dst, Bytes bytes,
                         std::function<void()> on_complete);
  /// Live circuit links src -> dst on their shared rail (photonic).
  std::vector<LinkId> live_circuit_links(GpuId src, GpuId dst) const;
  /// Allocation-free: true iff some live circuit connects src -> dst.
  bool has_live_circuit(GpuId src, GpuId dst) const;
  /// Two-hop fast path (max_multihop_hops == 2): the first intermediate GPU
  /// (deterministic NIC-port order, matching the BFS discovery order) with
  /// live circuits src -> via -> dst; invalid id when none. The rotor's
  /// send/flush scans hit this on every waiting send, so it must not
  /// allocate.
  GpuId two_hop_via(GpuId src, GpuId dst) const;
  void account(Route r, GpuId src, Bytes bytes);
  void check_span(NodeSpan span) const;

  // ---- fault-tolerance internals ------------------------------------------
  /// A rail transfer (or transfer fragment) waiting for a usable path after
  /// failure killed its circuit. Retried FIFO on every topology change.
  struct ParkedTransfer {
    GpuId src;
    GpuId dst;
    Bytes bytes = 0;
    std::shared_ptr<std::function<void()>> done;
  };
  /// Registry entry for a fault-tolerant rail flow: enough context to
  /// re-issue the flow's remaining bytes when its circuit dies.
  struct RescuableFlow {
    GpuId src;
    GpuId dst;
    std::shared_ptr<std::function<void()>> done;
  };

  /// The photonic rail-hop data path (direct circuits only): starts the
  /// striped flows, or — fault-tolerant mode — tracks them for rescue and
  /// parks when no circuit is live. Accounting happens in the caller.
  void start_rail_circuit_flows(GpuId src, GpuId dst, Bytes bytes,
                                std::function<void()> on_complete);
  void track_rail_flow(LinkId link, GpuId src, GpuId dst, Bytes bytes,
                       std::shared_ptr<std::function<void()>> done);
  /// OCS flow-rescuer hook: aborts `f` and re-issues its remaining bytes
  /// (unaccounted — the logical payload was charged at original issue).
  void rescue_flow(FlowId f);
  /// Routes rescued/parked bytes over the current topology: direct circuits,
  /// else multi-hop over live circuits (degraded continuation — even for
  /// fabrics that normally forbid forwarding), else an emergency spare
  /// circuit (Opus), else back to the parking lot.
  void resend_rescued(GpuId src, GpuId dst, Bytes bytes,
                      std::shared_ptr<std::function<void()>> done);
  /// Opus only: cross-connect a spare (unconnected, live, same-owner) port
  /// pair of src's and dst's nodes so parked traffic can drain — the
  /// control-plane patch a real operator would apply. False when no spare
  /// pair exists.
  bool try_emergency_circuit(GpuId src, GpuId dst);
  /// Electrical: re-derive the endpoint's capacity scale from its failed-
  /// lane mask.
  void apply_electrical_degrade(NodeId node, int rail);

  /// One entry of the span-indexed tenant store: an owned node range plus
  /// the store generation at which it was assigned.
  struct TenantSpan {
    NodeSpan span;
    int tenant = kNoTenant;
    std::uint64_t generation = 0;
  };
  /// Entry owning `node`, or nullptr (binary search over the sorted store).
  const TenantSpan* find_tenant_span(int node) const;

  sim::Simulator& sim_;
  ClusterConfig cfg_;
  // Data plane: owned in the single-pod case, external when several pod
  // Clusters share one network. owned_net_ must precede net_ so the
  // reference can bind to it.
  std::unique_ptr<FluidNetwork> owned_net_;
  FluidNetwork& net_;
  // Scale-up: per-GPU injection/ejection links into the node's NVSwitch,
  // invalid until first use (see nvl_in/nvl_out).
  std::vector<LinkId> nvl_in_;
  std::vector<LinkId> nvl_out_;
  // One rail per local rank; exactly one of these is populated.
  std::vector<std::unique_ptr<OpticalCircuitSwitch>> rail_ocs_;
  std::vector<std::unique_ptr<ElectricalSwitch>> rail_electrical_;
  std::unique_ptr<ElectricalSwitch> mgmt_;
  std::vector<Bytes> route_bytes_;
  // Multi-tenant state: a sorted, non-overlapping span store (one entry per
  // live tenant span — state scales with active spans, not nodes) and
  // per-tenant route-byte totals. tenant_accounting_ flips on first
  // assignment so the single-tenant fast path skips the lookups entirely.
  bool tenant_accounting_ = false;
  std::vector<TenantSpan> tenant_spans_;  // sorted by span.first
  std::uint64_t tenant_generation_ = 0;
  std::unordered_map<int, std::array<Bytes, 6>> tenant_route_bytes_;
  // Epoch-stamped BFS scratch for the unbounded multi-hop path search (the
  // static ring's general case; sized lazily on first use so fabrics that
  // never BFS — electrical, Opus, the two-hop rotor — allocate nothing).
  mutable std::vector<std::int32_t> bfs_prev_;
  mutable std::vector<std::uint64_t> bfs_epoch_;
  mutable std::uint64_t bfs_epoch_counter_ = 0;
  // Fault-injection state (all empty/off until a fault process opts in, so
  // fault-free runs carry no overhead and no behavior change).
  bool fault_tolerant_ = false;
  bool retrying_parked_ = false;  ///< retry_parked reentrancy guard
  std::function<void(const NicFault&)> fault_listener_;
  std::vector<ParkedTransfer> parked_;
  /// FlowId.value() -> rescue context for fault-tolerant rail flows.
  std::unordered_map<std::uint64_t, RescuableFlow> rescuable_;
  std::int64_t rescued_flows_ = 0;  ///< rescue_flow saves (telemetry)
  /// Electrical rails: (node * n_rails + rail) -> failed-lane bitmask.
  std::unordered_map<std::int64_t, std::uint32_t> electrical_failed_;
};

}  // namespace opus::net
