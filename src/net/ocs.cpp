#include "net/ocs.h"

#include <algorithm>
#include <unordered_set>

#include "common/error.h"

namespace opus::net {

std::vector<std::pair<int, int>> round_robin_matching(int n, int round) {
  ensure(n >= 2, "round_robin_matching requires at least two ids");
  ensure(round >= 0, "round_robin_matching: round must be non-negative");
  // Circle method round-robin tournament. For odd n a virtual id (== n)
  // gives its partner a bye.
  const int m = n % 2 == 0 ? n : n + 1;
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(m / 2));
  auto emit = [&](int a, int b) {
    if (a < n && b < n) pairs.emplace_back(a, b);
  };
  // Fix id m-1; rotate the rest.
  emit(round % (m - 1), m - 1);
  for (int i = 1; i < m / 2; ++i) {
    emit((round + i) % (m - 1), (round - i + (m - 1)) % (m - 1));
  }
  return pairs;
}

std::vector<CircuitRequest> round_robin_circuits(int n_ports, int round) {
  ensure(n_ports % 2 == 0, "round_robin_circuits requires an even port count");
  std::vector<CircuitRequest> circuits;
  circuits.reserve(static_cast<std::size_t>(n_ports / 2));
  for (const auto& [a, b] : round_robin_matching(n_ports, round)) {
    circuits.push_back({PortId{a}, PortId{b}});
  }
  return circuits;
}

OpticalCircuitSwitch::OpticalCircuitSwitch(sim::Simulator& sim,
                                           FluidNetwork& net, int n_ports,
                                           Bandwidth port_bw,
                                           TimeNs circuit_latency,
                                           TimeNs reconfig_delay,
                                           std::string name)
    : sim_(sim),
      net_(net),
      port_bw_(port_bw),
      circuit_latency_(circuit_latency),
      reconfig_delay_(reconfig_delay),
      name_(std::move(name)),
      peer_(static_cast<std::size_t>(n_ports), -1),
      dark_(static_cast<std::size_t>(n_ports), false),
      failed_(static_cast<std::size_t>(n_ports), false),
      owner_(static_cast<std::size_t>(n_ports), kUnowned),
      port_dark_ns_(static_cast<std::size_t>(n_ports), 0),
      port_tx_link_(static_cast<std::size_t>(n_ports)),
      port_dark_group_(static_cast<std::size_t>(n_ports), -1) {
  ensure(n_ports > 0, "OCS requires at least one port");
  ensure(port_bw.positive(), "OCS port bandwidth must be positive");
  ensure(reconfig_delay >= 0, "OCS reconfig delay must be non-negative");
}

void OpticalCircuitSwitch::set_reconfig_delay(TimeNs d) {
  ensure(d >= 0, "OCS reconfig delay must be non-negative");
  reconfig_delay_ = d;
}

void OpticalCircuitSwitch::check_port(PortId p) const {
  ensure(p.valid() && p.value() < n_ports(), "invalid OCS port");
}

std::optional<PortId> OpticalCircuitSwitch::peer(PortId p) const {
  check_port(p);
  const auto q = peer_[static_cast<std::size_t>(p.value())];
  if (q < 0) return std::nullopt;
  return PortId{q};
}

bool OpticalCircuitSwitch::dark(PortId p) const {
  check_port(p);
  return is_dark(static_cast<std::size_t>(p.value()));
}

void OpticalCircuitSwitch::set_port_owner(PortId p, int owner) {
  check_port(p);
  ensure(owner >= kUnowned, "OCS port owner must be kUnowned or non-negative");
  auto& slot = owner_[static_cast<std::size_t>(p.value())];
  owned_ports_ += (owner != kUnowned) - (slot != kUnowned);
  slot = owner;
}

int OpticalCircuitSwitch::port_owner(PortId p) const {
  check_port(p);
  return owner_[static_cast<std::size_t>(p.value())];
}

TimeNs OpticalCircuitSwitch::port_dark_time(PortId p) const {
  check_port(p);
  const auto i = static_cast<std::size_t>(p.value());
  const auto g = port_dark_group_[i];
  return port_dark_ns_[i] +
         (g >= 0 ? dark_groups_[static_cast<std::size_t>(g)].accrued : 0);
}

void OpticalCircuitSwitch::clear_circuits_on(const std::vector<PortId>& ports) {
  for (PortId p : ports) {
    check_port(p);
    ensure(!dark(p), "OCS clear_circuits_on: port is mid-reconfiguration");
    const auto q = peer_[static_cast<std::size_t>(p.value())];
    if (q < 0) continue;
    ensure(!dark(PortId{q}),
           "OCS clear_circuits_on: peer port is mid-reconfiguration");
    for (auto i : {p.value(), q}) {
      const LinkId l = port_tx_link_[static_cast<std::size_t>(i)];
      ensure(!l.valid() || net_.active_flows_on(l) == 0,
             "OCS clear_circuits_on: circuit still carrying traffic");
    }
    tear_down(p);
  }
}

void OpticalCircuitSwitch::call_when_undark(std::vector<PortId> ports,
                                            std::function<void()> cb) {
  for (PortId p : ports) check_port(p);
  const bool any_dark =
      std::any_of(ports.begin(), ports.end(), [this](PortId p) {
        return is_dark(static_cast<std::size_t>(p.value()));
      });
  if (!any_dark) {
    if (cb) cb();
    return;
  }
  undark_waiters_.emplace_back(std::move(ports), std::move(cb));
}

void OpticalCircuitSwitch::pump_undark_waiters() {
  if (undark_waiters_.empty()) return;
  // Collect the ready callbacks first: a fired waiter may register new
  // waiters or trigger further reconfigurations.
  std::vector<std::function<void()>> ready;
  auto it = undark_waiters_.begin();
  while (it != undark_waiters_.end()) {
    const bool any_dark =
        std::any_of(it->first.begin(), it->first.end(), [this](PortId p) {
          return is_dark(static_cast<std::size_t>(p.value()));
        });
    if (any_dark) {
      ++it;
    } else {
      ready.push_back(std::move(it->second));
      it = undark_waiters_.erase(it);
    }
  }
  for (auto& cb : ready) {
    if (cb) cb();
  }
}

bool OpticalCircuitSwitch::connected(PortId a, PortId b) const {
  check_port(a);
  check_port(b);
  return peer_[static_cast<std::size_t>(a.value())] == b.value() &&
         !dark(a) && !dark(b) && !failed(a) && !failed(b);
}

bool OpticalCircuitSwitch::failed(PortId p) const {
  check_port(p);
  return failed_[static_cast<std::size_t>(p.value())];
}

int OpticalCircuitSwitch::failed_port_count() const { return failed_ports_; }

void OpticalCircuitSwitch::fail_port(PortId p, bool force) {
  check_port(p);
  const auto i = static_cast<std::size_t>(p.value());
  if (failed_[i]) return;  // idempotent: a double fault changes nothing
  if (!force) {
    // Legacy between-kernels injection: the port must be quiescent.
    ensure(!dark(p), "fail_port: port is mid-reconfiguration");
    const auto q = peer_[i];
    if (q >= 0) {
      for (auto j : {p.value(), q}) {
        const LinkId l = port_tx_link_[static_cast<std::size_t>(j)];
        ensure(!l.valid() || net_.active_flows_on(l) == 0,
               "fail_port: circuit still carrying traffic");
      }
    }
  } else {
    // Mid-run failure. A port failing while dark holds no circuit — it was
    // torn down when its reconfiguration began and its dark time charged up
    // front — so marking it failed suffices and sum(port_dark_time) is
    // unaffected; the reconfiguration's completion skips re-establishing
    // any circuit with a failed endpoint. A live circuit's traffic is
    // handed to the rescuer (re-route or park) or aborted outright. The
    // port is marked failed BEFORE the rescuer runs: a rescue resend that
    // consults connectivity must not route back onto the dying circuit.
    failed_[i] = true;
    ++failed_ports_;
    const auto q = peer_[i];
    if (q >= 0) {
      for (auto j : {p.value(), q}) {
        const LinkId l = port_tx_link_[static_cast<std::size_t>(j)];
        if (!l.valid()) continue;
        if (flow_rescuer_) {
          for (const FlowId f : net_.flows_on(l)) flow_rescuer_(f);
          ensure(net_.active_flows_on(l) == 0,
                 "fail_port: flow rescuer left traffic on a failed circuit");
        } else {
          net_.abort_flows_on(l);
        }
      }
    }
    tear_down(p);
    return;
  }
  tear_down(p);
  failed_[i] = true;
  ++failed_ports_;
}

void OpticalCircuitSwitch::repair_port(PortId p) {
  check_port(p);
  const auto i = static_cast<std::size_t>(p.value());
  if (!failed_[i]) return;  // idempotent
  failed_[i] = false;
  --failed_ports_;
  // The circuit is not restored — owners re-wire on their own schedule —
  // but parked traffic may now have a path, so poke the owning layer.
  if (topology_listener_) topology_listener_();
}

bool OpticalCircuitSwitch::satisfied(
    const std::vector<CircuitRequest>& circuits) const {
  return std::all_of(circuits.begin(), circuits.end(),
                     [this](const CircuitRequest& c) {
                       return connected(c.a, c.b);
                     });
}

std::vector<PortId> OpticalCircuitSwitch::touched_ports(
    const std::vector<CircuitRequest>& circuits) const {
  std::unordered_set<std::int32_t> touched;
  for (const CircuitRequest& c : circuits) {
    if (connected(c.a, c.b)) continue;  // already live: untouched
    for (PortId p : {c.a, c.b}) {
      check_port(p);
      touched.insert(p.value());
      const auto old = peer_[static_cast<std::size_t>(p.value())];
      if (old >= 0) touched.insert(old);
    }
  }
  std::vector<PortId> out;
  out.reserve(touched.size());
  for (auto v : touched) out.push_back(PortId{v});
  std::sort(out.begin(), out.end());
  return out;
}

std::pair<LinkId, LinkId> OpticalCircuitSwitch::link_pair(PortId a, PortId b) {
  const std::int32_t lo = std::min(a.value(), b.value());
  const std::int32_t hi = std::max(a.value(), b.value());
  auto it = links_.find(pair_key(lo, hi));
  if (it == links_.end()) {
    const std::string base =
        name_ + ":p" + std::to_string(lo) + "-p" + std::to_string(hi);
    const LinkId fwd = net_.add_link(port_bw_, base + ":fwd");
    const LinkId rev = net_.add_link(port_bw_, base + ":rev");
    it = links_.emplace(pair_key(lo, hi), std::make_pair(fwd, rev)).first;
  }
  return it->second;
}

LinkId OpticalCircuitSwitch::link(PortId from, PortId to) const {
  ensure(connected(from, to), "OCS::link: no live circuit between ports");
  // connected() guarantees peer_[from] == to, so the cached transmit link
  // of `from` is exactly the from -> to link — no pair-map lookup.
  const LinkId l = port_tx_link_[static_cast<std::size_t>(from.value())];
  ensure(l.valid(), "OCS::link: circuit links missing");
  return l;
}

void OpticalCircuitSwitch::establish(PortId a, PortId b) {
  peer_[static_cast<std::size_t>(a.value())] = b.value();
  peer_[static_cast<std::size_t>(b.value())] = a.value();
  const auto [fwd, rev] = link_pair(a, b);  // lo -> hi, hi -> lo
  const bool a_is_lo = a.value() < b.value();
  port_tx_link_[static_cast<std::size_t>(a.value())] = a_is_lo ? fwd : rev;
  port_tx_link_[static_cast<std::size_t>(b.value())] = a_is_lo ? rev : fwd;
  if (observer_ != nullptr) observer_->on_circuit_up(a, b, sim_.now());
}

void OpticalCircuitSwitch::tear_down(PortId p) {
  const auto q = peer_[static_cast<std::size_t>(p.value())];
  if (q < 0) return;
  peer_[static_cast<std::size_t>(p.value())] = -1;
  peer_[static_cast<std::size_t>(q)] = -1;
  port_tx_link_[static_cast<std::size_t>(p.value())] = LinkId{};
  port_tx_link_[static_cast<std::size_t>(q)] = LinkId{};
  if (observer_ != nullptr) observer_->on_circuit_down(p, PortId{q}, sim_.now());
  const std::int32_t lo = std::min(p.value(), q);
  const std::int32_t hi = std::max(p.value(), q);
  const std::uint64_t key = pair_key(lo, hi);
  if (pinned_pairs_.contains(key)) return;  // batch-owned links never retire
  if (queued_dead_.insert(key).second) {
    dead_pairs_.push_back({lo, hi});
    prune_dead_circuits();
  }
}

void OpticalCircuitSwitch::set_dead_circuit_cache(std::size_t circuits) {
  dead_cache_circuits_ = circuits;
  prune_dead_circuits();
}

void OpticalCircuitSwitch::prune_dead_circuits() {
  // Keep a bounded number of dead circuits cached: by default 2x the switch
  // radix — bounded by hardware, never by the number of reconfigurations
  // performed — unless a fabric with a known circuit working set (the
  // rotor's full rotation cycle) raised the bound.
  const auto cap = dead_cache_circuits_ != 0
                       ? dead_cache_circuits_
                       : static_cast<std::size_t>(2 * n_ports());
  std::size_t attempts = dead_pairs_.size();
  while (dead_pairs_.size() > cap && attempts-- > 0) {
    const auto pair = dead_pairs_.front();
    dead_pairs_.pop_front();
    const std::uint64_t key = pair_key(pair.first, pair.second);
    queued_dead_.erase(key);
    if (peer_[static_cast<std::size_t>(pair.first)] == pair.second) {
      continue;  // re-established since; a future tear_down re-queues it
    }
    const auto it = links_.find(key);
    if (it == links_.end()) continue;  // already retired via an older entry
    if (net_.active_flows_on(it->second.first) > 0 ||
        net_.active_flows_on(it->second.second) > 0) {
      // Still draining (a force_circuits teardown has no quiescence check):
      // never retire under traffic, but keep the entry queued so the links
      // are reclaimed once the flows finish rather than leaked.
      dead_pairs_.push_back(pair);
      queued_dead_.insert(key);
      continue;
    }
    net_.retire_link(it->second.first);
    net_.retire_link(it->second.second);
    stats_.links_retired += 2;
    links_.erase(it);
  }
}

void OpticalCircuitSwitch::force_circuits(
    const std::vector<CircuitRequest>& circuits) {
  for (const CircuitRequest& c : circuits) {
    check_port(c.a);
    check_port(c.b);
    ensure(c.a != c.b, "OCS circuit cannot loop a port to itself");
    ensure(port_owner(c.a) == port_owner(c.b),
           "OCS circuit may not cross port ownership (tenant isolation)");
    if (failed(c.a) || failed(c.b)) continue;  // failed endpoints stay down
    tear_down(c.a);
    tear_down(c.b);
    establish(c.a, c.b);
  }
  if (topology_listener_) topology_listener_();
}

void OpticalCircuitSwitch::reconfigure(
    const std::vector<CircuitRequest>& circuits,
    std::function<void()> on_done) {
  // Validate: no port may appear twice among the requested circuits.
  std::unordered_set<std::int32_t> seen;
  for (const CircuitRequest& c : circuits) {
    check_port(c.a);
    check_port(c.b);
    ensure(c.a != c.b, "OCS circuit cannot loop a port to itself");
    ensure(!failed(c.a) && !failed(c.b),
           "OCS reconfigure: circuit requests a failed port");
    ensure(port_owner(c.a) == port_owner(c.b),
           "OCS circuit may not cross port ownership (tenant isolation)");
    ensure(seen.insert(c.a.value()).second,
           "OCS reconfigure: port appears in two circuits");
    ensure(seen.insert(c.b.value()).second,
           "OCS reconfigure: port appears in two circuits");
  }

  if (satisfied(circuits)) {
    if (on_done) on_done();
    return;
  }

  const std::vector<PortId> touched = touched_ports(circuits);
  for (PortId p : touched) {
    ensure(!dark(p),
           "OCS reconfigure: port is mid-reconfiguration; serialize requests");
  }
  // Refuse to retarget a circuit that is actively carrying traffic; the Opus
  // controller guarantees quiescence (reconfigure only after the previous
  // communication kernel finishes). The diagnostic string is built only on
  // failure. The cached per-port transmit link covers both directions of a
  // touched circuit because a circuit's two endpoints are always touched
  // together.
  for (PortId p : touched) {
    const LinkId l = port_tx_link_[static_cast<std::size_t>(p.value())];
    if (l.valid() && net_.active_flows_on(l) != 0) {
      ensure(false,
             "OCS reconfigure: circuit still carrying traffic (switch " +
                 name_ + ", port " + std::to_string(p.value()) + ")");
    }
  }

  // Tear down old circuits on the touched ports and go dark.
  for (PortId p : touched) tear_down(p);
  for (PortId p : touched) dark_[static_cast<std::size_t>(p.value())] = true;
  dark_ports_ += static_cast<int>(touched.size());

  ++stats_.reconfigurations;
  stats_.circuits_established += static_cast<std::int64_t>(circuits.size());
  // Capture the delay once and use it for both the dark-time charge and the
  // port-up event: a set_reconfig_delay while this request is in flight must
  // not desynchronize Fig. 8 accounting from the actual dark period.
  const TimeNs delay = reconfig_delay_;
  stats_.cumulative_port_dark_ns += delay * static_cast<TimeNs>(touched.size());
  for (PortId p : touched) {
    port_dark_ns_[static_cast<std::size_t>(p.value())] += delay;
  }
  if (observer_ != nullptr) {
    observer_->on_dark_interval(static_cast<int>(touched.size()), sim_.now(),
                                delay);
  }

  // Copy the request; the new circuits come up together after the delay.
  sim_.schedule_after(
      delay,
      [this, circuits, touched, cb = std::move(on_done)]() mutable {
        for (PortId p : touched) {
          dark_[static_cast<std::size_t>(p.value())] = false;
        }
        dark_ports_ -= static_cast<int>(touched.size());
        for (const CircuitRequest& c : circuits) {
          // A port that failed during the dark window stays down: its
          // circuit is skipped (the peer comes up unconnected and re-wires
          // on the owner's next request).
          if (failed_[static_cast<std::size_t>(c.a.value())] ||
              failed_[static_cast<std::size_t>(c.b.value())]) {
            continue;
          }
          establish(c.a, c.b);
        }
        if (cb) cb();
        if (topology_listener_) topology_listener_();
        pump_undark_waiters();
      });
}

OpticalCircuitSwitch::BatchId OpticalCircuitSwitch::register_batch(
    const std::vector<CircuitRequest>& circuits) {
  ensure(!circuits.empty(), "OCS register_batch: empty circuit set");
  Batch batch;
  batch.circuits.reserve(circuits.size());
  batch.ports.reserve(2 * circuits.size());
  std::unordered_set<std::int32_t> seen;
  for (const CircuitRequest& c : circuits) {
    check_port(c.a);
    check_port(c.b);
    ensure(c.a != c.b, "OCS circuit cannot loop a port to itself");
    ensure(port_owner(c.a) == port_owner(c.b),
           "OCS circuit may not cross port ownership (tenant isolation)");
    ensure(seen.insert(c.a.value()).second,
           "OCS register_batch: port appears in two circuits");
    ensure(seen.insert(c.b.value()).second,
           "OCS register_batch: port appears in two circuits");
    const auto [fwd, rev] = link_pair(c.a, c.b);  // lo -> hi, hi -> lo
    const bool a_is_lo = c.a.value() < c.b.value();
    batch.circuits.push_back({c.a.value(), c.b.value(), a_is_lo ? fwd : rev,
                              a_is_lo ? rev : fwd});
    batch.ports.push_back(c.a.value());
    batch.ports.push_back(c.b.value());
    pinned_pairs_.insert(pair_key(std::min(c.a.value(), c.b.value()),
                                  std::max(c.a.value(), c.b.value())));
  }
  std::sort(batch.ports.begin(), batch.ports.end());
  batch.group = dark_group_for(batch.ports);
  batches_.push_back(std::move(batch));
  return static_cast<BatchId>(batches_.size()) - 1;
}

int OpticalCircuitSwitch::dark_group_for(
    const std::vector<std::int32_t>& ports) {
  // Reuse: every port already belongs to one group whose membership count
  // matches — since membership is exclusive and the ports are distinct, the
  // group is exactly this set (the common case: all rounds of one rotor
  // rail share the full port set).
  const auto first = port_dark_group_[static_cast<std::size_t>(ports[0])];
  if (first >= 0 &&
      dark_groups_[static_cast<std::size_t>(first)].members ==
          static_cast<std::int32_t>(ports.size()) &&
      std::all_of(ports.begin(), ports.end(), [&](std::int32_t p) {
        return port_dark_group_[static_cast<std::size_t>(p)] == first;
      })) {
    return first;
  }
  // Otherwise migrate every port into a fresh group. Leaving an old group
  // (a released tenant's sub-rotor) bakes its accrued time into the port's
  // own counter, so port_dark_time is unchanged by the move.
  const int g = static_cast<int>(dark_groups_.size());
  dark_groups_.push_back({0, false, static_cast<std::int32_t>(ports.size())});
  for (const std::int32_t p : ports) {
    const auto i = static_cast<std::size_t>(p);
    const auto old = port_dark_group_[i];
    if (old >= 0) {
      DarkGroup& og = dark_groups_[static_cast<std::size_t>(old)];
      ensure(!og.dark,
             "OCS register_batch: port is mid-reconfiguration in another "
             "batch group");
      port_dark_ns_[i] += og.accrued;
      --og.members;
    }
    port_dark_group_[i] = g;
  }
  return g;
}

void OpticalCircuitSwitch::set_profile_sink(ProfileSink* sink) {
  profile_sink_ = sink;
  if (sink != nullptr) {
    profile_phase_batch_ = sink->phase("ocs.reconfigure_batch");
  }
}

void OpticalCircuitSwitch::reconfigure_batch(BatchId batch,
                                             std::function<void()> on_done) {
  ProfileScope prof(profile_sink_, profile_phase_batch_);
  ensure(batch >= 0 && batch < static_cast<BatchId>(batches_.size()),
         "OCS reconfigure_batch: unknown batch");
  // References into batches_/dark_groups_ are not held across the fallback
  // call (which may register further batches through reentrant callers).
  {
    const Batch& b = batches_[static_cast<std::size_t>(batch)];
    // Fall back to the generic path when some batch port's current circuit
    // reaches outside the batch's port set (possible after force_circuits
    // or a generic reconfigure rewired ports since registration): the
    // touched set is then wider than the batch and needs the full
    // old-peer expansion.
    for (const std::int32_t p : b.ports) {
      const auto q = peer_[static_cast<std::size_t>(p)];
      if (q >= 0 && port_dark_group_[static_cast<std::size_t>(q)] != b.group) {
        std::vector<CircuitRequest> requests;
        requests.reserve(b.circuits.size());
        for (const BatchCircuit& c : b.circuits) {
          requests.push_back({PortId{c.a}, PortId{c.b}});
        }
        ++stats_.batch_fallbacks;
        reconfigure(requests, std::move(on_done));
        return;
      }
    }
  }
  Batch& b = batches_[static_cast<std::size_t>(batch)];
  DarkGroup& g = dark_groups_[static_cast<std::size_t>(b.group)];
  ensure(!g.dark,
         "OCS reconfigure_batch: batch ports are mid-reconfiguration; "
         "serialize requests");

  // Idempotence fast-path, as in reconfigure(): an already-live batch acks
  // without counting anything.
  const bool already_live =
      !g.dark && std::all_of(b.circuits.begin(), b.circuits.end(),
                             [&](const BatchCircuit& c) {
                               return connected(PortId{c.a}, PortId{c.b});
                             });
  if (already_live) {
    if (on_done) on_done();
    return;
  }

  // Rare-state guards, each skipped entirely in the steady rotor state.
  if (dark_ports_ > 0) {
    for (const std::int32_t p : b.ports) {
      ensure(!dark_[static_cast<std::size_t>(p)],
             "OCS reconfigure_batch: port is mid-reconfiguration; serialize "
             "requests");
    }
  }
  if (failed_ports_ > 0) {
    // Fallback widening: a batch whose port set lost members to failure
    // drops the dead circuits and applies the survivors through the generic
    // path (the pinned batch transaction assumes the full matching). The
    // refs above are not held across the call — reconfigure neither
    // registers batches nor runs callbacks synchronously past its
    // satisfied fast-path.
    bool any_failed = false;
    for (const std::int32_t p : b.ports) {
      if (failed_[static_cast<std::size_t>(p)]) {
        any_failed = true;
        break;
      }
    }
    if (any_failed) {
      std::vector<CircuitRequest> survivors;
      survivors.reserve(b.circuits.size());
      for (const BatchCircuit& c : b.circuits) {
        if (failed_[static_cast<std::size_t>(c.a)] ||
            failed_[static_cast<std::size_t>(c.b)]) {
          continue;
        }
        survivors.push_back({PortId{c.a}, PortId{c.b}});
      }
      if (survivors.empty()) {
        if (on_done) on_done();
        return;
      }
      ++stats_.batch_fallbacks;
      reconfigure(survivors, std::move(on_done));
      return;
    }
  }
  if (owned_ports_ > 0) {
    for (const BatchCircuit& c : b.circuits) {
      ensure(port_owner(PortId{c.a}) == port_owner(PortId{c.b}),
             "OCS circuit may not cross port ownership (tenant isolation)");
    }
  }
  for (const std::int32_t p : b.ports) {
    const LinkId l = port_tx_link_[static_cast<std::size_t>(p)];
    if (l.valid() && net_.active_flows_on(l) != 0) {
      ensure(false,
             "OCS reconfigure_batch: circuit still carrying traffic (switch " +
                 name_ + ", port " + std::to_string(p) + ")");
    }
  }

  // The transaction: tear down every batch port's circuit (peers are all
  // in-set, links are pinned — plain array writes, no retirement queue),
  // darken the whole group, charge the dark delta once, and schedule the
  // single completion event. The direct writes bypass tear_down, so the
  // observer emit happens here (once per pair, via the p < q endpoint).
  if (observer_ != nullptr) {
    for (const std::int32_t p : b.ports) {
      const auto q = peer_[static_cast<std::size_t>(p)];
      if (q > p) observer_->on_circuit_down(PortId{p}, PortId{q}, sim_.now());
    }
  }
  for (const std::int32_t p : b.ports) {
    peer_[static_cast<std::size_t>(p)] = -1;
    port_tx_link_[static_cast<std::size_t>(p)] = LinkId{};
  }
  g.dark = true;
  ++stats_.reconfigurations;
  stats_.circuits_established += static_cast<std::int64_t>(b.circuits.size());
  const TimeNs delay = reconfig_delay_;
  stats_.cumulative_port_dark_ns += delay * static_cast<TimeNs>(b.ports.size());
  g.accrued += delay;  // the O(1) per-rotation delta for every member port
  if (observer_ != nullptr) {
    observer_->on_dark_interval(static_cast<int>(b.ports.size()), sim_.now(),
                                delay);
  }

  sim_.schedule_after(delay, [this, batch, cb = std::move(on_done)]() mutable {
    Batch& bb = batches_[static_cast<std::size_t>(batch)];
    dark_groups_[static_cast<std::size_t>(bb.group)].dark = false;
    for (const BatchCircuit& c : bb.circuits) {
      // Endpoints that failed during the dark window stay down.
      if (failed_ports_ > 0 && (failed_[static_cast<std::size_t>(c.a)] ||
                                failed_[static_cast<std::size_t>(c.b)])) {
        continue;
      }
      peer_[static_cast<std::size_t>(c.a)] = c.b;
      peer_[static_cast<std::size_t>(c.b)] = c.a;
      port_tx_link_[static_cast<std::size_t>(c.a)] = c.ab;
      port_tx_link_[static_cast<std::size_t>(c.b)] = c.ba;
      if (observer_ != nullptr) {
        observer_->on_circuit_up(PortId{c.a}, PortId{c.b}, sim_.now());
      }
    }
    if (cb) cb();
    if (topology_listener_) topology_listener_();
    pump_undark_waiters();
  });
}

}  // namespace opus::net
