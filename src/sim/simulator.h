// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at the same timestamp fire in the
// order they were scheduled (FIFO tie-break on a monotonically increasing
// sequence number). Events are cancellable; cancellation is O(1) via a
// tombstone, and tombstoned entries are skipped lazily.
//
// The pending-event set is a hierarchical calendar (bucket) queue rather
// than a binary heap: eleven 64-bucket wheels of geometrically increasing
// width (level k buckets span 64^k ns), with a per-wheel occupancy bitmask.
// Insertion is O(1) — the level is the highest bit where the event time
// differs from the queue's base time — and an event cascades to a lower
// wheel at most once per level as the base advances. The workload this is
// keyed for is the simulator's actual event pattern: dense, periodic
// batches (rotor rotations, fleet arrivals, fluid completions) landing a
// few microseconds-to-milliseconds ahead of now, where a comparison heap
// pays log(n) per event and the calendar pays amortized O(1) regardless of
// how many rotations are pending. Determinism is structural: every fired
// bucket holds exactly one timestamp, and its entries are sorted by
// sequence number before delivery, so the total order is (time, seq) —
// bit-identical to the binary heap it replaced.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/ids.h"
#include "common/profile.h"
#include "common/units.h"

namespace opus::sim {

/// The event-driven simulation kernel. All model components hold a reference
/// to one Simulator and schedule callbacks on it.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// The latest representable instant. schedule_after clamps here instead
  /// of overflowing when now() + delay exceeds the TimeNs range (the fluid
  /// solver's near-stalled completion projections produce such horizons).
  static constexpr TimeNs kMaxTime = std::numeric_limits<TimeNs>::max();

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  TimeNs now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(TimeNs t, Callback cb);

  /// Schedules `cb` to run `delay` after now() (delay must be >= 0). A
  /// delay that would overflow past kMaxTime is clamped to kMaxTime.
  EventId schedule_after(TimeNs delay, Callback cb) {
    ensure(delay >= 0, "Simulator::schedule_after: negative delay");
    const TimeNs t = delay > kMaxTime - now_ ? kMaxTime : now_ + delay;
    return schedule_at(t, std::move(cb));
  }

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; false otherwise (already fired, already cancelled, invalid).
  bool cancel(EventId id);

  /// Returns true if `id` is scheduled and not yet fired or cancelled.
  bool pending(EventId id) const { return callbacks_.contains(id); }

  /// Runs until the event queue is empty. Returns the number of events fired.
  std::uint64_t run();

  /// Runs events with time <= `limit`. Afterwards now() == min(limit, last
  /// event time) if events fired, else now() is advanced to `limit`.
  std::uint64_t run_until(TimeNs limit);

  /// Executes at most `max_events` events. Returns the number fired.
  std::uint64_t run_steps(std::uint64_t max_events);

  /// Number of pending (non-cancelled) events.
  std::size_t pending_events() const { return callbacks_.size(); }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return fired_; }

  /// Opt-in wall-clock sink timing the run()/run_until drain loops (obs
  /// self-profiling). Null (the default) costs one branch per drain.
  void set_profile_sink(ProfileSink* sink);

 private:
  struct Entry {
    TimeNs time;
    std::uint64_t seq;
    EventId id;
  };

  /// 64^11 = 2^66 exceeds the TimeNs (int64) range, so every valid
  /// timestamp maps to some wheel and no overflow list is needed.
  static constexpr int kLevels = 11;

  struct Wheel {
    std::array<std::vector<Entry>, 64> bucket;
    std::uint64_t occupied = 0;  ///< bit i set iff bucket[i] is non-empty
  };

  /// Files an entry into the wheel its time belongs to relative to base_.
  void place(Entry e);
  /// Moves the calendar origin back to `t` (an insert landed before base_)
  /// and re-files every live entry relative to the new origin.
  void rebase(TimeNs t);
  /// Drops dead (tombstoned, time < base_) buckets below a wheel's cursor.
  void sweep_stale(int level);
  /// Positions the wheels so the earliest live entry sits in a level-0
  /// bucket, cascading higher wheels as needed. Returns the bucket index,
  /// or -1 if no live entries remain (all-tombstone state is purged).
  int settle();
  /// Parks the drain cursor (drain_idx_/drain_pos_/drain_time_) on the next
  /// live entry without firing it. Returns false if the queue is empty.
  bool position();
  /// Fires the next live event, if any. Returns false if the queue is empty.
  bool fire_next();

  TimeNs now_ = 0;
  /// All live entries have time >= base_ (the calendar's origin; advances
  /// monotonically toward the earliest pending event, never past it).
  TimeNs base_ = 0;
  std::uint64_t next_seq_ = 0;
  std::int32_t next_id_ = 0;
  std::uint64_t fired_ = 0;
  /// Drain cursor: the level-0 bucket currently being fired (-1 when none),
  /// the next position within it, and the single live timestamp it holds.
  int drain_idx_ = -1;
  std::size_t drain_pos_ = 0;
  TimeNs drain_time_ = 0;
  std::array<Wheel, kLevels> wheels_;
  std::vector<Entry> cascade_scratch_;
  std::unordered_map<EventId, Callback> callbacks_;
  ProfileSink* profile_sink_ = nullptr;
  int profile_phase_run_ = -1;
};

}  // namespace opus::sim
