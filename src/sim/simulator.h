// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at the same timestamp fire in the
// order they were scheduled (FIFO tie-break on a monotonically increasing
// sequence number). Events are cancellable; cancellation is O(1) via a
// tombstone, and tombstoned heap entries are skipped lazily.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/ids.h"
#include "common/units.h"

namespace opus::sim {

/// The event-driven simulation kernel. All model components hold a reference
/// to one Simulator and schedule callbacks on it.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  TimeNs now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(TimeNs t, Callback cb);

  /// Schedules `cb` to run `delay` after now() (delay must be >= 0).
  EventId schedule_after(TimeNs delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; false otherwise (already fired, already cancelled, invalid).
  bool cancel(EventId id);

  /// Returns true if `id` is scheduled and not yet fired or cancelled.
  bool pending(EventId id) const { return callbacks_.contains(id); }

  /// Runs until the event queue is empty. Returns the number of events fired.
  std::uint64_t run();

  /// Runs events with time <= `limit`. Afterwards now() == min(limit, last
  /// event time) if events fired, else now() is advanced to `limit`.
  std::uint64_t run_until(TimeNs limit);

  /// Executes at most `max_events` events. Returns the number fired.
  std::uint64_t run_steps(std::uint64_t max_events);

  /// Number of pending (non-cancelled) events.
  std::size_t pending_events() const { return callbacks_.size(); }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct QueueEntry {
    TimeNs time;
    std::uint64_t seq;
    EventId id;
    friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Fires the next live event, if any. Returns false if the queue is empty.
  bool fire_next();
  /// Pops tombstoned entries; returns false when the queue is exhausted.
  bool skip_dead();

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::int32_t next_id_ = 0;
  std::uint64_t fired_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace opus::sim
