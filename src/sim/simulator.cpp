#include "sim/simulator.h"

#include <utility>

namespace opus::sim {

EventId Simulator::schedule_at(TimeNs t, Callback cb) {
  ensure(t >= now_, "Simulator::schedule_at: time is in the past");
  ensure(static_cast<bool>(cb), "Simulator::schedule_at: empty callback");
  const EventId id{next_id_++};
  queue_.push(QueueEntry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool Simulator::cancel(EventId id) {
  return callbacks_.erase(id) > 0;  // heap entry becomes a tombstone
}

bool Simulator::skip_dead() {
  while (!queue_.empty() && !callbacks_.contains(queue_.top().id)) {
    queue_.pop();
  }
  return !queue_.empty();
}

bool Simulator::fire_next() {
  if (!skip_dead()) return false;
  const QueueEntry entry = queue_.top();
  queue_.pop();
  auto it = callbacks_.find(entry.id);
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  now_ = entry.time;
  ++fired_;
  cb();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(TimeNs limit) {
  std::uint64_t n = 0;
  while (skip_dead() && queue_.top().time <= limit) {
    fire_next();
    ++n;
  }
  if (now_ < limit) now_ = limit;
  return n;
}

std::uint64_t Simulator::run_steps(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && fire_next()) ++n;
  return n;
}

}  // namespace opus::sim
