#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace opus::sim {

namespace {

constexpr std::uint64_t bit(int i) { return std::uint64_t{1} << i; }

/// Width mask of a level's parent window: level k spans 64^(k+1) ns. Level
/// 10's window exceeds the int64 range, so its mask saturates.
constexpr std::uint64_t window_mask(int level) {
  const int shift = 6 * (level + 1);
  return shift >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << shift) - 1;
}

}  // namespace

EventId Simulator::schedule_at(TimeNs t, Callback cb) {
  ensure(t >= now_, "Simulator::schedule_at: time is in the past");
  ensure(static_cast<bool>(cb), "Simulator::schedule_at: empty callback");
  const EventId id{next_id_++};
  place(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool Simulator::cancel(EventId id) {
  return callbacks_.erase(id) > 0;  // calendar entry becomes a tombstone
}

void Simulator::place(Entry e) {
  // The calendar origin never sits past a live entry; a peek (run_until
  // stopping short of the next event) may have advanced it beyond now_, so
  // an insert can land before the origin. Every bucket index is relative to
  // the origin's window, so moving the origin back invalidates the whole
  // filing — rebase re-files everything (rare: only peek-then-schedule
  // sequences hit it; the run() hot loop never does).
  if (e.time < base_) rebase(e.time);
  const std::uint64_t x =
      static_cast<std::uint64_t>(e.time) ^ static_cast<std::uint64_t>(base_);
  const int level = x == 0 ? 0 : (63 - std::countl_zero(x)) / 6;
  const int idx =
      static_cast<int>((static_cast<std::uint64_t>(e.time) >> (6 * level)) &
                       63);
  Wheel& w = wheels_[static_cast<std::size_t>(level)];
  w.bucket[static_cast<std::size_t>(idx)].push_back(e);
  w.occupied |= bit(idx);
}

void Simulator::rebase(TimeNs t) {
  std::vector<Entry> all;
  for (Wheel& w : wheels_) {
    std::uint64_t occ = w.occupied;
    while (occ != 0) {
      const int idx = std::countr_zero(occ);
      occ &= occ - 1;
      auto& v = w.bucket[static_cast<std::size_t>(idx)];
      all.insert(all.end(), v.begin(), v.end());
      v.clear();
    }
    w.occupied = 0;
  }
  base_ = t;
  drain_idx_ = -1;  // the paused drain is no longer the earliest bucket
  for (const Entry& e : all) {
    if (callbacks_.contains(e.id)) place(e);  // live entries are all >= t
  }
}

void Simulator::sweep_stale(int level) {
  // Buckets below the cursor belong to an already-drained lap: any entry
  // still in them is a tombstone (live entries always sit at or above the
  // cursor of their wheel).
  Wheel& w = wheels_[static_cast<std::size_t>(level)];
  const int cursor = static_cast<int>(
      (static_cast<std::uint64_t>(base_) >> (6 * level)) & 63);
  std::uint64_t stale = w.occupied & (bit(cursor) - 1);
  while (stale != 0) {
    const int idx = std::countr_zero(stale);
    stale &= stale - 1;
    w.bucket[static_cast<std::size_t>(idx)].clear();
  }
  w.occupied &= ~(bit(cursor) - 1);
}

int Simulator::settle() {
  if (callbacks_.empty()) {
    // Only tombstones remain (if anything): purge so run() terminates
    // without visiting every cancelled entry's bucket.
    for (Wheel& w : wheels_) {
      std::uint64_t occ = w.occupied;
      while (occ != 0) {
        const int idx = std::countr_zero(occ);
        occ &= occ - 1;
        w.bucket[static_cast<std::size_t>(idx)].clear();
      }
      w.occupied = 0;
    }
    return -1;
  }
  for (;;) {
    int best_level = -1;
    int best_idx = -1;
    TimeNs best = kMaxTime;
    for (int k = 0; k < kLevels; ++k) {
      sweep_stale(k);
      const Wheel& w = wheels_[static_cast<std::size_t>(k)];
      if (w.occupied == 0) continue;
      const int idx = std::countr_zero(w.occupied);
      const std::uint64_t origin =
          static_cast<std::uint64_t>(base_) & ~window_mask(k);
      const TimeNs cand = static_cast<TimeNs>(
          origin + (static_cast<std::uint64_t>(idx) << (6 * k)));
      // `<=` so a higher wheel whose bucket starts exactly at the level-0
      // candidate cascades first — it may hold a lower-seq entry for the
      // same instant.
      if (cand <= best) {
        best = cand;
        best_level = k;
        best_idx = idx;
      }
    }
    ensure(best_level >= 0, "Simulator: live event missing from calendar");
    if (best_level == 0) {
      if (best > base_) base_ = best;
      return best_idx;
    }
    // Cascade: re-file the bucket's entries onto lower wheels relative to
    // the advanced origin. Tombstones are dropped here, not re-filed.
    Wheel& w = wheels_[static_cast<std::size_t>(best_level)];
    w.occupied &= ~bit(best_idx);
    cascade_scratch_.swap(w.bucket[static_cast<std::size_t>(best_idx)]);
    if (best > base_) base_ = best;
    for (const Entry& e : cascade_scratch_) {
      if (callbacks_.contains(e.id)) place(e);
    }
    cascade_scratch_.clear();
  }
}

bool Simulator::position() {
  // Parks the drain cursor on the next live entry (skipping tombstones)
  // without firing it. Returns false when no live events remain.
  for (;;) {
    if (drain_idx_ < 0) {
      const int idx = settle();
      if (idx < 0) return false;
      drain_idx_ = idx;
      drain_pos_ = 0;
      drain_time_ = static_cast<TimeNs>(
          (static_cast<std::uint64_t>(base_) & ~std::uint64_t{63}) +
          static_cast<std::uint64_t>(idx));
      auto& v = wheels_[0].bucket[static_cast<std::size_t>(idx)];
      // One bucket holds one live timestamp; sorting by (time, seq) pins
      // strict same-instant FIFO regardless of which wheels the entries
      // cascaded through. Entries appended mid-drain carry higher seq and
      // arrive in order, so the tail stays sorted.
      std::sort(v.begin(), v.end(), [](const Entry& a, const Entry& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
      });
    }
    auto& v = wheels_[0].bucket[static_cast<std::size_t>(drain_idx_)];
    while (drain_pos_ < v.size()) {
      const Entry& e = v[drain_pos_];
      if (e.time == drain_time_ && callbacks_.contains(e.id)) return true;
      ++drain_pos_;  // dead lap straggler or tombstone
    }
    v.clear();
    wheels_[0].occupied &= ~bit(drain_idx_);
    drain_idx_ = -1;
  }
}

bool Simulator::fire_next() {
  if (!position()) return false;
  auto& v = wheels_[0].bucket[static_cast<std::size_t>(drain_idx_)];
  const Entry e = v[drain_pos_++];
  auto it = callbacks_.find(e.id);
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  now_ = e.time;
  ++fired_;
  cb();
  return true;
}

std::uint64_t Simulator::run() {
  ProfileScope prof(profile_sink_, profile_phase_run_);
  std::uint64_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(TimeNs limit) {
  ProfileScope prof(profile_sink_, profile_phase_run_);
  std::uint64_t n = 0;
  while (position() && drain_time_ <= limit) {
    fire_next();
    ++n;
  }
  if (now_ < limit) now_ = limit;
  return n;
}

void Simulator::set_profile_sink(ProfileSink* sink) {
  profile_sink_ = sink;
  if (sink != nullptr) profile_phase_run_ = sink->phase("sim.run");
}

std::uint64_t Simulator::run_steps(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && fire_next()) ++n;
  return n;
}

}  // namespace opus::sim
