// Units for time, data size, and bandwidth used throughout the library.
//
// Simulation time is a signed 64-bit count of nanoseconds (`TimeNs`). A plain
// integer (rather than std::chrono) keeps event-queue keys trivially
// comparable and hashable, and 64-bit nanoseconds covers ~292 years of
// simulated time, far beyond any training job.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace opus {

/// Simulation time in nanoseconds since simulation start.
using TimeNs = std::int64_t;

/// Data sizes are byte counts.
using Bytes = std::int64_t;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

/// Converts microseconds to TimeNs.
constexpr TimeNs usecs(double us) { return static_cast<TimeNs>(us * kNsPerUs); }
/// Converts milliseconds to TimeNs.
constexpr TimeNs msecs(double ms) { return static_cast<TimeNs>(ms * kNsPerMs); }
/// Converts seconds to TimeNs.
constexpr TimeNs secs(double s) { return static_cast<TimeNs>(s * kNsPerSec); }

/// Converts TimeNs to floating-point milliseconds (for reporting).
constexpr double to_ms(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }
/// Converts TimeNs to floating-point seconds (for reporting).
constexpr double to_sec(TimeNs t) { return static_cast<double>(t) / kNsPerSec; }

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes kib(double k) { return static_cast<Bytes>(k * kKiB); }
constexpr Bytes mib(double m) { return static_cast<Bytes>(m * kMiB); }
constexpr Bytes gib(double g) { return static_cast<Bytes>(g * kGiB); }

/// Link or NIC-port bandwidth. Stored in bits per second to match vendor
/// datasheets (400 Gbps = 400e9 bits/s).
struct Bandwidth {
  double bits_per_sec = 0.0;

  static constexpr Bandwidth bps(double b) { return Bandwidth{b}; }
  static constexpr Bandwidth gbps(double g) { return Bandwidth{g * 1e9}; }
  static constexpr Bandwidth tbps(double t) { return Bandwidth{t * 1e12}; }

  constexpr double gbps_value() const { return bits_per_sec / 1e9; }
  constexpr double bytes_per_ns() const { return bits_per_sec / 8e9; }
  constexpr bool positive() const { return bits_per_sec > 0.0; }

  friend constexpr Bandwidth operator*(Bandwidth bw, double k) {
    return Bandwidth{bw.bits_per_sec * k};
  }
  friend constexpr Bandwidth operator/(Bandwidth bw, double k) {
    return Bandwidth{bw.bits_per_sec / k};
  }
  friend constexpr bool operator==(Bandwidth a, Bandwidth b) {
    return a.bits_per_sec == b.bits_per_sec;
  }
  friend constexpr auto operator<=>(Bandwidth a, Bandwidth b) {
    return a.bits_per_sec <=> b.bits_per_sec;
  }
};

/// Serialization time of `bytes` at `bw`, rounded up to whole nanoseconds so a
/// nonzero transfer never takes zero simulated time.
constexpr TimeNs transfer_time(Bytes bytes, Bandwidth bw) {
  if (bytes <= 0) return 0;
  const double ns = static_cast<double>(bytes) / bw.bytes_per_ns();
  return static_cast<TimeNs>(ns) + ((ns > static_cast<TimeNs>(ns)) ? 1 : 0);
}

/// Pretty-prints a time for human-readable reports, e.g. "12.50ms".
std::string format_time(TimeNs t);
/// Pretty-prints a byte count, e.g. "957.0MB" (decimal MB to match the paper).
std::string format_bytes(Bytes b);

}  // namespace opus
