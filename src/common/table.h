// Plain-text table rendering and CSV export, used by the bench binaries to
// print paper-style tables and figure series.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"

namespace opus {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with aligned columns and a header separator.
  std::string render() const;

  /// Renders as RFC-4180 CSV (no alignment padding): cells containing a
  /// comma, a double quote, or a line break are quoted, with embedded
  /// quotes doubled — a model name like `llama3, 8b` stays one column.
  std::string to_csv() const;

  /// Machine-readable form: {"headers": [...], "rows": [[...], ...]} — the
  /// JSON twin every bench/driver can emit next to render()/to_csv().
  json::Value to_json() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` fractional digits.
std::string fmt_double(double v, int precision = 2);
/// Formats a large count with thousands separators, e.g. 20736 -> "20,736".
std::string fmt_count(std::int64_t v);
/// Formats a dollar amount, e.g. 1.25e7 -> "$12,500,000".
std::string fmt_dollars(double v);

}  // namespace opus
