#include "common/units.h"

#include <iomanip>
#include <sstream>

namespace opus {

std::string format_time(TimeNs t) {
  std::ostringstream os;
  os << std::fixed;
  const double abs_t = t < 0 ? -static_cast<double>(t) : static_cast<double>(t);
  if (abs_t >= kNsPerSec) {
    os << std::setprecision(3) << to_sec(t) << "s";
  } else if (abs_t >= kNsPerMs) {
    os << std::setprecision(3) << to_ms(t) << "ms";
  } else if (abs_t >= kNsPerUs) {
    os << std::setprecision(3) << static_cast<double>(t) / kNsPerUs << "us";
  } else {
    os << t << "ns";
  }
  return os.str();
}

std::string format_bytes(Bytes b) {
  std::ostringstream os;
  os << std::fixed;
  const double v = static_cast<double>(b);
  // Decimal units to match the paper's MB figures (e.g. 957MB, 3829MB).
  if (v >= 1e9) {
    os << std::setprecision(2) << v / 1e9 << "GB";
  } else if (v >= 1e6) {
    os << std::setprecision(1) << v / 1e6 << "MB";
  } else if (v >= 1e3) {
    os << std::setprecision(1) << v / 1e3 << "KB";
  } else {
    os << b << "B";
  }
  return os.str();
}

}  // namespace opus
