// Wall-clock self-profiling hooks shared across layers.
//
// Low layers (sim, net) hold a raw `ProfileSink*`, null by default, so a
// disabled profiler costs exactly one branch per instrumented scope. The
// concrete sink (obs::SelfProfiler) lives in the obs layer; keeping the
// interface here means sim/net never depend upward on obs. Wall-clock
// readings only ever flow into the sink — never into simulation state or
// result payloads, which stay deterministic.
#pragma once

#include <chrono>
#include <cstdint>

namespace opus {

/// Receiver for opt-in wall-clock phase timings.
class ProfileSink {
 public:
  virtual ~ProfileSink() = default;

  /// Resolves a phase name to a stable id, registering it on first use.
  /// Call once at attach time, not on the hot path.
  virtual int phase(const char* name) = 0;

  /// Records one timed invocation of the phase (inclusive wall time).
  virtual void record(int phase_id, std::int64_t wall_ns) = 0;
};

/// RAII scope: times its own lifetime and reports it to the sink on
/// destruction. A null sink makes construction and destruction a single
/// predictable branch each.
class ProfileScope {
 public:
  ProfileScope(ProfileSink* sink, int phase_id) : sink_(sink), phase_(phase_id) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ProfileScope() {
    if (sink_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      sink_->record(phase_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                                elapsed)
                                .count());
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileSink* sink_;
  int phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace opus
