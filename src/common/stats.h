// Summary statistics and empirical CDFs for window-size analysis (Fig. 4) and
// iteration-time reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace opus {

/// Streaming summary statistics (count / mean / min / max / stddev).
class SummaryStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample set.
class Cdf {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x.
  double fraction_at_or_below(double x) const;
  /// Value at quantile q in [0, 1] (nearest-rank). Requires non-empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Evaluates the CDF at each of `points`, returning (x, F(x)) pairs —
  /// the series plotted in Fig. 4(a).
  std::vector<std::pair<double, double>> evaluate(
      const std::vector<double>& points) const;

  /// All samples in ascending order.
  const std::vector<double>& sorted_samples() const;

 private:
  void sort_if_needed() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace opus
