// Minimal dependency-free JSON: a value model, a strict parser with precise
// error locations (line/col AND the JSON path being parsed), and a
// deterministic writer.
//
// This is the substrate of the declarative-experiment layer (config/serde):
// every ExperimentConfig/FleetConfig can be loaded from a JSON file and
// every result serialized next to its text table, so experiments are data,
// not compiled code, and golden-file regression can diff bytes.
//
// Determinism contract (what makes byte-exact goldens possible):
//  - objects preserve insertion order (a sorted map would also be
//    deterministic, but insertion order keeps emitted configs readable in
//    declaration order);
//  - doubles are written with the shortest round-trip representation
//    (std::to_chars), with ".0" appended to integral-looking values so a
//    double never silently re-parses as an integer;
//  - the writer has exactly one output form per value tree — no locale, no
//    precision knobs, no trailing-space variance.
//
// Strictness: duplicate object keys are a parse error (config files where a
// later key silently wins are a footgun), as are NaN/Inf (not JSON).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace opus::json {

enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

/// Stable display name ("null", "bool", "int", "double", "string", "array",
/// "object") — used in serde's wrong-type error messages.
const char* kind_name(Kind k);

/// Parse error with the exact location: 1-based line/column plus the JSON
/// path of the innermost container being parsed (e.g. "$.model.n_layers" or
/// "$.cells[3]").
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int col, std::string path);

  int line() const { return line_; }
  int col() const { return col_; }
  const std::string& path() const { return path_; }

 private:
  int line_;
  int col_;
  std::string path_;
};

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Value(int i) : kind_(Kind::kInt), int_(i) {}
  Value(double d);  // throws InvariantError on NaN/Inf
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}

  static Value array() { Value v; v.kind_ = Kind::kArray; return v; }
  static Value object() { Value v; v.kind_ = Kind::kObject; return v; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  /// Int or double — serde accepts an integer literal for a double field.
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Accessors throw InvariantError on kind mismatch (serde wraps them with
  // path-carrying errors; direct users get the blunt check).
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Numeric value; accepts kInt (exact conversion) and kDouble.
  double as_double() const;
  const std::string& as_string() const;

  // ---- array ---------------------------------------------------------------
  std::size_t size() const;  ///< array or object element count
  const Value& operator[](std::size_t i) const;
  void push_back(Value v);

  // ---- object (insertion-ordered, unique keys) -----------------------------
  /// Appends a key; throws InvariantError if the key already exists.
  void set(std::string key, Value v);
  /// The member value, or nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, Value>>& entries() const;

  /// Deep structural equality (int 2 != double 2.0 — kinds must match).
  friend bool operator==(const Value& a, const Value& b);

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Parses a complete JSON document (trailing garbage is an error). Throws
/// ParseError with line/col/path on malformed input.
Value parse(std::string_view text);

/// Serializes deterministically. indent > 0 pretty-prints with that many
/// spaces per level (objects/arrays one element per line); indent == 0 emits
/// the compact single-line form. Output has no trailing newline — callers
/// writing files append one.
std::string dump(const Value& v, int indent = 2);

}  // namespace opus::json
