// Deterministic random number generation. All stochastic behaviour in the
// library flows through these generators so simulations are reproducible
// bit-for-bit from a seed.
#pragma once

#include <cstdint>

namespace opus {

/// SplitMix64: used to seed Xoshiro and for cheap hashing of seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++: the library's main PRNG. Small, fast, high quality.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  constexpr std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace opus
