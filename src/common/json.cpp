#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace opus::json {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kInt: return "int";
    case Kind::kDouble: return "double";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

ParseError::ParseError(std::string message, int line, int col,
                       std::string path)
    : std::runtime_error("json parse error at line " + std::to_string(line) +
                         ", col " + std::to_string(col) + " (" + path +
                         "): " + message),
      line_(line),
      col_(col),
      path_(std::move(path)) {}

Value::Value(double d) : kind_(Kind::kDouble), dbl_(d) {
  ensure(std::isfinite(d), "json: NaN/Inf cannot be represented");
}

bool Value::as_bool() const {
  ensure(is_bool(), "json: value is not a bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  ensure(is_int(), "json: value is not an int");
  return int_;
}

double Value::as_double() const {
  ensure(is_number(), "json: value is not a number");
  return is_int() ? static_cast<double>(int_) : dbl_;
}

const std::string& Value::as_string() const {
  ensure(is_string(), "json: value is not a string");
  return str_;
}

std::size_t Value::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  ensure(false, "json: size() on a non-container value");
  return 0;
}

const Value& Value::operator[](std::size_t i) const {
  ensure(is_array(), "json: operator[] on a non-array value");
  ensure(i < arr_.size(), "json: array index out of range");
  return arr_[i];
}

void Value::push_back(Value v) {
  ensure(is_array(), "json: push_back on a non-array value");
  arr_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  ensure(is_object(), "json: set() on a non-object value");
  ensure(find(key) == nullptr, "json: duplicate object key");
  obj_.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Value>>& Value::entries() const {
  ensure(is_object(), "json: entries() on a non-object value");
  return obj_;
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return a.bool_ == b.bool_;
    case Kind::kInt: return a.int_ == b.int_;
    case Kind::kDouble: return a.dbl_ == b.dbl_;
    case Kind::kString: return a.str_ == b.str_;
    case Kind::kArray: return a.arr_ == b.arr_;
    case Kind::kObject: return a.obj_ == b.obj_;
  }
  return false;
}

// ---- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw ParseError(message, line_, col(), path());
  }

  int col() const { return static_cast<int>(pos_ - line_start_) + 1; }

  std::string path() const {
    std::string p = "$";
    for (const auto& seg : path_) {
      if (seg.key.empty() && seg.index >= 0) {
        p += "[" + std::to_string(seg.index) + "]";
      } else {
        p += "." + seg.key;
      }
    }
    return p;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        next();
      } else {
        break;
      }
    }
  }

  void expect(char c, const char* what) {
    skip_ws();
    if (eof() || peek() != c) {
      fail(std::string("expected ") + what);
    }
    next();
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_).substr(0, lit.size()) != lit) return false;
    for (std::size_t i = 0; i < lit.size(); ++i) next();
    return true;
  }

  Value parse_value() {
    skip_ws();
    if (eof()) fail("unexpected end of input");
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal (expected 'null')");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Value parse_object() {
    expect('{', "'{'");
    Value obj = Value::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      next();
      return obj;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) {
        fail("duplicate object key \"" + key + "\"");
      }
      expect(':', "':' after object key");
      path_.push_back({key, -1});
      Value v = parse_value();
      path_.pop_back();
      obj.set(std::move(key), std::move(v));
      skip_ws();
      if (eof()) fail("unterminated object");
      char c = next();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[', "'['");
    Value arr = Value::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      next();
      return arr;
    }
    int index = 0;
    while (true) {
      path_.push_back({"", index++});
      Value v = parse_value();
      path_.pop_back();
      arr.push_back(std::move(v));
      skip_ws();
      if (eof()) fail("unterminated array");
      char c = next();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      char e = next();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: require the low half.
            if (eof() || peek() != '\\') fail("unpaired UTF-16 surrogate");
            next();
            if (eof() || peek() != 'u') fail("unpaired UTF-16 surrogate");
            next();
            unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (!eof() && peek() == '-') next();
    if (eof()) fail("truncated number");
    if (peek() == '0') {
      next();
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && peek() >= '0' && peek() <= '9') next();
    } else {
      fail("invalid number");
    }
    if (!eof() && peek() == '.') {
      is_double = true;
      next();
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') next();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_double = true;
      next();
      if (!eof() && (peek() == '+' || peek() == '-')) next();
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') next();
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && p == token.data() + token.size()) {
        return Value(i);
      }
      // Integer literal overflowing int64: fall through to double.
    }
    const std::string owned(token);
    char* end = nullptr;
    const double d = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size() || !std::isfinite(d)) {
      fail("number out of range");
    }
    return Value(d);
  }

  struct PathSeg {
    std::string key;  ///< object member (empty for array elements)
    int index;        ///< array index (-1 for object members)
  };

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::size_t line_start_ = 0;
  std::vector<PathSeg> path_;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

// ---- writer ----------------------------------------------------------------

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_double(std::string& out, double d) {
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, d);
  ensure(ec == std::errc(), "json: double formatting failed");
  std::string_view sv(buf, static_cast<std::size_t>(p - buf));
  out += sv;
  // Shortest-round-trip printing drops the ".0" from integral doubles; put
  // it back so the value re-parses as a double, not an int (kind-stable
  // round trips are what the serde fixed-point tests pin).
  if (sv.find('.') == std::string_view::npos &&
      sv.find('e') == std::string_view::npos &&
      sv.find('E') == std::string_view::npos) {
    out += ".0";
  }
}

void write_value(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent > 0;
  auto newline_pad = [&](int d) {
    if (pretty) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (v.kind()) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(v.as_int()); break;
    case Kind::kDouble: write_double(out, v.as_double()); break;
    case Kind::kString: write_escaped(out, v.as_string()); break;
    case Kind::kArray: {
      if (v.size() == 0) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) out.push_back(',');
        newline_pad(depth + 1);
        write_value(out, v[i], indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (v.size() == 0) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : v.entries()) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        write_escaped(out, key);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        write_value(out, member, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& v, int indent) {
  ensure(indent >= 0, "json: negative indent");
  std::string out;
  write_value(out, v, indent, 0);
  return out;
}

}  // namespace opus::json
