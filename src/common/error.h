// Invariant checking. `ensure` throws on violation so tests can assert on
// misuse; it is used for API-contract checks, not for recoverable errors.
#pragma once

#include <stdexcept>
#include <string>

namespace opus {

/// Error thrown when a library invariant or API precondition is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws InvariantError with `message` when `condition` is false.
inline void ensure(bool condition, const std::string& message) {
  if (!condition) throw InvariantError(message);
}

/// Literal-message overload: avoids constructing a std::string temporary on
/// every call, which matters because ensure guards sit on simulation hot
/// paths (per-port, per-flow accessors called tens of millions of times).
inline void ensure(bool condition, const char* message) {
  if (!condition) throw InvariantError(message);
}

}  // namespace opus
