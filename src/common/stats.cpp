#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace opus {

void SummaryStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double SummaryStats::mean() const {
  ensure(count_ > 0, "SummaryStats::mean on empty stats");
  return sum_ / static_cast<double>(count_);
}

double SummaryStats::min() const {
  ensure(count_ > 0, "SummaryStats::min on empty stats");
  return min_;
}

double SummaryStats::max() const {
  ensure(count_ > 0, "SummaryStats::max on empty stats");
  return max_;
}

double SummaryStats::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  ensure(!samples_.empty(), "Cdf::quantile on empty CDF");
  ensure(q >= 0.0 && q <= 1.0, "Cdf::quantile requires q in [0,1]");
  sort_if_needed();
  if (q <= 0.0) return samples_.front();
  // Nearest-rank definition: smallest value with F(x) >= q.
  const auto n = samples_.size();
  auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

std::vector<std::pair<double, double>> Cdf::evaluate(
    const std::vector<double>& points) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(points.size());
  for (double p : points) out.emplace_back(p, fraction_at_or_below(p));
  return out;
}

const std::vector<double>& Cdf::sorted_samples() const {
  sort_if_needed();
  return samples_;
}

}  // namespace opus
