// Strong ID types. Each entity kind gets its own incompatible integer wrapper
// so a rail index can never be passed where a GPU rank is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace opus {

/// Strongly-typed integer identifier; `Tag` makes distinct instantiations
/// incompatible. Value -1 means "invalid / unset".
template <class Tag>
struct Id {
  std::int32_t v = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t value) : v(value) {}

  constexpr bool valid() const { return v >= 0; }
  constexpr std::int32_t value() const { return v; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;
};

/// Global GPU rank across the whole cluster (0 .. N-1).
using GpuId = Id<struct GpuTag>;
/// A scale-up (NVLink) domain, i.e. one DGX/HGX node.
using NodeId = Id<struct NodeTag>;
/// A rail index == the local rank of the GPUs it connects (0 .. k-1).
using RailId = Id<struct RailTag>;
/// A pod: one rail-optimized cluster inside a multi-pod fabric. Pod-local
/// ids (GpuId, NodeId, PortId) are scoped to their pod; cross-pod addressing
/// is always the (PodId, pod-local id) pair.
using PodId = Id<struct PodTag>;
/// A physical port on an OCS or electrical switch.
using PortId = Id<struct PortTag>;
/// Generation-stamped identifier for entities whose storage slots are
/// recycled: the low 32 bits index a dense slot array, the high 32 bits
/// carry the slot's reuse generation. A stale id (the slot was since
/// released, and possibly reassigned) never compares equal to the slot's
/// current generation, so lookups detect it instead of aliasing the new
/// occupant. Generations of issued ids are always odd (slots stamp even
/// generations while free), so a default-constructed or integer-cast id —
/// generation 0 — is never live.
template <class Tag>
struct GenId {
  std::uint64_t v = 0;

  constexpr GenId() = default;
  constexpr explicit GenId(std::uint64_t packed) : v(packed) {}

  static constexpr GenId from_parts(std::uint32_t slot,
                                    std::uint32_t generation) {
    return GenId{(static_cast<std::uint64_t>(generation) << 32) | slot};
  }

  /// True iff the id was issued by a registry (carries a generation stamp).
  /// Says nothing about whether the entity is still alive — ask the owning
  /// registry for that.
  constexpr bool valid() const { return (v >> 32) != 0; }
  constexpr std::uint32_t slot() const {
    return static_cast<std::uint32_t>(v);
  }
  constexpr std::uint32_t generation() const {
    return static_cast<std::uint32_t>(v >> 32);
  }
  constexpr std::uint64_t value() const { return v; }

  friend constexpr bool operator==(GenId, GenId) = default;
  friend constexpr auto operator<=>(GenId, GenId) = default;
};

/// A unidirectional fluid link in the network model.
using LinkId = Id<struct LinkTag>;
/// An active flow in the fluid network (slot + generation; see GenId).
using FlowId = GenId<struct FlowTag>;
/// A communication group (one parallelism dimension's ranks).
using GroupId = Id<struct GroupTag>;
/// A node in a training-iteration DAG.
using OpId = Id<struct OpTag>;
/// A cancellable event in the simulator.
using EventId = Id<struct EventTag>;

}  // namespace opus

namespace std {
template <class Tag>
struct hash<opus::Id<Tag>> {
  size_t operator()(opus::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.v);
  }
};
template <class Tag>
struct hash<opus::GenId<Tag>> {
  size_t operator()(opus::GenId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.v);
  }
};
}  // namespace std
