// Strong ID types. Each entity kind gets its own incompatible integer wrapper
// so a rail index can never be passed where a GPU rank is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace opus {

/// Strongly-typed integer identifier; `Tag` makes distinct instantiations
/// incompatible. Value -1 means "invalid / unset".
template <class Tag>
struct Id {
  std::int32_t v = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t value) : v(value) {}

  constexpr bool valid() const { return v >= 0; }
  constexpr std::int32_t value() const { return v; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;
};

/// Global GPU rank across the whole cluster (0 .. N-1).
using GpuId = Id<struct GpuTag>;
/// A scale-up (NVLink) domain, i.e. one DGX/HGX node.
using NodeId = Id<struct NodeTag>;
/// A rail index == the local rank of the GPUs it connects (0 .. k-1).
using RailId = Id<struct RailTag>;
/// A physical port on an OCS or electrical switch.
using PortId = Id<struct PortTag>;
/// A unidirectional fluid link in the network model.
using LinkId = Id<struct LinkTag>;
/// An active flow in the fluid network.
using FlowId = Id<struct FlowTag>;
/// A communication group (one parallelism dimension's ranks).
using GroupId = Id<struct GroupTag>;
/// A node in a training-iteration DAG.
using OpId = Id<struct OpTag>;
/// A cancellable event in the simulator.
using EventId = Id<struct EventTag>;

}  // namespace opus

namespace std {
template <class Tag>
struct hash<opus::Id<Tag>> {
  size_t operator()(opus::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.v);
  }
};
}  // namespace std
