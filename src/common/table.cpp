#include "common/table.h"

#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace opus {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ensure(!headers_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  ensure(cells.size() == headers_.size(),
         "TextTable row arity does not match headers");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

// RFC 4180: quote a cell iff it contains a delimiter, a quote, or a line
// break; embedded quotes are doubled. Everything else passes through
// verbatim so existing numeric CSV output stays byte-identical.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

json::Value TextTable::to_json() const {
  json::Value headers = json::Value::array();
  for (const auto& h : headers_) headers.push_back(json::Value(h));
  json::Value rows = json::Value::array();
  for (const auto& row : rows_) {
    json::Value cells = json::Value::array();
    for (const auto& cell : row) cells.push_back(json::Value(cell));
    rows.push_back(std::move(cells));
  }
  json::Value table = json::Value::object();
  table.set("headers", std::move(headers));
  table.set("rows", std::move(rows));
  return table;
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_count(std::int64_t v) {
  const bool neg = v < 0;
  std::uint64_t mag = neg ? static_cast<std::uint64_t>(-(v + 1)) + 1
                          : static_cast<std::uint64_t>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string fmt_dollars(double v) {
  // Built via insert (not operator+) to dodge GCC 12's -Wrestrict false
  // positive on inlined small-string concatenation.
  std::string out = fmt_count(static_cast<std::int64_t>(v + 0.5));
  out.insert(out.begin(), '$');
  return out;
}

}  // namespace opus
