// Opus controller (Fig. 6 of the paper).
//
// Receives reconfiguration requests (communication group -> circuit layout),
// maintains the communication-group table and per-rail port ownership, and
// programs the rail OCSes. Scheduling policy per §4:
//
//  - FC-FS: requests are served in arrival order within any overlapping
//    port domain; requests touching disjoint ports proceed concurrently
//    (fine-grained per-group reconfiguration, §5);
//  - conflict avoidance: a reconfiguration only executes once the groups
//    currently owning the requested ports have no collective in flight —
//    i.e. after the completion of the previous communication kernel;
//  - idempotence: a request whose circuits are already live acks
//    immediately without touching the switch (the circuit lookup table).
//
// The controller also models a small control-plane round trip (shim ->
// controller -> OCS -> ack) added to every non-cached request.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "core/circuit_planner.h"
#include "net/cluster.h"
#include "sim/simulator.h"

namespace opus::core {

class OpusController {
 public:
  struct Config {
    /// Control-plane round trip (request + ack over the host network).
    TimeNs control_rtt = usecs(30);
    /// Fine-grained per-group reconfiguration; when false the whole rail is
    /// one lock (the coarse-grained ablation of §5).
    bool fine_grained = true;
  };

  struct Stats {
    int requests = 0;
    /// Requests whose circuits were already live (lookup-table hits).
    int satisfied_immediately = 0;
    /// Requests that caused at least one OCS reconfiguration.
    int reconfigurations = 0;
    /// Requests that had to queue behind a busy port owner.
    int queued = 0;
    /// Sum of (ack time - request time) over all requests.
    TimeNs total_wait = 0;
    /// Max over requests of (ack time - request time).
    TimeNs max_wait = 0;
  };

  OpusController(sim::Simulator& sim, net::Cluster& cluster, Config cfg);
  OpusController(sim::Simulator& sim, net::Cluster& cluster)
      : OpusController(sim, cluster, Config{}) {}

  /// Requests the circuits in `layout` on behalf of `group`; `on_ack` fires
  /// once every circuit is live. Requests from the port-owning group itself
  /// bypass the in-flight check (step-synchronous schedules reconfigure
  /// between their own steps).
  void request(GroupId group, const std::vector<RailCircuits>& layout,
               std::function<void()> on_ack);

  /// Collective activity notifications from the shim: the controller defers
  /// preempting a group's ports while it has kernels in flight.
  void group_activity(GroupId group, int delta);

  /// Permanently retires the controller (tenant teardown): queued jobs are
  /// dropped and future requests are ignored (acked immediately so no caller
  /// hangs). Keeps a finished tenant's speculative provisioning from
  /// reconfiguring ports after its node range has been recycled. Idempotent.
  void retire();
  bool retired() const { return retired_; }

  const Stats& stats() const { return stats_; }
  /// Current owner of a rail port (invalid GroupId when free).
  GroupId port_owner(RailId rail, PortId port) const;

 private:
  struct Job {
    GroupId group;
    std::vector<RailCircuits> layout;
    std::function<void()> on_ack;
    TimeNs requested_at = 0;
    bool counted_queued = false;
  };

  /// True if the job can execute now (no conflicting owner busy, no touched
  /// port mid-reconfiguration).
  bool executable(const Job& job) const;
  void execute(Job job);
  void pump();
  void finish(TimeNs requested_at, const std::function<void()>& on_ack);

  sim::Simulator& sim_;
  net::Cluster& cluster_;
  Config cfg_;
  Stats stats_;
  // owner_[rail][port] = owning group (invalid = free).
  std::vector<std::vector<GroupId>> owner_;
  std::map<GroupId, int> active_;  ///< in-flight collectives per group
  std::deque<Job> queue_;
  bool pumping_ = false;
  bool retired_ = false;
};

}  // namespace opus::core
