#include "core/faults.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace opus::core {

FaultProcess::FaultProcess(sim::Simulator& sim, net::Cluster& cluster,
                           const FaultConfig& cfg)
    : sim_(sim), cluster_(cluster) {
  ensure(cfg.enabled, "FaultProcess: config is disabled");
  ensure(cfg.mtbf_per_port > 0, "FaultProcess: MTBF must be positive");
  ensure(cfg.mttr > 0, "FaultProcess: MTTR must be positive");
  ensure(cfg.horizon > 0 || cfg.max_failures > 0,
         "FaultProcess: unbounded trace (set horizon or max_failures)");

  cluster_.set_fault_tolerant(true);

  const auto& ccfg = cluster_.config();
  const int rails = ccfg.gpus_per_node;
  const std::int64_t total_ports =
      static_cast<std::int64_t>(ccfg.n_nodes) * rails * ccfg.nic_ports;
  // Superposition of per-port Poisson processes: one aggregate stream at
  // rate total_ports / mtbf, each event landing on a uniform port.
  const double mean_gap =
      static_cast<double>(cfg.mtbf_per_port) / static_cast<double>(total_ports);

  SplitMix64 mix(cfg.seed ^ 0xfa017C0FFEE51ULL);
  Xoshiro256 rng(mix.next());
  const auto exponential = [&rng](double mean) {
    return std::max<TimeNs>(
        1, static_cast<TimeNs>(-std::log(1.0 - rng.uniform()) * mean));
  };

  TimeNs t = sim_.now();
  while (cfg.max_failures <= 0 ||
         static_cast<int>(trace_.size()) < cfg.max_failures) {
    t += exponential(mean_gap);
    if (cfg.horizon > 0 && t > cfg.horizon) break;
    FaultEvent ev;
    ev.at = t;
    const auto port = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(total_ports)));
    ev.node = NodeId{static_cast<std::int32_t>(
        port / (rails * ccfg.nic_ports))};
    ev.rail = static_cast<int>(port / ccfg.nic_ports % rails);
    ev.slot = static_cast<int>(port % ccfg.nic_ports);
    ev.repair_after = exponential(static_cast<double>(cfg.mttr));
    trace_.push_back(ev);
  }

  for (const FaultEvent& ev : trace_) {
    sim_.schedule_at(ev.at, [this, ev] {
      if (cluster_.nic_port_failed(ev.node, ev.rail, ev.slot)) {
        ++stats_.failures_skipped;  // already down; the repair is queued
        return;
      }
      cluster_.fail_nic_port(ev.node, ev.rail, ev.slot);
      ++stats_.failures_injected;
      sim_.schedule_after(ev.repair_after, [this, ev] {
        cluster_.repair_nic_port(ev.node, ev.rail, ev.slot);
        ++stats_.repairs_completed;
      });
    });
  }
}

}  // namespace opus::core
