// Seeded Poisson failure/repair churn for NIC ports.
//
// A FaultProcess turns (MTBF, MTTR, seed) into a deterministic fault trace
// and drives it through the Cluster's runtime fault API: each event force-
// fails one uniformly chosen NIC port (OCS port on photonic rails, one NIC
// lane on electrical rails) and schedules its exponential repair. The whole
// trace — instants, targets, and repair delays — is drawn up front from one
// RNG stream, so it depends only on the config, never on simulation state:
// two runs with the same seed inject bit-identical churn, and changing the
// seed moves every instant (the determinism tests pin both properties).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "net/cluster.h"
#include "sim/simulator.h"

namespace opus::core {

struct FaultConfig {
  /// Master switch: everything below is inert (and the cluster stays on the
  /// zero-overhead fault-free paths) until this is set.
  bool enabled = false;
  /// Mean time between failures of ONE NIC port. The aggregate failure rate
  /// is total_ports / mtbf_per_port (ports fail independently).
  TimeNs mtbf_per_port = secs(1);
  /// Mean time to repair a failed port (exponential).
  TimeNs mttr = msecs(50);
  std::uint64_t seed = 1;
  /// No failures are injected after this instant (repairs still land).
  /// Zero = unbounded; then max_failures must bound the trace.
  TimeNs horizon = 0;
  /// Hard cap on injected failures (0 = unbounded; then horizon must be set).
  int max_failures = 64;

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const FaultConfig&, const FaultConfig&) = default;
};

class FaultProcess {
 public:
  struct Stats {
    int failures_injected = 0;  ///< fail_nic_port calls that took effect
    int failures_skipped = 0;   ///< target already failed at fire time
    int repairs_completed = 0;
  };

  /// Generates the trace and schedules every event on `sim`. The cluster is
  /// switched to fault-tolerant mode (rescue/park instead of the legacy
  /// InvariantError contract) as a side effect.
  FaultProcess(sim::Simulator& sim, net::Cluster& cluster,
               const FaultConfig& cfg);

  const Stats& stats() const { return stats_; }
  /// Events in the pre-generated trace (>= failures injected: a trace entry
  /// whose target is already down at fire time is skipped, not re-drawn).
  int trace_size() const { return static_cast<int>(trace_.size()); }

 private:
  struct FaultEvent {
    TimeNs at = 0;
    NodeId node;
    int rail = 0;
    int slot = 0;
    TimeNs repair_after = 0;
  };

  sim::Simulator& sim_;
  net::Cluster& cluster_;
  std::vector<FaultEvent> trace_;
  Stats stats_;
};

}  // namespace opus::core
