// OpusTransport: the photonic-rail transport.
//
// Implements collective::Transport by routing every collective through the
// Opus control plane: the shim intercepts the intent, the circuit planner
// derives the OCS layout, and the controller establishes circuits before the
// executor may start moving bytes (steps 1-6 of Fig. 6). Scale-up-only
// collectives (TP) bypass the control plane entirely; optionally, small
// high-incast collectives are offloaded to the host packet network (§5).
#pragma once

#include <map>
#include <memory>

#include "collective/transport.h"
#include "core/circuit_planner.h"
#include "core/controller.h"
#include "core/shim.h"
#include "net/cluster.h"
#include "sim/simulator.h"

namespace opus::core {

class OpusTransport final : public collective::Transport {
 public:
  struct Options {
    bool provisioning = true;
    OpusController::Config controller;
    /// Offload collectives with payload below this threshold to the host
    /// packet-switched network when one exists (0 disables).
    Bytes mgmt_offload_threshold = 0;
    /// Pipeline depth of the job. Interior stages of a >2-stage pipeline
    /// need circuits to both neighbours at once, so PP pair circuits are
    /// not striped across the full NIC in that case.
    int pipeline_stages = 2;
  };

  OpusTransport(sim::Simulator& sim, net::Cluster& cluster, Options options);
  OpusTransport(sim::Simulator& sim, net::Cluster& cluster)
      : OpusTransport(sim, cluster, Options{}) {}

  // ---- collective::Transport -----------------------------------------------
  void prepare_collective(const collective::CommGroup& group,
                          const collective::CollectiveSchedule& sched,
                          std::function<void()> ready) override;
  bool needs_per_step_preparation(
      const collective::CommGroup& group,
      const collective::CollectiveSchedule& sched) const override;
  void prepare_step(const collective::CommGroup& group,
                    const collective::CollectiveSchedule& sched, int step,
                    std::function<void()> ready) override;
  void send(const collective::CommGroup& group, GpuId src, GpuId dst,
            Bytes bytes, std::function<void()> done) override;
  void collective_finished(
      const collective::CommGroup& group,
      const collective::CollectiveSchedule& sched) override;
  void iteration_started(int index) override;

  // ---- application-driven circuit allocation (§5 "Opportunities") -----------
  /// Lets the application schedule network reconfiguration alongside its
  /// compute kernels — the paper's "circuit connectivity as a callable
  /// abstraction" (analogous to torch.cuda.amp for tensor cores). The
  /// group's circuits for `sched` are provisioned immediately, ahead of the
  /// collective call; unlike shim provisioning this needs no profile, so it
  /// works from the very first iteration. Returns false when the schedule
  /// is not statically wirable (peer-changing algorithms provision per
  /// step regardless).
  bool hint_collective(const collective::CommGroup& group,
                       const collective::CollectiveSchedule& sched);

  /// Tenant teardown: retires the controller (queued/speculative
  /// reconfiguration requests are dropped) so no control-plane activity can
  /// touch the OCS after the job's ports are recycled. In-flight
  /// reconfigurations still complete — quiesce the ports afterwards.
  void shutdown() { controller_->retire(); }

  // ---- introspection ---------------------------------------------------------
  const OpusController& controller() const { return *controller_; }
  const OpusShim& shim() const { return *shim_; }
  const CircuitPlanner& planner() const { return planner_; }
  /// Total OCS reconfigurations across all rails.
  std::int64_t total_ocs_reconfigurations() const;
  /// Total port-darkness time across all rails.
  TimeNs total_dark_time() const;

 private:
  bool needs_circuits(const collective::CommGroup& group) const;
  bool offload_to_mgmt(const collective::CommGroup& group, Bytes payload) const;

  sim::Simulator& sim_;
  net::Cluster& cluster_;
  Options options_;
  CircuitPlanner planner_;
  std::unique_ptr<OpusController> controller_;
  std::unique_ptr<OpusShim> shim_;
  /// Groups currently offloaded to the management network.
  std::map<GroupId, bool> mgmt_mode_;
};

}  // namespace opus::core
