#include "core/opus_transport.h"

#include "common/error.h"

namespace opus::core {

OpusTransport::OpusTransport(sim::Simulator& sim, net::Cluster& cluster,
                             Options options)
    : sim_(sim),
      cluster_(cluster),
      options_(options),
      planner_(cluster),
      controller_(std::make_unique<OpusController>(sim, cluster,
                                                   options.controller)),
      shim_(std::make_unique<OpusShim>(options.provisioning)) {
  ensure(cluster_.photonic(), "OpusTransport requires photonic rails");
  if (options_.pipeline_stages > 2) {
    planner_.set_dim_stripe_limit(collective::ParallelismDim::kPP, 1);
  }
  shim_->set_speculate(
      [this](GroupId g, const std::vector<RailCircuits>& layout) {
        controller_->request(g, layout, {});  // speculative: nothing waits
      });
}

bool OpusTransport::needs_circuits(const collective::CommGroup& group) const {
  if (group.ranks.size() < 2) return false;
  const NodeId node = cluster_.node_of(group.ranks.front());
  for (GpuId g : group.ranks) {
    if (cluster_.node_of(g) != node) return true;
  }
  return false;  // scale-up only (TP/CP inside the node)
}

bool OpusTransport::offload_to_mgmt(const collective::CommGroup& group,
                                    Bytes payload) const {
  return options_.mgmt_offload_threshold > 0 && cluster_.has_mgmt_network() &&
         needs_circuits(group) && payload <= options_.mgmt_offload_threshold;
}

void OpusTransport::prepare_collective(
    const collective::CommGroup& group,
    const collective::CollectiveSchedule& sched,
    std::function<void()> ready) {
  if (!needs_circuits(group)) {
    ready();
    return;
  }
  if (offload_to_mgmt(group, sched.payload_bytes)) {
    mgmt_mode_[group.id] = true;
    ready();
    return;
  }
  mgmt_mode_.erase(group.id);

  const auto layout = planner_.plan_static(group, sched);
  if (!layout.has_value()) {
    // Peer-changing schedule: circuits are established per step via
    // prepare_step; the intent is still recorded for phase tracking.
    shim_->on_intent(group.dim, {});
    controller_->group_activity(group.id, +1);
    ready();
    return;
  }
  shim_->on_intent(group.dim, *layout);
  // The group becomes "active" (its circuits must not be preempted) only
  // once the controller grants them — marking it active while still queued
  // would let two queued groups deadlock on each other's ports.
  controller_->request(group.id, *layout,
                       [this, id = group.id, cb = std::move(ready)] {
                         controller_->group_activity(id, +1);
                         cb();
                       });
}

bool OpusTransport::needs_per_step_preparation(
    const collective::CommGroup& group,
    const collective::CollectiveSchedule& sched) const {
  if (!needs_circuits(group)) return false;
  if (offload_to_mgmt(group, sched.payload_bytes)) return false;
  return !planner_.static_wirable(group, sched);
}

void OpusTransport::prepare_step(const collective::CommGroup& group,
                                 const collective::CollectiveSchedule& sched,
                                 int step, std::function<void()> ready) {
  if (!needs_circuits(group) || offload_to_mgmt(group, sched.payload_bytes)) {
    ready();
    return;
  }
  const auto layout = planner_.plan_step(group, sched, step);
  controller_->request(group.id, layout, std::move(ready));
}

void OpusTransport::send(const collective::CommGroup& group, GpuId src,
                         GpuId dst, Bytes bytes, std::function<void()> done) {
  const auto it = mgmt_mode_.find(group.id);
  if (it != mgmt_mode_.end() && it->second && src != dst) {
    cluster_.transfer_mgmt(src, dst, bytes, std::move(done));
    return;
  }
  cluster_.transfer(src, dst, bytes, std::move(done));
}

void OpusTransport::collective_finished(
    const collective::CommGroup& group,
    const collective::CollectiveSchedule& sched) {
  (void)sched;
  if (!needs_circuits(group)) return;
  if (mgmt_mode_.contains(group.id)) return;
  controller_->group_activity(group.id, -1);
  shim_->on_finished(group.dim);
}

void OpusTransport::iteration_started(int index) {
  shim_->iteration_started(index);
}

bool OpusTransport::hint_collective(
    const collective::CommGroup& group,
    const collective::CollectiveSchedule& sched) {
  if (!needs_circuits(group)) return true;  // nothing to provision
  const auto layout = planner_.plan_static(group, sched);
  if (!layout.has_value()) return false;
  controller_->request(group.id, *layout, {});  // ahead-of-demand, no waiter
  return true;
}

std::int64_t OpusTransport::total_ocs_reconfigurations() const {
  return cluster_.total_ocs_reconfigurations();
}

TimeNs OpusTransport::total_dark_time() const {
  return cluster_.total_ocs_dark_time();
}

}  // namespace opus::core
