// RotorNet-style traffic-oblivious rotor transport — the §3 contrast case.
//
// Prior reconfigurable datacenter fabrics (RotorNet [38], Shale [2], Sirius
// [3]) rotate each switch through a fixed cycle of matchings regardless of
// demand; traffic waits for the matching that connects its endpoints. The
// paper argues this is "poorly suited to the repetitive and high-volume
// collective communication patterns of ML workloads" — this transport makes
// that claim testable: the same collectives run over a rotor fabric and over
// Opus's demand-driven reconfiguration (bench_ablation_rotor).
//
// Model: every rail cycles through the n-1 round-robin (circle method)
// perfect matchings of its n nodes. Each matching stays up for `slot_time`,
// then the rail reconfigures (paying the OCS delay) to the next one.
// Rotation defers until in-flight transfers drain (guard bands). A send
// waits until the live matching connects its pair — or, when the cluster's
// rotor_port_spread stripes different matchings across the NIC ports,
// forwards over at most two live hops (RotorNet's direct-or-Valiant
// routing) and only waits when even that fails.
//
// The rotor is a first-class fabric: select it with FabricKind::kRotor in
// ExperimentConfig and run_experiment builds the cluster (round-0 matchings
// wired by net::Cluster), drives this transport, and folds the rails' dark
// time and reconfiguration counts into ExperimentResult exactly as for the
// Opus OCS fabric.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "collective/transport.h"
#include "net/cluster.h"
#include "sim/simulator.h"

namespace opus::core {

class RotorTransport final : public collective::Transport {
 public:
  struct Options {
    /// How long each matching carries traffic before rotating.
    TimeNs slot_time = msecs(1);
  };

  /// Requires a cluster built with FabricKind::kRotor (the cluster wires
  /// the round-0 matchings and owns the port-spread policy). The span-taking
  /// overload builds a *tenant sub-rotor* that rotates only the matchings of
  /// its node span (its own, shorter cycle) on every rail — several
  /// sub-rotors share one rail OCS in a fleet, reconfiguring disjoint port
  /// blocks. It wires its span's round-0 matchings itself when the cluster
  /// deferred fabric wiring.
  RotorTransport(sim::Simulator& sim, net::Cluster& cluster, Options options,
                 net::NodeSpan span);
  RotorTransport(sim::Simulator& sim, net::Cluster& cluster, Options options)
      : RotorTransport(sim, cluster, options,
                       net::NodeSpan{0, cluster.n_nodes()}) {}
  RotorTransport(sim::Simulator& sim, net::Cluster& cluster)
      : RotorTransport(sim, cluster, Options{}) {}

  // ---- collective::Transport -----------------------------------------------
  void prepare_collective(const collective::CommGroup&,
                          const collective::CollectiveSchedule&,
                          std::function<void()> ready) override {
    ready();  // the rotor ignores demand
  }
  bool needs_per_step_preparation(
      const collective::CommGroup&,
      const collective::CollectiveSchedule&) const override {
    return false;
  }
  void prepare_step(const collective::CommGroup&,
                    const collective::CollectiveSchedule&, int,
                    std::function<void()> ready) override {
    ready();
  }
  void send(const collective::CommGroup& group, GpuId src, GpuId dst,
            Bytes bytes, std::function<void()> done) override;

  /// Rounds completed across all rails (diagnostics). Every counted
  /// rotation issues exactly one state-changing OCS reconfiguration, so for
  /// a single-tenant rotor fabric this equals the summed per-rail
  /// OCS-reconfiguration stats (a 1-round span freezes instead of
  /// re-wiring its only matching and counts nothing). 64-bit, matching the
  /// OCS Stats counters: 4k-node runs overflow 32 bits.
  std::int64_t rotations() const { return rotations_; }
  /// Sends that had to wait for their matching.
  std::int64_t deferred_sends() const { return deferred_; }
  int current_round(RailId rail) const;
  net::NodeSpan span() const { return span_; }

  /// Permanently stops the rotation schedule (tenant teardown): no further
  /// slot timers, rotations, or reconfigurations. In-flight OCS
  /// reconfigurations still complete — quiesce the span's ports afterwards
  /// before recycling them. Idempotent.
  void shutdown();

  /// Re-checks every rail's pending rotation against the drain state. Fault
  /// churn needs this: a failure can park an in-flight transfer's bytes
  /// (see drained()), and the rotation that was waiting on it must proceed
  /// or the rail deadlocks. Called by the fault reaction path; harmless (and
  /// a no-op) on a healthy rotor.
  void poke();

 private:
  struct PendingSend {
    GpuId src;
    GpuId dst;
    Bytes bytes;
    std::function<void()> done;
  };
  struct RailState {
    int round = 0;
    bool rotating = false;   ///< OCS mid-reconfiguration
    int in_flight = 0;       ///< transfers on the live matching
    bool drain_pending = false;  ///< rotation waiting for in_flight == 0
    /// Slot timer active. The rotor freezes on its current matching when a
    /// rail is completely idle (no transfers, nothing waiting) so a finite
    /// workload leaves a finite event queue; the clock re-arms on demand.
    bool timer_armed = false;
    std::deque<PendingSend> waiting;
    /// Per-round OCS batch handles (-1 = not yet registered). A rotation
    /// replays the same matching every cycle, so each round's circuit set is
    /// registered with the rail OCS once — on its first rotation — and
    /// applied as a single batched transaction from then on.
    std::vector<net::OpticalCircuitSwitch::BatchId> round_batch;
  };

  void start_round(int rail);
  bool drained(int rail) const;
  void on_slot_end(int rail);
  void rotate(int rail);
  void flush_waiting(int rail);
  bool pair_connected_now(int rail, GpuId src, GpuId dst) const;
  void launch(int rail, PendingSend send);

  sim::Simulator& sim_;
  net::Cluster& cluster_;
  Options options_;
  net::NodeSpan span_;
  std::vector<RailState> rails_;
  int n_rounds_ = 0;
  std::int64_t rotations_ = 0;
  std::int64_t deferred_ = 0;
  bool stopped_ = false;
};

}  // namespace opus::core
