// Circuit planning: maps a communication group + collective schedule onto
// OCS circuit layouts, one per rail.
//
// Ring-family schedules (ring AR/AG/RS, Send/Recv pairs) are *statically
// wirable*: their whole peer graph fits each member's NIC port budget and is
// held up for the collective's full duration. Peer-changing algorithms
// (recursive doubling/halving, pairwise AllToAll, trees beyond the port
// budget) are wired *per step* — the executor runs them step-synchronously
// and pays one reconfiguration per peer change (constraint C1).
//
// Port allocation (constraint C3): edges are assigned greedily to the first
// free port at each endpoint. When the whole layout leaves every endpoint
// with spare ports, circuits are striped (duplicated across port pairs) so
// a 2-member group on a 2-port NIC gets the full 400G, matching the paper's
// equal-bandwidth comparison against electrical rails.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "collective/comm_group.h"
#include "collective/schedule.h"
#include "net/cluster.h"
#include "net/ocs.h"

namespace opus::core {

/// Circuits to establish on one rail.
struct RailCircuits {
  RailId rail;
  std::vector<net::CircuitRequest> circuits;
};

class CircuitPlanner {
 public:
  explicit CircuitPlanner(const net::Cluster& cluster) : cluster_(cluster) {}

  /// Caps the striping factor for groups of a parallelism dimension.
  /// Example: pipeline *pair* groups look like degree-1 edges to the
  /// planner, but an interior stage of a >2-stage pipeline needs both
  /// neighbours at once — capping kPP stripes to 1 leaves the second NIC
  /// port free for the other neighbour's circuit.
  void set_dim_stripe_limit(collective::ParallelismDim dim, int limit);

  /// Static layout holding the whole schedule's peer graph at once, or
  /// nullopt when some endpoint would need more circuits than it has ports.
  std::optional<std::vector<RailCircuits>> plan_static(
      const collective::CommGroup& group,
      const collective::CollectiveSchedule& sched) const;

  /// Layout for one step of a peer-changing schedule. Throws if even a
  /// single step exceeds the port budget (the algorithm chooser should have
  /// prevented that) — except on a fault-tolerant cluster, where failures
  /// may have shrunk the budget mid-run after the algorithm was chosen:
  /// there the step plan is best-effort, dropping the circuits that no
  /// longer fit (their sends ride the cluster's multihop/park rescue paths
  /// until repair restores the ports).
  std::vector<RailCircuits> plan_step(
      const collective::CommGroup& group,
      const collective::CollectiveSchedule& sched, int step) const;

  bool static_wirable(const collective::CommGroup& group,
                      const collective::CollectiveSchedule& sched) const {
    return plan_static(group, sched).has_value();
  }

  /// All OCS ports a layout touches, per rail (for ownership tracking).
  static std::vector<PortId> ports_of(const RailCircuits& rc);

 private:
  /// Lowers (src gpu, dst gpu) peer pairs to per-rail node-graph edges:
  /// same-node pairs need no circuit; same-rail pairs ride their rail;
  /// cross-rank pairs ride the destination's rail from the PXN bridge node.
  struct RailEdge {
    int rail;
    int node_a;
    int node_b;
  };
  std::vector<RailEdge> lower_edges(
      const collective::CommGroup& group,
      const std::vector<std::pair<int, int>>& peer_pairs) const;

  /// best_effort: instead of failing the whole layout when an endpoint's
  /// degree exceeds its surviving ports, plan what fits and drop the rest.
  std::optional<std::vector<RailCircuits>> assign_ports(
      const std::vector<RailEdge>& edges, int stripe_limit,
      bool best_effort = false) const;
  int stripe_limit_for(collective::ParallelismDim dim) const;

  const net::Cluster& cluster_;
  std::map<collective::ParallelismDim, int> dim_stripe_limit_;
};

}  // namespace opus::core
