// End-to-end experiment harness: build a cluster + workload, run N training
// iterations, collect iteration times, traces, and reconfiguration
// statistics. Shared by the tests, the examples, and every figure bench.
#pragma once

#include <memory>
#include <vector>

#include "collective/transport.h"
#include "core/opus_transport.h"
#include "net/cluster.h"
#include "sim/simulator.h"
#include "trace/recorder.h"
#include "workload/compute_model.h"
#include "workload/engine.h"
#include "workload/iteration.h"
#include "workload/model_config.h"
#include "workload/parallelism.h"

namespace opus::core {

struct ExperimentConfig {
  workload::ModelConfig model = workload::ModelConfig::llama3_8b();
  workload::ParallelismConfig parallelism;
  /// Scale-up domain size; world_size must be a whole number of nodes.
  int gpus_per_node = 4;

  net::RailKind rail_kind = net::RailKind::kPhotonic;
  /// Photonic only: wire a fixed pre-job ring per rail and never
  /// reconfigure (TPUv4-style baseline); non-neighbour traffic multi-hops.
  bool static_ring_topology = false;
  int nic_ports = 2;
  Bandwidth nic_total_bw = Bandwidth::gbps(400);
  Bandwidth nvlink_bw = Bandwidth::gbps(2400);
  TimeNs ocs_reconfig_delay = msecs(15);
  Bandwidth mgmt_bw = Bandwidth::gbps(0);

  workload::GpuSpec gpu = workload::GpuSpec::a100();
  double mfu = 0.35;
  bool activation_recompute = true;

  workload::IterationOptions iteration;
  workload::IterationEngine::Options engine;
  bool provisioning = true;
  Bytes mgmt_offload_threshold = 0;
  int iterations = 3;
  /// Drop per-compute-span records (saves memory on large runs).
  bool record_compute_trace = true;
};

struct ExperimentResult {
  std::vector<TimeNs> iteration_times;
  /// Mean iteration time excluding iteration 0 (Opus profiles there).
  TimeNs steady_iteration_time = 0;
  int ocs_reconfigurations = 0;
  TimeNs ocs_dark_time = 0;
  OpusController::Stats controller;
  int shim_speculative_requests = 0;
  int shim_mispredictions = 0;
  std::shared_ptr<trace::TraceRecorder> recorder;
  /// Bytes moved per route class (scale-up / rail / PXN / mgmt).
  Bytes rail_bytes = 0;
  Bytes scale_up_bytes = 0;
  Bytes pxn_bytes = 0;
  Bytes mgmt_bytes = 0;
  /// Logical bytes that needed multi-hop forwarding (static topologies).
  Bytes multihop_bytes = 0;
};

/// Builds and runs the experiment to completion.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// The paper's §3.1 trace workload: Llama3-8B, TP=4 (intra-node), FSDP=2,
/// PP=2, 1F1B, microbatch size 2, on 4 nodes x 4 A100.
ExperimentConfig perlmutter_llama3_8b_config();

}  // namespace opus::core
