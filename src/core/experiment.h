// End-to-end experiment harness: build a cluster + workload, run N training
// iterations, collect iteration times, traces, and reconfiguration
// statistics. Shared by the tests, the examples, and every figure bench.
//
// The fabric axis of the paper's comparison set is one field:
// ExperimentConfig::fabric (net::FabricKind) selects electrical packet
// rails, Opus's demand-driven OCS, the static pre-job ring, or the
// traffic-oblivious rotor — run_experiment builds the matching cluster and
// transport and fills the fabric-specific accounting (OCS reconfigurations
// and dark time for every photonic fabric, controller/shim stats for Opus,
// rotation/deferral counts for the rotor) into ExperimentResult.
#pragma once

#include <memory>
#include <vector>

#include "collective/transport.h"
#include "core/faults.h"
#include "core/opus_transport.h"
#include "net/cluster.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "trace/recorder.h"
#include "workload/compute_model.h"
#include "workload/engine.h"
#include "workload/iteration.h"
#include "workload/model_config.h"
#include "workload/parallelism.h"

namespace opus::core {

class RotorTransport;
class StaticRingTransport;

struct ExperimentConfig {
  workload::ModelConfig model = workload::ModelConfig::llama3_8b();
  workload::ParallelismConfig parallelism;
  /// Scale-up domain size; world_size must be a whole number of nodes.
  int gpus_per_node = 4;

  /// The scale-out fabric under test — the paper's comparison axis.
  net::FabricKind fabric = net::FabricKind::kOpusPhotonic;
  /// kRotor only: how long each matching carries traffic before rotating.
  TimeNs rotor_slot_time = msecs(1);
  /// kRotor only: consecutive matchings striped across NIC ports (see
  /// net::ClusterConfig::rotor_port_spread). The default of 2 gives
  /// RotorNet-style direct-or-two-hop routing; 1 is the classic rotor that
  /// waits for its matching.
  int rotor_port_spread = 2;
  int nic_ports = 2;
  Bandwidth nic_total_bw = Bandwidth::gbps(400);
  Bandwidth nvlink_bw = Bandwidth::gbps(2400);
  TimeNs ocs_reconfig_delay = msecs(15);
  Bandwidth mgmt_bw = Bandwidth::gbps(0);

  workload::GpuSpec gpu = workload::GpuSpec::a100();
  double mfu = 0.35;
  bool activation_recompute = true;

  workload::IterationOptions iteration;
  workload::IterationEngine::Options engine;
  bool provisioning = true;
  Bytes mgmt_offload_threshold = 0;
  int iterations = 3;
  /// Drop per-compute-span records (saves memory on large runs).
  bool record_compute_trace = true;
  /// Compat flag: force the cluster's legacy eager pre-job fabric wiring
  /// (net::ClusterConfig::defer_fabric_wiring = false) instead of the
  /// default lazy wiring where each transport wires its own span. Results
  /// are bit-identical either way (pinned by the regression tests); eager
  /// wiring just materializes whole-fabric state up front.
  bool eager_fabric_wiring = false;

  /// Mid-run failure/repair churn. Disabled (zero overhead, legacy
  /// semantics) unless faults.enabled is set; then run_experiment schedules
  /// a FaultProcess, switches the cluster to fault-tolerant rescue/park
  /// semantics, and wires the per-fabric reactions (static-ring resplice,
  /// rotor drain poke; Opus re-plans per collective anyway).
  FaultConfig faults;

  /// Observability: metrics registry + periodic probe + chrome-trace export
  /// + self-profiling (src/obs). Disabled by default with strictly zero
  /// overhead; enabling it never changes any simulation result field (the
  /// determinism suite pins this).
  obs::TelemetryConfig telemetry;

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const ExperimentConfig&,
                         const ExperimentConfig&) = default;
};

struct ExperimentResult {
  std::vector<TimeNs> iteration_times;
  /// Mean iteration time excluding iteration 0 (Opus profiles there).
  TimeNs steady_iteration_time = 0;
  /// OCS reconfigurations and port-darkness time summed over all rails —
  /// filled for every photonic fabric (Opus's demand-driven reconfigurations
  /// and the rotor's rotations account dark time identically; a static ring
  /// never reconfigures after t=0, so both stay 0).
  std::int64_t ocs_reconfigurations = 0;
  TimeNs ocs_dark_time = 0;
  /// kRotor only: rotation rounds completed / sends that had to wait.
  /// 64-bit end to end: 4k-node rotor runs overflow 32-bit tallies.
  std::int64_t rotor_rotations = 0;
  std::int64_t rotor_deferred_sends = 0;
  OpusController::Stats controller;
  int shim_speculative_requests = 0;
  int shim_mispredictions = 0;
  std::shared_ptr<trace::TraceRecorder> recorder;
  /// Bytes moved per route class (scale-up / rail / PXN / mgmt).
  Bytes rail_bytes = 0;
  Bytes scale_up_bytes = 0;
  Bytes pxn_bytes = 0;
  Bytes mgmt_bytes = 0;
  /// Logical bytes that needed multi-hop forwarding (static topologies).
  Bytes multihop_bytes = 0;
  /// Failure churn (all zero unless config.faults.enabled).
  FaultProcess::Stats fault_stats;
  int fault_trace_size = 0;
  /// Telemetry hub (null unless config.telemetry.enabled()): finalized
  /// metrics snapshot, sampled series, chrome trace, self-profiler.
  std::shared_ptr<obs::Telemetry> telemetry;
};

/// One training job instantiated on (a node sub-range of) a shared cluster:
/// the DAG (GPU ranks offset to the span), per-job trace recorder, the
/// fabric transport scoped to the span, and the iteration engine. This is
/// the reusable per-tenant unit: run_experiment builds exactly one spanning
/// the whole cluster, and the fleet driver (src/fleet) interleaves many of
/// them on one simulator so tenants contend for the shared fluid network
/// and OCS ports.
struct Tenant {
  net::NodeSpan span;
  workload::IterationDag dag;
  std::shared_ptr<trace::TraceRecorder> recorder;
  std::unique_ptr<collective::Transport> transport;
  /// Fabric-specific views into `transport` (null for the other fabrics).
  OpusTransport* opus = nullptr;
  RotorTransport* rotor = nullptr;
  StaticRingTransport* ring = nullptr;
  std::unique_ptr<workload::IterationEngine> engine;

  /// Stops demand-driven control-plane activity (rotor rotation, Opus
  /// speculative provisioning) so the span's OCS ports can quiesce and be
  /// recycled. Idempotent; no-op for passive transports.
  void shutdown_transport();

  /// Per-fabric reaction to a fault event inside the span: the ring
  /// resplices repaired segments, the rotor re-checks its drain guards.
  /// (Opus needs nothing here — every collective re-plans around failed
  /// ports.) Safe to call for faults outside the span.
  void react_to_fault(const net::NicFault& fault);

  /// Kills the tenant mid-run (fleet eviction after a disconnecting
  /// failure): aborts the engine — completed iterations remain as the
  /// checkpoint — stops the control plane, and aborts all span traffic so
  /// no orphaned completion fires. Idempotent.
  void abort(net::Cluster& cluster);
};

/// The cluster an ExperimentConfig implies (node count derived from the
/// world size; fabric/NIC/bandwidth knobs copied through). The two-argument
/// overload sizes the cluster explicitly instead — the fleet driver hosts
/// many jobs on a cluster larger than any one of them.
net::ClusterConfig cluster_config_for(const ExperimentConfig& config);
net::ClusterConfig cluster_config_for(const ExperimentConfig& config,
                                      int n_nodes);

/// Builds one tenant of `config`'s model/parallelism on `span` of an
/// existing cluster. The span must hold exactly the job's world size. The
/// engine is constructed but not started — call engine->run(...) (fleet) or
/// engine->run_to_completion (single job).
Tenant build_tenant(sim::Simulator& sim, net::Cluster& cluster,
                    const ExperimentConfig& config, net::NodeSpan span);

/// Builds and runs the experiment to completion.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// The paper's §3.1 trace workload: Llama3-8B, TP=4 (intra-node), FSDP=2,
/// PP=2, 1F1B, microbatch size 2, on 4 nodes x 4 A100.
ExperimentConfig perlmutter_llama3_8b_config();

}  // namespace opus::core
