#include "core/experiment.h"

#include <numeric>

#include "common/error.h"
#include "core/rotor.h"
#include "core/static_ring.h"

namespace opus::core {

ExperimentConfig perlmutter_llama3_8b_config() {
  ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::llama3_8b();
  cfg.parallelism.tp = 4;
  cfg.parallelism.dp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.fsdp = true;
  cfg.parallelism.n_microbatches = 8;
  cfg.parallelism.microbatch_size = 2;
  cfg.gpus_per_node = 4;
  cfg.gpu = workload::GpuSpec::a100();
  // Calibrated against §3.1: ~10 s iterations, ~1 s cool-down backward per
  // stage (the window preceding the ReduceScatter phase in Fig. 4).
  cfg.mfu = 0.20;
  cfg.activation_recompute = true;
  return cfg;
}

net::ClusterConfig cluster_config_for(const ExperimentConfig& config) {
  config.parallelism.validate();
  const int world = config.parallelism.world_size();
  ensure(world % config.gpus_per_node == 0,
         "experiment: world size must fill whole nodes");
  return cluster_config_for(config, world / config.gpus_per_node);
}

net::ClusterConfig cluster_config_for(const ExperimentConfig& config,
                                      int n_nodes) {
  net::ClusterConfig ncfg;
  ncfg.n_nodes = n_nodes;
  ncfg.gpus_per_node = config.gpus_per_node;
  ncfg.nic_ports = config.nic_ports;
  ncfg.nic_total_bw = config.nic_total_bw;
  ncfg.nvlink_bw = config.nvlink_bw;
  ncfg.fabric = config.fabric;
  ncfg.ocs_reconfig_delay = config.ocs_reconfig_delay;
  ncfg.mgmt_bw = config.mgmt_bw;
  ncfg.rotor_port_spread = config.rotor_port_spread;
  ncfg.defer_fabric_wiring = !config.eager_fabric_wiring;
  return ncfg;
}

void Tenant::shutdown_transport() {
  if (opus != nullptr) opus->shutdown();
  if (rotor != nullptr) rotor->shutdown();
}

void Tenant::react_to_fault(const net::NicFault& fault) {
  if (!fault.node.valid() || !span.contains(fault.node.value())) return;
  if (ring != nullptr && !fault.failed) ring->resplice();
  if (rotor != nullptr) rotor->poke();
}

void Tenant::abort(net::Cluster& cluster) {
  if (engine != nullptr) engine->abort();
  shutdown_transport();
  cluster.abort_span_traffic(span);
}

Tenant build_tenant(sim::Simulator& sim, net::Cluster& cluster,
                    const ExperimentConfig& config, net::NodeSpan span) {
  config.parallelism.validate();
  ensure(config.gpus_per_node == cluster.gpus_per_node(),
         "tenant: scale-up domain size must match the cluster");
  const int world = config.parallelism.world_size();
  ensure(world % config.gpus_per_node == 0,
         "tenant: world size must fill whole nodes");
  ensure(world / config.gpus_per_node == span.count,
         "tenant: node span must hold exactly the job's world size");
  ensure(span.first >= 0 && span.end() <= cluster.n_nodes(),
         "tenant: node span out of cluster range");

  Tenant tenant;
  tenant.span = span;

  workload::RankMapper mapper(config.parallelism, config.gpus_per_node);
  workload::ComputeModel compute(config.gpu, config.mfu,
                                 config.activation_recompute);
  workload::IterationOptions iter_opts = config.iteration;
  iter_opts.nvlink_bw = config.nvlink_bw;
  tenant.dag = workload::build_training_iteration(
      config.model, config.parallelism, mapper, compute, iter_opts);
  workload::offset_dag_gpus(tenant.dag,
                            span.first * config.gpus_per_node);

  tenant.recorder =
      std::make_shared<trace::TraceRecorder>(config.record_compute_trace);

  switch (cluster.fabric()) {
    case net::FabricKind::kElectrical:
      tenant.transport = std::make_unique<collective::DirectTransport>(cluster);
      break;
    case net::FabricKind::kOpusPhotonic: {
      OpusTransport::Options opts;
      opts.provisioning = config.provisioning;
      opts.mgmt_offload_threshold = config.mgmt_offload_threshold;
      opts.pipeline_stages = config.parallelism.pp;
      auto t = std::make_unique<OpusTransport>(sim, cluster, opts);
      tenant.opus = t.get();
      tenant.transport = std::move(t);
      break;
    }
    case net::FabricKind::kStaticRing: {
      auto t = std::make_unique<StaticRingTransport>(cluster, span);
      tenant.ring = t.get();
      tenant.transport = std::move(t);
      break;
    }
    case net::FabricKind::kRotor: {
      RotorTransport::Options opts;
      opts.slot_time = config.rotor_slot_time;
      auto t = std::make_unique<RotorTransport>(sim, cluster, opts, span);
      tenant.rotor = t.get();
      tenant.transport = std::move(t);
      break;
    }
  }

  tenant.engine = std::make_unique<workload::IterationEngine>(
      sim, cluster, *tenant.transport, tenant.recorder.get(), config.engine);
  return tenant;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  sim::Simulator sim;
  net::Cluster cluster(sim, cluster_config_for(config));

  // The single-job run is the one-tenant special case: one tenant spanning
  // the whole cluster, driven to completion on a private simulator.
  Tenant tenant =
      build_tenant(sim, cluster, config, net::NodeSpan{0, cluster.n_nodes()});

  // Telemetry, when requested: fabric gauges + OCS observers attach before
  // any traffic, the probe starts at t=0. Pure observation — the
  // determinism suite pins that results are bit-identical either way.
  std::shared_ptr<obs::Telemetry> telemetry;
  if (config.telemetry.enabled()) {
    telemetry = std::make_shared<obs::Telemetry>(config.telemetry);
    telemetry->attach_fabric(sim, cluster);
  }

  // Failure churn, when requested: schedule the seeded fault trace and let
  // the single tenant continue degraded (the fleet driver, not this path,
  // implements eviction/re-placement for disconnecting failures).
  std::unique_ptr<FaultProcess> faults;
  if (config.faults.enabled) {
    faults = std::make_unique<FaultProcess>(sim, cluster, config.faults);
    cluster.set_fault_listener(
        [&tenant, &sim, tel = telemetry.get()](const net::NicFault& f) {
          if (tel != nullptr) tel->on_fault(f, sim.now());
          tenant.react_to_fault(f);
        });
  }

  if (telemetry != nullptr) telemetry->start_probe(sim);

  ExperimentResult result;
  result.iteration_times =
      tenant.engine->run_to_completion(tenant.dag, config.iterations);
  result.recorder = tenant.recorder;

  if (result.iteration_times.size() > 1) {
    const auto begin = result.iteration_times.begin() + 1;
    const TimeNs sum = std::accumulate(begin, result.iteration_times.end(),
                                       static_cast<TimeNs>(0));
    result.steady_iteration_time =
        sum / static_cast<TimeNs>(result.iteration_times.size() - 1);
  } else {
    result.steady_iteration_time = result.iteration_times.front();
  }

  if (cluster.photonic()) {
    // Fig. 8 accounting is a property of the rails, not the control plane:
    // sum every rail's OCS stats so demand-driven (Opus) and oblivious
    // (rotor) reconfiguration report through the same fields.
    result.ocs_reconfigurations = cluster.total_ocs_reconfigurations();
    result.ocs_dark_time = cluster.total_ocs_dark_time();
  }
  if (tenant.opus != nullptr) {
    result.controller = tenant.opus->controller().stats();
    result.shim_speculative_requests =
        tenant.opus->shim().speculative_requests();
    result.shim_mispredictions = tenant.opus->shim().mispredictions();
  }
  if (tenant.rotor != nullptr) {
    result.rotor_rotations = tenant.rotor->rotations();
    result.rotor_deferred_sends = tenant.rotor->deferred_sends();
    // Aggregation invariant: the rotor is the only agent reconfiguring a
    // single-tenant rotor fabric, and every counted rotation is exactly one
    // state-changing reconfiguration of one rail OCS — so the per-rail OCS
    // stats must sum to the rotation tally (pinned by test_rotor.cpp).
    // Fault churn breaks the 1:1 mapping legitimately: a rotation into
    // failed ports widens to a generic reconfiguration (or none at all when
    // no circuit survives), and repairs/resplices reconfigure without a
    // rotation — so the invariant only holds fault-free.
    ensure(config.faults.enabled ||
               result.ocs_reconfigurations == result.rotor_rotations,
           "rotor: summed per-rail OCS reconfigurations diverge from the "
           "rotation count");
  }
  if (faults != nullptr) {
    result.fault_stats = faults->stats();
    result.fault_trace_size = faults->trace_size();
  }
  if (telemetry != nullptr) {
    if (config.telemetry.tracing()) {
      telemetry->trace().add_recorder(obs::Telemetry::kTenantPidBase, "tenant",
                                      *tenant.recorder);
    }
    // Must happen while sim/cluster are alive: snapshots the gauges and
    // closes open circuit spans at end-of-run.
    telemetry->finalize(sim.now());
    result.telemetry = telemetry;
  }
  result.rail_bytes = cluster.bytes_on_route(net::Cluster::Route::kRail);
  result.scale_up_bytes = cluster.bytes_on_route(net::Cluster::Route::kScaleUp);
  result.pxn_bytes = cluster.bytes_on_route(net::Cluster::Route::kPxn);
  result.mgmt_bytes = cluster.bytes_on_route(net::Cluster::Route::kMgmt);
  result.multihop_bytes =
      cluster.bytes_on_route(net::Cluster::Route::kRailMultiHop);
  return result;
}

}  // namespace opus::core
