#include "core/sweep.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.h"

namespace opus::core {

SweepShard sweep_shard() {
  const char* env = std::getenv("OPUS_SWEEP_SHARD");
  if (env == nullptr || *env == '\0') return {};
  int index = -1;
  int count = -1;
  char trailing = '\0';
  const int fields = std::sscanf(env, "%d/%d%c", &index, &count, &trailing);
  ensure(fields == 2 && count >= 1 && index >= 0 && index < count,
         "OPUS_SWEEP_SHARD must be 'i/N' with 0 <= i < N");
  return {index, count};
}

int sweep_thread_count(const SweepOptions& opts) {
  if (opts.threads > 0) return opts.threads;
  if (const char* env = std::getenv("OPUS_SWEEP_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  ensure(threads >= 1, "parallel_for: thread count must be >= 1");
  if (n == 0) return;
  const std::size_t workers =
      std::min(static_cast<std::size_t>(threads), n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& cells, const SweepOptions& opts) {
  std::vector<ExperimentResult> results(cells.size());
  const SweepShard shard = opts.use_shard ? sweep_shard() : SweepShard{};
  if (!shard.active()) {
    parallel_for(cells.size(), sweep_thread_count(opts),
                 [&](std::size_t i) { results[i] = run_experiment(cells[i]); });
    return results;
  }
  std::vector<std::size_t> own;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (shard.owns(i)) own.push_back(i);
  }
  parallel_for(own.size(), sweep_thread_count(opts), [&](std::size_t k) {
    results[own[k]] = run_experiment(cells[own[k]]);
  });
  return results;
}

}  // namespace opus::core
