#include "core/circuit_planner.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"

namespace opus::core {

std::vector<PortId> CircuitPlanner::ports_of(const RailCircuits& rc) {
  std::set<PortId> ports;
  for (const net::CircuitRequest& c : rc.circuits) {
    ports.insert(c.a);
    ports.insert(c.b);
  }
  return {ports.begin(), ports.end()};
}

std::vector<CircuitPlanner::RailEdge> CircuitPlanner::lower_edges(
    const collective::CommGroup& group,
    const std::vector<std::pair<int, int>>& peer_pairs) const {
  std::set<std::tuple<int, int, int>> edges;  // (rail, node_lo, node_hi)
  for (const auto& [si, di] : peer_pairs) {
    const GpuId src = group.ranks[static_cast<std::size_t>(si)];
    const GpuId dst = group.ranks[static_cast<std::size_t>(di)];
    if (cluster_.same_node(src, dst)) continue;  // scale-up, no circuit
    const int src_local = cluster_.local_rank(src);
    const int dst_local = cluster_.local_rank(dst);
    const int node_src = cluster_.node_of(src).value();
    const int node_dst = cluster_.node_of(dst).value();
    if (src_local == dst_local) {
      edges.emplace(src_local, std::min(node_src, node_dst),
                    std::max(node_src, node_dst));
    } else {
      // PXN: NVLink to the bridge GPU on src's node that shares dst's rail,
      // then a circuit bridge-node -> dst-node on dst's rail.
      edges.emplace(dst_local, std::min(node_src, node_dst),
                    std::max(node_src, node_dst));
    }
  }
  std::vector<RailEdge> out;
  out.reserve(edges.size());
  for (const auto& [rail, a, b] : edges) out.push_back(RailEdge{rail, a, b});
  return out;
}

void CircuitPlanner::set_dim_stripe_limit(collective::ParallelismDim dim,
                                          int limit) {
  ensure(limit >= 1, "stripe limit must be >= 1");
  dim_stripe_limit_[dim] = limit;
}

int CircuitPlanner::stripe_limit_for(collective::ParallelismDim dim) const {
  const auto it = dim_stripe_limit_.find(dim);
  return it == dim_stripe_limit_.end() ? cluster_.config().nic_ports
                                       : it->second;
}

std::optional<std::vector<RailCircuits>> CircuitPlanner::assign_ports(
    const std::vector<RailEdge>& edges, int stripe_limit,
    bool best_effort) const {
  const int n_ports = cluster_.config().nic_ports;

  // Group edges per rail and compute node degrees.
  std::map<int, std::vector<RailEdge>> by_rail;
  for (const RailEdge& e : edges) by_rail[e.rail].push_back(e);

  std::vector<RailCircuits> out;
  for (auto& [rail, rail_edges] : by_rail) {
    const auto& sw = cluster_.ocs(RailId{rail});
    // Per-node port budget, skipping failed ports (LUMION-style recovery:
    // circuits re-plan onto the surviving ports).
    auto healthy_ports = [&](int node) {
      const GpuId g = cluster_.gpu_at(NodeId{node}, rail);
      int healthy = 0;
      for (int p = 0; p < n_ports; ++p) {
        if (!sw.failed(cluster_.ocs_port(g, p))) ++healthy;
      }
      return healthy;
    };

    std::map<int, int> degree;
    for (const RailEdge& e : rail_edges) {
      ++degree[e.node_a];
      ++degree[e.node_b];
    }
    int min_budget = n_ports;
    int max_degree = 0;
    for (const auto& [node, d] : degree) {
      max_degree = std::max(max_degree, d);
      // C1/C3 violation: some endpoint needs more circuits than it has
      // healthy ports. Best-effort planning presses on and drops the
      // overflow during allocation instead.
      if (d > healthy_ports(node) && !best_effort) return std::nullopt;
      min_budget = std::min(min_budget, healthy_ports(node));
    }

    // Striping: replicate every edge while all endpoints have ports left,
    // capped by the dimension's stripe limit.
    const int stripes =
        std::min(stripe_limit,
                 std::max(1, min_budget / std::max(max_degree, 1)));

    RailCircuits rc;
    rc.rail = RailId{rail};
    std::map<int, int> next_port;  // node -> next candidate NIC port
    auto peek_port = [&](int node) -> int {
      const GpuId g = cluster_.gpu_at(NodeId{node}, rail);
      int& cursor = next_port[node];
      while (cursor < n_ports &&
             sw.failed(cluster_.ocs_port(g, cursor))) {
        ++cursor;
      }
      return cursor < n_ports ? cursor : -1;
    };
    auto alloc_port = [&](int node) {
      ensure(peek_port(node) >= 0,
             "circuit planner: port budget exceeded during striping");
      const GpuId g = cluster_.gpu_at(NodeId{node}, rail);
      return cluster_.ocs_port(g, next_port[node]++);
    };
    for (const RailEdge& e : rail_edges) {
      for (int s = 0; s < stripes; ++s) {
        // Best-effort: an edge whose endpoints ran out of healthy ports is
        // dropped whole (peek before touching either cursor, so the partner
        // port is not leaked on a half-plannable circuit).
        if (best_effort &&
            (peek_port(e.node_a) < 0 || peek_port(e.node_b) < 0)) {
          break;
        }
        rc.circuits.push_back(
            net::CircuitRequest{alloc_port(e.node_a), alloc_port(e.node_b)});
      }
    }
    out.push_back(std::move(rc));
  }
  return out;
}

std::optional<std::vector<RailCircuits>> CircuitPlanner::plan_static(
    const collective::CommGroup& group,
    const collective::CollectiveSchedule& sched) const {
  ensure(cluster_.photonic(), "circuit planner requires photonic rails");
  return assign_ports(lower_edges(group, sched.peer_pairs()),
                      stripe_limit_for(group.dim));
}

std::vector<RailCircuits> CircuitPlanner::plan_step(
    const collective::CommGroup& group,
    const collective::CollectiveSchedule& sched, int step) const {
  ensure(cluster_.photonic(), "circuit planner requires photonic rails");
  std::set<std::pair<int, int>> pairs;
  for (const collective::Transfer& t : sched.transfers) {
    if (t.step == step) pairs.emplace(t.src, t.dst);
  }
  auto plan = assign_ports(lower_edges(group, {pairs.begin(), pairs.end()}),
                           stripe_limit_for(group.dim),
                           /*best_effort=*/cluster_.fault_tolerant());
  ensure(plan.has_value(),
         "circuit planner: a single step exceeds the NIC port budget; the "
         "algorithm chooser must fall back to a lower-degree algorithm (C1)");
  return *plan;
}

}  // namespace opus::core
