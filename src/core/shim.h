// Opus shim runtime (Fig. 6 of the paper).
//
// Sits between the application (the workload engine's collective ops) and
// the collective communication layer (the executor). By intercepting
// communication intents it learns the traffic pattern of the first training
// iteration (profiling); on later iterations it predicts the next
// communication phase and issues *speculative* reconfiguration requests the
// moment the previous phase's traffic completes — hiding the OCS switching
// delay inside the inter-parallelism window (provisioning, Fig. 5).
//
// Phases are keyed by parallelism dimension: Opus reconfigures only when the
// traffic pattern shifts between parallelisms (§4), and one dimension's
// phase config is the union of every group's circuits in that phase (the
// "Circuit config" annotations of Fig. 3).
#pragma once

#include <functional>
#include <vector>

#include "collective/comm_group.h"
#include "common/ids.h"
#include "core/circuit_planner.h"

namespace opus::core {

/// One profiled communication phase: a maximal run of consecutive intents
/// of the same parallelism dimension, with the merged circuits they need.
struct ProfiledPhase {
  collective::ParallelismDim dim = collective::ParallelismDim::kOther;
  std::vector<RailCircuits> layout;  ///< union over the phase's intents
  int n_collectives = 0;
};

/// Synthetic group id used when the shim provisions a whole dimension's
/// circuits speculatively (distinct from any application group id).
GroupId speculative_group_id(collective::ParallelismDim dim);

class OpusShim {
 public:
  /// Invoked (group, layout) when the shim wants the next phase's circuits
  /// provisioned ahead of demand.
  using SpeculateFn =
      std::function<void(GroupId, const std::vector<RailCircuits>&)>;

  explicit OpusShim(bool provisioning_enabled)
      : provisioning_(provisioning_enabled) {}

  void set_speculate(SpeculateFn fn) { speculate_ = std::move(fn); }
  bool provisioning_enabled() const { return provisioning_; }
  bool profiling() const { return iteration_ == 0; }

  void iteration_started(int index);

  /// Intercepts a collective intent before it launches.
  void on_intent(collective::ParallelismDim dim,
                 const std::vector<RailCircuits>& layout);

  /// Called when a collective of `dim` finished; may trigger speculative
  /// provisioning of the next phase.
  void on_finished(collective::ParallelismDim dim);

  const std::vector<ProfiledPhase>& profile() const { return profile_; }
  int speculative_requests() const { return speculative_requests_; }
  /// Intents that did not match the predicted phase sequence.
  int mispredictions() const { return mispredictions_; }

 private:
  void merge_layout(std::vector<RailCircuits>& into,
                    const std::vector<RailCircuits>& add) const;
  void maybe_speculate();

  bool provisioning_;
  SpeculateFn speculate_;
  int iteration_ = -1;

  std::vector<ProfiledPhase> profile_;  // built during iteration 0

  // Replay state (iterations >= 1).
  std::size_t phase_pos_ = 0;
  int phase_completed_ = 0;
  int speculative_requests_ = 0;
  int mispredictions_ = 0;
};

}  // namespace opus::core
