#include "core/shim.h"

#include <algorithm>

#include "common/error.h"

namespace opus::core {

GroupId speculative_group_id(collective::ParallelismDim dim) {
  return GroupId{1'000'000 + static_cast<std::int32_t>(dim)};
}

void OpusShim::iteration_started(int index) {
  iteration_ = index;
  phase_pos_ = 0;
  phase_completed_ = 0;
}

void OpusShim::merge_layout(std::vector<RailCircuits>& into,
                            const std::vector<RailCircuits>& add) const {
  for (const RailCircuits& rc : add) {
    auto it = std::find_if(into.begin(), into.end(), [&](const RailCircuits& x) {
      return x.rail == rc.rail;
    });
    if (it == into.end()) {
      into.push_back(rc);
      continue;
    }
    for (const net::CircuitRequest& c : rc.circuits) {
      // Keep the merged phase layout conflict-free: drop circuits whose
      // ports are already committed (first intent wins). Groups whose
      // circuits were dropped simply reconfigure on demand when their
      // collective arrives.
      const bool port_taken = std::any_of(
          it->circuits.begin(), it->circuits.end(),
          [&](const net::CircuitRequest& x) {
            return x.a == c.a || x.b == c.b || x.a == c.b || x.b == c.a;
          });
      if (!port_taken) it->circuits.push_back(c);
    }
  }
}

void OpusShim::on_intent(collective::ParallelismDim dim,
                         const std::vector<RailCircuits>& layout) {
  if (profiling()) {
    if (profile_.empty() || profile_.back().dim != dim) {
      ProfiledPhase p;
      p.dim = dim;
      p.layout = layout;
      p.n_collectives = 1;
      profile_.push_back(std::move(p));
    } else {
      merge_layout(profile_.back().layout, layout);
      ++profile_.back().n_collectives;
    }
    return;
  }
  // Replay: track the predicted phase pointer. Deterministic training loops
  // repeat the same sequence; on mismatch search forward — and wrap around,
  // since reconfiguration delays can slightly reorder intents relative to
  // the profiled iteration — before declaring a misprediction (correctness
  // is unaffected either way: the controller always installs the circuits
  // the intent actually needs).
  if (phase_pos_ < profile_.size() && profile_[phase_pos_].dim == dim) {
    return;
  }
  for (std::size_t step = 1; step <= profile_.size(); ++step) {
    const std::size_t candidate = (phase_pos_ + step) % profile_.size();
    if (profile_[candidate].dim == dim) {
      phase_pos_ = candidate;
      phase_completed_ = 0;
      return;
    }
  }
  ++mispredictions_;
}

void OpusShim::on_finished(collective::ParallelismDim dim) {
  if (profiling() || profile_.empty()) return;
  if (phase_pos_ >= profile_.size()) return;
  if (profile_[phase_pos_].dim != dim) return;
  ++phase_completed_;
  maybe_speculate();
}

void OpusShim::maybe_speculate() {
  if (!provisioning_ || !speculate_) return;
  const ProfiledPhase& cur = profile_[phase_pos_];
  if (phase_completed_ < cur.n_collectives) return;
  const std::size_t next = phase_pos_ + 1;
  if (next >= profile_.size()) return;
  ++speculative_requests_;
  speculate_(speculative_group_id(profile_[next].dim), profile_[next].layout);
}

}  // namespace opus::core
