// Parallel experiment-sweep runner.
//
// Every figure/table in the paper comes from sweeping run_experiment cells
// (topologies x parallelism mixes x OCS technologies), and each cell owns its
// own Simulator — the sweep is embarrassingly parallel. run_sweep fans the
// cells across a thread pool; because nothing is shared between cells, the
// per-cell results (and traces) are bit-identical regardless of thread count,
// which tests/test_determinism.cpp pins.
//
// Thread-count knob, highest priority first:
//   1. SweepOptions::threads (> 0),
//   2. the OPUS_SWEEP_THREADS environment variable,
//   3. std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/experiment.h"

namespace opus::core {

struct SweepOptions {
  /// Worker threads; <= 0 defers to OPUS_SWEEP_THREADS, then the hardware.
  int threads = 0;
  /// Opt into process-level sweep sharding (OPUS_SWEEP_SHARD=i/N): when the
  /// variable is set, run only every N-th cell (index % N == i) and leave
  /// the rest value-initialized. Benches that emit one table row per cell
  /// opt in and skip the unowned rows, so N processes regenerate a figure
  /// cooperatively and scripts/merge_sweep_tables.py stitches their tables.
  /// Tests leave this off — a shard variable must never silently skip their
  /// cells.
  bool use_shard = false;

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const SweepOptions&, const SweepOptions&) = default;
};

/// Process-level shard of a sweep: this process owns cells with
/// index % count == index_. Parsed from OPUS_SWEEP_SHARD ("i/N", 0-based);
/// {0, 1} — own everything — when unset.
struct SweepShard {
  int index = 0;
  int count = 1;

  bool active() const { return count > 1; }
  bool owns(std::size_t cell) const {
    return count <= 1 ||
           static_cast<int>(cell % static_cast<std::size_t>(count)) == index;
  }
};

/// The shard the OPUS_SWEEP_SHARD environment variable selects. Malformed
/// values (not "i/N" with 0 <= i < N) throw InvariantError — a typo must
/// not silently run the full sweep N times.
SweepShard sweep_shard();

/// The worker count `opts` resolves to (always >= 1).
int sweep_thread_count(const SweepOptions& opts = {});

/// Runs `fn(0) .. fn(n-1)` across `threads` workers (dynamic work stealing
/// via a shared atomic cursor; inline when threads == 1 or n <= 1). `fn` must
/// be safe to call concurrently for distinct indices. The first exception
/// thrown by any job is rethrown here after all workers join.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

/// Runs every cell to completion and returns the results in cell order.
/// Cells are independent full experiments; results are identical to calling
/// run_experiment serially on each config. With `opts.use_shard` and an
/// active OPUS_SWEEP_SHARD, only the shard's own cells run; the others stay
/// value-initialized (check sweep_shard().owns(i) before consuming).
std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& cells, const SweepOptions& opts = {});

}  // namespace opus::core
