#include "core/controller.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace opus::core {

OpusController::OpusController(sim::Simulator& sim, net::Cluster& cluster,
                               Config cfg)
    : sim_(sim), cluster_(cluster), cfg_(cfg) {
  ensure(cluster_.photonic(), "Opus controller requires photonic rails");
  owner_.assign(static_cast<std::size_t>(cluster_.n_rails()),
                std::vector<GroupId>(
                    static_cast<std::size_t>(cluster_.config().n_nodes *
                                             cluster_.config().nic_ports),
                    GroupId{}));
}

GroupId OpusController::port_owner(RailId rail, PortId port) const {
  ensure(rail.valid() && rail.value() < cluster_.n_rails(), "invalid rail");
  const auto& ports = owner_[static_cast<std::size_t>(rail.value())];
  ensure(port.valid() && static_cast<std::size_t>(port.value()) < ports.size(),
         "invalid port");
  return ports[static_cast<std::size_t>(port.value())];
}

void OpusController::retire() {
  retired_ = true;
  queue_.clear();
}

void OpusController::group_activity(GroupId group, int delta) {
  active_[group] += delta;
  ensure(active_[group] >= 0, "controller: negative group activity");
  if (active_[group] == 0) pump();
}

bool OpusController::executable(const Job& job) const {
  for (const RailCircuits& rc : job.layout) {
    const auto& sw = cluster_.ocs(rc.rail);
    // NOTE: even a fully-satisfied layout must pass the ownership check —
    // executing the job transfers port ownership to the requester, and a
    // later request from that group may then retarget circuits the current
    // owner is still using.
    const auto& owners = owner_[static_cast<std::size_t>(rc.rail.value())];
    if (!cfg_.fine_grained) {
      // Coarse-grained: any busy owner or any dark port on the rail blocks.
      for (int p = 0; p < sw.n_ports(); ++p) {
        if (sw.dark(PortId{p})) return false;
        const GroupId o = owners[static_cast<std::size_t>(p)];
        if (o.valid() && o != job.group) {
          auto it = active_.find(o);
          if (it != active_.end() && it->second > 0) return false;
        }
      }
      continue;
    }
    // Fine-grained: the job will (a) take ownership of every requested
    // circuit endpoint — including already-live circuits it would share —
    // and (b) retarget the touched ports (requested endpoints plus the
    // peers they disconnect). Every such port must be out of its
    // reconfiguration dark period and not owned by a group with kernels in
    // flight; otherwise a later step of this job could tear a circuit the
    // previous owner is still using.
    std::set<std::int32_t> ports;
    for (PortId p : CircuitPlanner::ports_of(rc)) ports.insert(p.value());
    for (PortId p : sw.touched_ports(rc.circuits)) ports.insert(p.value());
    for (std::int32_t pv : ports) {
      if (sw.dark(PortId{pv})) return false;  // mid-reconfiguration
      const GroupId o = owners[static_cast<std::size_t>(pv)];
      if (!o.valid() || o == job.group) continue;
      const auto it = active_.find(o);
      if (it != active_.end() && it->second > 0) return false;
    }
  }
  return true;
}

void OpusController::finish(TimeNs requested_at,
                            const std::function<void()>& on_ack) {
  const TimeNs wait = sim_.now() - requested_at;
  stats_.total_wait += wait;
  stats_.max_wait = std::max(stats_.max_wait, wait);
  if (on_ack) on_ack();
}

void OpusController::execute(Job job) {
  // Claim ownership of every requested port (displacing idle prior owners).
  bool any_reconfig = false;
  auto remaining = std::make_shared<int>(0);
  auto requested_at = job.requested_at;
  auto ack = std::make_shared<std::function<void()>>(std::move(job.on_ack));

  for (const RailCircuits& rc : job.layout) {
    auto& owners = owner_[static_cast<std::size_t>(rc.rail.value())];
    if (getenv("OPUS_DEBUG")) {
      std::fprintf(stderr, "[ctrl t=%lld] exec group=%d rail=%d circuits:", (long long)sim_.now(), job.group.value(), rc.rail.value());
      for (auto& c : rc.circuits) std::fprintf(stderr, " %d<->%d(own %d/%d)", c.a.value(), c.b.value(), owners[c.a.value()].value(), owners[c.b.value()].value());
      std::fprintf(stderr, "\n");
    }
    for (PortId p : CircuitPlanner::ports_of(rc)) {
      owners[static_cast<std::size_t>(p.value())] = job.group;
    }
    auto& sw = cluster_.ocs(rc.rail);
    // A layout planned (or queued) before a port failure may still name the
    // failed port; drop those circuits and wire the survivors — the
    // transport's next re-plan routes around the hole properly. (Claiming
    // ownership of the failed port above is harmless: it carries no circuit.)
    std::vector<net::CircuitRequest> circuits = rc.circuits;
    if (sw.failed_port_count() > 0) {
      std::erase_if(circuits, [&sw](const net::CircuitRequest& c) {
        return sw.failed(c.a) || sw.failed(c.b);
      });
    }
    if (sw.satisfied(circuits)) continue;
    // Ports this reconfiguration steals from other groups go back to free.
    for (PortId p : sw.touched_ports(circuits)) {
      auto& o = owners[static_cast<std::size_t>(p.value())];
      if (o != job.group) o = GroupId{};
    }
    any_reconfig = true;
    ++*remaining;
    sw.reconfigure(circuits, [this, remaining, requested_at, ack] {
      if (--*remaining == 0) {
        finish(requested_at, *ack);
        pump();  // darkness cleared; queued jobs may proceed
      }
    });
  }

  if (any_reconfig) {
    ++stats_.reconfigurations;
  } else {
    ++stats_.satisfied_immediately;
    finish(requested_at, *ack);
  }
}

void OpusController::request(GroupId group,
                             const std::vector<RailCircuits>& layout,
                             std::function<void()> on_ack) {
  ensure(group.valid(), "controller: request requires a valid group");
  if (retired_) {
    if (on_ack) on_ack();
    return;
  }
  ++stats_.requests;
  Job job;
  job.group = group;
  job.layout = layout;
  job.requested_at = sim_.now();

  // Control-plane RTT before the request reaches the switch; cached
  // configurations still pay it (the shim->controller->ack path), except
  // when it is configured to zero.
  auto enqueue = [this](Job j) {
    if (retired_) {  // retired while the request was on the control RTT
      if (j.on_ack) j.on_ack();
      return;
    }
    queue_.push_back(std::move(j));
    pump();
  };
  if (cfg_.control_rtt > 0) {
    job.on_ack = std::move(on_ack);
    sim_.schedule_after(cfg_.control_rtt,
                        [this, enqueue, j = std::move(job)]() mutable {
                          enqueue(std::move(j));
                        });
  } else {
    job.on_ack = std::move(on_ack);
    enqueue(std::move(job));
  }
}

void OpusController::pump() {
  if (pumping_) return;  // avoid re-entrant scans from execute() callbacks
  pumping_ = true;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // FC-FS with port-domain fairness: a job may only jump the queue if it
    // shares no port with any earlier blocked job.
    std::set<std::pair<std::int32_t, std::int32_t>> blocked;  // (rail, port)
    for (auto it = queue_.begin(); it != queue_.end();) {
      bool conflicts_earlier = false;
      bool owns_all = true;
      for (const RailCircuits& rc : it->layout) {
        const auto& owners = owner_[static_cast<std::size_t>(rc.rail.value())];
        for (PortId p : CircuitPlanner::ports_of(rc)) {
          if (blocked.contains({rc.rail.value(), p.value()})) {
            conflicts_earlier = true;
          }
          if (owners[static_cast<std::size_t>(p.value())] != it->group) {
            owns_all = false;
          }
        }
      }
      // A group finishing a multi-step collective on its own ports must be
      // able to overtake earlier-queued preemptors: those cannot run until
      // this group goes idle anyway (otherwise FC-FS would deadlock on a
      // priority inversion).
      if (owns_all) conflicts_earlier = false;
      if (!conflicts_earlier && executable(*it)) {
        Job job = std::move(*it);
        it = queue_.erase(it);
        execute(std::move(job));
        progressed = true;
        continue;
      }
      if (!it->counted_queued) {
        it->counted_queued = true;
        ++stats_.queued;
      }
      if (getenv("OPUS_DEBUG")) {
        std::fprintf(stderr, "[ctrl t=%lld] blocked group=%d (conflict_earlier=%d)\n",
                     (long long)sim_.now(), it->group.value(), conflicts_earlier ? 1 : 0);
      }
      for (const RailCircuits& rc : it->layout) {
        for (PortId p : CircuitPlanner::ports_of(rc)) {
          blocked.insert({rc.rail.value(), p.value()});
        }
      }
      ++it;
    }
  }
  pumping_ = false;
}

}  // namespace opus::core
