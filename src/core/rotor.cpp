#include "core/rotor.h"

#include "common/error.h"

namespace opus::core {

RotorTransport::RotorTransport(sim::Simulator& sim, net::Cluster& cluster,
                               Options options, net::NodeSpan span)
    : sim_(sim), cluster_(cluster), options_(options), span_(span) {
  ensure(cluster_.fabric() == net::FabricKind::kRotor,
         "RotorTransport requires a FabricKind::kRotor cluster");
  ensure(options_.slot_time > 0, "rotor slot time must be positive");
  ensure(span_.count >= 2, "a rotor span needs at least two nodes");
  n_rounds_ = net::rotor_rounds_for(span_.count);
  // A whole-cluster rotor finds round 0 pre-wired by the cluster; a tenant
  // sub-rotor (or any rotor on a cluster with deferred fabric wiring) wires
  // its own span's round-0 matchings here, instantly — pre-job setup.
  for (int rail = 0; rail < cluster_.n_rails(); ++rail) {
    const auto circuits =
        cluster_.rotor_matching_circuits(RailId{rail}, 0, span_);
    if (!cluster_.ocs(RailId{rail}).satisfied(circuits)) {
      cluster_.ocs(RailId{rail}).force_circuits(circuits);
    }
  }
  rails_.resize(static_cast<std::size_t>(cluster_.n_rails()));
  for (RailState& state : rails_) {
    state.round_batch.assign(static_cast<std::size_t>(n_rounds_), -1);
  }
  for (int rail = 0; rail < cluster_.n_rails(); ++rail) {
    start_round(rail);
  }
}

void RotorTransport::shutdown() { stopped_ = true; }

bool RotorTransport::drained(int rail) const {
  const RailState& state = rails_[static_cast<std::size_t>(rail)];
  if (state.in_flight == 0) return true;
  if (!cluster_.fault_tolerant()) return false;
  // Failure churn can park an in-flight transfer's bytes (its circuit died
  // and no surviving path exists yet). A parked transfer holds no fluid
  // flows, so waiting for its completion would deadlock against the very
  // rotation that could give it a path: when everything still in flight on
  // this rail is parked, the matching is drained for rotation purposes.
  return cluster_.parked_rail_transfers(rail, span_) > 0 &&
         cluster_.rail_span_active_flows(RailId{rail}, span_) == 0;
}

void RotorTransport::poke() {
  if (stopped_) return;
  for (int rail = 0; rail < cluster_.n_rails(); ++rail) {
    RailState& st = rails_[static_cast<std::size_t>(rail)];
    if (st.drain_pending && !st.rotating && drained(rail)) rotate(rail);
  }
}

int RotorTransport::current_round(RailId rail) const {
  ensure(rail.valid() && rail.value() < cluster_.n_rails(), "invalid rail");
  return rails_[static_cast<std::size_t>(rail.value())].round;
}

void RotorTransport::start_round(int rail) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  // Idempotent: both the rotation-completion chain and the send() wake-up
  // path call this, and two armed timers on one rail would double the
  // rotation cadence. (State-machine audit: today every caller checks
  // timer_armed first, so this is a guard against future call sites, not a
  // behavior change.)
  if (state.timer_armed) return;
  if (stopped_ || (state.in_flight == 0 && state.waiting.empty())) {
    return;  // idle or shut down: freeze
  }
  state.timer_armed = true;
  sim_.schedule_after(options_.slot_time, [this, rail] { on_slot_end(rail); });
}

void RotorTransport::on_slot_end(int rail) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  state.timer_armed = false;
  if (stopped_) return;
  if (!drained(rail)) {
    state.drain_pending = true;  // guard band: rotate once flows drain
    return;
  }
  if (state.waiting.empty() && state.in_flight == 0) {
    return;  // idle: freeze on this matching
  }
  // Either sends are waiting for their matching, or parked (fault-churn)
  // transfers count as drained but still need a topology change — rotate.
  rotate(rail);
}

void RotorTransport::rotate(int rail) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  state.drain_pending = false;
  if (stopped_) return;
  const int next = (state.round + 1) % n_rounds_;
  if (next == state.round) {
    // One-round span (2 nodes): the only matching is already up. Rotating
    // would re-request identical circuits — an OCS no-op — so count nothing
    // and keep the rotation tally equal to the switch's reconfiguration
    // stats; just release anything the guard band parked.
    flush_waiting(rail);
    start_round(rail);
    return;
  }
  state.rotating = true;
  ++rotations_;
  // Rotations ride the OCS batch path: each round's matching is registered
  // once (its fluid links pinned for cycle-long reuse) and every replay is
  // one transaction — one dark interval, one completion event, O(ports)
  // array work instead of per-port map churn.
  auto& sw = cluster_.ocs(RailId{rail});
  auto& slot = state.round_batch[static_cast<std::size_t>(next)];
  if (slot < 0) {
    slot = sw.register_batch(
        cluster_.rotor_matching_circuits(RailId{rail}, next, span_));
  }
  sw.reconfigure_batch(slot, [this, rail, next] {
    RailState& st = rails_[static_cast<std::size_t>(rail)];
    st.rotating = false;
    st.round = next;
    flush_waiting(rail);
    start_round(rail);
  });
}

bool RotorTransport::pair_connected_now(int rail, GpuId src,
                                        GpuId dst) const {
  (void)rail;
  // Cross-rank sends ride the destination's rail from the PXN bridge GPU.
  const GpuId from =
      cluster_.local_rank(src) == cluster_.local_rank(dst)
          ? src
          : cluster_.gpu_at(cluster_.node_of(src), cluster_.local_rank(dst));
  return cluster_.rail_path_available(from, dst);
}

void RotorTransport::launch(int rail, PendingSend send) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  ++state.in_flight;
  cluster_.transfer(
      send.src, send.dst, send.bytes,
      [this, rail, done = std::move(send.done)] {
        RailState& st = rails_[static_cast<std::size_t>(rail)];
        --st.in_flight;
        if (done) done();
        if (st.drain_pending && !st.rotating && drained(rail)) rotate(rail);
      });
}

void RotorTransport::flush_waiting(int rail) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  std::deque<PendingSend> still_waiting;
  while (!state.waiting.empty()) {
    PendingSend send = std::move(state.waiting.front());
    state.waiting.pop_front();
    if (pair_connected_now(rail, send.src, send.dst)) {
      launch(rail, std::move(send));
    } else {
      still_waiting.push_back(std::move(send));
    }
  }
  state.waiting = std::move(still_waiting);
}

void RotorTransport::send(const collective::CommGroup& group, GpuId src,
                          GpuId dst, Bytes bytes,
                          std::function<void()> done) {
  (void)group;
  ensure(!stopped_, "RotorTransport::send after shutdown");
  if (src == dst || cluster_.same_node(src, dst)) {
    cluster_.transfer(src, dst, bytes, std::move(done));
    return;
  }
  // The rail that will carry the traffic (the destination's rail for PXN).
  const int rail = cluster_.local_rank(dst);
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  PendingSend pending{src, dst, bytes, std::move(done)};
  if (!state.rotating && !state.drain_pending &&
      pair_connected_now(rail, src, dst)) {
    launch(rail, std::move(pending));
    start_round(rail);  // wake the slot clock (idempotent)
    return;
  }
  ++deferred_;
  state.waiting.push_back(std::move(pending));
  if (!state.timer_armed && !state.rotating && !state.drain_pending) {
    start_round(rail);  // wake the rotor so the matching eventually arrives
  }
}

}  // namespace opus::core
