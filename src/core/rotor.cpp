#include "core/rotor.h"

#include "common/error.h"

namespace opus::core {

RotorTransport::RotorTransport(sim::Simulator& sim, net::Cluster& cluster,
                               Options options)
    : sim_(sim), cluster_(cluster), options_(options) {
  ensure(cluster_.fabric() == net::FabricKind::kRotor,
         "RotorTransport requires a FabricKind::kRotor cluster");
  ensure(options_.slot_time > 0, "rotor slot time must be positive");
  n_rounds_ = cluster_.rotor_rounds();
  // The cluster wired every rail to round 0 at construction; this transport
  // only drives the rotation schedule from there.
  rails_.resize(static_cast<std::size_t>(cluster_.n_rails()));
  for (int rail = 0; rail < cluster_.n_rails(); ++rail) {
    start_round(rail);
  }
}

int RotorTransport::current_round(RailId rail) const {
  ensure(rail.valid() && rail.value() < cluster_.n_rails(), "invalid rail");
  return rails_[static_cast<std::size_t>(rail.value())].round;
}

void RotorTransport::start_round(int rail) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  if (state.in_flight == 0 && state.waiting.empty()) {
    state.timer_armed = false;  // idle: freeze until the next send
    return;
  }
  state.timer_armed = true;
  sim_.schedule_after(options_.slot_time, [this, rail] { on_slot_end(rail); });
}

void RotorTransport::on_slot_end(int rail) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  state.timer_armed = false;
  if (state.in_flight > 0) {
    state.drain_pending = true;  // guard band: rotate once flows drain
    return;
  }
  if (state.waiting.empty()) return;  // idle: freeze on this matching
  rotate(rail);
}

void RotorTransport::rotate(int rail) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  state.drain_pending = false;
  state.rotating = true;
  const int next = (state.round + 1) % n_rounds_;
  ++rotations_;
  cluster_.ocs(RailId{rail}).reconfigure(
      cluster_.rotor_matching_circuits(RailId{rail}, next),
      [this, rail, next] {
        RailState& st = rails_[static_cast<std::size_t>(rail)];
        st.rotating = false;
        st.round = next;
        flush_waiting(rail);
        start_round(rail);
      });
}

bool RotorTransport::pair_connected_now(int rail, GpuId src,
                                        GpuId dst) const {
  (void)rail;
  // Cross-rank sends ride the destination's rail from the PXN bridge GPU.
  const GpuId from =
      cluster_.local_rank(src) == cluster_.local_rank(dst)
          ? src
          : cluster_.gpu_at(cluster_.node_of(src), cluster_.local_rank(dst));
  return cluster_.rail_path_available(from, dst);
}

void RotorTransport::launch(int rail, PendingSend send) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  ++state.in_flight;
  cluster_.transfer(
      send.src, send.dst, send.bytes,
      [this, rail, done = std::move(send.done)] {
        RailState& st = rails_[static_cast<std::size_t>(rail)];
        --st.in_flight;
        if (done) done();
        if (st.drain_pending && st.in_flight == 0) rotate(rail);
      });
}

void RotorTransport::flush_waiting(int rail) {
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  std::deque<PendingSend> still_waiting;
  while (!state.waiting.empty()) {
    PendingSend send = std::move(state.waiting.front());
    state.waiting.pop_front();
    if (pair_connected_now(rail, send.src, send.dst)) {
      launch(rail, std::move(send));
    } else {
      still_waiting.push_back(std::move(send));
    }
  }
  state.waiting = std::move(still_waiting);
}

void RotorTransport::send(const collective::CommGroup& group, GpuId src,
                          GpuId dst, Bytes bytes,
                          std::function<void()> done) {
  (void)group;
  if (src == dst || cluster_.same_node(src, dst)) {
    cluster_.transfer(src, dst, bytes, std::move(done));
    return;
  }
  // The rail that will carry the traffic (the destination's rail for PXN).
  const int rail = cluster_.local_rank(dst);
  RailState& state = rails_[static_cast<std::size_t>(rail)];
  PendingSend pending{src, dst, bytes, std::move(done)};
  if (!state.rotating && !state.drain_pending &&
      pair_connected_now(rail, src, dst)) {
    launch(rail, std::move(pending));
    if (!state.timer_armed) start_round(rail);  // wake the slot clock
    return;
  }
  ++deferred_;
  state.waiting.push_back(std::move(pending));
  if (!state.timer_armed && !state.rotating && !state.drain_pending) {
    start_round(rail);  // wake the rotor so the matching eventually arrives
  }
}

}  // namespace opus::core
