#include "core/static_ring.h"

#include "common/error.h"

namespace opus::core {

StaticRingTransport::StaticRingTransport(net::Cluster& cluster,
                                         net::NodeSpan span)
    : cluster_(cluster) {
  ensure(cluster_.photonic(), "StaticRingTransport requires photonic rails");
  ensure(cluster_.config().allow_rail_multihop,
         "StaticRingTransport requires rail multi-hop forwarding");
  ensure(span.first >= 0 && span.count >= 2 &&
             span.end() <= cluster_.n_nodes(),
         "StaticRingTransport: span must cover >= 2 nodes of the cluster");
  ensure(cluster_.config().nic_ports >= 2 || span.count == 2,
         "a ring over >2 nodes needs 2 NIC ports");
  const int nodes = span.count;
  ring_circuits_.resize(static_cast<std::size_t>(cluster_.n_rails()));
  for (int rail = 0; rail < cluster_.n_rails(); ++rail) {
    std::vector<net::CircuitRequest>& circuits =
        ring_circuits_[static_cast<std::size_t>(rail)];
    if (nodes == 2) {
      const GpuId a = cluster_.gpu_at(NodeId{span.first}, rail);
      const GpuId b = cluster_.gpu_at(NodeId{span.first + 1}, rail);
      circuits.push_back({cluster_.ocs_port(a, 0), cluster_.ocs_port(b, 0)});
      if (cluster_.config().nic_ports >= 2) {
        circuits.push_back({cluster_.ocs_port(a, 1), cluster_.ocs_port(b, 1)});
      }
    } else {
      for (int n = 0; n < nodes; ++n) {
        const GpuId a = cluster_.gpu_at(NodeId{span.first + n}, rail);
        const GpuId b =
            cluster_.gpu_at(NodeId{span.first + (n + 1) % nodes}, rail);
        circuits.push_back({cluster_.ocs_port(a, 0), cluster_.ocs_port(b, 1)});
      }
    }
    cluster_.ocs(RailId{rail}).force_circuits(circuits);
  }
}

void StaticRingTransport::resplice() {
  // Re-issue the original ring wiring: force_circuits skips any circuit
  // whose endpoint is still failed, so this restores exactly the segments
  // whose ports have been repaired. Re-forcing an already-live pair tears
  // and re-establishes the same instantaneous link — traffic on other
  // segments is untouched.
  for (int rail = 0; rail < cluster_.n_rails(); ++rail) {
    const auto& circuits = ring_circuits_[static_cast<std::size_t>(rail)];
    if (!cluster_.ocs(RailId{rail}).satisfied(circuits)) {
      cluster_.ocs(RailId{rail}).force_circuits(circuits);
    }
  }
}

}  // namespace opus::core
