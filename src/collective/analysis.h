// Analytic alpha-beta cost model for collective schedules.
//
// Used to cross-check the simulator (tests) and to reason about the
// latency/bandwidth tradeoff that motivates constraint C1: ring algorithms
// are bandwidth-optimal but pay O(n) latency terms; logarithmic algorithms
// pay O(log n) latency terms but need peer diversity a circuit fabric cannot
// hold simultaneously.
#pragma once

#include "collective/schedule.h"
#include "common/units.h"

namespace opus::collective {

/// Per-hop cost parameters: `alpha` is the fixed per-transfer latency,
/// `bw` the per-rank link bandwidth.
struct AlphaBeta {
  TimeNs alpha = 0;
  Bandwidth bw = Bandwidth::gbps(400);
};

/// Step-synchronous critical-path estimate: sum over steps of
/// (alpha + largest transfer in the step / bw). Exact for ring pipelines on
/// dedicated circuits and for step-synchronous execution.
TimeNs predicted_time(const CollectiveSchedule& sched, AlphaBeta cost);

/// Same, but adds `reconfig` once per step whose peer set differs from the
/// previous step's — the penalty a circuit fabric pays for running a
/// peer-changing (logarithmic or pairwise) algorithm (C1).
TimeNs predicted_time_with_reconfig(const CollectiveSchedule& sched,
                                    AlphaBeta cost, TimeNs reconfig);

/// Number of steps whose (src,dst) peer-pair set differs from the previous
/// step's (the first step counts if it has any transfer): how many circuit
/// reconfigurations a static-port fabric would need to run this schedule
/// when the whole peer graph does not fit the NIC port budget.
int peer_changing_steps(const CollectiveSchedule& sched);

}  // namespace opus::collective
