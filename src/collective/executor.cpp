#include "collective/executor.h"

#include <utility>
#include <vector>

#include "common/error.h"

namespace opus::collective {

struct CollectiveExecutor::RunState {
  CommGroup group;
  CollectiveSchedule sched;
  std::function<void(const Result&)> on_complete;
  Result result;

  // Pipelined mode: per-transfer dependency bookkeeping.
  std::vector<int> deps_remaining;
  std::vector<std::vector<int>> dependents;

  // Step-synchronous mode: per-step countdown.
  int step_transfers_remaining = 0;

  int transfers_remaining = 0;
};

void CollectiveExecutor::run(const CommGroup& group,
                             const CollectiveSchedule& sched,
                             std::function<void(const Result&)> on_complete) {
  ensure(group.size() == sched.n_ranks,
         "executor: schedule rank count does not match group size");
  const bool step_sync = !sched.transfers.empty() &&
                         transport_.needs_per_step_preparation(group, sched);
  if (step_sync && step_sync_busy_.contains(group.id)) {
    // Same-communicator step-synchronous collectives must not interleave
    // their per-step reconfigurations; queue behind the active one.
    step_sync_queue_[group.id].push_back(
        PendingRun{group, sched, std::move(on_complete)});
    return;
  }
  start_run(group, sched, std::move(on_complete), step_sync);
}

void CollectiveExecutor::start_run(
    const CommGroup& group, const CollectiveSchedule& sched,
    std::function<void(const Result&)> on_complete, bool step_sync) {
  auto rs = std::make_shared<RunState>();
  rs->group = group;
  rs->sched = sched;
  rs->on_complete = std::move(on_complete);
  rs->result.start = sim_.now();
  rs->result.transfers = static_cast<int>(sched.transfers.size());
  rs->transfers_remaining = static_cast<int>(sched.transfers.size());

  if (sched.transfers.empty()) {
    // Single-rank group or empty schedule: completes immediately.
    sim_.schedule_after(0, [this, rs] { finish(rs); });
    return;
  }

  rs->result.step_synchronous = step_sync;
  if (step_sync) step_sync_busy_.insert(group.id);
  transport_.prepare_collective(
      rs->group, rs->sched, [this, rs, step_sync] {
        if (step_sync) {
          run_step_synchronous(rs, 0);
        } else {
          launch_pipelined(rs);
        }
      });
}

void CollectiveExecutor::launch_pipelined(std::shared_ptr<RunState> rs) {
  const auto& transfers = rs->sched.transfers;
  const std::size_t n = transfers.size();
  rs->deps_remaining.assign(n, 0);
  rs->dependents.assign(n, {});

  // Index transfers of each step by src rank and by dst rank so dependency
  // edges can be built in O(total transfers x fan).
  const auto by_step = rs->sched.transfers_by_step();
  for (int s = 1; s < rs->sched.n_steps; ++s) {
    const auto& prev = by_step[static_cast<std::size_t>(s - 1)];
    for (int ti : by_step[static_cast<std::size_t>(s)]) {
      const Transfer& t = transfers[static_cast<std::size_t>(ti)];
      for (int pi : prev) {
        const Transfer& p = transfers[static_cast<std::size_t>(pi)];
        // (a) port serialization: my previous send must have left;
        // (b) data dependency: the data I forward must have arrived.
        if (p.src == t.src || p.dst == t.src) {
          rs->dependents[static_cast<std::size_t>(pi)].push_back(ti);
          ++rs->deps_remaining[static_cast<std::size_t>(ti)];
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (rs->deps_remaining[i] == 0) launch_transfer(rs, static_cast<int>(i));
  }
}

void CollectiveExecutor::launch_transfer(const std::shared_ptr<RunState>& rs,
                                         int index) {
  const Transfer& t = rs->sched.transfers[static_cast<std::size_t>(index)];
  const GpuId src = rs->group.ranks[static_cast<std::size_t>(t.src)];
  const GpuId dst = rs->group.ranks[static_cast<std::size_t>(t.dst)];
  transport_.send(rs->group, src, dst, t.bytes,
                  [this, rs, index] { on_transfer_done(rs, index); });
}

void CollectiveExecutor::on_transfer_done(const std::shared_ptr<RunState>& rs,
                                          int index) {
  --rs->transfers_remaining;
  if (!rs->result.step_synchronous) {
    for (int d : rs->dependents[static_cast<std::size_t>(index)]) {
      if (--rs->deps_remaining[static_cast<std::size_t>(d)] == 0) {
        launch_transfer(rs, d);
      }
    }
  } else {
    if (--rs->step_transfers_remaining == 0 && rs->transfers_remaining > 0) {
      const int next_step =
          rs->sched.transfers[static_cast<std::size_t>(index)].step + 1;
      run_step_synchronous(rs, next_step);
    }
  }
  if (rs->transfers_remaining == 0) finish(rs);
}

void CollectiveExecutor::run_step_synchronous(std::shared_ptr<RunState> rs,
                                              int step) {
  // Skip (theoretically) empty steps.
  const auto by_step = rs->sched.transfers_by_step();
  while (step < rs->sched.n_steps &&
         by_step[static_cast<std::size_t>(step)].empty()) {
    ++step;
  }
  if (step >= rs->sched.n_steps) return;
  const auto& indices = by_step[static_cast<std::size_t>(step)];
  rs->step_transfers_remaining = static_cast<int>(indices.size());
  transport_.prepare_step(rs->group, rs->sched, step, [this, rs, indices] {
    for (int ti : indices) launch_transfer(rs, ti);
  });
}

void CollectiveExecutor::finish(const std::shared_ptr<RunState>& rs) {
  rs->result.end = sim_.now();
  ++completed_;
  transport_.collective_finished(rs->group, rs->sched);
  if (rs->result.step_synchronous) {
    step_sync_busy_.erase(rs->group.id);
    auto it = step_sync_queue_.find(rs->group.id);
    if (it != step_sync_queue_.end() && !it->second.empty()) {
      PendingRun next = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) step_sync_queue_.erase(it);
      step_sync_busy_.insert(next.group.id);
      // Decouple from the finishing run's stack.
      auto pending = std::make_shared<PendingRun>(std::move(next));
      sim_.schedule_after(0, [this, pending] {
        start_run(pending->group, pending->sched,
                  std::move(pending->on_complete), true);
      });
    }
  }
  if (rs->on_complete) rs->on_complete(rs->result);
}

}  // namespace opus::collective
