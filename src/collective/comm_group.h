// Communication groups: the logical constructs managed by collective
// communication libraries (NCCL communicators). Each GPU belongs to several
// groups, one per parallelism axis (§3 of the paper).
#pragma once

#include <string>
#include <vector>

#include "common/error.h"
#include "common/ids.h"

namespace opus::collective {

/// Parallelism axis a communication group belongs to (Table 2).
enum class ParallelismDim {
  kTP,     ///< tensor parallelism (with sequence parallelism)
  kDP,     ///< data parallelism / FSDP
  kPP,     ///< pipeline parallelism
  kCP,     ///< context parallelism
  kEP,     ///< expert parallelism
  kOther,  ///< ad-hoc (e.g. global sync groups)
};

const char* to_string(ParallelismDim dim);

/// An ordered set of GPU ranks that communicate together. The order defines
/// ring neighbourhoods for ring-based collectives.
struct CommGroup {
  GroupId id;
  ParallelismDim dim = ParallelismDim::kOther;
  std::vector<GpuId> ranks;
  std::string name;

  int size() const { return static_cast<int>(ranks.size()); }

  bool contains(GpuId g) const {
    for (GpuId r : ranks)
      if (r == g) return true;
    return false;
  }

  /// Position of `g` within the group. Requires membership.
  int index_of(GpuId g) const {
    for (std::size_t i = 0; i < ranks.size(); ++i)
      if (ranks[i] == g) return static_cast<int>(i);
    ensure(false, "CommGroup::index_of: rank not in group");
    return -1;
  }

  GpuId next(GpuId g) const {
    return ranks[static_cast<std::size_t>((index_of(g) + 1) % size())];
  }
  GpuId prev(GpuId g) const {
    return ranks[static_cast<std::size_t>((index_of(g) + size() - 1) %
                                          size())];
  }
};

}  // namespace opus::collective
