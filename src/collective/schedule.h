// Collective operation schedules.
//
// A schedule is the full set of point-to-point transfers a collective
// algorithm performs, organized into steps. Transfers carry enough chunk
// metadata for the symbolic verifier to prove the collective's postcondition
// (every rank ends with the right data, each contribution counted exactly
// once) independent of timing.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace opus::collective {

enum class CollectiveType {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kAllToAll,
  kBroadcast,
  kReduce,
  kSendRecv,  ///< point-to-point (pipeline parallelism)
  kBarrier,
};

enum class Algorithm {
  kRing,              ///< bandwidth-optimal, degree 2 (C1-compatible)
  kRecursiveDoubling, ///< log-step AllGather/Barrier; distinct peer per step
  kRecursiveHalvingDoubling,  ///< log-step AllReduce/ReduceScatter
  kBinomialTree,      ///< latency-optimal Broadcast/Reduce/AllReduce
  kPairwise,          ///< AllToAll: N-1 permutation steps
  kDirect,            ///< single-step fan-out (needs full connectivity)
};

const char* to_string(CollectiveType type);
const char* to_string(Algorithm algo);

/// One point-to-point transfer inside a collective. Rank indices are
/// positions within the group (not global GPU ids).
struct Transfer {
  int step = 0;
  int src = 0;
  int dst = 0;
  Bytes bytes = 0;
  /// Contiguous chunk range [chunk_lo, chunk_hi) moved by this transfer, in
  /// the collective's chunk space (chunk ids taken modulo n_chunks). Used by
  /// the verifier; -1,-1 means "untracked" (e.g. AllToAll slices).
  int chunk_lo = -1;
  int chunk_hi = -1;
  /// True: receiver reduces (accumulates) into its buffer; false: receiver
  /// overwrites (copy). Distinguishes reduce-scatter phases from gather
  /// phases so the verifier can catch double-counted contributions.
  bool reduce_op = false;
};

/// A planned collective: all transfers plus degree metadata used by the
/// control plane to decide circuit layouts (constraints C1/C3).
struct CollectiveSchedule {
  CollectiveType type = CollectiveType::kAllReduce;
  Algorithm algo = Algorithm::kRing;
  int n_ranks = 0;
  Bytes payload_bytes = 0;
  int n_steps = 0;
  int n_chunks = 0;  ///< size of the verifier's chunk space
  std::vector<Transfer> transfers;

  /// Maximum number of *simultaneously connected* distinct peers any rank
  /// needs within one step (ports needed at an instant).
  int max_peers_per_step = 0;
  /// Number of distinct peers any rank talks to across the whole schedule.
  /// On a circuit fabric, a value above the NIC port count forces per-step
  /// reconfiguration (constraint C1).
  int max_distinct_peers = 0;

  /// Transfer indices grouped by step (transfers_by_step[s] -> indices).
  std::vector<std::vector<int>> transfers_by_step() const;
  /// Total bytes crossing the network.
  Bytes total_bytes() const;
  /// Set of distinct (src, dst) index pairs used anywhere in the schedule.
  std::vector<std::pair<int, int>> peer_pairs() const;
};

}  // namespace opus::collective
