#include "collective/schedule.h"

#include <algorithm>
#include <set>

#include "collective/comm_group.h"
#include "common/error.h"

namespace opus::collective {

const char* to_string(ParallelismDim dim) {
  switch (dim) {
    case ParallelismDim::kTP: return "TP";
    case ParallelismDim::kDP: return "DP";
    case ParallelismDim::kPP: return "PP";
    case ParallelismDim::kCP: return "CP";
    case ParallelismDim::kEP: return "EP";
    case ParallelismDim::kOther: return "Other";
  }
  return "?";
}

const char* to_string(CollectiveType type) {
  switch (type) {
    case CollectiveType::kAllReduce: return "AllReduce";
    case CollectiveType::kAllGather: return "AllGather";
    case CollectiveType::kReduceScatter: return "ReduceScatter";
    case CollectiveType::kAllToAll: return "AllToAll";
    case CollectiveType::kBroadcast: return "Broadcast";
    case CollectiveType::kReduce: return "Reduce";
    case CollectiveType::kSendRecv: return "SendRecv";
    case CollectiveType::kBarrier: return "Barrier";
  }
  return "?";
}

const char* to_string(Algorithm algo) {
  switch (algo) {
    case Algorithm::kRing: return "Ring";
    case Algorithm::kRecursiveDoubling: return "RecursiveDoubling";
    case Algorithm::kRecursiveHalvingDoubling: return "RecursiveHalvingDoubling";
    case Algorithm::kBinomialTree: return "BinomialTree";
    case Algorithm::kPairwise: return "Pairwise";
    case Algorithm::kDirect: return "Direct";
  }
  return "?";
}

std::vector<std::vector<int>> CollectiveSchedule::transfers_by_step() const {
  std::vector<std::vector<int>> by_step(static_cast<std::size_t>(n_steps));
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const int s = transfers[i].step;
    ensure(s >= 0 && s < n_steps, "transfer step out of range");
    by_step[static_cast<std::size_t>(s)].push_back(static_cast<int>(i));
  }
  return by_step;
}

Bytes CollectiveSchedule::total_bytes() const {
  Bytes total = 0;
  for (const Transfer& t : transfers) total += t.bytes;
  return total;
}

std::vector<std::pair<int, int>> CollectiveSchedule::peer_pairs() const {
  std::set<std::pair<int, int>> pairs;
  for (const Transfer& t : transfers) pairs.emplace(t.src, t.dst);
  return {pairs.begin(), pairs.end()};
}

}  // namespace opus::collective
