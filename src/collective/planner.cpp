#include "collective/planner.h"

#include <cmath>
#include <set>

#include "common/error.h"

namespace opus::collective {
namespace {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

int ceil_log2(int n) {
  int bits = 0;
  int v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// Computes max_peers_per_step and max_distinct_peers from the transfers.
void finalize(CollectiveSchedule& s) {
  // peers[rank] -> distinct peers over the whole schedule;
  // per (rank, step) distinct peers for the instantaneous degree.
  std::vector<std::set<int>> all_peers(static_cast<std::size_t>(s.n_ranks));
  std::vector<std::set<int>> step_peers;
  int max_step_peers = 0;
  auto by_step = s.transfers_by_step();
  for (const auto& step : by_step) {
    step_peers.assign(static_cast<std::size_t>(s.n_ranks), {});
    for (int ti : step) {
      const Transfer& t = s.transfers[static_cast<std::size_t>(ti)];
      step_peers[static_cast<std::size_t>(t.src)].insert(t.dst);
      step_peers[static_cast<std::size_t>(t.dst)].insert(t.src);
      all_peers[static_cast<std::size_t>(t.src)].insert(t.dst);
      all_peers[static_cast<std::size_t>(t.dst)].insert(t.src);
    }
    for (const auto& p : step_peers)
      max_step_peers = std::max(max_step_peers, static_cast<int>(p.size()));
  }
  int max_all = 0;
  for (const auto& p : all_peers)
    max_all = std::max(max_all, static_cast<int>(p.size()));
  s.max_peers_per_step = max_step_peers;
  s.max_distinct_peers = max_all;
}

CollectiveSchedule make(CollectiveType type, Algorithm algo, int n,
                        Bytes payload, int n_steps, int n_chunks) {
  CollectiveSchedule s;
  s.type = type;
  s.algo = algo;
  s.n_ranks = n;
  s.payload_bytes = payload;
  s.n_steps = n_steps;
  s.n_chunks = n_chunks;
  return s;
}

Bytes chunk_bytes(Bytes payload, int n) {
  // Ceil-divide so rounding never makes a schedule claim less traffic than
  // the payload requires.
  return (payload + n - 1) / n;
}

// ---- Ring family ---------------------------------------------------------

CollectiveSchedule ring_reduce_scatter(int n, Bytes payload) {
  auto s = make(CollectiveType::kReduceScatter, Algorithm::kRing, n, payload,
                n - 1, n);
  const Bytes cb = chunk_bytes(payload, n);
  for (int step = 0; step < n - 1; ++step) {
    for (int r = 0; r < n; ++r) {
      const int chunk = ((r - step) % n + n) % n;
      s.transfers.push_back(
          Transfer{step, r, (r + 1) % n, cb, chunk, chunk + 1, true});
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule ring_all_gather(int n, Bytes payload) {
  auto s = make(CollectiveType::kAllGather, Algorithm::kRing, n, payload,
                n - 1, n);
  const Bytes cb = chunk_bytes(payload, n);
  for (int step = 0; step < n - 1; ++step) {
    for (int r = 0; r < n; ++r) {
      const int chunk = ((r - step) % n + n) % n;
      s.transfers.push_back(
          Transfer{step, r, (r + 1) % n, cb, chunk, chunk + 1, false});
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule ring_all_reduce(int n, Bytes payload) {
  auto s = make(CollectiveType::kAllReduce, Algorithm::kRing, n, payload,
                2 * (n - 1), n);
  const Bytes cb = chunk_bytes(payload, n);
  // Phase 1: reduce-scatter. After it, rank r owns chunk (r+1)%n complete.
  for (int step = 0; step < n - 1; ++step) {
    for (int r = 0; r < n; ++r) {
      const int chunk = ((r - step) % n + n) % n;
      s.transfers.push_back(
          Transfer{step, r, (r + 1) % n, cb, chunk, chunk + 1, true});
    }
  }
  // Phase 2: all-gather of the reduced chunks.
  for (int t = 0; t < n - 1; ++t) {
    const int step = n - 1 + t;
    for (int r = 0; r < n; ++r) {
      const int chunk = ((r + 1 - t) % n + n) % n;
      s.transfers.push_back(
          Transfer{step, r, (r + 1) % n, cb, chunk, chunk + 1, false});
    }
  }
  finalize(s);
  return s;
}

/// Pipeline broadcast/reduce along the ring (full payload hops rank to rank).
CollectiveSchedule ring_broadcast(int n, Bytes payload) {
  auto s = make(CollectiveType::kBroadcast, Algorithm::kRing, n, payload,
                n - 1, 1);
  for (int step = 0; step < n - 1; ++step) {
    s.transfers.push_back(Transfer{step, step, step + 1, payload, 0, 1, false});
  }
  finalize(s);
  return s;
}

CollectiveSchedule ring_reduce(int n, Bytes payload) {
  // Contributions accumulate toward rank 0: n-1 -> n-2 -> ... -> 0.
  auto s =
      make(CollectiveType::kReduce, Algorithm::kRing, n, payload, n - 1, 1);
  for (int step = 0; step < n - 1; ++step) {
    const int src = n - 1 - step;
    s.transfers.push_back(Transfer{step, src, src - 1, payload, 0, 1, true});
  }
  finalize(s);
  return s;
}

CollectiveSchedule ring_barrier(int n) {
  // Two token passes around the ring: 2(n-1) zero-byte hops.
  auto s = make(CollectiveType::kBarrier, Algorithm::kRing, n, 0,
                2 * (n - 1), 0);
  for (int step = 0; step < 2 * (n - 1); ++step) {
    const int src = step % n;
    s.transfers.push_back(Transfer{step, src, (src + 1) % n, 0, -1, -1, false});
  }
  finalize(s);
  return s;
}

// ---- Logarithmic family ---------------------------------------------------

CollectiveSchedule recursive_doubling_all_gather(int n, Bytes payload) {
  ensure(is_power_of_two(n), "recursive doubling requires power-of-two ranks");
  const int steps = ceil_log2(n);
  auto s = make(CollectiveType::kAllGather, Algorithm::kRecursiveDoubling, n,
                payload, steps, n);
  const Bytes cb = chunk_bytes(payload, n);
  for (int step = 0; step < steps; ++step) {
    const int block = 1 << step;
    for (int r = 0; r < n; ++r) {
      const int partner = r ^ block;
      const int lo = r & ~(block - 1);
      s.transfers.push_back(Transfer{step, r, partner, cb * block, lo,
                                     lo + block, false});
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule recursive_halving_doubling_all_reduce(int n,
                                                         Bytes payload) {
  ensure(is_power_of_two(n),
         "recursive halving-doubling requires power-of-two ranks");
  const int logn = ceil_log2(n);
  auto s = make(CollectiveType::kAllReduce,
                Algorithm::kRecursiveHalvingDoubling, n, payload, 2 * logn, n);
  const Bytes cb = chunk_bytes(payload, n);
  // Reduce-scatter by recursive halving. Track each rank's active block.
  std::vector<int> lo(static_cast<std::size_t>(n), 0);
  std::vector<int> size(static_cast<std::size_t>(n), n);
  for (int step = 0; step < logn; ++step) {
    const int d = n >> (step + 1);
    std::vector<int> nlo = lo;
    std::vector<int> nsize = size;
    for (int r = 0; r < n; ++r) {
      const int partner = r ^ d;
      const auto ri = static_cast<std::size_t>(r);
      const int half = size[ri] / 2;
      int send_lo;
      if ((r & d) != 0) {
        // Keep the upper half of the active block, send the lower half.
        send_lo = lo[ri];
        nlo[ri] = lo[ri] + half;
      } else {
        send_lo = lo[ri] + half;
        nlo[ri] = lo[ri];
      }
      nsize[ri] = half;
      s.transfers.push_back(Transfer{step, r, partner, cb * half, send_lo,
                                     send_lo + half, true});
    }
    lo = nlo;
    size = nsize;
  }
  // All-gather by recursive doubling (mirror order).
  for (int step = 0; step < logn; ++step) {
    const int d = 1 << step;
    for (int r = 0; r < n; ++r) {
      const int partner = r ^ d;
      const auto ri = static_cast<std::size_t>(r);
      s.transfers.push_back(Transfer{logn + step, r, partner,
                                     cb * size[ri], lo[ri], lo[ri] + size[ri],
                                     false});
      // Blocks merge pairwise; both ranks end the step with the union.
    }
    for (int r = 0; r < n; ++r) {
      // The union of a block with its partner's block is the enclosing
      // aligned block of twice the size.
      const auto ri = static_cast<std::size_t>(r);
      lo[ri] = lo[ri] / (size[ri] * 2) * (size[ri] * 2);
      size[ri] *= 2;
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule dissemination_barrier(int n) {
  const int steps = ceil_log2(n);
  auto s = make(CollectiveType::kBarrier, Algorithm::kRecursiveDoubling, n, 0,
                std::max(steps, 1), 0);
  if (n == 1) {
    finalize(s);
    return s;
  }
  for (int step = 0; step < steps; ++step) {
    const int d = 1 << step;
    for (int r = 0; r < n; ++r) {
      s.transfers.push_back(
          Transfer{step, r, (r + d) % n, 0, -1, -1, false});
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule binomial_tree_broadcast(int n, Bytes payload) {
  const int steps = ceil_log2(n);
  auto s = make(CollectiveType::kBroadcast, Algorithm::kBinomialTree, n,
                payload, std::max(steps, 1), 1);
  for (int step = 0; step < steps; ++step) {
    const int d = 1 << step;
    for (int r = 0; r < d; ++r) {
      if (r + d < n) {
        s.transfers.push_back(
            Transfer{step, r, r + d, payload, 0, 1, false});
      }
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule binomial_tree_reduce(int n, Bytes payload) {
  const int steps = ceil_log2(n);
  auto s = make(CollectiveType::kReduce, Algorithm::kBinomialTree, n, payload,
                std::max(steps, 1), 1);
  for (int step = 0; step < steps; ++step) {
    const int d = 1 << (steps - 1 - step);
    for (int r = 0; r < d; ++r) {
      if (r + d < n) {
        s.transfers.push_back(
            Transfer{step, r + d, r, payload, 0, 1, true});
      }
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule binomial_tree_all_reduce(int n, Bytes payload) {
  // Reduce to rank 0, then broadcast from rank 0.
  auto reduce = binomial_tree_reduce(n, payload);
  auto bcast = binomial_tree_broadcast(n, payload);
  auto s = make(CollectiveType::kAllReduce, Algorithm::kBinomialTree, n,
                payload, reduce.n_steps + bcast.n_steps, 1);
  s.transfers = reduce.transfers;
  for (Transfer t : bcast.transfers) {
    t.step += reduce.n_steps;
    s.transfers.push_back(t);
  }
  finalize(s);
  return s;
}

// ---- AllToAll -------------------------------------------------------------

CollectiveSchedule pairwise_all_to_all(int n, Bytes payload) {
  auto s = make(CollectiveType::kAllToAll, Algorithm::kPairwise, n, payload,
                n - 1, 0);
  const Bytes slice = chunk_bytes(payload, n);
  for (int step = 0; step < n - 1; ++step) {
    for (int r = 0; r < n; ++r) {
      s.transfers.push_back(
          Transfer{step, r, (r + step + 1) % n, slice, -1, -1, false});
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule direct_all_to_all(int n, Bytes payload) {
  auto s = make(CollectiveType::kAllToAll, Algorithm::kDirect, n, payload, 1,
                0);
  const Bytes slice = chunk_bytes(payload, n);
  for (int r = 0; r < n; ++r) {
    for (int d = 0; d < n; ++d) {
      if (d == r) continue;
      s.transfers.push_back(Transfer{0, r, d, slice, -1, -1, false});
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule direct_all_gather(int n, Bytes payload) {
  auto s =
      make(CollectiveType::kAllGather, Algorithm::kDirect, n, payload, 1, n);
  const Bytes cb = chunk_bytes(payload, n);
  for (int r = 0; r < n; ++r) {
    for (int d = 0; d < n; ++d) {
      if (d == r) continue;
      s.transfers.push_back(Transfer{0, r, d, cb, r, r + 1, false});
    }
  }
  finalize(s);
  return s;
}

CollectiveSchedule direct_broadcast(int n, Bytes payload) {
  auto s =
      make(CollectiveType::kBroadcast, Algorithm::kDirect, n, payload, 1, 1);
  for (int d = 1; d < n; ++d) {
    s.transfers.push_back(Transfer{0, 0, d, payload, 0, 1, false});
  }
  finalize(s);
  return s;
}

CollectiveSchedule direct_reduce(int n, Bytes payload) {
  auto s = make(CollectiveType::kReduce, Algorithm::kDirect, n, payload, 1, 1);
  for (int r = 1; r < n; ++r) {
    s.transfers.push_back(Transfer{0, r, 0, payload, 0, 1, true});
  }
  finalize(s);
  return s;
}

CollectiveSchedule send_recv(Bytes payload) {
  auto s = make(CollectiveType::kSendRecv, Algorithm::kDirect, 2, payload, 1,
                1);
  s.transfers.push_back(Transfer{0, 0, 1, payload, 0, 1, false});
  finalize(s);
  return s;
}

CollectiveSchedule empty_schedule(CollectiveType type, Algorithm algo,
                                  Bytes payload) {
  auto s = make(type, algo, 1, payload, 0, 1);
  finalize(s);
  return s;
}

}  // namespace

bool algorithm_supports(CollectiveType type, Algorithm algo, int n_ranks) {
  if (n_ranks < 1) return false;
  if (n_ranks == 1) return type != CollectiveType::kSendRecv;
  const bool pow2 = is_power_of_two(n_ranks);
  switch (type) {
    case CollectiveType::kAllReduce:
      return algo == Algorithm::kRing || algo == Algorithm::kBinomialTree ||
             (algo == Algorithm::kRecursiveHalvingDoubling && pow2);
    case CollectiveType::kAllGather:
      return algo == Algorithm::kRing || algo == Algorithm::kDirect ||
             (algo == Algorithm::kRecursiveDoubling && pow2);
    case CollectiveType::kReduceScatter:
      return algo == Algorithm::kRing;
    case CollectiveType::kAllToAll:
      return algo == Algorithm::kPairwise || algo == Algorithm::kDirect;
    case CollectiveType::kBroadcast:
      return algo == Algorithm::kRing || algo == Algorithm::kBinomialTree ||
             algo == Algorithm::kDirect;
    case CollectiveType::kReduce:
      return algo == Algorithm::kRing || algo == Algorithm::kBinomialTree ||
             algo == Algorithm::kDirect;
    case CollectiveType::kSendRecv:
      return n_ranks == 2 && algo == Algorithm::kDirect;
    case CollectiveType::kBarrier:
      return algo == Algorithm::kRing || algo == Algorithm::kRecursiveDoubling;
  }
  return false;
}

CollectiveSchedule plan_collective(CollectiveType type, Algorithm algo,
                                   int n_ranks, Bytes payload_bytes) {
  ensure(n_ranks >= 1, "collective requires at least one rank");
  ensure(payload_bytes >= 0, "payload must be non-negative");
  ensure(algorithm_supports(type, algo, n_ranks),
         std::string("algorithm ") + to_string(algo) + " cannot implement " +
             to_string(type) + " on " + std::to_string(n_ranks) + " ranks");
  if (n_ranks == 1) return empty_schedule(type, algo, payload_bytes);

  switch (type) {
    case CollectiveType::kAllReduce:
      if (algo == Algorithm::kRing) return ring_all_reduce(n_ranks, payload_bytes);
      if (algo == Algorithm::kBinomialTree)
        return binomial_tree_all_reduce(n_ranks, payload_bytes);
      return recursive_halving_doubling_all_reduce(n_ranks, payload_bytes);
    case CollectiveType::kAllGather:
      if (algo == Algorithm::kRing) return ring_all_gather(n_ranks, payload_bytes);
      if (algo == Algorithm::kDirect)
        return direct_all_gather(n_ranks, payload_bytes);
      return recursive_doubling_all_gather(n_ranks, payload_bytes);
    case CollectiveType::kReduceScatter:
      return ring_reduce_scatter(n_ranks, payload_bytes);
    case CollectiveType::kAllToAll:
      return algo == Algorithm::kPairwise
                 ? pairwise_all_to_all(n_ranks, payload_bytes)
                 : direct_all_to_all(n_ranks, payload_bytes);
    case CollectiveType::kBroadcast:
      if (algo == Algorithm::kRing) return ring_broadcast(n_ranks, payload_bytes);
      if (algo == Algorithm::kBinomialTree)
        return binomial_tree_broadcast(n_ranks, payload_bytes);
      return direct_broadcast(n_ranks, payload_bytes);
    case CollectiveType::kReduce:
      if (algo == Algorithm::kRing) return ring_reduce(n_ranks, payload_bytes);
      if (algo == Algorithm::kBinomialTree)
        return binomial_tree_reduce(n_ranks, payload_bytes);
      return direct_reduce(n_ranks, payload_bytes);
    case CollectiveType::kSendRecv:
      return send_recv(payload_bytes);
    case CollectiveType::kBarrier:
      return algo == Algorithm::kRing ? ring_barrier(n_ranks)
                                      : dissemination_barrier(n_ranks);
  }
  ensure(false, "plan_collective: unhandled collective type");
  return {};
}

Algorithm choose_algorithm(CollectiveType type, int n_ranks,
                           Bytes payload_bytes, int max_degree) {
  const bool unconstrained = max_degree <= 0;
  const bool pow2 = is_power_of_two(n_ranks);
  const int logn = ceil_log2(std::max(n_ranks, 1));
  // NCCL-style latency/bandwidth crossover: small payloads prefer
  // logarithmic-step algorithms when the fabric's degree allows them (C1).
  const bool small = payload_bytes <= static_cast<Bytes>(1) * kMiB;
  const bool log_algos_fit = unconstrained || max_degree >= logn;

  switch (type) {
    case CollectiveType::kAllReduce:
      if (small && log_algos_fit) {
        return pow2 ? Algorithm::kRecursiveHalvingDoubling
                    : Algorithm::kBinomialTree;
      }
      return Algorithm::kRing;
    case CollectiveType::kAllGather:
      if (small && log_algos_fit && pow2) return Algorithm::kRecursiveDoubling;
      return Algorithm::kRing;
    case CollectiveType::kReduceScatter:
      return Algorithm::kRing;
    case CollectiveType::kAllToAll:
      return unconstrained ? Algorithm::kDirect : Algorithm::kPairwise;
    case CollectiveType::kBroadcast:
    case CollectiveType::kReduce:
      return log_algos_fit ? Algorithm::kBinomialTree : Algorithm::kRing;
    case CollectiveType::kSendRecv:
      return Algorithm::kDirect;
    case CollectiveType::kBarrier:
      return log_algos_fit ? Algorithm::kRecursiveDoubling : Algorithm::kRing;
  }
  return Algorithm::kRing;
}

int static_circuit_ports_needed(const CollectiveSchedule& sched) {
  return sched.max_distinct_peers;
}

}  // namespace opus::collective
