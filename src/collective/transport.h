// Transport abstraction between the collective executor and the fabric.
//
// The executor plans *what* moves between ranks; a Transport decides *how*:
// the baseline DirectTransport maps sends straight onto the cluster (packet-
// switched rails are always connected), while the Opus transport (src/core)
// first establishes optical circuits via the control plane, exactly like the
// shim/controller interaction in Fig. 6 of the paper.
#pragma once

#include <functional>

#include "collective/comm_group.h"
#include "collective/schedule.h"
#include "net/cluster.h"

namespace opus::collective {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Called once before a collective starts. The transport must invoke
  /// `ready` (possibly later in simulated time) when step 0 may begin — e.g.
  /// after the control plane has established the circuits for the schedule.
  virtual void prepare_collective(const CommGroup& group,
                                  const CollectiveSchedule& sched,
                                  std::function<void()> ready) = 0;

  /// True if this schedule's peer graph cannot be held as simultaneous
  /// circuits, so every step needs its own preparation (and the executor
  /// must run the schedule step-synchronously). Always false for packet
  /// fabrics; true on photonic rails for algorithms whose distinct peer
  /// count exceeds the NIC port budget (constraint C1).
  virtual bool needs_per_step_preparation(
      const CommGroup& group, const CollectiveSchedule& sched) const = 0;

  /// Called before step `step` when needs_per_step_preparation() is true.
  virtual void prepare_step(const CommGroup& group,
                            const CollectiveSchedule& sched, int step,
                            std::function<void()> ready) = 0;

  /// Moves bytes between two group members; `done` fires at delivery.
  virtual void send(const CommGroup& group, GpuId src, GpuId dst, Bytes bytes,
                    std::function<void()> done) = 0;

  /// Called when the collective's last transfer has delivered (lets control
  /// planes update phase tracking / trigger provisioning).
  virtual void collective_finished(const CommGroup& group,
                                   const CollectiveSchedule& sched) {
    (void)group;
    (void)sched;
  }

  /// Called by the workload engine at the start of each training iteration.
  /// The Opus control plane uses this to switch from profiling (iteration 0)
  /// to prediction-driven provisioning (later iterations).
  virtual void iteration_started(int index) { (void)index; }
};

/// Transport for fully-connected fabrics (electrical rails or the idealized
/// baseline): no preparation, sends route directly through the cluster.
class DirectTransport final : public Transport {
 public:
  explicit DirectTransport(net::Cluster& cluster) : cluster_(cluster) {}

  void prepare_collective(const CommGroup&, const CollectiveSchedule&,
                          std::function<void()> ready) override {
    ready();
  }

  bool needs_per_step_preparation(const CommGroup&,
                                  const CollectiveSchedule&) const override {
    return false;
  }

  void prepare_step(const CommGroup&, const CollectiveSchedule&, int,
                    std::function<void()> ready) override {
    ready();
  }

  void send(const CommGroup&, GpuId src, GpuId dst, Bytes bytes,
            std::function<void()> done) override {
    cluster_.transfer(src, dst, bytes, std::move(done));
  }

 private:
  net::Cluster& cluster_;
};

}  // namespace opus::collective
