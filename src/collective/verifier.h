// Symbolic schedule verifier.
//
// Executes a CollectiveSchedule's transfers over an abstract data model —
// per-rank, per-chunk contribution counts — and checks the collective's
// postcondition: every rank ends with exactly the data the collective
// promises, with every contribution counted exactly once (catching both
// missing data and double-counted partial sums). Timing-independent: the
// model applies steps atomically with snapshot semantics, so simultaneous
// pairwise exchanges are handled correctly.
#pragma once

#include <string>

#include "collective/schedule.h"

namespace opus::collective {

struct VerifyReport {
  bool ok = true;
  std::string error;  ///< empty when ok
};

/// Verifies that `sched` implements its collective's semantics.
/// Supported for every schedule the planner produces. Group sizes above 256
/// are rejected (the model is O(n^3) memory).
VerifyReport verify_schedule(const CollectiveSchedule& sched);

}  // namespace opus::collective
