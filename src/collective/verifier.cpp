#include "collective/verifier.h"

#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace opus::collective {
namespace {

/// Per-rank, per-chunk contribution counts: state[r][c][k] = how many times
/// rank k's input for chunk c is included in rank r's buffer for chunk c.
class ContributionModel {
 public:
  ContributionModel(int n_ranks, int n_chunks)
      : n_(n_ranks),
        chunks_(n_chunks),
        state_(static_cast<std::size_t>(n_ranks) *
                   static_cast<std::size_t>(n_chunks) *
                   static_cast<std::size_t>(n_ranks),
               0) {}

  std::uint16_t& at(std::vector<std::uint16_t>& s, int r, int c, int k) const {
    return s[(static_cast<std::size_t>(r) * static_cast<std::size_t>(chunks_) +
              static_cast<std::size_t>(c)) *
                 static_cast<std::size_t>(n_) +
             static_cast<std::size_t>(k)];
  }
  std::uint16_t get(const std::vector<std::uint16_t>& s, int r, int c,
                    int k) const {
    return s[(static_cast<std::size_t>(r) * static_cast<std::size_t>(chunks_) +
              static_cast<std::size_t>(c)) *
                 static_cast<std::size_t>(n_) +
             static_cast<std::size_t>(k)];
  }

  void seed_own_input_all_chunks() {
    for (int r = 0; r < n_; ++r)
      for (int c = 0; c < chunks_; ++c) at(state_, r, c, r) = 1;
  }
  void seed_own_chunk_only() {
    for (int r = 0; r < n_ && r < chunks_; ++r) at(state_, r, r, r) = 1;
  }
  void seed_root_only() { at(state_, 0, 0, 0) = 1; }

  /// Applies one step's transfers with snapshot (pre-step read) semantics.
  void apply_step(const CollectiveSchedule& sched,
                  const std::vector<int>& indices) {
    const std::vector<std::uint16_t> before = state_;
    for (int ti : indices) {
      const Transfer& t = sched.transfers[static_cast<std::size_t>(ti)];
      if (t.chunk_lo < 0) continue;  // untracked transfer
      for (int raw = t.chunk_lo; raw < t.chunk_hi; ++raw) {
        const int c = ((raw % chunks_) + chunks_) % chunks_;
        for (int k = 0; k < n_; ++k) {
          const std::uint16_t incoming = get(before, t.src, c, k);
          if (t.reduce_op) {
            at(state_, t.dst, c, k) =
                static_cast<std::uint16_t>(at(state_, t.dst, c, k) + incoming);
          } else {
            at(state_, t.dst, c, k) = incoming;
          }
        }
      }
    }
  }

  bool chunk_complete(int r, int c) const {
    for (int k = 0; k < n_; ++k)
      if (get(state_, r, c, k) != 1) return false;
    return true;
  }
  bool chunk_is_exactly(int r, int c, int origin) const {
    for (int k = 0; k < n_; ++k)
      if (get(state_, r, c, k) != (k == origin ? 1 : 0)) return false;
    return true;
  }

 private:
  int n_;
  int chunks_;
  std::vector<std::uint16_t> state_;
};

VerifyReport fail(const std::string& msg) { return VerifyReport{false, msg}; }

VerifyReport verify_chunked(const CollectiveSchedule& sched) {
  const int n = sched.n_ranks;
  const int chunks = sched.n_chunks;
  ContributionModel model(n, chunks);

  switch (sched.type) {
    case CollectiveType::kAllReduce:
    case CollectiveType::kReduceScatter:
    case CollectiveType::kReduce:
      model.seed_own_input_all_chunks();
      break;
    case CollectiveType::kAllGather:
      model.seed_own_chunk_only();
      break;
    case CollectiveType::kBroadcast:
    case CollectiveType::kSendRecv:
      model.seed_root_only();
      break;
    default:
      return fail("verify_chunked: unsupported type");
  }

  for (const auto& step : sched.transfers_by_step()) {
    model.apply_step(sched, step);
  }

  std::ostringstream err;
  switch (sched.type) {
    case CollectiveType::kAllReduce:
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < chunks; ++c)
          if (!model.chunk_complete(r, c)) {
            err << "AllReduce: rank " << r << " chunk " << c
                << " is not a complete exactly-once reduction";
            return fail(err.str());
          }
      return {};
    case CollectiveType::kReduceScatter: {
      // Every chunk must be completely reduced somewhere, and every rank
      // must own at least one completely reduced chunk.
      for (int c = 0; c < chunks; ++c) {
        bool found = false;
        for (int r = 0; r < n && !found; ++r) found = model.chunk_complete(r, c);
        if (!found) {
          err << "ReduceScatter: chunk " << c << " never fully reduced";
          return fail(err.str());
        }
      }
      for (int r = 0; r < n; ++r) {
        bool found = false;
        for (int c = 0; c < chunks && !found; ++c)
          found = model.chunk_complete(r, c);
        if (!found) {
          err << "ReduceScatter: rank " << r << " owns no reduced chunk";
          return fail(err.str());
        }
      }
      return {};
    }
    case CollectiveType::kAllGather:
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < chunks; ++c)
          if (!model.chunk_is_exactly(r, c, c)) {
            err << "AllGather: rank " << r << " chunk " << c
                << " does not hold rank " << c << "'s input";
            return fail(err.str());
          }
      return {};
    case CollectiveType::kReduce:
      for (int c = 0; c < chunks; ++c)
        if (!model.chunk_complete(0, c)) {
          err << "Reduce: root chunk " << c << " incomplete";
          return fail(err.str());
        }
      return {};
    case CollectiveType::kBroadcast:
      for (int r = 0; r < n; ++r)
        if (!model.chunk_is_exactly(r, 0, 0)) {
          err << "Broadcast: rank " << r << " missing root data";
          return fail(err.str());
        }
      return {};
    case CollectiveType::kSendRecv:
      if (!model.chunk_is_exactly(1, 0, 0)) {
        return fail("SendRecv: receiver missing sender data");
      }
      return {};
    default:
      return fail("verify_chunked: unsupported type");
  }
}

VerifyReport verify_all_to_all(const CollectiveSchedule& sched) {
  const int n = sched.n_ranks;
  // counts[dst][src] = how many slices dst received from src.
  std::vector<std::vector<int>> counts(static_cast<std::size_t>(n),
                                       std::vector<int>(n, 0));
  for (const Transfer& t : sched.transfers) {
    ++counts[static_cast<std::size_t>(t.dst)][static_cast<std::size_t>(t.src)];
  }
  std::ostringstream err;
  for (int d = 0; d < n; ++d) {
    for (int s = 0; s < n; ++s) {
      const int expected = (s == d) ? 0 : 1;
      if (counts[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] !=
          expected) {
        err << "AllToAll: rank " << d << " received "
            << counts[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)]
            << " slices from rank " << s << " (expected " << expected << ")";
        return fail(err.str());
      }
    }
  }
  return {};
}

VerifyReport verify_barrier(const CollectiveSchedule& sched) {
  const int n = sched.n_ranks;
  // know[r] = set of ranks whose arrival r has causally observed.
  std::vector<std::set<int>> know(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) know[static_cast<std::size_t>(r)].insert(r);
  for (const auto& step : sched.transfers_by_step()) {
    const auto before = know;
    for (int ti : step) {
      const Transfer& t = sched.transfers[static_cast<std::size_t>(ti)];
      const auto& src_know = before[static_cast<std::size_t>(t.src)];
      know[static_cast<std::size_t>(t.dst)].insert(src_know.begin(),
                                                   src_know.end());
    }
  }
  for (int r = 0; r < n; ++r) {
    if (static_cast<int>(know[static_cast<std::size_t>(r)].size()) != n) {
      std::ostringstream err;
      err << "Barrier: rank " << r << " has not observed all ranks";
      return fail(err.str());
    }
  }
  return {};
}

}  // namespace

VerifyReport verify_schedule(const CollectiveSchedule& sched) {
  ensure(sched.n_ranks >= 1, "verify_schedule: empty group");
  ensure(sched.n_ranks <= 256,
         "verify_schedule: model limited to 256 ranks (O(n^3) memory)");
  if (sched.n_ranks == 1) return {};
  switch (sched.type) {
    case CollectiveType::kAllToAll:
      return verify_all_to_all(sched);
    case CollectiveType::kBarrier:
      return verify_barrier(sched);
    default:
      return verify_chunked(sched);
  }
}

}  // namespace opus::collective
