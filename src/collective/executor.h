// Dependency-driven collective execution on the simulated fabric.
//
// Default mode is *pipelined*: a transfer at step s from rank r launches as
// soon as (a) r's own step s-1 send finished (port serialization) and (b) the
// step s-1 data destined to r arrived (data dependency). This reproduces ring
// pipelining without global per-step barriers. When the transport reports
// that the schedule needs per-step circuit preparation (C1 on photonic
// rails), execution falls back to step-synchronous mode: prepare step ->
// run all its transfers -> prepare next step.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "collective/comm_group.h"
#include "collective/schedule.h"
#include "collective/transport.h"
#include "sim/simulator.h"

namespace opus::collective {

class CollectiveExecutor {
 public:
  CollectiveExecutor(sim::Simulator& sim, Transport& transport)
      : sim_(sim), transport_(transport) {}

  /// Statistics of one collective execution.
  struct Result {
    TimeNs start = 0;
    TimeNs end = 0;
    int transfers = 0;
    bool step_synchronous = false;
    TimeNs duration() const { return end - start; }
  };

  /// Runs `sched` over `group`; `on_complete(result)` fires when every
  /// transfer has delivered. Multiple collectives (on different groups) may
  /// be in flight concurrently on one executor. Step-synchronous schedules
  /// (those needing per-step circuit preparation) are serialized per group,
  /// like same-communicator collectives on one NCCL stream — their per-step
  /// reconfigurations must not interleave.
  void run(const CommGroup& group, const CollectiveSchedule& sched,
           std::function<void(const Result&)> on_complete);

  /// Total collectives completed by this executor.
  int completed() const { return completed_; }

 private:
  struct RunState;
  struct PendingRun {
    CommGroup group;
    CollectiveSchedule sched;
    std::function<void(const Result&)> on_complete;
  };
  void start_run(const CommGroup& group, const CollectiveSchedule& sched,
                 std::function<void(const Result&)> on_complete,
                 bool step_sync);
  void launch_pipelined(std::shared_ptr<RunState> rs);
  void launch_transfer(const std::shared_ptr<RunState>& rs, int index);
  void on_transfer_done(const std::shared_ptr<RunState>& rs, int index);
  void run_step_synchronous(std::shared_ptr<RunState> rs, int step);
  void finish(const std::shared_ptr<RunState>& rs);

  sim::Simulator& sim_;
  Transport& transport_;
  int completed_ = 0;
  std::set<GroupId> step_sync_busy_;
  std::map<GroupId, std::deque<PendingRun>> step_sync_queue_;
};

}  // namespace opus::collective
