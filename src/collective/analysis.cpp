#include "collective/analysis.h"

#include <algorithm>
#include <set>

namespace opus::collective {

TimeNs predicted_time(const CollectiveSchedule& sched, AlphaBeta cost) {
  TimeNs total = 0;
  for (const auto& step : sched.transfers_by_step()) {
    if (step.empty()) continue;
    Bytes largest = 0;
    for (int ti : step) {
      largest = std::max(largest,
                         sched.transfers[static_cast<std::size_t>(ti)].bytes);
    }
    total += cost.alpha + transfer_time(largest, cost.bw);
  }
  return total;
}

int peer_changing_steps(const CollectiveSchedule& sched) {
  int changes = 0;
  std::set<std::pair<int, int>> prev;
  for (const auto& step : sched.transfers_by_step()) {
    if (step.empty()) continue;
    std::set<std::pair<int, int>> cur;
    for (int ti : step) {
      const Transfer& t = sched.transfers[static_cast<std::size_t>(ti)];
      // Circuits are bidirectional: (a,b) and (b,a) share one circuit.
      cur.emplace(std::min(t.src, t.dst), std::max(t.src, t.dst));
    }
    // A step needs reconfiguration if it uses any circuit not already up.
    if (!std::includes(prev.begin(), prev.end(), cur.begin(), cur.end())) {
      ++changes;
      prev = cur;
    }
  }
  return changes;
}

TimeNs predicted_time_with_reconfig(const CollectiveSchedule& sched,
                                    AlphaBeta cost, TimeNs reconfig) {
  return predicted_time(sched, cost) +
         reconfig * static_cast<TimeNs>(peer_changing_steps(sched));
}

}  // namespace opus::collective
