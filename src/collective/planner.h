// Collective schedule planners: one function per (type, algorithm) pair, plus
// an NCCL-style automatic algorithm chooser that honours the physical degree
// constraint of circuit-switched fabrics (constraint C1).
#pragma once

#include "collective/schedule.h"
#include "common/units.h"

namespace opus::collective {

/// Plans a collective of `type` over `n_ranks` using `algo`.
///
/// Payload semantics (`payload_bytes`):
///  - AllReduce:      per-rank buffer size (each rank contributes and
///                    receives `payload_bytes`).
///  - AllGather:      total gathered size; each rank contributes
///                    payload/n and ends with the full payload.
///  - ReduceScatter:  per-rank input size; each rank ends with payload/n.
///  - AllToAll:       per-rank send total; each rank sends payload/n to
///                    every other rank.
///  - Broadcast/Reduce: buffer size (root rank 0).
///  - SendRecv:       bytes moved from rank 0 to rank 1 of the group view.
///  - Barrier:        ignored (zero-byte token passing).
///
/// Throws InvariantError for invalid combinations (e.g. recursive doubling
/// on a non-power-of-two group).
CollectiveSchedule plan_collective(CollectiveType type, Algorithm algo,
                                   int n_ranks, Bytes payload_bytes);

/// True iff `algo` can implement `type` on `n_ranks` at all.
bool algorithm_supports(CollectiveType type, Algorithm algo, int n_ranks);

/// Chooses an algorithm like NCCL's tuner, but constrained to fabrics where
/// each rank can hold at most `max_degree` simultaneous circuits:
///  - if the latency-optimized choice (tree / recursive doubling) needs more
///    distinct peers than `max_degree`, falls back to ring (C1);
///  - small payloads prefer latency-optimized algorithms when allowed;
///  - AllToAll uses pairwise on circuit fabrics, direct otherwise.
/// `max_degree <= 0` means unconstrained (electrical rail).
Algorithm choose_algorithm(CollectiveType type, int n_ranks,
                           Bytes payload_bytes, int max_degree);

/// The smallest number of NIC ports a rank needs so the whole schedule can be
/// wired as static circuits (no per-step reconfiguration): the number of
/// distinct peers of the busiest rank.
int static_circuit_ports_needed(const CollectiveSchedule& sched);

}  // namespace opus::collective
