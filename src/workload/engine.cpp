#include "workload/engine.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace opus::workload {

IterationEngine::IterationEngine(sim::Simulator& sim, net::Cluster& cluster,
                                 collective::Transport& transport,
                                 trace::TraceRecorder* recorder,
                                 Options options)
    : sim_(sim),
      cluster_(cluster),
      transport_(transport),
      recorder_(recorder),
      options_(options),
      executor_(sim, transport) {
  ensure(options_.dispatch_min >= 0 &&
             options_.dispatch_max >= options_.dispatch_min,
         "engine: invalid dispatch latency range");
}

TimeNs IterationEngine::dispatch_latency(OpId id) const {
  if (options_.dispatch_max == 0) return 0;
  // Deterministic per (op, iteration): same seeds give identical runs.
  SplitMix64 mix(options_.seed ^
                 (static_cast<std::uint64_t>(iteration_index_) << 32) ^
                 static_cast<std::uint64_t>(id.value()));
  Xoshiro256 rng(mix.next());
  return options_.dispatch_min +
         static_cast<TimeNs>(rng.uniform() *
                             static_cast<double>(options_.dispatch_max -
                                                 options_.dispatch_min));
}

void IterationEngine::run(const IterationDag& dag, int iterations,
                          std::function<void()> on_done) {
  ensure(iterations >= 1, "engine: need at least one iteration");
  ensure(dag_ == nullptr, "engine: a run is already in progress");
  dag.validate();
  dag_ = &dag;
  iterations_left_ = iterations;
  on_done_ = std::move(on_done);

  // Build the dependents index once per run.
  dependents_.assign(dag.size(), {});
  for (const Op& op : dag.ops) {
    for (OpId d : op.deps) {
      dependents_[static_cast<std::size_t>(d.value())].push_back(
          op.id.value());
    }
  }
  gpu_queue_.assign(static_cast<std::size_t>(cluster_.n_gpus()), {});
  gpu_busy_.assign(static_cast<std::size_t>(cluster_.n_gpus()), false);

  start_iteration();
}

std::vector<TimeNs> IterationEngine::run_to_completion(const IterationDag& dag,
                                                       int iterations) {
  bool done = false;
  run(dag, iterations, [&done] { done = true; });
  sim_.run();
  ensure(done, "engine: simulation ended before the workload completed "
               "(dependency deadlock?)");
  return iter_times_;
}

void IterationEngine::abort() {
  aborted_ = true;
  dag_ = nullptr;
  on_done_ = {};
}

void IterationEngine::start_iteration() {
  if (aborted_) return;
  ++iteration_index_;
  iteration_start_ = sim_.now();
  if (recorder_) recorder_->begin_iteration(sim_.now());
  transport_.iteration_started(iteration_index_);

  deps_remaining_.assign(dag_->size(), 0);
  parts_remaining_.assign(dag_->size(), 0);
  ops_remaining_ = dag_->size();
  for (const Op& op : dag_->ops) {
    deps_remaining_[static_cast<std::size_t>(op.id.value())] =
        static_cast<int>(op.deps.size());
  }
  // Seed the roots.
  for (const Op& op : dag_->ops) {
    if (op.deps.empty()) op_ready(op.id);
  }
}

void IterationEngine::finish_iteration() {
  iter_times_.push_back(sim_.now() - iteration_start_);
  if (recorder_) recorder_->end_iteration(sim_.now());
  if (--iterations_left_ > 0) {
    // Decouple from the completing iteration's call stack.
    sim_.schedule_after(0, [this] { start_iteration(); });
    return;
  }
  dag_ = nullptr;
  if (on_done_) {
    auto cb = std::move(on_done_);
    on_done_ = {};
    cb();
  }
}

void IterationEngine::op_ready(OpId id) {
  const Op& op = dag_->op(id);
  switch (op.kind) {
    case OpKind::kJoin:
      complete_op(id);
      return;
    case OpKind::kCompute:
      start_compute(op);
      return;
    case OpKind::kCollective: {
      const TimeNs dispatch = dispatch_latency(id);
      if (dispatch > 0) {
        sim_.schedule_after(dispatch, [this, id] {
          if (aborted_) return;
          start_collective(dag_->op(id));
        });
      } else {
        start_collective(op);
      }
      return;
    }
  }
}

void IterationEngine::start_compute(const Op& op) {
  parts_remaining_[static_cast<std::size_t>(op.id.value())] =
      static_cast<int>(op.gpus.size());
  // Parts whose GPU is idle start now and share ONE completion event (the
  // coalescing that keeps event count independent of how many GPUs a
  // data-parallel op spans); parts behind a busy GPU queue up and complete
  // on that GPU's own schedule.
  std::vector<int> cohort;
  cohort.reserve(op.gpus.size());
  for (GpuId g : op.gpus) {
    if (gpu_busy_[static_cast<std::size_t>(g.value())]) {
      gpu_queue_[static_cast<std::size_t>(g.value())].push_back(op.id);
    } else {
      gpu_busy_[static_cast<std::size_t>(g.value())] = true;
      cohort.push_back(g.value());
    }
  }
  if (cohort.empty()) return;
  const TimeNs start = sim_.now();
  sim_.schedule_after(
      op.duration, [this, id = op.id, start, cohort = std::move(cohort)] {
        finish_cohort(id, cohort, start);
      });
}

void IterationEngine::record_compute_span(int gpu, OpId id, TimeNs start) {
  if (!recorder_) return;
  const Op& op = dag_->op(id);
  trace::ComputeRecord rec;
  rec.gpu = GpuId{gpu};
  rec.t_start = start;
  rec.t_end = sim_.now();
  rec.label = op.label;
  rec.pp_stage = op.pp_stage;
  rec.microbatch = op.microbatch;
  recorder_->record_compute(std::move(rec));
}

void IterationEngine::finish_cohort(OpId id, const std::vector<int>& gpus,
                                    TimeNs start) {
  if (aborted_) return;
  for (int gpu : gpus) record_compute_span(gpu, id, start);
  auto& parts = parts_remaining_[static_cast<std::size_t>(id.value())];
  parts -= static_cast<int>(gpus.size());
  const bool completed = parts == 0;
  // Release the cohort's GPUs before completing the op: a dependent made
  // ready by this completion then sees them idle and starts as one cohort.
  for (int gpu : gpus) run_next_on_gpu(gpu);
  if (completed) complete_op(id);
}

void IterationEngine::run_next_on_gpu(int gpu) {
  auto& queue = gpu_queue_[static_cast<std::size_t>(gpu)];
  if (queue.empty()) {
    gpu_busy_[static_cast<std::size_t>(gpu)] = false;
    return;
  }
  gpu_busy_[static_cast<std::size_t>(gpu)] = true;
  const OpId id = queue.front();
  queue.pop_front();
  const Op& op = dag_->op(id);
  const TimeNs start = sim_.now();
  sim_.schedule_after(op.duration, [this, gpu, id, start] {
    if (aborted_) return;
    record_compute_span(gpu, id, start);
    gpu_finished_part(gpu, id);
  });
}

void IterationEngine::gpu_finished_part(int gpu, OpId id) {
  const bool completed =
      --parts_remaining_[static_cast<std::size_t>(id.value())] == 0;
  run_next_on_gpu(gpu);
  if (completed) complete_op(id);
}

int IterationEngine::degree_budget(const collective::CommGroup& group) const {
  if (!cluster_.photonic()) return 0;
  if (!group_is_scale_out(group)) return 0;  // NVLink: full connectivity
  return cluster_.config().nic_ports;
}

bool IterationEngine::group_is_scale_out(
    const collective::CommGroup& group) const {
  if (group.ranks.size() < 2) return false;
  const NodeId node = cluster_.node_of(group.ranks.front());
  return std::any_of(group.ranks.begin(), group.ranks.end(),
                     [&](GpuId g) { return cluster_.node_of(g) != node; });
}

void IterationEngine::start_collective(const Op& op) {
  parts_remaining_[static_cast<std::size_t>(op.id.value())] =
      static_cast<int>(op.group_indices.size());
  const TimeNs issue = sim_.now();
  for (int gi : op.group_indices) {
    const collective::CommGroup& group =
        dag_->groups[static_cast<std::size_t>(gi)];
    const auto algo = collective::choose_algorithm(
        op.ctype, group.size(), op.payload, degree_budget(group));
    const auto sched =
        collective::plan_collective(op.ctype, algo, group.size(), op.payload);
    executor_.run(group, sched,
                  [this, id = op.id, gi, issue,
                   payload = op.payload](const collective::CollectiveExecutor::
                                             Result& result) {
      if (aborted_) return;
      const Op& op = dag_->op(id);
      if (recorder_) {
        const collective::CommGroup& group =
            dag_->groups[static_cast<std::size_t>(gi)];
        trace::CommRecord rec;
        rec.group = group.id;
        rec.group_name = group.name;
        rec.dim = op.dim;
        rec.type = op.ctype;
        // Report per-rank input sizes, matching the profiler convention the
        // paper's Fig. 4(b) categories use: an AllGather's per-rank input is
        // its shard (total / group size); every other collective reports its
        // payload directly.
        rec.payload = op.ctype == collective::CollectiveType::kAllGather
                          ? payload / group.size()
                          : payload;
        rec.t_issue = issue;
        rec.t_end = result.end;
        rec.scale_out = group_is_scale_out(group);
        if (rec.scale_out) {
          // Rail-local groups carry their traffic on the members' rail.
          const int local =
              group.ranks.front().value() % cluster_.gpus_per_node();
          bool rail_local = true;
          for (GpuId g : group.ranks) {
            if (g.value() % cluster_.gpus_per_node() != local) {
              rail_local = false;
              break;
            }
          }
          if (rail_local) rec.rail = RailId{local};
        }
        recorder_->record_comm(std::move(rec));
      }
      if (--parts_remaining_[static_cast<std::size_t>(id.value())] == 0) {
        complete_op(id);
      }
    });
  }
}

void IterationEngine::complete_op(OpId id) {
  ensure(ops_remaining_ > 0, "engine: op completed after iteration end");
  --ops_remaining_;
  // Only the frame that performed the final decrement may finish the
  // iteration; outer frames of a synchronous join cascade must not re-fire.
  const bool was_last = (ops_remaining_ == 0);
  for (int d : dependents_[static_cast<std::size_t>(id.value())]) {
    if (--deps_remaining_[static_cast<std::size_t>(d)] == 0) {
      op_ready(OpId{d});
    }
  }
  if (was_last) finish_iteration();
}

}  // namespace opus::workload
