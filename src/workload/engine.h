// Iteration engine: executes an IterationDag on the simulated cluster.
//
// Compute ops occupy their GPUs (one op part per GPU at a time, FIFO);
// collective ops run through the CollectiveExecutor over the injected
// Transport (DirectTransport for electrical rails, Opus/static-ring/rotor
// transports for the photonic fabrics), so the same DAG drives every fabric
// in the comparison set. Every communication-group execution and every
// compute span is recorded into the TraceRecorder.
//
// Event coalescing: the GPU parts of one compute op that start together
// (all their GPUs idle at dispatch) share a single completion event — at
// 512-way data parallelism a per-microbatch op is one event, not 512. Only
// parts queued behind a busy GPU fall back to per-GPU completion events, so
// the simulator's per-iteration event count grows with the number of active
// spans in the DAG rather than with world size (the scaling ceiling after
// the PR-2 fluid-solver work; pinned by BM_EngineEventScaling).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "collective/executor.h"
#include "collective/planner.h"
#include "collective/transport.h"
#include "net/cluster.h"
#include "sim/simulator.h"
#include "trace/recorder.h"
#include "workload/iteration.h"

namespace opus::workload {

class IterationEngine {
 public:
  struct Options {
    /// Host-side dispatch overhead between a collective's dependencies
    /// completing and the slowest rank actually joining it (CPU scheduling,
    /// kernel launch, lazy DTensor initialization). Drawn deterministically
    /// per (op, iteration) from [min, max]; set both to 0 to disable.
    TimeNs dispatch_min = usecs(300);
    TimeNs dispatch_max = msecs(3);
    std::uint64_t seed = 42;

    /// Field-wise equality (config/serde skips fields equal to the default).
    friend bool operator==(const Options&, const Options&) = default;
  };

  IterationEngine(sim::Simulator& sim, net::Cluster& cluster,
                  collective::Transport& transport,
                  trace::TraceRecorder* recorder, Options options);
  IterationEngine(sim::Simulator& sim, net::Cluster& cluster,
                  collective::Transport& transport,
                  trace::TraceRecorder* recorder = nullptr)
      : IterationEngine(sim, cluster, transport, recorder, Options{}) {}

  /// Runs `iterations` executions of `dag` back to back, then fires
  /// `on_done`. Call Simulator::run() afterwards to advance the simulation.
  void run(const IterationDag& dag, int iterations,
           std::function<void()> on_done = {});

  /// Convenience: schedules `iterations` runs and drives the simulator to
  /// completion; returns per-iteration wall times.
  std::vector<TimeNs> run_to_completion(const IterationDag& dag,
                                        int iterations);

  const std::vector<TimeNs>& iteration_times() const { return iter_times_; }

  /// Kills the run mid-iteration (failure churn evicted the tenant): every
  /// already-scheduled engine callback becomes a no-op and on_done never
  /// fires. Completed iterations stay in iteration_times() — the fleet's
  /// checkpoint when it re-places the job. Terminal: an aborted engine is
  /// never reused (a re-placed job gets a fresh tenant).
  void abort();
  bool aborted() const { return aborted_; }

 private:
  void start_iteration();
  void finish_iteration();
  void op_ready(OpId id);
  void start_compute(const Op& op);
  void start_collective(const Op& op);
  TimeNs dispatch_latency(OpId id) const;
  void complete_op(OpId id);
  /// Completion of the coalesced cohort of `op` parts that started together
  /// at `start` on `gpus` (one simulator event for the whole cohort).
  void finish_cohort(OpId id, const std::vector<int>& gpus, TimeNs start);
  void gpu_finished_part(int gpu, OpId id);
  void run_next_on_gpu(int gpu);
  void record_compute_span(int gpu, OpId id, TimeNs start);

  /// Degree budget for algorithm choice on this group's fabric path:
  /// 0 (unconstrained) on scale-up or electrical rails; nic_ports on
  /// photonic rails.
  int degree_budget(const collective::CommGroup& group) const;
  bool group_is_scale_out(const collective::CommGroup& group) const;

  sim::Simulator& sim_;
  net::Cluster& cluster_;
  collective::Transport& transport_;
  trace::TraceRecorder* recorder_;
  Options options_;
  collective::CollectiveExecutor executor_;

  const IterationDag* dag_ = nullptr;
  bool aborted_ = false;
  int iterations_left_ = 0;
  int iteration_index_ = -1;
  TimeNs iteration_start_ = 0;
  std::function<void()> on_done_;
  std::vector<TimeNs> iter_times_;

  // Per-iteration execution state.
  std::vector<int> deps_remaining_;
  std::vector<int> parts_remaining_;
  std::vector<std::vector<int>> dependents_;
  std::size_t ops_remaining_ = 0;

  // Per-GPU compute stream.
  std::vector<std::deque<OpId>> gpu_queue_;
  std::vector<bool> gpu_busy_;
};

}  // namespace opus::workload
